// Hermitian positive-definite factorization and solves.
//
// The STAP weight computation solves R w = s where R is a (diagonally
// loaded) sample covariance matrix — Hermitian positive definite by
// construction — so Cholesky is the canonical solver.
#pragma once

#include <span>

#include "linalg/cmatrix.hpp"

namespace pstap::linalg {

/// In-place Cholesky factorization A = L L^H (lower triangle).
///
/// On return the lower triangle of `a` (including the real diagonal) holds L;
/// the strict upper triangle is left untouched. Returns false if the matrix
/// is not (numerically) positive definite.
template <typename T>
[[nodiscard]] bool cholesky_factor(CMatrix<T>& a);

/// Solve L y = b then L^H x = y given the factor produced by
/// cholesky_factor. `b` is overwritten with the solution x.
template <typename T>
void cholesky_solve_inplace(const CMatrix<T>& l, std::span<std::complex<T>> b);

/// Convenience: solve A x = b for Hermitian positive definite A.
/// `a` is factored in place (destroyed); `b` becomes x. Returns false if A
/// is not positive definite (b is then unspecified).
template <typename T>
[[nodiscard]] bool solve_hpd(CMatrix<T>& a, std::span<std::complex<T>> b);

extern template bool cholesky_factor<float>(CMatrix<float>&);
extern template bool cholesky_factor<double>(CMatrix<double>&);
extern template void cholesky_solve_inplace<float>(const CMatrix<float>&,
                                                   std::span<std::complex<float>>);
extern template void cholesky_solve_inplace<double>(const CMatrix<double>&,
                                                    std::span<std::complex<double>>);
extern template bool solve_hpd<float>(CMatrix<float>&, std::span<std::complex<float>>);
extern template bool solve_hpd<double>(CMatrix<double>&, std::span<std::complex<double>>);

}  // namespace pstap::linalg
