// Householder QR factorization and least-squares solve.
//
// Used as the numerically robust alternative weight solver (sample-matrix
// inversion via QR of the training data, avoiding explicit covariance
// squaring) and as an independent oracle in the test suite.
#pragma once

#include <span>
#include <vector>

#include "linalg/cmatrix.hpp"

namespace pstap::linalg {

/// Compact Householder QR of an m x n matrix (m >= n).
///
/// After `factor`, R occupies the upper triangle of the stored matrix and
/// the Householder vectors its lower part; `apply_qh` applies Q^H to a
/// vector, `solve_upper` back-substitutes against R.
template <typename T>
class QrFactorization {
 public:
  using value_type = std::complex<T>;

  /// Factor `a` (consumed by copy). Requires rows >= cols and full column
  /// rank; returns false when a zero column is encountered.
  [[nodiscard]] bool factor(CMatrix<T> a);

  std::size_t rows() const noexcept { return a_.rows(); }
  std::size_t cols() const noexcept { return a_.cols(); }

  /// b (length rows) <- Q^H b.
  void apply_qh(std::span<value_type> b) const;

  /// Solve R x = b[0..cols); writes x over the first cols entries of b.
  void solve_upper(std::span<value_type> b) const;

  /// Solve R^H x = b[0..cols) (forward substitution against the factor's
  /// conjugate transpose). Together with solve_upper this solves the
  /// normal equations A^H A x = b without ever forming A^H A.
  void solve_upper_herm(std::span<value_type> b) const;

  /// Least squares: minimize |A x - b|; returns x (length cols).
  [[nodiscard]] std::vector<value_type> solve_ls(std::span<const value_type> b) const;

 private:
  CMatrix<T> a_;            // packed R + Householder vectors
  std::vector<T> beta_;     // Householder scalars
  std::vector<value_type> diag_;  // diagonal of R (displaced by the v storage)
};

extern template class QrFactorization<float>;
extern template class QrFactorization<double>;

}  // namespace pstap::linalg
