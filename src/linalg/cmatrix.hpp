// Dense complex matrix storage used by the adaptive-weight kernels.
#pragma once

#include <algorithm>
#include <complex>
#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "common/types.hpp"

namespace pstap::linalg {

/// Row-major dense matrix of std::complex<T>.
///
/// Deliberately minimal: the STAP weight solver needs storage, element
/// access, Hermitian rank-1 updates and matrix-vector products — not a full
/// expression-template library.
template <typename T>
class CMatrix {
 public:
  using value_type = std::complex<T>;

  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, value_type{}) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  value_type& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  const value_type& operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Span over row r.
  std::span<value_type> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const value_type> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<value_type> flat() noexcept { return {data_.data(), data_.size()}; }
  std::span<const value_type> flat() const noexcept {
    return {data_.data(), data_.size()};
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), value_type{}); }

  /// Set to the identity scaled by `diag` (square matrices only).
  void set_scaled_identity(value_type diag) {
    PSTAP_REQUIRE(rows_ == cols_, "identity requires a square matrix");
    set_zero();
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) = diag;
  }

  /// Hermitian rank-1 update: A += alpha * x * x^H (square, |x| == rows).
  void her_update(std::span<const value_type> x, T alpha) {
    PSTAP_REQUIRE(rows_ == cols_ && x.size() == rows_, "her_update shape mismatch");
    for (std::size_t i = 0; i < rows_; ++i) {
      const value_type xi = x[i];
      value_type* arow = data_.data() + i * cols_;
      for (std::size_t j = 0; j < cols_; ++j) {
        arow[j] += alpha * xi * std::conj(x[j]);
      }
    }
  }

  /// y = A * x. Single precision routes each contiguous row dot through the
  /// SIMD backend (cdotu: lane partial sums, tolerance vs the scalar
  /// template).
  void matvec(std::span<const value_type> x, std::span<value_type> y) const {
    PSTAP_REQUIRE(x.size() == cols_ && y.size() == rows_, "matvec shape mismatch");
    if constexpr (std::is_same_v<T, float>) {
      const simd::Ops& vec = simd::ops();
      for (std::size_t i = 0; i < rows_; ++i) {
        float re = 0.0f, im = 0.0f;
        vec.cdotu(reinterpret_cast<const float*>(data_.data() + i * cols_),
                  reinterpret_cast<const float*>(x.data()), cols_, &re, &im);
        y[i] = {re, im};
      }
    } else {
      for (std::size_t i = 0; i < rows_; ++i) {
        value_type acc{};
        const value_type* arow = data_.data() + i * cols_;
        for (std::size_t j = 0; j < cols_; ++j) acc += arow[j] * x[j];
        y[i] = acc;
      }
    }
  }

  /// y = A^H * x. Single precision routes each row MAC through the SIMD
  /// backend (cmac_conj_arr).
  void matvec_herm(std::span<const value_type> x, std::span<value_type> y) const {
    PSTAP_REQUIRE(x.size() == rows_ && y.size() == cols_, "matvec_herm shape mismatch");
    std::fill(y.begin(), y.end(), value_type{});
    if constexpr (std::is_same_v<T, float>) {
      const simd::Ops& vec = simd::ops();
      for (std::size_t i = 0; i < rows_; ++i) {
        vec.cmac_conj_arr(reinterpret_cast<float*>(y.data()),
                          reinterpret_cast<const float*>(data_.data() + i * cols_),
                          x[i].real(), x[i].imag(), cols_);
      }
    } else {
      for (std::size_t i = 0; i < rows_; ++i) {
        const value_type xi = x[i];
        const value_type* arow = data_.data() + i * cols_;
        for (std::size_t j = 0; j < cols_; ++j) y[j] += std::conj(arow[j]) * xi;
      }
    }
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<value_type> data_;
};

using CMatF = CMatrix<float>;
using CMatD = CMatrix<double>;

/// Hermitian inner product <x, y> = x^H y.
template <typename T>
std::complex<T> cdot(std::span<const std::complex<T>> x,
                     std::span<const std::complex<T>> y) {
  PSTAP_REQUIRE(x.size() == y.size(), "cdot size mismatch");
  std::complex<T> acc{};
  for (std::size_t i = 0; i < x.size(); ++i) acc += std::conj(x[i]) * y[i];
  return acc;
}

/// Single-precision overload: runs through the runtime-dispatched SIMD
/// backend (lane-wise partial sums, so the reduction order differs from the
/// scalar template at tolerance level).
inline std::complex<float> cdot(std::span<const std::complex<float>> x,
                                std::span<const std::complex<float>> y) {
  PSTAP_REQUIRE(x.size() == y.size(), "cdot size mismatch");
  float re = 0.0f, im = 0.0f;
  simd::ops().cdot(reinterpret_cast<const float*>(x.data()),
                   reinterpret_cast<const float*>(y.data()), x.size(), &re, &im);
  return {re, im};
}

/// Squared 2-norm.
template <typename T>
T norm2_sq(std::span<const std::complex<T>> x) {
  T acc{};
  for (const auto& v : x) acc += std::norm(v);
  return acc;
}

/// Single-precision overload: <x, x> through the SIMD backend (the
/// imaginary part cancels exactly lane-by-lane).
inline float norm2_sq(std::span<const std::complex<float>> x) {
  float re = 0.0f, im = 0.0f;
  const float* p = reinterpret_cast<const float*>(x.data());
  simd::ops().cdot(p, p, x.size(), &re, &im);
  return re;
}

}  // namespace pstap::linalg
