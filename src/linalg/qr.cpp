#include "linalg/qr.hpp"

#include <cmath>
#include <type_traits>

#include "common/simd.hpp"

namespace pstap::linalg {

template <typename T>
bool QrFactorization<T>::factor(CMatrix<T> a) {
  PSTAP_REQUIRE(a.rows() >= a.cols(), "QR requires rows >= cols");
  a_ = std::move(a);
  const std::size_t m = a_.rows();
  const std::size_t n = a_.cols();
  beta_.assign(n, T{});
  diag_.assign(n, value_type{});
  std::vector<value_type> w(n > 0 ? n - 1 : 0);

  for (std::size_t j = 0; j < n; ++j) {
    // Householder vector from the trailing part of column j:
    // v = x + phase * |x| * e1, H = I - (2 / v^H v) v v^H, H x = -phase|x| e1.
    T normx_sq{};
    for (std::size_t i = j; i < m; ++i) normx_sq += std::norm(a_(i, j));
    const T normx = std::sqrt(normx_sq);
    if (!(normx > T{0})) return false;  // rank deficient column

    const value_type x0 = a_(j, j);
    const T absx0 = std::abs(x0);
    const value_type phase = absx0 > T{0} ? x0 / absx0 : value_type{T{1}, T{0}};

    diag_[j] = -phase * normx;
    a_(j, j) = x0 + phase * normx;  // v now occupies a_(j.., j)
    const T vhv = T{2} * (normx_sq + normx * absx0);
    beta_[j] = T{2} / vhv;

    // Apply H to the trailing columns as two contiguous row sweeps
    // (w = beta * V^H * A_trail, then A_trail -= V * w) instead of a
    // per-column strided walk: each trailing column still sees the same
    // i-order and per-element expression trees as the historical loop, so
    // the factorization is bit-identical — while the inner loops now run
    // along rows, which are contiguous in CMatrix.
    const std::size_t nt = n - j - 1;
    if (nt == 0) continue;
    std::fill(w.begin(), w.begin() + nt, value_type{});
    if constexpr (std::is_same_v<T, double>) {
      // Double precision rides the FMA-free zmac pair, which is bit-exact
      // across SIMD backends — the weight solve stays backend-invariant.
      const simd::Ops& vec = simd::ops();
      for (std::size_t i = j; i < m; ++i) {
        const value_type v = a_(i, j);
        vec.zmac_conj(reinterpret_cast<double*>(w.data()),
                      reinterpret_cast<const double*>(&a_(i, j + 1)), v.real(),
                      v.imag(), nt);
      }
      for (std::size_t kk = 0; kk < nt; ++kk) w[kk] *= beta_[j];
      for (std::size_t i = j; i < m; ++i) {
        const value_type v = a_(i, j);
        vec.zmac(reinterpret_cast<double*>(&a_(i, j + 1)),
                 reinterpret_cast<const double*>(w.data()), -v.real(),
                 -v.imag(), nt);
      }
    } else {
      for (std::size_t i = j; i < m; ++i) {
        const value_type v = std::conj(a_(i, j));
        const value_type* arow = &a_(i, j + 1);
        for (std::size_t kk = 0; kk < nt; ++kk) w[kk] += v * arow[kk];
      }
      for (std::size_t kk = 0; kk < nt; ++kk) w[kk] *= beta_[j];
      for (std::size_t i = j; i < m; ++i) {
        const value_type v = a_(i, j);
        value_type* arow = &a_(i, j + 1);
        for (std::size_t kk = 0; kk < nt; ++kk) arow[kk] -= w[kk] * v;
      }
    }
  }
  return true;
}

template <typename T>
void QrFactorization<T>::apply_qh(std::span<value_type> b) const {
  const std::size_t m = a_.rows();
  const std::size_t n = a_.cols();
  PSTAP_REQUIRE(b.size() == m, "apply_qh size mismatch");
  for (std::size_t j = 0; j < n; ++j) {
    value_type w{};
    for (std::size_t i = j; i < m; ++i) w += std::conj(a_(i, j)) * b[i];
    w *= beta_[j];
    for (std::size_t i = j; i < m; ++i) b[i] -= w * a_(i, j);
  }
}

template <typename T>
void QrFactorization<T>::solve_upper(std::span<value_type> b) const {
  const std::size_t n = a_.cols();
  PSTAP_REQUIRE(b.size() >= n, "solve_upper needs at least cols entries");
  for (std::size_t jj = n; jj-- > 0;) {
    value_type s = b[jj];
    for (std::size_t k = jj + 1; k < n; ++k) s -= a_(jj, k) * b[k];
    b[jj] = s / diag_[jj];
  }
}

template <typename T>
void QrFactorization<T>::solve_upper_herm(std::span<value_type> b) const {
  const std::size_t n = a_.cols();
  PSTAP_REQUIRE(b.size() >= n, "solve_upper_herm needs at least cols entries");
  for (std::size_t i = 0; i < n; ++i) {
    value_type s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= std::conj(a_(k, i)) * b[k];
    b[i] = s / std::conj(diag_[i]);
  }
}

template <typename T>
std::vector<typename QrFactorization<T>::value_type> QrFactorization<T>::solve_ls(
    std::span<const value_type> b) const {
  const std::size_t m = a_.rows();
  const std::size_t n = a_.cols();
  PSTAP_REQUIRE(b.size() == m, "solve_ls size mismatch");
  std::vector<value_type> y(b.begin(), b.end());
  apply_qh(y);
  solve_upper(y);
  y.resize(n);
  return y;
}

template class QrFactorization<float>;
template class QrFactorization<double>;

}  // namespace pstap::linalg
