#include "linalg/cholesky.hpp"

#include <cmath>

#include "linalg/cgemm.hpp"

namespace pstap::linalg {

template <typename T>
bool cholesky_factor(CMatrix<T>& a) {
  PSTAP_REQUIRE(a.rows() == a.cols(), "cholesky_factor requires a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    // Diagonal: d = a(j,j) - sum_k |L(j,k)|^2, must be real positive.
    T d = a(j, j).real();
    for (std::size_t k = 0; k < j; ++k) d -= std::norm(a(j, k));
    if (!(d > T{0}) || !std::isfinite(d)) return false;
    const T ljj = std::sqrt(d);
    a(j, j) = {ljj, T{0}};
    const T inv = T{1} / ljj;
    // Column update: prefix dots over the contiguous row prefixes L(i, :j)
    // and L(j, :j) through the order-pinned kernel-layer helper.
    const std::complex<T>* lrow_j = &a(j, 0);
    for (std::size_t i = j + 1; i < n; ++i) {
      a(i, j) = dotc_sub(a(i, j), &a(i, 0), lrow_j, j) * inv;
    }
  }
  return true;
}

template <typename T>
void cholesky_solve_inplace(const CMatrix<T>& l, std::span<std::complex<T>> b) {
  const std::size_t n = l.rows();
  PSTAP_REQUIRE(b.size() == n, "cholesky_solve_inplace size mismatch");
  // Forward: L y = b, the prefix dot running along the contiguous row.
  for (std::size_t i = 0; i < n; ++i) {
    const std::complex<T> s = dotu_sub(b[i], &l(i, 0), b.data(), i);
    b[i] = s / l(i, i).real();
  }
  // Backward: L^H x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    std::complex<T> s = b[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= std::conj(l(k, ii)) * b[k];
    b[ii] = s / l(ii, ii).real();
  }
}

template <typename T>
bool solve_hpd(CMatrix<T>& a, std::span<std::complex<T>> b) {
  if (!cholesky_factor(a)) return false;
  cholesky_solve_inplace(a, b);
  return true;
}

template bool cholesky_factor<float>(CMatrix<float>&);
template bool cholesky_factor<double>(CMatrix<double>&);
template void cholesky_solve_inplace<float>(const CMatrix<float>&,
                                            std::span<std::complex<float>>);
template void cholesky_solve_inplace<double>(const CMatrix<double>&,
                                             std::span<std::complex<double>>);
template bool solve_hpd<float>(CMatrix<float>&, std::span<std::complex<float>>);
template bool solve_hpd<double>(CMatrix<double>&, std::span<std::complex<double>>);

}  // namespace pstap::linalg
