#include "linalg/cgemm.hpp"

#include "common/simd.hpp"

namespace pstap::linalg {

void cgemm(bool conj_a, std::size_t m, std::size_t k, std::size_t n,
           const cfloat* a, std::size_t lda, const cfloat* b, std::size_t ldb,
           cfloat* c, std::size_t ldc, CgemmScratch& scratch) {
  PSTAP_REQUIRE(lda >= k && ldb >= n && ldc >= n, "cgemm leading dims too small");
  if (m == 0 || n == 0) return;
  // Pack the whole A panel split-re/im (m*k is small on the STAP shapes:
  // beams x dof). Conjugation is folded into the pack by negating the imag
  // plane — exact, so the backend kernel needs no conj variant.
  scratch.re.resize(m * k);
  scratch.im.resize(m * k);
  const float* af = reinterpret_cast<const float*>(a);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const std::size_t src = 2 * (i * lda + p);
      scratch.re[i * k + p] = af[src];
      scratch.im[i * k + p] = conj_a ? -af[src + 1] : af[src + 1];
    }
  }
  simd::ops().cgemm_planar(reinterpret_cast<float*>(c), ldc, scratch.re.data(),
                           scratch.im.data(), m, k,
                           reinterpret_cast<const float*>(b), ldb, n);
}

void cgemv_rows(std::size_t m, std::size_t k, std::size_t n, const cfloat* w,
                std::size_t ldw, const cfloat* x, std::size_t ldx, cfloat* y,
                std::size_t ldy, CgemmScratch& scratch) {
  cgemm(true, m, k, n, w, ldw, x, ldx, y, ldy, scratch);
}

void cherk_lower(CMatrix<double>& r, const cfloat* s, std::size_t lds,
                 std::size_t t, double alpha) {
  PSTAP_REQUIRE(r.rows() == r.cols(), "cherk_lower requires a square matrix");
  PSTAP_REQUIRE(lds >= t, "cherk_lower leading dim too small");
  if (r.rows() == 0 || t == 0) return;
  simd::ops().zherk_cf_lower(
      reinterpret_cast<double*>(r.flat().data()), r.cols(),
      reinterpret_cast<const float*>(s), lds, r.rows(), t, alpha);
}

}  // namespace pstap::linalg
