// Blocked complex-GEMM micro-kernel front end for the adaptive-weights /
// beamform path.
//
// The raw loops live on the runtime-dispatched simd::Ops table
// (common/simd.hpp: cgemm_planar / zherk_cf_lower / cdotu / cmac_conj_arr /
// zmac / zmac_conj); this layer owns the packing, shape checking and the
// 64-byte-aligned split-re/im tile buffers:
//
//   * cgemm       — C(m x n) += op(A)(m x k) * B(k x n), op = identity or
//                   elementwise conjugate. A is packed once into planar
//                   re/im tiles (conjugation = negating the imag plane,
//                   which is exact), then the backend kernel streams B.
//   * cgemv_rows  — the beamform shape: many weight vectors (rows of W)
//                   applied to many range bins at once,
//                   Y(beams x ranges) += conj(W)(beams x dof) * X(dof x
//                   ranges). A named alias of cgemm(conj_a = true).
//   * cherk_lower — Hermitian rank-k update for covariance formation:
//                   R += alpha * S * S^H over the training gates, writing
//                   only the lower triangle (all downstream consumers —
//                   Cholesky factor/solve, trace, diagonal loading — read
//                   only the lower triangle and diagonal).
//
// Numerical contract: under the scalar backend every routine reproduces the
// historical std::complex triple loops bit-for-bit (see the per-kernel notes
// in common/simd.cpp); vector backends differ at FMA/reduction-order
// tolerance. The serial dot helpers at the bottom are deliberately NOT on
// the dispatch table: Cholesky's dependent prefix dots are order-pinned so
// the factorization stays identical on every backend.
#pragma once

#include <complex>
#include <cstddef>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "linalg/cmatrix.hpp"

namespace pstap::linalg {

/// Reusable packed split-re/im A tile (64-byte aligned). Hoist one of these
/// outside per-bin loops so steady-state cgemm calls never allocate.
struct CgemmScratch {
  AlignedVector<float> re;
  AlignedVector<float> im;
};

/// C(m x n) += op(A)(m x k) * B(k x n) with op = conj if conj_a, over
/// interleaved std::complex<float> arrays. Leading dimensions are in
/// complex elements; rows of A/B/C must not alias.
void cgemm(bool conj_a, std::size_t m, std::size_t k, std::size_t n,
           const cfloat* a, std::size_t lda, const cfloat* b, std::size_t ldb,
           cfloat* c, std::size_t ldc, CgemmScratch& scratch);

/// Batched weight application (the beamform shape): for each of m weight
/// rows w_i (ldw apart), y_i(n) += sum_d conj(w_i[d]) * x_d(n). Equivalent
/// to cgemm(conj_a = true, ...) and implemented as exactly that.
void cgemv_rows(std::size_t m, std::size_t k, std::size_t n, const cfloat* w,
                std::size_t ldw, const cfloat* x, std::size_t ldx, cfloat* y,
                std::size_t ldy, CgemmScratch& scratch);

/// Covariance-forming Hermitian rank-k update: for 0 <= j <= i < r.rows(),
/// r(i, j) += alpha * sum_t s_i(t) * conj(s_j(t)), where s_d is the
/// interleaved cfloat row at s + d * lds (t gates each). Writes the lower
/// triangle + diagonal only; r must be square.
void cherk_lower(CMatrix<double>& r, const cfloat* s, std::size_t lds,
                 std::size_t t, double alpha);

/// Order-pinned serial dot-subtract: s - sum_k a[k] * conj(b[k]). Used by
/// the Cholesky factor/forward-solve prefix dots, whose loop-carried
/// dependences make lane-parallel reductions a backend-divergence hazard —
/// the expression tree here is the historical one, on every backend.
template <typename T>
inline std::complex<T> dotc_sub(std::complex<T> s, const std::complex<T>* a,
                                const std::complex<T>* b, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) s -= a[k] * std::conj(b[k]);
  return s;
}

/// Order-pinned serial unconjugated dot-subtract: s - sum_k a[k] * b[k].
template <typename T>
inline std::complex<T> dotu_sub(std::complex<T> s, const std::complex<T>* a,
                                const std::complex<T>* b, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) s -= a[k] * b[k];
  return s;
}

}  // namespace pstap::linalg
