// Throughput and latency accounting — the paper's equations (1)–(4).
//
//   throughput = 1 / max_i T_i
//   latency    = sum of T_i along the spatial-dependency path, taking
//                max(easy BF, hard BF) across the fork and skipping the
//                weight tasks (their consumers use previous-CPI data).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "pipeline/task_spec.hpp"

namespace pstap::pipeline {

/// Measured (or simulated) execution time of one task, split into the
/// paper's three phases.
struct TaskTiming {
  TaskKind kind{};
  int nodes = 0;
  Seconds receive = 0;
  Seconds compute = 0;
  Seconds send = 0;

  /// Per-CPI phase-duration distributions, merged across every node of the
  /// task (the scalar fields above report only the slowest node's average;
  /// the histograms keep the tail). Functional runner only; empty in sim.
  obs::Histogram receive_hist;
  obs::Histogram compute_hist;
  obs::Histogram send_hist;

  Seconds total() const { return receive + compute + send; }
};

/// Result of running a pipeline configuration.
struct PipelineMetrics {
  std::vector<TaskTiming> tasks;  ///< pipeline order, matching the spec

  /// CPIs abandoned by graceful degradation: their input read failed
  /// permanently, the pipeline zero-filled the slab and suppressed the
  /// CPI's detections instead of wedging (functional runner only).
  int dropped_cpis = 0;

  /// I/O-side distributions for one run, copied from the run's IoEngine
  /// (plus fault/retry counters). Functional runner only; empty in sim.
  struct IoStats {
    obs::Histogram queue_depth;     ///< per-submit stripe-queue depth
    obs::Histogram service_time;    ///< per-chunk service seconds
    obs::Histogram submit_latency;  ///< per-logical-request submit seconds
    /// service_time split per stripe directory (index = server id): the
    /// straggler signal, persisted into RunReports for the scheduler.
    std::vector<obs::Histogram> server_service_time;
    std::uint64_t bytes_serviced = 0;
    std::uint64_t retries = 0;          ///< retry sleeps during the run
    std::uint64_t injected_delays = 0;  ///< from the run's fault plan
    std::uint64_t injected_errors = 0;
    std::uint64_t injected_partials = 0;
    std::uint64_t injected_corruptions = 0;
    std::uint64_t corrupt_chunks = 0;       ///< checksum mismatches caught
    std::uint64_t quarantined_servers = 0;  ///< circuit-breaker trips
    // Straggler-defense counters (zero unless straggler_sched is on):
    std::uint64_t hedges_launched = 0;   ///< speculative backup reads issued
    std::uint64_t hedge_wins = 0;        ///< backups that beat the original
    std::uint64_t hedge_cancels = 0;     ///< losing twins discarded
    std::uint64_t chunks_stolen = 0;     ///< queued jobs moved off slow servers
    std::uint64_t deadline_expired = 0;  ///< in-flight jobs past their deadline
    std::uint64_t breaker_reopened = 0;  ///< quarantined servers re-admitted
  };
  IoStats io;

  /// Supervision-and-recovery counters for one run; all zero when the run
  /// is unsupervised (functional runner only).
  struct Recovery {
    std::uint64_t injected_crashes = 0;   ///< from the run's fault plan
    std::uint64_t crashes_detected = 0;   ///< deaths the monitor handled
    std::uint64_t ranks_respawned = 0;
    std::uint64_t io_failovers = 0;       ///< I/O-task ranks abandoned
    std::uint64_t promoted_reads = 0;     ///< slab pieces Doppler self-read
    std::uint64_t replayed_messages = 0;  ///< checkpoint-log replay hits
    std::uint64_t checkpoint_peak_bytes = 0;
    Seconds max_detection_delay = 0;  ///< worst death -> recovery-action gap
  };
  Recovery recovery;

  /// CPIs per second: 1 / max_i T_i (paper eq. 1/3).
  double throughput() const;

  /// Seconds from a CPI entering the pipeline to its detection report
  /// (paper eq. 2/4): sum over the spatial path, max over the BF fork,
  /// weight tasks excluded.
  Seconds latency() const;

  /// T_i of the task with the given kind (-1 -> throws).
  Seconds task_time(TaskKind kind) const;
};

}  // namespace pstap::pipeline
