// Two-phase collective I/O for CPI cubes.
//
// When the radar writes pulse-major files ([pulse][channel][range] — the
// natural ADC streaming order), every node's range slab is pulses*channels
// small strided file segments: a request-per-row pattern that hammers the
// I/O servers with tiny chunks. The classic remedy (Choudhary et al.,
// two-phase / data-sieving collective I/O) is to read the file in *its*
// layout — each node takes an equal contiguous run of (pulse, channel)
// rows with one large request — and then redistribute over the
// interconnect to the decomposition the computation wants.
//
// collective_read_slab() implements exactly that on the mp runtime and the
// striped file system; it is a drop-in alternative to
// stap::read_cpi_slab(file, ..., FileLayout::kPulseMajor).
#pragma once

#include "common/retry.hpp"
#include "mp/comm.hpp"
#include "pfs/striped_file_system.hpp"
#include "stap/cube_io.hpp"

namespace pstap::pipeline {

/// Collectively read one pulse-major CPI file over the ranks of `group`.
/// Every rank must call with the same file and parameters; rank r returns
/// the cube slab of the r-th block of BlockPartition(params.ranges,
/// group.size()). `tag_base` must not collide with other traffic on the
/// communicator (two consecutive tags are used).
///
/// `retry` governs transient failures and per-attempt timeouts of the
/// phase-1 conforming read. When `degraded` is non-null, a rank whose read
/// fails for good zero-fills its file block and completes the exchange
/// (so no peer wedges); the flag is then agreed collectively — every rank
/// sets *degraded if ANY rank degraded. With degraded == nullptr the
/// exhausted error propagates on the failing rank (legacy behavior).
stap::DataCube collective_read_slab(mp::Comm& group, pfs::StripedFile& file,
                                    const stap::RadarParams& params,
                                    int tag_base = 900,
                                    const RetryPolicy& retry = {},
                                    bool* degraded = nullptr);

}  // namespace pstap::pipeline
