#include "pipeline/task_spec.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pstap::pipeline {

const char* task_name(TaskKind kind) {
  switch (kind) {
    case TaskKind::kParallelRead: return "parallel read";
    case TaskKind::kDoppler: return "Doppler filter";
    case TaskKind::kWeightsEasy: return "easy weight";
    case TaskKind::kWeightsHard: return "hard weight";
    case TaskKind::kBeamformEasy: return "easy BF";
    case TaskKind::kBeamformHard: return "hard BF";
    case TaskKind::kPulseCompression: return "pulse compr";
    case TaskKind::kCfar: return "CFAR";
    case TaskKind::kPulseCompressionCfar: return "PC + CFAR";
  }
  return "?";
}

bool is_temporal_task(TaskKind kind) {
  return kind == TaskKind::kWeightsEasy || kind == TaskKind::kWeightsHard;
}

int PipelineSpec::total_nodes() const {
  int total = 0;
  for (const TaskSpec& t : tasks) total += t.nodes;
  return total;
}

int PipelineSpec::find(TaskKind kind) const {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].kind == kind) return static_cast<int>(i);
  }
  return -1;
}

namespace {
std::vector<TaskKind> expected_structure(IoStrategy io, bool combined) {
  std::vector<TaskKind> kinds;
  if (io == IoStrategy::kSeparateTask) kinds.push_back(TaskKind::kParallelRead);
  kinds.push_back(TaskKind::kDoppler);
  kinds.push_back(TaskKind::kWeightsEasy);
  kinds.push_back(TaskKind::kWeightsHard);
  kinds.push_back(TaskKind::kBeamformEasy);
  kinds.push_back(TaskKind::kBeamformHard);
  if (combined) {
    kinds.push_back(TaskKind::kPulseCompressionCfar);
  } else {
    kinds.push_back(TaskKind::kPulseCompression);
    kinds.push_back(TaskKind::kCfar);
  }
  return kinds;
}
}  // namespace

void PipelineSpec::validate() const {
  params.validate();
  const auto expected = expected_structure(io, combined_pc_cfar);
  PSTAP_REQUIRE(tasks.size() == expected.size(),
                "task list does not match the declared pipeline structure");
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    PSTAP_REQUIRE(tasks[i].kind == expected[i],
                  std::string("unexpected task at position ") + std::to_string(i) +
                      ": " + task_name(tasks[i].kind));
    PSTAP_REQUIRE(tasks[i].nodes >= 1, "every task needs at least one node");
  }
}

namespace {
PipelineSpec build(const stap::RadarParams& params, IoStrategy io, bool combined,
                   const std::vector<int>& nodes) {
  const auto kinds = expected_structure(io, combined);
  PSTAP_REQUIRE(nodes.size() == kinds.size(),
                "node assignment size does not match the pipeline structure");
  PipelineSpec spec;
  spec.params = params;
  spec.io = io;
  spec.combined_pc_cfar = combined;
  spec.tasks.reserve(kinds.size());
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    spec.tasks.push_back({kinds[i], nodes[i]});
  }
  spec.validate();
  return spec;
}
}  // namespace

PipelineSpec PipelineSpec::embedded_io(const stap::RadarParams& params,
                                       const std::vector<int>& nodes) {
  return build(params, IoStrategy::kEmbedded, false, nodes);
}

PipelineSpec PipelineSpec::separate_io(const stap::RadarParams& params,
                                       const std::vector<int>& nodes) {
  return build(params, IoStrategy::kSeparateTask, false, nodes);
}

PipelineSpec PipelineSpec::combined(const stap::RadarParams& params,
                                    const std::vector<int>& nodes) {
  return build(params, IoStrategy::kEmbedded, true, nodes);
}

PipelineSpec proportional_assignment(const stap::RadarParams& params, int total,
                                     IoStrategy io, bool combined_pc_cfar,
                                     int io_nodes, double comm_flop_equiv) {
  PSTAP_REQUIRE(comm_flop_equiv >= 0.0, "comm_flop_equiv must be non-negative");
  const auto kinds = expected_structure(io, combined_pc_cfar);
  const stap::WorkloadModel wm(params);

  auto flops_of = [&](TaskKind kind) -> double {
    auto load = [&](const stap::TaskWork& w) {
      return w.flops + comm_flop_equiv * (w.in_bytes + w.out_bytes);
    };
    switch (kind) {
      case TaskKind::kParallelRead: return 0.0;  // assigned explicitly
      case TaskKind::kDoppler: {
        // The file read is not network communication; weight compute + sends.
        const auto w = wm.doppler();
        return w.flops + comm_flop_equiv * w.out_bytes;
      }
      case TaskKind::kWeightsEasy: return load(wm.weights_easy());
      case TaskKind::kWeightsHard: return load(wm.weights_hard());
      case TaskKind::kBeamformEasy: return load(wm.beamform_easy());
      case TaskKind::kBeamformHard: return load(wm.beamform_hard());
      case TaskKind::kPulseCompression: return load(wm.pulse_compression());
      case TaskKind::kCfar: return load(wm.cfar());
      case TaskKind::kPulseCompressionCfar: return load(wm.pulse_compression_cfar());
    }
    return 0.0;
  };

  // Compute tasks share `total`; the read task (if any) gets io_nodes.
  std::vector<TaskKind> compute_kinds;
  for (const TaskKind k : kinds) {
    if (k != TaskKind::kParallelRead) compute_kinds.push_back(k);
  }
  const int n_compute = static_cast<int>(compute_kinds.size());
  PSTAP_REQUIRE(total >= n_compute, "need at least one node per compute task");
  if (io == IoStrategy::kSeparateTask) {
    PSTAP_REQUIRE(io_nodes >= 1, "separate-I/O design needs io_nodes >= 1");
  }

  double flops_total = 0.0;
  for (const TaskKind k : compute_kinds) flops_total += flops_of(k);

  // Largest-remainder apportionment with a floor of one node per task.
  std::vector<int> assign(compute_kinds.size(), 1);
  int remaining = total - n_compute;
  std::vector<double> exact(compute_kinds.size());
  for (std::size_t i = 0; i < compute_kinds.size(); ++i) {
    exact[i] = static_cast<double>(remaining) * flops_of(compute_kinds[i]) / flops_total;
    assign[i] += static_cast<int>(exact[i]);
  }
  int used = 0;
  for (const int a : assign) used += a;
  // Distribute leftover nodes by descending fractional remainder.
  std::vector<std::size_t> order(compute_kinds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double fa = exact[a] - std::floor(exact[a]);
    const double fb = exact[b] - std::floor(exact[b]);
    return fa != fb ? fa > fb : a < b;
  });
  for (std::size_t i = 0; used < total && i < order.size(); ++i) {
    assign[order[i]] += 1;
    ++used;
  }
  PSTAP_CHECK(used == total, "node apportionment did not consume all nodes");

  std::vector<int> nodes;
  nodes.reserve(kinds.size());
  std::size_t ci = 0;
  for (const TaskKind k : kinds) {
    nodes.push_back(k == TaskKind::kParallelRead ? io_nodes : assign[ci++]);
  }
  PipelineSpec spec;
  spec.params = params;
  spec.io = io;
  spec.combined_pc_cfar = combined_pc_cfar;
  for (std::size_t i = 0; i < kinds.size(); ++i) spec.tasks.push_back({kinds[i], nodes[i]});
  spec.validate();
  return spec;
}

}  // namespace pstap::pipeline
