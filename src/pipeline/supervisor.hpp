// Supervision and recovery for the functional pipeline runner.
//
// The paper's machines lose nodes; the reproduction's threads "lose" ranks
// via fault::InjectedCrash. The Supervisor makes a run survive that: every
// rank executes under run_rank(), which catches an injected crash and
// reports the death; a monitor thread (woken by the report, and polling at
// the heartbeat interval as a backstop) then either
//
//   * respawns the rank — a fresh thread re-enters the same node function
//     with a Comm rebuilt from the World. The replacement resumes at the
//     rank's checkpoint watermark + 1 and replays in-flight CPIs from the
//     rank's CheckpointRing (receives consult the ring before the mailbox;
//     mailboxes persist across rank death, so unconsumed messages are still
//     queued) — or
//
//   * abandons it, when the rank belongs to the separate I/O task: Doppler
//     ranks observe failed() and promote to embedded reads for the
//     remaining CPIs (the paper's I/O-task failover).
//
// Crash sites sit only at CPI start and send-phase start, so a dead rank's
// per-CPI sends are all-or-nothing: a replayed CPI never double-sends and
// downstream FIFO order is preserved without per-CPI tags.
//
// If recovery is impossible (respawn budget exhausted, a non-injected rank
// error, or a world-wide heartbeat silence) the supervisor aborts by
// closing every mailbox: blocked ranks unwind with mp::MailboxClosed
// instead of hanging, and finish() rethrows the cause.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/types.hpp"

namespace pstap::mp {
class World;
}

namespace pstap::pipeline {

struct SupervisorOptions {
  bool enabled = false;

  /// Monitor poll period — the bound on death-detection delay (deaths also
  /// wake the monitor immediately, so typical detection is far faster).
  Seconds heartbeat_interval = 10e-3;

  /// Watchdog: if no surviving rank heartbeats for this long the run is
  /// aborted instead of hanging (0 disables).
  Seconds hang_timeout = 60.0;

  /// Max distinct in-flight CPIs per rank's CheckpointRing.
  std::size_t checkpoint_depth = 4;

  /// Total respawns allowed across the run; exceeding it aborts.
  int max_respawns = 8;
};

/// Recovery counters for one supervised run.
struct RecoveryStats {
  std::uint64_t crashes_detected = 0;
  std::uint64_t ranks_respawned = 0;
  std::uint64_t io_failovers = 0;       ///< I/O-task ranks abandoned
  std::uint64_t promoted_reads = 0;     ///< slab pieces Doppler self-read
  std::uint64_t replayed_messages = 0;  ///< checkpoint-log replay hits
  std::uint64_t checkpoint_peak_bytes = 0;
  Seconds max_detection_delay = 0;  ///< worst death -> monitor-action gap
};

class Supervisor {
 public:
  Supervisor(mp::World& world, int ranks, SupervisorOptions opts);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// The per-rank node body, invoked by run_rank() for both the original
  /// spawn and every respawn. Must be set before the world runs. The body
  /// builds its own Comm (World::make_comm) so respawns are self-contained.
  void set_rank_body(std::function<void(int)> body);

  /// Ranks that fail over instead of respawning (the separate I/O task).
  void set_failover_ranks(const std::vector<int>& ranks);

  /// Execute the rank body under crash supervision. Call from the
  /// World::run closure; the monitor calls it again on respawn.
  void run_rank(int rank);

  /// Liveness beat, called by each rank at every CPI start.
  void beat(int rank);

  /// True once `rank` crashed and was abandoned (failover ranks only).
  /// All messages the rank ever sent are visible in mailboxes before this
  /// turns true, so probe-after-failed cannot miss a late send.
  bool failed(int rank) const {
    return failed_flags_[static_cast<std::size_t>(rank)].load(std::memory_order_acquire);
  }

  /// True once the run is aborting; pollers must stop waiting for peers.
  bool aborted() const { return aborted_flag_.load(std::memory_order_acquire); }

  ckpt::CheckpointRing& ring(int rank) {
    return *rings_[static_cast<std::size_t>(rank)];
  }

  /// Doppler bookkeeping: one slab piece self-read after I/O failover.
  void note_promoted_read() {
    promoted_reads_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Wait for every rank to reach a terminal state (the world may return
  /// while a respawned thread is still replaying), stop the monitor, join
  /// respawned threads, and rethrow the abort cause if the run failed.
  void finish();

  /// Counters (ring-derived fields folded in on each call).
  RecoveryStats stats() const;

 private:
  enum class RankState { kAlive, kDeadPending, kAbandoned, kFinished };

  struct RankInfo {
    RankState state = RankState::kAlive;
    Seconds death_time = 0;
    std::string crash_site;
  };

  void monitor_loop();
  void handle_deaths_locked(Seconds now);
  void abort_locked(const std::string& why);
  bool all_terminal_locked() const;

  mp::World& world_;
  SupervisorOptions opts_;
  std::function<void(int)> body_;
  std::vector<std::unique_ptr<ckpt::CheckpointRing>> rings_;

  // Lock-free liveness/failover signals (polled from hot paths).
  std::vector<std::atomic<Seconds>> beats_;      // last beat, monotonic_now()
  std::vector<std::atomic<bool>> failed_flags_;  // abandoned ranks
  std::atomic<bool> aborted_flag_{false};
  std::atomic<std::uint64_t> promoted_reads_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<RankInfo> ranks_;
  std::vector<bool> failover_;
  std::vector<std::thread> respawned_;
  std::thread monitor_;
  bool stop_ = false;
  bool aborted_ = false;
  std::string abort_reason_;
  std::exception_ptr first_error_;
  int total_respawns_ = 0;
  RecoveryStats stats_;  // counter fields maintained under mu_
};

}  // namespace pstap::pipeline
