// Block partitioning of a 1-D index space (range gates, Doppler bins,
// bin/beam rows) over the nodes of a task — the data decomposition every
// pipeline task uses.
#pragma once

#include <cstddef>

#include "common/error.hpp"

namespace pstap::pipeline {

/// Even block partition of [0, count) into `parts` chunks; the first
/// (count % parts) chunks are one element longer.
class BlockPartition {
 public:
  BlockPartition(std::size_t count, std::size_t parts) : count_(count), parts_(parts) {
    PSTAP_REQUIRE(parts >= 1, "partition needs at least one part");
  }

  std::size_t count() const noexcept { return count_; }
  std::size_t parts() const noexcept { return parts_; }

  std::size_t begin(std::size_t part) const {
    PSTAP_REQUIRE(part < parts_, "part index out of range");
    const std::size_t base = count_ / parts_;
    const std::size_t extra = count_ % parts_;
    return part * base + std::min(part, extra);
  }

  std::size_t end(std::size_t part) const { return begin(part) + size(part); }

  std::size_t size(std::size_t part) const {
    PSTAP_REQUIRE(part < parts_, "part index out of range");
    const std::size_t base = count_ / parts_;
    const std::size_t extra = count_ % parts_;
    return base + (part < extra ? 1 : 0);
  }

  /// The part owning element `index`.
  std::size_t owner(std::size_t index) const {
    PSTAP_REQUIRE(index < count_, "element index out of range");
    const std::size_t base = count_ / parts_;
    const std::size_t extra = count_ % parts_;
    const std::size_t long_span = (base + 1) * extra;  // elements in long parts
    if (base == 0) return index;  // more parts than elements: 1 element each
    if (index < long_span) return index / (base + 1);
    return extra + (index - long_span) / base;
  }

 private:
  std::size_t count_;
  std::size_t parts_;
};

}  // namespace pstap::pipeline
