#include "pipeline/thread_runner.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <ctime>
#include <deque>
#include <optional>
#include <string>
#include <thread>
#include <tuple>

#include "common/simd.hpp"
#include "common/wall_clock.hpp"
#include "mp/world.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pipeline/collective_read.hpp"
#include "pipeline/partition.hpp"
#include "stap/beamform.hpp"
#include "stap/cube_io.hpp"
#include "stap/detection_log.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/weights.hpp"

namespace pstap::pipeline {

namespace {

// Message streams between tasks. Per-(source, tag) FIFO ordering in mp makes
// one constant tag per stream sufficient: successive CPIs stay ordered.
enum : int {
  kTagRaw = 1,          // read task -> Doppler (file-order slab pieces)
  kTagSpecEasy = 2,     // Doppler -> easy BF
  kTagSpecHard = 3,     // Doppler -> hard BF
  kTagTrainEasy = 4,    // Doppler -> easy WC (training gates)
  kTagTrainHard = 5,    // Doppler -> hard WC
  kTagWeightsEasy = 6,  // easy WC -> easy BF (temporal edge)
  kTagWeightsHard = 7,  // hard WC -> hard BF
  kTagBeamEasy = 8,     // easy BF -> PC (or PC+CFAR)
  kTagBeamHard = 9,     // hard BF -> PC (or PC+CFAR)
  kTagPcOut = 10,       // PC -> CFAR
};

/// Maps (task index, local node) <-> world rank: tasks own contiguous rank
/// blocks in pipeline order.
struct Assignment {
  std::vector<int> first;  // first[i] = first world rank of task i
  std::vector<int> counts;

  explicit Assignment(const PipelineSpec& spec) {
    int next = 0;
    for (const TaskSpec& t : spec.tasks) {
      first.push_back(next);
      counts.push_back(t.nodes);
      next += t.nodes;
    }
  }

  int world_rank(int task, int local) const { return first[task] + local; }

  std::pair<int, int> locate(int rank) const {
    for (std::size_t t = 0; t < first.size(); ++t) {
      if (rank < first[t] + counts[t]) return {static_cast<int>(t), rank - first[t]};
    }
    PSTAP_FAIL("rank not covered by any task");
  }
};

struct Phase {
  Seconds recv = 0, comp = 0, send = 0;
  obs::Histogram recv_hist, comp_hist, send_hist;  // per timed CPI
};

struct SharedResults {
  std::vector<Phase> avg_phase;                            // per world rank
  std::vector<std::vector<stap::Detection>> detections;    // per world rank
  std::vector<std::vector<int>> dropped;                   // per world rank
};

/// Everything a node function needs.
struct NodeCtx {
  const PipelineSpec& spec;
  const RunOptions& opt;
  const Assignment& assign;
  mp::Comm& world;
  pfs::StripedFileSystem& fs;
  int task = 0;
  int local = 0;
  SharedResults* results = nullptr;
  Supervisor* sup = nullptr;           // non-null when supervised
  ckpt::CheckpointRing* ring = nullptr;  // this rank's checkpoint ring
  BufferPool* pool = nullptr;          // this rank's payload free list

  /// Pooled payload buffer for `count` cfloat elements: after the first
  /// CPI warms the free list, acquisition is allocation-free.
  mp::Buffer payload_for(std::size_t count) const {
    return pool->acquire_elems<cfloat>(count);
  }

  const stap::RadarParams& params() const { return spec.params; }
  int nodes_of(TaskKind kind) const {
    const int i = spec.find(kind);
    return i < 0 ? 0 : spec.tasks[static_cast<std::size_t>(i)].nodes;
  }
  int rank_of(TaskKind kind, int local_id) const {
    const int i = spec.find(kind);
    PSTAP_CHECK(i >= 0, "task kind absent from spec");
    return assign.world_rank(i, local_id);
  }

  /// Record `cpi` as degraded on this rank; the runner unions the per-rank
  /// sets after the run and suppresses the CPI's detections.
  void mark_dropped(int cpi) const {
    results->dropped[static_cast<std::size_t>(world.rank())].push_back(cpi);
  }

  /// First CPI this incarnation executes: a respawned rank resumes past
  /// its checkpoint watermark; the original spawn starts at 0.
  int resume_cpi() const { return ring != nullptr ? ring->watermark() + 1 : 0; }

  /// Called at the end of every CPI loop iteration: advances the
  /// checkpoint watermark and evicts the CPI's logged messages.
  void complete_cpi(int cpi) const {
    if (ring != nullptr) ring->complete(cpi);
  }
};

/// Checkpoint-aware receive: a replayed CPI gets the payload its dead
/// predecessor consumed (byte-identical re-execution); a fresh receive is
/// logged under the *consumption* CPI so eviction can never outrun a
/// future replay (the temporal weights edge consumes CPI k-1's message at
/// CPI k — it is logged under k).
mp::Buffer recv_logged(const NodeCtx& ctx, int log_cpi, int source, int tag) {
  mp::Buffer payload;
  if (ctx.ring != nullptr &&
      ctx.ring->replay_message(log_cpi, tag, source, payload)) {
    return payload;
  }
  payload = ctx.world.recv_buffer(source, tag);
  // The ring shares the refcounted payload — logging copies a handle, not
  // the bytes.
  if (ctx.ring != nullptr) ctx.ring->record_message(log_cpi, tag, source, payload);
  return payload;
}

/// Checkpoint-aware receive viewed as cfloat elements. The returned span
/// aliases `payload`, which must stay alive while it is read.
std::span<const cfloat> recv_logged_cfloats(const NodeCtx& ctx, int log_cpi,
                                            int source, int tag,
                                            mp::Buffer& payload) {
  payload = recv_logged(ctx, log_cpi, source, tag);
  return payload.as_span<const cfloat>();
}

/// Per-CPI phase timing accumulator. Each phase section runs under an
/// obs::ScopedSpan, so one clock pair feeds the wall-clock sums, the phase
/// histograms, and (when tracing) the emitted span — they cannot disagree.
/// Spans are emitted for every CPI; the sums/histograms only count timed
/// (post-warmup) ones. An outer "cpi" span wraps each CPI's phases.
class PhaseClock {
 public:
  PhaseClock(const RunOptions& opt, Phase& out, std::string fault_site, int rank,
             Supervisor* sup = nullptr)
      : opt_(opt),
        out_(out),
        fault_site_(std::move(fault_site)),
        rank_(rank),
        sup_(sup),
        crash_site_("pipeline.rank." + std::to_string(rank)),
        crash_site_send_(crash_site_ + ".send") {}

  void start_cpi(int cpi) {
    end_cpi_span();
    if (sup_ != nullptr) {
      sup_->beat(rank_);
      // Crash sites live only here and at send start, so a dead rank's
      // per-CPI sends are all-or-nothing — the invariant CPI replay
      // depends on. Only evaluated under supervision: an unsupervised
      // crash would wedge every peer.
      fault::inject_crash(crash_site_, static_cast<std::uint64_t>(cpi));
    }
    // Stage-boundary injection site: armed delays stall this node exactly
    // where a real hiccup (page fault, scheduler preemption) would land.
    // Delay-only — stage boundaries have no retry/degradation story.
    fault::inject_delay_only(fault_site_);
    timed_ = cpi >= opt_.warmup;
    cpi_ = cpi;
    if (obs::trace_enabled()) cpi_start_ns_ = obs::trace_now_ns();
  }
  void finish() {
    end_cpi_span();
    const int timed_cpis = std::max(1, opt_.cpis - opt_.warmup);
    out_.recv = recv_ / timed_cpis;
    out_.comp = comp_ / timed_cpis;
    out_.send = send_ / timed_cpis;
  }

  // Scoped phase sections.
  template <typename F>
  void recv(F&& f) { timed_section("receive", recv_, out_.recv_hist, std::forward<F>(f)); }
  template <typename F>
  void comp(F&& f) { timed_section("compute", comp_, out_.comp_hist, std::forward<F>(f)); }
  template <typename F>
  void send(F&& f) {
    if (sup_ != nullptr) {
      fault::inject_crash(crash_site_send_, static_cast<std::uint64_t>(cpi_));
    }
    timed_section("send", send_, out_.send_hist, std::forward<F>(f));
  }

 private:
  template <typename F>
  void timed_section(const char* name, Seconds& sink, obs::Histogram& hist, F&& f) {
    obs::ScopedSpan span("pipeline", name, rank_, timed_ ? &sink : nullptr,
                         cpi_, timed_ ? &hist : nullptr);
    f();
  }

  /// Deferred emission of the enclosing per-CPI span: it closes when the
  /// next CPI starts (or at finish()), so it brackets all three phases.
  void end_cpi_span() {
    if (cpi_start_ns_ < 0) return;
    if (obs::trace_enabled()) {
      obs::TraceRecorder::global().complete(
          "pipeline", "cpi", rank_, cpi_start_ns_,
          obs::trace_now_ns() - cpi_start_ns_, cpi_);
    }
    cpi_start_ns_ = -1;
  }

  const RunOptions& opt_;
  Phase& out_;
  std::string fault_site_;
  int rank_;
  Supervisor* sup_ = nullptr;
  std::string crash_site_, crash_site_send_;
  bool timed_ = false;
  int cpi_ = -1;
  std::int64_t cpi_start_ns_ = -1;
  Seconds recv_ = 0, comp_ = 0, send_ = 0;
};

/// The (bin-subset, dof, range-slab) slices Doppler nodes ship to BF/WC
/// nodes: [local bins of the receiver][dof][sender's range window].
void pack_bin_slab(const stap::BinArray& src, std::size_t bin_lo, std::size_t bin_hi,
                   std::size_t r_lo, std::size_t r_hi, std::span<cfloat> out) {
  PSTAP_CHECK(out.size() == (bin_hi - bin_lo) * src.dof() * (r_hi - r_lo),
              "bin slab output size mismatch");
  std::size_t idx = 0;
  const std::size_t width = r_hi - r_lo;
  for (std::size_t b = bin_lo; b < bin_hi; ++b) {
    for (std::size_t d = 0; d < src.dof(); ++d) {
      const auto row = src.range_series(b, d);
      std::copy(row.begin() + r_lo, row.begin() + r_hi, out.begin() + idx);
      idx += width;
    }
  }
}

void unpack_bin_slab(stap::BinArray& dst, std::size_t r_lo, std::size_t r_hi,
                     std::span<const cfloat> in) {
  PSTAP_CHECK(in.size() == dst.bins() * dst.dof() * (r_hi - r_lo),
              "bin slab message size mismatch");
  std::size_t idx = 0;
  for (std::size_t b = 0; b < dst.bins(); ++b) {
    for (std::size_t d = 0; d < dst.dof(); ++d) {
      auto row = dst.range_series(b, d);
      for (std::size_t r = r_lo; r < r_hi; ++r) row[r] = in[idx++];
    }
  }
}

/// Conventional (steering-only) weights used at CPI 0 before the first
/// adaptive weights arrive over the temporal edge.
stap::WeightSet default_weights(const stap::WeightComputer& wc,
                                const std::vector<std::size_t>& bins,
                                const stap::RadarParams& params, std::size_t dof) {
  stap::WeightSet ws(bins.size(), params.beams, dof);
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    for (std::size_t beam = 0; beam < params.beams; ++beam) {
      const auto s = wc.steering(bins[bi], beam);
      double s2 = 0;
      for (const auto& v : s) s2 += std::norm(v);
      auto out = ws.at(bi, beam);
      for (std::size_t d = 0; d < dof; ++d)
        out[d] = s[d] * static_cast<float>(1.0 / s2);
    }
  }
  return ws;
}

// ------------------------------------------------------------- I/O nodes --

/// Shared logic for reading range slabs of the round-robin files with
/// next-CPI prefetch when the file system supports asynchronous reads.
class SlabReader {
 public:
  SlabReader(NodeCtx& ctx, std::size_t r_lo, std::size_t r_hi)
      : ctx_(ctx), r_lo_(r_lo), r_hi_(r_hi) {
    const auto& p = ctx.params();
    const std::size_t n = (r_hi - r_lo) * p.pulses * p.channels;
    bufs_[0].resize(n);
    bufs_[1].resize(n);
    for (std::size_t f = 0; f < ctx.opt.round_robin_files; ++f) {
      files_.push_back(ctx.fs.open(stap::round_robin_name(f, ctx.opt.round_robin_files)));
    }
  }

  bool empty() const { return r_lo_ >= r_hi_; }

  /// Issue the read for `cpi` (async where supported). Submit-time faults
  /// (the logical pfs.file site, or a sync-mode chunk error) are captured
  /// and surfaced by wait(), so prefetch call sites stay exception-free.
  void start(int cpi) {
    if (empty()) return;
    // Observable overlap: each double-buffered issue counts here, so runs
    // can verify the next-CPI read really is in flight during compute.
    obs::Registry::global().counter("io.slab_reads_started").add(1);
    start_error_[cpi & 1] = nullptr;
    try {
      auto& file = files_[static_cast<std::size_t>(cpi) % files_.size()];
      pending_[cpi & 1] = stap::start_read_cpi_slab(
          file, ctx_.params(), r_lo_, r_hi_, std::span<cfloat>(bufs_[cpi & 1]),
          ctx_.opt.file_layout);
    } catch (const IoError&) {
      start_error_[cpi & 1] = std::current_exception();
    }
  }

  /// Wait for `cpi`'s read; returns the raw file-order slab. Transient
  /// failures are retried per opt.io_retry by reissuing the whole slab
  /// read (failed chunk buffers cannot be salvaged piecemeal). When the
  /// error is permanent or attempts are exhausted: with `dropped` set the
  /// slab is zero-filled and *dropped flagged (graceful degradation — a
  /// throwing node would wedge every peer in World::run); with `dropped`
  /// == nullptr the error propagates.
  std::span<const cfloat> wait(int cpi, bool* dropped = nullptr) {
    if (empty()) return {};
    auto& buf = bufs_[cpi & 1];
    const RetryPolicy& retry = ctx_.opt.io_retry;
    Seconds backoff = retry.initial_backoff;
    for (int attempt = 1;; ++attempt) {
      try {
        if (start_error_[cpi & 1]) {
          std::exception_ptr e = start_error_[cpi & 1];
          start_error_[cpi & 1] = nullptr;
          std::rethrow_exception(e);
        }
        pfs::wait_with_timeout(
            pending_[cpi & 1],
            effective_attempt_timeout(retry, &ctx_.fs.engine().service_time()),
            "slab read of cpi " + std::to_string(cpi));
        return buf;
      } catch (const IoError& e) {
        if (attempt >= retry.max_attempts || is_permanent(e)) {
          if (dropped == nullptr) throw;
          std::fill(buf.begin(), buf.end(), cfloat{});
          *dropped = true;
          return buf;
        }
      }
      note_io_retry("slab read of cpi " + std::to_string(cpi), attempt + 1);
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(retry.max_backoff, backoff * retry.backoff_multiplier);
      start(cpi);
    }
  }

  bool async_capable() const { return ctx_.fs.config().supports_async; }

 private:
  NodeCtx& ctx_;
  std::size_t r_lo_, r_hi_;
  std::vector<pfs::StripedFile> files_;
  std::array<std::vector<cfloat>, 2> bufs_;
  std::array<pfs::IoRequest, 2> pending_;
  std::array<std::exception_ptr, 2> start_error_;
};

void run_read_node(NodeCtx& ctx, PhaseClock& clock) {
  const auto& p = ctx.params();
  const int reads = ctx.nodes_of(TaskKind::kParallelRead);
  const int dops = ctx.nodes_of(TaskKind::kDoppler);
  const BlockPartition mine(p.ranges, static_cast<std::size_t>(reads));
  const BlockPartition theirs(p.ranges, static_cast<std::size_t>(dops));
  const std::size_t r_lo = mine.begin(static_cast<std::size_t>(ctx.local));
  const std::size_t r_hi = mine.end(static_cast<std::size_t>(ctx.local));
  SlabReader reader(ctx, r_lo, r_hi);
  const std::size_t per_range = p.pulses * p.channels;

  // Async-capable systems prefetch the next CPI so the read overlaps the
  // send phase; synchronous-only systems (PIOFS) pay the full read inside
  // the receive phase — the contrast the paper studies.
  const int cpi0 = ctx.resume_cpi();
  if (reader.async_capable()) reader.start(cpi0);
  for (int cpi = cpi0; cpi < ctx.opt.cpis; ++cpi) {
    clock.start_cpi(cpi);
    std::span<const cfloat> raw;
    clock.recv([&] {
      if (!reader.async_capable()) reader.start(cpi);
      bool dropped = false;
      raw = reader.wait(cpi, &dropped);
      if (dropped) ctx.mark_dropped(cpi);
    });
    if (cpi + 1 < ctx.opt.cpis && reader.async_capable()) reader.start(cpi + 1);
    clock.send([&] {
      for (int d = 0; d < dops; ++d) {
        const std::size_t lo = std::max(r_lo, theirs.begin(static_cast<std::size_t>(d)));
        const std::size_t hi = std::min(r_hi, theirs.end(static_cast<std::size_t>(d)));
        if (lo >= hi) continue;
        // File order is range-major, so the intersection is contiguous:
        // one copy from the read buffer into a pooled payload, then a
        // zero-copy send (the read buffer is re-filled next CPI, so the
        // payload must own its bytes).
        const auto piece = raw.subspan((lo - r_lo) * per_range, (hi - lo) * per_range);
        mp::Buffer payload = ctx.payload_for(piece.size());
        std::copy(piece.begin(), piece.end(), payload.as_span<cfloat>().begin());
        ctx.world.send_buffer(ctx.rank_of(TaskKind::kDoppler, d), kTagRaw,
                              std::move(payload));
      }
    });
    ctx.complete_cpi(cpi);
  }
}

// --------------------------------------------------------- Doppler nodes --

void run_doppler_node(NodeCtx& ctx, PhaseClock& clock) {
  const auto& p = ctx.params();
  const int dops = ctx.nodes_of(TaskKind::kDoppler);
  const BlockPartition mine(p.ranges, static_cast<std::size_t>(dops));
  const std::size_t r_lo = mine.begin(static_cast<std::size_t>(ctx.local));
  const std::size_t r_hi = mine.end(static_cast<std::size_t>(ctx.local));
  const bool embedded = ctx.spec.io == IoStrategy::kEmbedded;

  const auto easy_ids = p.easy_bins();
  const auto hard_ids = p.hard_bins();
  const int n_be = ctx.nodes_of(TaskKind::kBeamformEasy);
  const int n_bh = ctx.nodes_of(TaskKind::kBeamformHard);
  const int n_we = ctx.nodes_of(TaskKind::kWeightsEasy);
  const int n_wh = ctx.nodes_of(TaskKind::kWeightsHard);
  const BlockPartition part_be(easy_ids.size(), static_cast<std::size_t>(n_be));
  const BlockPartition part_bh(hard_ids.size(), static_cast<std::size_t>(n_bh));
  const BlockPartition part_we(easy_ids.size(), static_cast<std::size_t>(n_we));
  const BlockPartition part_wh(hard_ids.size(), static_cast<std::size_t>(n_wh));

  stap::DopplerFilter filter(p);
  std::optional<SlabReader> reader;
  std::vector<cfloat> raw_recv;
  const bool collective = embedded && ctx.opt.collective_io;
  std::optional<mp::Comm> doppler_group;
  std::vector<pfs::StripedFile> collective_files;
  if (collective) {
    std::vector<int> doppler_ranks;
    for (int d = 0; d < dops; ++d) {
      doppler_ranks.push_back(ctx.rank_of(TaskKind::kDoppler, d));
    }
    doppler_group = ctx.world.subgroup(doppler_ranks);
    for (std::size_t f = 0; f < ctx.opt.round_robin_files; ++f) {
      collective_files.push_back(
          ctx.fs.open(stap::round_robin_name(f, ctx.opt.round_robin_files)));
    }
  } else if (embedded) {
    reader.emplace(ctx, r_lo, r_hi);  // first start() issued before the loop
  } else {
    raw_recv.resize((r_hi - r_lo) * p.pulses * p.channels);
  }
  const int reads = embedded ? 0 : ctx.nodes_of(TaskKind::kParallelRead);
  const BlockPartition part_read(p.ranges, std::max<std::size_t>(1, reads));
  const std::size_t per_range = p.pulses * p.channels;

  // I/O-task failover: once the supervisor abandons a crashed read rank,
  // this Doppler node promotes to embedded I/O for that rank's slab pieces
  // — opened lazily, since most runs never need them.
  std::vector<pfs::StripedFile> failover_files;
  auto self_read = [&](int cpi, std::size_t lo, std::size_t hi,
                       std::span<cfloat> piece) {
    if (failover_files.empty()) {
      for (std::size_t f = 0; f < ctx.opt.round_robin_files; ++f) {
        failover_files.push_back(
            ctx.fs.open(stap::round_robin_name(f, ctx.opt.round_robin_files)));
      }
    }
    auto& file = failover_files[static_cast<std::size_t>(cpi) % failover_files.size()];
    const std::string what = "failover read of cpi " + std::to_string(cpi);
    try {
      with_retry(ctx.opt.io_retry, what, [&] {
        // Separate-I/O mode requires range-major files, so rows [lo, hi)
        // are exactly the contiguous piece the dead rank would have sent.
        auto req = stap::start_read_cpi_slab(file, p, lo, hi, piece,
                                             ctx.opt.file_layout);
        pfs::wait_with_timeout(
            req,
            effective_attempt_timeout(ctx.opt.io_retry,
                                      &ctx.fs.engine().service_time()),
            what);
      });
    } catch (const IoError&) {
      // Same degradation contract as SlabReader: zero-fill and drop the
      // CPI rather than wedging the pipeline.
      std::fill(piece.begin(), piece.end(), cfloat{});
      ctx.mark_dropped(cpi);
    }
    ctx.sup->note_promoted_read();
  };

  // Receive one raw slab piece from read rank `src`, surviving its death:
  // replay from the checkpoint first; otherwise poll the mailbox against
  // the supervisor's failover flag. All of a dead rank's sends are visible
  // before failed() turns true, so the probe-after-failed re-check cannot
  // strand a delivered message (which FIFO would hand to the wrong CPI).
  auto recv_piece = [&](int cpi, int src, std::size_t lo, std::size_t hi,
                        std::span<cfloat> piece) {
    if (ctx.sup == nullptr) {
      ctx.world.recv_into<cfloat>(src, kTagRaw, piece);
      return;
    }
    mp::Buffer payload;
    if (ctx.ring->replay_message(cpi, kTagRaw, src, payload)) {
      mp::unpack<cfloat>(payload.bytes(), piece);
      return;
    }
    for (;;) {
      if (ctx.world.probe(src, kTagRaw)) {
        payload = ctx.world.recv_buffer(src, kTagRaw);
        mp::unpack<cfloat>(payload.bytes(), piece);
        break;
      }
      if (ctx.sup->failed(src) && !ctx.world.probe(src, kTagRaw)) {
        self_read(cpi, lo, hi, piece);
        payload = ctx.payload_for(piece.size());
        std::copy(piece.begin(), piece.end(), payload.as_span<cfloat>().begin());
        break;
      }
      if (ctx.sup->aborted()) throw mp::MailboxClosed("supervised run aborting");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    // Log under the consumption CPI either way: a replay of this CPI must
    // see the same bytes whether they came off the wire or the disk. The
    // ring shares the payload handle — no copy.
    ctx.ring->record_message(cpi, kTagRaw, src, std::move(payload));
  };

  // Steady-state reuse: the cube, the Doppler output, and the pooled send
  // payloads all reach a fixed shape after CPI 0, so the loop allocates
  // nothing on the receive/send path from then on.
  stap::DataCube cube;
  stap::DopplerOutput out;
  const int cpi0 = ctx.resume_cpi();
  if (reader && reader->async_capable()) reader->start(cpi0);
  for (int cpi = cpi0; cpi < ctx.opt.cpis; ++cpi) {
    clock.start_cpi(cpi);
    if (collective) {
      clock.recv([&] {
        auto& file =
            collective_files[static_cast<std::size_t>(cpi) % collective_files.size()];
        bool degraded = false;
        cube = collective_read_slab(*doppler_group, file, p, /*tag_base=*/900,
                                    ctx.opt.io_retry, &degraded);
        if (degraded) ctx.mark_dropped(cpi);
      });
    } else if (embedded) {
      std::span<const cfloat> raw;
      clock.recv([&] {
        if (!reader->async_capable()) reader->start(cpi);
        bool dropped = false;
        raw = reader->wait(cpi, &dropped);
        if (dropped) ctx.mark_dropped(cpi);
        stap::unpack_slab_into(p, r_lo, r_hi, raw, cube, ctx.opt.file_layout);
      });
      if (cpi + 1 < ctx.opt.cpis && reader->async_capable()) reader->start(cpi + 1);
    } else {
      clock.recv([&] {
        for (int s = 0; s < reads; ++s) {
          const std::size_t lo =
              std::max(r_lo, part_read.begin(static_cast<std::size_t>(s)));
          const std::size_t hi =
              std::min(r_hi, part_read.end(static_cast<std::size_t>(s)));
          if (lo >= hi) continue;
          auto piece = std::span<cfloat>(raw_recv)
                           .subspan((lo - r_lo) * per_range, (hi - lo) * per_range);
          recv_piece(cpi, ctx.rank_of(TaskKind::kParallelRead, s), lo, hi, piece);
        }
        stap::unpack_slab_into(p, r_lo, r_hi, raw_recv, cube);
      });
    }

    clock.comp([&] { filter.process_into(cube, out); });

    clock.send([&] {
      auto ship = [&](const stap::BinArray& arr, const BlockPartition& part,
                      TaskKind dest_kind, int dest_nodes, int tag,
                      std::size_t send_r_hi) {
        // send_r_hi limits the shipped ranges (training prefix for WC).
        for (int n = 0; n < dest_nodes; ++n) {
          const std::size_t b_lo = part.begin(static_cast<std::size_t>(n));
          const std::size_t b_hi = part.end(static_cast<std::size_t>(n));
          if (b_lo >= b_hi) continue;
          // Intersect my global range window with [0, send_r_hi). The
          // slice is packed straight into a pooled payload and moved into
          // the mailbox — one copy total, no allocation at steady state.
          if (r_lo >= send_r_hi) continue;
          const std::size_t local_hi = std::min(r_hi, send_r_hi) - r_lo;
          mp::Buffer payload =
              ctx.payload_for((b_hi - b_lo) * arr.dof() * local_hi);
          pack_bin_slab(arr, b_lo, b_hi, 0, local_hi, payload.as_span<cfloat>());
          ctx.world.send_buffer(ctx.rank_of(dest_kind, n), tag, std::move(payload));
        }
      };
      ship(out.easy, part_be, TaskKind::kBeamformEasy, n_be, kTagSpecEasy, p.ranges);
      ship(out.hard, part_bh, TaskKind::kBeamformHard, n_bh, kTagSpecHard, p.ranges);
      ship(out.easy, part_we, TaskKind::kWeightsEasy, n_we, kTagTrainEasy,
           p.training_ranges);
      ship(out.hard, part_wh, TaskKind::kWeightsHard, n_wh, kTagTrainHard,
           p.training_ranges);
    });
    ctx.complete_cpi(cpi);
  }
}

// ---------------------------------------------------------- weight nodes --

void run_weights_node(NodeCtx& ctx, PhaseClock& clock, bool hard) {
  const auto& p = ctx.params();
  const auto ids = hard ? p.hard_bins() : p.easy_bins();
  const std::size_t dof = hard ? p.hard_dof() : p.easy_dof();
  const TaskKind self = hard ? TaskKind::kWeightsHard : TaskKind::kWeightsEasy;
  const TaskKind bf_kind = hard ? TaskKind::kBeamformHard : TaskKind::kBeamformEasy;
  const int train_tag = hard ? kTagTrainHard : kTagTrainEasy;
  const int weight_tag = hard ? kTagWeightsHard : kTagWeightsEasy;

  const int n_self = ctx.nodes_of(self);
  const int n_bf = ctx.nodes_of(bf_kind);
  const int dops = ctx.nodes_of(TaskKind::kDoppler);
  const BlockPartition mine(ids.size(), static_cast<std::size_t>(n_self));
  const BlockPartition bf_part(ids.size(), static_cast<std::size_t>(n_bf));
  const std::size_t b_lo = mine.begin(static_cast<std::size_t>(ctx.local));
  const std::size_t b_hi = mine.end(static_cast<std::size_t>(ctx.local));
  const BlockPartition ranges(p.ranges, static_cast<std::size_t>(dops));

  std::vector<std::size_t> my_ids(ids.begin() + b_lo, ids.begin() + b_hi);
  stap::WeightComputer wc(p, my_ids, dof, ctx.opt.weight_solver);
  stap::BinArray training(my_ids.size(), dof, p.training_ranges);

  for (int cpi = ctx.resume_cpi(); cpi < ctx.opt.cpis; ++cpi) {
    clock.start_cpi(cpi);
    if (my_ids.empty()) {  // more nodes than bins: idle node
      ctx.complete_cpi(cpi);
      continue;
    }
    clock.recv([&] {
      for (int d = 0; d < dops; ++d) {
        const std::size_t r_lo = ranges.begin(static_cast<std::size_t>(d));
        const std::size_t r_hi =
            std::min(ranges.end(static_cast<std::size_t>(d)), p.training_ranges);
        if (r_lo >= r_hi) continue;
        mp::Buffer payload;
        const auto msg = recv_logged_cfloats(
            ctx, cpi, ctx.rank_of(TaskKind::kDoppler, d), train_tag, payload);
        unpack_bin_slab(training, r_lo, r_hi, msg);
      }
    });

    stap::WeightSet ws;
    clock.comp([&] { ws = wc.compute(training); });

    clock.send([&] {
      // Forward each bin's weights to the BF node owning it (temporal edge:
      // consumed at cpi+1). Group messages per destination, packed straight
      // into pooled payloads.
      for (int n = 0; n < n_bf; ++n) {
        const std::size_t lo = std::max(b_lo, bf_part.begin(static_cast<std::size_t>(n)));
        const std::size_t hi = std::min(b_hi, bf_part.end(static_cast<std::size_t>(n)));
        if (lo >= hi) continue;
        mp::Buffer payload = ctx.payload_for((hi - lo) * p.beams * dof);
        const auto buf = payload.as_span<cfloat>();
        std::size_t idx = 0;
        for (std::size_t b = lo; b < hi; ++b) {
          for (std::size_t beam = 0; beam < p.beams; ++beam) {
            const auto w = ws.at(b - b_lo, beam);
            std::copy(w.begin(), w.end(), buf.begin() + idx);
            idx += dof;
          }
        }
        ctx.world.send_buffer(ctx.rank_of(bf_kind, n), weight_tag, std::move(payload));
      }
    });
    ctx.complete_cpi(cpi);
  }
}

// ------------------------------------------------------- beamform nodes --

void run_beamform_node(NodeCtx& ctx, PhaseClock& clock, bool hard) {
  const auto& p = ctx.params();
  const auto ids = hard ? p.hard_bins() : p.easy_bins();
  const std::size_t dof = hard ? p.hard_dof() : p.easy_dof();
  const TaskKind self = hard ? TaskKind::kBeamformHard : TaskKind::kBeamformEasy;
  const TaskKind wc_kind = hard ? TaskKind::kWeightsHard : TaskKind::kWeightsEasy;
  const int spec_tag = hard ? kTagSpecHard : kTagSpecEasy;
  const int weight_tag = hard ? kTagWeightsHard : kTagWeightsEasy;
  const int beam_tag = hard ? kTagBeamHard : kTagBeamEasy;

  const int n_self = ctx.nodes_of(self);
  const int n_wc = ctx.nodes_of(wc_kind);
  const int dops = ctx.nodes_of(TaskKind::kDoppler);
  const TaskKind pc_kind = ctx.spec.combined_pc_cfar ? TaskKind::kPulseCompressionCfar
                                                     : TaskKind::kPulseCompression;
  const int n_pc = ctx.nodes_of(pc_kind);

  const BlockPartition mine(ids.size(), static_cast<std::size_t>(n_self));
  const BlockPartition wc_part(ids.size(), static_cast<std::size_t>(n_wc));
  const BlockPartition ranges(p.ranges, static_cast<std::size_t>(dops));
  const BlockPartition pc_part(p.doppler_bins(), static_cast<std::size_t>(n_pc));
  const std::size_t b_lo = mine.begin(static_cast<std::size_t>(ctx.local));
  const std::size_t b_hi = mine.end(static_cast<std::size_t>(ctx.local));
  std::vector<std::size_t> my_ids(ids.begin() + b_lo, ids.begin() + b_hi);

  stap::Beamformer bf(p);
  stap::WeightComputer wc(p, my_ids, dof);  // steering oracle for CPI 0
  // Beamform is the pipeline's only cross-CPI-stateful node, but the state
  // (`current`) is fully overwritten by the weight messages consumed each
  // CPI >= 1 — so a respawn rebuilds it from the replayed messages alone
  // and needs no separate snapshot.
  stap::WeightSet current =
      my_ids.empty() ? stap::WeightSet{} : default_weights(wc, my_ids, p, dof);
  stap::BinArray spectra(my_ids.size(), dof, p.ranges);

  for (int cpi = ctx.resume_cpi(); cpi < ctx.opt.cpis; ++cpi) {
    clock.start_cpi(cpi);
    if (my_ids.empty()) {
      ctx.complete_cpi(cpi);
      continue;
    }
    clock.recv([&] {
      // Spectra of the current CPI from every Doppler node.
      for (int d = 0; d < dops; ++d) {
        const std::size_t r_lo = ranges.begin(static_cast<std::size_t>(d));
        const std::size_t r_hi = ranges.end(static_cast<std::size_t>(d));
        if (r_lo >= r_hi) continue;
        mp::Buffer payload;
        const auto msg = recv_logged_cfloats(
            ctx, cpi, ctx.rank_of(TaskKind::kDoppler, d), spec_tag, payload);
        unpack_bin_slab(spectra, r_lo, r_hi, msg);
      }
      // Weights computed from the previous CPI (none at cpi 0). The
      // temporal edge: the message was *sent* at cpi-1 but is logged under
      // this consumption cpi, so eviction cannot outrun a replay.
      if (cpi >= 1) {
        for (int n = 0; n < n_wc; ++n) {
          const std::size_t lo =
              std::max(b_lo, wc_part.begin(static_cast<std::size_t>(n)));
          const std::size_t hi = std::min(b_hi, wc_part.end(static_cast<std::size_t>(n)));
          if (lo >= hi) continue;
          mp::Buffer payload;
          const auto msg = recv_logged_cfloats(ctx, cpi, ctx.rank_of(wc_kind, n),
                                               weight_tag, payload);
          PSTAP_CHECK(msg.size() == (hi - lo) * p.beams * dof,
                      "weight message size mismatch");
          std::size_t idx = 0;
          for (std::size_t b = lo; b < hi; ++b) {
            for (std::size_t beam = 0; beam < p.beams; ++beam) {
              auto w = current.at(b - b_lo, beam);
              for (std::size_t x = 0; x < dof; ++x) w[x] = msg[idx++];
            }
          }
        }
      }
    });

    stap::BeamArray out;
    clock.comp([&] { out = bf.apply(spectra, current); });

    clock.send([&] {
      // Route each absolute bin's (beams x ranges) block to its PC owner,
      // counting first so the pooled payload is sized exactly.
      for (int n = 0; n < n_pc; ++n) {
        std::size_t nbins = 0;
        for (std::size_t b = 0; b < my_ids.size(); ++b) {
          if (pc_part.owner(my_ids[b]) == static_cast<std::size_t>(n)) ++nbins;
        }
        if (nbins == 0) continue;
        mp::Buffer payload = ctx.payload_for(nbins * p.beams * p.ranges);
        const auto buf = payload.as_span<cfloat>();
        std::size_t idx = 0;
        for (std::size_t b = 0; b < my_ids.size(); ++b) {
          if (pc_part.owner(my_ids[b]) != static_cast<std::size_t>(n)) continue;
          for (std::size_t beam = 0; beam < p.beams; ++beam) {
            const auto row = out.range_series(b, beam);
            std::copy(row.begin(), row.end(), buf.begin() + idx);
            idx += p.ranges;
          }
        }
        ctx.world.send_buffer(ctx.rank_of(pc_kind, n), beam_tag, std::move(payload));
      }
    });
    ctx.complete_cpi(cpi);
  }
}

// --------------------------------------------- PC / CFAR / combined nodes --

/// The absolute bins task-local node `local` owns under `part`, split by
/// easy/hard origin (which BF task ships them).
struct RowPlan {
  std::vector<std::size_t> bins;       // absolute, ascending
  std::vector<std::size_t> easy_bins;  // subset that comes from easy BF
  std::vector<std::size_t> hard_bins;  // subset from hard BF
};

RowPlan make_row_plan(const stap::RadarParams& p, const BlockPartition& part,
                      int local) {
  RowPlan plan;
  const std::size_t lo = part.begin(static_cast<std::size_t>(local));
  const std::size_t hi = part.end(static_cast<std::size_t>(local));
  for (std::size_t b = lo; b < hi; ++b) {
    plan.bins.push_back(b);
    (p.is_hard_bin(b) ? plan.hard_bins : plan.easy_bins).push_back(b);
  }
  return plan;
}

/// Static routing of (bins x beams x ranges) rows from a sender task to
/// this node: per sender, the receiver-local slots of the bins it ships, in
/// the sender's pack order. Computed once — the per-CPI receive loop then
/// does no set intersection and no allocation.
struct RowRoute {
  TaskKind sender_kind;
  int tag;
  std::vector<std::vector<std::size_t>> slots_per_sender;
};

RowRoute make_row_route(const NodeCtx& ctx, const RowPlan& plan,
                        TaskKind sender_kind, int tag, bool sender_is_bf_easy,
                        bool sender_is_bf_hard) {
  const auto& p = ctx.params();
  const int senders = ctx.nodes_of(sender_kind);
  const auto easy_ids = p.easy_bins();
  const auto hard_ids = p.hard_bins();

  auto local_index_of = [&](const std::vector<std::size_t>& ids, std::size_t bin) {
    const auto it = std::lower_bound(ids.begin(), ids.end(), bin);
    PSTAP_CHECK(it != ids.end() && *it == bin, "bin not in id list");
    return static_cast<std::size_t>(it - ids.begin());
  };
  auto bin_slot = [&](std::size_t bin) {
    const auto it = std::lower_bound(plan.bins.begin(), plan.bins.end(), bin);
    return static_cast<std::size_t>(it - plan.bins.begin());
  };

  RowRoute route{sender_kind, tag, {}};
  route.slots_per_sender.resize(static_cast<std::size_t>(senders));
  for (int s = 0; s < senders; ++s) {
    auto& slots = route.slots_per_sender[static_cast<std::size_t>(s)];
    if (sender_is_bf_easy || sender_is_bf_hard) {
      const auto& ids = sender_is_bf_easy ? easy_ids : hard_ids;
      const auto& my = sender_is_bf_easy ? plan.easy_bins : plan.hard_bins;
      const BlockPartition sp(ids.size(), static_cast<std::size_t>(senders));
      for (const std::size_t bin : my) {
        if (sp.owner(local_index_of(ids, bin)) == static_cast<std::size_t>(s)) {
          slots.push_back(bin_slot(bin));
        }
      }
    } else {
      // Sender partitions the full bin space (PC -> CFAR).
      const BlockPartition sp(p.doppler_bins(), static_cast<std::size_t>(senders));
      for (const std::size_t bin : plan.bins) {
        if (sp.owner(bin) == static_cast<std::size_t>(s)) slots.push_back(bin_slot(bin));
      }
    }
  }
  return route;
}

/// Receive this node's rows along a precomputed route; each message is read
/// in place from the shared payload (no intermediate vector).
void receive_rows(NodeCtx& ctx, int cpi, stap::BeamArray& rows,
                  const RowRoute& route) {
  const auto& p = ctx.params();
  for (std::size_t s = 0; s < route.slots_per_sender.size(); ++s) {
    const auto& slots = route.slots_per_sender[s];
    if (slots.empty()) continue;
    mp::Buffer payload;
    const auto msg = recv_logged_cfloats(
        ctx, cpi, ctx.rank_of(route.sender_kind, static_cast<int>(s)), route.tag,
        payload);
    PSTAP_CHECK(msg.size() == slots.size() * p.beams * p.ranges,
                "row message size mismatch");
    std::size_t idx = 0;
    for (const std::size_t slot : slots) {
      for (std::size_t beam = 0; beam < p.beams; ++beam) {
        auto row = rows.range_series(slot, beam);
        std::copy(msg.begin() + idx, msg.begin() + idx + p.ranges, row.begin());
        idx += p.ranges;
      }
    }
  }
}

void run_pc_node(NodeCtx& ctx, PhaseClock& clock) {
  const auto& p = ctx.params();
  const int n_pc = ctx.nodes_of(TaskKind::kPulseCompression);
  const int n_cfar = ctx.nodes_of(TaskKind::kCfar);
  const BlockPartition mine(p.doppler_bins(), static_cast<std::size_t>(n_pc));
  const BlockPartition cfar_part(p.doppler_bins(), static_cast<std::size_t>(n_cfar));
  const RowPlan plan = make_row_plan(p, mine, ctx.local);
  const RowRoute easy_route =
      make_row_route(ctx, plan, TaskKind::kBeamformEasy, kTagBeamEasy, true, false);
  const RowRoute hard_route =
      make_row_route(ctx, plan, TaskKind::kBeamformHard, kTagBeamHard, false, true);

  stap::PulseCompressor pc(p);
  stap::BeamArray rows(plan.bins.size(), p.beams, p.ranges);

  for (int cpi = ctx.resume_cpi(); cpi < ctx.opt.cpis; ++cpi) {
    clock.start_cpi(cpi);
    if (plan.bins.empty()) {
      ctx.complete_cpi(cpi);
      continue;
    }
    clock.recv([&] {
      receive_rows(ctx, cpi, rows, easy_route);
      receive_rows(ctx, cpi, rows, hard_route);
    });
    clock.comp([&] { pc.compress(rows); });
    clock.send([&] {
      for (int n = 0; n < n_cfar; ++n) {
        std::size_t nbins = 0;
        for (const std::size_t bin : plan.bins) {
          if (cfar_part.owner(bin) == static_cast<std::size_t>(n)) ++nbins;
        }
        if (nbins == 0) continue;
        mp::Buffer payload = ctx.payload_for(nbins * p.beams * p.ranges);
        const auto out = payload.as_span<cfloat>();
        std::size_t idx = 0;
        for (std::size_t b = 0; b < plan.bins.size(); ++b) {
          if (cfar_part.owner(plan.bins[b]) != static_cast<std::size_t>(n)) continue;
          for (std::size_t beam = 0; beam < p.beams; ++beam) {
            const auto row = rows.range_series(b, beam);
            std::copy(row.begin(), row.end(), out.begin() + idx);
            idx += p.ranges;
          }
        }
        ctx.world.send_buffer(ctx.rank_of(TaskKind::kCfar, n), kTagPcOut,
                              std::move(payload));
      }
    });
    ctx.complete_cpi(cpi);
  }
}

void run_cfar_node(NodeCtx& ctx, PhaseClock& clock, int my_world_rank) {
  const auto& p = ctx.params();
  const int n_cfar = ctx.nodes_of(TaskKind::kCfar);
  const BlockPartition mine(p.doppler_bins(), static_cast<std::size_t>(n_cfar));
  const RowPlan plan = make_row_plan(p, mine, ctx.local);
  const RowRoute pc_route = make_row_route(ctx, plan, TaskKind::kPulseCompression,
                                           kTagPcOut, false, false);

  stap::CfarDetector cfar(p);
  stap::BeamArray rows(plan.bins.size(), p.beams, p.ranges);
  auto& sink = ctx.results->detections[static_cast<std::size_t>(my_world_rank)];

  for (int cpi = ctx.resume_cpi(); cpi < ctx.opt.cpis; ++cpi) {
    clock.start_cpi(cpi);
    if (plan.bins.empty()) {
      ctx.complete_cpi(cpi);
      continue;
    }
    clock.recv([&] { receive_rows(ctx, cpi, rows, pc_route); });
    clock.comp([&] {
      auto dets = cfar.detect(rows, plan.bins);
      for (auto& d : dets) d.cpi = static_cast<std::uint64_t>(cpi);
      // Replay idempotence: a predecessor that died between comp and the
      // send-start crash site already appended this CPI's detections.
      std::erase_if(sink, [&](const stap::Detection& d) {
        return d.cpi == static_cast<std::uint64_t>(cpi);
      });
      sink.insert(sink.end(), dets.begin(), dets.end());
    });
    clock.send([] {});
    ctx.complete_cpi(cpi);
  }
}

void run_pccfar_node(NodeCtx& ctx, PhaseClock& clock, int my_world_rank) {
  const auto& p = ctx.params();
  const int n_pc = ctx.nodes_of(TaskKind::kPulseCompressionCfar);
  const BlockPartition mine(p.doppler_bins(), static_cast<std::size_t>(n_pc));
  const RowPlan plan = make_row_plan(p, mine, ctx.local);
  const RowRoute easy_route =
      make_row_route(ctx, plan, TaskKind::kBeamformEasy, kTagBeamEasy, true, false);
  const RowRoute hard_route =
      make_row_route(ctx, plan, TaskKind::kBeamformHard, kTagBeamHard, false, true);

  stap::PulseCompressor pc(p);
  stap::CfarDetector cfar(p);
  stap::BeamArray rows(plan.bins.size(), p.beams, p.ranges);
  auto& sink = ctx.results->detections[static_cast<std::size_t>(my_world_rank)];

  for (int cpi = ctx.resume_cpi(); cpi < ctx.opt.cpis; ++cpi) {
    clock.start_cpi(cpi);
    if (plan.bins.empty()) {
      ctx.complete_cpi(cpi);
      continue;
    }
    clock.recv([&] {
      receive_rows(ctx, cpi, rows, easy_route);
      receive_rows(ctx, cpi, rows, hard_route);
    });
    clock.comp([&] {
      pc.compress(rows);
      auto dets = cfar.detect(rows, plan.bins);
      for (auto& d : dets) d.cpi = static_cast<std::uint64_t>(cpi);
      std::erase_if(sink, [&](const stap::Detection& d) {
        return d.cpi == static_cast<std::uint64_t>(cpi);
      });
      sink.insert(sink.end(), dets.begin(), dets.end());
    });
    clock.send([] {});
    ctx.complete_cpi(cpi);
  }
}

}  // namespace

// ----------------------------------------------------------- ThreadRunner --

ThreadRunner::ThreadRunner(PipelineSpec spec, RunOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  spec_.validate();
  PSTAP_REQUIRE(options_.cpis >= 1, "need at least one CPI");
  PSTAP_REQUIRE(options_.warmup >= 0 && options_.warmup < options_.cpis,
                "warmup must leave at least one timed CPI");
  PSTAP_REQUIRE(!options_.fs_root.empty(), "fs_root must be set");
  PSTAP_REQUIRE(options_.round_robin_files >= 1, "need at least one data file");
  PSTAP_REQUIRE(options_.file_layout == stap::FileLayout::kRangeMajor ||
                    spec_.io == IoStrategy::kEmbedded,
                "pulse-major files are supported with embedded I/O only");
  PSTAP_REQUIRE(!options_.collective_io ||
                    (spec_.io == IoStrategy::kEmbedded &&
                     options_.file_layout == stap::FileLayout::kPulseMajor),
                "collective I/O applies to embedded reads of pulse-major files");
  PSTAP_REQUIRE(!options_.supervise.enabled || !options_.collective_io,
                "supervised runs do not support collective I/O "
                "(collectives have no checkpoint-replay path)");
}

RunResult ThreadRunner::run() {
  const auto& p = spec_.params;

  // Tracing session for this run (trace_path, else PSTAP_TRACE, else off).
  // Opened before the file system so I/O-server activity is captured too.
  obs::TraceSession trace_session(options_.trace_path);
  // RunReport session (report_path, else PSTAP_REPORT, else off). Passive
  // when a bench main holds the outer session; this run then contributes
  // its report to the outer document instead of writing its own.
  obs::ReportSession report_session(options_.report_path);
  const Seconds wall_start = monotonic_now();
  const std::clock_t cpu_start = std::clock();
  const std::uint64_t retries_before = io_retry_counter().value();

  // Install the fault plan (if any) for the whole run: radar-side writes,
  // pipeline reads, message passing, and stage boundaries all see it.
  std::optional<fault::FaultScope> fault_scope;
  if (options_.fault_plan) fault_scope.emplace(options_.fault_plan);

  // --- The radar side: write the round-robin CPI files. ---
  pfs::StripedFileSystem fs(options_.fs_root, options_.fs_config);
  {
    stap::SceneGenerator gen(p, options_.scene, options_.seed);
    for (std::size_t f = 0; f < options_.round_robin_files; ++f) {
      stap::write_cpi(fs, stap::round_robin_name(f, options_.round_robin_files),
                      gen.generate(f), options_.file_layout);
    }
  }

  const Assignment assign(spec_);
  const int total = spec_.total_nodes();
  // Label each rank's trace stream "rank N <task>.<local>" up front.
  for (int r = 0; r < total; ++r) {
    const auto [task, local] = assign.locate(r);
    obs::TraceRecorder::global().set_process_name(
        r, "rank " + std::to_string(r) + " " +
               task_name(spec_.tasks[static_cast<std::size_t>(task)].kind) + "." +
               std::to_string(local));
  }
  SharedResults results;
  results.avg_phase.resize(static_cast<std::size_t>(total));
  results.detections.resize(static_cast<std::size_t>(total));
  results.dropped.resize(static_cast<std::size_t>(total));

  // Per-rank payload free lists. Declared before the world and supervisor so
  // every Buffer they still hold (undrained mailboxes, checkpoint rings) is
  // released before its pool dies. deque: BufferPool is not movable.
  std::deque<mp::BufferPool> pools(static_cast<std::size_t>(total));

  mp::World world(total, options_.world);
  std::optional<Supervisor> supervisor;
  if (options_.supervise.enabled) {
    supervisor.emplace(world, total, options_.supervise);
    // The separate I/O task fails over (Doppler promotes to embedded
    // reads); every other task respawns and replays.
    const int read_task = spec_.find(TaskKind::kParallelRead);
    if (read_task >= 0) {
      std::vector<int> io_ranks;
      for (int n = 0; n < spec_.tasks[static_cast<std::size_t>(read_task)].nodes; ++n) {
        io_ranks.push_back(assign.world_rank(read_task, n));
      }
      supervisor->set_failover_ranks(io_ranks);
    }
  }

  auto node_main = [&](mp::Comm& comm) {
    const auto [task, local] = assign.locate(comm.rank());
    NodeCtx ctx{spec_, options_, assign, comm, fs, task, local, &results};
    ctx.pool = &pools[static_cast<std::size_t>(comm.rank())];
    if (supervisor) {
      ctx.sup = &*supervisor;
      ctx.ring = &supervisor->ring(comm.rank());
    }
    PhaseClock clock(
        options_, results.avg_phase[static_cast<std::size_t>(comm.rank())],
        std::string("pipeline.stage.") +
            task_name(spec_.tasks[static_cast<std::size_t>(task)].kind),
        comm.rank(), ctx.sup);
    switch (spec_.tasks[static_cast<std::size_t>(task)].kind) {
      case TaskKind::kParallelRead: run_read_node(ctx, clock); break;
      case TaskKind::kDoppler: run_doppler_node(ctx, clock); break;
      case TaskKind::kWeightsEasy: run_weights_node(ctx, clock, false); break;
      case TaskKind::kWeightsHard: run_weights_node(ctx, clock, true); break;
      case TaskKind::kBeamformEasy: run_beamform_node(ctx, clock, false); break;
      case TaskKind::kBeamformHard: run_beamform_node(ctx, clock, true); break;
      case TaskKind::kPulseCompression: run_pc_node(ctx, clock); break;
      case TaskKind::kCfar: run_cfar_node(ctx, clock, comm.rank()); break;
      case TaskKind::kPulseCompressionCfar:
        run_pccfar_node(ctx, clock, comm.rank());
        break;
    }
    clock.finish();
  };

  if (supervisor) {
    // Respawns must rebuild a Comm without World::run, so the body makes
    // its own (the original spawn's comm argument is equivalent; both are
    // world-spanning context-0 communicators).
    supervisor->set_rank_body([&](int rank) {
      mp::Comm comm = world.make_comm(rank);
      node_main(comm);
    });
    world.run([&](mp::Comm& comm) { supervisor->run_rank(comm.rank()); });
    supervisor->finish();  // joins replaying respawns; throws on abort
  } else {
    world.run(node_main);
  }

  // --- Aggregate: per task, report the slowest node's phases. ---
  RunResult result;
  result.timed_cpis = options_.cpis - options_.warmup;
  for (std::size_t t = 0; t < spec_.tasks.size(); ++t) {
    TaskTiming timing;
    timing.kind = spec_.tasks[t].kind;
    timing.nodes = spec_.tasks[t].nodes;
    Seconds worst = -1;
    for (int n = 0; n < spec_.tasks[t].nodes; ++n) {
      const Phase& ph =
          results.avg_phase[static_cast<std::size_t>(assign.world_rank(
              static_cast<int>(t), n))];
      // Scalars: the slowest node's averages. Histograms: merged over every
      // node, so the distribution keeps the whole task's per-CPI spread.
      timing.receive_hist.merge(ph.recv_hist);
      timing.compute_hist.merge(ph.comp_hist);
      timing.send_hist.merge(ph.send_hist);
      const Seconds tot = ph.recv + ph.comp + ph.send;
      if (tot > worst) {
        worst = tot;
        timing.receive = ph.recv;
        timing.compute = ph.comp;
        timing.send = ph.send;
      }
    }
    result.metrics.tasks.push_back(timing);
  }
  // I/O-side distributions and counters for this run (the engine and the
  // fault plan both live exactly one run, so these are per-run snapshots).
  result.metrics.io.queue_depth = fs.engine().queue_depth();
  result.metrics.io.service_time = fs.engine().service_time();
  result.metrics.io.submit_latency = fs.engine().submit_latency();
  result.metrics.io.server_service_time.reserve(fs.engine().servers());
  for (std::size_t s = 0; s < fs.engine().servers(); ++s) {
    result.metrics.io.server_service_time.push_back(
        fs.engine().server_service_time(s));
  }
  result.metrics.io.bytes_serviced = fs.engine().bytes_serviced();
  result.metrics.io.retries = io_retry_counter().value() - retries_before;
  result.metrics.io.corrupt_chunks = fs.engine().corrupt_chunks();
  result.metrics.io.quarantined_servers = fs.engine().quarantined_servers();
  result.metrics.io.hedges_launched = fs.engine().hedges_launched();
  result.metrics.io.hedge_wins = fs.engine().hedge_wins();
  result.metrics.io.hedge_cancels = fs.engine().hedge_cancels();
  result.metrics.io.chunks_stolen = fs.engine().chunks_stolen();
  result.metrics.io.deadline_expired = fs.engine().deadline_expired();
  result.metrics.io.breaker_reopened = fs.engine().breaker_reopened();
  if (options_.fault_plan) {
    result.metrics.io.injected_delays = options_.fault_plan->injected_delays();
    result.metrics.io.injected_errors = options_.fault_plan->injected_errors();
    result.metrics.io.injected_partials = options_.fault_plan->injected_partials();
    result.metrics.io.injected_corruptions =
        options_.fault_plan->injected_corruptions();
    result.metrics.recovery.injected_crashes =
        options_.fault_plan->injected_crashes();
  }
  if (supervisor) {
    const RecoveryStats rs = supervisor->stats();
    auto& rec = result.metrics.recovery;
    rec.crashes_detected = rs.crashes_detected;
    rec.ranks_respawned = rs.ranks_respawned;
    rec.io_failovers = rs.io_failovers;
    rec.promoted_reads = rs.promoted_reads;
    rec.replayed_messages = rs.replayed_messages;
    rec.checkpoint_peak_bytes = rs.checkpoint_peak_bytes;
    rec.max_detection_delay = rs.max_detection_delay;
  }
  // Union the per-rank dropped-CPI sets and suppress those CPIs'
  // detections: a degraded read zero-fills only one node's slab, so the
  // rest of the CPI's detections are real but the product is incomplete —
  // report the CPI as dropped rather than silently thinner.
  for (const auto& per_rank : results.dropped) {
    result.dropped_cpis.insert(result.dropped_cpis.end(), per_rank.begin(),
                               per_rank.end());
  }
  std::sort(result.dropped_cpis.begin(), result.dropped_cpis.end());
  result.dropped_cpis.erase(
      std::unique(result.dropped_cpis.begin(), result.dropped_cpis.end()),
      result.dropped_cpis.end());
  result.metrics.dropped_cpis = static_cast<int>(result.dropped_cpis.size());

  for (auto& per_rank : results.detections) {
    result.detections.insert(result.detections.end(), per_rank.begin(),
                             per_rank.end());
  }
  if (!result.dropped_cpis.empty()) {
    const auto& dropped = result.dropped_cpis;
    std::erase_if(result.detections, [&](const stap::Detection& d) {
      return std::binary_search(dropped.begin(), dropped.end(),
                                static_cast<int>(d.cpi));
    });
  }
  std::sort(result.detections.begin(), result.detections.end(),
            [](const stap::Detection& a, const stap::Detection& b) {
              return std::tie(a.cpi, a.bin, a.beam, a.range) <
                     std::tie(b.cpi, b.bin, b.beam, b.range);
            });

  // Output side: persist the fused reports as one log block per CPI.
  if (!options_.detection_log.empty()) {
    stap::DetectionLogWriter log(fs, options_.detection_log);
    auto it = result.detections.begin();
    for (int cpi = 0; cpi < options_.cpis; ++cpi) {
      auto end = it;
      while (end != result.detections.end() &&
             end->cpi == static_cast<std::uint64_t>(cpi)) {
        ++end;
      }
      std::span<const stap::Detection> block;
      if (it != end) block = {&*it, static_cast<std::size_t>(end - it)};
      log.append(static_cast<std::uint64_t>(cpi), block);
      it = end;
    }
  }

  // --- Structured RunReport (report_session, or an outer one, exports). ---
  if (obs::report_enabled()) {
    obs::RunReport report;
    report.kind = "functional";
    const char* io_name =
        spec_.io == IoStrategy::kEmbedded ? "embedded" : "separate";
    report.label = options_.report_label.empty()
                       ? std::string("functional ") + io_name +
                             (spec_.combined_pc_cfar ? " combined" : "") +
                             " n=" + std::to_string(total)
                       : options_.report_label;
    report.geometry = {p.channels, p.pulses,        p.ranges,
                       p.beams,    p.doppler_bins(), p.cube_bytes()};
    report.config.io_strategy = io_name;
    report.config.combined_pc_cfar = spec_.combined_pc_cfar;
    report.config.stripe_factor = options_.fs_config.stripe_factor;
    report.config.simd_backend = simd::backend_name(simd::active());
    report.config.cpis = options_.cpis;
    report.config.warmup = options_.warmup;
    report.config.total_nodes = total;
    report.config.pin_threads = options_.world.pin_threads;
    report.config.numa_interleave = options_.world.numa_interleave;
    report.totals.throughput_cpis_per_s = result.metrics.throughput();
    report.totals.latency_s = result.metrics.latency();
    report.totals.wall_s = monotonic_now() - wall_start;
    report.totals.cpu_s = static_cast<double>(std::clock() - cpu_start) /
                          static_cast<double>(CLOCKS_PER_SEC);
    report.totals.dropped_cpis = result.metrics.dropped_cpis;
    for (const TaskTiming& t : result.metrics.tasks) {
      obs::RunReport::Task task;
      task.name = task_name(t.kind);
      task.nodes = t.nodes;
      task.phases.push_back({"receive", t.receive, t.receive_hist});
      task.phases.push_back({"compute", t.compute, t.compute_hist});
      task.phases.push_back({"send", t.send, t.send_hist});
      report.tasks.push_back(std::move(task));
    }
    const auto& io = result.metrics.io;
    report.io.present = true;
    report.io.queue_depth = io.queue_depth;
    report.io.service_time = io.service_time;
    report.io.submit_latency = io.submit_latency;
    report.io.server_service_time = io.server_service_time;
    report.io.queue_depth_peak =
        static_cast<std::int64_t>(io.queue_depth.max());
    report.io.bytes_serviced = io.bytes_serviced;
    report.io.retries = io.retries;
    report.io.injected_delays = io.injected_delays;
    report.io.injected_errors = io.injected_errors;
    report.io.injected_partials = io.injected_partials;
    report.io.injected_corruptions = io.injected_corruptions;
    report.io.corrupt_chunks = io.corrupt_chunks;
    report.io.quarantined_servers = io.quarantined_servers;
    report.io.hedges_launched = io.hedges_launched;
    report.io.hedge_wins = io.hedge_wins;
    report.io.hedge_cancels = io.hedge_cancels;
    report.io.chunks_stolen = io.chunks_stolen;
    report.io.deadline_expired = io.deadline_expired;
    report.io.breaker_reopened = io.breaker_reopened;
    if (options_.supervise.enabled) {
      const auto& rec = result.metrics.recovery;
      report.recovery.present = true;
      report.recovery.injected_crashes = rec.injected_crashes;
      report.recovery.crashes_detected = rec.crashes_detected;
      report.recovery.ranks_respawned = rec.ranks_respawned;
      report.recovery.io_failovers = rec.io_failovers;
      report.recovery.promoted_reads = rec.promoted_reads;
      report.recovery.replayed_messages = rec.replayed_messages;
      report.recovery.checkpoint_peak_bytes = rec.checkpoint_peak_bytes;
      report.recovery.max_detection_delay_s = rec.max_detection_delay;
    }
    obs::ReportCollector::global().add(std::move(report));
  }
  return result;
}

}  // namespace pstap::pipeline
