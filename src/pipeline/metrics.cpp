#include "pipeline/metrics.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pstap::pipeline {

double PipelineMetrics::throughput() const {
  PSTAP_REQUIRE(!tasks.empty(), "no task timings recorded");
  Seconds slowest = 0;
  for (const TaskTiming& t : tasks) slowest = std::max(slowest, t.total());
  PSTAP_REQUIRE(slowest > 0, "task times must be positive");
  return 1.0 / slowest;
}

Seconds PipelineMetrics::latency() const {
  PSTAP_REQUIRE(!tasks.empty(), "no task timings recorded");
  Seconds latency = 0;
  Seconds easy_bf = 0, hard_bf = 0;
  for (const TaskTiming& t : tasks) {
    if (is_temporal_task(t.kind)) continue;  // previous-CPI consumers only
    switch (t.kind) {
      case TaskKind::kBeamformEasy: easy_bf = t.total(); break;
      case TaskKind::kBeamformHard: hard_bf = t.total(); break;
      default: latency += t.total(); break;
    }
  }
  return latency + std::max(easy_bf, hard_bf);
}

Seconds PipelineMetrics::task_time(TaskKind kind) const {
  for (const TaskTiming& t : tasks) {
    if (t.kind == kind) return t.total();
  }
  PSTAP_FAIL("task kind not present in metrics");
}

}  // namespace pstap::pipeline
