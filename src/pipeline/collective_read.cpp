#include "pipeline/collective_read.hpp"

#include <algorithm>

#include "pfs/striped_file_system.hpp"
#include "pipeline/partition.hpp"

namespace pstap::pipeline {

using pstap::cfloat;

stap::DataCube collective_read_slab(mp::Comm& group, pfs::StripedFile& file,
                                    const stap::RadarParams& params,
                                    int tag_base, const RetryPolicy& retry,
                                    bool* degraded) {
  PSTAP_REQUIRE(group.is_member(), "collective read from a non-member handle");
  const int nranks = group.size();
  const int me = group.rank();
  const std::size_t rows_total = params.pulses * params.channels;

  // Phase 1: conforming read. Rank r reads the r-th contiguous block of
  // (pulse, channel) rows — one large sequential request in file order.
  const BlockPartition row_part(rows_total, static_cast<std::size_t>(nranks));
  const std::size_t row_lo = row_part.begin(static_cast<std::size_t>(me));
  const std::size_t row_hi = row_part.end(static_cast<std::size_t>(me));
  std::vector<cfloat> mine((row_hi - row_lo) * params.ranges);
  int my_degraded = 0;
  if (!mine.empty()) {
    try {
      // Deadline-aware bound: the engine's observed service-time quantile
      // replaces the fixed attempt_timeout once warm (no-op unless the
      // policy sets deadline_multiplier).
      const Seconds timeout = effective_attempt_timeout(
          retry, &file.filesystem()->engine().service_time());
      with_retry(retry, "collective_read_slab(" + file.name() + ")", [&] {
        pfs::IoRequest req = file.iread_values<cfloat>(
            static_cast<std::uint64_t>(row_lo) * params.ranges * sizeof(cfloat),
            std::span<cfloat>(mine));
        pfs::wait_with_timeout(req, timeout,
                               "collective_read_slab(" + file.name() + ")");
      });
    } catch (const IoError&) {
      if (degraded == nullptr) throw;
      // Degrade: peers are already committed to the exchange, so zero-fill
      // this rank's file block and keep the collective moving. The vector
      // is value-initialized; an aborted partial transfer may have written
      // a prefix, so clear it back to zero.
      std::fill(mine.begin(), mine.end(), cfloat{});
      my_degraded = 1;
    }
  }

  // Phase 2: redistribute. For each destination rank, slice my rows down to
  // its range window and ship one message; likewise receive from everyone.
  const BlockPartition range_part(params.ranges, static_cast<std::size_t>(nranks));
  const int tag = tag_base;
  std::vector<cfloat> buf;
  for (int dest = 0; dest < nranks; ++dest) {
    const std::size_t r_lo = range_part.begin(static_cast<std::size_t>(dest));
    const std::size_t r_hi = range_part.end(static_cast<std::size_t>(dest));
    if (r_lo >= r_hi || row_lo >= row_hi) continue;
    buf.clear();
    buf.reserve((row_hi - row_lo) * (r_hi - r_lo));
    for (std::size_t row = row_lo; row < row_hi; ++row) {
      const auto series =
          std::span<const cfloat>(mine).subspan((row - row_lo) * params.ranges,
                                                params.ranges);
      buf.insert(buf.end(), series.begin() + r_lo, series.begin() + r_hi);
    }
    group.send<cfloat>(dest, tag, buf);
  }

  const std::size_t my_r_lo = range_part.begin(static_cast<std::size_t>(me));
  const std::size_t my_r_hi = range_part.end(static_cast<std::size_t>(me));
  stap::DataCube cube(params.channels, params.pulses,
                      my_r_hi > my_r_lo ? my_r_hi - my_r_lo : 0);
  for (int src = 0; src < nranks; ++src) {
    const std::size_t s_lo = row_part.begin(static_cast<std::size_t>(src));
    const std::size_t s_hi = row_part.end(static_cast<std::size_t>(src));
    if (s_lo >= s_hi || my_r_lo >= my_r_hi) continue;
    const auto msg = group.recv_vector<cfloat>(src, tag);
    PSTAP_CHECK(msg.size() == (s_hi - s_lo) * (my_r_hi - my_r_lo),
                "collective exchange size mismatch");
    std::size_t idx = 0;
    for (std::size_t row = s_lo; row < s_hi; ++row) {
      const std::size_t p = row / params.channels;
      const std::size_t c = row % params.channels;
      auto dst = cube.range_series(c, p);
      for (std::size_t r = 0; r < dst.size(); ++r) dst[r] = msg[idx++];
    }
  }

  // Degradation is a collective property: a zero-filled file block landed
  // in EVERY rank's slab, so all ranks must agree the CPI is tainted.
  if (degraded != nullptr) {
    int any = 0;
    group.allreduce_sum(std::span<const int>(&my_degraded, 1),
                        std::span<int>(&any, 1));
    *degraded = any != 0;
  }
  return cube;
}

}  // namespace pstap::pipeline
