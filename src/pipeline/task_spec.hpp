// Pipeline structure description — the paper's contribution, as data.
//
// A PipelineSpec captures one of the three studied organizations:
//   * embedded I/O   (7 tasks, Fig. 3): Doppler filtering reads the files;
//   * separate I/O   (8 tasks, Fig. 4): a parallel-read task is prepended;
//   * task combination (6 tasks, §6): pulse compression + CFAR merged.
// plus the per-task node assignment P_i. Both execution backends
// (pipeline::ThreadRunner, sim::SimRunner) consume the same spec.
#pragma once

#include <string>
#include <vector>

#include "stap/radar_params.hpp"
#include "stap/workload.hpp"

namespace pstap::pipeline {

/// The pipeline tasks. Values double as stable display order.
enum class TaskKind {
  kParallelRead,         ///< task 0': read files, forward cube (separate-I/O design)
  kDoppler,              ///< Doppler filter processing (reads files when I/O embedded)
  kWeightsEasy,          ///< easy weight computation (temporal dependency)
  kWeightsHard,          ///< hard weight computation (temporal dependency)
  kBeamformEasy,         ///< easy beamforming
  kBeamformHard,         ///< hard beamforming
  kPulseCompression,     ///< pulse compression
  kCfar,                 ///< CFAR processing
  kPulseCompressionCfar, ///< combined task (§6 task combination)
};

/// Paper-style display name ("Doppler filter", "PC + CFAR", ...).
const char* task_name(TaskKind kind);

/// True for tasks that only have temporal (previous-CPI) consumers — the
/// weight tasks. They never appear in the latency equation.
bool is_temporal_task(TaskKind kind);

/// Where the input files are read.
enum class IoStrategy {
  kEmbedded,      ///< first compute task also performs the reads (Fig. 3)
  kSeparateTask,  ///< dedicated parallel-read task at the head (Fig. 4)
};

/// One task instance within a pipeline.
struct TaskSpec {
  TaskKind kind{};
  int nodes = 1;  ///< P_i
};

/// A complete pipeline organization.
struct PipelineSpec {
  stap::RadarParams params;
  IoStrategy io = IoStrategy::kEmbedded;
  bool combined_pc_cfar = false;
  std::vector<TaskSpec> tasks;  ///< pipeline order

  int total_nodes() const;

  /// Index of the task with `kind`, or -1.
  int find(TaskKind kind) const;

  /// Throws PreconditionError unless the task list matches the declared
  /// io/combined structure and every task has >= 1 node.
  void validate() const;

  // ------------------------------------------------------------ builders --

  /// Embedded-I/O pipeline (7 tasks) with an explicit node assignment
  /// ordered as {doppler, w_easy, w_hard, bf_easy, bf_hard, pc, cfar}.
  static PipelineSpec embedded_io(const stap::RadarParams& params,
                                  const std::vector<int>& nodes);

  /// Separate-I/O pipeline (8 tasks); `nodes` ordered as
  /// {read, doppler, w_easy, w_hard, bf_easy, bf_hard, pc, cfar}.
  static PipelineSpec separate_io(const stap::RadarParams& params,
                                  const std::vector<int>& nodes);

  /// Task-combination pipeline (6 tasks, embedded I/O); `nodes` ordered as
  /// {doppler, w_easy, w_hard, bf_easy, bf_hard, pc_cfar}.
  static PipelineSpec combined(const stap::RadarParams& params,
                               const std::vector<int>& nodes);
};

/// Distribute `total` nodes over the tasks of the requested structure in
/// proportion to each task's load (largest-remainder rounding, every task
/// gets at least one node) — how the paper's node assignments scale between
/// its three cases. Load = flops + comm_flop_equiv * (in+out bytes): a
/// communication-aware weight, since tail tasks like CFAR are transfer-
/// bound, not flop-bound. For kSeparateTask, `io_nodes` are dedicated to
/// the read task in addition to `total`.
PipelineSpec proportional_assignment(const stap::RadarParams& params, int total,
                                     IoStrategy io, bool combined_pc_cfar,
                                     int io_nodes = 0,
                                     double comm_flop_equiv = 1.5);

}  // namespace pstap::pipeline
