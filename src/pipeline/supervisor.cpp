#include "pipeline/supervisor.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/wall_clock.hpp"
#include "mp/mailbox.hpp"
#include "mp/world.hpp"
#include "obs/trace.hpp"

namespace pstap::pipeline {

namespace {

void trace_event(const char* name, int rank, std::string_view detail) {
  // Unconditional: instant() also feeds the always-on flight ring, so a
  // post-mortem dump keeps the rank-death / failover / abort breadcrumbs
  // even when tracing itself is off.
  obs::TraceRecorder::global().instant("supervisor", name, rank, -1, detail);
}

}  // namespace

Supervisor::Supervisor(mp::World& world, int ranks, SupervisorOptions opts)
    : world_(world),
      opts_(opts),
      beats_(static_cast<std::size_t>(ranks)),
      failed_flags_(static_cast<std::size_t>(ranks)),
      ranks_(static_cast<std::size_t>(ranks)),
      failover_(static_cast<std::size_t>(ranks), false) {
  PSTAP_REQUIRE(ranks >= 1, "supervisor needs at least one rank");
  PSTAP_REQUIRE(opts_.heartbeat_interval > 0, "heartbeat interval must be positive");
  rings_.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    rings_.push_back(std::make_unique<ckpt::CheckpointRing>(opts_.checkpoint_depth));
  }
  const Seconds now = monotonic_now();
  for (auto& b : beats_) b.store(now, std::memory_order_relaxed);
  monitor_ = std::thread([this] { monitor_loop(); });
}

Supervisor::~Supervisor() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  for (auto& t : respawned_) {
    if (t.joinable()) t.join();
  }
}

void Supervisor::set_rank_body(std::function<void(int)> body) {
  body_ = std::move(body);
}

void Supervisor::set_failover_ranks(const std::vector<int>& ranks) {
  for (const int r : ranks) {
    failover_.at(static_cast<std::size_t>(r)) = true;
  }
}

void Supervisor::beat(int rank) {
  beats_[static_cast<std::size_t>(rank)].store(monotonic_now(),
                                               std::memory_order_relaxed);
}

void Supervisor::run_rank(int rank) {
  PSTAP_CHECK(body_ != nullptr, "supervisor rank body not set");
  beat(rank);
  try {
    body_(rank);
    std::lock_guard lock(mu_);
    ranks_[static_cast<std::size_t>(rank)].state = RankState::kFinished;
  } catch (const fault::InjectedCrash& e) {
    // Everything the rank sent is already in peer mailboxes (sends are
    // synchronous deposits), and the body has fully unwound — the
    // replacement the monitor spawns races nothing.
    {
      std::lock_guard lock(mu_);
      RankInfo& info = ranks_[static_cast<std::size_t>(rank)];
      info.state = RankState::kDeadPending;
      info.death_time = monotonic_now();
      info.crash_site = e.site();
    }
    trace_event("supervisor.rank_dead", rank, e.site());
  } catch (const mp::MailboxClosed&) {
    // Abort teardown: the rank unwound cleanly instead of hanging.
    std::lock_guard lock(mu_);
    ranks_[static_cast<std::size_t>(rank)].state = RankState::kFinished;
  } catch (...) {
    // A real (non-injected) rank error: recovery has no replay story for
    // it — record it and unwind the whole world so nothing hangs.
    std::lock_guard lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
    ranks_[static_cast<std::size_t>(rank)].state = RankState::kFinished;
    abort_locked("rank " + std::to_string(rank) + " failed with a non-injected error");
  }
  cv_.notify_all();
}

void Supervisor::handle_deaths_locked(Seconds now) {
  for (std::size_t r = 0; r < ranks_.size(); ++r) {
    RankInfo& info = ranks_[r];
    if (info.state != RankState::kDeadPending) continue;
    const int rank = static_cast<int>(r);
    const Seconds delay = now - info.death_time;
    ++stats_.crashes_detected;
    stats_.max_detection_delay = std::max(stats_.max_detection_delay, delay);
    if (failover_[r]) {
      // Separate I/O task: abandon the rank; Doppler ranks observe
      // failed() and promote to embedded reads. The release store is the
      // publication point probe-after-failed relies on.
      info.state = RankState::kAbandoned;
      ++stats_.io_failovers;
      failed_flags_[r].store(true, std::memory_order_release);
      trace_event("supervisor.failover", rank, info.crash_site);
    } else if (aborted_) {
      info.state = RankState::kAbandoned;
    } else if (total_respawns_ >= opts_.max_respawns) {
      info.state = RankState::kAbandoned;
      abort_locked("respawn budget (" + std::to_string(opts_.max_respawns) +
                   ") exhausted at rank " + std::to_string(rank));
    } else {
      ++total_respawns_;
      ++stats_.ranks_respawned;
      info.state = RankState::kAlive;
      trace_event("supervisor.respawn", rank, info.crash_site);
      respawned_.emplace_back([this, rank] { run_rank(rank); });
    }
  }
}

void Supervisor::monitor_loop() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock,
                 std::chrono::duration<double>(opts_.heartbeat_interval));
    if (stop_) break;
    const Seconds now = monotonic_now();
    handle_deaths_locked(now);
    cv_.notify_all();  // finish() waits on terminal-state transitions
    if (opts_.hang_timeout > 0 && !aborted_) {
      // Watchdog: heartbeat silence across every non-terminal rank means
      // the run is wedged (e.g. an unsupervised deadlock) — abort it.
      Seconds latest = -1;
      for (std::size_t r = 0; r < ranks_.size(); ++r) {
        if (ranks_[r].state != RankState::kAlive) continue;
        latest = std::max(latest, beats_[r].load(std::memory_order_relaxed));
      }
      if (latest >= 0 && now - latest > opts_.hang_timeout) {
        abort_locked("no heartbeat from any live rank in " +
                     std::to_string(opts_.hang_timeout) + " s");
      }
    }
  }
  // Drain any death reported between the last poll and stop: finish()
  // only stops the monitor once every rank is terminal, so this is just
  // belt and braces for destructor-path teardown.
  handle_deaths_locked(monotonic_now());
}

void Supervisor::abort_locked(const std::string& why) {
  if (aborted_) return;
  aborted_ = true;
  abort_reason_ = why;
  aborted_flag_.store(true, std::memory_order_release);
  trace_event("supervisor.abort", -1, why);
  // Black-box dump before anything unwinds: the run is lost, but the trace
  // so far plus the flight ring's last events land next to where the trace
  // session would have exported (`<trace>.crash`). The session's own export
  // still runs on the unwind path and overwrites the truncated trace with
  // the final one — the ring dump is the part only this hook can save.
  obs::dump_crash_artifacts("supervisor abort: " + why);
  // Wake every blocked receiver world-wide: they unwind with
  // MailboxClosed and run_rank marks them finished.
  world_.close_all_mailboxes();
  cv_.notify_all();
}

bool Supervisor::all_terminal_locked() const {
  for (const RankInfo& info : ranks_) {
    if (info.state == RankState::kAlive || info.state == RankState::kDeadPending) {
      return false;
    }
  }
  return true;
}

void Supervisor::finish() {
  {
    // The world's threads have returned, but a replacement may still be
    // replaying its tail CPIs (its original thread died and returned
    // early) — wait for every rank to reach a terminal state before
    // stopping the monitor, or a death reported now would go unhandled.
    std::unique_lock lock(mu_);
    cv_.wait(lock, [this] { return all_terminal_locked(); });
    stop_ = true;
  }
  cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  for (auto& t : respawned_) {
    if (t.joinable()) t.join();
  }
  respawned_.clear();
  std::lock_guard lock(mu_);
  if (first_error_) std::rethrow_exception(first_error_);
  if (aborted_) {
    throw RuntimeError("supervised run aborted: " + abort_reason_);
  }
}

RecoveryStats Supervisor::stats() const {
  std::lock_guard lock(mu_);
  RecoveryStats out = stats_;
  out.promoted_reads = promoted_reads_.load(std::memory_order_relaxed);
  for (const auto& ring : rings_) {
    out.replayed_messages += ring->messages_replayed();
    out.checkpoint_peak_bytes += ring->peak_bytes();
  }
  return out;
}

}  // namespace pstap::pipeline
