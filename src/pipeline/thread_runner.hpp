// ThreadRunner: functional execution of a PipelineSpec.
//
// Every node of the paper's machine becomes an mp thread-rank running the
// real STAP kernels on real striped files: the Doppler task (or the
// separate parallel-read task) reads its exclusive file region per CPI —
// asynchronously prefetching the next CPI where the file system supports
// it — and the stages exchange data slices exactly along the paper's
// spatial/temporal dependency edges. The result carries both the fused
// detection reports (for correctness checks) and per-task phase timings
// (receive / compute / send, averaged over the timed CPIs).
//
// Wall-clock numbers from this backend reflect the host, not the paper's
// machines — the reproduced tables come from sim::SimRunner. This backend
// exists to prove the pipeline organizations *work* end to end.
#pragma once

#include <filesystem>
#include <memory>
#include <vector>

#include "common/fault.hpp"
#include "common/retry.hpp"
#include "mp/world.hpp"
#include "pfs/striped_file_system.hpp"
#include "pipeline/metrics.hpp"
#include "pipeline/supervisor.hpp"
#include "pipeline/task_spec.hpp"
#include "stap/cfar.hpp"
#include "stap/cube_io.hpp"
#include "stap/scene.hpp"
#include "stap/weights.hpp"

namespace pstap::pipeline {

struct RunOptions {
  int cpis = 4;        ///< CPIs pushed through the pipeline
  int warmup = 1;      ///< leading CPIs excluded from the timing averages
  std::uint64_t seed = 1;
  stap::SceneConfig scene;
  std::filesystem::path fs_root;            ///< striped file system mount point
  pfs::PfsConfig fs_config;                 ///< defaults to paragon_pfs(4)
  std::size_t round_robin_files = 4;        ///< the paper's 4-file rotation

  /// On-disk CPI element order. kPulseMajor (an ADC streaming order) makes
  /// per-node slab reads strided; supported for embedded I/O only.
  stap::FileLayout file_layout = stap::FileLayout::kRangeMajor;

  /// With kPulseMajor + embedded I/O: use the two-phase collective read
  /// (conforming reads + interconnect redistribution) instead of per-node
  /// strided gather reads.
  bool collective_io = false;

  /// If non-empty, the fused detection reports are written back to the
  /// striped file system as a detection log of this name (one block per
  /// CPI; see stap::DetectionLogWriter) — the pipeline's output side.
  std::string detection_log;

  /// Numerical route used by the weight-computation tasks.
  stap::WeightSolver weight_solver = stap::WeightSolver::kCholeskySmi;

  /// Retry policy for the per-CPI slab reads (transient I/O faults are
  /// retried with backoff, each attempt bounded by attempt_timeout). The
  /// default is fail-fast: one attempt, no timeout.
  RetryPolicy io_retry;

  /// Fault plan installed (process-wide, via fault::FaultScope) for the
  /// duration of run() — the radar-side writes and the pipeline reads both
  /// run under it, so arm read sites ("pfs.server.read.*") rather than a
  /// whole server when only the pipeline side should fault.
  std::shared_ptr<fault::FaultPlan> fault_plan;

  /// Supervision and recovery (see pipeline/supervisor.hpp). When enabled,
  /// ranks beat and expose crash sites "pipeline.rank.<R>" (CPI start) and
  /// "pipeline.rank.<R>.send" (send-phase start); a crashed compute rank is
  /// respawned and replays from its checkpoint, a crashed separate-I/O rank
  /// triggers Doppler failover to embedded reads. Not combinable with
  /// collective_io (collectives have no replay path). Crash sites are only
  /// evaluated under supervision — an unsupervised crash would wedge peers.
  SupervisorOptions supervise;

  /// Chrome trace_event JSON output. Non-empty: run() records a trace (per
  /// rank/CPI/phase spans, I/O server activity, fault markers) and writes
  /// it here. Empty: the PSTAP_TRACE environment variable is consulted;
  /// unset leaves tracing off (one relaxed load per would-be event).
  std::filesystem::path trace_path;

  /// Structured RunReport JSON output (obs/report.hpp): geometry, config,
  /// per-task phase histograms, per-server I/O service times, recovery
  /// counters. Non-empty: run() writes the report document here. Empty:
  /// the PSTAP_REPORT environment variable is consulted; unset leaves
  /// reporting off. When an outer ReportSession is already active (a bench
  /// main collecting a sweep) this run contributes to its document instead.
  std::filesystem::path report_path;

  /// Report label (the diff key in report_diff.py). Empty -> derived:
  /// "functional <io-strategy> n=<total_nodes>".
  std::string report_label;

  /// Rank-thread placement (thread pinning, NUMA intent) passed straight to
  /// the mp::World backing the run. Default: unpinned, as before.
  mp::WorldOptions world;

  RunOptions() : fs_config(pfs::paragon_pfs(4)) {}
};

struct RunResult {
  PipelineMetrics metrics;                  ///< per-task phase times (averaged)
  std::vector<stap::Detection> detections;  ///< all CPIs, cpi field filled
  int timed_cpis = 0;

  /// CPIs dropped by graceful degradation (ascending, deduplicated).
  /// Their detections are suppressed; metrics.dropped_cpis is the count.
  std::vector<int> dropped_cpis;
};

class ThreadRunner {
 public:
  ThreadRunner(PipelineSpec spec, RunOptions options);

  /// Write the round-robin CPI files (the radar side), spin up one thread
  /// per node, run options.cpis CPIs through the pipeline and collect
  /// timings and detections. May be called repeatedly.
  RunResult run();

  const PipelineSpec& spec() const noexcept { return spec_; }

 private:
  PipelineSpec spec_;
  RunOptions options_;
};

}  // namespace pstap::pipeline
