#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace pstap::obs {

namespace {
constexpr double kMinValue = 1e-9;     // lower bound of bucket 0
constexpr double kLog2Ratio = 0.5;     // ratio sqrt(2) => 2 buckets per octave
}  // namespace

std::size_t Histogram::bucket_index(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN
  const double i = std::floor(std::log2(value / kMinValue) / kLog2Ratio);
  if (i >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(i);
}

double Histogram::bucket_lower_bound(std::size_t i) {
  return kMinValue * std::exp2(kLog2Ratio * static_cast<double>(i));
}

void Histogram::record(double value) {
  if (std::isnan(value)) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);

  // Extrema via CAS; initialize both from the first observation. The first
  // recorder wins the init race because count_ is bumped after the seed.
  if (count_.fetch_add(1, std::memory_order_acq_rel) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const Histogram& other) {
  // Derive the observation count from the bucket loads themselves instead
  // of trusting other.count_: record() bumps bucket, then sum, then count,
  // so under concurrent recording count_ lags the buckets and a copy keyed
  // on it would be torn (count < sum of buckets breaks quantile()'s rank
  // arithmetic). Whatever set of buckets we read here is the set we count.
  std::uint64_t n = 0;
  std::size_t lo_bucket = kBuckets;
  std::size_t hi_bucket = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) {
      buckets_[i].fetch_add(c, std::memory_order_relaxed);
      n += c;
      lo_bucket = std::min(lo_bucket, i);
      hi_bucket = i;
    }
  }
  if (n == 0) return;
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  // other's extrema are seeded after its count_; mid-record they may still
  // be unset, so fall back to the observed buckets' geometric bounds.
  double other_min = other.min_.load(std::memory_order_relaxed);
  double other_max = other.max_.load(std::memory_order_relaxed);
  if (other.count_.load(std::memory_order_relaxed) == 0) {
    other_min = bucket_lower_bound(lo_bucket);
    other_max = bucket_lower_bound(hi_bucket + 1);
  }
  if (count_.fetch_add(n, std::memory_order_acq_rel) == 0) {
    min_.store(other_min, std::memory_order_relaxed);
    max_.store(other_max, std::memory_order_relaxed);
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (other_min < seen &&
         !min_.compare_exchange_weak(seen, other_min, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_.compare_exchange_weak(seen, other_max, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      const double lo = bucket_lower_bound(i);
      const double hi = bucket_lower_bound(i + 1);
      return std::clamp(std::sqrt(lo * hi), min(), max());
    }
  }
  return max();
}

namespace {

void write_double(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);  // round-trips binary64
  out << buf;
}

/// Minimal scanner for the exact shape Histogram::to_json emits (plus
/// arbitrary extra keys, which are skipped): enough JSON for round-trip,
/// not a general parser.
class HistJsonScanner {
 public:
  explicit HistJsonScanner(std::string_view s) : s_(s) {}

  void parse_into(std::uint64_t& count, double& sum, double& min, double& max,
                  std::vector<std::pair<std::size_t, std::uint64_t>>& buckets) {
    expect('{');
    if (peek() == '}') {
      get();
      return;
    }
    while (true) {
      const std::string key = string_token();
      expect(':');
      if (key == "count") {
        count = static_cast<std::uint64_t>(number_token());
      } else if (key == "sum") {
        sum = number_token();
      } else if (key == "min") {
        min = number_token();
      } else if (key == "max") {
        max = number_token();
      } else if (key == "buckets") {
        bucket_array(buckets);
      } else {
        skip_value();  // p50/p95/p99 and any future additions
      }
      const char c = get();
      if (c == '}') return;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

 private:
  [[noreturn]] void fail(const char* why) {
    throw std::runtime_error(std::string("Histogram::from_json: ") + why);
  }

  char peek() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (get() != c) fail("unexpected token");
  }

  std::string string_token() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;  // keys we care about have no escapes
      if (pos_ < s_.size()) out.push_back(s_[pos_++]);
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  double number_token() {
    peek();
    std::size_t used = 0;
    double v = 0;
    try {
      v = std::stod(std::string(s_.substr(pos_)), &used);
    } catch (const std::exception&) {
      fail("expected a number");
    }
    pos_ += used;
    return v;
  }

  void bucket_array(std::vector<std::pair<std::size_t, std::uint64_t>>& out) {
    expect('[');
    if (peek() == ']') {
      get();
      return;
    }
    while (true) {
      expect('[');
      const double idx = number_token();
      expect(',');
      const double cnt = number_token();
      expect(']');
      if (idx < 0 || idx >= static_cast<double>(Histogram::kBuckets)) {
        fail("bucket index out of range");
      }
      if (cnt < 0) fail("negative bucket count");
      out.emplace_back(static_cast<std::size_t>(idx),
                       static_cast<std::uint64_t>(cnt));
      const char c = get();
      if (c == ']') return;
      if (c != ',') fail("expected ',' or ']' in buckets");
    }
  }

  void skip_value() {
    const char c = peek();
    if (c == '"') {
      string_token();
      return;
    }
    if (c == '[' || c == '{') {
      const char open = get();
      const char close = open == '[' ? ']' : '}';
      int depth = 1;
      while (depth > 0) {
        const char t = get();
        if (t == '"') {
          --pos_;
          string_token();
        } else if (t == open) {
          ++depth;
        } else if (t == close) {
          --depth;
        }
      }
      return;
    }
    number_token();
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

void Histogram::to_json(std::ostream& out) const {
  // Read the buckets once and derive count from them (same consistency
  // rule as merge): the serialized document always satisfies
  // count == sum(bucket counts), the invariant from_json and report
  // tooling validate.
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    n += counts[i];
  }
  out << "{\"count\":" << n << ",\"sum\":";
  write_double(out, n == 0 ? 0.0 : sum());
  out << ",\"min\":";
  write_double(out, min());
  out << ",\"max\":";
  write_double(out, max());
  out << ",\"p50\":";
  write_double(out, p50());
  out << ",\"p95\":";
  write_double(out, p95());
  out << ",\"p99\":";
  write_double(out, p99());
  out << ",\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (!first) out << ",";
    first = false;
    out << "[" << i << "," << counts[i] << "]";
  }
  out << "]}";
}

std::string Histogram::to_json() const {
  std::ostringstream out;
  to_json(out);
  return out.str();
}

Histogram Histogram::from_json(std::string_view json) {
  std::uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
  HistJsonScanner(json).parse_into(count, sum, min, max, buckets);

  Histogram h;
  std::uint64_t n = 0;
  for (const auto& [i, c] : buckets) {
    h.buckets_[i].store(c, std::memory_order_relaxed);
    n += c;
  }
  if (count != n) {
    throw std::runtime_error(
        "Histogram::from_json: count does not match bucket totals");
  }
  h.count_.store(n, std::memory_order_relaxed);
  h.sum_.store(sum, std::memory_order_relaxed);
  h.min_.store(min, std::memory_order_relaxed);
  h.max_.store(max, std::memory_order_relaxed);
  return h;
}

void Gauge::raise_peak(std::int64_t v) {
  std::int64_t seen = peak_.load(std::memory_order_relaxed);
  while (v > seen &&
         !peak_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Gauge::set(std::int64_t v) {
  value_.store(v, std::memory_order_relaxed);
  raise_peak(v);
}

std::int64_t Gauge::add(std::int64_t n) {
  const std::int64_t now = value_.fetch_add(n, std::memory_order_relaxed) + n;
  raise_peak(now);
  return now;
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed (see trace.cpp)
  return *registry;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard lock(mu_);
  RegistrySnapshot snap;
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, *h);  // copy ctor = consistent merge
  }
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, std::make_pair(g->value(), g->peak()));
  }
  return snap;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::vector<std::pair<std::string, const Counter*>> Registry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> Registry::gauges() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::string Registry::report() const {
  std::ostringstream out;
  char line[256];
  for (const auto& [name, h] : histograms()) {
    if (h->count() == 0) continue;
    std::snprintf(line, sizeof line,
                  "%-32s n=%-8llu mean=%-10.4g p50=%-10.4g p95=%-10.4g "
                  "p99=%-10.4g max=%.4g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->mean(), h->p50(), h->p95(), h->p99(), h->max());
    out << line;
  }
  for (const auto& [name, c] : counters()) {
    if (c->value() == 0) continue;
    std::snprintf(line, sizeof line, "%-32s %lld\n", name.c_str(),
                  static_cast<long long>(c->value()));
    out << line;
  }
  for (const auto& [name, g] : gauges()) {
    if (g->value() == 0 && g->peak() == 0) continue;
    std::snprintf(line, sizeof line, "%-32s value=%lld peak=%lld\n",
                  name.c_str(), static_cast<long long>(g->value()),
                  static_cast<long long>(g->peak()));
    out << line;
  }
  return out.str();
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
}

}  // namespace pstap::obs
