#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pstap::obs {

namespace {
constexpr double kMinValue = 1e-9;     // lower bound of bucket 0
constexpr double kLog2Ratio = 0.5;     // ratio sqrt(2) => 2 buckets per octave
}  // namespace

std::size_t Histogram::bucket_index(double value) {
  if (!(value > kMinValue)) return 0;  // also catches NaN
  const double i = std::floor(std::log2(value / kMinValue) / kLog2Ratio);
  if (i >= static_cast<double>(kBuckets - 1)) return kBuckets - 1;
  return static_cast<std::size_t>(i);
}

double Histogram::bucket_lower_bound(std::size_t i) {
  return kMinValue * std::exp2(kLog2Ratio * static_cast<double>(i));
}

void Histogram::record(double value) {
  if (std::isnan(value)) return;
  buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);

  // Extrema via CAS; initialize both from the first observation. The first
  // recorder wins the init race because count_ is bumped after the seed.
  if (count_.fetch_add(1, std::memory_order_acq_rel) == 0) {
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::merge(const Histogram& other) {
  const std::uint64_t n = other.count_.load(std::memory_order_relaxed);
  if (n == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = other.buckets_[i].load(std::memory_order_relaxed);
    if (c != 0) buckets_[i].fetch_add(c, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
  const double other_min = other.min_.load(std::memory_order_relaxed);
  const double other_max = other.max_.load(std::memory_order_relaxed);
  if (count_.fetch_add(n, std::memory_order_acq_rel) == 0) {
    min_.store(other_min, std::memory_order_relaxed);
    max_.store(other_max, std::memory_order_relaxed);
  }
  double seen = min_.load(std::memory_order_relaxed);
  while (other_min < seen &&
         !min_.compare_exchange_weak(seen, other_min, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (other_max > seen &&
         !max_.compare_exchange_weak(seen, other_max, std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p * static_cast<double>(total))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      const double lo = bucket_lower_bound(i);
      const double hi = bucket_lower_bound(i + 1);
      return std::clamp(std::sqrt(lo * hi), min(), max());
    }
  }
  return max();
}

void Gauge::raise_peak(std::int64_t v) {
  std::int64_t seen = peak_.load(std::memory_order_relaxed);
  while (v > seen &&
         !peak_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Gauge::set(std::int64_t v) {
  value_.store(v, std::memory_order_relaxed);
  raise_peak(v);
}

std::int64_t Gauge::add(std::int64_t n) {
  const std::int64_t now = value_.fetch_add(n, std::memory_order_relaxed) + n;
  raise_peak(now);
  return now;
}

void Gauge::reset() {
  value_.store(0, std::memory_order_relaxed);
  peak_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* registry = new Registry();  // never destroyed (see trace.cpp)
  return *registry;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

std::vector<std::pair<std::string, const Histogram*>> Registry::histograms()
    const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

std::vector<std::pair<std::string, const Counter*>> Registry::counters() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> Registry::gauges() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::string Registry::report() const {
  std::ostringstream out;
  char line[256];
  for (const auto& [name, h] : histograms()) {
    if (h->count() == 0) continue;
    std::snprintf(line, sizeof line,
                  "%-32s n=%-8llu mean=%-10.4g p50=%-10.4g p95=%-10.4g "
                  "p99=%-10.4g max=%.4g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->mean(), h->p50(), h->p95(), h->p99(), h->max());
    out << line;
  }
  for (const auto& [name, c] : counters()) {
    if (c->value() == 0) continue;
    std::snprintf(line, sizeof line, "%-32s %lld\n", name.c_str(),
                  static_cast<long long>(c->value()));
    out << line;
  }
  for (const auto& [name, g] : gauges()) {
    if (g->value() == 0 && g->peak() == 0) continue;
    std::snprintf(line, sizeof line, "%-32s value=%lld peak=%lld\n",
                  name.c_str(), static_cast<long long>(g->value()),
                  static_cast<long long>(g->peak()));
    out << line;
  }
  return out.str();
}

void Registry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
}

}  // namespace pstap::obs
