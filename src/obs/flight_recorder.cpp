#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <sstream>

#include "obs/trace.hpp"

namespace pstap::obs {

namespace detail {
namespace {
bool flight_default() {
  const char* env = std::getenv("PSTAP_FLIGHT");
  return env == nullptr || std::string_view(env) != "0";
}
}  // namespace
std::atomic<bool> g_flight_enabled{flight_default()};
}  // namespace detail

namespace {

void json_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed:
  return *recorder;  // signal handlers may fire during static teardown
}

FlightRecorder::Ring& FlightRecorder::local_ring() {
  // One ring per (process, thread), registered on a lock-free list and never
  // freed: a post-mortem dump must be able to walk rings of threads that
  // have already exited, without taking a lock a dying thread might hold.
  thread_local Ring* t_ring = nullptr;
  if (t_ring == nullptr) {
    Ring* ring = new Ring();
    ring->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    Ring* head = rings_.load(std::memory_order_acquire);
    do {
      ring->next = head;
    } while (!rings_.compare_exchange_weak(head, ring,
                                           std::memory_order_release,
                                           std::memory_order_acquire));
    t_ring = ring;
  }
  return *t_ring;
}

void FlightRecorder::record(Kind kind, const char* cat, std::string_view name,
                            std::int32_t pid, std::int64_t ts_ns,
                            std::int64_t dur_ns, std::int64_t cpi) {
  Ring& ring = local_ring();
  const std::uint64_t seq = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[seq % kRingEvents];

  // Invalidate while rewriting so a concurrent dump skips the slot instead
  // of decoding a half-old, half-new event. All stores are relaxed except
  // the final kind (release), which publishes the slot.
  slot.kind.store(0, std::memory_order_relaxed);
  slot.pid.store(pid, std::memory_order_relaxed);
  slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
  slot.dur_ns.store(dur_ns, std::memory_order_relaxed);
  slot.cpi.store(cpi, std::memory_order_relaxed);
  const std::size_t n = std::min(name.size(), kNameLen - 1);
  for (std::size_t i = 0; i < n; ++i) {
    slot.name[i].store(name[i], std::memory_order_relaxed);
  }
  slot.name[n].store('\0', std::memory_order_relaxed);
  const std::size_t m =
      std::min(cat == nullptr ? 0 : std::string_view(cat).size(), kCatLen - 1);
  for (std::size_t i = 0; i < m; ++i) {
    slot.cat[i].store(cat[i], std::memory_order_relaxed);
  }
  slot.cat[m].store('\0', std::memory_order_relaxed);
  slot.kind.store(static_cast<int>(kind), std::memory_order_release);
  ring.head.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::record_span(const char* cat, std::string_view name,
                                 std::int32_t pid, std::int64_t ts_ns,
                                 std::int64_t dur_ns, std::int64_t cpi) {
  record(Kind::kSpan, cat, name, pid, ts_ns, dur_ns, cpi);
}

void FlightRecorder::record_instant(const char* cat, std::string_view name,
                                    std::int32_t pid, std::int64_t ts_ns,
                                    std::int64_t cpi) {
  record(Kind::kInstant, cat, name, pid, ts_ns, 0, cpi);
}

void FlightRecorder::clear() {
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    for (Slot& slot : ring->slots) {
      slot.kind.store(0, std::memory_order_relaxed);
    }
    ring->head.store(0, std::memory_order_relaxed);
  }
}

std::vector<FlightRecorder::Event> FlightRecorder::snapshot() const {
  std::vector<Event> out;
  for (Ring* ring = rings_.load(std::memory_order_acquire); ring != nullptr;
       ring = ring->next) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t lo = head > kRingEvents ? head - kRingEvents : 0;
    for (std::uint64_t seq = lo; seq < head; ++seq) {
      const Slot& slot = ring->slots[seq % kRingEvents];
      const int kind = slot.kind.load(std::memory_order_acquire);
      if (kind != static_cast<int>(Kind::kSpan) &&
          kind != static_cast<int>(Kind::kInstant)) {
        continue;  // empty, or mid-rewrite by its owner thread
      }
      Event e;
      e.kind = static_cast<Kind>(kind);
      e.pid = slot.pid.load(std::memory_order_relaxed);
      e.tid = ring->tid;
      e.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
      e.dur_ns = slot.dur_ns.load(std::memory_order_relaxed);
      e.cpi = slot.cpi.load(std::memory_order_relaxed);
      e.name.reserve(kNameLen);
      for (std::size_t i = 0; i < kNameLen; ++i) {
        const char c = slot.name[i].load(std::memory_order_relaxed);
        if (c == '\0') break;
        e.name.push_back(c);
      }
      e.cat.reserve(kCatLen);
      for (std::size_t i = 0; i < kCatLen; ++i) {
        const char c = slot.cat[i].load(std::memory_order_relaxed);
        if (c == '\0') break;
        e.cat.push_back(c);
      }
      out.push_back(std::move(e));
    }
  }
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    return a.ts_ns < b.ts_ns;
  });
  return out;
}

void FlightRecorder::write_ring_json(std::ostream& out,
                                     std::string_view reason) const {
  const std::vector<Event> events = snapshot();
  out << "{\"schema_version\":1,\"kind\":\"flight_ring\",\"reason\":\"";
  json_escape(out, reason);
  out << "\",\"events\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"kind\":\""
        << (e.kind == Kind::kSpan ? "span" : "instant") << "\",\"name\":\"";
    json_escape(out, e.name);
    out << "\",\"cat\":\"";
    json_escape(out, e.cat);
    out << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid
        << ",\"ts_ns\":" << e.ts_ns;
    if (e.kind == Kind::kSpan) out << ",\"dur_ns\":" << e.dur_ns;
    if (e.cpi >= 0) out << ",\"cpi\":" << e.cpi;
    out << "}";
  }
  out << "\n]}\n";
}

void FlightRecorder::set_crash_base(const std::filesystem::path& base) {
  const std::string s = base.string();
  const std::size_t n = std::min(s.size(), kPathLen - 1);
  for (std::size_t i = 0; i < n; ++i) {
    crash_base_[i].store(s[i], std::memory_order_relaxed);
  }
  crash_base_[n].store('\0', std::memory_order_release);
}

std::string FlightRecorder::crash_base() const {
  std::string s;
  s.reserve(64);
  for (std::size_t i = 0; i < kPathLen; ++i) {
    const char c = crash_base_[i].load(std::memory_order_acquire);
    if (c == '\0') break;
    s.push_back(c);
  }
  return s;
}

bool dump_crash_artifacts(std::string_view reason) {
  // One dump at a time; a crash inside the dump (signal handlers are not
  // async-signal-safe here — accepted for a best-effort post-mortem) falls
  // through to the default handler instead of recursing.
  static std::atomic<bool> in_progress{false};
  if (in_progress.exchange(true, std::memory_order_acq_rel)) return false;

  std::string base = FlightRecorder::global().crash_base();
  if (base.empty()) {
    if (const char* env = std::getenv("PSTAP_TRACE"); env != nullptr && *env) {
      base = env;
    }
  }
  bool wrote = false;
  if (!base.empty()) {
    // Ring dump first — it is the lock-free artifact and must not be held
    // up by whatever state the trace recorder's mutexes are in.
    {
      std::ostringstream doc;
      FlightRecorder::global().write_ring_json(doc, reason);
      std::ofstream out(base + ".crash", std::ios::trunc);
      out << doc.str();
      out.flush();
      wrote = out.good();
    }
    // Best-effort Chrome trace: only while a session is live (never clobber
    // a finished export), and skipping any thread buffer whose lock is held
    // mid-append. The document is built in memory and written in one pass,
    // so the file on disk is always complete JSON.
    if (trace_enabled()) {
      TraceRecorder::global().write_chrome_json_best_effort(base);
    }
  }
  in_progress.store(false, std::memory_order_release);
  return wrote;
}

namespace {

std::terminate_handler g_prev_terminate = nullptr;

extern "C" void pstap_fatal_signal_handler(int sig) {
  char reason[64];
  std::snprintf(reason, sizeof reason, "fatal signal %d", sig);
  dump_crash_artifacts(reason);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

[[noreturn]] void pstap_terminate_handler() {
  dump_crash_artifacts("std::terminate");
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

}  // namespace

void install_crash_handlers() {
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_acq_rel)) return;
  for (const int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    std::signal(sig, &pstap_fatal_signal_handler);
  }
  g_prev_terminate = std::set_terminate(&pstap_terminate_handler);
}

}  // namespace pstap::obs
