// Structured RunReport export: one versioned JSON document per run (or per
// bench sweep) carrying everything the paper's tables are built from —
// cube geometry, partition/task mapping, per-task phase distributions
// (p50/p95/p99 plus the full bucket dump, so histograms merge losslessly
// across runs), per-server I/O service-time histograms, recovery counters
// and wall/CPU time. scripts/report_diff.py consumes these to attribute
// end-to-end latency deltas to specific stages and servers; the ROADMAP's
// auto-partitioner is the next consumer.
//
// Schema versioning rule: "schema_version" counts breaking changes only.
// Adding a key is NOT a version bump (consumers must ignore unknown keys);
// removing, renaming or re-typing one is, and requires updating
// report_diff.py --validate plus the committed golden report in the same
// change.
//
// Producers (ThreadRunner, SimRunner, bench mains) build a RunReport and
// hand it to ReportCollector::global() when report_enabled(); a
// ReportSession — opened from RunOptions::report_path or $PSTAP_REPORT —
// owns the export, mirroring TraceSession's nesting rules, so a bench main
// holding the outer session collects every run it drives into one document.
//
// This library sits below common/ (it depends on nothing in pstap).
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace pstap::obs {

inline constexpr int kReportSchemaVersion = 1;

/// Everything one run wants to say for itself. Fields left at their
/// defaults are still serialized (a report is a fixed-shape record, not a
/// sparse bag), except the `present`-gated sections.
struct RunReport {
  std::string label;  ///< unique within a document; diff key
  std::string kind;   ///< "functional" | "sim"

  struct Geometry {
    std::size_t channels = 0;
    std::size_t pulses = 0;
    std::size_t ranges = 0;
    std::size_t beams = 0;
    std::size_t doppler_bins = 0;
    std::uint64_t cube_bytes = 0;
  };
  Geometry geometry;

  struct Config {
    std::string machine;       ///< sim machine model name; "" for functional
    std::string io_strategy;   ///< "embedded" | "separate"
    bool combined_pc_cfar = false;
    std::size_t stripe_factor = 0;
    std::string simd_backend;  ///< from simd::active() at run time
    int cpis = 0;
    int warmup = 0;
    int total_nodes = 0;
    bool pin_threads = false;
    bool numa_interleave = false;
    int straggler_servers = 0;       ///< sim: slowed I/O servers
    double straggler_slowdown = 1.0;
  };
  Config config;

  struct Totals {
    double throughput_cpis_per_s = 0;
    double latency_s = 0;
    double wall_s = 0;   ///< functional only (sim time is not wall time)
    double cpu_s = 0;    ///< process CPU, functional only
    int dropped_cpis = 0;
  };
  Totals totals;

  /// One measured phase of one task. `mean_s` is the scalar the paper's
  /// tables print (slowest node's average); `hist` keeps the per-CPI tail
  /// (empty in sim reports for receive/compute/send, which are modeled
  /// constants — sim contributes a "service" phase histogram instead).
  struct Phase {
    std::string name;  ///< "receive" | "compute" | "send" | "service"
    double mean_s = 0;
    Histogram hist;
  };
  struct Task {
    std::string name;
    int nodes = 0;
    std::vector<Phase> phases;
  };
  std::vector<Task> tasks;

  struct Io {
    bool present = false;  ///< functional runs only
    Histogram queue_depth;
    Histogram service_time;
    Histogram submit_latency;
    std::vector<Histogram> server_service_time;  ///< index = server id
    std::int64_t queue_depth_peak = 0;
    std::uint64_t bytes_serviced = 0;
    std::uint64_t retries = 0;
    std::uint64_t injected_delays = 0;
    std::uint64_t injected_errors = 0;
    std::uint64_t injected_partials = 0;
    std::uint64_t injected_corruptions = 0;
    std::uint64_t corrupt_chunks = 0;
    std::uint64_t quarantined_servers = 0;
    // Straggler-defense counters (schema v1 additive, PR 9): zero unless
    // the straggler scheduler ran.
    std::uint64_t hedges_launched = 0;
    std::uint64_t hedge_wins = 0;
    std::uint64_t hedge_cancels = 0;
    std::uint64_t chunks_stolen = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t breaker_reopened = 0;
  };
  Io io;

  struct Recovery {
    bool present = false;  ///< supervised functional runs only
    std::uint64_t injected_crashes = 0;
    std::uint64_t crashes_detected = 0;
    std::uint64_t ranks_respawned = 0;
    std::uint64_t io_failovers = 0;
    std::uint64_t promoted_reads = 0;
    std::uint64_t replayed_messages = 0;
    std::uint64_t checkpoint_peak_bytes = 0;
    double max_detection_delay_s = 0;
  };
  Recovery recovery;

  /// Serialize this report as one JSON object (no enclosing document).
  void write_json(std::ostream& out) const;
};

/// Write a full report document: {"schema_version":1,"generator":"pstap",
/// "reports":[...]}. Rendered in memory and written in one pass.
void write_report_document(std::ostream& out, std::span<const RunReport> reports);
void write_report_document(const std::filesystem::path& path,
                           std::span<const RunReport> reports);

namespace detail {
extern std::atomic<bool> g_report_enabled;
}  // namespace detail

/// True while a ReportSession is collecting; producers skip report
/// assembly entirely when false.
inline bool report_enabled() {
  return detail::g_report_enabled.load(std::memory_order_relaxed);
}

/// Process-wide accumulator the active session drains on destruction.
class ReportCollector {
 public:
  static ReportCollector& global();

  void add(RunReport report);
  std::vector<RunReport> snapshot() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<RunReport> reports_;
};

/// Scope that turns report collection on and writes the document on exit.
/// Mirrors TraceSession: `path` empty means "consult $PSTAP_REPORT"; unset
/// too -> passive. Nested inside an active session -> passive, so an outer
/// owner (a bench main) collects every run into one document. An active
/// session clears the collector on entry: one session == one document.
class ReportSession {
 public:
  explicit ReportSession(std::filesystem::path path = {});
  ~ReportSession();
  ReportSession(const ReportSession&) = delete;
  ReportSession& operator=(const ReportSession&) = delete;

  bool active() const noexcept { return active_; }
  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
  bool active_ = false;
};

}  // namespace pstap::obs
