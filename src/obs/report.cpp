#include "obs/report.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>

namespace pstap::obs {

namespace detail {
std::atomic<bool> g_report_enabled{false};
}  // namespace detail

namespace {

std::atomic<bool> g_report_session_active{false};

void json_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

void write_double(std::ostream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

void key(std::ostream& out, const char* name, bool& first) {
  if (!first) out << ",";
  first = false;
  out << "\"" << name << "\":";
}

void str_field(std::ostream& out, const char* name, std::string_view v,
               bool& first) {
  key(out, name, first);
  out << "\"";
  json_escape(out, v);
  out << "\"";
}

void num_field(std::ostream& out, const char* name, double v, bool& first) {
  key(out, name, first);
  write_double(out, v);
}

void int_field(std::ostream& out, const char* name, std::int64_t v,
               bool& first) {
  key(out, name, first);
  out << v;
}

void uint_field(std::ostream& out, const char* name, std::uint64_t v,
                bool& first) {
  key(out, name, first);
  out << v;
}

void bool_field(std::ostream& out, const char* name, bool v, bool& first) {
  key(out, name, first);
  out << (v ? "true" : "false");
}

void hist_field(std::ostream& out, const char* name, const Histogram& h,
                bool& first) {
  key(out, name, first);
  h.to_json(out);
}

}  // namespace

void RunReport::write_json(std::ostream& out) const {
  out << "{";
  bool f0 = true;
  str_field(out, "label", label, f0);
  str_field(out, "kind", kind, f0);

  key(out, "geometry", f0);
  {
    out << "{";
    bool f = true;
    uint_field(out, "channels", geometry.channels, f);
    uint_field(out, "pulses", geometry.pulses, f);
    uint_field(out, "ranges", geometry.ranges, f);
    uint_field(out, "beams", geometry.beams, f);
    uint_field(out, "doppler_bins", geometry.doppler_bins, f);
    uint_field(out, "cube_bytes", geometry.cube_bytes, f);
    out << "}";
  }

  key(out, "config", f0);
  {
    out << "{";
    bool f = true;
    str_field(out, "machine", config.machine, f);
    str_field(out, "io_strategy", config.io_strategy, f);
    bool_field(out, "combined_pc_cfar", config.combined_pc_cfar, f);
    uint_field(out, "stripe_factor", config.stripe_factor, f);
    str_field(out, "simd_backend", config.simd_backend, f);
    int_field(out, "cpis", config.cpis, f);
    int_field(out, "warmup", config.warmup, f);
    int_field(out, "total_nodes", config.total_nodes, f);
    bool_field(out, "pin_threads", config.pin_threads, f);
    bool_field(out, "numa_interleave", config.numa_interleave, f);
    int_field(out, "straggler_servers", config.straggler_servers, f);
    num_field(out, "straggler_slowdown", config.straggler_slowdown, f);
    out << "}";
  }

  key(out, "totals", f0);
  {
    out << "{";
    bool f = true;
    num_field(out, "throughput_cpis_per_s", totals.throughput_cpis_per_s, f);
    num_field(out, "latency_s", totals.latency_s, f);
    num_field(out, "wall_s", totals.wall_s, f);
    num_field(out, "cpu_s", totals.cpu_s, f);
    int_field(out, "dropped_cpis", totals.dropped_cpis, f);
    out << "}";
  }

  key(out, "tasks", f0);
  out << "[";
  bool first_task = true;
  for (const Task& t : tasks) {
    if (!first_task) out << ",";
    first_task = false;
    out << "\n{";
    bool f = true;
    str_field(out, "name", t.name, f);
    int_field(out, "nodes", t.nodes, f);
    key(out, "phases", f);
    out << "[";
    bool first_phase = true;
    for (const Phase& p : t.phases) {
      if (!first_phase) out << ",";
      first_phase = false;
      out << "{";
      bool pf = true;
      str_field(out, "name", p.name, pf);
      num_field(out, "mean_s", p.mean_s, pf);
      hist_field(out, "hist", p.hist, pf);
      out << "}";
    }
    out << "]}";
  }
  out << "]";

  if (io.present) {
    key(out, "io", f0);
    out << "{";
    bool f = true;
    int_field(out, "queue_depth_peak", io.queue_depth_peak, f);
    uint_field(out, "bytes_serviced", io.bytes_serviced, f);
    uint_field(out, "retries", io.retries, f);
    uint_field(out, "injected_delays", io.injected_delays, f);
    uint_field(out, "injected_errors", io.injected_errors, f);
    uint_field(out, "injected_partials", io.injected_partials, f);
    uint_field(out, "injected_corruptions", io.injected_corruptions, f);
    uint_field(out, "corrupt_chunks", io.corrupt_chunks, f);
    uint_field(out, "quarantined_servers", io.quarantined_servers, f);
    uint_field(out, "hedges_launched", io.hedges_launched, f);
    uint_field(out, "hedge_wins", io.hedge_wins, f);
    uint_field(out, "hedge_cancels", io.hedge_cancels, f);
    uint_field(out, "chunks_stolen", io.chunks_stolen, f);
    uint_field(out, "deadline_expired", io.deadline_expired, f);
    uint_field(out, "breaker_reopened", io.breaker_reopened, f);
    hist_field(out, "queue_depth", io.queue_depth, f);
    hist_field(out, "service_time", io.service_time, f);
    hist_field(out, "submit_latency", io.submit_latency, f);
    key(out, "servers", f);
    out << "[";
    for (std::size_t s = 0; s < io.server_service_time.size(); ++s) {
      if (s != 0) out << ",";
      out << "\n{\"id\":" << s << ",\"service_time\":";
      io.server_service_time[s].to_json(out);
      out << "}";
    }
    out << "]}";
  }

  if (recovery.present) {
    key(out, "recovery", f0);
    out << "{";
    bool f = true;
    uint_field(out, "injected_crashes", recovery.injected_crashes, f);
    uint_field(out, "crashes_detected", recovery.crashes_detected, f);
    uint_field(out, "ranks_respawned", recovery.ranks_respawned, f);
    uint_field(out, "io_failovers", recovery.io_failovers, f);
    uint_field(out, "promoted_reads", recovery.promoted_reads, f);
    uint_field(out, "replayed_messages", recovery.replayed_messages, f);
    uint_field(out, "checkpoint_peak_bytes", recovery.checkpoint_peak_bytes, f);
    num_field(out, "max_detection_delay_s", recovery.max_detection_delay_s, f);
    out << "}";
  }

  out << "}";
}

void write_report_document(std::ostream& out,
                           std::span<const RunReport> reports) {
  out << "{\"schema_version\":" << kReportSchemaVersion
      << ",\"generator\":\"pstap\",\"reports\":[";
  bool first = true;
  for (const RunReport& r : reports) {
    if (!first) out << ",";
    first = false;
    out << "\n";
    r.write_json(out);
  }
  out << "\n]}\n";
}

void write_report_document(const std::filesystem::path& path,
                           std::span<const RunReport> reports) {
  // Render in memory, write in one pass (same crash-safety rule as the
  // trace exporter): the file is either absent or complete JSON.
  std::ostringstream doc;
  write_report_document(doc, reports);
  std::ofstream out(path, std::ios::trunc);
  out << doc.str();
}

ReportCollector& ReportCollector::global() {
  static ReportCollector* collector = new ReportCollector();  // never destroyed
  return *collector;
}

void ReportCollector::add(RunReport report) {
  std::lock_guard lock(mu_);
  reports_.push_back(std::move(report));
}

std::vector<RunReport> ReportCollector::snapshot() const {
  std::lock_guard lock(mu_);
  return reports_;
}

void ReportCollector::clear() {
  std::lock_guard lock(mu_);
  reports_.clear();
}

ReportSession::ReportSession(std::filesystem::path path)
    : path_(std::move(path)) {
  if (path_.empty()) {
    if (const char* env = std::getenv("PSTAP_REPORT");
        env != nullptr && *env) {
      path_ = env;
    }
  }
  if (path_.empty()) return;
  bool expected = false;
  if (!g_report_session_active.compare_exchange_strong(expected, true)) {
    // An outer session owns the document; contribute to its collection.
    path_.clear();
    return;
  }
  active_ = true;
  ReportCollector::global().clear();
  detail::g_report_enabled.store(true, std::memory_order_relaxed);
}

ReportSession::~ReportSession() {
  if (!active_) return;
  detail::g_report_enabled.store(false, std::memory_order_relaxed);
  const std::vector<RunReport> reports = ReportCollector::global().snapshot();
  write_report_document(path_, reports);
  g_report_session_active.store(false);
}

}  // namespace pstap::obs
