// Low-overhead execution tracing with Chrome trace_event JSON export.
//
// The recorder collects spans ("X" complete events), instant events ("i"),
// and counter samples ("C") into per-thread append-only buffers; export
// merges the buffers into a single `{"traceEvents":[...]}` document loadable
// in Perfetto / chrome://tracing. Streams are identified by a caller-chosen
// `pid` (pipeline world rank, I/O server, sim stage) so the UI renders one
// Gantt row group per rank; label them with set_process_name().
//
// Cost model, mirroring common/fault.hpp: when tracing is disabled (the
// default) every emit call checks two relaxed atomic loads; with the
// always-on flight ring (obs/flight_recorder.hpp) in its default state the
// event is additionally copied — allocation-free — into a fixed-size
// per-thread ring so a crashed run keeps its last moments. Disabling both
// (PSTAP_FLIGHT=0) restores the original no-clock-read, no-store fast
// path. Call sites that must build strings for event details still gate
// that work on trace_enabled(). Timestamps are nanoseconds
// from std::chrono::steady_clock, rebased at export so traces start near 0;
// simulated-time producers (sim::SimRunner) instead pass explicit
// timestamps counted from their own zero epoch.
//
// This library sits below common/ (it depends on nothing in pstap), so the
// fault layer and retry helpers can emit instant events into traces.
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace pstap::obs {

/// One recorded event. `name`/`cat` are expected to be short; `detail`
/// carries a free-form annotation (fault site, file name) into args.
struct TraceEvent {
  enum class Kind : std::uint8_t { kComplete, kInstant, kCounter, kMeta };

  Kind kind = Kind::kInstant;
  std::string name;
  const char* cat = "";       ///< static literal: "phase", "io", "fault", ...
  std::int32_t pid = 0;       ///< stream id: world rank, server, sim stage
  std::int64_t tid = 0;       ///< thread lane within the stream
  std::int64_t ts_ns = 0;     ///< start (complete) / point (instant/counter)
  std::int64_t dur_ns = 0;    ///< complete events only
  std::int64_t cpi = -1;      ///< -1 = not CPI-scoped
  double value = 0;           ///< counter events only
  std::string detail;         ///< empty = omitted from args
};

// Stream-id (pid) allocation. Pipeline world ranks use their rank number
// directly (0..N-1); the constants below keep synthetic streams clear of
// any realistic rank count.
inline constexpr std::int32_t kLibraryPid = 900;       ///< rank-less events
inline constexpr std::int32_t kIoServerPidBase = 1000; ///< + server index

namespace detail {
// Single relaxed load on the disabled path (mirrors fault's g_installed).
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True while a recorder session is collecting events.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Nanoseconds on the steady clock (the recorder's time base).
std::int64_t trace_now_ns();

/// Process-wide event recorder. All emit functions are thread-safe; each
/// thread appends to its own buffer, so enabled-path contention is nil.
class TraceRecorder {
 public:
  /// The process-wide recorder all emit helpers write to.
  static TraceRecorder& global();

  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void enable();
  void disable();

  /// Drop every recorded event (buffers stay registered to their threads).
  /// process_name labels survive: components register them at construction
  /// time, possibly before the session that will use them starts.
  void clear();

  /// Merged copy of all thread buffers, ts-ascending. Safe to call while
  /// other threads keep recording (their later events are simply missed).
  std::vector<TraceEvent> snapshot() const;

  /// Like snapshot(), but never blocks: buffers (or the registry) whose
  /// lock is currently held — e.g. by a thread that was mid-append when a
  /// fatal signal hit — are skipped instead of waited on. Crash-dump path.
  std::vector<TraceEvent> snapshot_best_effort() const;

  /// Label a pid for the trace UI ("rank 3", "pfs sd001", ...).
  void set_process_name(std::int32_t pid, std::string name);

  /// Write the Chrome trace_event JSON document. Wall-clock timestamps are
  /// rebased to the smallest recorded ts; explicit-timestamp (simulated)
  /// events are written as recorded. The document is rendered in memory
  /// and written to `path` in a single pass, so the file is either absent
  /// or complete JSON — never truncated mid-event.
  void write_chrome_json(std::ostream& out) const;
  void write_chrome_json(const std::filesystem::path& path) const;

  /// Crash-safe export: snapshot_best_effort() rendered and written in one
  /// pass. Emits a valid (possibly truncated) trace even while emitter
  /// threads are wedged holding their buffer locks.
  void write_chrome_json_best_effort(const std::filesystem::path& path) const;

  // ------------------------------------------------------------ emitting --
  // While tracing is disabled these only feed the flight ring (if enabled);
  // with both off they are no-ops costing two relaxed loads. counter() is
  // trace-only (sampled levels carry no post-mortem value).

  /// A span: [ts_ns, ts_ns + dur_ns). Explicit timestamps, for producers
  /// with their own clock (sim) or deferred emission (ScopedSpan).
  void complete(const char* cat, std::string_view name, std::int32_t pid,
                std::int64_t ts_ns, std::int64_t dur_ns, std::int64_t cpi = -1,
                std::string_view detail = {}, std::int64_t tid = -1);

  /// A point-in-time marker at now (fault hit, retry attempt, drop).
  void instant(const char* cat, std::string_view name, std::int32_t pid,
               std::int64_t cpi = -1, std::string_view detail = {});

  /// Same, with an explicit timestamp (simulated-time producers).
  void instant_at(const char* cat, std::string_view name, std::int32_t pid,
                  std::int64_t ts_ns, std::int64_t cpi = -1,
                  std::string_view detail = {});

  /// A sampled counter value at now (queue depth, bytes in flight).
  void counter(const char* cat, std::string_view name, std::int32_t pid,
               double value);

 private:
  struct ThreadBuffer;

  ThreadBuffer& local_buffer();
  void append(TraceEvent event);

  mutable std::mutex mu_;  // guards buffers_ registration and meta_
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<TraceEvent> meta_;  // process_name metadata events
  std::atomic<std::int64_t> next_tid_{0};
};

/// RAII span: measures once on destruction and, from the SAME clock reads,
/// adds the elapsed seconds to `sink` (if any), records them into `hist`
/// (if any), emits the span (if tracing is enabled), and feeds the flight
/// ring (if enabled — the default) — wall-clock accounting, distributions,
/// traces and the post-mortem ring can never disagree. With no sink, no
/// histogram, tracing off and the flight ring off, construction is two
/// relaxed loads.
class ScopedSpan {
 public:
  ScopedSpan(const char* cat, const char* name, std::int32_t pid,
             double* sink_seconds = nullptr, std::int64_t cpi = -1,
             Histogram* hist = nullptr)
      : cat_(cat), name_(name), pid_(pid), sink_(sink_seconds), hist_(hist),
        cpi_(cpi), active_(trace_enabled()), flight_(flight_enabled()) {
    if (active_ || flight_ || sink_ != nullptr || hist_ != nullptr) {
      start_ns_ = trace_now_ns();
    }
  }

  ~ScopedSpan() {
    if (!active_ && !flight_ && sink_ == nullptr && hist_ == nullptr) return;
    const std::int64_t dur = trace_now_ns() - start_ns_;
    const double seconds = static_cast<double>(dur) * 1e-9;
    if (sink_ != nullptr) *sink_ += seconds;
    if (hist_ != nullptr) hist_->record(seconds);
    if (active_) {
      // complete() also copies the span into the flight ring.
      TraceRecorder::global().complete(cat_, name_, pid_, start_ns_, dur, cpi_);
    } else if (flight_) {
      FlightRecorder::global().record_span(cat_, name_, pid_, start_ns_, dur,
                                           cpi_);
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* cat_;
  const char* name_;
  std::int32_t pid_;
  double* sink_;
  Histogram* hist_;
  std::int64_t cpi_;
  bool active_;
  bool flight_;
  std::int64_t start_ns_ = 0;
};

/// Scope that turns tracing on and exports the collected events on exit.
///
/// `path` empty means "consult the PSTAP_TRACE environment variable"; if
/// that is unset too, the session is passive (tracing state untouched).
/// A session nested inside an already-active one is also passive, so an
/// outer owner (a test, trace_explorer) keeps the whole timeline. An
/// active session clears the recorder on entry: one session == one trace.
///
/// An active session also registers its path as the crash-artifact base
/// (FlightRecorder::set_crash_base) and installs the fatal-signal /
/// terminate handlers, so a run that dies mid-session still leaves a
/// truncated-but-valid trace plus a `<path>.crash` ring dump behind.
class TraceSession {
 public:
  explicit TraceSession(std::filesystem::path path = {});
  ~TraceSession();
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// True when this session owns tracing and will export on destruction.
  bool active() const noexcept { return active_; }
  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
  bool active_ = false;
};

}  // namespace pstap::obs
