// Always-on, lock-free metrics primitives: a fixed log-bucketed histogram
// with percentile estimation and lossless merge, plus counters, gauges and
// a process-wide named registry.
//
// Histogram values are unit-agnostic positive doubles (seconds, bytes,
// queue depths). Buckets are geometric with ratio sqrt(2), spanning
// [1e-9, 1e-9 * 2^64): nanosecond service times and multi-gigabyte
// transfer sizes land in-range with ~±19% bucket resolution. Recording is
// a couple of relaxed atomic adds — cheap enough to leave enabled in
// production paths (the tracing layer in obs/trace.hpp is the part that
// gets switched off).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pstap::obs {

class Histogram {
 public:
  static constexpr std::size_t kBuckets = 128;

  Histogram() = default;

  /// Snapshot copy (relaxed loads); safe while writers keep recording.
  Histogram(const Histogram& other) { merge(other); }
  Histogram& operator=(const Histogram& other) {
    if (this != &other) {
      reset();
      merge(other);
    }
    return *this;
  }

  /// Record one observation. Non-positive values clamp into the lowest
  /// bucket (a zero-length wait is still a wait).
  void record(double value);

  /// Add every observation of `other` into this histogram. The count added
  /// is derived from the bucket loads themselves (not other's count_), so
  /// a copy taken while `other` is being recorded into is internally
  /// consistent: count == sum of bucket counts, always.
  void merge(const Histogram& other);

  /// Zero all state (relaxed stores; not atomic as a whole).
  void reset();

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  double min() const;
  double max() const;

  /// Quantile estimate for p in [0,1]: geometric midpoint of the bucket
  /// holding the p-th observation, clamped to the observed [min, max].
  /// Error is bounded by the bucket ratio (sqrt(2)). Returns 0 when empty.
  double quantile(double p) const;

  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Observations in bucket `i` (for tests and renderers).
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Lower value bound of bucket `i`.
  static double bucket_lower_bound(std::size_t i);

  /// Index of the bucket `value` lands in.
  static std::size_t bucket_index(double value);

  /// Bucket-level JSON, the RunReport interchange form:
  ///   {"count":N,"sum":S,"min":m,"max":M,"p50":..,"p95":..,"p99":..,
  ///    "buckets":[[index,count],...]}    (sparse, index-ascending)
  /// count/sum/min/max/buckets round-trip exactly through from_json;
  /// the quantiles are derived output for downstream tooling.
  void to_json(std::ostream& out) const;
  std::string to_json() const;

  /// Parse the to_json form. Throws std::runtime_error on malformed input.
  static Histogram from_json(std::string_view json);

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Observed extrema, encoded so CAS loops stay simple.
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

/// Monotonic event counter.
class Counter {
 public:
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Instantaneous level with a high-water mark (queue depth, in-flight ops).
class Gauge {
 public:
  void set(std::int64_t v);
  std::int64_t add(std::int64_t n);  ///< returns the new level
  std::int64_t sub(std::int64_t n) { return add(-n); }

  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  void reset();

 private:
  void raise_peak(std::int64_t v);

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// Point-in-time copy of every registered metric. Histogram copies are
/// internally consistent (count == sum of buckets) even when taken while
/// writers keep calling record() — see Histogram::merge.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, Histogram>> histograms;
  std::vector<std::pair<std::string, std::int64_t>> counters;
  /// name -> (value, peak)
  std::vector<std::pair<std::string, std::pair<std::int64_t, std::int64_t>>>
      gauges;
};

/// Process-wide named metrics. Entries are created on first use and never
/// removed, so returned references are stable — hot paths should look a
/// metric up once and keep the reference.
class Registry {
 public:
  static Registry& global();

  Histogram& histogram(std::string_view name);
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);

  /// Consistent point-in-time copy of every metric, sorted by name. Safe
  /// (and meaningful) under concurrent record()/add() calls.
  RegistrySnapshot snapshot() const;

  /// Sorted (name, metric) views for reporting.
  std::vector<std::pair<std::string, const Histogram*>> histograms() const;
  std::vector<std::pair<std::string, const Counter*>> counters() const;
  std::vector<std::pair<std::string, const Gauge*>> gauges() const;

  /// Human-readable dump (one line per metric) for CLI surfaces.
  std::string report() const;

  /// Zero every registered metric in place (tests, run isolation).
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
};

}  // namespace pstap::obs
