// Black-box flight recorder: an always-on, fixed-size, per-thread ring of
// the most recent spans and instants, kept behind the ScopedSpan /
// TraceRecorder emit path so a crashed or aborted run can still say what it
// was doing.
//
// Unlike the trace recorder (unbounded buffers, mutex-guarded, off by
// default), the flight ring is bounded, lock-free and on by default:
// recording is a handful of relaxed atomic stores into a thread-local ring
// slot, and reading tolerates concurrent writers (a slot being rewritten is
// marked invalid and skipped; a torn slot decodes to odd numbers, never to
// invalid JSON). Rings are registered on a lock-free intrusive list and are
// never freed, so a post-mortem dump can walk them from a signal handler
// without taking any lock. Set PSTAP_FLIGHT=0 to switch the ring off.
//
// Crash artifacts: dump_crash_artifacts() writes the ring to
// `<base>.crash` and a best-effort Chrome trace to `<base>` itself, where
// `<base>` is the active TraceSession path (registered via set_crash_base)
// or, failing that, $PSTAP_TRACE. install_crash_handlers() arranges for the
// dump on fatal signals and std::terminate; pipeline::Supervisor calls
// dump_crash_artifacts() directly on watchdog abort.
//
// This library sits below common/ (it depends on nothing in pstap).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pstap::obs {

namespace detail {
// Single relaxed load on the emit path (mirrors trace's g_trace_enabled).
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

/// True while the flight ring is recording (default: on).
inline bool flight_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}

class FlightRecorder {
 public:
  /// Events retained per thread; older ones are overwritten in place.
  /// Sized so a ring (~18 KB) stays L2-resident and its one-time
  /// zero-fill stays off the profile — 256 events is hours of breadcrumbs
  /// at pipeline span rates, and a dump concatenates every thread's ring.
  static constexpr std::size_t kRingEvents = 256;
  static constexpr std::size_t kNameLen = 24;  ///< incl. terminator
  static constexpr std::size_t kCatLen = 12;   ///< incl. terminator

  enum class Kind : int { kNone = 0, kSpan = 1, kInstant = 2 };

  /// Decoded ring entry (snapshot / dump form).
  struct Event {
    Kind kind = Kind::kNone;
    std::string name;
    std::string cat;
    std::int32_t pid = 0;
    std::int64_t tid = 0;
    std::int64_t ts_ns = 0;
    std::int64_t dur_ns = 0;  ///< spans only
    std::int64_t cpi = -1;
  };

  /// The process-wide recorder (never destroyed, like TraceRecorder).
  static FlightRecorder& global();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_enabled(bool on) {
    detail::g_flight_enabled.store(on, std::memory_order_relaxed);
  }

  /// Invalidate every recorded event (tests). Racy against concurrent
  /// writers by design: their in-flight event may survive.
  void clear();

  /// Record a completed span / an instant into this thread's ring.
  /// Lock-free; truncates `name` to kNameLen-1 and `cat` to kCatLen-1.
  void record_span(const char* cat, std::string_view name, std::int32_t pid,
                   std::int64_t ts_ns, std::int64_t dur_ns, std::int64_t cpi);
  void record_instant(const char* cat, std::string_view name, std::int32_t pid,
                      std::int64_t ts_ns, std::int64_t cpi);

  /// Decode every thread's ring, ts-ascending. Lock-free: safe to call from
  /// a signal handler's point of view (no ring locks; does allocate).
  std::vector<Event> snapshot() const;

  /// Ring dump document: {"schema_version":1,"reason":...,"events":[...]}.
  void write_ring_json(std::ostream& out, std::string_view reason) const;

  /// Register / read the post-mortem artifact base path (the active trace
  /// session's path). Stored in a fixed buffer so the crash path never
  /// touches the allocator to find out where to write.
  void set_crash_base(const std::filesystem::path& base);
  std::string crash_base() const;

 private:
  struct Slot {
    std::atomic<int> kind{0};
    std::atomic<std::int32_t> pid{0};
    std::atomic<std::int64_t> ts_ns{0};
    std::atomic<std::int64_t> dur_ns{0};
    std::atomic<std::int64_t> cpi{-1};
    std::array<std::atomic<char>, kNameLen> name{};
    std::array<std::atomic<char>, kCatLen> cat{};
  };

  struct Ring {
    std::atomic<std::uint64_t> head{0};  // next sequence number to write
    std::int64_t tid = 0;
    Ring* next = nullptr;  // intrusive lock-free registry list
    std::array<Slot, kRingEvents> slots{};
  };

  FlightRecorder() = default;

  Ring& local_ring();
  void record(Kind kind, const char* cat, std::string_view name,
              std::int32_t pid, std::int64_t ts_ns, std::int64_t dur_ns,
              std::int64_t cpi);

  std::atomic<Ring*> rings_{nullptr};
  std::atomic<std::int64_t> next_tid_{0};

  static constexpr std::size_t kPathLen = 3072;
  std::array<std::atomic<char>, kPathLen> crash_base_{};
};

/// Write the post-mortem artifacts for `reason`: the ring dump to
/// `<base>.crash` and a best-effort (truncated-but-valid) Chrome trace to
/// `<base>` when a trace session is live. Returns true when the ring dump
/// was written. Reentrancy-guarded; concurrent/recursive calls return false.
bool dump_crash_artifacts(std::string_view reason);

/// Install fatal-signal (SIGSEGV/SIGBUS/SIGABRT/SIGFPE/SIGILL) and
/// std::terminate hooks that call dump_crash_artifacts() and then re-raise.
/// Idempotent; installed automatically when a TraceSession activates.
void install_crash_handlers();

}  // namespace pstap::obs
