#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace pstap::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

// Set while a TraceSession owns the recorder, so nested sessions (a runner
// inside trace_explorer) stay passive instead of stealing the export.
std::atomic<bool> g_session_active{false};

void json_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

/// Chrome's "ts" field is microseconds; keep nanosecond precision with
/// three decimals.
void write_us(std::ostream& out, std::int64_t ns) {
  out << ns / 1000;
  const std::int64_t frac = ns % 1000 < 0 ? -(ns % 1000) : ns % 1000;
  char buf[8];
  std::snprintf(buf, sizeof buf, ".%03lld", static_cast<long long>(frac));
  out << buf;
}

}  // namespace

std::int64_t trace_now_ns() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             clock::now().time_since_epoch())
      .count();
}

struct TraceRecorder::ThreadBuffer {
  std::mutex mu;
  std::int64_t tid = 0;
  std::vector<TraceEvent> events;
};

TraceRecorder::TraceRecorder() = default;
TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed:
  return *recorder;  // emitters may outlive static teardown order
}

void TraceRecorder::enable() {
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  for (const auto& buf : buffers_) {
    std::lock_guard buf_lock(buf->mu);
    buf->events.clear();
  }
  // meta_ (process_name labels) intentionally survives: components register
  // labels at construction, possibly before the session that exports them.
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // One buffer per (recorder, thread); the registry keeps it alive after
  // the thread exits so short-lived rank threads don't lose their events.
  thread_local std::shared_ptr<ThreadBuffer> t_buffer;
  if (!t_buffer) {
    t_buffer = std::make_shared<ThreadBuffer>();
    t_buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(mu_);
    buffers_.push_back(t_buffer);
  }
  return *t_buffer;
}

void TraceRecorder::append(TraceEvent event) {
  ThreadBuffer& buf = local_buffer();
  if (event.tid < 0) event.tid = buf.tid;
  std::lock_guard lock(buf.mu);
  buf.events.push_back(std::move(event));
}

void TraceRecorder::set_process_name(std::int32_t pid, std::string name) {
  std::lock_guard lock(mu_);
  for (TraceEvent& e : meta_) {
    if (e.pid == pid) {
      e.name = std::move(name);
      return;
    }
  }
  TraceEvent e;
  e.kind = TraceEvent::Kind::kMeta;
  e.name = std::move(name);
  e.pid = pid;
  meta_.push_back(std::move(e));
}

void TraceRecorder::complete(const char* cat, std::string_view name,
                             std::int32_t pid, std::int64_t ts_ns,
                             std::int64_t dur_ns, std::int64_t cpi,
                             std::string_view detail, std::int64_t tid) {
  if (flight_enabled()) {
    FlightRecorder::global().record_span(cat, name, pid, ts_ns, dur_ns, cpi);
  }
  if (!trace_enabled()) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kComplete;
  e.name = std::string(name);
  e.cat = cat;
  e.pid = pid;
  e.tid = tid;
  e.ts_ns = ts_ns;
  e.dur_ns = dur_ns;
  e.cpi = cpi;
  e.detail = std::string(detail);
  append(std::move(e));
}

void TraceRecorder::instant(const char* cat, std::string_view name,
                            std::int32_t pid, std::int64_t cpi,
                            std::string_view detail) {
  if (!trace_enabled() && !flight_enabled()) return;
  instant_at(cat, name, pid, trace_now_ns(), cpi, detail);
}

void TraceRecorder::instant_at(const char* cat, std::string_view name,
                               std::int32_t pid, std::int64_t ts_ns,
                               std::int64_t cpi, std::string_view detail) {
  if (flight_enabled()) {
    FlightRecorder::global().record_instant(cat, name, pid, ts_ns, cpi);
  }
  if (!trace_enabled()) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kInstant;
  e.name = std::string(name);
  e.cat = cat;
  e.pid = pid;
  e.tid = -1;
  e.ts_ns = ts_ns;
  e.cpi = cpi;
  e.detail = std::string(detail);
  append(std::move(e));
}

void TraceRecorder::counter(const char* cat, std::string_view name,
                            std::int32_t pid, double value) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.kind = TraceEvent::Kind::kCounter;
  e.name = std::string(name);
  e.cat = cat;
  e.pid = pid;
  e.tid = -1;
  e.ts_ns = trace_now_ns();
  e.value = value;
  append(std::move(e));
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::vector<TraceEvent> all;
  {
    std::lock_guard lock(mu_);
    all = meta_;
    for (const auto& buf : buffers_) {
      std::lock_guard buf_lock(buf->mu);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

std::vector<TraceEvent> TraceRecorder::snapshot_best_effort() const {
  // Crash path: a wedged thread may hold its buffer lock (or mu_) forever,
  // so never wait — a partially-collected trace beats a hung dump. Events
  // are only ever appended whole under the buffer lock, so every buffer we
  // do win contains only fully-written events.
  std::vector<TraceEvent> all;
  {
    std::unique_lock lock(mu_, std::try_to_lock);
    if (!lock.owns_lock()) return all;
    all = meta_;
    for (const auto& buf : buffers_) {
      std::unique_lock buf_lock(buf->mu, std::try_to_lock);
      if (!buf_lock.owns_lock()) continue;
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return all;
}

namespace {

void render_chrome_json(std::ostream& out, const std::vector<TraceEvent>& events) {
  // Rebase wall-clock timestamps so the trace starts near t=0. Simulated
  // producers already count from zero; rebasing by the global minimum keeps
  // both kinds sensible (a trace is one or the other in practice).
  std::int64_t base = std::numeric_limits<std::int64_t>::max();
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEvent::Kind::kMeta) base = std::min(base, e.ts_ns);
  }
  if (base == std::numeric_limits<std::int64_t>::max()) base = 0;

  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{";
    if (e.kind == TraceEvent::Kind::kMeta) {
      out << "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << e.pid
          << ",\"tid\":0,\"args\":{\"name\":\"";
      json_escape(out, e.name);
      out << "\"}}";
      continue;
    }
    out << "\"name\":\"";
    json_escape(out, e.name);
    out << "\",\"cat\":\"";
    json_escape(out, e.cat);
    out << "\",\"ph\":\"";
    switch (e.kind) {
      case TraceEvent::Kind::kComplete: out << 'X'; break;
      case TraceEvent::Kind::kInstant: out << 'i'; break;
      case TraceEvent::Kind::kCounter: out << 'C'; break;
      case TraceEvent::Kind::kMeta: break;  // handled above
    }
    out << "\",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"ts\":";
    write_us(out, e.ts_ns - base);
    if (e.kind == TraceEvent::Kind::kComplete) {
      out << ",\"dur\":";
      write_us(out, e.dur_ns);
    }
    if (e.kind == TraceEvent::Kind::kInstant) out << ",\"s\":\"t\"";
    out << ",\"args\":{";
    bool first_arg = true;
    if (e.kind == TraceEvent::Kind::kCounter) {
      out << "\"value\":" << e.value;
      first_arg = false;
    }
    if (e.cpi >= 0) {
      if (!first_arg) out << ",";
      out << "\"cpi\":" << e.cpi;
      first_arg = false;
    }
    if (!e.detail.empty()) {
      if (!first_arg) out << ",";
      out << "\"detail\":\"";
      json_escape(out, e.detail);
      out << "\"";
    }
    out << "}}";
  }
  out << "\n]}\n";
}

}  // namespace

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  render_chrome_json(out, snapshot());
}

void TraceRecorder::write_chrome_json(const std::filesystem::path& path) const {
  // Render in memory, write in one pass: the file is either absent or a
  // complete document, never cut off mid-event by a crash during export.
  std::ostringstream doc;
  render_chrome_json(doc, snapshot());
  std::ofstream out(path, std::ios::trunc);
  out << doc.str();
}

void TraceRecorder::write_chrome_json_best_effort(
    const std::filesystem::path& path) const {
  std::ostringstream doc;
  render_chrome_json(doc, snapshot_best_effort());
  std::ofstream out(path, std::ios::trunc);
  out << doc.str();
}

TraceSession::TraceSession(std::filesystem::path path) : path_(std::move(path)) {
  if (path_.empty()) {
    if (const char* env = std::getenv("PSTAP_TRACE"); env != nullptr && *env) {
      path_ = env;
    }
  }
  if (path_.empty()) return;
  bool expected = false;
  if (!g_session_active.compare_exchange_strong(expected, true)) {
    // An outer session owns the recorder; record into its timeline.
    path_.clear();
    return;
  }
  active_ = true;
  TraceRecorder::global().clear();
  TraceRecorder::global().enable();
  // Post-mortem wiring: if this run dies (fatal signal, std::terminate,
  // supervisor abort) the dump knows where to put the artifacts.
  FlightRecorder::global().set_crash_base(path_);
  install_crash_handlers();
}

TraceSession::~TraceSession() {
  if (!active_) return;
  TraceRecorder::global().disable();
  TraceRecorder::global().write_chrome_json(path_);
  // Deregister so a later crash can't clobber this finished export.
  FlightRecorder::global().set_crash_base({});
  g_session_active.store(false);
}

}  // namespace pstap::obs
