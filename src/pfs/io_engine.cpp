#include "pfs/io_engine.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>

#include "common/crc32c.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/wall_clock.hpp"
#include "obs/trace.hpp"

namespace pstap::pfs {

IoEngine::IoEngine(std::size_t servers, double bandwidth, double latency,
                   std::size_t quarantine_threshold)
    : bandwidth_(bandwidth),
      latency_(latency),
      quarantine_threshold_(quarantine_threshold) {
  PSTAP_REQUIRE(servers >= 1, "IoEngine needs at least one server");
  queues_.reserve(servers);
  breakers_.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) queues_.push_back(std::make_unique<Queue>());
  for (std::size_t s = 0; s < servers; ++s) breakers_.push_back(std::make_unique<Breaker>());
  server_service_time_.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    server_service_time_.push_back(std::make_unique<obs::Histogram>());
  }
  read_sites_.reserve(servers);
  write_sites_.reserve(servers);
  depth_names_.reserve(servers);
  auto& recorder = obs::TraceRecorder::global();
  for (std::size_t s = 0; s < servers; ++s) {
    char dir[32];
    std::snprintf(dir, sizeof dir, "sd%03zu", s);
    read_sites_.push_back(std::string("pfs.server.read.") + dir);
    write_sites_.push_back(std::string("pfs.server.write.") + dir);
    depth_names_.push_back(std::string("queue_depth.") + dir);
    recorder.set_process_name(
        obs::kIoServerPidBase + static_cast<std::int32_t>(s),
        std::string("pfs server ") + dir);
  }
  threads_.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    threads_.emplace_back([this, s] { service_loop(s); });
  }
}

IoEngine::~IoEngine() {
  for (auto& q : queues_) {
    {
      std::lock_guard lock(q->mu);
      q->stop = true;
    }
    q->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
}

IoRequest IoEngine::make_request(std::size_t chunks) {
  auto state = std::make_shared<detail::RequestState>();
  state->pending = chunks;
  return IoRequest(std::move(state));
}

void IoEngine::submit(std::size_t server, Job job) {
  PSTAP_REQUIRE(server < queues_.size(), "server index out of range");
  PSTAP_REQUIRE(job.state != nullptr, "job has no request state");
  Queue& q = *queues_[server];
  std::size_t depth = 0;
  {
    std::lock_guard lock(q.mu);
    q.jobs.push_back(std::move(job));
    depth = q.jobs.size();
  }
  // Depth sampled at submit time: with a small stripe factor the same
  // logical read funnels through fewer queues, so each sample is deeper.
  queue_depth_.record(static_cast<double>(depth));
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().counter(
        "io", depth_names_[server],
        obs::kIoServerPidBase + static_cast<std::int32_t>(server),
        static_cast<double>(depth));
  }
  q.cv.notify_one();
}

void IoEngine::service_loop(std::size_t server) {
  Queue& q = *queues_[server];
  for (;;) {
    Job job;
    {
      std::unique_lock lock(q.mu);
      q.cv.wait(lock, [&] { return q.stop || !q.jobs.empty(); });
      if (q.jobs.empty()) return;  // stop requested and drained
      job = std::move(q.jobs.front());
      q.jobs.pop_front();
    }

    const std::int64_t started_ns = obs::trace_now_ns();
    const Seconds started = monotonic_now();
    std::exception_ptr error;
    try {
      // Fault injection: armed delays sleep here (inside the service
      // thread, so they occupy this stripe directory exactly like a slow
      // disk); armed errors throw and are captured as the chunk's error; a
      // partial-read decision truncates the transfer and then fails it; a
      // corruption decision bit-flips the payload — caught below when the
      // unit has a recorded checksum.
      const fault::Decision decision =
          fault::inject(job.is_write ? write_sites_[server] : read_sites_[server]);
      std::size_t effective_len = job.len;
      if (!job.is_write && decision.deliver_fraction < 1.0) {
        effective_len =
            static_cast<std::size_t>(static_cast<double>(job.len) * decision.deliver_fraction);
      }

      // Raw positioned transfer of `len` bytes at segment offset `offset`.
      const auto transfer = [&job](std::byte* buf, std::uint64_t offset,
                                   std::size_t len, bool is_write) {
        std::size_t moved = 0;
        while (moved < len) {
          const ssize_t n =
              is_write ? ::pwrite(job.fd, buf + moved, len - moved,
                                  static_cast<off_t>(offset + moved))
                       : ::pread(job.fd, buf + moved, len - moved,
                                 static_cast<off_t>(offset + moved));
          if (n < 0) {
            if (errno == EINTR) continue;
            PSTAP_IO_FAIL(is_write ? "pwrite failed" : "pread failed", errno);
          }
          if (n == 0) PSTAP_IO_FAIL("unexpected EOF inside a striped segment", 0);
          moved += static_cast<std::size_t>(n);
        }
      };

      const std::uint64_t in_unit = job.offset - job.unit_seg_offset;
      std::optional<ChecksumCatalog::Entry> entry;
      if (job.checksums != nullptr) {
        entry = job.checksums->lookup(job.file_id, job.unit_index);
      }

      if (!job.is_write && entry && effective_len == job.len &&
          in_unit + job.len <= entry->valid_len) {
        // Verified read: serve the unit's whole checksummed prefix into a
        // scratch buffer, check it end-to-end against the CRC recorded at
        // write time, then hand only the requested sub-range over — a
        // corrupted payload never lands in the consumer's buffer.
        std::vector<std::byte> scratch(entry->valid_len);
        transfer(scratch.data(), job.unit_seg_offset, scratch.size(),
                 /*is_write=*/false);
        if (decision.corrupt && job.len > 0) {
          scratch[in_unit + job.len / 2] ^= std::byte{0xFF};
        }
        if (crc32c(scratch.data(), scratch.size()) != entry->crc) {
          corrupt_chunks_.fetch_add(1, std::memory_order_relaxed);
          if (obs::trace_enabled()) {
            obs::TraceRecorder::global().instant(
                "io", "io.checksum_mismatch",
                obs::kIoServerPidBase + static_cast<std::int32_t>(server), -1,
                read_sites_[server]);
          }
          throw ChecksumError("checksum mismatch in unit " +
                              std::to_string(job.unit_index) + " served by " +
                              read_sites_[server]);
        }
        std::copy_n(scratch.data() + in_unit, job.len, job.buf);
      } else {
        transfer(job.buf, job.offset, effective_len, job.is_write);
        if (!job.is_write && decision.corrupt && job.len > 0) {
          // No checksum recorded for this unit: the flip is silent, which
          // is exactly the exposure the catalog exists to close.
          job.buf[job.len / 2] ^= std::byte{0xFF};
        }
        if (job.is_write && job.checksums != nullptr) {
          if (in_unit == 0) {
            job.checksums->store(job.file_id, job.unit_index,
                                 {crc32c(job.buf, job.len), job.len});
          } else {
            // A rewrite not aligned to the unit start leaves the recorded
            // CRC stale — drop it rather than verify against garbage.
            job.checksums->invalidate(job.file_id, job.unit_index);
          }
          if (decision.corrupt && job.len > 0) {
            // Persistent media corruption: flip one byte on disk *after*
            // recording the intent CRC, so the next read detects it.
            std::byte flipped = job.buf[job.len / 2] ^ std::byte{0xFF};
            transfer(&flipped, job.offset + job.len / 2, 1, /*is_write=*/true);
          }
        }
      }
      if (effective_len < job.len) {
        throw fault::InjectedError("injected partial read: served " +
                                       std::to_string(effective_len) + " of " +
                                       std::to_string(job.len) + " bytes",
                                   /*permanent=*/false);
      }
      bytes_serviced_.fetch_add(job.len, std::memory_order_relaxed);
    } catch (...) {
      error = std::current_exception();
    }
    note_outcome(server, error != nullptr);

    // Model the finite service rate of a real I/O server: if the local disk
    // finished faster than the modeled transfer, sleep out the remainder.
    if (bandwidth_ > 0.0 || latency_ > 0.0) {
      const double modeled =
          latency_ + (bandwidth_ > 0.0 ? static_cast<double>(job.len) / bandwidth_ : 0.0);
      const double remaining = modeled - (monotonic_now() - started);
      if (remaining > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
      }
    }

    // Per-chunk service time (dequeue -> completion, modeled sleep
    // included) — one clock pair feeds both the histogram and the span.
    const std::int64_t served_ns = obs::trace_now_ns() - started_ns;
    service_time_.record(static_cast<double>(served_ns) * 1e-9);
    server_service_time_[server]->record(static_cast<double>(served_ns) * 1e-9);
    if (obs::trace_enabled()) {
      obs::TraceRecorder::global().complete(
          "io", job.is_write ? "serve.write" : "serve.read",
          obs::kIoServerPidBase + static_cast<std::int32_t>(server), started_ns,
          served_ns, /*cpi=*/-1,
          error ? "failed" : std::string_view{});
    }

    job.state->complete_one(error);
  }
}

void IoEngine::note_outcome(std::size_t server, bool failed) {
  Breaker& breaker = *breakers_[server];
  if (!failed) {
    breaker.consecutive_failures.store(0, std::memory_order_relaxed);
    return;
  }
  const std::size_t failures =
      breaker.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  if (quarantine_threshold_ == 0 || failures < quarantine_threshold_) return;
  if (breaker.quarantined.exchange(true, std::memory_order_relaxed)) return;
  quarantined_count_.fetch_add(1, std::memory_order_relaxed);
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().instant(
        "io", "io.quarantine",
        obs::kIoServerPidBase + static_cast<std::int32_t>(server), -1,
        read_sites_[server]);
  }
}

std::uint64_t IoEngine::bytes_serviced() const {
  return bytes_serviced_.load(std::memory_order_relaxed);
}

}  // namespace pstap::pfs
