#include "pfs/io_engine.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>

#include "common/crc32c.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/wall_clock.hpp"
#include "obs/trace.hpp"
#include "pfs/straggler_scheduler.hpp"

namespace pstap::pfs {

IoEngine::IoEngine(const PfsConfig& config)
    : bandwidth_(config.server_bandwidth),
      latency_(config.server_latency),
      quarantine_threshold_(config.quarantine_threshold),
      breaker_probe_interval_(config.breaker_probe_interval),
      straggler_servers_(config.straggler_servers),
      straggler_slowdown_(config.straggler_slowdown) {
  const std::size_t servers = config.stripe_factor;
  PSTAP_REQUIRE(servers >= 1, "IoEngine needs at least one server");
  queues_.reserve(servers);
  breakers_.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) queues_.push_back(std::make_unique<Queue>());
  for (std::size_t s = 0; s < servers; ++s) breakers_.push_back(std::make_unique<Breaker>());
  server_service_time_.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    server_service_time_.push_back(std::make_unique<obs::Histogram>());
  }
  read_sites_.reserve(servers);
  write_sites_.reserve(servers);
  depth_names_.reserve(servers);
  auto& recorder = obs::TraceRecorder::global();
  for (std::size_t s = 0; s < servers; ++s) {
    char dir[32];
    std::snprintf(dir, sizeof dir, "sd%03zu", s);
    read_sites_.push_back(std::string("pfs.server.read.") + dir);
    write_sites_.push_back(std::string("pfs.server.write.") + dir);
    depth_names_.push_back(std::string("queue_depth.") + dir);
    recorder.set_process_name(
        obs::kIoServerPidBase + static_cast<std::int32_t>(s),
        std::string("pfs server ") + dir);
  }
  threads_.reserve(servers);
  for (std::size_t s = 0; s < servers; ++s) {
    threads_.emplace_back([this, s] { service_loop(s); });
  }
  if (config.straggler_sched) {
    scheduler_ = std::make_unique<StragglerScheduler>(*this, config);
  }
}

IoEngine::~IoEngine() {
  // The scheduler reorders/steals inside queue locks and submits hedge
  // jobs — join it before the queues start draining toward shutdown.
  scheduler_.reset();
  for (auto& q : queues_) {
    {
      std::lock_guard lock(q->mu);
      q->stop = true;
    }
    q->cv.notify_all();
  }
  for (auto& t : threads_) t.join();
}

IoRequest IoEngine::make_request(std::size_t chunks) {
  auto state = std::make_shared<detail::RequestState>();
  state->pending = chunks;
  return IoRequest(std::move(state));
}

void IoEngine::submit(std::size_t server, Job job, bool front) {
  if (scheduler_ && !job.is_hedge) {
    job.server = server;
    job.deadline = scheduler_->assign_deadline(server);
    // Hedge-capable read: the scheduler watches it and may race a replica
    // copy against it once it outlives its quantile deadline.
    if (job.chunk && job.replica_fd >= 0) scheduler_->track(job);
  }
  enqueue(server, std::move(job), front);
}

void IoEngine::enqueue(std::size_t server, Job job, bool front) {
  PSTAP_REQUIRE(server < queues_.size(), "server index out of range");
  PSTAP_REQUIRE(job.state != nullptr, "job has no request state");
  job.server = server;
  Queue& q = *queues_[server];
  std::size_t depth = 0;
  {
    std::lock_guard lock(q.mu);
    if (front) {
      q.jobs.push_front(std::move(job));
    } else {
      q.jobs.push_back(std::move(job));
    }
    depth = q.jobs.size();
  }
  // Depth sampled at submit time: with a small stripe factor the same
  // logical read funnels through fewer queues, so each sample is deeper.
  queue_depth_.record(static_cast<double>(depth));
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().counter(
        "io", depth_names_[server],
        obs::kIoServerPidBase + static_cast<std::int32_t>(server),
        static_cast<double>(depth));
  }
  q.cv.notify_one();
}

bool IoEngine::quarantined(std::size_t server) const {
  Breaker& breaker = *breakers_[server];
  int state = breaker.state.load(std::memory_order_acquire);
  if (state == Breaker::kClosed) return false;
  if (state == Breaker::kOpen && breaker_probe_interval_ > 0 &&
      monotonic_now() - breaker.opened_at.load(std::memory_order_relaxed) >=
          breaker_probe_interval_) {
    // Interval elapsed: decay open -> half-open. The caller (a client about
    // to route a chunk) becomes the probe — its outcome closes or re-opens.
    int expected = Breaker::kOpen;
    breaker.state.compare_exchange_strong(expected, Breaker::kHalfOpen,
                                          std::memory_order_acq_rel);
    state = breaker.state.load(std::memory_order_acquire);
  }
  return state == Breaker::kOpen;
}

// Transfer the job's pieces between disk and memory. Hedge-capable reads
// land in `hedge_scratch` (one flat buffer, pieces packed in order) so the
// caller's buffer is only written by the twin that wins the claim.
void IoEngine::service_job(std::size_t server, Job& job,
                           std::vector<std::byte>& hedge_scratch) {
  // Fault injection: armed delays sleep here (inside the service thread, so
  // they occupy this stripe directory exactly like a slow disk); armed
  // errors throw and are captured as the job's error; a partial-read
  // decision truncates the transfer and then fails it; a corruption
  // decision bit-flips the payload — caught below when the unit has a
  // recorded checksum. One decision per job: with list-I/O a coalesced job
  // is one server request, so it draws one fault like any other request.
  const fault::Decision decision =
      fault::inject(job.is_write ? write_sites_[server] : read_sites_[server]);
  const std::size_t total = job.total_len();
  const std::size_t effective_total =
      (!job.is_write && decision.deliver_fraction < 1.0)
          ? static_cast<std::size_t>(static_cast<double>(total) *
                                     decision.deliver_fraction)
          : total;
  std::size_t budget = effective_total;

  // Raw positioned transfer of `len` bytes at segment offset `offset`.
  const auto transfer = [&job](std::byte* buf, std::uint64_t offset,
                               std::size_t len, bool is_write) {
    std::size_t moved = 0;
    while (moved < len) {
      const ssize_t n =
          is_write ? ::pwrite(job.fd, buf + moved, len - moved,
                              static_cast<off_t>(offset + moved))
                   : ::pread(job.fd, buf + moved, len - moved,
                             static_cast<off_t>(offset + moved));
      if (n < 0) {
        if (errno == EINTR) continue;
        PSTAP_IO_FAIL(is_write ? "pwrite failed" : "pread failed", errno);
      }
      if (n == 0) PSTAP_IO_FAIL("unexpected EOF inside a striped segment", 0);
      moved += static_cast<std::size_t>(n);
    }
  };

  bool corrupt_pending = decision.corrupt;
  std::size_t scratch_off = 0;
  for (const Piece& piece : job.pieces) {
    // A twin claimed the chunk mid-service: the rest of this job's work is
    // dead — stop transferring. The completion path discards the result.
    if (job.chunk && job.chunk->claimed.load(std::memory_order_acquire)) return;

    std::byte* dest = job.chunk ? hedge_scratch.data() + scratch_off : piece.buf;
    scratch_off += piece.len;
    const std::size_t piece_len = std::min(piece.len, budget);
    budget -= piece_len;

    const std::uint64_t in_unit = piece.offset - piece.unit_seg_offset;
    std::optional<ChecksumCatalog::Entry> entry;
    if (job.checksums != nullptr) {
      entry = job.checksums->lookup(job.file_id, piece.unit_index);
    }

    if (!job.is_write && entry && piece_len == piece.len &&
        in_unit + piece.len <= entry->valid_len) {
      // Verified read: serve the unit's whole checksummed prefix into a
      // scratch buffer, check it end-to-end against the CRC recorded at
      // write time, then hand only the requested sub-range over — a
      // corrupted payload never lands in the consumer's buffer.
      std::vector<std::byte> scratch(entry->valid_len);
      transfer(scratch.data(), piece.unit_seg_offset, scratch.size(),
               /*is_write=*/false);
      if (corrupt_pending && piece.len > 0) {
        scratch[in_unit + piece.len / 2] ^= std::byte{0xFF};
        corrupt_pending = false;
      }
      if (crc32c(scratch.data(), scratch.size()) != entry->crc) {
        corrupt_chunks_.fetch_add(1, std::memory_order_relaxed);
        if (obs::trace_enabled()) {
          obs::TraceRecorder::global().instant(
              "io", "io.checksum_mismatch",
              obs::kIoServerPidBase + static_cast<std::int32_t>(server), -1,
              read_sites_[server]);
        }
        throw ChecksumError("checksum mismatch in unit " +
                            std::to_string(piece.unit_index) + " served by " +
                            read_sites_[server]);
      }
      std::copy_n(scratch.data() + in_unit, piece.len, dest);
    } else {
      transfer(dest, piece.offset, piece_len, job.is_write);
      if (!job.is_write && corrupt_pending && piece.len > 0) {
        // No checksum recorded for this unit: the flip is silent, which
        // is exactly the exposure the catalog exists to close.
        dest[piece.len / 2] ^= std::byte{0xFF};
        corrupt_pending = false;
      }
      if (job.is_write && job.checksums != nullptr) {
        if (in_unit == 0) {
          job.checksums->store(job.file_id, piece.unit_index,
                               {crc32c(dest, piece.len), piece.len});
        } else {
          // A rewrite not aligned to the unit start leaves the recorded
          // CRC stale — drop it rather than verify against garbage.
          job.checksums->invalidate(job.file_id, piece.unit_index);
        }
        if (corrupt_pending && piece.len > 0) {
          // Persistent media corruption: flip one byte on disk *after*
          // recording the intent CRC, so the next read detects it.
          std::byte flipped = dest[piece.len / 2] ^ std::byte{0xFF};
          transfer(&flipped, piece.offset + piece.len / 2, 1, /*is_write=*/true);
          corrupt_pending = false;
        }
      }
    }
  }
  if (effective_total < total) {
    throw fault::InjectedError("injected partial read: served " +
                                   std::to_string(effective_total) + " of " +
                                   std::to_string(total) + " bytes",
                               /*permanent=*/false);
  }
}

void IoEngine::service_loop(std::size_t server) {
  Queue& q = *queues_[server];
  for (;;) {
    Job job;
    {
      std::unique_lock lock(q.mu);
      q.cv.wait(lock, [&] { return q.stop || !q.jobs.empty(); });
      if (q.jobs.empty()) return;  // stop requested and drained
      job = std::move(q.jobs.front());
      q.jobs.pop_front();
    }

    // A hedged twin already claimed this chunk: discard unserviced — no
    // completion (the claimant completed), no bytes/histogram samples (the
    // chunk is serviced once), no breaker outcome (nothing was attempted).
    if (job.chunk && job.chunk->claimed.load(std::memory_order_acquire)) {
      hedge_cancels_.fetch_add(1, std::memory_order_relaxed);
      job.chunk->outstanding.fetch_sub(1, std::memory_order_acq_rel);
      continue;
    }
    if (job.chunk && !job.is_hedge) {
      // The scheduler's hedge clock starts at first service, so a hedge
      // races the straggler's service time, not its queue (queued work is
      // the steal path's problem).
      job.chunk->started_at.store(monotonic_now(), std::memory_order_release);
    }

    const std::int64_t started_ns = obs::trace_now_ns();
    const Seconds started = monotonic_now();
    const std::size_t total = job.total_len();
    std::exception_ptr error;
    std::vector<std::byte> hedge_scratch;
    if (job.chunk) hedge_scratch.resize(total);
    try {
      service_job(server, job, hedge_scratch);
    } catch (...) {
      error = std::current_exception();
    }
    note_outcome(server, error != nullptr);

    // Model the finite service rate of a real I/O server: if the local disk
    // finished faster than the modeled transfer, sleep out the remainder.
    // Straggler emulation scales the whole modeled time, so the slowdown
    // tracks the bytes actually moved (a coalesced list job on a straggler
    // pays proportionally, same as its split form would).
    if (bandwidth_ > 0.0 || latency_ > 0.0) {
      const double scale =
          server < straggler_servers_ ? straggler_slowdown_ : 1.0;
      const double modeled =
          scale * (latency_ + (bandwidth_ > 0.0
                                   ? static_cast<double>(total) / bandwidth_
                                   : 0.0));
      const double remaining = modeled - (monotonic_now() - started);
      if (remaining > 0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(remaining));
      }
    }

    // Per-job service time (dequeue -> completion, modeled sleep included)
    // — one clock pair feeds both the histogram and the span.
    const std::int64_t served_ns = obs::trace_now_ns() - started_ns;
    service_time_.record(static_cast<double>(served_ns) * 1e-9);
    server_service_time_[server]->record(static_cast<double>(served_ns) * 1e-9);
    if (obs::trace_enabled()) {
      obs::TraceRecorder::global().complete(
          "io", job.is_write ? "serve.write" : "serve.read",
          obs::kIoServerPidBase + static_cast<std::int32_t>(server), started_ns,
          served_ns, /*cpi=*/-1,
          error ? "failed" : std::string_view{});
    }

    if (!job.chunk) {
      // Plain (unhedged) job: sole owner of its completion.
      if (!error) bytes_serviced_.fetch_add(total, std::memory_order_relaxed);
      job.state->complete_one(error);
      continue;
    }

    // Hedge-capable job: exactly one twin claims the chunk. The claimant
    // copies its scratch bytes into the caller's buffer and completes; a
    // serviced loser discards everything. An error completes the chunk
    // only from the LAST outstanding twin (claim() still guards against a
    // racing success).
    if (!error) {
      if (job.chunk->claim()) {
        std::size_t off = 0;
        for (const Piece& piece : job.pieces) {
          std::copy_n(hedge_scratch.data() + off, piece.len, piece.buf);
          off += piece.len;
        }
        bytes_serviced_.fetch_add(total, std::memory_order_relaxed);
        if (job.is_hedge) hedge_wins_.fetch_add(1, std::memory_order_relaxed);
        job.state->complete_one(nullptr);
      } else {
        hedge_cancels_.fetch_add(1, std::memory_order_relaxed);
      }
      job.chunk->outstanding.fetch_sub(1, std::memory_order_acq_rel);
    } else {
      const int left =
          job.chunk->outstanding.fetch_sub(1, std::memory_order_acq_rel) - 1;
      if (left == 0 && job.chunk->claim()) job.state->complete_one(error);
    }
  }
}

void IoEngine::note_outcome(std::size_t server, bool failed) {
  Breaker& breaker = *breakers_[server];
  if (!failed) {
    breaker.consecutive_failures.store(0, std::memory_order_relaxed);
    // A successful probe through a half-open breaker closes it: the stripe
    // directory rejoins the healthy set.
    int expected = Breaker::kHalfOpen;
    if (breaker.state.compare_exchange_strong(expected, Breaker::kClosed,
                                              std::memory_order_acq_rel)) {
      breaker_reopened_.fetch_add(1, std::memory_order_relaxed);
      if (obs::trace_enabled()) {
        obs::TraceRecorder::global().instant(
            "io", "io.breaker_reopened",
            obs::kIoServerPidBase + static_cast<std::int32_t>(server), -1,
            read_sites_[server]);
      }
    }
    return;
  }
  const std::size_t failures =
      breaker.consecutive_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  // A failed probe re-opens immediately for another probe interval.
  int expected = Breaker::kHalfOpen;
  if (breaker.state.compare_exchange_strong(expected, Breaker::kOpen,
                                            std::memory_order_acq_rel)) {
    breaker.opened_at.store(monotonic_now(), std::memory_order_relaxed);
    return;
  }
  if (quarantine_threshold_ == 0 || failures < quarantine_threshold_) return;
  expected = Breaker::kClosed;
  if (!breaker.state.compare_exchange_strong(expected, Breaker::kOpen,
                                             std::memory_order_acq_rel)) {
    return;  // already open (or mid-probe) — count the trip once
  }
  breaker.opened_at.store(monotonic_now(), std::memory_order_relaxed);
  quarantined_count_.fetch_add(1, std::memory_order_relaxed);
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().instant(
        "io", "io.quarantine",
        obs::kIoServerPidBase + static_cast<std::int32_t>(server), -1,
        read_sites_[server]);
  }
}

std::uint64_t IoEngine::bytes_serviced() const {
  return bytes_serviced_.load(std::memory_order_relaxed);
}

}  // namespace pstap::pfs
