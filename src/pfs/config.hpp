// Configuration of a striped parallel file system instance.
//
// Models the two systems the paper measures:
//   * Paragon PFS  — stripe directories with asynchronous reads
//     (gopen + M_ASYNC, iread()/ireadoff()), letting I/O overlap compute;
//   * IBM PIOFS    — striped "slices" but synchronous-only read/write.
//
// The optional per-server bandwidth throttle stands in for the finite
// service rate of a real I/O server so that stripe-factor effects are
// observable even on a fast local disk (see DESIGN.md substitutions).
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace pstap::pfs {

struct PfsConfig {
  /// Human-readable name used in logs and bench tables.
  std::string name = "pfs";

  /// Number of stripe directories (I/O servers). Paper contrasts a small
  /// (16) and a large (64) Paragon PFS plus the SP's PIOFS.
  std::size_t stripe_factor = 16;

  /// Striping granularity in bytes; 64 KB on both of the paper's systems.
  std::size_t stripe_unit = 64 * KiB;

  /// Whether the client API supports asynchronous reads. When false
  /// (PIOFS), iread() completes the transfer before returning, so callers
  /// cannot overlap I/O with compute — exactly the limitation the paper
  /// blames for the SP's poor pipeline scaling.
  bool supports_async = true;

  /// Per-stripe-directory service bandwidth in bytes/second; 0 disables
  /// throttling (tests) — set it to emulate finite I/O servers (benches).
  double server_bandwidth = 0.0;

  /// Fixed per-chunk service latency in seconds (request setup + seek).
  double server_latency = 0.0;

  /// Copies kept of each stripe unit. 1 = no replication; 2 adds one
  /// replica of unit u in stripe directory (u % F + 1) % F, used to serve
  /// reads when the primary directory is quarantined.
  std::size_t replicas = 1;

  /// Circuit breaker: consecutive chunk failures on one stripe directory
  /// before it is quarantined (0 disables the breaker).
  std::size_t quarantine_threshold = 0;
};

/// Paragon-PFS-like presets used throughout tests and benches.
PfsConfig paragon_pfs(std::size_t stripe_factor);

/// PIOFS-like preset (no async support).
PfsConfig piofs(std::size_t stripe_factor = 80);

}  // namespace pstap::pfs
