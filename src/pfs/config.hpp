// Configuration of a striped parallel file system instance.
//
// Models the two systems the paper measures:
//   * Paragon PFS  — stripe directories with asynchronous reads
//     (gopen + M_ASYNC, iread()/ireadoff()), letting I/O overlap compute;
//   * IBM PIOFS    — striped "slices" but synchronous-only read/write.
//
// The optional per-server bandwidth throttle stands in for the finite
// service rate of a real I/O server so that stripe-factor effects are
// observable even on a fast local disk (see DESIGN.md substitutions).
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace pstap::pfs {

struct PfsConfig {
  /// Human-readable name used in logs and bench tables.
  std::string name = "pfs";

  /// Number of stripe directories (I/O servers). Paper contrasts a small
  /// (16) and a large (64) Paragon PFS plus the SP's PIOFS.
  std::size_t stripe_factor = 16;

  /// Striping granularity in bytes; 64 KB on both of the paper's systems.
  std::size_t stripe_unit = 64 * KiB;

  /// Whether the client API supports asynchronous reads. When false
  /// (PIOFS), iread() completes the transfer before returning, so callers
  /// cannot overlap I/O with compute — exactly the limitation the paper
  /// blames for the SP's poor pipeline scaling.
  bool supports_async = true;

  /// Per-stripe-directory service bandwidth in bytes/second; 0 disables
  /// throttling (tests) — set it to emulate finite I/O servers (benches).
  double server_bandwidth = 0.0;

  /// Fixed per-chunk service latency in seconds (request setup + seek).
  double server_latency = 0.0;

  /// Copies kept of each stripe unit. 1 = no replication; 2 adds one
  /// replica of unit u in stripe directory (u % F + 1) % F, used to serve
  /// reads when the primary directory is quarantined.
  std::size_t replicas = 1;

  /// Circuit breaker: consecutive chunk failures on one stripe directory
  /// before it is quarantined (0 disables the breaker).
  std::size_t quarantine_threshold = 0;

  /// Half-open probe: a quarantined stripe directory is re-probed after
  /// this long — the breaker admits traffic again and the first chunk
  /// outcome decides whether the server rejoins (success closes the
  /// breaker and bumps `pfs.breaker_reopened`) or is re-quarantined.
  /// 0 keeps the pre-probe behavior: quarantined until remount.
  Seconds breaker_probe_interval = 0;

  // ----------------------- straggler defense (DESIGN.md §12) -------------
  // The adaptive client-side scheduler: per-server quantile deadlines,
  // queue reordering/stealing, hedged replica reads, and per-server
  // list-I/O coalescing. OFF by default so the paper's baseline shapes
  // (stripe-sweep bottleneck, straggler degradation curve) are preserved;
  // the environment variable PSTAP_STRAGGLER_SCHED overrides this flag at
  // mount time ("0"/"off" forces it off, anything else forces it on).

  /// Master switch for the straggler-aware scheduler (deadlines, queue
  /// reorder/steal, list-I/O coalescing of multi-chunk requests).
  bool straggler_sched = false;

  /// Hedged (speculative) reads: when a chunk outlives its quantile
  /// deadline and a replica exists, launch a backup read against the
  /// replica server and take the first completion. Only effective with
  /// straggler_sched on and replicas == 2.
  bool hedged_reads = true;

  /// Per-server service-time quantile feeding chunk deadlines (p99 by
  /// default, per Tavakoli-style client-side scheduling).
  double deadline_quantile = 0.99;

  /// Chunk deadline = hedge_multiplier x the healthy-server quantile (the
  /// median across servers, so one straggler cannot inflate its own
  /// deadline and dodge hedging).
  double hedge_multiplier = 2.0;

  /// Deadline floor while histograms warm up (and the minimum hedge wait).
  Seconds deadline_floor = 2e-3;

  /// Per-server samples inside the rolling window before its quantiles are
  /// trusted; cold servers fall back to the floor.
  std::size_t deadline_min_samples = 16;

  /// Scheduler scan period (hedge launches, queue reorder, stealing).
  Seconds sched_tick = 5e-4;

  /// Rolling-quantile window: the scheduler re-baselines its per-server
  /// histogram deltas this often, so a recovered server sheds its slow
  /// history instead of dragging it forever.
  Seconds sched_window = 250e-3;

  /// A server is "slow" (steal candidate) when its rolling p50 exceeds
  /// steal_factor x the healthy median p50.
  double steal_factor = 2.0;

  // Built-in straggler *emulation* for benches/tests — the functional twin
  // of sim::MachineModel::straggler_{servers,slowdown}: the first
  // `straggler_servers` stripe directories service at modeled rate x
  // `straggler_slowdown`. Unlike fault-injected delays, the slowdown
  // scales with the bytes actually moved, so list-I/O coalescing is
  // neither penalized nor subsidized by the emulation.
  std::size_t straggler_servers = 0;
  double straggler_slowdown = 1.0;
};

/// Apply the PSTAP_STRAGGLER_SCHED environment override (if set) to
/// `config.straggler_sched`. Called by StripedFileSystem at mount.
void apply_env_overrides(PfsConfig& config);

/// Paragon-PFS-like presets used throughout tests and benches.
PfsConfig paragon_pfs(std::size_t stripe_factor);

/// PIOFS-like preset (no async support).
PfsConfig piofs(std::size_t stripe_factor = 80);

}  // namespace pstap::pfs
