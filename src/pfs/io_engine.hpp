// Asynchronous I/O engine: one service thread per stripe directory.
//
// Mirrors the structure of a parallel file system's server side: each
// stripe directory has an independent queue and service thread, so a read
// that spans many stripe directories proceeds in parallel while a small
// stripe factor funnels all chunks through few queues — the mechanism
// behind the paper's stripe-factor bottleneck.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/retry.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"

namespace pstap::pfs {

/// Raised when a serviced chunk fails CRC32C verification. Derives IoError
/// (and is not permanent), so retry layers re-read the chunk — corruption
/// is caught at the source and never reaches a consumer's buffer as data.
class ChecksumError : public IoError {
 public:
  using IoError::IoError;
};

/// Per-stripe-unit CRC32C catalog: the write path records the checksum of
/// each fully written stripe unit; the read path verifies served bytes
/// against it. Keyed by (file id, unit index) so recreated files can
/// orphan stale entries by taking a fresh id. Thread-safe (service threads
/// of all stripe directories share one catalog).
class ChecksumCatalog {
 public:
  struct Entry {
    std::uint32_t crc = 0;
    std::size_t valid_len = 0;  ///< checksummed prefix of the unit, bytes
  };

  void store(std::uint64_t file_id, std::uint64_t unit, Entry entry) {
    std::lock_guard lock(mu_);
    entries_[{file_id, unit}] = entry;
  }

  std::optional<Entry> lookup(std::uint64_t file_id, std::uint64_t unit) const {
    std::lock_guard lock(mu_);
    const auto it = entries_.find({file_id, unit});
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  /// Forget a unit (a rewrite not aligned to the unit start makes the
  /// recorded checksum stale — safety over coverage).
  void invalidate(std::uint64_t file_id, std::uint64_t unit) {
    std::lock_guard lock(mu_);
    entries_.erase({file_id, unit});
  }

  /// Forget every unit of a file (remove/recreate).
  void drop_file(std::uint64_t file_id) {
    std::lock_guard lock(mu_);
    auto it = entries_.lower_bound({file_id, 0});
    while (it != entries_.end() && it->first.first == file_id) it = entries_.erase(it);
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Entry> entries_;
};

namespace detail {
/// Completion state shared between an IoRequest and its queued chunks.
struct RequestState {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = 0;
  std::size_t errors = 0;    // every failed chunk is counted ...
  std::exception_ptr error;  // ... but only the first exception is kept

  void complete_one(std::exception_ptr e) {
    std::lock_guard lock(mu);
    if (e) {
      ++errors;
      if (!error) error = e;
    }
    if (--pending == 0) cv.notify_all();
  }
};
}  // namespace detail

/// Handle to an in-flight asynchronous read (the paper's iread handle;
/// wait() plays the role of ireadoff/iowait).
class IoRequest {
 public:
  IoRequest() = default;

  /// Block until every chunk is serviced, then release the request state;
  /// rethrows the first chunk error. Idempotent: calling it again — or on
  /// a moved-from handle — is a no-op.
  void wait() {
    if (!state_) return;
    std::exception_ptr error;
    {
      std::unique_lock lock(state_->mu);
      state_->cv.wait(lock, [&] { return state_->pending == 0; });
      error = state_->error;
      failed_chunks_ = state_->errors;
    }
    state_.reset();
    if (error) std::rethrow_exception(error);
  }

  /// Bounded wait: true when every chunk completed within `timeout`. Does
  /// not consume the request or its errors — follow up with wait().
  bool wait_for(Seconds timeout) const {
    if (!state_) return true;
    std::unique_lock lock(state_->mu);
    return state_->cv.wait_for(lock, std::chrono::duration<double>(timeout),
                               [&] { return state_->pending == 0; });
  }

  /// Nonblocking completion poll (does not consume errors; call wait()).
  bool done() const {
    if (!state_) return true;
    std::lock_guard lock(state_->mu);
    return state_->pending == 0;
  }

  /// Chunk failures observed by the last consuming wait() on this handle.
  /// wait() rethrows only the first error; the rest are counted here so
  /// multi-chunk failures are never silently swallowed.
  std::size_t failed_chunks() const noexcept { return failed_chunks_; }

 private:
  friend class IoEngine;
  friend class StripedFile;  // attaches jobs to the shared state
  explicit IoRequest(std::shared_ptr<detail::RequestState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
  std::size_t failed_chunks_ = 0;
};

/// Wait for `req` with a per-request bound. Chunks hold raw pointers into
/// the caller's buffer, so an expired request cannot be abandoned: on
/// timeout the request is drained (full wait) and TimeoutError is raised —
/// unless draining surfaces the chunks' own error, which takes precedence.
inline void wait_with_timeout(IoRequest& req, Seconds timeout,
                              const std::string& what) {
  if (timeout <= 0 || req.wait_for(timeout)) {
    req.wait();
    return;
  }
  req.wait();  // drain; rethrows a chunk error if one arrived while late
  throw TimeoutError(what + ": I/O request exceeded timeout");
}

/// Pool of per-stripe-directory service threads with optional bandwidth
/// throttling.
class IoEngine {
 public:
  /// One job: transfer `len` bytes between file descriptor `fd` at segment
  /// offset `offset` and memory `buf`. The integrity fields are optional:
  /// when `checksums` is set the job lies within stripe unit `unit_index`
  /// of file `file_id`, whose data starts at segment offset
  /// `unit_seg_offset` — writes record the unit's CRC32C there, reads
  /// verify against it.
  struct Job {
    int fd = -1;
    std::uint64_t offset = 0;
    std::byte* buf = nullptr;
    std::size_t len = 0;
    bool is_write = false;
    std::shared_ptr<detail::RequestState> state;
    ChecksumCatalog* checksums = nullptr;
    std::uint64_t file_id = 0;
    std::uint64_t unit_index = 0;
    std::uint64_t unit_seg_offset = 0;
  };

  /// `servers` threads; each services its queue at `bandwidth` bytes/s
  /// (0 = unthrottled) plus `latency` seconds fixed cost per chunk.
  /// `quarantine_threshold` > 0 arms the circuit breaker: that many
  /// *consecutive* chunk failures quarantine the stripe directory.
  IoEngine(std::size_t servers, double bandwidth, double latency,
           std::size_t quarantine_threshold = 0);
  ~IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  std::size_t servers() const noexcept { return queues_.size(); }

  /// Create a request expecting `chunks` completions.
  IoRequest make_request(std::size_t chunks);

  /// Enqueue one chunk on stripe-directory `server`'s queue.
  void submit(std::size_t server, Job job);

  /// Total bytes serviced so far (reads + writes), for tests/benches.
  std::uint64_t bytes_serviced() const;

  /// Chunks whose served bytes failed CRC32C verification (each raised a
  /// retryable ChecksumError toward the requester).
  std::uint64_t corrupt_chunks() const {
    return corrupt_chunks_.load(std::memory_order_relaxed);
  }

  /// Stripe directories quarantined by the circuit breaker since mount.
  std::uint64_t quarantined_servers() const {
    return quarantined_count_.load(std::memory_order_relaxed);
  }

  /// True when `server`'s circuit breaker has opened — clients holding a
  /// replica should redirect reads away from it.
  bool quarantined(std::size_t server) const {
    return breakers_[server]->quarantined.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------- observability --
  // Per-engine distributions (reset-free: an engine lives for one mount).

  /// Queue depth of the chunk's stripe-directory queue, sampled at every
  /// submit — the paper's funnel: small stripe factors produce deep queues.
  const obs::Histogram& queue_depth() const noexcept { return queue_depth_; }

  /// Wall seconds from dequeue to completion per chunk, including the
  /// modeled service rate — what a client's wait is made of.
  const obs::Histogram& service_time() const noexcept { return service_time_; }

  /// Same distribution, split per stripe directory — the straggler-aware
  /// scheduler's input: one slow server shows up here long before it moves
  /// the aggregate. Index < servers().
  const obs::Histogram& server_service_time(std::size_t server) const noexcept {
    return *server_service_time_[server];
  }

  /// Wall seconds a logical StripedFile submit spent splitting and
  /// enqueueing chunks (client-side cost before any service happens).
  const obs::Histogram& submit_latency() const noexcept { return submit_latency_; }
  void record_submit_latency(double seconds) { submit_latency_.record(seconds); }

 private:
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> jobs;
    bool stop = false;
  };

  /// Per-server circuit breaker: consecutive chunk failures trip it open.
  struct Breaker {
    std::atomic<std::size_t> consecutive_failures{0};
    std::atomic<bool> quarantined{false};
  };

  void service_loop(std::size_t server);
  void note_outcome(std::size_t server, bool failed);

  double bandwidth_;
  double latency_;
  std::size_t quarantine_threshold_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<Breaker>> breakers_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> bytes_serviced_{0};
  std::atomic<std::uint64_t> corrupt_chunks_{0};
  std::atomic<std::uint64_t> quarantined_count_{0};
  obs::Histogram queue_depth_;
  obs::Histogram service_time_;
  obs::Histogram submit_latency_;
  std::vector<std::unique_ptr<obs::Histogram>> server_service_time_;
  // Fault-injection site and trace-counter names, precomputed so the hot
  // path never formats.
  std::vector<std::string> read_sites_;   // "pfs.server.read.sdNNN"
  std::vector<std::string> write_sites_;  // "pfs.server.write.sdNNN"
  std::vector<std::string> depth_names_;  // "queue_depth.sdNNN"
};

}  // namespace pstap::pfs
