// Asynchronous I/O engine: one service thread per stripe directory.
//
// Mirrors the structure of a parallel file system's server side: each
// stripe directory has an independent queue and service thread, so a read
// that spans many stripe directories proceeds in parallel while a small
// stripe factor funnels all chunks through few queues — the mechanism
// behind the paper's stripe-factor bottleneck.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace pstap::pfs {

namespace detail {
/// Completion state shared between an IoRequest and its queued chunks.
struct RequestState {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = 0;
  std::exception_ptr error;

  void complete_one(std::exception_ptr e) {
    std::lock_guard lock(mu);
    if (e && !error) error = e;
    if (--pending == 0) cv.notify_all();
  }
};
}  // namespace detail

/// Handle to an in-flight asynchronous read (the paper's iread handle;
/// wait() plays the role of ireadoff/iowait).
class IoRequest {
 public:
  IoRequest() = default;

  /// Block until every chunk is serviced; rethrows the first chunk error.
  void wait() {
    if (!state_) return;
    std::unique_lock lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->pending == 0; });
    if (state_->error) std::rethrow_exception(state_->error);
    state_.reset();
  }

  /// Nonblocking completion poll (does not consume errors; call wait()).
  bool done() const {
    if (!state_) return true;
    std::lock_guard lock(state_->mu);
    return state_->pending == 0;
  }

 private:
  friend class IoEngine;
  friend class StripedFile;  // attaches jobs to the shared state
  explicit IoRequest(std::shared_ptr<detail::RequestState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
};

/// Pool of per-stripe-directory service threads with optional bandwidth
/// throttling.
class IoEngine {
 public:
  /// One job: transfer `len` bytes between file descriptor `fd` at segment
  /// offset `offset` and memory `buf`.
  struct Job {
    int fd = -1;
    std::uint64_t offset = 0;
    std::byte* buf = nullptr;
    std::size_t len = 0;
    bool is_write = false;
    std::shared_ptr<detail::RequestState> state;
  };

  /// `servers` threads; each services its queue at `bandwidth` bytes/s
  /// (0 = unthrottled) plus `latency` seconds fixed cost per chunk.
  IoEngine(std::size_t servers, double bandwidth, double latency);
  ~IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  std::size_t servers() const noexcept { return queues_.size(); }

  /// Create a request expecting `chunks` completions.
  IoRequest make_request(std::size_t chunks);

  /// Enqueue one chunk on stripe-directory `server`'s queue.
  void submit(std::size_t server, Job job);

  /// Total bytes serviced so far (reads + writes), for tests/benches.
  std::uint64_t bytes_serviced() const;

 private:
  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> jobs;
    bool stop = false;
  };

  void service_loop(std::size_t server);

  double bandwidth_;
  double latency_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> bytes_serviced_{0};
};

}  // namespace pstap::pfs
