// Asynchronous I/O engine: one service thread per stripe directory.
//
// Mirrors the structure of a parallel file system's server side: each
// stripe directory has an independent queue and service thread, so a read
// that spans many stripe directories proceeds in parallel while a small
// stripe factor funnels all chunks through few queues — the mechanism
// behind the paper's stripe-factor bottleneck.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/retry.hpp"
#include "common/types.hpp"
#include "obs/metrics.hpp"
#include "pfs/config.hpp"

namespace pstap::pfs {

class StragglerScheduler;

/// Raised when a serviced chunk fails CRC32C verification. Derives IoError
/// (and is not permanent), so retry layers re-read the chunk — corruption
/// is caught at the source and never reaches a consumer's buffer as data.
class ChecksumError : public IoError {
 public:
  using IoError::IoError;
};

/// Per-stripe-unit CRC32C catalog: the write path records the checksum of
/// each fully written stripe unit; the read path verifies served bytes
/// against it. Keyed by (file id, unit index) so recreated files can
/// orphan stale entries by taking a fresh id. Thread-safe (service threads
/// of all stripe directories share one catalog).
class ChecksumCatalog {
 public:
  struct Entry {
    std::uint32_t crc = 0;
    std::size_t valid_len = 0;  ///< checksummed prefix of the unit, bytes
  };

  void store(std::uint64_t file_id, std::uint64_t unit, Entry entry) {
    std::lock_guard lock(mu_);
    entries_[{file_id, unit}] = entry;
  }

  std::optional<Entry> lookup(std::uint64_t file_id, std::uint64_t unit) const {
    std::lock_guard lock(mu_);
    const auto it = entries_.find({file_id, unit});
    if (it == entries_.end()) return std::nullopt;
    return it->second;
  }

  /// Forget a unit (a rewrite not aligned to the unit start makes the
  /// recorded checksum stale — safety over coverage).
  void invalidate(std::uint64_t file_id, std::uint64_t unit) {
    std::lock_guard lock(mu_);
    entries_.erase({file_id, unit});
  }

  /// Forget every unit of a file (remove/recreate).
  void drop_file(std::uint64_t file_id) {
    std::lock_guard lock(mu_);
    auto it = entries_.lower_bound({file_id, 0});
    while (it != entries_.end() && it->first.first == file_id) it = entries_.erase(it);
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Entry> entries_;
};

namespace detail {
/// Completion state shared between an IoRequest and its queued chunks.
struct RequestState {
  std::mutex mu;
  std::condition_variable cv;
  std::size_t pending = 0;
  std::size_t errors = 0;    // every failed chunk is counted ...
  std::exception_ptr error;  // ... but only the first exception is kept

  void complete_one(std::exception_ptr e) {
    std::lock_guard lock(mu);
    if (e) {
      ++errors;
      if (!error) error = e;
    }
    if (--pending == 0) cv.notify_all();
  }
};

/// Completion state shared between the (up to two) jobs racing to serve one
/// hedged chunk. Exactly one job "claims" the chunk: the claimant copies
/// its bytes into the caller's buffer and calls complete_one; every other
/// job discards its result without touching user memory, metrics, or the
/// checksum catalog. An error only completes the chunk when it comes from
/// the LAST outstanding job (an earlier loser's failure must not preempt a
/// twin that may still succeed).
struct ChunkState {
  std::atomic<bool> claimed{false};
  std::atomic<int> outstanding{1};  ///< jobs that may still serve this chunk
  std::atomic<bool> hedged{false};  ///< a backup job was (or will be) issued
  std::atomic<double> started_at{0.0};  ///< monotonic start of first service

  /// True for the caller that wins the exclusive right to complete.
  bool claim() { return !claimed.exchange(true, std::memory_order_acq_rel); }
};
}  // namespace detail

/// Handle to an in-flight asynchronous read (the paper's iread handle;
/// wait() plays the role of ireadoff/iowait).
class IoRequest {
 public:
  IoRequest() = default;

  /// Block until every chunk is serviced, then release the request state;
  /// rethrows the first chunk error. Idempotent: calling it again — or on
  /// a moved-from handle — is a no-op.
  void wait() {
    if (!state_) return;
    std::exception_ptr error;
    {
      std::unique_lock lock(state_->mu);
      state_->cv.wait(lock, [&] { return state_->pending == 0; });
      error = state_->error;
      failed_chunks_ = state_->errors;
    }
    state_.reset();
    if (error) std::rethrow_exception(error);
  }

  /// Bounded wait: true when every chunk completed within `timeout`. Does
  /// not consume the request or its errors — follow up with wait().
  bool wait_for(Seconds timeout) const {
    if (!state_) return true;
    std::unique_lock lock(state_->mu);
    return state_->cv.wait_for(lock, std::chrono::duration<double>(timeout),
                               [&] { return state_->pending == 0; });
  }

  /// Nonblocking completion poll (does not consume errors; call wait()).
  bool done() const {
    if (!state_) return true;
    std::lock_guard lock(state_->mu);
    return state_->pending == 0;
  }

  /// Chunk failures observed by the last consuming wait() on this handle.
  /// wait() rethrows only the first error; the rest are counted here so
  /// multi-chunk failures are never silently swallowed.
  std::size_t failed_chunks() const noexcept { return failed_chunks_; }

 private:
  friend class IoEngine;
  friend class StripedFile;  // attaches jobs to the shared state
  explicit IoRequest(std::shared_ptr<detail::RequestState> s) : state_(std::move(s)) {}
  std::shared_ptr<detail::RequestState> state_;
  std::size_t failed_chunks_ = 0;
};

/// Wait for `req` with a per-request bound. Chunks hold raw pointers into
/// the caller's buffer, so an expired request cannot be abandoned: on
/// timeout the request is drained (full wait) and TimeoutError is raised —
/// unless draining surfaces the chunks' own error, which takes precedence.
inline void wait_with_timeout(IoRequest& req, Seconds timeout,
                              const std::string& what) {
  if (timeout <= 0 || req.wait_for(timeout)) {
    req.wait();
    return;
  }
  req.wait();  // drain; rethrows a chunk error if one arrived while late
  throw TimeoutError(what + ": I/O request exceeded timeout");
}

/// Pool of per-stripe-directory service threads with optional bandwidth
/// throttling.
class IoEngine {
 public:
  /// One piece of a (possibly list-I/O) job: transfer `len` bytes between
  /// segment offset `offset` and memory `buf`. The integrity fields tie
  /// the piece to stripe unit `unit_index` of the file, whose data starts
  /// at segment offset `unit_seg_offset` — writes record the unit's CRC32C
  /// in the catalog, reads verify against it.
  struct Piece {
    std::uint64_t offset = 0;
    std::byte* buf = nullptr;
    std::size_t len = 0;
    std::uint64_t unit_index = 0;
    std::uint64_t unit_seg_offset = 0;
  };

  /// One job serviced by one stripe-directory thread. With the straggler
  /// scheduler OFF a job is one stripe-unit chunk (`pieces` holds exactly
  /// one entry). With it ON, a logical request is coalesced into one
  /// list-I/O job per server: `pieces` carries every noncontiguous range
  /// that server owns, serviced in one dequeue (the per-job fixed latency
  /// is paid once — the Ching et al. list-I/O effect).
  struct Job {
    int fd = -1;
    bool is_write = false;
    std::vector<Piece> pieces;
    std::shared_ptr<detail::RequestState> state;
    ChecksumCatalog* checksums = nullptr;
    std::uint64_t file_id = 0;

    // --- straggler-scheduler fields (inert when the scheduler is off) ---
    std::shared_ptr<detail::ChunkState> chunk;  ///< hedge-capable jobs only
    int replica_fd = -1;             ///< fd of the replica copy, or -1
    std::size_t replica_server = 0;  ///< queue holding the replica copy
    std::size_t server = 0;          ///< queue this job was submitted to
    Seconds deadline = 0;            ///< absolute monotonic deadline (0 = none)
    bool is_hedge = false;           ///< this is the speculative backup job

    std::size_t total_len() const {
      std::size_t n = 0;
      for (const Piece& p : pieces) n += p.len;
      return n;
    }
  };

  /// One service thread per stripe directory (`config.stripe_factor`);
  /// each services its queue at `config.server_bandwidth` bytes/s (0 =
  /// unthrottled) plus `config.server_latency` seconds fixed cost per job.
  /// `config.quarantine_threshold` > 0 arms the circuit breaker;
  /// `config.straggler_sched` starts the StragglerScheduler thread.
  explicit IoEngine(const PfsConfig& config);
  ~IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  std::size_t servers() const noexcept { return queues_.size(); }

  /// Create a request expecting `chunks` completions.
  IoRequest make_request(std::size_t chunks);

  /// Enqueue one job on stripe-directory `server`'s queue. `front` pushes
  /// to the head of the queue (hedge backups jump the line so the race is
  /// against service time, not queue depth).
  void submit(std::size_t server, Job job, bool front = false);

  /// Total bytes serviced so far (reads + writes), for tests/benches.
  /// Hedge losers are excluded: a chunk's bytes count exactly once.
  std::uint64_t bytes_serviced() const;

  /// Chunks whose served bytes failed CRC32C verification (each raised a
  /// retryable ChecksumError toward the requester).
  std::uint64_t corrupt_chunks() const {
    return corrupt_chunks_.load(std::memory_order_relaxed);
  }

  /// Stripe directories quarantined by the circuit breaker since mount.
  std::uint64_t quarantined_servers() const {
    return quarantined_count_.load(std::memory_order_relaxed);
  }

  /// True when `server`'s circuit breaker is open — clients holding a
  /// replica should redirect reads away from it. With a probe interval
  /// configured, an open breaker transitions to half-open once the
  /// interval elapses and this returns false: the next client chunk is the
  /// probe, and its outcome closes the breaker (server rejoins,
  /// `breaker_reopened` bumps) or re-opens it for another interval.
  bool quarantined(std::size_t server) const;

  // ------------------------------------------- straggler-defense counters --
  /// Speculative backup reads launched past a quantile deadline.
  std::uint64_t hedges_launched() const {
    return hedges_launched_.load(std::memory_order_relaxed);
  }
  /// Hedged chunks where the backup beat the original.
  std::uint64_t hedge_wins() const {
    return hedge_wins_.load(std::memory_order_relaxed);
  }
  /// Jobs discarded unserviced because their twin already claimed the chunk.
  std::uint64_t hedge_cancels() const {
    return hedge_cancels_.load(std::memory_order_relaxed);
  }
  /// Queued jobs moved from a slow server's queue to its replica server.
  std::uint64_t chunks_stolen() const {
    return chunks_stolen_.load(std::memory_order_relaxed);
  }
  /// Jobs observed in flight past their quantile deadline.
  std::uint64_t deadline_expired() const {
    return deadline_expired_.load(std::memory_order_relaxed);
  }
  /// Quarantined stripe directories re-admitted by a half-open probe.
  std::uint64_t breaker_reopened() const {
    return breaker_reopened_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------------------- observability --
  // Per-engine distributions (reset-free: an engine lives for one mount).

  /// Queue depth of the chunk's stripe-directory queue, sampled at every
  /// submit — the paper's funnel: small stripe factors produce deep queues.
  const obs::Histogram& queue_depth() const noexcept { return queue_depth_; }

  /// Wall seconds from dequeue to completion per chunk, including the
  /// modeled service rate — what a client's wait is made of.
  const obs::Histogram& service_time() const noexcept { return service_time_; }

  /// Same distribution, split per stripe directory — the straggler-aware
  /// scheduler's input: one slow server shows up here long before it moves
  /// the aggregate. Index < servers().
  const obs::Histogram& server_service_time(std::size_t server) const noexcept {
    return *server_service_time_[server];
  }

  /// Wall seconds a logical StripedFile submit spent splitting and
  /// enqueueing chunks (client-side cost before any service happens).
  const obs::Histogram& submit_latency() const noexcept { return submit_latency_; }
  void record_submit_latency(double seconds) { submit_latency_.record(seconds); }

 private:
  friend class StragglerScheduler;  // reorders/steals inside queue locks

  struct Queue {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Job> jobs;
    bool stop = false;
  };

  /// Per-server circuit breaker: consecutive chunk failures trip it open;
  /// with a probe interval, open decays to half-open where one client
  /// chunk is admitted as the probe.
  struct Breaker {
    enum State : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };
    std::atomic<std::size_t> consecutive_failures{0};
    std::atomic<int> state{kClosed};
    std::atomic<double> opened_at{0.0};  ///< monotonic seconds when opened
  };

  /// submit() minus deadline assignment and hedge tracking — the raw
  /// enqueue used by the scheduler for hedge twins and stolen jobs (which
  /// must not be re-tracked or re-deadlined).
  void enqueue(std::size_t server, Job job, bool front);

  void service_loop(std::size_t server);
  void service_job(std::size_t server, Job& job,
                   std::vector<std::byte>& hedge_scratch);
  void note_outcome(std::size_t server, bool failed);

  double bandwidth_;
  double latency_;
  std::size_t quarantine_threshold_;
  Seconds breaker_probe_interval_;
  std::size_t straggler_servers_;
  double straggler_slowdown_;
  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::unique_ptr<Breaker>> breakers_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> bytes_serviced_{0};
  std::atomic<std::uint64_t> corrupt_chunks_{0};
  std::atomic<std::uint64_t> quarantined_count_{0};
  std::atomic<std::uint64_t> hedges_launched_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> hedge_cancels_{0};
  std::atomic<std::uint64_t> chunks_stolen_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> breaker_reopened_{0};
  obs::Histogram queue_depth_;
  obs::Histogram service_time_;
  obs::Histogram submit_latency_;
  std::vector<std::unique_ptr<obs::Histogram>> server_service_time_;
  // Fault-injection site and trace-counter names, precomputed so the hot
  // path never formats.
  std::vector<std::string> read_sites_;   // "pfs.server.read.sdNNN"
  std::vector<std::string> write_sites_;  // "pfs.server.write.sdNNN"
  std::vector<std::string> depth_names_;  // "queue_depth.sdNNN"
  // Declared last: the scheduler thread touches the members above, so it
  // must be destroyed (joined) first.
  std::unique_ptr<StragglerScheduler> scheduler_;
};

}  // namespace pstap::pfs
