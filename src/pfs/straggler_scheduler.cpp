#include "pfs/straggler_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/wall_clock.hpp"

namespace pstap::pfs {

namespace {
/// Median of an unsorted sample (destructive). Returns 0 when empty.
double median(std::vector<double>& v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid), v.end());
  return v[mid];
}
}  // namespace

StragglerScheduler::StragglerScheduler(IoEngine& engine, const PfsConfig& config)
    : engine_(engine),
      cfg_(config),
      windows_(engine.servers()),
      slow_(engine.servers(), false) {
  last_rebaseline_ = monotonic_now();
  thread_ = std::thread([this] { run(); });
}

StragglerScheduler::~StragglerScheduler() {
  {
    std::lock_guard lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  thread_.join();
}

Seconds StragglerScheduler::assign_deadline(std::size_t /*server*/) const {
  const double budget = budget_.load(std::memory_order_relaxed);
  if (budget <= 0) return 0;  // quantiles still cold: no deadline yet
  return monotonic_now() + budget;
}

void StragglerScheduler::track(const IoEngine::Job& job) {
  std::lock_guard lock(tracked_mu_);
  tracked_.push_back(Tracked{job});
}

void StragglerScheduler::run() {
  std::unique_lock lock(stop_mu_);
  for (;;) {
    stop_cv_.wait_for(lock, std::chrono::duration<double>(cfg_.sched_tick),
                      [&] { return stop_; });
    if (stop_) return;
    lock.unlock();
    const Seconds now = monotonic_now();
    refresh_quantiles(now);
    if (cfg_.hedged_reads) hedge_scan(now);
    steal_scan();
    reorder_queues();
    lock.lock();
  }
}

double StragglerScheduler::window_quantile(const Window& w, double p) const {
  if (w.samples == 0) return 0.0;
  const std::uint64_t target = static_cast<std::uint64_t>(std::ceil(
      p * static_cast<double>(w.samples)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    seen += w.delta[i];
    if (seen >= target && w.delta[i] > 0) {
      // Geometric midpoint of the bucket (ratio sqrt(2)).
      const double lower = obs::Histogram::bucket_lower_bound(i);
      return lower * std::pow(2.0, 0.25);
    }
  }
  return 0.0;
}

void StragglerScheduler::refresh_quantiles(Seconds now) {
  const std::size_t n = engine_.servers();
  const bool rebase = now - last_rebaseline_ >= cfg_.sched_window;
  std::vector<double> p50s, pqs;
  p50s.reserve(n);
  pqs.reserve(n);
  for (std::size_t s = 0; s < n; ++s) {
    Window& w = windows_[s];
    const obs::Histogram& h = engine_.server_service_time(s);
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      const std::uint64_t cur = h.bucket_count(i);
      w.delta[i] = cur - w.baseline[i];
      total += w.delta[i];
      if (rebase) w.baseline[i] = cur;
    }
    w.samples = total;
    // Quantiles are sticky: a freshly re-baselined (thin) window keeps the
    // previous estimate instead of flapping back to "cold".
    if (total >= cfg_.deadline_min_samples) {
      w.p50 = window_quantile(w, 0.50);
      w.pq = window_quantile(w, cfg_.deadline_quantile);
    }
    if (w.pq > 0) {
      p50s.push_back(w.p50);
      pqs.push_back(w.pq);
    }
  }
  if (rebase) last_rebaseline_ = now;

  if (pqs.empty()) return;  // every server still cold — keep budget at 0
  // "Healthy" = the MEDIAN server: one straggler cannot drag the deadline
  // up with its own slow history (it is exactly the server we must not
  // let set the bar).
  const double healthy_pq = median(pqs);
  const double healthy_p50 = median(p50s);
  budget_.store(std::max(cfg_.deadline_floor, cfg_.hedge_multiplier * healthy_pq),
                std::memory_order_relaxed);
  healthy_p50_.store(healthy_p50, std::memory_order_relaxed);
  for (std::size_t s = 0; s < n; ++s) {
    slow_[s] = engine_.quarantined(s) ||
               (windows_[s].pq > 0 && healthy_p50 > 0 &&
                windows_[s].p50 > cfg_.steal_factor * healthy_p50);
  }
}

void StragglerScheduler::hedge_scan(Seconds now) {
  const double budget = budget_.load(std::memory_order_relaxed);
  std::lock_guard lock(tracked_mu_);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    Tracked& t = tracked_[i];
    detail::ChunkState& chunk = *t.job.chunk;
    if (chunk.claimed.load(std::memory_order_acquire)) continue;  // done: drop
    bool keep = true;
    const double started = chunk.started_at.load(std::memory_order_acquire);
    if (budget > 0 && started > 0 && now - started > budget &&
        !chunk.hedged.load(std::memory_order_relaxed)) {
      engine_.deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      chunk.hedged.store(true, std::memory_order_relaxed);
      chunk.outstanding.fetch_add(1, std::memory_order_acq_rel);
      if (chunk.claimed.load(std::memory_order_acquire)) {
        // Lost the race against completion — retract the reservation.
        chunk.outstanding.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      engine_.hedges_launched_.fetch_add(1, std::memory_order_relaxed);
      IoEngine::Job backup = t.job;
      std::swap(backup.fd, backup.replica_fd);
      backup.server = t.job.replica_server;
      backup.replica_server = t.job.server;
      backup.is_hedge = true;
      backup.deadline = 0;
      // Front of the replica queue: the hedge races the straggler's
      // service time, not the replica's backlog.
      engine_.enqueue(backup.server, std::move(backup), /*front=*/true);
      keep = false;  // at most one hedge per chunk — nothing left to watch
    }
    if (keep) {
      if (kept != i) tracked_[kept] = std::move(tracked_[i]);
      ++kept;
    }
  }
  tracked_.resize(kept);
}

void StragglerScheduler::steal_scan() {
  const std::size_t n = engine_.servers();
  for (std::size_t s = 0; s < n; ++s) {
    if (!slow_[s]) continue;
    std::vector<IoEngine::Job> moved;
    {
      IoEngine::Queue& q = *engine_.queues_[s];
      std::lock_guard lock(q.mu);
      for (auto it = q.jobs.begin(); it != q.jobs.end();) {
        IoEngine::Job& j = *it;
        const bool eligible =
            !j.is_write && !j.is_hedge && j.replica_fd >= 0 &&
            j.replica_server < slow_.size() && !slow_[j.replica_server] &&
            !engine_.quarantined(j.replica_server) &&
            !(j.chunk && j.chunk->claimed.load(std::memory_order_acquire));
        if (eligible) {
          moved.push_back(std::move(j));
          it = q.jobs.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (IoEngine::Job& j : moved) {
      // Retarget to the replica copy; the slow server becomes the fallback.
      std::swap(j.fd, j.replica_fd);
      const std::size_t target = j.replica_server;
      j.replica_server = s;
      engine_.chunks_stolen_.fetch_add(1, std::memory_order_relaxed);
      if (j.chunk) {
        // Keep the hedge template in sync so a later hedge goes back to
        // the copy we just walked away from, not to the queue we chose.
        std::lock_guard lock(tracked_mu_);
        for (Tracked& t : tracked_) {
          if (t.job.chunk.get() == j.chunk.get()) {
            t.job.fd = j.fd;
            t.job.replica_fd = j.replica_fd;
            t.job.server = target;
            t.job.replica_server = j.replica_server;
            break;
          }
        }
      }
      // Keeps its original deadline: after the EDF reorder it drains ahead
      // of the fast server's fresher work.
      engine_.enqueue(target, std::move(j), /*front=*/false);
    }
  }
}

void StragglerScheduler::reorder_queues() {
  for (auto& qp : engine_.queues_) {
    IoEngine::Queue& q = *qp;
    std::lock_guard lock(q.mu);
    if (q.jobs.size() < 2) continue;
    std::stable_sort(q.jobs.begin(), q.jobs.end(),
                     [](const IoEngine::Job& a, const IoEngine::Job& b) {
                       const double da = a.deadline > 0 ? a.deadline : 1e300;
                       const double db = b.deadline > 0 ? b.deadline : 1e300;
                       return da < db;
                     });
  }
}

}  // namespace pstap::pfs
