// A file striped round-robin across the stripe directories of a
// StripedFileSystem, with synchronous and asynchronous positioned I/O.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "pfs/io_engine.hpp"

namespace pstap::pfs {

class StripedFileSystem;

/// Open handle to a striped file. Obtained from StripedFileSystem::open()
/// or ::create() — the analogue of the paper's global open (gopen).
///
/// All reads/writes are positioned (pread/pwrite style) and thread-safe
/// with respect to each other, matching the paper's usage where every node
/// of the first task reads its own exclusive file region.
class StripedFile {
 public:
  StripedFile(StripedFile&&) noexcept;
  StripedFile& operator=(StripedFile&&) noexcept;
  StripedFile(const StripedFile&) = delete;
  StripedFile& operator=(const StripedFile&) = delete;
  ~StripedFile();

  const std::string& name() const noexcept { return name_; }

  /// Current logical file size in bytes.
  std::uint64_t size() const;

  /// Blocking read of out.size() bytes at `offset`. The range must lie
  /// within the file.
  void read(std::uint64_t offset, std::span<std::byte> out);

  /// Asynchronous read (the paper's iread()): returns immediately with a
  /// request handle on async-capable file systems; on synchronous-only
  /// configurations (PIOFS) the transfer completes before returning and
  /// the handle is already done — callers get no overlap, by design.
  [[nodiscard]] IoRequest iread(std::uint64_t offset, std::span<std::byte> out);

  /// Blocking write of data.size() bytes at `offset`, extending the file
  /// as needed.
  void write(std::uint64_t offset, std::span<const std::byte> data);

  /// One piece of a gather read: `buf.size()` bytes at file offset `offset`.
  struct IoSegment {
    std::uint64_t offset = 0;
    std::span<std::byte> buf;
  };

  /// Asynchronous gather read: every segment is queued under ONE request —
  /// the strided-access primitive (e.g. a range slab of a pulse-major CPI
  /// file is pulses*channels small segments). Segments must lie within the
  /// file. Honors the file system's async capability like iread().
  [[nodiscard]] IoRequest iread_gather(std::span<const IoSegment> segments);

  /// Typed convenience wrappers.
  template <typename T>
  void read_values(std::uint64_t offset, std::span<T> out) {
    read(offset, std::as_writable_bytes(out));
  }
  template <typename T>
  [[nodiscard]] IoRequest iread_values(std::uint64_t offset, std::span<T> out) {
    return iread(offset, std::as_writable_bytes(out));
  }
  template <typename T>
  void write_values(std::uint64_t offset, std::span<const T> data) {
    write(offset, std::as_bytes(data));
  }

  /// Owning file system (for engine/config introspection, e.g. feeding
  /// service-time quantiles into deadline-aware retry policies).
  StripedFileSystem* filesystem() const noexcept { return fs_; }

 private:
  friend class StripedFileSystem;
  StripedFile(StripedFileSystem* fs, std::string name, std::uint64_t file_id,
              std::vector<int> segment_fds, std::vector<int> replica_fds);

  /// Jobs for one logical request, accumulated before dispatch. With
  /// `coalesce` set (straggler scheduler on) chunks landing on the same
  /// (server, segment fd) merge into ONE list-I/O job — pieces of every
  /// gather segment included — so a strided slab becomes one request per
  /// server instead of one per chunk; otherwise one single-piece job per
  /// chunk (the paper's baseline shape).
  struct Batch {
    std::vector<IoEngine::Job> jobs;
    std::map<std::pair<std::size_t, int>, std::size_t> slot;  // (server,fd)
    bool coalesce = false;
  };

  /// Split [offset, offset+len) into per-stripe-unit pieces and append
  /// them to the batch (replica redirect and write mirroring included).
  void append_jobs(Batch& batch, std::uint64_t offset, std::byte* buf,
                   std::size_t len, bool is_write);

  /// Create the request, attach state (and hedge chunk states), submit.
  IoRequest dispatch(Batch&& batch);

  IoRequest submit(std::uint64_t offset, std::byte* buf, std::size_t len, bool is_write);
  bool replicated() const noexcept { return !replica_fds_.empty(); }

  StripedFileSystem* fs_ = nullptr;
  std::string name_;
  std::uint64_t file_id_ = 0;
  std::vector<int> segment_fds_;  // one per stripe directory
  std::vector<int> replica_fds_;  // indexed by PRIMARY directory; may be empty
};

}  // namespace pstap::pfs
