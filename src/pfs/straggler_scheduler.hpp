// Client-side straggler-aware I/O scheduler (DESIGN.md §12).
//
// A single background thread per IoEngine that turns the per-server
// service-time histograms the engine already records into defensive
// action, Tavakoli-style:
//
//   * rolling quantiles — per stripe directory, over a sliding window
//     (bucket-count deltas against a baseline re-taken every
//     `sched_window`), so a recovered server sheds its slow history;
//   * quantile deadlines — every submitted job gets an absolute deadline
//     of now + max(floor, hedge_multiplier x healthy p-quantile), where
//     "healthy" is the MEDIAN across servers — a straggler cannot
//     inflate its own deadline and dodge the defense;
//   * hedged reads — a hedge-capable job (read with a replica) that
//     outlives its service budget gets a speculative twin submitted to
//     the FRONT of the replica server's queue; first completion wins the
//     chunk claim, the loser is discarded without touching user memory,
//     metrics, or the checksum catalog (see detail::ChunkState);
//   * queue stealing — jobs still QUEUED on a slow server (rolling p50 >
//     steal_factor x healthy p50, or quarantined) are moved to the
//     replica server's queue, fd swapped to the replica copy;
//   * EDF reorder — queues are kept sorted by deadline, so stolen jobs
//     (carrying old deadlines) drain ahead of the fast server's fresh
//     work.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "pfs/config.hpp"
#include "pfs/io_engine.hpp"

namespace pstap::pfs {

class StragglerScheduler {
 public:
  StragglerScheduler(IoEngine& engine, const PfsConfig& config);
  ~StragglerScheduler();

  StragglerScheduler(const StragglerScheduler&) = delete;
  StragglerScheduler& operator=(const StragglerScheduler&) = delete;

  /// Absolute deadline for a job submitted to `server` now: monotonic now
  /// plus the current healthy-quantile budget. Called from IoEngine::submit.
  Seconds assign_deadline(std::size_t server) const;

  /// Register a hedge-capable job (read, replica available): the scan loop
  /// watches its ChunkState and may launch a backup. Copies the job (the
  /// copy shares the request/chunk state and points at the same pieces).
  void track(const IoEngine::Job& job);

  /// Current per-chunk service budget (test/bench introspection).
  Seconds current_budget() const {
    return budget_.load(std::memory_order_relaxed);
  }

 private:
  struct Tracked {
    IoEngine::Job job;  ///< template for the backup twin
  };

  /// Rolling-window view of one server's service-time histogram.
  struct Window {
    std::array<std::uint64_t, obs::Histogram::kBuckets> baseline{};
    std::array<std::uint64_t, obs::Histogram::kBuckets> delta{};
    std::uint64_t samples = 0;
    double p50 = 0.0;
    double pq = 0.0;  ///< config.deadline_quantile
  };

  void run();
  void refresh_quantiles(Seconds now);
  void hedge_scan(Seconds now);
  void steal_scan();
  void reorder_queues();
  double window_quantile(const Window& w, double p) const;

  IoEngine& engine_;
  const PfsConfig cfg_;

  std::vector<Window> windows_;
  Seconds last_rebaseline_ = 0;
  std::atomic<double> budget_{0.0};       ///< hedge/deadline budget, seconds
  std::atomic<double> healthy_p50_{0.0};  ///< steal threshold base
  std::vector<bool> slow_;                ///< per-server steal verdict

  std::mutex tracked_mu_;
  std::vector<Tracked> tracked_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace pstap::pfs
