// StripedFileSystem: a working parallel file system over a local directory
// tree, built from scratch as the substrate for the paper's I/O study.
//
// Layout: root/sd000 .. sd<F-1> are the stripe directories. A logical file
// `name` is stored as segments `sdXXX/name.seg`; logical byte x lives in
// stripe unit u = x / stripe_unit, directory u % F, at segment offset
// (u / F) * stripe_unit + x % stripe_unit. Logical sizes are tracked in an
// in-process catalog and persisted to root/<name>.meta.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "pfs/config.hpp"
#include "pfs/io_engine.hpp"
#include "pfs/striped_file.hpp"

namespace pstap::pfs {

class StripedFileSystem {
 public:
  /// Mount (creating if needed) a striped file system rooted at `root`.
  /// The layout (stripe factor/unit) is persisted in a superblock file on
  /// first mount; remounting with a different layout throws, because reads
  /// through a mismatched layout would silently deliver garbled data.
  /// Service parameters (bandwidth, async capability) may differ per mount.
  StripedFileSystem(std::filesystem::path root, PfsConfig config);
  ~StripedFileSystem();

  StripedFileSystem(const StripedFileSystem&) = delete;
  StripedFileSystem& operator=(const StripedFileSystem&) = delete;

  const PfsConfig& config() const noexcept { return config_; }
  const std::filesystem::path& root() const noexcept { return root_; }

  /// True if a logical file exists.
  bool exists(const std::string& name) const;

  /// Logical size of an existing file.
  std::uint64_t file_size(const std::string& name) const;

  /// Names of all logical files, sorted.
  std::vector<std::string> list_files() const;

  /// Open an existing file (global open: every rank may open the same file
  /// and issue positioned reads concurrently).
  StripedFile open(const std::string& name);

  /// Create (or truncate) a file and open it.
  StripedFile create(const std::string& name);

  /// Convenience: create `name` holding exactly `data`.
  void write_file(const std::string& name, std::span<const std::byte> data);

  /// Convenience: read the whole file.
  std::vector<std::byte> read_file(const std::string& name);

  /// Delete a logical file and its segments.
  void remove(const std::string& name);

  IoEngine& engine() noexcept { return *engine_; }

  /// Per-unit CRC32C catalog backing end-to-end read verification.
  ChecksumCatalog& checksums() noexcept { return checksums_; }

  /// Total bytes moved through the I/O servers since mount.
  std::uint64_t bytes_serviced() const { return engine_->bytes_serviced(); }

 private:
  friend class StripedFile;

  std::filesystem::path segment_path(const std::string& name, std::size_t dir) const;
  std::filesystem::path replica_path(const std::string& name, std::size_t dir) const;
  std::filesystem::path meta_path(const std::string& name) const;
  void validate_name(const std::string& name) const;

  /// Stable id of a logical file (assigned on first touch; create() issues
  /// a fresh one so checksums of the overwritten incarnation are orphaned).
  std::uint64_t file_id(const std::string& name, bool fresh);

  /// Catalog access (logical sizes), guarded by mu_.
  std::uint64_t catalog_size(const std::string& name) const;
  void catalog_extend(const std::string& name, std::uint64_t new_size);

  std::filesystem::path root_;
  PfsConfig config_;
  std::unique_ptr<IoEngine> engine_;
  ChecksumCatalog checksums_;

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> catalog_;   // name -> logical size
  std::map<std::string, std::uint64_t> file_ids_;  // name -> stable id
  std::uint64_t next_file_id_ = 1;
};

}  // namespace pstap::pfs
