#include "pfs/striped_file_system.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "obs/trace.hpp"

namespace pstap::pfs {

namespace fs = std::filesystem;

PfsConfig paragon_pfs(std::size_t stripe_factor) {
  PfsConfig cfg;
  cfg.name = "paragon-pfs-sf" + std::to_string(stripe_factor);
  cfg.stripe_factor = stripe_factor;
  cfg.stripe_unit = 64 * KiB;
  cfg.supports_async = true;
  return cfg;
}

void apply_env_overrides(PfsConfig& config) {
  if (const char* env = std::getenv("PSTAP_STRAGGLER_SCHED")) {
    const std::string v = env;
    config.straggler_sched = !(v == "0" || v == "off" || v == "OFF");
  }
}

PfsConfig piofs(std::size_t stripe_factor) {
  PfsConfig cfg;
  cfg.name = "piofs-sf" + std::to_string(stripe_factor);
  cfg.stripe_factor = stripe_factor;
  cfg.stripe_unit = 64 * KiB;
  cfg.supports_async = false;  // PIOFS has no asynchronous read API
  return cfg;
}

StripedFileSystem::StripedFileSystem(fs::path root, PfsConfig config)
    : root_(std::move(root)), config_(std::move(config)) {
  apply_env_overrides(config_);
  PSTAP_REQUIRE(config_.stripe_factor >= 1, "stripe factor must be >= 1");
  PSTAP_REQUIRE(config_.stripe_unit >= 1, "stripe unit must be >= 1 byte");
  PSTAP_REQUIRE(config_.replicas >= 1 && config_.replicas <= 2,
                "pfs supports 1 (none) or 2 (one replica) copies per unit");
  PSTAP_REQUIRE(config_.replicas == 1 || config_.stripe_factor >= 2,
                "replication needs at least two stripe directories");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec) PSTAP_IO_FAIL("cannot create pfs root " + root_.string(), ec.value());

  // Superblock: the striping layout is a property of the on-disk data, not
  // of the mount. Persist it on first mount; verify it afterwards.
  const fs::path super = root_ / ".pfs_superblock";
  if (fs::exists(super)) {
    std::ifstream in(super);
    std::size_t factor = 0, unit = 0;
    if (!(in >> factor >> unit)) {
      PSTAP_IO_FAIL("corrupt pfs superblock at " + super.string(), 0);
    }
    PSTAP_REQUIRE(factor == config_.stripe_factor && unit == config_.stripe_unit,
                  "mount layout (stripe factor " +
                      std::to_string(config_.stripe_factor) + ", unit " +
                      std::to_string(config_.stripe_unit) +
                      ") does not match the on-disk layout (factor " +
                      std::to_string(factor) + ", unit " + std::to_string(unit) +
                      ")");
  } else {
    std::ofstream out(super, std::ios::trunc);
    out << config_.stripe_factor << ' ' << config_.stripe_unit << '\n';
    if (!out) PSTAP_IO_FAIL("cannot write pfs superblock", errno);
  }

  for (std::size_t d = 0; d < config_.stripe_factor; ++d) {
    char dir[32];
    std::snprintf(dir, sizeof dir, "sd%03zu", d);
    fs::create_directories(root_ / dir, ec);
    if (ec) PSTAP_IO_FAIL("cannot create stripe directory", ec.value());
  }
  engine_ = std::make_unique<IoEngine>(config_);
  // Recover the catalog from persisted metadata.
  for (const auto& entry : fs::directory_iterator(root_)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".meta") continue;
    std::ifstream in(entry.path());
    std::uint64_t size = 0;
    if (in >> size) catalog_[entry.path().stem().string()] = size;
  }
}

StripedFileSystem::~StripedFileSystem() = default;

void StripedFileSystem::validate_name(const std::string& name) const {
  PSTAP_REQUIRE(!name.empty() && name.find('/') == std::string::npos &&
                    name.find("..") == std::string::npos,
                "file name must be a non-empty basename");
}

fs::path StripedFileSystem::segment_path(const std::string& name, std::size_t dir) const {
  char d[16];
  std::snprintf(d, sizeof d, "sd%03zu", dir);
  return root_ / d / (name + ".seg");
}

fs::path StripedFileSystem::replica_path(const std::string& name, std::size_t dir) const {
  // Replica of the units whose primary is `dir` lives one directory over,
  // so losing a single stripe directory never loses both copies of a unit.
  char d[16];
  std::snprintf(d, sizeof d, "sd%03zu", (dir + 1) % config_.stripe_factor);
  return root_ / d / (name + ".r1.seg");
}

fs::path StripedFileSystem::meta_path(const std::string& name) const {
  return root_ / (name + ".meta");
}

std::uint64_t StripedFileSystem::file_id(const std::string& name, bool fresh) {
  std::lock_guard lock(mu_);
  auto it = file_ids_.find(name);
  if (it != file_ids_.end() && !fresh) return it->second;
  return file_ids_[name] = next_file_id_++;
}

bool StripedFileSystem::exists(const std::string& name) const {
  validate_name(name);
  std::lock_guard lock(mu_);
  return catalog_.contains(name);
}

std::uint64_t StripedFileSystem::file_size(const std::string& name) const {
  validate_name(name);
  std::lock_guard lock(mu_);
  const auto it = catalog_.find(name);
  PSTAP_REQUIRE(it != catalog_.end(), "file does not exist: " + name);
  return it->second;
}

std::vector<std::string> StripedFileSystem::list_files() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(catalog_.size());
  for (const auto& [name, size] : catalog_) names.push_back(name);
  return names;
}

std::uint64_t StripedFileSystem::catalog_size(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = catalog_.find(name);
  return it == catalog_.end() ? 0 : it->second;
}

void StripedFileSystem::catalog_extend(const std::string& name, std::uint64_t new_size) {
  std::lock_guard lock(mu_);
  auto& size = catalog_[name];
  if (new_size <= size) return;
  size = new_size;
  std::ofstream out(meta_path(name), std::ios::trunc);
  out << size << '\n';
  if (!out) PSTAP_IO_FAIL("cannot persist metadata for " + name, errno);
}

StripedFile StripedFileSystem::open(const std::string& name) {
  validate_name(name);
  {
    std::lock_guard lock(mu_);
    PSTAP_REQUIRE(catalog_.contains(name), "file does not exist: " + name);
  }
  const auto open_all = [&](auto path_of, std::vector<int>& fds) {
    fds.reserve(config_.stripe_factor);
    for (std::size_t d = 0; d < config_.stripe_factor; ++d) {
      const int fd = ::open(path_of(d).c_str(), O_RDWR | O_CREAT, 0644);
      if (fd < 0) {
        for (int f : fds) ::close(f);
        PSTAP_IO_FAIL("cannot open segment of " + name, errno);
      }
      fds.push_back(fd);
    }
  };
  std::vector<int> fds;
  open_all([&](std::size_t d) { return segment_path(name, d); }, fds);
  std::vector<int> replica_fds;
  if (config_.replicas > 1) {
    open_all([&](std::size_t d) { return replica_path(name, d); }, replica_fds);
  }
  return StripedFile(this, name, file_id(name, /*fresh=*/false), std::move(fds),
                     std::move(replica_fds));
}

StripedFile StripedFileSystem::create(const std::string& name) {
  validate_name(name);
  {
    std::lock_guard lock(mu_);
    catalog_[name] = 0;
    std::ofstream out(meta_path(name), std::ios::trunc);
    out << 0 << '\n';
  }
  for (std::size_t d = 0; d < config_.stripe_factor; ++d) {
    // Truncate any stale segment content.
    const int fd = ::open(segment_path(name, d).c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) PSTAP_IO_FAIL("cannot create segment of " + name, errno);
    ::close(fd);
    if (config_.replicas > 1) {
      const int rfd =
          ::open(replica_path(name, d).c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
      if (rfd < 0) PSTAP_IO_FAIL("cannot create replica segment of " + name, errno);
      ::close(rfd);
    }
  }
  // Fresh id: checksums recorded for the overwritten incarnation (if any)
  // are orphaned rather than matched against the new contents.
  (void)file_id(name, /*fresh=*/true);
  return open(name);
}

void StripedFileSystem::write_file(const std::string& name,
                                   std::span<const std::byte> data) {
  StripedFile f = create(name);
  f.write(0, data);
}

std::vector<std::byte> StripedFileSystem::read_file(const std::string& name) {
  StripedFile f = open(name);
  std::vector<std::byte> data(f.size());
  if (!data.empty()) f.read(0, data);
  return data;
}

void StripedFileSystem::remove(const std::string& name) {
  validate_name(name);
  std::uint64_t id = 0;
  {
    std::lock_guard lock(mu_);
    PSTAP_REQUIRE(catalog_.erase(name) == 1, "file does not exist: " + name);
    const auto it = file_ids_.find(name);
    if (it != file_ids_.end()) {
      id = it->second;
      file_ids_.erase(it);
    }
  }
  if (id != 0) checksums_.drop_file(id);
  std::error_code ec;
  fs::remove(meta_path(name), ec);
  for (std::size_t d = 0; d < config_.stripe_factor; ++d) {
    fs::remove(segment_path(name, d), ec);
    fs::remove(replica_path(name, d), ec);
  }
}

// ---------------------------------------------------------- StripedFile --

StripedFile::StripedFile(StripedFileSystem* fs, std::string name, std::uint64_t file_id,
                         std::vector<int> segment_fds, std::vector<int> replica_fds)
    : fs_(fs), name_(std::move(name)), file_id_(file_id),
      segment_fds_(std::move(segment_fds)), replica_fds_(std::move(replica_fds)) {}

StripedFile::StripedFile(StripedFile&& other) noexcept
    : fs_(other.fs_), name_(std::move(other.name_)), file_id_(other.file_id_),
      segment_fds_(std::move(other.segment_fds_)),
      replica_fds_(std::move(other.replica_fds_)) {
  other.segment_fds_.clear();
  other.replica_fds_.clear();
  other.fs_ = nullptr;
}

StripedFile& StripedFile::operator=(StripedFile&& other) noexcept {
  if (this != &other) {
    for (int fd : segment_fds_) ::close(fd);
    for (int fd : replica_fds_) ::close(fd);
    fs_ = other.fs_;
    name_ = std::move(other.name_);
    file_id_ = other.file_id_;
    segment_fds_ = std::move(other.segment_fds_);
    replica_fds_ = std::move(other.replica_fds_);
    other.segment_fds_.clear();
    other.replica_fds_.clear();
    other.fs_ = nullptr;
  }
  return *this;
}

StripedFile::~StripedFile() {
  for (int fd : segment_fds_) ::close(fd);
  for (int fd : replica_fds_) ::close(fd);
}

std::uint64_t StripedFile::size() const { return fs_->catalog_size(name_); }

void StripedFile::append_jobs(Batch& batch, std::uint64_t offset, std::byte* buf,
                              std::size_t len, bool is_write) {
  const std::size_t unit = fs_->config().stripe_unit;
  const std::size_t factor = fs_->config().stripe_factor;

  // Find (or, in coalescing mode, create once) the batch job for a
  // (server, fd) pair and append the piece to it. In per-chunk mode every
  // piece gets its own job — the paper's baseline request shape.
  const auto append = [&](std::size_t server, int fd, const IoEngine::Piece& piece,
                          ChecksumCatalog* checksums, int replica_fd,
                          std::size_t replica_server) {
    if (batch.coalesce) {
      const auto [it, fresh] = batch.slot.try_emplace(
          std::make_pair(server, fd), batch.jobs.size());
      if (!fresh) {
        batch.jobs[it->second].pieces.push_back(piece);
        return;
      }
    }
    IoEngine::Job job;
    job.fd = fd;
    job.is_write = is_write;
    job.pieces.push_back(piece);
    job.checksums = checksums;
    job.file_id = file_id_;
    job.server = server;
    job.replica_fd = replica_fd;
    job.replica_server = replica_server;
    batch.jobs.push_back(std::move(job));
  };

  for (std::uint64_t pos = offset; pos < offset + len;) {
    const std::uint64_t unit_index = pos / unit;
    const std::uint64_t in_unit = pos % unit;
    const std::uint64_t take = std::min<std::uint64_t>(unit - in_unit, offset + len - pos);
    const std::size_t dir = static_cast<std::size_t>(unit_index % factor);
    const std::size_t replica_dir = (dir + 1) % factor;
    IoEngine::Piece piece;
    piece.offset = (unit_index / factor) * unit + in_unit;
    piece.buf = buf + (pos - offset);
    piece.len = static_cast<std::size_t>(take);
    piece.unit_index = unit_index;
    piece.unit_seg_offset = (unit_index / factor) * unit;

    if (!is_write && replicated() && fs_->engine().quarantined(dir)) {
      // Failover read: the primary directory's breaker is open, so serve
      // this unit from its replica. The checksum catalog still applies —
      // both copies carry identical unit contents. No hedge target: the
      // other copy is exactly the quarantined server.
      append(replica_dir, replica_fds_[dir], piece, &fs_->checksums_,
             /*replica_fd=*/-1, /*replica_server=*/0);
    } else {
      const int replica_fd = (!is_write && replicated()) ? replica_fds_[dir] : -1;
      append(dir, segment_fds_[dir], piece, &fs_->checksums_, replica_fd,
             replica_dir);
      if (is_write && replicated()) {
        // The primary write records the CRC; the mirror only lands bytes.
        append(replica_dir, replica_fds_[dir], piece, /*checksums=*/nullptr,
               /*replica_fd=*/-1, /*replica_server=*/0);
      }
    }
    pos += take;
  }
}

IoRequest StripedFile::dispatch(Batch&& batch) {
  if (batch.jobs.empty()) return IoRequest{};
  // Pending completions = jobs (with coalescing, one per touched server),
  // not chunks: a list job completes its request slot once.
  IoRequest req = fs_->engine().make_request(batch.jobs.size());
  const bool hedgeable = fs_->config().straggler_sched && fs_->config().hedged_reads;
  for (IoEngine::Job& job : batch.jobs) {
    job.state = req.state_;
    if (hedgeable && !job.is_write && job.replica_fd >= 0) {
      // Hedge-capable: served through scratch + claim so a speculative
      // twin can race it without double-writing the caller's buffer.
      job.chunk = std::make_shared<detail::ChunkState>();
    }
    const std::size_t server = job.server;
    fs_->engine().submit(server, std::move(job));
  }
  return req;
}

IoRequest StripedFile::submit(std::uint64_t offset, std::byte* buf, std::size_t len,
                              bool is_write) {
  // Logical-level injection site: faults armed here fail the whole request
  // up front (a metadata/open-path failure), before any chunk is queued.
  const std::int64_t started_ns = obs::trace_now_ns();
  fault::inject((is_write ? "pfs.file.write." : "pfs.file.read.") + name_);
  Batch batch;
  batch.coalesce = fs_->config().straggler_sched;
  append_jobs(batch, offset, buf, len, is_write);
  IoRequest req = dispatch(std::move(batch));
  const std::int64_t dur_ns = obs::trace_now_ns() - started_ns;
  fs_->engine().record_submit_latency(static_cast<double>(dur_ns) * 1e-9);
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().complete(
        "io", is_write ? "submit.write" : "submit.read", obs::kLibraryPid,
        started_ns, dur_ns, /*cpi=*/-1, name_);
  }
  return req;
}

IoRequest StripedFile::iread_gather(std::span<const IoSegment> segments) {
  const std::int64_t started_ns = obs::trace_now_ns();
  fault::inject("pfs.file.read." + name_);
  const std::uint64_t file_size = size();
  // One batch across ALL segments: with coalescing on, a rank's whole
  // strided slab collapses into at most one list-I/O job per server.
  Batch batch;
  batch.coalesce = fs_->config().straggler_sched;
  for (const IoSegment& seg : segments) {
    PSTAP_REQUIRE(seg.offset + seg.buf.size() <= file_size,
                  "gather segment past end of file " + name_);
    if (!seg.buf.empty()) {
      append_jobs(batch, seg.offset, seg.buf.data(), seg.buf.size(),
                  /*is_write=*/false);
    }
  }
  IoRequest req = dispatch(std::move(batch));
  const std::int64_t dur_ns = obs::trace_now_ns() - started_ns;
  fs_->engine().record_submit_latency(static_cast<double>(dur_ns) * 1e-9);
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().complete("io", "submit.gather", obs::kLibraryPid,
                                          started_ns, dur_ns, /*cpi=*/-1, name_);
  }
  if (!fs_->config().supports_async) req.wait();  // PIOFS semantics
  return req;
}

void StripedFile::read(std::uint64_t offset, std::span<std::byte> out) {
  PSTAP_REQUIRE(offset + out.size() <= size(), "read past end of file " + name_);
  if (out.empty()) return;
  submit(offset, out.data(), out.size(), /*is_write=*/false).wait();
}

IoRequest StripedFile::iread(std::uint64_t offset, std::span<std::byte> out) {
  PSTAP_REQUIRE(offset + out.size() <= size(), "iread past end of file " + name_);
  if (out.empty()) return IoRequest{};
  IoRequest req = submit(offset, out.data(), out.size(), /*is_write=*/false);
  if (!fs_->config().supports_async) {
    // PIOFS semantics: no asynchronous read API — the call returns only
    // after the transfer is complete, so no overlap is possible.
    req.wait();
  }
  return req;
}

void StripedFile::write(std::uint64_t offset, std::span<const std::byte> data) {
  if (data.empty()) return;
  // Engine jobs only write into the caller's buffer for reads; for writes
  // the buffer is read-only in practice — const_cast is confined here.
  submit(offset, const_cast<std::byte*>(data.data()), data.size(), /*is_write=*/true)
      .wait();
  fs_->catalog_extend(name_, offset + data.size());
}

}  // namespace pstap::pfs
