// Umbrella header: the full pstap public API with one include.
//
//   #include "pstap.hpp"
//
// Individual module headers remain the preferred includes inside the
// library itself; this header is a convenience for applications.
#pragma once

// Shared utilities.
#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "common/wall_clock.hpp"

// Numerical substrates.
#include "fft/fft.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/cmatrix.hpp"
#include "linalg/qr.hpp"

// Message passing (threads as ranks).
#include "mp/comm.hpp"
#include "mp/world.hpp"

// Striped parallel file system.
#include "pfs/config.hpp"
#include "pfs/striped_file_system.hpp"

// STAP signal processing.
#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/chain.hpp"
#include "stap/cube_io.hpp"
#include "stap/data_cube.hpp"
#include "stap/detection_log.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/radar_params.hpp"
#include "stap/scene.hpp"
#include "stap/steering.hpp"
#include "stap/weights.hpp"
#include "stap/workload.hpp"

// Pipeline organizations and the functional backend.
#include "pipeline/collective_read.hpp"
#include "pipeline/metrics.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/task_spec.hpp"
#include "pipeline/thread_runner.hpp"

// Machine-scale discrete-event simulation.
#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/sim_runner.hpp"
