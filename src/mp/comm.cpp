#include "mp/comm.hpp"

#include "common/fault.hpp"
#include "mp/world.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pstap::mp {

namespace {

// Process-wide message-layer distributions (registry references are
// stable, so a single lookup each suffices). Sizes are bytes; waits are
// seconds spent blocked inside recv before a matching envelope arrived.
struct MpStats {
  obs::Histogram& send_bytes = obs::Registry::global().histogram("mp.send_bytes");
  obs::Histogram& recv_bytes = obs::Registry::global().histogram("mp.recv_bytes");
  obs::Histogram& recv_wait = obs::Registry::global().histogram("mp.recv_wait_s");
};

MpStats& mp_stats() {
  static MpStats stats;
  return stats;
}

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derive a child context id; forced even because odd ids are the shadow
/// contexts carrying internal collective traffic.
std::uint64_t derive_context(std::uint64_t parent, std::uint64_t seq, std::uint64_t salt) {
  return mix64(parent ^ mix64(seq ^ mix64(salt + 0x1234567ULL))) & ~1ULL;
}

}  // namespace

Mailbox& Comm::my_mailbox() {
  PSTAP_REQUIRE(is_member(), "operation on a non-member communicator handle");
  return world_->mailbox(group_[static_cast<std::size_t>(rank_)]);
}

void Comm::send_buffer(int dest, int tag, Buffer payload) {
  PSTAP_REQUIRE(is_member(), "send on a non-member communicator handle");
  PSTAP_REQUIRE(dest >= 0 && dest < size(), "send destination rank out of range");
  PSTAP_REQUIRE(tag >= 0, "user message tags must be >= 0");
  // Injection covers user point-to-point traffic only; internal collective
  // messages (shadow context) stay fault-free so the runtime's own
  // synchronization cannot be wedged by a plan.
  fault::inject("mp.send");
  mp_stats().send_bytes.record(static_cast<double>(payload.size()));
  Envelope env;
  env.context = context_;
  env.source = rank_;
  env.tag = tag;
  env.payload = std::move(payload);
  world_->mailbox(group_[static_cast<std::size_t>(dest)]).push(std::move(env));
}

void Comm::send_bytes(int dest, int tag, std::vector<std::byte> payload) {
  send_buffer(dest, tag, Buffer::adopt(std::move(payload)));
}

Buffer Comm::recv_buffer(int source, int tag, RecvInfo* info) {
  PSTAP_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
                "recv source rank out of range");
  PSTAP_REQUIRE(tag == kAnyTag || tag >= 0, "recv tag must be >= 0 or kAnyTag");
  fault::inject("mp.recv");
  const std::int64_t wait_start_ns = obs::trace_now_ns();
  Envelope env = my_mailbox().pop_matching(context_, source, tag);
  mp_stats().recv_wait.record(
      static_cast<double>(obs::trace_now_ns() - wait_start_ns) * 1e-9);
  mp_stats().recv_bytes.record(static_cast<double>(env.payload.size()));
  if (info != nullptr) {
    info->source = env.source;
    info->tag = env.tag;
    info->bytes = env.payload.size();
  }
  return std::move(env.payload);
}

std::vector<std::byte> Comm::recv_bytes(int source, int tag, RecvInfo* info) {
  return recv_buffer(source, tag, info).to_vector();
}

std::optional<std::size_t> Comm::probe(int source, int tag) {
  PSTAP_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
                "probe source rank out of range");
  return my_mailbox().probe(context_, source, tag);
}

std::size_t Comm::probe_wait(int source, int tag) {
  PSTAP_REQUIRE(source == kAnySource || (source >= 0 && source < size()),
                "probe source rank out of range");
  return my_mailbox().probe_wait(context_, source, tag);
}

void Comm::send_internal(int dest, int tag, std::vector<std::byte> payload) {
  Envelope env;
  env.context = context_ | 1;  // shadow context, invisible to user receives
  env.source = rank_;
  env.tag = tag;
  env.payload = Buffer::adopt(std::move(payload));
  world_->mailbox(group_[static_cast<std::size_t>(dest)]).push(std::move(env));
}

std::vector<std::byte> Comm::recv_internal(int source, int tag) {
  Envelope env = my_mailbox().pop_matching(context_ | 1, source, tag);
  return std::move(env.payload).to_vector();
}

Request Comm::irecv_bytes_impl(int source, int tag,
                               std::function<void(Buffer)> sink) {
  PSTAP_REQUIRE(is_member(), "irecv on a non-member communicator handle");
  Comm self = *this;
  return Request([self, source, tag, sink = std::move(sink)](bool block) mutable {
    Mailbox& box = self.world_->mailbox(self.group_[static_cast<std::size_t>(self.rank_)]);
    if (block) {
      Envelope env = box.pop_matching(self.context_, source, tag);
      sink(std::move(env.payload));
      return true;
    }
    if (auto env = box.try_pop_matching(self.context_, source, tag)) {
      sink(std::move(env->payload));
      return true;
    }
    return false;
  });
}

void Comm::barrier() {
  const int arrive = next_internal_tag(kOpBarrierArrive);
  const int release = next_internal_tag(kOpBarrierRelease);
  constexpr int kRoot = 0;
  if (rank_ == kRoot) {
    for (int r = 1; r < size(); ++r) (void)recv_internal(kAnySource, arrive);
    for (int r = 1; r < size(); ++r) send_internal(r, release, {});
  } else {
    send_internal(kRoot, arrive, {});
    (void)recv_internal(kRoot, release);
  }
}

Comm Comm::split(int color, int key) {
  PSTAP_REQUIRE(is_member(), "split on a non-member communicator handle");
  PSTAP_REQUIRE(color >= 0, "split color must be >= 0");
  const std::uint32_t seq = shared_->derive_seq++;

  // Allgather (color, key, rank) triples via the collective machinery.
  struct Entry {
    int color;
    int key;
    int rank;
  };
  const Entry mine{color, key, rank_};
  const auto entries = allgather(std::span<const Entry>(&mine, 1));
  PSTAP_CHECK(entries.size() == static_cast<std::size_t>(size()),
              "split allgather size mismatch");

  // Members of my color, ordered by (key, parent rank).
  std::vector<Entry> members;
  for (const Entry& e : entries) {
    if (e.color == color) members.push_back(e);
  }
  std::sort(members.begin(), members.end(), [](const Entry& a, const Entry& b) {
    return a.key != b.key ? a.key < b.key : a.rank < b.rank;
  });

  std::vector<int> group;
  int new_rank = -1;
  group.reserve(members.size());
  for (const Entry& e : members) {
    if (e.rank == rank_) new_rank = static_cast<int>(group.size());
    group.push_back(group_[static_cast<std::size_t>(e.rank)]);
  }
  PSTAP_CHECK(new_rank >= 0, "split lost the calling rank");

  const std::uint64_t ctx =
      derive_context(context_, seq, static_cast<std::uint64_t>(color));
  return Comm(world_, std::move(group), new_rank, ctx);
}

Comm Comm::subgroup(std::span<const int> parent_ranks) {
  PSTAP_REQUIRE(is_member(), "subgroup on a non-member communicator handle");
  PSTAP_REQUIRE(!parent_ranks.empty(), "subgroup needs at least one rank");
  const std::uint32_t seq = shared_->derive_seq++;

  std::uint64_t salt = 0x9e3779b97f4a7c15ULL;
  std::vector<int> group;
  group.reserve(parent_ranks.size());
  int new_rank = -1;
  for (std::size_t i = 0; i < parent_ranks.size(); ++i) {
    const int pr = parent_ranks[i];
    PSTAP_REQUIRE(pr >= 0 && pr < size(), "subgroup rank out of range");
    if (pr == rank_) new_rank = static_cast<int>(i);
    group.push_back(group_[static_cast<std::size_t>(pr)]);
    salt = mix64(salt ^ (static_cast<std::uint64_t>(pr) + i));
  }
  const std::uint64_t ctx = derive_context(context_, seq, salt);
  return Comm(world_, std::move(group), new_rank, ctx);
}

}  // namespace pstap::mp
