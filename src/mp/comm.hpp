// Communicator: the rank-facing API of the mp runtime.
//
// Mirrors the message-passing model the paper's STAP code used on the
// Paragon (NX) and SP (MPL/MPI): blocking and nonblocking point-to-point
// with tag matching, plus the collectives the pipeline needs (barrier,
// bcast, gather, reduce, allreduce, allgather, scatter) and communicator
// splitting for per-task node groups.
//
// Ranks are threads (see mp::World). Sends are buffered: the payload is
// copied into the destination mailbox immediately, so `send` never
// deadlocks against an unposted receive and `isend` completes instantly —
// matching the M_ASYNC-style semantics the paper relies on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "mp/mailbox.hpp"
#include "mp/message.hpp"

namespace pstap::mp {

class World;

/// Metadata returned by receives.
struct RecvInfo {
  int source = 0;
  int tag = 0;
  std::size_t bytes = 0;
};

/// Handle for a nonblocking operation.
class Request {
 public:
  Request() = default;

  /// Block until the operation completes. Idempotent.
  void wait() {
    if (done_) return;
    if (poll_) poll_(/*block=*/true);
    done_ = true;
  }

  /// Nonblocking completion check.
  bool test() {
    if (done_) return true;
    if (!poll_ || poll_(/*block=*/false)) done_ = true;
    return done_;
  }

 private:
  friend class Comm;
  explicit Request(std::function<bool(bool)> poll) : poll_(std::move(poll)) {}
  static Request completed() { return Request(nullptr); }

  std::function<bool(bool)> poll_;  // returns true when complete
  bool done_ = false;
};

/// A group of ranks with private message context.
///
/// Copyable (copies share the group and context — like an MPI communicator
/// handle). Not thread-safe: each rank owns its Comm objects.
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return static_cast<int>(group_.size()); }

  // ------------------------------------------------------------- raw p2p --

  /// Zero-copy send: takes ownership of the payload handle and deposits it
  /// in the destination mailbox — no byte is copied at any point. This is
  /// the hot-path primitive; pair it with BufferPool::acquire so steady
  /// state does no heap allocation either.
  void send_buffer(int dest, int tag, Buffer payload);

  /// Zero-copy receive: the returned handle shares the sender's storage.
  /// Matching and wildcards as recv_bytes.
  Buffer recv_buffer(int source, int tag, RecvInfo* info = nullptr);

  /// Receive directly into a caller-provided slab (no intermediate vector):
  /// one memcpy from the matched payload into `out`. Sizes must match
  /// exactly.
  template <typename T>
  void recv_into(int source, int tag, std::span<T> out, RecvInfo* info = nullptr) {
    const Buffer buf = recv_buffer(source, tag, info);
    unpack<T>(buf.bytes(), out);
  }

  /// Send a byte payload to `dest` with `tag` (>= 0). Buffered; returns
  /// as soon as the payload has been deposited. The vector is adopted, not
  /// copied (one Rep allocation; prefer send_buffer + a pool on hot paths).
  void send_bytes(int dest, int tag, std::vector<std::byte> payload);

  /// Blocking receive of the first message matching (source, tag);
  /// kAnySource / kAnyTag wildcards allowed. Moves the payload out when it
  /// was vector-backed and uniquely held; copies otherwise.
  std::vector<std::byte> recv_bytes(int source, int tag, RecvInfo* info = nullptr);

  /// Nonblocking probe: payload size of the first matching message, if any.
  std::optional<std::size_t> probe(int source, int tag);

  /// Blocking probe: wait until a matching message arrives, return its size
  /// without removing it.
  std::size_t probe_wait(int source, int tag);

  // ----------------------------------------------------------- typed p2p --

  template <typename T>
  void send(int dest, int tag, std::span<const T> values) {
    send_bytes(dest, tag, pack(values));
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    send(dest, tag, std::span<const T>(&value, 1));
  }

  /// Receive into a caller-sized buffer; sizes must match exactly.
  /// (Alias of recv_into — lands bytes directly, no intermediate vector.)
  template <typename T>
  void recv(int source, int tag, std::span<T> out, RecvInfo* info = nullptr) {
    recv_into<T>(source, tag, out, info);
  }

  /// Receive into a newly allocated vector sized from the message.
  template <typename T>
  std::vector<T> recv_vector(int source, int tag, RecvInfo* info = nullptr) {
    return unpack_vector<T>(recv_bytes(source, tag, info));
  }

  template <typename T>
  T recv_value(int source, int tag, RecvInfo* info = nullptr) {
    T value{};
    recv(source, tag, std::span<T>(&value, 1), info);
    return value;
  }

  // ---------------------------------------------------------- nonblocking --

  /// Buffered nonblocking send — completes immediately (payload copied out).
  template <typename T>
  Request isend(int dest, int tag, std::span<const T> values) {
    send(dest, tag, values);
    return Request::completed();
  }

  /// Nonblocking receive: matching is deferred until wait()/test(). The
  /// output vector is filled upon completion and must outlive the request.
  template <typename T>
  Request irecv(int source, int tag, std::vector<T>* out) {
    return irecv_bytes_impl(source, tag, [out](Buffer payload) {
      *out = unpack_vector<T>(payload.bytes());
    });
  }

  // ----------------------------------------------------------- collectives --
  // All ranks of the communicator must call each collective in the same
  // program order; a per-comm sequence number isolates successive calls.

  /// Synchronize all ranks.
  void barrier();

  /// Broadcast `data` from `root` to everyone (all pass equal-sized spans).
  template <typename T>
  void bcast(std::span<T> data, int root) {
    const int t = next_internal_tag(kOpBcast);
    if (rank_ == root) {
      for (int r = 0; r < size(); ++r) {
        if (r != root) send_internal(r, t, pack(std::span<const T>(data)));
      }
    } else {
      unpack<T>(recv_internal(root, t), data);
    }
  }

  /// Element-wise sum reduction to `root`. `out` is only written at root.
  template <typename T>
  void reduce_sum(std::span<const T> in, std::span<T> out, int root) {
    PSTAP_REQUIRE(rank_ != root || out.size() == in.size(),
                  "reduce_sum buffer size mismatch at root");
    const int t = next_internal_tag(kOpReduce);
    if (rank_ == root) {
      std::copy(in.begin(), in.end(), out.begin());
      for (int r = 0; r < size(); ++r) {
        if (r == root) continue;
        const auto part = unpack_vector<T>(recv_internal(r, t));
        PSTAP_CHECK(part.size() == out.size(), "reduce_sum contribution size mismatch");
        for (std::size_t i = 0; i < out.size(); ++i) out[i] += part[i];
      }
    } else {
      send_internal(root, t, pack(in));
    }
  }

  /// Sum reduction delivered to every rank.
  template <typename T>
  void allreduce_sum(std::span<const T> in, std::span<T> out) {
    PSTAP_REQUIRE(out.size() == in.size(), "allreduce_sum buffer size mismatch");
    reduce_sum(in, out, 0);
    bcast(out, 0);
  }

  /// Concatenate every rank's span at `root` (rank order). Non-root ranks
  /// receive an empty vector. Contributions may differ in length.
  template <typename T>
  std::vector<T> gather(std::span<const T> in, int root) {
    const int t = next_internal_tag(kOpGather);
    if (rank_ == root) {
      std::vector<T> all;
      for (int r = 0; r < size(); ++r) {
        if (r == root) {
          all.insert(all.end(), in.begin(), in.end());
        } else {
          const auto part = unpack_vector<T>(recv_internal(r, t));
          all.insert(all.end(), part.begin(), part.end());
        }
      }
      return all;
    }
    send_internal(root, t, pack(in));
    return {};
  }

  /// Gather delivered to every rank. Requires equal contribution sizes if
  /// callers index the result by rank (not enforced).
  template <typename T>
  std::vector<T> allgather(std::span<const T> in) {
    auto all = gather(in, 0);
    std::uint64_t n = all.size();
    bcast(std::span<std::uint64_t>(&n, 1), 0);
    all.resize(n);
    bcast(std::span<T>(all), 0);
    return all;
  }

  /// Scatter equal-sized chunks from root: chunk r goes to rank r.
  /// At root, `in` holds size()*chunk elements; everyone receives `out`
  /// of chunk elements.
  template <typename T>
  void scatter(std::span<const T> in, std::span<T> out, int root) {
    const int t = next_internal_tag(kOpScatter);
    const std::size_t chunk = out.size();
    if (rank_ == root) {
      PSTAP_REQUIRE(in.size() == chunk * static_cast<std::size_t>(size()),
                    "scatter input must be size()*chunk elements at root");
      for (int r = 0; r < size(); ++r) {
        const auto part = in.subspan(r * chunk, chunk);
        if (r == root) {
          std::copy(part.begin(), part.end(), out.begin());
        } else {
          send_internal(r, t, pack(part));
        }
      }
    } else {
      unpack<T>(recv_internal(root, t), out);
    }
  }

  // ---------------------------------------------------------------- split --

  /// Partition this communicator: ranks passing the same `color` form a new
  /// communicator, ordered by (key, parent rank). Collective. `color` must
  /// be >= 0 (there is no MPI_UNDEFINED; pass each rank a real color).
  Comm split(int color, int key);

  /// Build a sub-communicator from an explicit list of parent ranks.
  /// Every rank of the parent must call with the same list in the same
  /// program order (no messages are exchanged, but the call sequence keeps
  /// context derivation aligned). Listed ranks are ordered as listed;
  /// unlisted ranks receive a non-member handle (is_member() == false).
  Comm subgroup(std::span<const int> parent_ranks);

  /// True if this rank belongs to the communicator (subgroup() returns
  /// non-member handles to ranks outside the list).
  bool is_member() const noexcept { return rank_ >= 0; }

 private:
  friend class World;
  Comm(World* world, std::vector<int> group, int rank, std::uint64_t context)
      : world_(world),
        group_(std::move(group)),
        rank_(rank),
        context_(context),
        shared_(std::make_shared<SharedState>()) {}

  enum InternalOp : int {
    kOpBarrierArrive = 0,
    kOpBarrierRelease = 1,
    kOpBcast = 2,
    kOpReduce = 3,
    kOpGather = 4,
    kOpScatter = 5,
    kOpSplit = 6,
  };

  /// Copies of a Comm held by the same rank share this state so collective
  /// sequence numbers stay aligned across ranks.
  struct SharedState {
    std::uint32_t collective_seq = 0;
    std::uint32_t derive_seq = 0;  // split()/subgroup() call counter
  };

  /// Internal (negative) tags encode a per-comm sequence number so that
  /// back-to-back collectives cannot cross-match. Internal messages also
  /// travel on a shadow context (context_ | 1) so user wildcard receives
  /// can never steal them.
  int next_internal_tag(InternalOp op) {
    const std::uint32_t seq = shared_->collective_seq++;
    return -2 - static_cast<int>(((seq & 0xFFFFFFu) << 3) | static_cast<std::uint32_t>(op));
  }

  void send_internal(int dest, int tag, std::vector<std::byte> payload);
  std::vector<std::byte> recv_internal(int source, int tag);
  Request irecv_bytes_impl(int source, int tag,
                           std::function<void(Buffer)> sink);
  Mailbox& my_mailbox();

  World* world_ = nullptr;
  std::vector<int> group_;  // comm rank -> world rank
  int rank_ = 0;            // -1 for non-member handles
  std::uint64_t context_ = 0;
  std::shared_ptr<SharedState> shared_;
};

}  // namespace pstap::mp
