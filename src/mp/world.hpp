// World: owns the mailboxes and threads backing an mp "machine".
//
// Each rank of the paper's parallel machine becomes one thread; World
// spawns them, hands each a Comm covering all ranks (context 0), and joins
// them, rethrowing the first rank exception so tests fail loudly.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "mp/comm.hpp"
#include "mp/mailbox.hpp"

namespace pstap::mp {

/// Execution placement for a World's rank threads.
///
/// Pinned mode fixes each rank to one hardware CPU so the OS scheduler
/// cannot migrate ranks mid-CPI (migrations cost cold caches and — on
/// multi-socket boxes — remote-memory traffic on every pool buffer the rank
/// first-touched elsewhere). Rank r is pinned to cpu_set[r % cpu_set.size()].
/// Placement is best-effort by design: a cpu that cannot be pinned (bad id,
/// restrictive cgroup mask, non-Linux host) logs one warning and leaves that
/// rank floating rather than failing the run, and more ranks than cpus is
/// legal oversubscription — it logs once and wraps round-robin. The applied
/// state is observable: gauge "mp.pinned_ranks" counts ranks pinned in the
/// latest run(), counter "mp.pin.oversubscribed" counts oversubscribed
/// runs, counter "mp.pin.failed" counts failed pin attempts.
struct WorldOptions {
  /// Pin each rank thread to a hardware CPU.
  bool pin_threads = false;
  /// CPUs to pin to, in rank order. Empty = all cpus [0, hardware
  /// concurrency) — the natural "one rank per core" layout.
  std::vector<int> cpu_set;
  /// Ask for NUMA-interleaved rank memory. There is no NUMA allocation API
  /// in the build (no libnuma dependency), so this is satisfied by the
  /// first-touch policy already in place: BufferPool::acquire hands out
  /// uninitialized pages, so each rank's buffers fault into the node of the
  /// cpu the rank is pinned to. The flag exists so callers can state intent;
  /// it logs the fallback once when set.
  bool numa_interleave = false;
};

class World {
 public:
  /// Create a world of `size` ranks (>= 1). No threads run until run().
  explicit World(int size, WorldOptions options = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }

  /// Execute `fn(comm)` on every rank, each in its own thread; blocks until
  /// all ranks return. If ranks throw, the first exception (by rank order)
  /// is rethrown here after all threads have been joined.
  ///
  /// May be called repeatedly; mailboxes persist across calls (a message
  /// sent in one run() could be received in the next — avoid relying on it).
  void run(const std::function<void(Comm&)>& fn);

  /// Mailbox of a world rank (used by Comm).
  Mailbox& mailbox(int world_rank);

  /// Construct a world-spanning Comm (context 0) for `world_rank` without
  /// going through run() — the supervisor uses this to hand a respawned
  /// rank a communicator equivalent to the one its predecessor held.
  Comm make_comm(int world_rank);

  /// Close every mailbox: all ranks blocked in recv/probe across the world
  /// wake with MailboxClosed. The supervisor's abort path — turns a
  /// would-be hang into a clean world-wide unwind.
  void close_all_mailboxes();

  /// Reopen every mailbox (e.g. between runs in one World).
  void reopen_all_mailboxes();

  const WorldOptions& options() const noexcept { return options_; }

  /// Ranks successfully pinned by the most recent run() (0 when pinning is
  /// off). Mirrors the "mp.pinned_ranks" gauge for direct inspection.
  int pinned_ranks() const noexcept { return pinned_ranks_; }

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  WorldOptions options_;
  std::vector<int> resolved_cpus_;  // cpu_set with the empty default filled in
  int pinned_ranks_ = 0;
};

}  // namespace pstap::mp
