// World: owns the mailboxes and threads backing an mp "machine".
//
// Each rank of the paper's parallel machine becomes one thread; World
// spawns them, hands each a Comm covering all ranks (context 0), and joins
// them, rethrowing the first rank exception so tests fail loudly.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "mp/comm.hpp"
#include "mp/mailbox.hpp"

namespace pstap::mp {

class World {
 public:
  /// Create a world of `size` ranks (>= 1). No threads run until run().
  explicit World(int size);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept { return static_cast<int>(mailboxes_.size()); }

  /// Execute `fn(comm)` on every rank, each in its own thread; blocks until
  /// all ranks return. If ranks throw, the first exception (by rank order)
  /// is rethrown here after all threads have been joined.
  ///
  /// May be called repeatedly; mailboxes persist across calls (a message
  /// sent in one run() could be received in the next — avoid relying on it).
  void run(const std::function<void(Comm&)>& fn);

  /// Mailbox of a world rank (used by Comm).
  Mailbox& mailbox(int world_rank);

  /// Construct a world-spanning Comm (context 0) for `world_rank` without
  /// going through run() — the supervisor uses this to hand a respawned
  /// rank a communicator equivalent to the one its predecessor held.
  Comm make_comm(int world_rank);

  /// Close every mailbox: all ranks blocked in recv/probe across the world
  /// wake with MailboxClosed. The supervisor's abort path — turns a
  /// would-be hang into a clean world-wide unwind.
  void close_all_mailboxes();

  /// Reopen every mailbox (e.g. between runs in one World).
  void reopen_all_mailboxes();

 private:
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
};

}  // namespace pstap::mp
