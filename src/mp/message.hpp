// Message envelope and typed payload (de)serialization for the mp runtime.
//
// The original STAP code used Intel NX / IBM MPL message passing; pstap's
// `mp` library provides the same programming model with threads as ranks.
// Payloads are byte buffers; the typed helpers below pack/unpack spans of
// trivially copyable types, which covers every message the pipeline sends
// (complex samples, weight matrices, detection reports, control words).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace pstap::mp {

/// Matches any source rank in recv/probe.
inline constexpr int kAnySource = -1;
/// Matches any tag in recv/probe.
inline constexpr int kAnyTag = -1;

/// Refcounted payload handle (see common/buffer.hpp): pooled buffers give
/// the zero-copy/zero-allocation fast path; adopted vectors cover the
/// legacy pack()/send_bytes path.
using Buffer = pstap::Buffer;
using BufferPool = pstap::BufferPool;

/// Wire envelope: routing metadata plus a shared payload handle. Moving an
/// envelope moves the handle — the bytes themselves never move or copy
/// between send and receive.
struct Envelope {
  std::uint64_t context = 0;  ///< communicator context id
  int source = 0;             ///< sender rank within that communicator
  int tag = 0;                ///< user tag (>= 0)
  Buffer payload;
};

/// Serialize a span of trivially copyable values into bytes.
template <typename T>
std::vector<std::byte> pack(std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::byte> bytes(values.size_bytes());
  if (!bytes.empty()) std::memcpy(bytes.data(), values.data(), bytes.size());
  return bytes;
}

/// Deserialize bytes into `out`. The byte count must match exactly.
template <typename T>
void unpack(std::span<const std::byte> bytes, std::span<T> out) {
  static_assert(std::is_trivially_copyable_v<T>);
  PSTAP_REQUIRE(bytes.size() == out.size_bytes(),
                "message size does not match receive buffer");
  if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
}

/// Deserialize bytes into a freshly sized vector<T>.
template <typename T>
std::vector<T> unpack_vector(std::span<const std::byte> bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  PSTAP_REQUIRE(bytes.size() % sizeof(T) == 0,
                "message size is not a multiple of the element size");
  std::vector<T> out(bytes.size() / sizeof(T));
  if (!bytes.empty()) std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

}  // namespace pstap::mp
