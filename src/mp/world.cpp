#include "mp/world.hpp"

#include <thread>

#include "common/error.hpp"

namespace pstap::mp {

World::World(int size) {
  PSTAP_REQUIRE(size >= 1, "World size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());
}

World::~World() = default;

Mailbox& World::mailbox(int world_rank) {
  PSTAP_REQUIRE(world_rank >= 0 && world_rank < size(), "world rank out of range");
  return *mailboxes_[static_cast<std::size_t>(world_rank)];
}

Comm World::make_comm(int world_rank) {
  PSTAP_REQUIRE(world_rank >= 0 && world_rank < size(), "world rank out of range");
  const int n = size();
  std::vector<int> identity(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;
  return Comm(this, std::move(identity), world_rank, /*context=*/0);
}

void World::close_all_mailboxes() {
  for (auto& mailbox : mailboxes_) mailbox->close();
}

void World::reopen_all_mailboxes() {
  for (auto& mailbox : mailboxes_) mailbox->reopen();
}

void World::run(const std::function<void(Comm&)>& fn) {
  const int n = size();
  std::vector<int> identity(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, &fn, &identity, &errors, r] {
      try {
        Comm comm(this, identity, r, /*context=*/0);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace pstap::mp
