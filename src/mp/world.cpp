#include "mp/world.hpp"

#include <atomic>
#include <cstdio>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/error.hpp"
#include "common/simd.hpp"
#include "obs/metrics.hpp"

namespace pstap::mp {

namespace {

// Pin the calling thread to one cpu. Best-effort: returns false (after a
// one-line warning) instead of failing the rank.
bool pin_self(int cpu, int rank) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (cpu < 0 || cpu >= CPU_SETSIZE) {
    std::fprintf(stderr, "pstap: rank %d cpu %d out of range; not pinning\n",
                 rank, cpu);
    return false;
  }
  CPU_SET(cpu, &set);
  const int rc = pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
  if (rc != 0) {
    std::fprintf(stderr,
                 "pstap: rank %d failed to pin to cpu %d (errno %d); "
                 "running unpinned\n",
                 rank, cpu, rc);
    return false;
  }
  return true;
#else
  std::fprintf(stderr,
               "pstap: thread pinning not supported on this platform; "
               "rank %d (cpu %d) running unpinned\n",
               rank, cpu);
  return false;
#endif
}

}  // namespace

World::World(int size, WorldOptions options) : options_(std::move(options)) {
  PSTAP_REQUIRE(size >= 1, "World size must be >= 1");
  mailboxes_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) mailboxes_.push_back(std::make_unique<Mailbox>());

  if (options_.pin_threads) {
    resolved_cpus_ = options_.cpu_set;
    if (resolved_cpus_.empty()) {
      const unsigned hc = std::thread::hardware_concurrency();
      for (unsigned c = 0; c < hc; ++c) resolved_cpus_.push_back(static_cast<int>(c));
      if (resolved_cpus_.empty()) resolved_cpus_.push_back(0);
    }
    if (static_cast<std::size_t>(size) > resolved_cpus_.size()) {
      std::fprintf(stderr,
                   "pstap: %d ranks over %zu cpus — oversubscribed; pinning "
                   "round-robin\n",
                   size, resolved_cpus_.size());
      obs::Registry::global().counter("mp.pin.oversubscribed").add();
    }
  }
  if (options_.numa_interleave) {
    std::fprintf(stderr,
                 "pstap: numa_interleave: no NUMA allocation API in this "
                 "build; relying on first-touch placement of pool buffers\n");
  }
}

World::~World() = default;

Mailbox& World::mailbox(int world_rank) {
  PSTAP_REQUIRE(world_rank >= 0 && world_rank < size(), "world rank out of range");
  return *mailboxes_[static_cast<std::size_t>(world_rank)];
}

Comm World::make_comm(int world_rank) {
  PSTAP_REQUIRE(world_rank >= 0 && world_rank < size(), "world rank out of range");
  const int n = size();
  std::vector<int> identity(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;
  return Comm(this, std::move(identity), world_rank, /*context=*/0);
}

void World::close_all_mailboxes() {
  for (auto& mailbox : mailboxes_) mailbox->close();
}

void World::reopen_all_mailboxes() {
  for (auto& mailbox : mailboxes_) mailbox->reopen();
}

void World::run(const std::function<void(Comm&)>& fn) {
  const int n = size();
  std::vector<int> identity(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) identity[static_cast<std::size_t>(i)] = i;

  std::atomic<int> pinned{0};
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    threads.emplace_back([this, &fn, &identity, &errors, &pinned, r] {
      // Per-thread FP environment first (FTZ/DAZ), then placement, so the
      // rank's first-touch allocations already happen on its final cpu.
      simd::init_thread();
      if (options_.pin_threads && !resolved_cpus_.empty()) {
        const int cpu = resolved_cpus_[static_cast<std::size_t>(r) %
                                       resolved_cpus_.size()];
        if (pin_self(cpu, r)) {
          pinned.fetch_add(1, std::memory_order_relaxed);
        } else {
          obs::Registry::global().counter("mp.pin.failed").add();
        }
      }
      try {
        Comm comm(this, identity, r, /*context=*/0);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  pinned_ranks_ = pinned.load(std::memory_order_relaxed);
  obs::Registry::global().gauge("mp.pinned_ranks").set(pinned_ranks_);
  for (const auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace pstap::mp
