// Per-rank mailbox: an unbounded MPSC queue with (source, tag, context)
// matching. Internal to the mp runtime.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "common/error.hpp"
#include "mp/message.hpp"

namespace pstap::mp {

/// Raised by blocking receives/probes on a closed mailbox. A distinct type
/// (not a timeout, not an IoError) so supervisor teardown is unambiguous:
/// ranks parked in recv during an abort unwind with this instead of
/// hanging, and no retry layer mistakes it for a transient I/O failure.
class MailboxClosed : public RuntimeError {
 public:
  using RuntimeError::RuntimeError;
};

/// One mailbox per world rank. Senders push envelopes; the owning rank
/// removes the first envelope matching (context, source-or-any, tag-or-any).
/// Matching preserves per-(source,tag) FIFO order, which is the ordering
/// guarantee message-passing codes rely on.
class Mailbox {
 public:
  /// Deposit an envelope (called by any sender thread).
  void push(Envelope env) {
    {
      std::lock_guard lock(mu_);
      queue_.push_back(std::move(env));
    }
    cv_.notify_all();
  }

  /// Block until a matching envelope is available and remove it. Throws
  /// MailboxClosed if the mailbox is (or becomes) closed and nothing
  /// matches — queued envelopes still drain after close().
  Envelope pop_matching(std::uint64_t context, int source, int tag) {
    std::unique_lock lock(mu_);
    for (;;) {
      if (auto env = try_take(context, source, tag)) return std::move(*env);
      if (closed_) throw MailboxClosed("mailbox closed while receiving");
      cv_.wait(lock);
    }
  }

  /// Non-blocking variant; std::nullopt if nothing matches now.
  std::optional<Envelope> try_pop_matching(std::uint64_t context, int source, int tag) {
    std::lock_guard lock(mu_);
    return try_take(context, source, tag);
  }

  /// Probe without removing: returns the payload size of the first matching
  /// envelope, or std::nullopt.
  std::optional<std::size_t> probe(std::uint64_t context, int source, int tag) {
    std::lock_guard lock(mu_);
    return probe_locked(context, source, tag);
  }

  /// Blocking probe: wait until a matching envelope arrives; returns its
  /// payload size without removing it. Throws MailboxClosed like
  /// pop_matching when closed with no match available.
  std::size_t probe_wait(std::uint64_t context, int source, int tag) {
    std::unique_lock lock(mu_);
    for (;;) {
      if (auto n = probe_locked(context, source, tag)) return *n;
      if (closed_) throw MailboxClosed("mailbox closed while probing");
      cv_.wait(lock);
    }
  }

  /// Close the mailbox: every receiver blocked in pop_matching/probe_wait
  /// wakes and throws MailboxClosed (after draining any envelope that
  /// already matches). Pushes remain accepted and are silently retained —
  /// a sender racing a shutdown must not crash.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Reverse close(); subsequent blocking receives behave normally again.
  void reopen() {
    std::lock_guard lock(mu_);
    closed_ = false;
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  /// Number of queued envelopes (all contexts); used by tests/diagnostics.
  std::size_t depth() const {
    std::lock_guard lock(mu_);
    return queue_.size();
  }

 private:
  static bool matches(const Envelope& env, std::uint64_t context, int source, int tag) {
    return env.context == context &&
           (source == kAnySource || env.source == source) &&
           (tag == kAnyTag || env.tag == tag);
  }

  std::optional<std::size_t> probe_locked(std::uint64_t context, int source, int tag) const {
    for (const Envelope& env : queue_) {
      if (matches(env, context, source, tag)) return env.payload.size();
    }
    return std::nullopt;
  }

  std::optional<Envelope> try_take(std::uint64_t context, int source, int tag) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, context, source, tag)) {
        Envelope env = std::move(*it);
        queue_.erase(it);
        return env;
      }
    }
    return std::nullopt;
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Envelope> queue_;
  bool closed_ = false;
};

}  // namespace pstap::mp
