// Lightweight in-memory checkpointing for pipeline recovery.
//
// A CheckpointRing logs, per rank, the task-boundary messages the rank
// consumed for CPIs that are still in flight, plus one opaque state
// snapshot per completed CPI (only stateful tasks — beamform's weight set —
// use it). When the supervisor respawns a dead rank, the replacement
// re-executes its in-flight CPIs: every receive first consults the ring and
// replays the logged payload if present, falling back to the (persistent)
// mailbox otherwise. Completing a CPI evicts its messages, so steady-state
// memory is one CPI's worth of boundary traffic per rank — that is the
// checkpoint cost, measured by bytes_held()/peak_bytes().
//
// Messages are keyed by (consumption CPI, stream, source). The consumption
// CPI is the receiver's CPI, which for temporally-aligned edges (weights
// computed at CPI k-1, consumed by beamform at k) differs from the sender's
// tag CPI — keying by consumption keeps eviction safe: nothing a future
// replay could need is dropped before the receiver completes that CPI.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/buffer.hpp"
#include "common/error.hpp"

namespace pstap::ckpt {

class CheckpointRing {
 public:
  /// `depth` bounds how many distinct in-flight CPIs the ring may hold
  /// messages for; exceeding it means a complete() call went missing and
  /// fails loudly rather than growing without bound.
  explicit CheckpointRing(std::size_t depth = 4) : depth_(depth) {
    PSTAP_REQUIRE(depth_ >= 1, "checkpoint: ring depth must be >= 1");
  }

  CheckpointRing(const CheckpointRing&) = delete;
  CheckpointRing& operator=(const CheckpointRing&) = delete;

  /// Log a message consumed at `cpi` on `stream` from comm rank `source`.
  /// The ring shares the refcounted payload — no byte is copied; the
  /// storage stays alive until complete() evicts the entry. Recording the
  /// same key twice keeps the first copy (a replayed receive re-records
  /// idempotently).
  void record_message(int cpi, int stream, int source, Buffer payload) {
    std::lock_guard lock(mu_);
    if (find_locked(cpi, stream, source) != nullptr) return;
    check_depth_locked(cpi);
    bytes_held_ += payload.size();
    peak_bytes_ = std::max(peak_bytes_, bytes_held_);
    ++recorded_;
    messages_.push_back(Entry{cpi, stream, source, std::move(payload)});
  }

  /// Byte-vector convenience (tests, legacy callers): copies once into a
  /// refcounted buffer.
  void record_message(int cpi, int stream, int source,
                      const std::vector<std::byte>& bytes) {
    record_message(cpi, stream, source, Buffer::copy_of(bytes));
  }

  /// Replay lookup: a shared handle to the logged payload for (cpi,
  /// stream, source); `false` when absent. Counts a replay on hit — fresh
  /// executions never hit (their entries were either never recorded or
  /// already evicted by complete()).
  bool replay_message(int cpi, int stream, int source, Buffer& out) {
    std::lock_guard lock(mu_);
    const Entry* entry = find_locked(cpi, stream, source);
    if (entry == nullptr) return false;
    out = entry->payload;
    ++replayed_;
    return true;
  }

  /// Byte-vector convenience: copies the payload out.
  bool replay_message(int cpi, int stream, int source,
                      std::vector<std::byte>& out) {
    Buffer buf;
    if (!replay_message(cpi, stream, source, buf)) return false;
    out.assign(buf.data(), buf.data() + buf.size());
    return true;
  }

  /// Save the task's opaque state as of *completing* `cpi` (latest kept).
  void save_state(int cpi, std::vector<std::byte> state) {
    std::lock_guard lock(mu_);
    state_cpi_ = cpi;
    state_ = std::move(state);
  }

  /// CPI of the latest snapshot, -1 if none has been saved.
  int state_cpi() const {
    std::lock_guard lock(mu_);
    return state_cpi_;
  }

  std::vector<std::byte> state() const {
    std::lock_guard lock(mu_);
    return state_;
  }

  /// Mark `cpi` complete: advances the watermark and evicts every message
  /// consumed at or before it. A respawn never re-executes a completed
  /// CPI, so those payloads are dead.
  void complete(int cpi) {
    std::lock_guard lock(mu_);
    watermark_ = std::max(watermark_, cpi);
    for (auto it = messages_.begin(); it != messages_.end();) {
      if (it->cpi <= watermark_) {
        bytes_held_ -= it->payload.size();
        it = messages_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Last completed CPI (-1 before any complete()). A respawned rank
  /// resumes at watermark() + 1.
  int watermark() const {
    std::lock_guard lock(mu_);
    return watermark_;
  }

  std::size_t bytes_held() const {
    std::lock_guard lock(mu_);
    return bytes_held_;
  }

  /// High-water mark of bytes_held() — the checkpoint memory cost.
  std::size_t peak_bytes() const {
    std::lock_guard lock(mu_);
    return peak_bytes_;
  }

  std::uint64_t messages_recorded() const {
    std::lock_guard lock(mu_);
    return recorded_;
  }

  std::uint64_t messages_replayed() const {
    std::lock_guard lock(mu_);
    return replayed_;
  }

 private:
  struct Entry {
    int cpi;
    int stream;
    int source;
    Buffer payload;  ///< shared view of the consumed message (no copy)
  };

  const Entry* find_locked(int cpi, int stream, int source) const {
    for (const Entry& e : messages_) {
      if (e.cpi == cpi && e.stream == stream && e.source == source) return &e;
    }
    return nullptr;
  }

  void check_depth_locked(int cpi) const {
    // Count distinct CPIs that would be held; must stay within depth_.
    std::vector<int> cpis{cpi};
    for (const Entry& e : messages_) {
      bool seen = false;
      for (int c : cpis) seen = seen || c == e.cpi;
      if (!seen) cpis.push_back(e.cpi);
    }
    PSTAP_CHECK(cpis.size() <= depth_,
                "checkpoint: ring depth exceeded (missing complete()?)");
  }

  std::size_t depth_;
  mutable std::mutex mu_;
  std::deque<Entry> messages_;
  std::vector<std::byte> state_;
  int state_cpi_ = -1;
  int watermark_ = -1;
  std::size_t bytes_held_ = 0;
  std::size_t peak_bytes_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t replayed_ = 0;
};

}  // namespace pstap::ckpt
