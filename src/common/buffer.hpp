// Pooled, refcounted byte buffers for the message-passing hot path.
//
// The steady-state CPI loop sends the same-shaped messages every CPI, so
// the transport can run allocation-free: each rank owns a BufferPool, and
// a Buffer acquired from it returns to the pool's free list when the last
// handle drops — whichever thread that happens on. Handles are cheap
// (intrusive refcount, no control-block allocation), so a payload can be
// held simultaneously by a mailbox envelope, a receiver, and a checkpoint
// ring without any byte ever being copied.
//
// Two storage modes share one handle type:
//   * pooled  — cache-line-aligned storage recycled through a BufferPool
//     (the zero-allocation fast path);
//   * adopted — wraps a std::vector<std::byte> the caller already built
//     (the legacy pack()/send_bytes path; keeps move semantics, one Rep
//     allocation per message).
//
// Ownership rule: a BufferPool must outlive every Buffer acquired from it
// (the release path walks a raw pool pointer). In the pipeline the pools
// are declared before the World/Supervisor, so mailbox-retained and
// checkpoint-retained payloads die first.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"

namespace pstap {

class BufferPool;

namespace detail {

/// Shared representation behind Buffer handles. Allocated by BufferPool
/// (recycled) or by Buffer::adopt/copy_of (deleted on release).
struct BufferRep {
  std::atomic<std::uint32_t> refs{1};
  std::size_t size = 0;          ///< live payload bytes
  AlignedBuffer<std::byte> mem;  ///< pooled storage (capacity = mem.size())
  std::vector<std::byte> vec;    ///< adopted storage (when mem is empty)
  BufferPool* pool = nullptr;    ///< recycle here; nullptr => delete

  std::byte* data() noexcept { return mem.empty() ? vec.data() : mem.data(); }
  const std::byte* data() const noexcept {
    return mem.empty() ? vec.data() : mem.data();
  }
};

void release_rep(BufferRep* rep) noexcept;

}  // namespace detail

/// Refcounted handle to a byte payload. Copying shares the bytes; the
/// storage is freed (or returned to its pool) when the last handle drops.
/// Handles are safe to pass between threads; concurrent mutation of the
/// *bytes* is the caller's problem (the pipeline's payloads are write-once).
class Buffer {
 public:
  Buffer() = default;
  ~Buffer() { reset(); }

  Buffer(const Buffer& other) noexcept : rep_(other.rep_) {
    if (rep_ != nullptr) rep_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  Buffer(Buffer&& other) noexcept : rep_(std::exchange(other.rep_, nullptr)) {}
  Buffer& operator=(const Buffer& other) noexcept {
    Buffer tmp(other);
    std::swap(rep_, tmp.rep_);
    return *this;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    std::swap(rep_, other.rep_);
    return *this;
  }

  /// Wrap an existing vector without copying its bytes.
  static Buffer adopt(std::vector<std::byte> bytes) {
    auto* rep = new detail::BufferRep;
    rep->size = bytes.size();
    rep->vec = std::move(bytes);
    return Buffer(rep);
  }

  /// Freshly allocated copy of `bytes` (not pooled).
  static Buffer copy_of(std::span<const std::byte> bytes) {
    return adopt(std::vector<std::byte>(bytes.begin(), bytes.end()));
  }

  explicit operator bool() const noexcept { return rep_ != nullptr; }
  std::size_t size() const noexcept { return rep_ == nullptr ? 0 : rep_->size; }
  bool empty() const noexcept { return size() == 0; }

  std::byte* data() noexcept { return rep_ == nullptr ? nullptr : rep_->data(); }
  const std::byte* data() const noexcept {
    return rep_ == nullptr ? nullptr : rep_->data();
  }

  std::span<std::byte> bytes() noexcept { return {data(), size()}; }
  std::span<const std::byte> bytes() const noexcept { return {data(), size()}; }

  /// Typed view of the payload; the byte count must divide evenly.
  template <typename T>
  std::span<T> as_span() {
    static_assert(std::is_trivially_copyable_v<T>);
    PSTAP_REQUIRE(size() % sizeof(T) == 0,
                  "buffer size is not a multiple of the element size");
    return {reinterpret_cast<T*>(data()), size() / sizeof(T)};
  }
  template <typename T>
  std::span<const T> as_span() const {
    static_assert(std::is_trivially_copyable_v<T>);
    PSTAP_REQUIRE(size() % sizeof(T) == 0,
                  "buffer size is not a multiple of the element size");
    return {reinterpret_cast<const T*>(data()), size() / sizeof(T)};
  }

  /// Extract the payload as a vector. Zero-copy when this is the only
  /// handle to an adopted vector; otherwise copies.
  std::vector<std::byte> to_vector() && {
    if (rep_ == nullptr) return {};
    if (rep_->mem.empty() && rep_->refs.load(std::memory_order_acquire) == 1) {
      std::vector<std::byte> out = std::move(rep_->vec);
      out.resize(rep_->size);
      reset();
      return out;
    }
    std::vector<std::byte> out(data(), data() + size());
    reset();
    return out;
  }

  /// Drop this handle (recycles/frees the storage if it was the last one).
  void reset() noexcept {
    if (rep_ != nullptr) detail::release_rep(std::exchange(rep_, nullptr));
  }

 private:
  friend class BufferPool;
  explicit Buffer(detail::BufferRep* rep) noexcept : rep_(rep) {}

  detail::BufferRep* rep_ = nullptr;
};

/// Thread-safe free list of aligned payload buffers. acquire() reuses any
/// free buffer whose capacity fits (first fit); the steady-state pipeline
/// re-acquires the same few shapes every CPI, so after one warm-up CPI the
/// pool performs no heap allocation at all.
class BufferPool {
 public:
  explicit BufferPool(std::size_t alignment = kDefaultAlignment)
      : alignment_(alignment) {}

  /// Every Buffer acquired from this pool must already be dead.
  ~BufferPool() {
    for (detail::BufferRep* rep : free_) delete rep;
  }

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer of exactly `size` bytes (uninitialized), aligned to the
  /// pool's alignment. Reuses a free buffer when one is large enough.
  Buffer acquire(std::size_t size) {
    {
      std::lock_guard lock(mu_);
      for (std::size_t i = 0; i < free_.size(); ++i) {
        if (free_[i]->mem.size() >= size) {
          detail::BufferRep* rep = free_[i];
          free_[i] = free_.back();
          free_.pop_back();
          rep->refs.store(1, std::memory_order_relaxed);
          rep->size = size;
          ++reuses_;
          return Buffer(rep);
        }
      }
      ++allocations_;
    }
    auto* rep = new detail::BufferRep;
    rep->size = size;
    rep->mem = AlignedBuffer<std::byte>(size, alignment_);
    rep->pool = this;
    outstanding_.fetch_add(1, std::memory_order_relaxed);
    return Buffer(rep);
  }

  /// Typed acquire: `count` elements of T.
  template <typename T>
  Buffer acquire_elems(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    return acquire(count * sizeof(T));
  }

  /// Pool-allocated buffers currently alive (free or held).
  std::size_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }
  /// Buffers sitting in the free list right now.
  std::size_t free_count() const {
    std::lock_guard lock(mu_);
    return free_.size();
  }
  /// Fresh heap allocations performed by acquire() (the number that must
  /// stop growing once the pipeline reaches steady state).
  std::uint64_t allocations() const {
    std::lock_guard lock(mu_);
    return allocations_;
  }
  /// acquire() calls served from the free list.
  std::uint64_t reuses() const {
    std::lock_guard lock(mu_);
    return reuses_;
  }

 private:
  friend void detail::release_rep(detail::BufferRep*) noexcept;

  void recycle(detail::BufferRep* rep) noexcept {
    rep->vec.clear();
    std::lock_guard lock(mu_);
    free_.push_back(rep);
  }

  mutable std::mutex mu_;
  std::vector<detail::BufferRep*> free_;
  std::size_t alignment_;
  std::uint64_t allocations_ = 0;
  std::uint64_t reuses_ = 0;
  std::atomic<std::size_t> outstanding_{0};
};

namespace detail {

inline void release_rep(BufferRep* rep) noexcept {
  if (rep->refs.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  if (rep->pool != nullptr) {
    rep->pool->recycle(rep);
  } else {
    delete rep;
  }
}

}  // namespace detail

}  // namespace pstap
