// Deterministic, splittable random number generation.
//
// All stochastic pieces of pstap (scene generation, synthetic workloads,
// property tests) draw from this generator so that every test, example and
// benchmark is bit-reproducible across runs and platforms. std::mt19937 is
// avoided because the distributions layered on top of it are not specified
// identically across standard libraries.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

#include "common/types.hpp"

namespace pstap {

/// SplitMix64 PRNG: tiny state, passes BigCrush, trivially splittable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid bias.
  std::uint64_t uniform_index(std::uint64_t n) {
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  /// Standard normal deviate (Box–Muller; uses both outputs).
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    const double ang = 2.0 * std::numbers::pi * u2;
    spare_ = mag * std::sin(ang);
    have_spare_ = true;
    return mag * std::cos(ang);
  }

  /// Circularly-symmetric complex Gaussian with E[|z|^2] = power.
  cfloat complex_normal(double power = 1.0) {
    const double s = std::sqrt(power / 2.0);
    return {static_cast<float>(s * normal()), static_cast<float>(s * normal())};
  }

  /// Derive an independent child stream (for per-rank / per-channel use).
  Rng split() {
    // Skip the child far away in a distinct stream by hashing the state.
    return Rng(next_u64() ^ 0x5851f42d4c957f2dULL);
  }

 private:
  std::uint64_t state_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace pstap
