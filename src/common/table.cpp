#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace pstap {

std::string TableCell::render() const {
  if (std::holds_alternative<std::string>(value)) {
    return std::get<std::string>(value);
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << std::get<double>(value);
  return os.str();
}

namespace {
void print_rule(std::ostream& os, const std::vector<std::size_t>& widths) {
  os << '+';
  for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
  os << '\n';
}

void print_row(std::ostream& os, const std::vector<std::string>& cells,
               const std::vector<std::size_t>& widths) {
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    const std::string text = c < cells.size() ? cells[c] : std::string{};
    os << ' ' << std::setw(static_cast<int>(widths[c])) << std::right << text << " |";
  }
  os << '\n';
}
}  // namespace

void TablePrinter::print(std::ostream& os) const {
  // Render every cell up front so widths can be computed.
  std::vector<std::string> header_text;
  header_text.reserve(header_.size());
  for (const auto& c : header_) header_text.push_back(c.render());

  std::vector<std::vector<std::string>> row_text;
  row_text.reserve(rows_.size());
  std::size_t ncols = header_text.size();
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& c : row) cells.push_back(c.render());
    ncols = std::max(ncols, cells.size());
    row_text.push_back(std::move(cells));
  }

  std::vector<std::size_t> widths(ncols, 1);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      widths[c] = std::max(widths[c], cells[c].size());
  };
  widen(header_text);
  for (const auto& r : row_text) widen(r);

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  print_rule(os, widths);
  if (!header_text.empty()) {
    print_row(os, header_text, widths);
    print_rule(os, widths);
  }
  for (std::size_t i = 0; i < row_text.size(); ++i) {
    if (std::find(separators_.begin(), separators_.end(), i) != separators_.end()) {
      print_rule(os, widths);
    }
    print_row(os, row_text[i], widths);
  }
  print_rule(os, widths);
}

std::string TablePrinter::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

}  // namespace pstap
