#include "common/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/aligned_buffer.hpp"
#include "obs/metrics.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define PSTAP_SIMD_X86 1
#include <immintrin.h>
#else
#define PSTAP_SIMD_X86 0
#endif

namespace pstap::simd {

// ------------------------------------------------------------- scalar ----
// Reference semantics. Every vector backend mirrors these expression trees
// exactly (modulo FMA contraction and reduction order where documented).
namespace scalar_impl {

void butterfly(float* ar, float* ai, float* br, float* bi, float wr, float wi,
               std::size_t n) {
  for (std::size_t l = 0; l < n; ++l) {
    const float tr = wr * br[l] - wi * bi[l];
    const float ti = wr * bi[l] + wi * br[l];
    br[l] = ar[l] - tr;
    bi[l] = ai[l] - ti;
    ar[l] += tr;
    ai[l] += ti;
  }
}

void cscale(float* re, float* im, float wr, float wi, std::size_t n) {
  for (std::size_t l = 0; l < n; ++l) {
    const float tr = re[l] * wr - im[l] * wi;
    im[l] = re[l] * wi + im[l] * wr;
    re[l] = tr;
  }
}

void butterfly_rows(float* ar, float* ai, float* br, float* bi, const float* w,
                    std::size_t rows, std::size_t lanes) {
  for (std::size_t j = 0; j < rows; ++j) {
    butterfly(ar + j * lanes, ai + j * lanes, br + j * lanes, bi + j * lanes,
              w[2 * j], w[2 * j + 1], lanes);
  }
}

void butterfly2_rows(float* re, float* im, const float* w1, const float* w2,
                     std::size_t h, std::size_t lanes) {
  for (std::size_t j = 0; j < h; ++j) {
    float* r0 = re + j * lanes;
    float* i0 = im + j * lanes;
    float* r1 = r0 + h * lanes;
    float* i1 = i0 + h * lanes;
    float* r2 = r1 + h * lanes;
    float* i2 = i1 + h * lanes;
    float* r3 = r2 + h * lanes;
    float* i3 = i2 + h * lanes;
    butterfly(r0, i0, r1, i1, w1[2 * j], w1[2 * j + 1], lanes);
    butterfly(r2, i2, r3, i3, w1[2 * j], w1[2 * j + 1], lanes);
    butterfly(r0, i0, r2, i2, w2[2 * j], w2[2 * j + 1], lanes);
    butterfly(r1, i1, r3, i3, w2[2 * (j + h)], w2[2 * (j + h) + 1], lanes);
  }
}

void cscale_rows(float* re, float* im, const float* w, std::size_t rows,
                 std::size_t lanes) {
  for (std::size_t j = 0; j < rows; ++j) {
    cscale(re + j * lanes, im + j * lanes, w[2 * j], w[2 * j + 1], lanes);
  }
}

void cscale_to(float* yr, float* yi, const float* xr, const float* xi, float wr,
               float wi, std::size_t n) {
  for (std::size_t l = 0; l < n; ++l) {
    yr[l] = xr[l] * wr - xi[l] * wi;
    yi[l] = xr[l] * wi + xi[l] * wr;
  }
}

void cscale_rows_to(float* yr, float* yi, const float* xr, const float* xi,
                    const float* w, std::size_t rows, std::size_t lanes) {
  for (std::size_t j = 0; j < rows; ++j) {
    cscale_to(yr + j * lanes, yi + j * lanes, xr + j * lanes, xi + j * lanes,
              w[2 * j], w[2 * j + 1], lanes);
  }
}

void cmul_interleaved(float* a, const float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float ar = a[2 * i], ai = a[2 * i + 1];
    const float br = b[2 * i], bi = b[2 * i + 1];
    a[2 * i] = ar * br - ai * bi;
    a[2 * i + 1] = ar * bi + ai * br;
  }
}

void scale(float* x, float s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

void deinterleave_scale(float* re, float* im, const float* src, float w,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    re[i] = w * src[2 * i];
    im[i] = w * src[2 * i + 1];
  }
}

void interleave(float* dst, const float* re, const float* im, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[2 * i] = re[i];
    dst[2 * i + 1] = im[i];
  }
}

void cmac_conj(float* y, const float* x, float wr, float wi, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float xr = x[2 * i], xi = x[2 * i + 1];
    y[2 * i] += wr * xr + wi * xi;
    y[2 * i + 1] += wr * xi - wi * xr;
  }
}

// fp-contract is pinned off: at -O3 GCC would otherwise fuse re*re + im*im
// into an FMA here, silently breaking the bit-exactness contract between
// this reference and the vector backends (which use separate mul and add).
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
void norm_interleaved(double* power, const float* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float re = x[2 * i], im = x[2 * i + 1];
    power[i] = static_cast<double>(re * re + im * im);
  }
}

void cdot(const float* x, const float* y, std::size_t n, float* out_re,
          float* out_im) {
  float acc_r = 0.0f, acc_i = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float xr = x[2 * i], xi = x[2 * i + 1];
    const float yr = y[2 * i], yi = y[2 * i + 1];
    acc_r += xr * yr + xi * yi;
    acc_i += xr * yi - xi * yr;
  }
  *out_re = acc_r;
  *out_im = acc_i;
}

void cgemm_planar(float* c, std::size_t ldc, const float* ar, const float* ai,
                  std::size_t m, std::size_t k, const float* b, std::size_t ldb,
                  std::size_t n) {
  // i-outer / p-middle / l-inner: with conj applied at pack time this is the
  // exact fl-sequence of the historical per-(beam, dof) cmac_conj beamform
  // loop (a - (-b) == a + b in IEEE arithmetic, so the packed-negation trees
  // match the conjugating trees bit-for-bit).
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + 2 * i * ldc;
    for (std::size_t p = 0; p < k; ++p) {
      const float wr = ar[i * k + p];
      const float wi = ai[i * k + p];
      const float* brow = b + 2 * p * ldb;
      for (std::size_t l = 0; l < n; ++l) {
        const float xr = brow[2 * l], xi = brow[2 * l + 1];
        crow[2 * l] += wr * xr - wi * xi;
        crow[2 * l + 1] += wr * xi + wi * xr;
      }
    }
  }
}

void cdotu(const float* x, const float* y, std::size_t n, float* out_re,
           float* out_im) {
  float acc_r = 0.0f, acc_i = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    const float xr = x[2 * i], xi = x[2 * i + 1];
    const float yr = y[2 * i], yi = y[2 * i + 1];
    acc_r += xr * yr - xi * yi;
    acc_i += xr * yi + xi * yr;
  }
  *out_re = acc_r;
  *out_im = acc_i;
}

void cmac_conj_arr(float* y, const float* a, float xr, float xi,
                   std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const float ar = a[2 * i], ai = a[2 * i + 1];
    y[2 * i] += ar * xr + ai * xi;
    y[2 * i + 1] += ar * xi - ai * xr;
  }
}

void zherk_cf_lower(double* r, std::size_t ldr, const float* s, std::size_t lds,
                    std::size_t dof, std::size_t t, double alpha) {
  // alpha folded per term and gate-order accumulation: the exact fl-sequence
  // of the historical snapshot-gather + her_update covariance loop (each
  // (i, j) cell accumulated independently over t, starting from zero).
  for (std::size_t i = 0; i < dof; ++i) {
    const float* si = s + 2 * i * lds;
    for (std::size_t j = 0; j <= i; ++j) {
      const float* sj = s + 2 * j * lds;
      double acc_re = 0.0, acc_im = 0.0;
      for (std::size_t g = 0; g < t; ++g) {
        const double pr = alpha * static_cast<double>(si[2 * g]);
        const double pi = alpha * static_cast<double>(si[2 * g + 1]);
        const double xr = static_cast<double>(sj[2 * g]);
        const double xi = static_cast<double>(sj[2 * g + 1]);
        acc_re += pr * xr + pi * xi;
        acc_im += pi * xr - pr * xi;
      }
      r[2 * (i * ldr + j)] += acc_re;
      r[2 * (i * ldr + j) + 1] += acc_im;
    }
  }
}

// fp-contract pinned off for the zmac pair: these are the FMA-free
// bit-exact-across-backends kernels feeding the QR weight solve, and a
// contracted mul+add in any one backend would break the contract.
#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
void zmac(double* y, const double* x, double cr, double ci, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x[2 * i], xi = x[2 * i + 1];
    y[2 * i] += cr * xr - ci * xi;
    y[2 * i + 1] += cr * xi + ci * xr;
  }
}

#if defined(__GNUC__) && !defined(__clang__)
__attribute__((optimize("fp-contract=off")))
#endif
void zmac_conj(double* y, const double* x, double cr, double ci,
               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double xr = x[2 * i], xi = x[2 * i + 1];
    y[2 * i] += cr * xr + ci * xi;
    y[2 * i + 1] += cr * xi - ci * xr;
  }
}

constexpr Ops kOps = {
    .butterfly = butterfly,
    .butterfly_rows = butterfly_rows,
    .butterfly2_rows = butterfly2_rows,
    .cscale = cscale,
    .cscale_to = cscale_to,
    .cscale_rows = cscale_rows,
    .cscale_rows_to = cscale_rows_to,
    .cmul_interleaved = cmul_interleaved,
    .scale = scale,
    .deinterleave_scale = deinterleave_scale,
    .interleave = interleave,
    .cmac_conj = cmac_conj,
    .norm_interleaved = norm_interleaved,
    .cdot = cdot,
    .cgemm_planar = cgemm_planar,
    .cdotu = cdotu,
    .cmac_conj_arr = cmac_conj_arr,
    .zherk_cf_lower = zherk_cf_lower,
    .zmac = zmac,
    .zmac_conj = zmac_conj,
};

}  // namespace scalar_impl

#if PSTAP_SIMD_X86

// --------------------------------------------------------------- sse2 ----
// 4-wide __m128 kernels; x86-64 baseline ISA, no target attribute needed.
namespace sse2_impl {

void butterfly(float* ar, float* ai, float* br, float* bi, float wr, float wi,
               std::size_t n) {
  const __m128 vwr = _mm_set1_ps(wr);
  const __m128 vwi = _mm_set1_ps(wi);
  std::size_t l = 0;
  for (; l + 4 <= n; l += 4) {
    const __m128 vbr = _mm_loadu_ps(br + l);
    const __m128 vbi = _mm_loadu_ps(bi + l);
    const __m128 var = _mm_loadu_ps(ar + l);
    const __m128 vai = _mm_loadu_ps(ai + l);
    const __m128 tr = _mm_sub_ps(_mm_mul_ps(vwr, vbr), _mm_mul_ps(vwi, vbi));
    const __m128 ti = _mm_add_ps(_mm_mul_ps(vwr, vbi), _mm_mul_ps(vwi, vbr));
    _mm_storeu_ps(br + l, _mm_sub_ps(var, tr));
    _mm_storeu_ps(bi + l, _mm_sub_ps(vai, ti));
    _mm_storeu_ps(ar + l, _mm_add_ps(var, tr));
    _mm_storeu_ps(ai + l, _mm_add_ps(vai, ti));
  }
  if (l < n) scalar_impl::butterfly(ar + l, ai + l, br + l, bi + l, wr, wi, n - l);
}

void butterfly_rows(float* ar, float* ai, float* br, float* bi, const float* w,
                    std::size_t rows, std::size_t lanes) {
  for (std::size_t j = 0; j < rows; ++j) {
    butterfly(ar + j * lanes, ai + j * lanes, br + j * lanes, bi + j * lanes,
              w[2 * j], w[2 * j + 1], lanes);
  }
}

void butterfly2_rows(float* re, float* im, const float* w1, const float* w2,
                     std::size_t h, std::size_t lanes) {
  for (std::size_t j = 0; j < h; ++j) {
    float* r0 = re + j * lanes;
    float* i0 = im + j * lanes;
    float* r1 = r0 + h * lanes;
    float* i1 = i0 + h * lanes;
    float* r2 = r1 + h * lanes;
    float* i2 = i1 + h * lanes;
    float* r3 = r2 + h * lanes;
    float* i3 = i2 + h * lanes;
    butterfly(r0, i0, r1, i1, w1[2 * j], w1[2 * j + 1], lanes);
    butterfly(r2, i2, r3, i3, w1[2 * j], w1[2 * j + 1], lanes);
    butterfly(r0, i0, r2, i2, w2[2 * j], w2[2 * j + 1], lanes);
    butterfly(r1, i1, r3, i3, w2[2 * (j + h)], w2[2 * (j + h) + 1], lanes);
  }
}

void cscale(float* re, float* im, float wr, float wi, std::size_t n) {
  const __m128 vwr = _mm_set1_ps(wr);
  const __m128 vwi = _mm_set1_ps(wi);
  std::size_t l = 0;
  for (; l + 4 <= n; l += 4) {
    const __m128 vr = _mm_loadu_ps(re + l);
    const __m128 vi = _mm_loadu_ps(im + l);
    _mm_storeu_ps(re + l, _mm_sub_ps(_mm_mul_ps(vr, vwr), _mm_mul_ps(vi, vwi)));
    _mm_storeu_ps(im + l, _mm_add_ps(_mm_mul_ps(vr, vwi), _mm_mul_ps(vi, vwr)));
  }
  if (l < n) scalar_impl::cscale(re + l, im + l, wr, wi, n - l);
}

void cscale_rows(float* re, float* im, const float* w, std::size_t rows,
                 std::size_t lanes) {
  for (std::size_t j = 0; j < rows; ++j) {
    cscale(re + j * lanes, im + j * lanes, w[2 * j], w[2 * j + 1], lanes);
  }
}

void cscale_to(float* yr, float* yi, const float* xr, const float* xi, float wr,
               float wi, std::size_t n) {
  const __m128 vwr = _mm_set1_ps(wr);
  const __m128 vwi = _mm_set1_ps(wi);
  std::size_t l = 0;
  for (; l + 4 <= n; l += 4) {
    const __m128 vr = _mm_loadu_ps(xr + l);
    const __m128 vi = _mm_loadu_ps(xi + l);
    _mm_storeu_ps(yr + l, _mm_sub_ps(_mm_mul_ps(vr, vwr), _mm_mul_ps(vi, vwi)));
    _mm_storeu_ps(yi + l, _mm_add_ps(_mm_mul_ps(vr, vwi), _mm_mul_ps(vi, vwr)));
  }
  if (l < n) scalar_impl::cscale_to(yr + l, yi + l, xr + l, xi + l, wr, wi, n - l);
}

void cscale_rows_to(float* yr, float* yi, const float* xr, const float* xi,
                    const float* w, std::size_t rows, std::size_t lanes) {
  for (std::size_t j = 0; j < rows; ++j) {
    cscale_to(yr + j * lanes, yi + j * lanes, xr + j * lanes, xi + j * lanes,
              w[2 * j], w[2 * j + 1], lanes);
  }
}

void cmul_interleaved(float* a, const float* b, std::size_t n) {
  // Per pair [ar, ai] * [br, bi]: t1 = a * [br, br]; t2 = swap(a) * [bi, bi];
  // result = t1 + [-t2_even, +t2_odd].
  const __m128 negmask = _mm_castsi128_ps(_mm_set_epi32(0, 0x80000000, 0, 0x80000000));
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 va = _mm_loadu_ps(a + 2 * i);
    const __m128 vb = _mm_loadu_ps(b + 2 * i);
    const __m128 bre = _mm_shuffle_ps(vb, vb, _MM_SHUFFLE(2, 2, 0, 0));
    const __m128 bim = _mm_shuffle_ps(vb, vb, _MM_SHUFFLE(3, 3, 1, 1));
    const __m128 asw = _mm_shuffle_ps(va, va, _MM_SHUFFLE(2, 3, 0, 1));
    const __m128 t2 = _mm_xor_ps(_mm_mul_ps(asw, bim), negmask);
    _mm_storeu_ps(a + 2 * i, _mm_add_ps(_mm_mul_ps(va, bre), t2));
  }
  if (i < n) scalar_impl::cmul_interleaved(a + 2 * i, b + 2 * i, n - i);
}

void scale(float* x, float s, std::size_t n) {
  const __m128 vs = _mm_set1_ps(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_mul_ps(_mm_loadu_ps(x + i), vs));
  }
  if (i < n) scalar_impl::scale(x + i, s, n - i);
}

void deinterleave_scale(float* re, float* im, const float* src, float w,
                        std::size_t n) {
  const __m128 vw = _mm_set1_ps(w);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v0 = _mm_loadu_ps(src + 2 * i);      // r0 i0 r1 i1
    const __m128 v1 = _mm_loadu_ps(src + 2 * i + 4);  // r2 i2 r3 i3
    const __m128 vr = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0));
    const __m128 vi = _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1));
    _mm_storeu_ps(re + i, _mm_mul_ps(vw, vr));
    _mm_storeu_ps(im + i, _mm_mul_ps(vw, vi));
  }
  if (i < n) scalar_impl::deinterleave_scale(re + i, im + i, src + 2 * i, w, n - i);
}

void interleave(float* dst, const float* re, const float* im, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 vr = _mm_loadu_ps(re + i);
    const __m128 vi = _mm_loadu_ps(im + i);
    _mm_storeu_ps(dst + 2 * i, _mm_unpacklo_ps(vr, vi));
    _mm_storeu_ps(dst + 2 * i + 4, _mm_unpackhi_ps(vr, vi));
  }
  if (i < n) scalar_impl::interleave(dst + 2 * i, re + i, im + i, n - i);
}

void cmac_conj(float* y, const float* x, float wr, float wi, std::size_t n) {
  // y += wr * x + swap(x) * [wi, -wi, ...]
  const __m128 vwr = _mm_set1_ps(wr);
  const __m128 vwp = _mm_set_ps(-wi, wi, -wi, wi);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 vx = _mm_loadu_ps(x + 2 * i);
    const __m128 vy = _mm_loadu_ps(y + 2 * i);
    const __m128 xsw = _mm_shuffle_ps(vx, vx, _MM_SHUFFLE(2, 3, 0, 1));
    const __m128 t = _mm_add_ps(_mm_mul_ps(vwr, vx), _mm_mul_ps(vwp, xsw));
    _mm_storeu_ps(y + 2 * i, _mm_add_ps(vy, t));
  }
  if (i < n) scalar_impl::cmac_conj(y + 2 * i, x + 2 * i, wr, wi, n - i);
}

void norm_interleaved(double* power, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 v = _mm_loadu_ps(x + 2 * i);
    const __m128 sq = _mm_mul_ps(v, v);
    const __m128 sw = _mm_shuffle_ps(sq, sq, _MM_SHUFFLE(2, 3, 0, 1));
    const __m128 sum = _mm_add_ps(sq, sw);  // norms in lanes 0 and 2
    const __m128 packed = _mm_shuffle_ps(sum, sum, _MM_SHUFFLE(3, 1, 2, 0));
    _mm_storeu_pd(power + i, _mm_cvtps_pd(packed));
  }
  if (i < n) scalar_impl::norm_interleaved(power + i, x + 2 * i, n - i);
}

void cdot(const float* x, const float* y, std::size_t n, float* out_re,
          float* out_im) {
  // acc (interleaved) += [xr*yr + xi*yi, xr*yi - xi*yr]
  const __m128 negmask = _mm_castsi128_ps(_mm_set_epi32(0x80000000, 0, 0x80000000, 0));
  __m128 acc = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 vx = _mm_loadu_ps(x + 2 * i);
    const __m128 vy = _mm_loadu_ps(y + 2 * i);
    const __m128 xre = _mm_shuffle_ps(vx, vx, _MM_SHUFFLE(2, 2, 0, 0));
    const __m128 xim = _mm_shuffle_ps(vx, vx, _MM_SHUFFLE(3, 3, 1, 1));
    const __m128 ysw = _mm_shuffle_ps(vy, vy, _MM_SHUFFLE(2, 3, 0, 1));
    const __m128 t2 = _mm_xor_ps(_mm_mul_ps(xim, ysw), negmask);
    acc = _mm_add_ps(acc, _mm_add_ps(_mm_mul_ps(xre, vy), t2));
  }
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, acc);
  float acc_r = lanes[0] + lanes[2];
  float acc_i = lanes[1] + lanes[3];
  for (; i < n; ++i) {
    const float xr = x[2 * i], xi = x[2 * i + 1];
    const float yr = y[2 * i], yi = y[2 * i + 1];
    acc_r += xr * yr + xi * yi;
    acc_i += xr * yi - xi * yr;
  }
  *out_re = acc_r;
  *out_im = acc_i;
}

void cgemm_planar(float* c, std::size_t ldc, const float* ar, const float* ai,
                  std::size_t m, std::size_t k, const float* b, std::size_t ldb,
                  std::size_t n) {
  // y += wr * x + swap(x) * [-wi, +wi, ...] — the plain (non-conjugating)
  // counterpart of cmac_conj; conj is the caller's pack-time negation.
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = c + 2 * i * ldc;
    for (std::size_t p = 0; p < k; ++p) {
      const float wr = ar[i * k + p];
      const float wi = ai[i * k + p];
      const float* brow = b + 2 * p * ldb;
      const __m128 vwr = _mm_set1_ps(wr);
      const __m128 vwp = _mm_set_ps(wi, -wi, wi, -wi);
      std::size_t l = 0;
      for (; l + 2 <= n; l += 2) {
        const __m128 vx = _mm_loadu_ps(brow + 2 * l);
        const __m128 vy = _mm_loadu_ps(crow + 2 * l);
        const __m128 xsw = _mm_shuffle_ps(vx, vx, _MM_SHUFFLE(2, 3, 0, 1));
        const __m128 t = _mm_add_ps(_mm_mul_ps(vwr, vx), _mm_mul_ps(vwp, xsw));
        _mm_storeu_ps(crow + 2 * l, _mm_add_ps(vy, t));
      }
      for (; l < n; ++l) {
        const float xr = brow[2 * l], xi = brow[2 * l + 1];
        crow[2 * l] += wr * xr - wi * xi;
        crow[2 * l + 1] += wr * xi + wi * xr;
      }
    }
  }
}

void cdotu(const float* x, const float* y, std::size_t n, float* out_re,
           float* out_im) {
  // acc (interleaved) += [xr*yr - xi*yi, xr*yi + xi*yr]
  const __m128 negmask = _mm_castsi128_ps(_mm_set_epi32(0, 0x80000000, 0, 0x80000000));
  __m128 acc = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 vx = _mm_loadu_ps(x + 2 * i);
    const __m128 vy = _mm_loadu_ps(y + 2 * i);
    const __m128 xre = _mm_shuffle_ps(vx, vx, _MM_SHUFFLE(2, 2, 0, 0));
    const __m128 xim = _mm_shuffle_ps(vx, vx, _MM_SHUFFLE(3, 3, 1, 1));
    const __m128 ysw = _mm_shuffle_ps(vy, vy, _MM_SHUFFLE(2, 3, 0, 1));
    const __m128 t2 = _mm_xor_ps(_mm_mul_ps(xim, ysw), negmask);
    acc = _mm_add_ps(acc, _mm_add_ps(_mm_mul_ps(xre, vy), t2));
  }
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, acc);
  float acc_r = lanes[0] + lanes[2];
  float acc_i = lanes[1] + lanes[3];
  for (; i < n; ++i) {
    const float xr = x[2 * i], xi = x[2 * i + 1];
    const float yr = y[2 * i], yi = y[2 * i + 1];
    acc_r += xr * yr - xi * yi;
    acc_i += xr * yi + xi * yr;
  }
  *out_re = acc_r;
  *out_im = acc_i;
}

void cmac_conj_arr(float* y, const float* a, float xr, float xi,
                   std::size_t n) {
  // y += a * [xr, -xr, ...] + swap(a) * xi
  const __m128 vc1 = _mm_set_ps(-xr, xr, -xr, xr);
  const __m128 vc2 = _mm_set1_ps(xi);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128 va = _mm_loadu_ps(a + 2 * i);
    const __m128 vy = _mm_loadu_ps(y + 2 * i);
    const __m128 asw = _mm_shuffle_ps(va, va, _MM_SHUFFLE(2, 3, 0, 1));
    const __m128 t = _mm_add_ps(_mm_mul_ps(va, vc1), _mm_mul_ps(asw, vc2));
    _mm_storeu_ps(y + 2 * i, _mm_add_ps(vy, t));
  }
  for (; i < n; ++i) {
    const float ar = a[2 * i], ai = a[2 * i + 1];
    y[2 * i] += ar * xr + ai * xi;
    y[2 * i + 1] += ar * xi - ai * xr;
  }
}

void zherk_cf_lower(double* r, std::size_t ldr, const float* s, std::size_t lds,
                    std::size_t dof, std::size_t t, double alpha) {
  // One complex per __m128d: accumulate conj(s_i) . s_j in [re, im] lanes,
  // conjugate and scale by alpha at the end (conj(sum conj(a) b) ==
  // sum a conj(b)). Reduction order differs from scalar — tolerance kernel.
  const __m128d neg_im = _mm_castsi128_pd(
      _mm_set_epi64x(static_cast<long long>(0x8000000000000000ull), 0));
  for (std::size_t i = 0; i < dof; ++i) {
    const float* si = s + 2 * i * lds;
    for (std::size_t j = 0; j <= i; ++j) {
      const float* sj = s + 2 * j * lds;
      __m128d acc = _mm_setzero_pd();
      std::size_t g = 0;
      for (; g + 1 <= t; ++g) {
        const __m128d va = _mm_cvtps_pd(_mm_castsi128_ps(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(si + 2 * g))));
        const __m128d vb = _mm_cvtps_pd(_mm_castsi128_ps(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(sj + 2 * g))));
        const __m128d are = _mm_unpacklo_pd(va, va);
        const __m128d aim = _mm_unpackhi_pd(va, va);
        const __m128d bsw = _mm_shuffle_pd(vb, vb, 0x1);
        // t1 = [ar*br, ar*bi]; t2 = [ai*bi, ai*br];
        // conj-dot term = [ar*br + ai*bi, ar*bi - ai*br] = -t2_odd + ...
        const __m128d t1 = _mm_mul_pd(are, vb);
        const __m128d t2 = _mm_xor_pd(_mm_mul_pd(aim, bsw), neg_im);
        acc = _mm_add_pd(acc, _mm_add_pd(t1, t2));
      }
      alignas(16) double lanes[2];
      _mm_store_pd(lanes, acc);
      r[2 * (i * ldr + j)] += alpha * lanes[0];
      r[2 * (i * ldr + j) + 1] += alpha * (-lanes[1]);
    }
  }
}

void zmac(double* y, const double* x, double cr, double ci, std::size_t n) {
  // One complex per __m128d; per-element trees identical to scalar (the
  // lane negation of ci is exact), so this stays bit-exact with scalar.
  const __m128d vcr = _mm_set1_pd(cr);
  const __m128d vcp = _mm_set_pd(ci, -ci);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d vx = _mm_loadu_pd(x + 2 * i);
    const __m128d vy = _mm_loadu_pd(y + 2 * i);
    const __m128d xsw = _mm_shuffle_pd(vx, vx, 0x1);
    const __m128d t = _mm_add_pd(_mm_mul_pd(vcr, vx), _mm_mul_pd(vcp, xsw));
    _mm_storeu_pd(y + 2 * i, _mm_add_pd(vy, t));
  }
}

void zmac_conj(double* y, const double* x, double cr, double ci,
               std::size_t n) {
  const __m128d vcr = _mm_set1_pd(cr);
  const __m128d vcp = _mm_set_pd(-ci, ci);
  for (std::size_t i = 0; i < n; ++i) {
    const __m128d vx = _mm_loadu_pd(x + 2 * i);
    const __m128d vy = _mm_loadu_pd(y + 2 * i);
    const __m128d xsw = _mm_shuffle_pd(vx, vx, 0x1);
    const __m128d t = _mm_add_pd(_mm_mul_pd(vcr, vx), _mm_mul_pd(vcp, xsw));
    _mm_storeu_pd(y + 2 * i, _mm_add_pd(vy, t));
  }
}

constexpr Ops kOps = {
    .butterfly = butterfly,
    .butterfly_rows = butterfly_rows,
    .butterfly2_rows = butterfly2_rows,
    .cscale = cscale,
    .cscale_to = cscale_to,
    .cscale_rows = cscale_rows,
    .cscale_rows_to = cscale_rows_to,
    .cmul_interleaved = cmul_interleaved,
    .scale = scale,
    .deinterleave_scale = deinterleave_scale,
    .interleave = interleave,
    .cmac_conj = cmac_conj,
    .norm_interleaved = norm_interleaved,
    .cdot = cdot,
    .cgemm_planar = cgemm_planar,
    .cdotu = cdotu,
    .cmac_conj_arr = cmac_conj_arr,
    .zherk_cf_lower = zherk_cf_lower,
    .zmac = zmac,
    .zmac_conj = zmac_conj,
};

}  // namespace sse2_impl

// --------------------------------------------------------------- avx2 ----
// 8-wide __m256 kernels with FMA. Compiled via per-function target
// attributes so the rest of the build stays at the baseline ISA; only ever
// called after a CPUID check.
namespace avx2_impl {

#define PSTAP_AVX2 __attribute__((target("avx2,fma")))

PSTAP_AVX2 void butterfly(float* ar, float* ai, float* br, float* bi, float wr,
                          float wi, std::size_t n) {
  const __m256 vwr = _mm256_set1_ps(wr);
  const __m256 vwi = _mm256_set1_ps(wi);
  std::size_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 vbr = _mm256_loadu_ps(br + l);
    const __m256 vbi = _mm256_loadu_ps(bi + l);
    const __m256 var = _mm256_loadu_ps(ar + l);
    const __m256 vai = _mm256_loadu_ps(ai + l);
    const __m256 tr = _mm256_fmsub_ps(vwr, vbr, _mm256_mul_ps(vwi, vbi));
    const __m256 ti = _mm256_fmadd_ps(vwr, vbi, _mm256_mul_ps(vwi, vbr));
    _mm256_storeu_ps(br + l, _mm256_sub_ps(var, tr));
    _mm256_storeu_ps(bi + l, _mm256_sub_ps(vai, ti));
    _mm256_storeu_ps(ar + l, _mm256_add_ps(var, tr));
    _mm256_storeu_ps(ai + l, _mm256_add_ps(vai, ti));
  }
  if (l < n) sse2_impl::butterfly(ar + l, ai + l, br + l, bi + l, wr, wi, n - l);
}

// Row-batched butterflies with the steady-state lane width (kBatchLanes ==
// 16 → two 8-wide chunks per plane) fully unrolled: one dispatch per stage
// block, registers live across the whole row.
PSTAP_AVX2 void butterfly_rows(float* ar, float* ai, float* br, float* bi,
                               const float* w, std::size_t rows,
                               std::size_t lanes) {
  if (lanes == 16) {
    for (std::size_t j = 0; j < rows; ++j) {
      const __m256 vwr = _mm256_set1_ps(w[2 * j]);
      const __m256 vwi = _mm256_set1_ps(w[2 * j + 1]);
      float* arj = ar + j * 16;
      float* aij = ai + j * 16;
      float* brj = br + j * 16;
      float* bij = bi + j * 16;
      for (int half = 0; half < 2; ++half) {
        const std::size_t o = static_cast<std::size_t>(half) * 8;
        const __m256 vbr = _mm256_loadu_ps(brj + o);
        const __m256 vbi = _mm256_loadu_ps(bij + o);
        const __m256 var = _mm256_loadu_ps(arj + o);
        const __m256 vai = _mm256_loadu_ps(aij + o);
        const __m256 tr = _mm256_fmsub_ps(vwr, vbr, _mm256_mul_ps(vwi, vbi));
        const __m256 ti = _mm256_fmadd_ps(vwr, vbi, _mm256_mul_ps(vwi, vbr));
        _mm256_storeu_ps(brj + o, _mm256_sub_ps(var, tr));
        _mm256_storeu_ps(bij + o, _mm256_sub_ps(vai, ti));
        _mm256_storeu_ps(arj + o, _mm256_add_ps(var, tr));
        _mm256_storeu_ps(aij + o, _mm256_add_ps(vai, ti));
      }
    }
    return;
  }
  for (std::size_t j = 0; j < rows; ++j) {
    butterfly(ar + j * lanes, ai + j * lanes, br + j * lanes, bi + j * lanes,
              w[2 * j], w[2 * j + 1], lanes);
  }
}

// Fused stage pair: the four rows of each group live in registers across
// both butterfly levels, so plane traffic is half of two butterfly_rows
// passes. Expression trees match butterfly exactly — results are
// bit-identical to running the two stages separately on this backend.
PSTAP_AVX2 void butterfly2_rows(float* re, float* im, const float* w1,
                                const float* w2, std::size_t h,
                                std::size_t lanes) {
  for (std::size_t j = 0; j < h; ++j) {
    const __m256 w1r = _mm256_set1_ps(w1[2 * j]);
    const __m256 w1i = _mm256_set1_ps(w1[2 * j + 1]);
    const __m256 w2r = _mm256_set1_ps(w2[2 * j]);
    const __m256 w2i = _mm256_set1_ps(w2[2 * j + 1]);
    const __m256 w3r = _mm256_set1_ps(w2[2 * (j + h)]);
    const __m256 w3i = _mm256_set1_ps(w2[2 * (j + h) + 1]);
    float* r0 = re + j * lanes;
    float* i0 = im + j * lanes;
    float* r1 = r0 + h * lanes;
    float* i1 = i0 + h * lanes;
    float* r2 = r1 + h * lanes;
    float* i2 = i1 + h * lanes;
    float* r3 = r2 + h * lanes;
    float* i3 = i2 + h * lanes;
    std::size_t l = 0;
    for (; l + 8 <= lanes; l += 8) {
      const __m256 ar = _mm256_loadu_ps(r0 + l);
      const __m256 ai = _mm256_loadu_ps(i0 + l);
      const __m256 br = _mm256_loadu_ps(r1 + l);
      const __m256 bi = _mm256_loadu_ps(i1 + l);
      const __m256 cr = _mm256_loadu_ps(r2 + l);
      const __m256 ci = _mm256_loadu_ps(i2 + l);
      const __m256 dr = _mm256_loadu_ps(r3 + l);
      const __m256 di = _mm256_loadu_ps(i3 + l);
      // Stage h: (a, b) and (c, d) with w1.
      const __m256 t0r = _mm256_fmsub_ps(w1r, br, _mm256_mul_ps(w1i, bi));
      const __m256 t0i = _mm256_fmadd_ps(w1r, bi, _mm256_mul_ps(w1i, br));
      const __m256 nar = _mm256_add_ps(ar, t0r);
      const __m256 nai = _mm256_add_ps(ai, t0i);
      const __m256 nbr = _mm256_sub_ps(ar, t0r);
      const __m256 nbi = _mm256_sub_ps(ai, t0i);
      const __m256 t1r = _mm256_fmsub_ps(w1r, dr, _mm256_mul_ps(w1i, di));
      const __m256 t1i = _mm256_fmadd_ps(w1r, di, _mm256_mul_ps(w1i, dr));
      const __m256 ncr = _mm256_add_ps(cr, t1r);
      const __m256 nci = _mm256_add_ps(ci, t1i);
      const __m256 ndr = _mm256_sub_ps(cr, t1r);
      const __m256 ndi = _mm256_sub_ps(ci, t1i);
      // Stage 2h: (a, c) with w2, (b, d) with w3 = w2 row j + h.
      const __m256 u0r = _mm256_fmsub_ps(w2r, ncr, _mm256_mul_ps(w2i, nci));
      const __m256 u0i = _mm256_fmadd_ps(w2r, nci, _mm256_mul_ps(w2i, ncr));
      _mm256_storeu_ps(r0 + l, _mm256_add_ps(nar, u0r));
      _mm256_storeu_ps(i0 + l, _mm256_add_ps(nai, u0i));
      _mm256_storeu_ps(r2 + l, _mm256_sub_ps(nar, u0r));
      _mm256_storeu_ps(i2 + l, _mm256_sub_ps(nai, u0i));
      const __m256 u1r = _mm256_fmsub_ps(w3r, ndr, _mm256_mul_ps(w3i, ndi));
      const __m256 u1i = _mm256_fmadd_ps(w3r, ndi, _mm256_mul_ps(w3i, ndr));
      _mm256_storeu_ps(r1 + l, _mm256_add_ps(nbr, u1r));
      _mm256_storeu_ps(i1 + l, _mm256_add_ps(nbi, u1i));
      _mm256_storeu_ps(r3 + l, _mm256_sub_ps(nbr, u1r));
      _mm256_storeu_ps(i3 + l, _mm256_sub_ps(nbi, u1i));
    }
    if (l < lanes) {
      const std::size_t rem = lanes - l;
      sse2_impl::butterfly(r0 + l, i0 + l, r1 + l, i1 + l, w1[2 * j],
                           w1[2 * j + 1], rem);
      sse2_impl::butterfly(r2 + l, i2 + l, r3 + l, i3 + l, w1[2 * j],
                           w1[2 * j + 1], rem);
      sse2_impl::butterfly(r0 + l, i0 + l, r2 + l, i2 + l, w2[2 * j],
                           w2[2 * j + 1], rem);
      sse2_impl::butterfly(r1 + l, i1 + l, r3 + l, i3 + l, w2[2 * (j + h)],
                           w2[2 * (j + h) + 1], rem);
    }
  }
}

PSTAP_AVX2 void cscale(float* re, float* im, float wr, float wi, std::size_t n) {
  const __m256 vwr = _mm256_set1_ps(wr);
  const __m256 vwi = _mm256_set1_ps(wi);
  std::size_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 vr = _mm256_loadu_ps(re + l);
    const __m256 vi = _mm256_loadu_ps(im + l);
    _mm256_storeu_ps(re + l, _mm256_fmsub_ps(vr, vwr, _mm256_mul_ps(vi, vwi)));
    _mm256_storeu_ps(im + l, _mm256_fmadd_ps(vr, vwi, _mm256_mul_ps(vi, vwr)));
  }
  if (l < n) sse2_impl::cscale(re + l, im + l, wr, wi, n - l);
}

PSTAP_AVX2 void cscale_to(float* yr, float* yi, const float* xr, const float* xi,
                          float wr, float wi, std::size_t n) {
  const __m256 vwr = _mm256_set1_ps(wr);
  const __m256 vwi = _mm256_set1_ps(wi);
  std::size_t l = 0;
  for (; l + 8 <= n; l += 8) {
    const __m256 vr = _mm256_loadu_ps(xr + l);
    const __m256 vi = _mm256_loadu_ps(xi + l);
    _mm256_storeu_ps(yr + l, _mm256_fmsub_ps(vr, vwr, _mm256_mul_ps(vi, vwi)));
    _mm256_storeu_ps(yi + l, _mm256_fmadd_ps(vr, vwi, _mm256_mul_ps(vi, vwr)));
  }
  if (l < n) sse2_impl::cscale_to(yr + l, yi + l, xr + l, xi + l, wr, wi, n - l);
}

PSTAP_AVX2 void cscale_rows(float* re, float* im, const float* w,
                            std::size_t rows, std::size_t lanes) {
  if (lanes == 16) {
    for (std::size_t j = 0; j < rows; ++j) {
      const __m256 vwr = _mm256_set1_ps(w[2 * j]);
      const __m256 vwi = _mm256_set1_ps(w[2 * j + 1]);
      float* rj = re + j * 16;
      float* ij = im + j * 16;
      for (int half = 0; half < 2; ++half) {
        const std::size_t o = static_cast<std::size_t>(half) * 8;
        const __m256 vr = _mm256_loadu_ps(rj + o);
        const __m256 vi = _mm256_loadu_ps(ij + o);
        _mm256_storeu_ps(rj + o,
                         _mm256_fmsub_ps(vr, vwr, _mm256_mul_ps(vi, vwi)));
        _mm256_storeu_ps(ij + o,
                         _mm256_fmadd_ps(vr, vwi, _mm256_mul_ps(vi, vwr)));
      }
    }
    return;
  }
  for (std::size_t j = 0; j < rows; ++j) {
    cscale(re + j * lanes, im + j * lanes, w[2 * j], w[2 * j + 1], lanes);
  }
}

PSTAP_AVX2 void cscale_rows_to(float* yr, float* yi, const float* xr,
                               const float* xi, const float* w,
                               std::size_t rows, std::size_t lanes) {
  if (lanes == 16) {
    for (std::size_t j = 0; j < rows; ++j) {
      const __m256 vwr = _mm256_set1_ps(w[2 * j]);
      const __m256 vwi = _mm256_set1_ps(w[2 * j + 1]);
      const std::size_t base = j * 16;
      for (int half = 0; half < 2; ++half) {
        const std::size_t o = base + static_cast<std::size_t>(half) * 8;
        const __m256 vr = _mm256_loadu_ps(xr + o);
        const __m256 vi = _mm256_loadu_ps(xi + o);
        _mm256_storeu_ps(yr + o,
                         _mm256_fmsub_ps(vr, vwr, _mm256_mul_ps(vi, vwi)));
        _mm256_storeu_ps(yi + o,
                         _mm256_fmadd_ps(vr, vwi, _mm256_mul_ps(vi, vwr)));
      }
    }
    return;
  }
  for (std::size_t j = 0; j < rows; ++j) {
    cscale_to(yr + j * lanes, yi + j * lanes, xr + j * lanes, xi + j * lanes,
              w[2 * j], w[2 * j + 1], lanes);
  }
}

PSTAP_AVX2 void cmul_interleaved(float* a, const float* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 va = _mm256_loadu_ps(a + 2 * i);
    const __m256 vb = _mm256_loadu_ps(b + 2 * i);
    const __m256 bre = _mm256_moveldup_ps(vb);
    const __m256 bim = _mm256_movehdup_ps(vb);
    const __m256 asw = _mm256_permute_ps(va, 0xB1);
    _mm256_storeu_ps(a + 2 * i,
                     _mm256_fmaddsub_ps(va, bre, _mm256_mul_ps(asw, bim)));
  }
  if (i < n) sse2_impl::cmul_interleaved(a + 2 * i, b + 2 * i, n - i);
}

PSTAP_AVX2 void scale(float* x, float s, std::size_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), vs));
  }
  if (i < n) sse2_impl::scale(x + i, s, n - i);
}

PSTAP_AVX2 void deinterleave_scale(float* re, float* im, const float* src,
                                   float w, std::size_t n) {
  const __m256 vw = _mm256_set1_ps(w);
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 1, 3, 5, 7);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // e*: low 128 = 4 reals, high 128 = 4 imags of each 4-complex block.
    const __m256 e0 = _mm256_permutevar8x32_ps(_mm256_loadu_ps(src + 2 * i), idx);
    const __m256 e1 =
        _mm256_permutevar8x32_ps(_mm256_loadu_ps(src + 2 * i + 8), idx);
    const __m256 vr = _mm256_permute2f128_ps(e0, e1, 0x20);
    const __m256 vi = _mm256_permute2f128_ps(e0, e1, 0x31);
    _mm256_storeu_ps(re + i, _mm256_mul_ps(vw, vr));
    _mm256_storeu_ps(im + i, _mm256_mul_ps(vw, vi));
  }
  if (i < n) sse2_impl::deinterleave_scale(re + i, im + i, src + 2 * i, w, n - i);
}

PSTAP_AVX2 void interleave(float* dst, const float* re, const float* im,
                           std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 vr = _mm256_loadu_ps(re + i);
    const __m256 vi = _mm256_loadu_ps(im + i);
    const __m256 lo = _mm256_unpacklo_ps(vr, vi);
    const __m256 hi = _mm256_unpackhi_ps(vr, vi);
    _mm256_storeu_ps(dst + 2 * i, _mm256_permute2f128_ps(lo, hi, 0x20));
    _mm256_storeu_ps(dst + 2 * i + 8, _mm256_permute2f128_ps(lo, hi, 0x31));
  }
  if (i < n) sse2_impl::interleave(dst + 2 * i, re + i, im + i, n - i);
}

PSTAP_AVX2 void cmac_conj(float* y, const float* x, float wr, float wi,
                          std::size_t n) {
  const __m256 vwr = _mm256_set1_ps(wr);
  const __m256 vwp = _mm256_setr_ps(wi, -wi, wi, -wi, wi, -wi, wi, -wi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 vx = _mm256_loadu_ps(x + 2 * i);
    const __m256 vy = _mm256_loadu_ps(y + 2 * i);
    const __m256 xsw = _mm256_permute_ps(vx, 0xB1);
    const __m256 t = _mm256_fmadd_ps(vwr, vx, _mm256_mul_ps(vwp, xsw));
    _mm256_storeu_ps(y + 2 * i, _mm256_add_ps(vy, t));
  }
  if (i < n) sse2_impl::cmac_conj(y + 2 * i, x + 2 * i, wr, wi, n - i);
}

PSTAP_AVX2 void norm_interleaved(double* power, const float* x, std::size_t n) {
  // FMA-free on purpose: must stay bit-exact with the scalar reference.
  const __m256i idx = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 v = _mm256_loadu_ps(x + 2 * i);
    const __m256 sq = _mm256_mul_ps(v, v);
    const __m256 sum = _mm256_add_ps(sq, _mm256_permute_ps(sq, 0xB1));
    const __m256 packed = _mm256_permutevar8x32_ps(sum, idx);
    _mm256_storeu_pd(power + i, _mm256_cvtps_pd(_mm256_castps256_ps128(packed)));
  }
  if (i < n) sse2_impl::norm_interleaved(power + i, x + 2 * i, n - i);
}

PSTAP_AVX2 void cdot(const float* x, const float* y, std::size_t n,
                     float* out_re, float* out_im) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 vx = _mm256_loadu_ps(x + 2 * i);
    const __m256 vy = _mm256_loadu_ps(y + 2 * i);
    const __m256 xre = _mm256_moveldup_ps(vx);
    const __m256 xim = _mm256_movehdup_ps(vx);
    const __m256 ysw = _mm256_permute_ps(vy, 0xB1);
    // even lanes: xr*yr + xi*yi; odd lanes: xr*yi - xi*yr.
    acc = _mm256_add_ps(
        acc, _mm256_fmsubadd_ps(xre, vy, _mm256_mul_ps(xim, ysw)));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float acc_r = lanes[0] + lanes[2] + lanes[4] + lanes[6];
  float acc_i = lanes[1] + lanes[3] + lanes[5] + lanes[7];
  for (; i < n; ++i) {
    const float xr = x[2 * i], xi = x[2 * i + 1];
    const float yr = y[2 * i], yi = y[2 * i + 1];
    acc_r += xr * yr + xi * yi;
    acc_i += xr * yi - xi * yr;
  }
  *out_re = acc_r;
  *out_im = acc_i;
}

namespace {

// Single C row of the planar GEMM: crow += sum_p a(p) * brow_p, four
// complex columns per step. Shared by the m-remainder of cgemm_planar.
// The wr and wp products accumulate into separate registers (summed once at
// the end) so each chain retires one FMA per k-step — a fused chain would
// serialize two dependent FMAs per step and halve the retire rate.
PSTAP_AVX2 inline void cgemm_planar_row(float* crow, const float* arow_re,
                                        const float* arow_im, std::size_t k,
                                        const float* b, std::size_t ldb,
                                        std::size_t n, __m256 signs) {
  std::size_t l = 0;
  for (; l + 4 <= n; l += 4) {
    __m256 acc_a = _mm256_loadu_ps(crow + 2 * l);
    __m256 acc_b = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
      const __m256 vx = _mm256_loadu_ps(b + 2 * p * ldb + 2 * l);
      const __m256 xsw = _mm256_permute_ps(vx, 0xB1);
      const __m256 wr = _mm256_broadcast_ss(arow_re + p);
      const __m256 wp = _mm256_xor_ps(_mm256_broadcast_ss(arow_im + p), signs);
      acc_a = _mm256_fmadd_ps(wr, vx, acc_a);
      acc_b = _mm256_fmadd_ps(wp, xsw, acc_b);
    }
    _mm256_storeu_ps(crow + 2 * l, _mm256_add_ps(acc_a, acc_b));
  }
  for (; l < n; ++l) {
    float acc_r = crow[2 * l], acc_i = crow[2 * l + 1];
    for (std::size_t p = 0; p < k; ++p) {
      const float wr = arow_re[p], wi = arow_im[p];
      const float xr = b[2 * p * ldb + 2 * l], xi = b[2 * p * ldb + 2 * l + 1];
      acc_r += wr * xr - wi * xi;
      acc_i += wr * xi + wi * xr;
    }
    crow[2 * l] = acc_r;
    crow[2 * l + 1] = acc_i;
  }
}

}  // namespace

PSTAP_AVX2 void cgemm_planar(float* c, std::size_t ldc, const float* ar,
                             const float* ai, std::size_t m, std::size_t k,
                             const float* b, std::size_t ldb, std::size_t n) {
  // Register blocking: 4 C rows x 4 complex columns held in ymm accumulators
  // across the whole k loop, so each B row chunk is loaded once per 4 output
  // rows. A is planar (packed by the caller), so the per-row scalars are
  // plain broadcasts; the sign mask folds the interleaved-lane negation of
  // the imag part into the xor. Each row keeps separate wr/wp partial
  // accumulators (one FMA chain each, joined after the k loop): a single
  // accumulator would serialize two dependent FMAs per k-step and the
  // 4-cycle FMA latency, not the FMA ports, would bound the loop.
  const __m256 signs = _mm256_setr_ps(-0.0f, 0.0f, -0.0f, 0.0f,  //
                                      -0.0f, 0.0f, -0.0f, 0.0f);
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    float* c0 = c + 2 * i * ldc;
    float* c1 = c0 + 2 * ldc;
    float* c2 = c1 + 2 * ldc;
    float* c3 = c2 + 2 * ldc;
    const float* ar0 = ar + i * k;
    const float* ai0 = ai + i * k;
    std::size_t l = 0;
    for (; l + 4 <= n; l += 4) {
      __m256 acc0a = _mm256_loadu_ps(c0 + 2 * l);
      __m256 acc1a = _mm256_loadu_ps(c1 + 2 * l);
      __m256 acc2a = _mm256_loadu_ps(c2 + 2 * l);
      __m256 acc3a = _mm256_loadu_ps(c3 + 2 * l);
      __m256 acc0b = _mm256_setzero_ps();
      __m256 acc1b = _mm256_setzero_ps();
      __m256 acc2b = _mm256_setzero_ps();
      __m256 acc3b = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 vx = _mm256_loadu_ps(b + 2 * p * ldb + 2 * l);
        const __m256 xsw = _mm256_permute_ps(vx, 0xB1);
        __m256 wr = _mm256_broadcast_ss(ar0 + p);
        __m256 wp = _mm256_xor_ps(_mm256_broadcast_ss(ai0 + p), signs);
        acc0a = _mm256_fmadd_ps(wr, vx, acc0a);
        acc0b = _mm256_fmadd_ps(wp, xsw, acc0b);
        wr = _mm256_broadcast_ss(ar0 + k + p);
        wp = _mm256_xor_ps(_mm256_broadcast_ss(ai0 + k + p), signs);
        acc1a = _mm256_fmadd_ps(wr, vx, acc1a);
        acc1b = _mm256_fmadd_ps(wp, xsw, acc1b);
        wr = _mm256_broadcast_ss(ar0 + 2 * k + p);
        wp = _mm256_xor_ps(_mm256_broadcast_ss(ai0 + 2 * k + p), signs);
        acc2a = _mm256_fmadd_ps(wr, vx, acc2a);
        acc2b = _mm256_fmadd_ps(wp, xsw, acc2b);
        wr = _mm256_broadcast_ss(ar0 + 3 * k + p);
        wp = _mm256_xor_ps(_mm256_broadcast_ss(ai0 + 3 * k + p), signs);
        acc3a = _mm256_fmadd_ps(wr, vx, acc3a);
        acc3b = _mm256_fmadd_ps(wp, xsw, acc3b);
      }
      _mm256_storeu_ps(c0 + 2 * l, _mm256_add_ps(acc0a, acc0b));
      _mm256_storeu_ps(c1 + 2 * l, _mm256_add_ps(acc1a, acc1b));
      _mm256_storeu_ps(c2 + 2 * l, _mm256_add_ps(acc2a, acc2b));
      _mm256_storeu_ps(c3 + 2 * l, _mm256_add_ps(acc3a, acc3b));
    }
    if (l < n) {
      for (std::size_t rr = 0; rr < 4; ++rr) {
        cgemm_planar_row(c + 2 * (i + rr) * ldc + 2 * l, ar + (i + rr) * k,
                         ai + (i + rr) * k, k, b + 2 * l, ldb, n - l, signs);
      }
    }
  }
  // 2-row remainder block (the test_small beam count): still shares each B
  // chunk load + swap between the rows instead of falling back to
  // row-at-a-time.
  if (i + 2 <= m) {
    float* c0 = c + 2 * i * ldc;
    float* c1 = c0 + 2 * ldc;
    const float* ar0 = ar + i * k;
    const float* ai0 = ai + i * k;
    std::size_t l = 0;
    for (; l + 4 <= n; l += 4) {
      __m256 acc0a = _mm256_loadu_ps(c0 + 2 * l);
      __m256 acc1a = _mm256_loadu_ps(c1 + 2 * l);
      __m256 acc0b = _mm256_setzero_ps();
      __m256 acc1b = _mm256_setzero_ps();
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 vx = _mm256_loadu_ps(b + 2 * p * ldb + 2 * l);
        const __m256 xsw = _mm256_permute_ps(vx, 0xB1);
        __m256 wr = _mm256_broadcast_ss(ar0 + p);
        __m256 wp = _mm256_xor_ps(_mm256_broadcast_ss(ai0 + p), signs);
        acc0a = _mm256_fmadd_ps(wr, vx, acc0a);
        acc0b = _mm256_fmadd_ps(wp, xsw, acc0b);
        wr = _mm256_broadcast_ss(ar0 + k + p);
        wp = _mm256_xor_ps(_mm256_broadcast_ss(ai0 + k + p), signs);
        acc1a = _mm256_fmadd_ps(wr, vx, acc1a);
        acc1b = _mm256_fmadd_ps(wp, xsw, acc1b);
      }
      _mm256_storeu_ps(c0 + 2 * l, _mm256_add_ps(acc0a, acc0b));
      _mm256_storeu_ps(c1 + 2 * l, _mm256_add_ps(acc1a, acc1b));
    }
    if (l < n) {
      cgemm_planar_row(c0 + 2 * l, ar0, ai0, k, b + 2 * l, ldb, n - l, signs);
      cgemm_planar_row(c1 + 2 * l, ar0 + k, ai0 + k, k, b + 2 * l, ldb, n - l,
                       signs);
    }
    i += 2;
  }
  for (; i < m; ++i) {
    cgemm_planar_row(c + 2 * i * ldc, ar + i * k, ai + i * k, k, b, ldb, n,
                     signs);
  }
}

PSTAP_AVX2 void cdotu(const float* x, const float* y, std::size_t n,
                      float* out_re, float* out_im) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 vx = _mm256_loadu_ps(x + 2 * i);
    const __m256 vy = _mm256_loadu_ps(y + 2 * i);
    const __m256 xre = _mm256_moveldup_ps(vx);
    const __m256 xim = _mm256_movehdup_ps(vx);
    const __m256 ysw = _mm256_permute_ps(vy, 0xB1);
    // even lanes: xr*yr - xi*yi; odd lanes: xr*yi + xi*yr.
    acc = _mm256_add_ps(
        acc, _mm256_fmaddsub_ps(xre, vy, _mm256_mul_ps(xim, ysw)));
  }
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, acc);
  float acc_r = lanes[0] + lanes[2] + lanes[4] + lanes[6];
  float acc_i = lanes[1] + lanes[3] + lanes[5] + lanes[7];
  for (; i < n; ++i) {
    const float xr = x[2 * i], xi = x[2 * i + 1];
    const float yr = y[2 * i], yi = y[2 * i + 1];
    acc_r += xr * yr - xi * yi;
    acc_i += xr * yi + xi * yr;
  }
  *out_re = acc_r;
  *out_im = acc_i;
}

PSTAP_AVX2 void cmac_conj_arr(float* y, const float* a, float xr, float xi,
                              std::size_t n) {
  const __m256 vc1 = _mm256_setr_ps(xr, -xr, xr, -xr, xr, -xr, xr, -xr);
  const __m256 vc2 = _mm256_set1_ps(xi);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256 va = _mm256_loadu_ps(a + 2 * i);
    const __m256 vy = _mm256_loadu_ps(y + 2 * i);
    const __m256 asw = _mm256_permute_ps(va, 0xB1);
    const __m256 t = _mm256_fmadd_ps(va, vc1, _mm256_mul_ps(asw, vc2));
    _mm256_storeu_ps(y + 2 * i, _mm256_add_ps(vy, t));
  }
  if (i < n) sse2_impl::cmac_conj_arr(y + 2 * i, a + 2 * i, xr, xi, n - i);
}

PSTAP_AVX2 void zherk_cf_lower(double* r, std::size_t ldr, const float* s,
                               std::size_t lds, std::size_t dof, std::size_t t,
                               double alpha) {
  // Accumulates conj(s_i) . s_j pairwise and conjugates the result at the
  // end (conj(sum conj(a) b) == sum a conj(b)); alpha applied once.
  // Reduction order and FMA differ from scalar — tolerance kernel.
  //
  // The snapshot rows are widened float->double ONCE into a reused buffer
  // (the widening is exact, so this changes nothing numerically): the
  // O(dof^2) dot loops would otherwise re-convert every row dof times and
  // the cvtps_pd traffic, not the FMA ports, would dominate.
  static thread_local AlignedVector<double> wide;
  wide.resize(dof * 2 * t);
  for (std::size_t d = 0; d < dof; ++d) {
    const float* src = s + 2 * d * lds;
    double* dst = wide.data() + d * 2 * t;
    std::size_t g = 0;
    for (; g + 2 <= t; g += 2) {
      _mm256_storeu_pd(dst + 2 * g, _mm256_cvtps_pd(_mm_loadu_ps(src + 2 * g)));
    }
    for (; g < t; ++g) {
      dst[2 * g] = static_cast<double>(src[2 * g]);
      dst[2 * g + 1] = static_cast<double>(src[2 * g + 1]);
    }
  }

  // Per pair: two independent fmadd chains per unrolled half (are*b and
  // aim*bswap run in separate accumulators, combined once at the end via
  // addsub) so the loop retires at FMA throughput instead of serializing
  // on the 4-cycle add latency of a single accumulator.
  const __m256d negzero = _mm256_set1_pd(-0.0);
  for (std::size_t i = 0; i < dof; ++i) {
    const double* wi_row = wide.data() + i * 2 * t;
    for (std::size_t j = 0; j <= i; ++j) {
      const double* wj_row = wide.data() + j * 2 * t;
      __m256d acc_re0 = _mm256_setzero_pd();
      __m256d acc_im0 = _mm256_setzero_pd();
      __m256d acc_re1 = _mm256_setzero_pd();
      __m256d acc_im1 = _mm256_setzero_pd();
      std::size_t g = 0;
      for (; g + 4 <= t; g += 4) {
        const __m256d va0 = _mm256_loadu_pd(wi_row + 2 * g);
        const __m256d vb0 = _mm256_loadu_pd(wj_row + 2 * g);
        const __m256d va1 = _mm256_loadu_pd(wi_row + 2 * g + 4);
        const __m256d vb1 = _mm256_loadu_pd(wj_row + 2 * g + 4);
        // acc_re lanes: (ar*br | ar*bi); acc_im lanes: (ai*bi | ai*br).
        acc_re0 = _mm256_fmadd_pd(_mm256_movedup_pd(va0), vb0, acc_re0);
        acc_im0 = _mm256_fmadd_pd(_mm256_permute_pd(va0, 0xF),
                                  _mm256_permute_pd(vb0, 0x5), acc_im0);
        acc_re1 = _mm256_fmadd_pd(_mm256_movedup_pd(va1), vb1, acc_re1);
        acc_im1 = _mm256_fmadd_pd(_mm256_permute_pd(va1, 0xF),
                                  _mm256_permute_pd(vb1, 0x5), acc_im1);
      }
      // even lanes want re0+im0 (ar*br + ai*bi), odd lanes re0-im0
      // (ar*bi - ai*br): addsub(a, b) = (a-b | a+b), so negate b first.
      const __m256d acc = _mm256_addsub_pd(
          _mm256_add_pd(acc_re0, acc_re1),
          _mm256_xor_pd(_mm256_add_pd(acc_im0, acc_im1), negzero));
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, acc);
      double sum_re = lanes[0] + lanes[2];
      double sum_im = lanes[1] + lanes[3];
      for (; g < t; ++g) {
        const double ar = wi_row[2 * g], ai = wi_row[2 * g + 1];
        const double br = wj_row[2 * g], bi = wj_row[2 * g + 1];
        sum_re += ar * br + ai * bi;
        sum_im += ar * bi - ai * br;
      }
      r[2 * (i * ldr + j)] += alpha * sum_re;
      r[2 * (i * ldr + j) + 1] += alpha * (-sum_im);
    }
  }
}

#undef PSTAP_AVX2

// avx2 WITHOUT fma in the target set: the zmac pair must stay FMA-free so
// results are bit-exact with the scalar reference on every backend, and a
// target that lacks FMA makes it impossible for fp-contract to fuse the
// mul+add intrinsic pairs below.
#define PSTAP_AVX2_NOFMA __attribute__((target("avx2")))

PSTAP_AVX2_NOFMA void zmac(double* y, const double* x, double cr, double ci,
                           std::size_t n) {
  const __m256d vcr = _mm256_set1_pd(cr);
  const __m256d vcp = _mm256_setr_pd(-ci, ci, -ci, ci);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d vx = _mm256_loadu_pd(x + 2 * i);
    const __m256d vy = _mm256_loadu_pd(y + 2 * i);
    const __m256d xsw = _mm256_permute_pd(vx, 0x5);
    const __m256d t =
        _mm256_add_pd(_mm256_mul_pd(vcr, vx), _mm256_mul_pd(vcp, xsw));
    _mm256_storeu_pd(y + 2 * i, _mm256_add_pd(vy, t));
  }
  if (i < n) sse2_impl::zmac(y + 2 * i, x + 2 * i, cr, ci, n - i);
}

PSTAP_AVX2_NOFMA void zmac_conj(double* y, const double* x, double cr,
                                double ci, std::size_t n) {
  const __m256d vcr = _mm256_set1_pd(cr);
  const __m256d vcp = _mm256_setr_pd(ci, -ci, ci, -ci);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m256d vx = _mm256_loadu_pd(x + 2 * i);
    const __m256d vy = _mm256_loadu_pd(y + 2 * i);
    const __m256d xsw = _mm256_permute_pd(vx, 0x5);
    const __m256d t =
        _mm256_add_pd(_mm256_mul_pd(vcr, vx), _mm256_mul_pd(vcp, xsw));
    _mm256_storeu_pd(y + 2 * i, _mm256_add_pd(vy, t));
  }
  if (i < n) sse2_impl::zmac_conj(y + 2 * i, x + 2 * i, cr, ci, n - i);
}

#undef PSTAP_AVX2_NOFMA

constexpr Ops kOps = {
    .butterfly = butterfly,
    .butterfly_rows = butterfly_rows,
    .butterfly2_rows = butterfly2_rows,
    .cscale = cscale,
    .cscale_to = cscale_to,
    .cscale_rows = cscale_rows,
    .cscale_rows_to = cscale_rows_to,
    .cmul_interleaved = cmul_interleaved,
    .scale = scale,
    .deinterleave_scale = deinterleave_scale,
    .interleave = interleave,
    .cmac_conj = cmac_conj,
    .norm_interleaved = norm_interleaved,
    .cdot = cdot,
    .cgemm_planar = cgemm_planar,
    .cdotu = cdotu,
    .cmac_conj_arr = cmac_conj_arr,
    .zherk_cf_lower = zherk_cf_lower,
    .zmac = zmac,
    .zmac_conj = zmac_conj,
};

}  // namespace avx2_impl

#endif  // PSTAP_SIMD_X86

// ----------------------------------------------------------- dispatch ----

namespace {

const Ops* table_for(Backend b) noexcept {
#if PSTAP_SIMD_X86
  switch (b) {
    case Backend::kAvx2:
      return &avx2_impl::kOps;
    case Backend::kSse2:
      return &sse2_impl::kOps;
    case Backend::kScalar:
      return &scalar_impl::kOps;
  }
#else
  (void)b;
#endif
  return &scalar_impl::kOps;
}

Backend clamp_supported(Backend b) noexcept {
  const Backend best = detect_best();
  return static_cast<int>(b) <= static_cast<int>(best) ? b : best;
}

void record_backend(Backend b) noexcept {
  obs::Registry::global().gauge("simd.backend").set(static_cast<int>(b));
}

std::atomic<const Ops*> g_active_ops{nullptr};
std::atomic<int> g_active_backend{-1};

Backend resolve_from_env() noexcept {
  Backend chosen = detect_best();
  const char* env = std::getenv("PSTAP_SIMD");
  if (env != nullptr && *env != '\0' && std::strcmp(env, "auto") != 0) {
    Backend requested = chosen;
    bool known = true;
    if (std::strcmp(env, "scalar") == 0) {
      requested = Backend::kScalar;
    } else if (std::strcmp(env, "sse2") == 0) {
      requested = Backend::kSse2;
    } else if (std::strcmp(env, "avx2") == 0) {
      requested = Backend::kAvx2;
    } else {
      known = false;
      std::fprintf(stderr,
                   "pstap: PSTAP_SIMD='%s' not recognized "
                   "(scalar|sse2|avx2|auto); using %s\n",
                   env, backend_name(chosen));
    }
    if (known) {
      const Backend applied = clamp_supported(requested);
      if (applied != requested) {
        std::fprintf(stderr,
                     "pstap: PSTAP_SIMD=%s unsupported on this CPU; "
                     "falling back to %s\n",
                     backend_name(requested), backend_name(applied));
        obs::Registry::global().counter("simd.requested_unsupported").add();
      }
      chosen = applied;
    }
  }
  return chosen;
}

bool ftz_wanted() noexcept {
  const char* env = std::getenv("PSTAP_FTZ");
  return env == nullptr || std::strcmp(env, "0") != 0;
}

}  // namespace

bool init_thread() noexcept {
#if PSTAP_SIMD_X86
  if (ftz_wanted()) {
    // MXCSR bits 15 (FTZ) and 6 (DAZ); per-thread state.
    _mm_setcsr(_mm_getcsr() | 0x8040u);
    obs::Registry::global().gauge("simd.ftz").set(1);
    return true;
  }
#endif
  return false;
}

const char* backend_name(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Backend detect_best() noexcept {
#if PSTAP_SIMD_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Backend::kAvx2;
  }
  if (__builtin_cpu_supports("sse2")) return Backend::kSse2;
#endif
  return Backend::kScalar;
}

Backend active() noexcept {
  int b = g_active_backend.load(std::memory_order_acquire);
  if (b < 0) {
    const Backend resolved = resolve_from_env();
    // Several threads may race the first resolution; they all compute the
    // same value, so last-write-wins is fine.
    g_active_ops.store(table_for(resolved), std::memory_order_release);
    g_active_backend.store(static_cast<int>(resolved), std::memory_order_release);
    record_backend(resolved);
    init_thread();
    return resolved;
  }
  return static_cast<Backend>(b);
}

const Ops& ops() noexcept {
  const Ops* t = g_active_ops.load(std::memory_order_acquire);
  if (t == nullptr) {
    active();
    t = g_active_ops.load(std::memory_order_acquire);
  }
  return *t;
}

const Ops& ops(Backend b) noexcept { return *table_for(clamp_supported(b)); }

Backend force_backend(Backend b) noexcept {
  const Backend applied = clamp_supported(b);
  g_active_ops.store(table_for(applied), std::memory_order_release);
  g_active_backend.store(static_cast<int>(applied), std::memory_order_release);
  record_backend(applied);
  return applied;
}

}  // namespace pstap::simd
