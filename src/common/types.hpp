// Fundamental value types and unit helpers used across pstap.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace pstap {

/// Single-precision complex sample — the radar data element type.
/// 8 bytes, matching the data volumes the paper reports for CPI files.
using cfloat = std::complex<float>;

/// Double-precision complex, used inside numerically sensitive kernels
/// (covariance accumulation, Cholesky) before rounding back to cfloat.
using cdouble = std::complex<double>;

/// Simulated or measured time in seconds.
using Seconds = double;

/// Byte-count convenience constants.
inline constexpr std::size_t KiB = 1024;
inline constexpr std::size_t MiB = 1024 * KiB;
inline constexpr std::size_t GiB = 1024 * MiB;

/// Convert a linear power ratio to decibels.
inline double to_db(double ratio) { return 10.0 * std::log10(ratio); }

/// Convert decibels to a linear power ratio.
inline double from_db(double db) { return std::pow(10.0, db / 10.0); }

/// Integer ceiling division for non-negative values.
template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Round `a` up to the next multiple of `b` (b > 0).
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

/// True if `v` is a power of two (v > 0).
constexpr bool is_pow2(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v >= 1).
constexpr std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace pstap
