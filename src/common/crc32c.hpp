// CRC32C (Castagnoli) — the checksum used for end-to-end chunk integrity in
// the pfs layer. Software slice-by-one implementation over the reflected
// polynomial 0x82F63B78; fast enough for test-scale data sets (a few hundred
// MB/s) and dependency-free, which matters more here than peak throughput.
// Known-answer: crc32c of the ASCII bytes "123456789" is 0xE3069283.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace pstap {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// Incremental update: feed `crc32c_update(previous, ...)` successive spans.
/// Start from 0 (crc32c() below handles the pre/post inversion).
inline std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                                   std::size_t len) {
  const auto& table = detail::crc32c_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xFFu];
  }
  return ~crc;
}

/// One-shot CRC32C of a buffer.
inline std::uint32_t crc32c(const void* data, std::size_t len) {
  return crc32c_update(0, data, len);
}

}  // namespace pstap
