// Deterministic fault injection for the I/O and communication paths.
//
// A FaultPlan is a seeded schedule of faults, armed per *site*. A site is a
// hierarchical dot-separated name identifying one injection point — e.g.
// "pfs.server.read.sd002" (chunk service of stripe directory 2),
// "pfs.file.read.cpi_rr1" (logical reads of one striped file), "mp.send",
// "pipeline.stage.Doppler filter". A schedule armed at a prefix applies to
// every site below it ("pfs.server.read" matches every stripe directory).
//
// Determinism: the decision for the i-th occurrence matched by a rule is a
// pure hash of (plan seed, rule site, i). Per-rule occurrence indices are
// handed out atomically, so the *set* of faulted occurrence indices is
// identical across runs with the same seed and arming — independent of
// thread interleaving — even though which thread draws which index may vary.
//
// Injection points call fault::inject(site). With no plan installed this is
// one relaxed atomic load; with a plan it applies armed delays in place and
// raises InjectedError for armed failures. Plans are installed process-wide
// with the RAII FaultScope (nesting restores the previous plan), so the
// whole stack — pfs service threads, mp ranks, pipeline stages — sees one
// consistent scenario without plumbing a handle through every layer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pstap::fault {

/// What an injection site must do for one occurrence. Fields compose: a
/// site can be delayed *and* then fail (a slow, then dead server).
struct Decision {
  bool fail = false;            ///< raise InjectedError
  bool permanent = false;       ///< the error is permanent (retries are futile)
  bool corrupt = false;         ///< flip bits in the payload before delivery
  Seconds delay = 0;            ///< sleep this long before proceeding
  double deliver_fraction = 1;  ///< partial read: serve only this fraction

  bool faulted() const {
    return fail || corrupt || delay > 0 || deliver_fraction < 1.0;
  }
};

/// Error raised at a faulted site. Derives IoError so the existing error
/// handling (engine chunk capture, retry loops) treats it like a real I/O
/// failure; permanent() tells retry layers to give up immediately.
class InjectedError : public IoError {
 public:
  InjectedError(const std::string& what, bool permanent)
      : IoError(what), permanent_(permanent) {}
  bool permanent() const noexcept { return permanent_; }

 private:
  bool permanent_;
};

/// Raised by an armed crash site: the rank/task hosting the site dies on
/// the spot. Deliberately NOT an IoError — retry loops and chunk-error
/// capture must never swallow a death; only a supervision layer that
/// respawns the whole rank may catch it.
class InjectedCrash : public RuntimeError {
 public:
  InjectedCrash(const std::string& what, std::string site, std::uint64_t index)
      : RuntimeError(what), site_(std::move(site)), index_(index) {}
  const std::string& site() const noexcept { return site_; }
  std::uint64_t index() const noexcept { return index_; }

 private:
  std::string site_;
  std::uint64_t index_;  ///< caller-supplied index (the CPI) at the crash
};

/// A seeded, per-site fault schedule. Thread-safe. Arm before installing;
/// arming while injection sites are live is safe but the occurrence
/// indices already handed out are not revisited.
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  std::uint64_t seed() const noexcept { return seed_; }

  // ------------------------------------------------------------- arming --
  // `site` is matched against injection sites by dot-boundary prefix:
  // a rule at "a.b" applies to "a.b" and "a.b.c", not to "a.bc".

  /// With `probability`, sleep uniform [min_delay, max_delay) at the site.
  /// `max_hits` bounds how many occurrences fire (0 = unlimited).
  void arm_delay(std::string site, double probability, Seconds min_delay,
                 Seconds max_delay, std::uint64_t max_hits = 0);

  /// With `probability`, fail the occurrence with a retryable error.
  /// `max_hits` bounds the total failures injected (0 = unlimited).
  void arm_transient_error(std::string site, double probability,
                           std::uint64_t max_hits = 0);

  /// Every matched occurrence with per-rule index >= first_occurrence fails
  /// permanently — a server that dies and never comes back.
  void arm_permanent_error(std::string site, std::uint64_t first_occurrence = 0);

  /// With `probability`, deliver only `fraction` (in (0,1)) of the bytes —
  /// a short read, surfaced by the serving site as a retryable error.
  void arm_partial_read(std::string site, double probability, double fraction,
                        std::uint64_t max_hits = 0);

  /// Kill the site when the caller-supplied index equals `at_index` — rank
  /// death at a chosen CPI/phase. Crash sites are indexed (inject_crash
  /// passes the CPI), not occurrence-counted, so "kill rank 3 at CPI 2"
  /// stays exact across respawns; each crash rule fires at most once, so a
  /// respawned rank replaying the same CPI survives it.
  void arm_crash(std::string site, std::uint64_t at_index);

  /// With `probability`, bit-flip the payload served at the site before it
  /// is delivered (a corrupted chunk). `max_hits` bounds the corruptions
  /// injected (0 = unlimited).
  void arm_corruption(std::string site, double probability,
                      std::uint64_t max_hits = 0);

  // ------------------------------------------------------------ querying --

  /// Decision for the next occurrence at `site`. Counts the occurrence
  /// even when nothing is armed (the plan doubles as an I/O trace counter).
  /// Crash rules are not consulted here (see should_crash).
  Decision next(std::string_view site);

  /// True when a crash rule armed at `site` (or a dot-prefix of it) names
  /// this `index` and has not fired yet. Marks the rule fired. Does not
  /// advance any occurrence counter — crash sites are indexed by the
  /// caller (the CPI), independent of the occurrence-hashed fault kinds.
  bool should_crash(std::string_view site, std::uint64_t index);

  /// Occurrences recorded for this exact site string.
  std::uint64_t occurrences(std::string_view site) const;

  /// Totals across all sites, for test assertions.
  std::uint64_t injected_delays() const { return delays_.load(); }
  std::uint64_t injected_errors() const { return errors_.load(); }
  std::uint64_t injected_partials() const { return partials_.load(); }
  std::uint64_t injected_crashes() const { return crashes_.load(); }
  std::uint64_t injected_corruptions() const { return corruptions_.load(); }

 private:
  enum class Kind { kDelay, kTransient, kPermanent, kPartial, kCrash, kCorrupt };

  struct Rule {
    std::string site;
    Kind kind;
    double probability = 1.0;
    Seconds min_delay = 0, max_delay = 0;
    double fraction = 1.0;
    std::uint64_t max_hits = 0;         // 0 = unlimited
    std::uint64_t first_occurrence = 0; // permanent rules only
    std::uint64_t at_index = 0;         // crash rules only (the CPI)
    std::atomic<std::uint64_t> matched{0};
    std::atomic<std::uint64_t> hits{0};
  };

  static bool rule_matches(const std::string& rule_site, std::string_view site);

  std::uint64_t seed_;
  mutable std::mutex mu_;  // guards rules_ vector growth + site counters
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<std::pair<std::string, std::uint64_t>> site_counts_;
  std::atomic<std::uint64_t> delays_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> partials_{0};
  std::atomic<std::uint64_t> crashes_{0};
  std::atomic<std::uint64_t> corruptions_{0};
};

/// Install `plan` as the process-wide plan for this scope; restores the
/// previously installed plan (usually none) on destruction.
class FaultScope {
 public:
  explicit FaultScope(std::shared_ptr<FaultPlan> plan);
  ~FaultScope();
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::shared_ptr<FaultPlan> previous_;
};

/// The currently installed plan (nullptr outside any FaultScope).
std::shared_ptr<FaultPlan> current_plan();

/// Injection entry point. Applies armed delays in place, throws
/// InjectedError for armed failures, and returns the decision so sites
/// that support partial delivery can truncate. Near-free with no plan.
Decision inject(std::string_view site);

/// Delay-only variant for sites with no error-recovery story (pipeline
/// stage boundaries): applies delays, ignores armed failures.
void inject_delay_only(std::string_view site);

/// Crash entry point: throws InjectedCrash when a crash is armed at `site`
/// for `index` (the caller's CPI). Call only from code running under a
/// supervision layer that respawns the dead rank — without one, a killed
/// rank leaves its peers blocked forever.
void inject_crash(std::string_view site, std::uint64_t index);

}  // namespace pstap::fault
