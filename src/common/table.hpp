// Plain-text table rendering for the benchmark harness.
//
// The paper reports each experiment as a table of per-task phase timings plus
// throughput/latency summary rows; TablePrinter renders the same layout to
// stdout so bench output can be compared side by side with the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace pstap {

/// A cell is either text or a number rendered with a fixed precision.
struct TableCell {
  std::variant<std::string, double> value;
  int precision = 4;

  TableCell(const char* s) : value(std::string(s)) {}          // NOLINT(google-explicit-constructor)
  TableCell(std::string s) : value(std::move(s)) {}            // NOLINT(google-explicit-constructor)
  TableCell(double v, int prec = 4) : value(v), precision(prec) {}  // NOLINT(google-explicit-constructor)
  TableCell(int v) : value(static_cast<double>(v)), precision(0) {} // NOLINT(google-explicit-constructor)

  std::string render() const;
};

/// Accumulates rows and renders an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row (column labels).
  void set_header(std::vector<TableCell> header) { header_ = std::move(header); }

  /// Append one data row. Rows may be ragged; missing cells render empty.
  void add_row(std::vector<TableCell> row) { rows_.push_back(std::move(row)); }

  /// Append a horizontal separator line.
  void add_separator() { separators_.push_back(rows_.size()); }

  /// Render to `os`.
  void print(std::ostream& os) const;

  /// Render to a string (used by tests).
  std::string to_string() const;

 private:
  std::string title_;
  std::vector<TableCell> header_;
  std::vector<std::vector<TableCell>> rows_;
  std::vector<std::size_t> separators_;  // separator before rows_[i]
};

}  // namespace pstap
