// Monotonic wall-clock helpers for the functional (thread) backend and for
// the google-benchmark harnesses.
#pragma once

#include <chrono>

#include "common/types.hpp"

namespace pstap {

/// Seconds since an arbitrary monotonic epoch.
inline Seconds monotonic_now() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Scoped stopwatch accumulating into a Seconds slot.
///
///   Seconds t = 0; { StopWatch sw(t); work(); }  // t += elapsed
class StopWatch {
 public:
  explicit StopWatch(Seconds& sink) : sink_(sink), start_(monotonic_now()) {}
  ~StopWatch() { sink_ += monotonic_now() - start_; }
  StopWatch(const StopWatch&) = delete;
  StopWatch& operator=(const StopWatch&) = delete;

 private:
  Seconds& sink_;
  Seconds start_;
};

/// Manual timer with lap support.
class Timer {
 public:
  Timer() : start_(monotonic_now()) {}
  void reset() { start_ = monotonic_now(); }
  Seconds elapsed() const { return monotonic_now() - start_; }

 private:
  Seconds start_;
};

}  // namespace pstap
