// Error handling primitives shared by every pstap module.
//
// The library distinguishes two failure classes:
//   * programming errors (precondition violations) -> PSTAP_REQUIRE, which
//     throws pstap::PreconditionError so tests can assert on misuse;
//   * environmental errors (I/O failures, resource exhaustion) ->
//     pstap::IoError / pstap::RuntimeError.
//
// Following the C++ Core Guidelines (E.2, I.5) we prefer exceptions carrying
// a formatted message over error codes for these non-hot-path failures.
#pragma once

#include <stdexcept>
#include <string>

namespace pstap {

/// Thrown when a documented precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an operating-system-level I/O operation fails.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown for internal invariant violations that are not caller misuse.
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_precondition(const char* expr, const char* file, int line,
                                     const std::string& msg);
[[noreturn]] void throw_runtime(const char* file, int line, const std::string& msg);
[[noreturn]] void throw_io(const char* file, int line, const std::string& msg,
                           int errno_value);
}  // namespace detail

}  // namespace pstap

/// Validate a documented precondition of a public entry point.
#define PSTAP_REQUIRE(expr, msg)                                              \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::pstap::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                         \
  } while (false)

/// Signal an internal invariant violation with context.
#define PSTAP_FAIL(msg) ::pstap::detail::throw_runtime(__FILE__, __LINE__, (msg))

/// Check an internal invariant (not caller misuse).
#define PSTAP_CHECK(expr, msg)                                 \
  do {                                                         \
    if (!(expr)) {                                             \
      ::pstap::detail::throw_runtime(__FILE__, __LINE__, (msg)); \
    }                                                          \
  } while (false)

/// Raise an IoError annotated with errno.
#define PSTAP_IO_FAIL(msg, errno_value) \
  ::pstap::detail::throw_io(__FILE__, __LINE__, (msg), (errno_value))
