#include "common/fault.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "obs/trace.hpp"

namespace pstap::fault {
namespace {

// SplitMix64 finalizer (same mixing as common/rng.hpp). The decision for
// occurrence i of a rule is a pure function of (seed, rule site, i), so the
// schedule is reproducible no matter which thread draws which occurrence.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(std::string_view site) {
  // FNV-1a, folded through mix64 for avalanche.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

double unit_uniform(std::uint64_t seed, std::uint64_t site_hash,
                    std::uint64_t occurrence, std::uint64_t salt) {
  const std::uint64_t bits =
      mix64(seed ^ mix64(site_hash + salt) ^ mix64(occurrence * 0x9e3779b97f4a7c15ULL + salt));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

// The process-wide installed plan. A relaxed atomic flag keeps inject()
// one load when no plan is installed (the common case in production runs).
std::atomic<bool> g_installed{false};
std::mutex g_plan_mu;
std::shared_ptr<FaultPlan> g_plan;

std::shared_ptr<FaultPlan> swap_plan(std::shared_ptr<FaultPlan> plan) {
  std::lock_guard<std::mutex> lock(g_plan_mu);
  std::swap(g_plan, plan);
  g_installed.store(g_plan != nullptr, std::memory_order_release);
  return plan;
}

}  // namespace

bool FaultPlan::rule_matches(const std::string& rule_site,
                             std::string_view site) {
  if (site.size() < rule_site.size()) return false;
  if (site.compare(0, rule_site.size(), rule_site) != 0) return false;
  return site.size() == rule_site.size() || site[rule_site.size()] == '.';
}

void FaultPlan::arm_delay(std::string site, double probability,
                          Seconds min_delay, Seconds max_delay,
                          std::uint64_t max_hits) {
  PSTAP_REQUIRE(probability >= 0 && probability <= 1,
                "fault: delay probability must be in [0,1]");
  PSTAP_REQUIRE(min_delay >= 0 && max_delay >= min_delay,
                "fault: delay range must satisfy 0 <= min <= max");
  auto rule = std::make_unique<Rule>();
  rule->site = std::move(site);
  rule->kind = Kind::kDelay;
  rule->probability = probability;
  rule->min_delay = min_delay;
  rule->max_delay = max_delay;
  rule->max_hits = max_hits;
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FaultPlan::arm_transient_error(std::string site, double probability,
                                    std::uint64_t max_hits) {
  PSTAP_REQUIRE(probability >= 0 && probability <= 1,
                "fault: error probability must be in [0,1]");
  auto rule = std::make_unique<Rule>();
  rule->site = std::move(site);
  rule->kind = Kind::kTransient;
  rule->probability = probability;
  rule->max_hits = max_hits;
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FaultPlan::arm_permanent_error(std::string site,
                                    std::uint64_t first_occurrence) {
  auto rule = std::make_unique<Rule>();
  rule->site = std::move(site);
  rule->kind = Kind::kPermanent;
  rule->first_occurrence = first_occurrence;
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FaultPlan::arm_partial_read(std::string site, double probability,
                                 double fraction, std::uint64_t max_hits) {
  PSTAP_REQUIRE(probability >= 0 && probability <= 1,
                "fault: partial-read probability must be in [0,1]");
  PSTAP_REQUIRE(fraction > 0 && fraction < 1,
                "fault: partial-read fraction must be in (0,1)");
  auto rule = std::make_unique<Rule>();
  rule->site = std::move(site);
  rule->kind = Kind::kPartial;
  rule->probability = probability;
  rule->fraction = fraction;
  rule->max_hits = max_hits;
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FaultPlan::arm_crash(std::string site, std::uint64_t at_index) {
  auto rule = std::make_unique<Rule>();
  rule->site = std::move(site);
  rule->kind = Kind::kCrash;
  rule->at_index = at_index;
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

void FaultPlan::arm_corruption(std::string site, double probability,
                               std::uint64_t max_hits) {
  PSTAP_REQUIRE(probability >= 0 && probability <= 1,
                "fault: corruption probability must be in [0,1]");
  auto rule = std::make_unique<Rule>();
  rule->site = std::move(site);
  rule->kind = Kind::kCorrupt;
  rule->probability = probability;
  rule->max_hits = max_hits;
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
}

bool FaultPlan::should_crash(std::string_view site, std::uint64_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& rule_ptr : rules_) {
    Rule& rule = *rule_ptr;
    if (rule.kind != Kind::kCrash || !rule_matches(rule.site, site)) continue;
    if (rule.at_index != index) continue;
    if (rule.hits.load(std::memory_order_relaxed) > 0) continue;  // fires once
    rule.hits.fetch_add(1, std::memory_order_relaxed);
    crashes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

Decision FaultPlan::next(std::string_view site) {
  Decision decision;
  std::lock_guard<std::mutex> lock(mu_);

  // Record the occurrence for this exact site (trace counter).
  auto it = std::find_if(site_counts_.begin(), site_counts_.end(),
                         [&](const auto& e) { return e.first == site; });
  if (it == site_counts_.end()) {
    site_counts_.emplace_back(std::string(site), 1);
  } else {
    ++it->second;
  }

  for (const auto& rule_ptr : rules_) {
    Rule& rule = *rule_ptr;
    if (!rule_matches(rule.site, site)) continue;
    const std::uint64_t occurrence =
        rule.matched.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t site_hash = hash_site(rule.site);

    switch (rule.kind) {
      case Kind::kDelay: {
        if (rule.max_hits && rule.hits.load(std::memory_order_relaxed) >= rule.max_hits) break;
        const double draw =
            unit_uniform(seed_, site_hash, occurrence, /*salt=*/0x11);
        if (draw < rule.probability) {
          const double frac =
              unit_uniform(seed_, site_hash, occurrence, /*salt=*/0x12);
          const Seconds d =
              rule.min_delay + frac * (rule.max_delay - rule.min_delay);
          decision.delay = std::max(decision.delay, d);
          rule.hits.fetch_add(1, std::memory_order_relaxed);
          delays_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case Kind::kTransient: {
        if (rule.max_hits && rule.hits.load(std::memory_order_relaxed) >= rule.max_hits) break;
        const double draw =
            unit_uniform(seed_, site_hash, occurrence, /*salt=*/0x21);
        if (draw < rule.probability) {
          decision.fail = true;
          rule.hits.fetch_add(1, std::memory_order_relaxed);
          errors_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case Kind::kPermanent: {
        if (occurrence >= rule.first_occurrence) {
          decision.fail = true;
          decision.permanent = true;
          rule.hits.fetch_add(1, std::memory_order_relaxed);
          errors_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case Kind::kPartial: {
        if (rule.max_hits && rule.hits.load(std::memory_order_relaxed) >= rule.max_hits) break;
        const double draw =
            unit_uniform(seed_, site_hash, occurrence, /*salt=*/0x31);
        if (draw < rule.probability) {
          decision.deliver_fraction =
              std::min(decision.deliver_fraction, rule.fraction);
          rule.hits.fetch_add(1, std::memory_order_relaxed);
          partials_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case Kind::kCorrupt: {
        if (rule.max_hits && rule.hits.load(std::memory_order_relaxed) >= rule.max_hits) break;
        const double draw =
            unit_uniform(seed_, site_hash, occurrence, /*salt=*/0x41);
        if (draw < rule.probability) {
          decision.corrupt = true;
          rule.hits.fetch_add(1, std::memory_order_relaxed);
          corruptions_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case Kind::kCrash:
        break;  // crash rules are indexed, consulted via should_crash()
    }
  }
  return decision;
}

std::uint64_t FaultPlan::occurrences(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::find_if(site_counts_.begin(), site_counts_.end(),
                         [&](const auto& e) { return e.first == site; });
  return it == site_counts_.end() ? 0 : it->second;
}

FaultScope::FaultScope(std::shared_ptr<FaultPlan> plan)
    : previous_(swap_plan(std::move(plan))) {}

FaultScope::~FaultScope() { swap_plan(std::move(previous_)); }

std::shared_ptr<FaultPlan> current_plan() {
  if (!g_installed.load(std::memory_order_acquire)) return nullptr;
  std::lock_guard<std::mutex> lock(g_plan_mu);
  return g_plan;
}

namespace {

/// Instant trace events make injected faults visible in timelines: one
/// marker per fired decision, named by fault kind, site in the args.
void trace_decision(std::string_view site, const Decision& decision) {
  if (!decision.faulted() || !obs::trace_enabled()) return;
  auto& recorder = obs::TraceRecorder::global();
  if (decision.delay > 0) {
    recorder.instant("fault", "fault.delay", obs::kLibraryPid, -1, site);
  }
  if (decision.fail) {
    recorder.instant("fault",
                     decision.permanent ? "fault.permanent" : "fault.transient",
                     obs::kLibraryPid, -1, site);
  }
  if (decision.deliver_fraction < 1.0) {
    recorder.instant("fault", "fault.partial_read", obs::kLibraryPid, -1, site);
  }
  if (decision.corrupt) {
    recorder.instant("fault", "fault.corrupt", obs::kLibraryPid, -1, site);
  }
}

}  // namespace

Decision inject(std::string_view site) {
  auto plan = current_plan();
  if (!plan) return {};
  Decision decision = plan->next(site);
  trace_decision(site, decision);
  if (decision.delay > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(decision.delay));
  }
  if (decision.fail) {
    throw InjectedError("injected fault at " + std::string(site) +
                            (decision.permanent ? " (permanent)" : " (transient)"),
                        decision.permanent);
  }
  return decision;
}

void inject_delay_only(std::string_view site) {
  auto plan = current_plan();
  if (!plan) return;
  Decision decision = plan->next(site);
  decision.fail = false;  // delay-only sites ignore armed failures
  trace_decision(site, decision);
  if (decision.delay > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(decision.delay));
  }
}

void inject_crash(std::string_view site, std::uint64_t index) {
  auto plan = current_plan();
  if (!plan || !plan->should_crash(site, index)) return;
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().instant("fault", "fault.crash", obs::kLibraryPid,
                                         static_cast<std::int64_t>(index), site);
  }
  throw InjectedCrash("injected crash at " + std::string(site) + " (index " +
                          std::to_string(index) + ")",
                      std::string(site), index);
}

}  // namespace pstap::fault
