// Cache-line / SIMD aligned storage for signal-processing hot loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace pstap {

/// Default alignment: one x86 cache line, also sufficient for AVX-512 loads.
inline constexpr std::size_t kDefaultAlignment = 64;

/// True when `p` is aligned to `alignment` bytes (a power of two). The SIMD
/// kernels use this (via PSTAP_REQUIRE / assertions) to verify that the
/// planes handed to them actually carry the alignment the allocators promise.
inline bool is_aligned(const void* p,
                       std::size_t alignment = kDefaultAlignment) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & (alignment - 1)) == 0;
}

/// Minimal C++17-style allocator carrying a static over-alignment, so hot
/// scratch planes can keep std::vector's resize/assign semantics while
/// guaranteeing SIMD/cache-line alignment (std::vector<float> only promises
/// alignof(float)).
template <typename T, std::size_t Alignment = kDefaultAlignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T), "Alignment below alignof(T)");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    const std::size_t bytes =
        ((n * sizeof(T) + Alignment - 1) / Alignment) * Alignment;
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// std::vector whose storage is 64-byte aligned — the container for SoA FFT
/// planes and kernel scratch that SIMD loads run over.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kDefaultAlignment>>;

/// Owning, aligned, non-initializing array of trivially-destructible T.
///
/// Unlike std::vector this never value-initializes its elements, which
/// matters when allocating multi-megabyte CPI cubes that are immediately
/// overwritten by a file read or a generator. Move-only.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_destructible_v<T>,
                "AlignedBuffer only supports trivially destructible element types");

 public:
  AlignedBuffer() = default;

  /// Allocate `count` elements aligned to `alignment` bytes (a power of two,
  /// at least alignof(T)).
  explicit AlignedBuffer(std::size_t count, std::size_t alignment = kDefaultAlignment)
      : size_(count) {
    PSTAP_REQUIRE((alignment & (alignment - 1)) == 0, "alignment must be a power of two");
    PSTAP_REQUIRE(alignment >= alignof(T), "alignment below alignof(T)");
    if (count == 0) return;
    const std::size_t bytes = ((count * sizeof(T) + alignment - 1) / alignment) * alignment;
    void* p = std::aligned_alloc(alignment, bytes);
    if (p == nullptr) throw std::bad_alloc{};
    data_.reset(static_cast<T*>(p));
  }

  AlignedBuffer(AlignedBuffer&&) noexcept = default;
  AlignedBuffer& operator=(AlignedBuffer&&) noexcept = default;
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  T* data() noexcept { return data_.get(); }
  const T* data() const noexcept { return data_.get(); }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_.get()[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_.get()[i]; }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

  std::span<T> span() noexcept { return {data(), size_}; }
  std::span<const T> span() const noexcept { return {data(), size_}; }

  /// Zero-fill the whole buffer.
  void fill_zero() noexcept {
    for (std::size_t i = 0; i < size_; ++i) data_.get()[i] = T{};
  }

 private:
  struct FreeDeleter {
    void operator()(T* p) const noexcept { std::free(p); }
  };
  std::unique_ptr<T, FreeDeleter> data_;
  std::size_t size_ = 0;
};

}  // namespace pstap
