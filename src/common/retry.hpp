// Retry with exponential backoff for I/O operations, and the timeout
// error raised when a bounded wait expires. Header-only; used by
// stap::cube_io and pipeline::collective_read_slab.
#pragma once

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "obs/trace.hpp"

namespace pstap {

/// Process-wide count of I/O retry sleeps (with_retry and the slab-reader
/// loop in pipeline/thread_runner both bump it). Looked up once: registry
/// references are stable.
inline obs::Counter& io_retry_counter() {
  static obs::Counter& counter = obs::Registry::global().counter("io.retries");
  return counter;
}

/// Mark one retry attempt: counted always, traced when tracing is on.
inline void note_io_retry(std::string_view what, int next_attempt) {
  io_retry_counter().add(1);
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().instant(
        "retry", "retry.attempt " + std::to_string(next_attempt),
        obs::kLibraryPid, -1, what);
  }
}

/// Raised when an I/O request exceeds its per-attempt timeout. Derives
/// IoError so retry layers treat it as a (transient) I/O failure.
class TimeoutError : public IoError {
 public:
  using IoError::IoError;
};

/// Retry configuration for an I/O consumer. The default (one attempt, no
/// timeout) preserves the pre-fault-layer behavior: fail fast.
struct RetryPolicy {
  int max_attempts = 1;             ///< total attempts, >= 1
  Seconds initial_backoff = 1e-3;   ///< sleep before the second attempt
  double backoff_multiplier = 2.0;  ///< backoff growth per attempt
  Seconds max_backoff = 100e-3;     ///< cap on a single backoff sleep
  Seconds attempt_timeout = 0;      ///< per-attempt wait bound (0 = none)
  double backoff_jitter = 0;        ///< fraction of backoff randomized, [0,1]
  std::uint64_t jitter_seed = 0;    ///< base seed for deterministic jitter

  // Deadline-aware timeouts (straggler defense, DESIGN.md §12): when a
  // service-time distribution is supplied to effective_attempt_timeout,
  // the per-attempt bound adapts to observed behavior instead of the
  // fixed attempt_timeout — deadline_multiplier x its deadline_quantile,
  // floored by deadline_floor. 0 multiplier disables adaptation.
  double deadline_multiplier = 0;     ///< x quantile (0 = fixed timeout)
  double deadline_quantile = 0.99;    ///< which quantile bounds an attempt
  Seconds deadline_floor = 10e-3;     ///< never adapt below this
  std::uint64_t deadline_min_samples = 64;  ///< trust the quantile after N
};

/// The per-attempt timeout to use right now: the observed-quantile deadline
/// when the policy opts in (deadline_multiplier > 0) and `service_time` has
/// warmed past deadline_min_samples, else the fixed attempt_timeout. The
/// adaptive bound never falls below the floor, and never *loosens* a fixed
/// attempt_timeout the caller set (min of the two when both are active) —
/// a straggling server tightens the bound, it cannot relax it.
inline Seconds effective_attempt_timeout(const RetryPolicy& policy,
                                         const obs::Histogram* service_time) {
  if (policy.deadline_multiplier <= 0 || service_time == nullptr ||
      service_time->count() < policy.deadline_min_samples) {
    return policy.attempt_timeout;
  }
  const Seconds adaptive =
      std::max(policy.deadline_floor,
               policy.deadline_multiplier *
                   service_time->quantile(policy.deadline_quantile));
  if (policy.attempt_timeout <= 0) return adaptive;
  return std::min(policy.attempt_timeout, adaptive);
}

/// The backoff sleep before attempt `next_attempt`, with the policy's
/// jitter applied. Jitter is *deterministic*: the draw is a pure function
/// of (jitter_seed, what, next_attempt) via common/rng.hpp SplitMix64, so a
/// chaos run replays byte-identically from one seed regardless of thread
/// interleaving. A jitter fraction j maps backoff b to [(1-j)b, b).
inline Seconds jittered_backoff(const RetryPolicy& policy,
                                std::string_view what, int next_attempt,
                                Seconds backoff) {
  if (policy.backoff_jitter <= 0) return backoff;
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the call site name
  for (char c : what) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  Rng rng(policy.jitter_seed ^ h ^
          (static_cast<std::uint64_t>(next_attempt) * 0x9e3779b97f4a7c15ULL));
  const double jitter = std::min(1.0, policy.backoff_jitter);
  return backoff * (1.0 - jitter * rng.uniform());
}

/// True for errors that retrying cannot fix (a permanently failed server).
inline bool is_permanent(const std::exception& e) {
  auto* injected = dynamic_cast<const fault::InjectedError*>(&e);
  return injected != nullptr && injected->permanent();
}

/// Run `op` up to policy.max_attempts times, retrying on IoError with
/// exponential backoff. Permanent errors and non-I/O errors propagate
/// immediately; the last attempt's error propagates unconditionally.
template <typename Op>
auto with_retry(const RetryPolicy& policy, const std::string& what,
                Op&& op) -> decltype(op()) {
  PSTAP_REQUIRE(policy.max_attempts >= 1, "retry: max_attempts must be >= 1");
  Seconds backoff = policy.initial_backoff;
  for (int attempt = 1;; ++attempt) {
    try {
      return op();
    } catch (const IoError& e) {
      if (attempt >= policy.max_attempts || is_permanent(e)) {
        throw;
      }
    }
    note_io_retry(what, attempt + 1);
    const Seconds sleep = jittered_backoff(policy, what, attempt + 1, backoff);
    std::this_thread::sleep_for(std::chrono::duration<double>(sleep));
    backoff = std::min(policy.max_backoff, backoff * policy.backoff_multiplier);
  }
}

}  // namespace pstap
