// Runtime-dispatched SIMD backend for the STAP hot loops.
//
// The compute kernels (FFT butterflies, window/stagger gathers, matched
// filtering, beamform inner products, CFAR power) all reduce to a small set
// of float-array primitives. This header exposes those primitives behind a
// table of function pointers (`Ops`) resolved ONCE at startup from CPUID:
//
//   * kScalar — plain C++ loops (the reference semantics; still subject to
//     the compiler's baseline auto-vectorization, e.g. 4-wide SSE2 on
//     x86-64);
//   * kSse2   — explicit 4-wide __m128 kernels;
//   * kAvx2   — explicit 8-wide __m256 kernels with FMA.
//
// Selection: best supported backend by default, overridable with the
// PSTAP_SIMD environment variable (scalar|sse2|avx2|auto). An unsupported
// request degrades to the best available backend with a one-time warning.
// The applied backend is recorded in the obs registry as gauge
// "simd.backend" (0 = scalar, 1 = sse2, 2 = avx2) so benches and CI can
// assert the dispatch actually engaged.
//
// Numerical contract: every backend computes the same per-element
// expression trees as the scalar reference. The AVX2 tier contracts
// mul+add pairs into FMAs inside `butterfly`, `cscale*`, `cmul_*`, `cmac_conj`,
// `cdot`, and the GEMM family (`cgemm_planar`, `cdotu`, `cmac_conj_arr`,
// `zherk_cf_lower`), so those results may differ from scalar in the last
// bits (tests compare within tolerance). `norm_interleaved`, `scale`,
// `deinterleave_scale`, `interleave`, `zmac` and `zmac_conj` are FMA-free
// and bit-exact with the scalar path on every backend — CFAR threshold
// comparisons see identical powers and the QR weight solve computes
// identical weights no matter which backend ran.
//
// Hot callers hoist `const simd::Ops& o = simd::ops();` outside their loops
// so dispatch costs one indirect call per row, not per element.
#pragma once

#include <cstddef>

namespace pstap::simd {

enum class Backend : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

/// Human-readable backend name ("scalar", "sse2", "avx2").
const char* backend_name(Backend b) noexcept;

/// Best backend this CPU supports (ignores PSTAP_SIMD).
Backend detect_best() noexcept;

/// The backend in effect: detect_best() clamped by PSTAP_SIMD, resolved on
/// first call and cached. Records the obs gauge "simd.backend" and applies
/// init_thread() on the resolving thread.
Backend active() noexcept;

/// Apply the per-thread FP environment for DSP kernels to the CALLING
/// thread: flush-to-zero + denormals-are-zero (x86 MXCSR). Gradual
/// underflow traps into microcode and costs 10-100x inside the hot loops,
/// while the signal chain treats subnormal magnitudes (< 1.2e-38) as
/// silence — flushing them to zero is the standard real-time DSP trade.
/// Returns true when the mode was applied; a no-op returning false on
/// non-x86 builds or when PSTAP_FTZ=0. Every mp::World rank thread calls
/// this at startup; standalone compute threads should do the same. Sets the
/// obs gauge "simd.ftz" to 1 when applied.
bool init_thread() noexcept;

/// Primitive kernel table. All sizes are element counts; `n` complex
/// elements means 2n floats for interleaved arrays. Pointers may be
/// unaligned (the kernels use unaligned loads); 64-byte-aligned inputs —
/// see AlignedVector in common/aligned_buffer.hpp — avoid split-line loads.
struct Ops {
  /// Radix-2 butterfly row over split re/im planes:
  /// t = w * b; b = a - t; a = a + t  (complex, w = wr + i*wi broadcast).
  void (*butterfly)(float* ar, float* ai, float* br, float* bi, float wr,
                    float wi, std::size_t n);
  /// Row-batched butterflies: rows j in [0, rows) of `lanes` lanes each,
  /// a-row j at ar/ai + j*lanes, b-row j at br/bi + j*lanes, twiddle j
  /// broadcast from the interleaved pair w[2j], w[2j+1]. One dispatch per
  /// whole stage block instead of per twiddle — the FFT's dominant call.
  void (*butterfly_rows)(float* ar, float* ai, float* br, float* bi,
                         const float* w, std::size_t rows, std::size_t lanes);
  /// Two fused radix-2 stages (h then 2h) over one DIT block of 4h rows
  /// rooted at re/im (row j is lanes floats at offset j*lanes). For each
  /// j in [0, h): butterfly (j, j+h) and (j+2h, j+3h) with the stage-h
  /// twiddle w1[2j], w1[2j+1], then (j, j+2h) with w2[2j], w2[2j+1] and
  /// (j+h, j+3h) with w2[2(j+h)], w2[2(j+h)+1]. Rows are loaded and stored
  /// ONCE for both stages — half the plane traffic of two butterfly_rows
  /// passes. Same per-element expression trees as butterfly, so results
  /// match two separate stage passes bit-for-bit per backend.
  void (*butterfly2_rows)(float* re, float* im, const float* w1,
                          const float* w2, std::size_t h, std::size_t lanes);
  /// In-place complex scale of split planes by the scalar w = wr + i*wi.
  void (*cscale)(float* re, float* im, float wr, float wi, std::size_t n);
  /// Out-of-place complex scale: (yr, yi) = (xr, xi) * (wr + i*wi).
  void (*cscale_to)(float* yr, float* yi, const float* xr, const float* xi,
                    float wr, float wi, std::size_t n);
  /// Row-batched in-place complex scale: row j (lanes wide, at offset
  /// j*lanes) scaled by the interleaved pair w[2j], w[2j+1]. Used for the
  /// fused matched-filter spectral multiply and Bluestein kernel rows.
  void (*cscale_rows)(float* re, float* im, const float* w, std::size_t rows,
                      std::size_t lanes);
  /// Row-batched out-of-place complex scale (Bluestein chirp pre/post).
  void (*cscale_rows_to)(float* yr, float* yi, const float* xr, const float* xi,
                         const float* w, std::size_t rows, std::size_t lanes);
  /// Interleaved complex elementwise multiply: a[i] *= b[i] (n complex).
  void (*cmul_interleaved)(float* a, const float* b, std::size_t n);
  /// x[i] *= s.
  void (*scale)(float* x, float s, std::size_t n);
  /// Windowed deinterleave: re[i] = w * src[2i], im[i] = w * src[2i+1].
  void (*deinterleave_scale)(float* re, float* im, const float* src, float w,
                             std::size_t n);
  /// Interleave split planes: dst[2i] = re[i], dst[2i+1] = im[i].
  void (*interleave)(float* dst, const float* re, const float* im,
                     std::size_t n);
  /// Beamform MAC: y[i] += conj(w) * x[i] over interleaved complex arrays
  /// (n complex elements, w = wr + i*wi broadcast).
  void (*cmac_conj)(float* y, const float* x, float wr, float wi,
                    std::size_t n);
  /// CFAR power: power[i] = re_i^2 + im_i^2 of interleaved complex input,
  /// widened to double. FMA-free: bit-exact across backends.
  void (*norm_interleaved)(double* power, const float* x, std::size_t n);
  /// Hermitian dot product over interleaved complex arrays:
  /// (*out_re, *out_im) = sum_i conj(x[i]) * y[i]. Vector backends reorder
  /// the reduction (lane-wise partial sums), so expect tolerance-level
  /// differences from scalar.
  void (*cdot)(const float* x, const float* y, std::size_t n, float* out_re,
               float* out_im);

  // ---------------------------------------------- complex GEMM kernels --
  // The adaptive-weights / beamform micro-kernel family (linalg/cgemm.hpp
  // is the packing + shape-checking front end; these are the raw loops).

  /// Blocked complex GEMM over a packed split-re/im A tile:
  /// C(m x n) += A(m x k) * B(k x n), where C row i is interleaved complex
  /// at c + 2*i*ldc, A element (i, p) is ar/ai[i*k + p] (planar, packed by
  /// the caller — conjugation of A is applied at pack time by negating the
  /// imag plane, which is exact), and B row p is interleaved complex at
  /// b + 2*p*ldb. The scalar backend accumulates i-outer / p-middle /
  /// n-inner with the historical beamform cmac expression trees; AVX2
  /// register-blocks 4 C rows x 4 complex columns with FMA (tolerance).
  void (*cgemm_planar)(float* c, std::size_t ldc, const float* ar,
                       const float* ai, std::size_t m, std::size_t k,
                       const float* b, std::size_t ldb, std::size_t n);
  /// Unconjugated dot product: (*out_re, *out_im) = sum_i x[i] * y[i] over
  /// interleaved complex arrays — the CMatrix<float>::matvec row kernel.
  /// Vector backends use lane partial sums (tolerance).
  void (*cdotu)(const float* x, const float* y, std::size_t n, float* out_re,
                float* out_im);
  /// Array-conjugate MAC: y[i] += conj(a[i]) * x with the scalar broadcast
  /// x = xr + i*xi — the CMatrix<float>::matvec_herm row kernel. FMA on
  /// AVX2 (tolerance).
  void (*cmac_conj_arr)(float* y, const float* a, float xr, float xi,
                        std::size_t n);
  /// Hermitian rank-k update of a double-precision lower triangle from
  /// cfloat snapshot rows (STAP covariance formation): for 0 <= j <= i <
  /// dof,
  ///   r(i, j) += alpha * sum_t s_i(t) * conj(s_j(t))
  /// where s_d is the interleaved cfloat row at s + 2*d*lds and r is
  /// row-major interleaved complex double with leading dimension ldr
  /// (complex elements). Only the lower triangle (incl. diagonal) is
  /// written. The scalar backend applies alpha per term and accumulates in
  /// gate order — the exact fl-sequence of the historical per-snapshot
  /// her_update loop; vector backends convert four complex floats per step
  /// and reduce with FMA lane partials (tolerance).
  void (*zherk_cf_lower)(double* r, std::size_t ldr, const float* s,
                         std::size_t lds, std::size_t dof, std::size_t t,
                         double alpha);
  /// Double-precision MAC: y[i] += c * x[i] over interleaved complex
  /// arrays, c = cr + i*ci broadcast. Deliberately FMA-free on every
  /// backend: the QR Householder row sweeps feed the weight solve, and
  /// keeping them bit-exact keeps the computed weights — and therefore the
  /// CFAR inputs — identical across backends.
  void (*zmac)(double* y, const double* x, double cr, double ci,
               std::size_t n);
  /// Double-precision conjugate MAC: y[i] += conj(c) * x[i]. FMA-free and
  /// bit-exact across backends, like zmac.
  void (*zmac_conj)(double* y, const double* x, double cr, double ci,
                    std::size_t n);
};

/// Kernel table for the active backend (cheap: one relaxed atomic load).
const Ops& ops() noexcept;

/// Kernel table for a specific backend — the scalar table doubles as the
/// reference implementation in equivalence tests. Requesting a backend the
/// CPU lacks returns the best supported table instead.
const Ops& ops(Backend b) noexcept;

/// Test hook: swap the active backend (clamped to what the CPU supports)
/// and return what was actually applied. Updates the "simd.backend" gauge.
/// Not safe to call while kernels are running on other threads — intended
/// for test setup and benchmark harnesses only.
Backend force_backend(Backend b) noexcept;

}  // namespace pstap::simd
