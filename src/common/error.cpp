#include "common/error.hpp"

#include <cstring>
#include <sstream>

namespace pstap::detail {

namespace {
std::string location_prefix(const char* file, int line) {
  std::ostringstream os;
  const char* base = std::strrchr(file, '/');
  os << (base != nullptr ? base + 1 : file) << ':' << line << ": ";
  return os.str();
}
}  // namespace

void throw_precondition(const char* expr, const char* file, int line,
                        const std::string& msg) {
  std::ostringstream os;
  os << location_prefix(file, line) << "precondition failed: (" << expr << ") — "
     << msg;
  throw PreconditionError(os.str());
}

void throw_runtime(const char* file, int line, const std::string& msg) {
  std::ostringstream os;
  os << location_prefix(file, line) << "invariant violated: " << msg;
  throw RuntimeError(os.str());
}

void throw_io(const char* file, int line, const std::string& msg, int errno_value) {
  std::ostringstream os;
  os << location_prefix(file, line) << "I/O error: " << msg;
  if (errno_value != 0) {
    os << " (errno " << errno_value << ": " << std::strerror(errno_value) << ')';
  }
  throw IoError(os.str());
}

}  // namespace pstap::detail
