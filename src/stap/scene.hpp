// Synthetic radar scene generation.
//
// The paper's input is real phased-array data, written by the radar into
// four files round-robin. We cannot ship that data, so SceneGenerator
// synthesizes CPI cubes with the same structure: point targets carrying
// the transmitted pulse-compression code, a clutter ridge whose Doppler is
// coupled to angle (occupying the "hard" bins around DC), and white
// receiver noise. Ground truth is retained so tests can check that the
// full pipeline detects what was injected.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "stap/data_cube.hpp"
#include "stap/radar_params.hpp"

namespace pstap::stap {

/// A point target injected into the scene.
struct Target {
  std::size_t range = 0;       ///< range gate of the leading code chip at CPI 0
  double doppler_bin = 0.0;    ///< Doppler in bin units on the M-point grid
  double angle = 0.0;          ///< azimuth off boresight, radians
  double snr_db = 20.0;        ///< per-sample SNR before any processing gain
  double range_rate = 0.0;     ///< range-gate drift per CPI (a moving target)
};

struct SceneConfig {
  std::vector<Target> targets;
  double noise_power = 1.0;
  double cnr_db = 30.0;          ///< clutter-to-noise ratio (total ridge power)
  std::size_t clutter_patches = 64;  ///< discrete patches along the ridge; 0 disables
};

class SceneGenerator {
 public:
  /// `seed` fixes the noise/clutter realization; the same (seed, cpi index)
  /// always produces the same cube.
  SceneGenerator(RadarParams params, SceneConfig config, std::uint64_t seed = 1);

  const RadarParams& params() const noexcept { return params_; }
  const SceneConfig& config() const noexcept { return config_; }

  /// The transmitted range code (length pc_code_length, unit modulus) that
  /// targets carry and the pulse compressor matches against.
  const std::vector<cfloat>& range_code() const noexcept { return code_; }

  /// Generate the CPI cube for time step `cpi`.
  DataCube generate(std::uint64_t cpi) const;

  /// Range gate of target `t` at CPI `cpi` (drifted by range_rate and
  /// clamped so the code fits in the range window).
  std::size_t target_range_at(std::size_t t, std::uint64_t cpi) const;

 private:
  void add_noise(DataCube& cube, Rng& rng) const;
  void add_clutter(DataCube& cube, Rng& rng) const;
  void add_targets(DataCube& cube, std::uint64_t cpi) const;

  RadarParams params_;
  SceneConfig config_;
  std::uint64_t seed_;
  std::vector<cfloat> code_;
  std::vector<double> patch_angles_;  // fixed clutter geometry (radians)
};

/// The transmitted pulse-compression code: a fixed pseudo-random binary
/// phase code of length `length` (deterministic — shared by the scene
/// generator and the pulse compressor).
std::vector<cfloat> make_range_code(std::size_t length);

}  // namespace pstap::stap
