#include "stap/detection_log.hpp"

#include <cstring>

namespace pstap::stap {

namespace {

// Block layout (little-endian):
//   u64 magic | u64 cpi | u64 count | count * record
// record: u32 bin | u32 beam | u32 range | f32 power | f32 threshold
constexpr std::uint64_t kBlockMagic = 0x50535441504C4F47ULL;  // "PSTAPLOG"
constexpr std::size_t kHeaderBytes = 3 * sizeof(std::uint64_t);
constexpr std::size_t kRecordBytes = 3 * sizeof(std::uint32_t) + 2 * sizeof(float);

void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }
void put_u64(std::byte* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }
void put_f32(std::byte* p, float v) { std::memcpy(p, &v, sizeof v); }
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
std::uint64_t get_u64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
float get_f32(const std::byte* p) {
  float v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

DetectionLogWriter::DetectionLogWriter(pfs::StripedFileSystem& fs,
                                       const std::string& name)
    : file_(fs.create(name)) {}

void DetectionLogWriter::append(std::uint64_t cpi,
                                std::span<const Detection> detections) {
  std::vector<std::byte> block(kHeaderBytes + detections.size() * kRecordBytes);
  put_u64(block.data(), kBlockMagic);
  put_u64(block.data() + 8, cpi);
  put_u64(block.data() + 16, detections.size());
  std::byte* p = block.data() + kHeaderBytes;
  for (const Detection& d : detections) {
    put_u32(p + 0, d.bin);
    put_u32(p + 4, d.beam);
    put_u32(p + 8, d.range);
    put_f32(p + 12, d.power);
    put_f32(p + 16, d.threshold);
    p += kRecordBytes;
  }
  file_.write(offset_, block);
  offset_ += block.size();
  ++blocks_;
}

DetectionLogReader::DetectionLogReader(pfs::StripedFileSystem& fs,
                                       const std::string& name)
    : file_(fs.open(name)), size_(file_.size()) {}

bool DetectionLogReader::next(DetectionBlock& block) {
  if (offset_ >= size_) return false;
  if (offset_ + kHeaderBytes > size_) {
    PSTAP_IO_FAIL("truncated detection log header", 0);
  }
  std::vector<std::byte> header(kHeaderBytes);
  file_.read(offset_, header);
  if (get_u64(header.data()) != kBlockMagic) {
    PSTAP_IO_FAIL("detection log corruption: bad block magic", 0);
  }
  block.cpi = get_u64(header.data() + 8);
  const std::uint64_t count = get_u64(header.data() + 16);
  const std::uint64_t body = count * kRecordBytes;
  if (offset_ + kHeaderBytes + body > size_) {
    PSTAP_IO_FAIL("truncated detection log block", 0);
  }
  std::vector<std::byte> records(body);
  if (body > 0) file_.read(offset_ + kHeaderBytes, records);
  block.detections.clear();
  block.detections.reserve(count);
  const std::byte* p = records.data();
  for (std::uint64_t i = 0; i < count; ++i) {
    Detection d;
    d.cpi = block.cpi;
    d.bin = get_u32(p + 0);
    d.beam = get_u32(p + 4);
    d.range = get_u32(p + 8);
    d.power = get_f32(p + 12);
    d.threshold = get_f32(p + 16);
    block.detections.push_back(d);
    p += kRecordBytes;
  }
  offset_ += kHeaderBytes + body;
  return true;
}

std::vector<DetectionBlock> DetectionLogReader::read_all() {
  std::vector<DetectionBlock> blocks;
  DetectionBlock block;
  while (next(block)) blocks.push_back(block);
  return blocks;
}

}  // namespace pstap::stap
