// Analytic workload model of every pipeline task.
//
// The discrete-event simulator prices task execution as
//   T_i = W_i / (P_i * rate) + C_i + V_i         (paper eq. 6)
// where W_i is the task's floating-point work and C_i its communication.
// This header derives W_i (flops) and message volumes (bytes) from the same
// RadarParams the real kernels execute, so the simulated tables inherit the
// honest easy/hard imbalance rather than hard-coding it.
//
// Flop conventions: one complex multiply-add = 8 real flops; a length-n FFT
// = 5 n log2(n) real flops (standard radix-2 accounting).
#pragma once

#include <cstddef>

#include "stap/radar_params.hpp"

namespace pstap::stap {

/// Work and data volumes of one pipeline task instance (one CPI).
struct TaskWork {
  double flops = 0.0;      ///< computation, real flops
  double in_bytes = 0.0;   ///< received from the previous task (spatial dep)
  double out_bytes = 0.0;  ///< sent to the next task(s)
};

class WorkloadModel {
 public:
  explicit WorkloadModel(const RadarParams& params);

  const RadarParams& params() const noexcept { return params_; }

  /// Bytes of one CPI file on disk (what the I/O task or embedded-I/O
  /// Doppler task reads per CPI).
  double cpi_file_bytes() const;

  /// Task 0' in the separate-I/O design: read + forward, no flops.
  TaskWork parallel_read() const;

  /// Task 1: Doppler filter processing (two staggered windowed FFTs per
  /// channel per range, plus bin routing).
  TaskWork doppler() const;

  /// Tasks 2/3: easy/hard weight computation (covariance + Cholesky +
  /// per-beam solves over the assigned bins). Temporal input (previous
  /// CPI's spectra) is counted as in_bytes.
  TaskWork weights_easy() const;
  TaskWork weights_hard() const;

  /// Tasks 4/5: easy/hard beamforming.
  TaskWork beamform_easy() const;
  TaskWork beamform_hard() const;

  /// Task 6: pulse compression over all bins/beams.
  TaskWork pulse_compression() const;

  /// Task 7: CFAR processing.
  TaskWork cfar() const;

  /// Combined pulse compression + CFAR task (paper section 6).
  TaskWork pulse_compression_cfar() const;

 private:
  static double fft_flops(double n);
  double bin_array_bytes(double bins, double dof) const;

  RadarParams params_;
};

}  // namespace pstap::stap
