// Steering-vector construction for the uniform linear array and the
// PRI-staggered temporal dimension.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace pstap::stap {

/// Spatial steering vector for a ULA: s[c] = exp(i 2π spacing sin(theta) c).
std::vector<cfloat> spatial_steering(std::size_t channels, double spacing,
                                     double theta);

/// Stack a spatial steering vector across two PRI staggers with Doppler
/// phase `psi` radians per PRI: [s ; e^{i psi} s].
std::vector<cfloat> stacked_steering(std::span<const cfloat> spatial, double psi);

/// Doppler phase advance per PRI of bin `bin` on an `m`-point grid.
double doppler_phase(std::size_t bin, std::size_t m);

}  // namespace pstap::stap
