#include "stap/pulse_compress.hpp"

#include "stap/scene.hpp"

namespace pstap::stap {

PulseCompressor::PulseCompressor(const RadarParams& params)
    : params_(params), plan_(params.ranges), code_(make_range_code(params.pc_code_length)) {
  params_.validate();
  // Matched-filter spectrum: conj(FFT(code zero-padded to the range window)),
  // normalized by the code length so a full code echo compresses to its
  // original per-sample amplitude times 1 (unit processing gain in
  // amplitude; SNR gain shows up through noise averaging).
  std::vector<cfloat> padded(params_.ranges, cfloat{});
  std::copy(code_.begin(), code_.end(), padded.begin());
  plan_.transform(padded, fft::Direction::kForward);
  code_spectrum_.resize(params_.ranges);
  const float norm = 1.0f / static_cast<float>(code_.size());
  for (std::size_t i = 0; i < padded.size(); ++i) {
    code_spectrum_[i] = std::conj(padded[i]) * norm;
  }
}

void PulseCompressor::compress_series(std::span<cfloat> series) const {
  PSTAP_REQUIRE(series.size() == params_.ranges,
                "series length must equal the range window");
  plan_.transform(series, fft::Direction::kForward);
  fft::multiply_spectra(series, code_spectrum_);
  plan_.transform(series, fft::Direction::kInverse);
}

void PulseCompressor::compress(BeamArray& beams) const {
  PSTAP_REQUIRE(beams.ranges() == params_.ranges,
                "beam array range extent must equal the range window");
  // The (bin, beam) range series are laid out back to back, so the whole
  // array is one batched matched-filter convolution with the spectral
  // multiply fused between the SoA transforms. The butterflies and the
  // fused multiply-accumulate both run on the runtime-dispatched SIMD
  // backend (common/simd.hpp) inside convolve_batch.
  plan_.convolve_batch(beams.flat(), beams.bins() * beams.beams(),
                       code_spectrum_, scratch_);
}

}  // namespace pstap::stap
