#include "stap/cube_io.hpp"

#include <algorithm>
#include <vector>

#include "obs/trace.hpp"

namespace pstap::stap {

std::uint64_t cpi_file_bytes(const RadarParams& params) {
  return static_cast<std::uint64_t>(params.cube_bytes());
}

std::uint64_t cpi_file_offset(const RadarParams& params, std::size_t r0) {
  return static_cast<std::uint64_t>(r0) * params.pulses * params.channels *
         sizeof(cfloat);
}

std::size_t slab_elements(const RadarParams& params, std::size_t r0, std::size_t r1) {
  PSTAP_REQUIRE(r0 <= r1 && r1 <= params.ranges, "invalid range slab");
  return (r1 - r0) * params.pulses * params.channels;
}

namespace {

/// Pack a cube in pulse-major order: [pulse][channel][range].
std::vector<cfloat> pack_pulse_major(const DataCube& cube) {
  std::vector<cfloat> raw(cube.samples());
  std::size_t idx = 0;
  for (std::size_t p = 0; p < cube.pulses(); ++p) {
    for (std::size_t c = 0; c < cube.channels(); ++c) {
      const auto row = cube.range_series(c, p);
      for (std::size_t r = 0; r < row.size(); ++r) raw[idx++] = row[r];
    }
  }
  return raw;
}

}  // namespace

void write_cpi(pfs::StripedFileSystem& fs, const std::string& name,
               const DataCube& cube, FileLayout layout) {
  std::vector<cfloat> raw;
  if (layout == FileLayout::kRangeMajor) {
    raw.resize(cube.samples());
    cube.pack_file_order(0, cube.ranges(), raw);
  } else {
    raw = pack_pulse_major(cube);
  }
  pfs::StripedFile f = fs.create(name);
  f.write_values<cfloat>(0, raw);
}

DataCube read_cpi(pfs::StripedFileSystem& fs, const std::string& name,
                  const RadarParams& params, FileLayout layout,
                  const RetryPolicy& retry) {
  pfs::StripedFile f = fs.open(name);
  return read_cpi_slab(f, params, 0, params.ranges, layout, retry);
}

DataCube read_cpi_slab(pfs::StripedFile& file, const RadarParams& params,
                       std::size_t r0, std::size_t r1, FileLayout layout,
                       const RetryPolicy& retry) {
  PSTAP_REQUIRE(r0 < r1, "empty range slab");
  obs::ScopedSpan span("io", "read_cpi_slab", obs::kLibraryPid);
  std::vector<cfloat> raw(slab_elements(params, r0, r1));
  // Deadline-aware bound (no-op unless the policy opts in): the engine's
  // observed service-time quantile tightens the fixed attempt_timeout.
  const Seconds timeout = effective_attempt_timeout(
      retry, &file.filesystem()->engine().service_time());
  with_retry(retry, "read_cpi_slab(" + file.name() + ")", [&] {
    pfs::IoRequest req = start_read_cpi_slab(file, params, r0, r1, raw, layout);
    pfs::wait_with_timeout(req, timeout,
                           "read_cpi_slab(" + file.name() + ")");
  });
  return unpack_slab(params, r0, r1, raw, layout);
}

pfs::IoRequest start_read_cpi_slab(pfs::StripedFile& file, const RadarParams& params,
                                   std::size_t r0, std::size_t r1,
                                   std::span<cfloat> raw, FileLayout layout) {
  PSTAP_REQUIRE(r0 < r1 && r1 <= params.ranges, "invalid range slab");
  PSTAP_REQUIRE(raw.size() == slab_elements(params, r0, r1),
                "raw slab buffer size mismatch");
  if (layout == FileLayout::kRangeMajor) {
    return file.iread_values<cfloat>(cpi_file_offset(params, r0), raw);
  }
  // Pulse-major: one strided segment per (pulse, channel) row; raw receives
  // the rows back to back in (p * channels + c) order.
  const std::size_t slab = r1 - r0;
  auto bytes = std::as_writable_bytes(raw);
  std::vector<pfs::StripedFile::IoSegment> segments;
  segments.reserve(params.pulses * params.channels);
  for (std::size_t p = 0; p < params.pulses; ++p) {
    for (std::size_t c = 0; c < params.channels; ++c) {
      const std::size_t row = p * params.channels + c;
      pfs::StripedFile::IoSegment seg;
      seg.offset = (static_cast<std::uint64_t>(row) * params.ranges + r0) *
                   sizeof(cfloat);
      seg.buf = bytes.subspan(row * slab * sizeof(cfloat), slab * sizeof(cfloat));
      segments.push_back(seg);
    }
  }
  return file.iread_gather(segments);
}

DataCube unpack_slab(const RadarParams& params, std::size_t r0, std::size_t r1,
                     std::span<const cfloat> raw, FileLayout layout) {
  DataCube cube;
  unpack_slab_into(params, r0, r1, raw, cube, layout);
  return cube;
}

void unpack_slab_into(const RadarParams& params, std::size_t r0, std::size_t r1,
                      std::span<const cfloat> raw, DataCube& cube,
                      FileLayout layout) {
  PSTAP_REQUIRE(raw.size() == slab_elements(params, r0, r1),
                "raw slab buffer size mismatch");
  const std::size_t slab = r1 - r0;
  if (cube.channels() != params.channels || cube.pulses() != params.pulses ||
      cube.ranges() != slab) {
    cube = DataCube(params.channels, params.pulses, slab);
  }
  if (layout == FileLayout::kRangeMajor) {
    cube.unpack_file_order(0, slab, raw);
    return;
  }
  for (std::size_t p = 0; p < params.pulses; ++p) {
    for (std::size_t c = 0; c < params.channels; ++c) {
      const std::size_t row = p * params.channels + c;
      auto dst = cube.range_series(c, p);
      const auto src = raw.subspan(row * slab, slab);
      std::copy(src.begin(), src.end(), dst.begin());
    }
  }
}

std::string round_robin_name(std::uint64_t cpi, std::size_t files) {
  return "cpi_rr" + std::to_string(cpi % files);
}

}  // namespace pstap::stap
