#include "stap/workload.hpp"

#include <cmath>

namespace pstap::stap {

namespace {
constexpr double kCplxMacFlops = 8.0;  // complex multiply-add in real flops
constexpr double kBytesPerSample = static_cast<double>(sizeof(cfloat));
}  // namespace

WorkloadModel::WorkloadModel(const RadarParams& params) : params_(params) {
  params_.validate();
}

double WorkloadModel::fft_flops(double n) {
  if (n <= 1.0) return 0.0;
  return 5.0 * n * std::log2(n);
}

double WorkloadModel::bin_array_bytes(double bins, double dof) const {
  return bins * dof * static_cast<double>(params_.ranges) * kBytesPerSample;
}

double WorkloadModel::cpi_file_bytes() const {
  return static_cast<double>(params_.cube_bytes());
}

TaskWork WorkloadModel::parallel_read() const {
  TaskWork w;
  w.flops = 0.0;
  w.in_bytes = cpi_file_bytes();   // from the file system
  w.out_bytes = cpi_file_bytes();  // forwarded to the Doppler task
  return w;
}

TaskWork WorkloadModel::doppler() const {
  const double ch = static_cast<double>(params_.channels);
  const double nr = static_cast<double>(params_.ranges);
  const double m = static_cast<double>(params_.doppler_bins());
  TaskWork w;
  // Per (channel, range): window both staggers (2m complex scale = 6 flops
  // each) + two FFTs + bin routing (copy, ~0 flops).
  w.flops = ch * nr * (2.0 * 6.0 * m + 2.0 * fft_flops(m));
  w.in_bytes = cpi_file_bytes();
  // Ships the full spectra to the beamforming tasks plus the training-gate
  // prefix to the weight tasks.
  const double easy = bin_array_bytes(static_cast<double>(params_.easy_bin_count()),
                                      static_cast<double>(params_.easy_dof()));
  const double hard = bin_array_bytes(static_cast<double>(params_.hard_bin_count()),
                                      static_cast<double>(params_.hard_dof()));
  const double train_frac = static_cast<double>(params_.training_ranges) /
                            static_cast<double>(params_.ranges);
  w.out_bytes = (easy + hard) * (1.0 + train_frac);
  return w;
}

namespace {
/// Flops of weight computation for `bins` bins at `dof` DOF with `training`
/// snapshots and `beams` beams.
double weight_flops(double bins, double dof, double training, double beams) {
  const double covariance = training * dof * dof * kCplxMacFlops;
  const double cholesky = (8.0 / 3.0) * dof * dof * dof;  // complex flops
  const double solves = beams * 2.0 * dof * dof * kCplxMacFlops / 2.0;  // fwd+back
  const double normalize = beams * dof * kCplxMacFlops;
  return bins * (covariance + cholesky + solves + normalize);
}
}  // namespace

TaskWork WorkloadModel::weights_easy() const {
  TaskWork w;
  const double bins = static_cast<double>(params_.easy_bin_count());
  const double dof = static_cast<double>(params_.easy_dof());
  w.flops = weight_flops(bins, dof, static_cast<double>(params_.training_ranges),
                         static_cast<double>(params_.beams));
  // Temporal input: only the training range gates of the previous CPI's
  // spectra are shipped (what ThreadRunner sends on the training streams).
  w.in_bytes = bins * dof * static_cast<double>(params_.training_ranges) *
               kBytesPerSample;
  w.out_bytes = bins * static_cast<double>(params_.beams) * dof * kBytesPerSample;
  return w;
}

TaskWork WorkloadModel::weights_hard() const {
  TaskWork w;
  const double bins = static_cast<double>(params_.hard_bin_count());
  const double dof = static_cast<double>(params_.hard_dof());
  w.flops = weight_flops(bins, dof, static_cast<double>(params_.training_ranges),
                         static_cast<double>(params_.beams));
  w.in_bytes = bins * dof * static_cast<double>(params_.training_ranges) *
               kBytesPerSample;
  w.out_bytes = bins * static_cast<double>(params_.beams) * dof * kBytesPerSample;
  return w;
}

TaskWork WorkloadModel::beamform_easy() const {
  TaskWork w;
  const double bins = static_cast<double>(params_.easy_bin_count());
  const double dof = static_cast<double>(params_.easy_dof());
  const double beams = static_cast<double>(params_.beams);
  const double nr = static_cast<double>(params_.ranges);
  w.flops = bins * beams * dof * nr * kCplxMacFlops;
  w.in_bytes = bin_array_bytes(bins, dof) +
               bins * beams * dof * kBytesPerSample;  // spectra + weights
  w.out_bytes = bins * beams * nr * kBytesPerSample;
  return w;
}

TaskWork WorkloadModel::beamform_hard() const {
  TaskWork w;
  const double bins = static_cast<double>(params_.hard_bin_count());
  const double dof = static_cast<double>(params_.hard_dof());
  const double beams = static_cast<double>(params_.beams);
  const double nr = static_cast<double>(params_.ranges);
  w.flops = bins * beams * dof * nr * kCplxMacFlops;
  w.in_bytes = bin_array_bytes(bins, dof) + bins * beams * dof * kBytesPerSample;
  w.out_bytes = bins * beams * nr * kBytesPerSample;
  return w;
}

TaskWork WorkloadModel::pulse_compression() const {
  TaskWork w;
  const double bins = static_cast<double>(params_.doppler_bins());
  const double beams = static_cast<double>(params_.beams);
  const double nr = static_cast<double>(params_.ranges);
  // Forward FFT + spectral multiply + inverse FFT per (bin, beam).
  w.flops = bins * beams * (2.0 * fft_flops(nr) + nr * kCplxMacFlops);
  w.in_bytes = bins * beams * nr * kBytesPerSample;
  w.out_bytes = bins * beams * nr * kBytesPerSample;
  return w;
}

TaskWork WorkloadModel::cfar() const {
  TaskWork w;
  const double bins = static_cast<double>(params_.doppler_bins());
  const double beams = static_cast<double>(params_.beams);
  const double nr = static_cast<double>(params_.ranges);
  // Power (3 flops) + prefix sum (2) + window compare (~5) per cell.
  w.flops = bins * beams * nr * 10.0;
  w.in_bytes = bins * beams * nr * kBytesPerSample;
  // Detection reports: negligible, price one cache line per (bin, beam).
  w.out_bytes = bins * beams * 64.0;
  return w;
}

TaskWork WorkloadModel::pulse_compression_cfar() const {
  // The combined task computes both phases but sends no intermediate
  // array between them — the source of the paper's latency win (eq. 10:
  // C_{5+6} < C_5 + C_6).
  const TaskWork pc = pulse_compression();
  const TaskWork cf = cfar();
  TaskWork w;
  w.flops = pc.flops + cf.flops;
  w.in_bytes = pc.in_bytes;
  w.out_bytes = cf.out_bytes;
  return w;
}

}  // namespace pstap::stap
