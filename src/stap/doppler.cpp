#include "stap/doppler.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/simd.hpp"

namespace pstap::stap {

DopplerFilter::DopplerFilter(const RadarParams& params)
    : params_(params), plan_(params.doppler_bins()) {
  params_.validate();
  const std::size_t m = params_.doppler_bins();
  window_.resize(m);
  if (m == 1) {
    window_[0] = 1.0f;
  } else {
    // Hann window, normalized to unit average gain so easy/hard amplitude
    // comparisons across bins stay calibrated. The Hann samples over
    // [0, m) with denominator m-1 sum to exactly (m-1)/2, so the
    // normalization factor is 2m/(m-1) — one pass, no re-normalize.
    const double step = 2.0 * std::numbers::pi / static_cast<double>(m - 1);
    const double norm = 2.0 * static_cast<double>(m) / static_cast<double>(m - 1);
    for (std::size_t p = 0; p < m; ++p) {
      const double w = 0.5 - 0.5 * std::cos(step * static_cast<double>(p));
      window_[p] = static_cast<float>(norm * w);
    }
  }

  const auto easy_ids = params_.easy_bins();
  const auto hard_ids = params_.hard_bins();
  easy_slot_.assign(m, SIZE_MAX);
  hard_slot_.assign(m, SIZE_MAX);
  for (std::size_t i = 0; i < easy_ids.size(); ++i) easy_slot_[easy_ids[i]] = i;
  for (std::size_t i = 0; i < hard_ids.size(); ++i) hard_slot_[hard_ids[i]] = i;
}

DopplerOutput DopplerFilter::process(const DataCube& cube) const {
  DopplerOutput out;
  process_into(cube, out);
  return out;
}

void DopplerFilter::process_into(const DataCube& cube, DopplerOutput& out) const {
  PSTAP_REQUIRE(cube.channels() == params_.channels && cube.pulses() == params_.pulses,
                "cube shape does not match radar parameters");
  const std::size_t m = params_.doppler_bins();
  const std::size_t ch = params_.channels;
  const std::size_t nr = cube.ranges();

  out.easy_bin_ids = params_.easy_bins();
  out.hard_bin_ids = params_.hard_bins();
  if (out.easy.bins() != out.easy_bin_ids.size() ||
      out.easy.dof() != params_.easy_dof() || out.easy.ranges() != nr) {
    out.easy = BinArray(out.easy_bin_ids.size(), params_.easy_dof(), nr);
  }
  if (out.hard.bins() != out.hard_bin_ids.size() ||
      out.hard.dof() != params_.hard_dof() || out.hard.ranges() != nr) {
    out.hard = BinArray(out.hard_bin_ids.size(), params_.hard_dof(), nr);
  }

  // Lane budget: R adjacent range gates per block, both staggers as lanes
  // (lane l < R is stagger 0 at gate r0+l, lane R+l is stagger 1), so one
  // SoA transform covers 2R series. Doppler FFTs are short (m = pulses - 1),
  // so the block is kept much wider than kBatchLanes: the SoA planes stay
  // small (m * 2R floats) while every SIMD call runs long enough to amortize
  // its dispatch. 2R = 64 lanes -> 8 AVX2 iterations per butterfly row.
  constexpr std::size_t kRangesPerBlock = 32;
  re_.resize(m * 2 * kRangesPerBlock);
  im_.resize(m * 2 * kRangesPerBlock);

  for (std::size_t c = 0; c < ch; ++c) {
    for (std::size_t r0 = 0; r0 < nr; r0 += kRangesPerBlock) {
      const std::size_t R = std::min(kRangesPerBlock, nr - r0);
      const std::size_t L = 2 * R;

      // Windowed gather: pulse rows of the cube are range-contiguous, so
      // each plane row is two SIMD deinterleave+window passes (one per
      // stagger) over contiguous complex data.
      const simd::Ops& vec = simd::ops();
      for (std::size_t p = 0; p < m; ++p) {
        const float w = window_[p];
        const float* row0 = reinterpret_cast<const float*>(&cube.at(c, p, r0));
        const float* row1 = reinterpret_cast<const float*>(&cube.at(c, p + 1, r0));
        float* rk = re_.data() + p * L;
        float* ik = im_.data() + p * L;
        vec.deinterleave_scale(rk, ik, row0, w, R);
        vec.deinterleave_scale(rk + R, ik + R, row1, w, R);
      }

      plan_.transform_soa(std::span<float>(re_.data(), m * L),
                          std::span<float>(im_.data(), m * L), L,
                          fft::Direction::kForward, scratch_);

      // Route bins: hard bins take both staggers, easy bins stagger 0 only.
      // Each route is one SIMD re-interleave of a plane row into the output.
      for (std::size_t b = 0; b < m; ++b) {
        const float* rk = re_.data() + b * L;
        const float* ik = im_.data() + b * L;
        if (hard_slot_[b] != SIZE_MAX) {
          const std::size_t i = hard_slot_[b];
          float* d0 = reinterpret_cast<float*>(&out.hard.at(i, c, r0));
          float* d1 = reinterpret_cast<float*>(&out.hard.at(i, ch + c, r0));
          vec.interleave(d0, rk, ik, R);
          vec.interleave(d1, rk + R, ik + R, R);
        } else {
          float* d0 = reinterpret_cast<float*>(&out.easy.at(easy_slot_[b], c, r0));
          vec.interleave(d0, rk, ik, R);
        }
      }
    }
  }
}

}  // namespace pstap::stap
