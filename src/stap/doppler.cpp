#include "stap/doppler.hpp"

#include <cmath>
#include <numbers>

namespace pstap::stap {

DopplerFilter::DopplerFilter(const RadarParams& params)
    : params_(params), plan_(params.doppler_bins()) {
  params_.validate();
  const std::size_t m = params_.doppler_bins();
  window_.resize(m);
  if (m == 1) {
    window_[0] = 1.0f;
  } else {
    // Hann window, normalized to unit average gain so easy/hard amplitude
    // comparisons across bins stay calibrated.
    double sum = 0.0;
    for (std::size_t p = 0; p < m; ++p) {
      const double w = 0.5 - 0.5 * std::cos(2.0 * std::numbers::pi *
                                            static_cast<double>(p) /
                                            static_cast<double>(m - 1));
      window_[p] = static_cast<float>(w);
      sum += w;
    }
    const float norm = static_cast<float>(static_cast<double>(m) / sum);
    for (float& w : window_) w *= norm;
  }
}

DopplerOutput DopplerFilter::process(const DataCube& cube) const {
  PSTAP_REQUIRE(cube.channels() == params_.channels && cube.pulses() == params_.pulses,
                "cube shape does not match radar parameters");
  const std::size_t m = params_.doppler_bins();
  const std::size_t ch = params_.channels;
  const std::size_t nr = cube.ranges();

  DopplerOutput out;
  out.easy_bin_ids = params_.easy_bins();
  out.hard_bin_ids = params_.hard_bins();
  out.easy = BinArray(out.easy_bin_ids.size(), params_.easy_dof(), nr);
  out.hard = BinArray(out.hard_bin_ids.size(), params_.hard_dof(), nr);

  // bin -> local index maps (dense over the M-point grid).
  std::vector<std::size_t> easy_slot(m, SIZE_MAX), hard_slot(m, SIZE_MAX);
  for (std::size_t i = 0; i < out.easy_bin_ids.size(); ++i)
    easy_slot[out.easy_bin_ids[i]] = i;
  for (std::size_t i = 0; i < out.hard_bin_ids.size(); ++i)
    hard_slot[out.hard_bin_ids[i]] = i;

  std::vector<cfloat> s0(m), s1(m);
  for (std::size_t c = 0; c < ch; ++c) {
    for (std::size_t r = 0; r < nr; ++r) {
      // Two staggered, windowed sub-apertures.
      for (std::size_t p = 0; p < m; ++p) {
        s0[p] = window_[p] * cube.at(c, p, r);
        s1[p] = window_[p] * cube.at(c, p + 1, r);
      }
      plan_.transform(s0, fft::Direction::kForward);
      plan_.transform(s1, fft::Direction::kForward);

      for (std::size_t b = 0; b < m; ++b) {
        if (hard_slot[b] != SIZE_MAX) {
          const std::size_t i = hard_slot[b];
          out.hard.at(i, c, r) = s0[b];
          out.hard.at(i, ch + c, r) = s1[b];
        } else {
          out.easy.at(easy_slot[b], c, r) = s0[b];
        }
      }
    }
  }
  return out;
}

}  // namespace pstap::stap
