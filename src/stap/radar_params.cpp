#include "stap/radar_params.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace pstap::stap {

std::vector<std::size_t> RadarParams::hard_bins() const {
  std::vector<std::size_t> bins;
  bins.reserve(hard_bin_count());
  for (std::size_t b = 0; b < doppler_bins(); ++b) {
    if (is_hard_bin(b)) bins.push_back(b);
  }
  return bins;
}

std::vector<std::size_t> RadarParams::easy_bins() const {
  std::vector<std::size_t> bins;
  bins.reserve(easy_bin_count());
  for (std::size_t b = 0; b < doppler_bins(); ++b) {
    if (!is_hard_bin(b)) bins.push_back(b);
  }
  return bins;
}

double RadarParams::beam_angle(std::size_t beam) const {
  PSTAP_REQUIRE(beam < beams, "beam index out of range");
  if (beams == 1) return 0.0;
  const double lo = -std::numbers::pi / 4.0;
  const double hi = std::numbers::pi / 4.0;
  return lo + (hi - lo) * static_cast<double>(beam) / static_cast<double>(beams - 1);
}

void RadarParams::validate() const {
  PSTAP_REQUIRE(channels >= 1, "need at least one channel");
  PSTAP_REQUIRE(pulses >= 2, "need at least two pulses (staggered sub-apertures)");
  PSTAP_REQUIRE(ranges >= 1, "need at least one range gate");
  PSTAP_REQUIRE(beams >= 1, "need at least one beam");
  PSTAP_REQUIRE(2 * hard_halfwidth + 1 < doppler_bins(),
                "hard bins must not cover the whole Doppler space");
  PSTAP_REQUIRE(training_ranges >= hard_dof(),
                "covariance training needs at least hard_dof() range gates");
  PSTAP_REQUIRE(training_ranges <= ranges, "training ranges exceed range gates");
  PSTAP_REQUIRE(diagonal_loading >= 0.0, "diagonal loading must be non-negative");
  PSTAP_REQUIRE(pc_code_length >= 1 && pc_code_length <= ranges,
                "pulse-compression code must fit within the range window");
  PSTAP_REQUIRE(cfar_pfa > 0.0 && cfar_pfa < 1.0, "CFAR Pfa must be in (0,1)");
  PSTAP_REQUIRE(cfar_training >= 1, "CFAR needs training cells");
  PSTAP_REQUIRE(2 * (cfar_training + cfar_guard) < ranges,
                "CFAR window must fit within the range extent");
}

RadarParams RadarParams::test_small() {
  RadarParams p;
  p.channels = 4;
  p.pulses = 17;  // doppler_bins = 16 (power of two)
  p.ranges = 128;
  p.hard_halfwidth = 2;  // 5 hard, 11 easy bins
  p.beams = 2;
  p.training_ranges = 32;
  p.pc_code_length = 8;
  p.cfar_training = 8;
  p.cfar_guard = 2;
  p.cfar_pfa = 1e-4;
  p.validate();
  return p;
}

}  // namespace pstap::stap
