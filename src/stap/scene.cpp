#include "stap/scene.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "stap/steering.hpp"

namespace pstap::stap {

std::vector<cfloat> make_range_code(std::size_t length) {
  PSTAP_REQUIRE(length >= 1, "code length must be >= 1");
  // Fixed seed: the code is part of the waveform design, not the scene.
  Rng rng(0xC0DEC0DEULL);
  std::vector<cfloat> code(length);
  for (auto& chip : code) {
    chip = rng.uniform() < 0.5 ? cfloat{1.0f, 0.0f} : cfloat{-1.0f, 0.0f};
  }
  return code;
}

SceneGenerator::SceneGenerator(RadarParams params, SceneConfig config,
                               std::uint64_t seed)
    : params_(std::move(params)), config_(std::move(config)), seed_(seed),
      code_(make_range_code(params_.pc_code_length)) {
  params_.validate();
  // Fixed clutter geometry: azimuths drawn once per scene (terrain does not
  // move between CPIs).
  Rng geometry_rng(seed_ ^ 0xC1077E12ULL);
  patch_angles_.reserve(config_.clutter_patches);
  for (std::size_t l = 0; l < config_.clutter_patches; ++l) {
    patch_angles_.push_back(
        geometry_rng.uniform(-std::numbers::pi / 2, std::numbers::pi / 2));
  }
  for (const Target& t : config_.targets) {
    PSTAP_REQUIRE(t.range + params_.pc_code_length <= params_.ranges,
                  "target code extent exceeds range window");
    PSTAP_REQUIRE(t.doppler_bin >= 0.0 &&
                      t.doppler_bin < static_cast<double>(params_.doppler_bins()),
                  "target Doppler bin outside the M-point grid");
  }
}

void SceneGenerator::add_noise(DataCube& cube, Rng& rng) const {
  if (config_.noise_power <= 0.0) return;
  for (cfloat& v : cube.flat()) v += rng.complex_normal(config_.noise_power);
}

void SceneGenerator::add_clutter(DataCube& cube, Rng& rng) const {
  if (config_.clutter_patches == 0 || config_.cnr_db <= -300.0) return;
  const std::size_t m = params_.doppler_bins();
  // Reference for CNR is the noise floor; in deliberately noise-free test
  // scenes fall back to unit power so the clutter does not vanish.
  const double ref = config_.noise_power > 0.0 ? config_.noise_power : 1.0;
  const double total_power = ref * from_db(config_.cnr_db);
  const double patch_power = total_power / static_cast<double>(config_.clutter_patches);

  // Discrete clutter ridge with angle-Doppler coupling. The patch
  // *geometry* (azimuths, fixed in the constructor) persists across CPIs —
  // it is terrain — so weights trained on the previous CPI null the right
  // directions; the complex returns fluctuate per CPI and per range ring,
  // which gives the training covariance its full clutter-subspace rank.
  const double max_doppler_bins = static_cast<double>(params_.hard_halfwidth);
  std::vector<cfloat> range_amp(cube.ranges());
  for (std::size_t l = 0; l < config_.clutter_patches; ++l) {
    const double phi = patch_angles_[l];
    const double doppler_bins = max_doppler_bins * std::sin(phi);
    const double fd = doppler_bins / static_cast<double>(m);  // cycles per PRI
    for (auto& a : range_amp) a = rng.complex_normal(patch_power);
    const double spatial_k =
        2.0 * std::numbers::pi * params_.element_spacing * std::sin(phi);
    for (std::size_t c = 0; c < params_.channels; ++c) {
      const double sp = spatial_k * static_cast<double>(c);
      const cfloat spatial{static_cast<float>(std::cos(sp)),
                           static_cast<float>(std::sin(sp))};
      for (std::size_t p = 0; p < params_.pulses; ++p) {
        const double tp = 2.0 * std::numbers::pi * fd * static_cast<double>(p);
        const cfloat factor = spatial * cfloat{static_cast<float>(std::cos(tp)),
                                               static_cast<float>(std::sin(tp))};
        auto row = cube.range_series(c, p);
        for (std::size_t r = 0; r < row.size(); ++r) row[r] += factor * range_amp[r];
      }
    }
  }
}

std::size_t SceneGenerator::target_range_at(std::size_t t, std::uint64_t cpi) const {
  PSTAP_REQUIRE(t < config_.targets.size(), "target index out of range");
  const Target& tgt = config_.targets[t];
  const double drifted = static_cast<double>(tgt.range) +
                         tgt.range_rate * static_cast<double>(cpi);
  const double max_range =
      static_cast<double>(params_.ranges - params_.pc_code_length);
  return static_cast<std::size_t>(std::clamp(drifted, 0.0, max_range));
}

void SceneGenerator::add_targets(DataCube& cube, std::uint64_t cpi) const {
  const std::size_t m = params_.doppler_bins();
  const double ref = config_.noise_power > 0.0 ? config_.noise_power : 1.0;
  for (std::size_t ti = 0; ti < config_.targets.size(); ++ti) {
    const Target& t = config_.targets[ti];
    const std::size_t range = target_range_at(ti, cpi);
    const double amp = std::sqrt(ref * from_db(t.snr_db));
    const double fd = t.doppler_bin / static_cast<double>(m);
    const double spatial_k =
        2.0 * std::numbers::pi * params_.element_spacing * std::sin(t.angle);
    for (std::size_t c = 0; c < params_.channels; ++c) {
      const double sp = spatial_k * static_cast<double>(c);
      const cfloat spatial{static_cast<float>(std::cos(sp)),
                           static_cast<float>(std::sin(sp))};
      for (std::size_t p = 0; p < params_.pulses; ++p) {
        const double tp = 2.0 * std::numbers::pi * fd * static_cast<double>(p);
        const cfloat factor = static_cast<float>(amp) * spatial *
                              cfloat{static_cast<float>(std::cos(tp)),
                                     static_cast<float>(std::sin(tp))};
        // The target echo carries the transmitted code along range.
        for (std::size_t k = 0; k < code_.size(); ++k) {
          cube.at(c, p, range + k) += factor * code_[k];
        }
      }
    }
  }
}

DataCube SceneGenerator::generate(std::uint64_t cpi) const {
  DataCube cube(params_.channels, params_.pulses, params_.ranges);
  // Independent deterministic stream per CPI.
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (cpi + 1)));
  add_noise(cube, rng);
  add_clutter(cube, rng);
  add_targets(cube, cpi);
  return cube;
}

}  // namespace pstap::stap
