#include "stap/chain.hpp"

namespace pstap::stap {

namespace {
WeightSet conventional_weights(const WeightComputer& wc,
                               const std::vector<std::size_t>& bins,
                               const RadarParams& params, std::size_t dof) {
  WeightSet ws(bins.size(), params.beams, dof);
  for (std::size_t bi = 0; bi < bins.size(); ++bi) {
    for (std::size_t beam = 0; beam < params.beams; ++beam) {
      const auto s = wc.steering(bins[bi], beam);
      double s2 = 0;
      for (const auto& v : s) s2 += std::norm(v);
      auto out = ws.at(bi, beam);
      for (std::size_t d = 0; d < dof; ++d)
        out[d] = s[d] * static_cast<float>(1.0 / s2);
    }
  }
  return ws;
}
}  // namespace

StapChain::StapChain(const RadarParams& params)
    : params_(params),
      doppler_(params_),
      wc_easy_(params_, params_.easy_bins(), params_.easy_dof()),
      wc_hard_(params_, params_.hard_bins(), params_.hard_dof()),
      beamformer_(params_),
      compressor_(params_),
      cfar_(params_),
      conventional_easy_(conventional_weights(wc_easy_, params_.easy_bins(), params_,
                                              params_.easy_dof())),
      conventional_hard_(conventional_weights(wc_hard_, params_.hard_bins(), params_,
                                              params_.hard_dof())) {}

std::vector<Detection> StapChain::push(const DataCube& cube) {
  const DopplerOutput out = doppler_.process(cube);

  const WeightSet& w_easy = weights_easy_ ? *weights_easy_ : conventional_easy_;
  const WeightSet& w_hard = weights_hard_ ? *weights_hard_ : conventional_hard_;

  BeamArray y_easy = beamformer_.apply(out.easy, w_easy);
  BeamArray y_hard = beamformer_.apply(out.hard, w_hard);
  compressor_.compress(y_easy);
  compressor_.compress(y_hard);

  std::vector<Detection> detections = cfar_.detect(y_easy, out.easy_bin_ids);
  const auto hard_hits = cfar_.detect(y_hard, out.hard_bin_ids);
  detections.insert(detections.end(), hard_hits.begin(), hard_hits.end());
  for (Detection& d : detections) d.cpi = cpi_;

  // Train the weights this CPI's spectra provide for the next push —
  // the pipeline's temporal dependency.
  weights_easy_ = wc_easy_.compute(out.easy);
  weights_hard_ = wc_hard_.compute(out.hard);
  ++cpi_;
  return detections;
}

void StapChain::reset() {
  weights_easy_.reset();
  weights_hard_.reset();
  cpi_ = 0;
}

}  // namespace pstap::stap
