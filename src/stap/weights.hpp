// Adaptive weight computation (pipeline tasks 2 and 3).
//
// For each assigned Doppler bin: estimate the sample covariance from the
// training range gates of the *previous* CPI's Doppler output (the temporal
// dependency TD in the paper's pipeline), apply diagonal loading, and solve
// R w = s for each beam steering vector (MVDR normalization). The easy task
// runs with channels DOF on easy bins; the hard task with 2*channels DOF on
// the clutter-ridge bins — roughly 8x the per-bin work, which is why the
// paper assigns the hard tasks more nodes.
#pragma once

#include <span>
#include <vector>

#include "stap/data_cube.hpp"
#include "stap/radar_params.hpp"

namespace pstap::stap {

/// Adaptive weights: [bin][beam][dof], bins in the order they were assigned.
class WeightSet {
 public:
  WeightSet() = default;
  WeightSet(std::size_t bins, std::size_t beams, std::size_t dof)
      : bins_(bins), beams_(beams), dof_(dof), w_(bins * beams * dof) {}

  std::size_t bins() const noexcept { return bins_; }
  std::size_t beams() const noexcept { return beams_; }
  std::size_t dof() const noexcept { return dof_; }

  std::span<cfloat> at(std::size_t bin, std::size_t beam) {
    return {w_.data() + (bin * beams_ + beam) * dof_, dof_};
  }
  std::span<const cfloat> at(std::size_t bin, std::size_t beam) const {
    return {w_.data() + (bin * beams_ + beam) * dof_, dof_};
  }

  std::span<cfloat> flat() { return w_; }
  std::span<const cfloat> flat() const { return w_; }

 private:
  std::size_t bins_ = 0, beams_ = 0, dof_ = 0;
  std::vector<cfloat> w_;
};

/// Numerical route from training snapshots to adaptive weights.
enum class WeightSolver {
  /// Sample covariance + diagonal loading + Cholesky (the classic SMI
  /// route; what the paper's implementation ran).
  kCholeskySmi,
  /// QR of the (loading-augmented) training data matrix; solves the normal
  /// equations through the triangular factor without forming the
  /// covariance — half the condition-number exponent.
  kQrSmi,
};

class WeightComputer {
 public:
  /// Compute weights for `bin_ids` (absolute bins on the M-point grid) at
  /// `dof` degrees of freedom (easy_dof() or hard_dof()).
  WeightComputer(const RadarParams& params, std::vector<std::size_t> bin_ids,
                 std::size_t dof, WeightSolver solver = WeightSolver::kCholeskySmi);

  const std::vector<std::size_t>& bin_ids() const noexcept { return bin_ids_; }
  std::size_t dof() const noexcept { return dof_; }
  WeightSolver solver() const noexcept { return solver_; }

  /// `spectra` must cover the same bins in the same order with matching
  /// dof; normally the previous CPI's DopplerOutput easy/hard array. Falls
  /// back to the loaded-identity covariance (i.e. conventional beamforming)
  /// when a bin's covariance is numerically singular.
  WeightSet compute(const BinArray& spectra) const;

  /// Steering vector for (bin, beam) at this task's DOF.
  std::vector<cfloat> steering(std::size_t bin, std::size_t beam) const;

 private:
  WeightSet compute_cholesky(const BinArray& spectra, std::size_t training) const;
  WeightSet compute_qr(const BinArray& spectra, std::size_t training) const;

  RadarParams params_;
  std::vector<std::size_t> bin_ids_;
  std::size_t dof_;
  WeightSolver solver_;
};

}  // namespace pstap::stap
