#include "stap/cfar.hpp"

#include <cmath>

#include "common/simd.hpp"

namespace pstap::stap {

CfarDetector::CfarDetector(const RadarParams& params) : params_(params) {
  params_.validate();
  const double t = static_cast<double>(2 * params_.cfar_training);
  alpha_ = t * (std::pow(params_.cfar_pfa, -1.0 / t) - 1.0);
}

namespace {

struct Hit {
  std::size_t range;
  double threshold;
};

/// CA-CFAR over one power series using prefix sums; emits cells whose power
/// exceeds alpha * mean(training cells). Edge cells use whichever training
/// cells exist (one-sided near the boundaries). `prefix` is caller-owned
/// scratch (resized here, reused across series).
void detect_power_series(std::span<const double> power, std::size_t train,
                         std::size_t guard, double alpha, std::vector<Hit>& hits,
                         std::vector<double>& prefix) {
  const std::size_t n = power.size();
  prefix.resize(n + 1);
  prefix[0] = 0.0;
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + power[i];
  const auto window_sum = [&](std::size_t lo, std::size_t hi) {  // [lo, hi)
    return prefix[hi] - prefix[lo];
  };

  for (std::size_t r = 0; r < n; ++r) {
    // Leading training cells: [r - guard - train, r - guard)
    const std::size_t lead_hi = r > guard ? r - guard : 0;
    const std::size_t lead_lo = lead_hi > train ? lead_hi - train : 0;
    // Lagging training cells: (r + guard, r + guard + train]
    const std::size_t lag_lo = std::min(n, r + guard + 1);
    const std::size_t lag_hi = std::min(n, r + guard + 1 + train);

    const std::size_t cells = (lead_hi - lead_lo) + (lag_hi - lag_lo);
    if (cells == 0) continue;  // degenerate window (tiny n)
    const double noise =
        (window_sum(lead_lo, lead_hi) + window_sum(lag_lo, lag_hi)) /
        static_cast<double>(cells);
    const double threshold = alpha * noise;
    if (power[r] > threshold) hits.push_back({r, threshold});
  }
}

}  // namespace

std::vector<std::size_t> CfarDetector::detect_series(
    std::span<const cfloat> series) const {
  std::vector<double> power(series.size());
  // SIMD power pass; norm_interleaved is FMA-free, so thresholds see
  // bit-identical powers on every backend.
  simd::ops().norm_interleaved(power.data(),
                               reinterpret_cast<const float*>(series.data()),
                               series.size());
  std::vector<Hit> hits;
  std::vector<double> prefix;
  detect_power_series(power, params_.cfar_training, params_.cfar_guard, alpha_, hits,
                      prefix);
  std::vector<std::size_t> out;
  out.reserve(hits.size());
  for (const Hit& h : hits) out.push_back(h.range);
  return out;
}

std::vector<Detection> CfarDetector::detect(
    const BeamArray& beams, std::span<const std::size_t> bin_ids) const {
  PSTAP_REQUIRE(bin_ids.size() == beams.bins(), "bin_ids size must match bins");
  std::vector<Detection> out;
  std::vector<double> power(beams.ranges());
  std::vector<Hit> hits;
  std::vector<double> prefix;
  prefix.reserve(beams.ranges() + 1);

  const simd::Ops& vec = simd::ops();
  for (std::size_t b = 0; b < beams.bins(); ++b) {
    for (std::size_t beam = 0; beam < beams.beams(); ++beam) {
      const auto y = beams.range_series(b, beam);
      vec.norm_interleaved(power.data(),
                           reinterpret_cast<const float*>(y.data()), y.size());
      hits.clear();
      detect_power_series(power, params_.cfar_training, params_.cfar_guard, alpha_,
                          hits, prefix);
      for (const Hit& h : hits) {
        Detection d;
        d.bin = static_cast<std::uint32_t>(bin_ids[b]);
        d.beam = static_cast<std::uint32_t>(beam);
        d.range = static_cast<std::uint32_t>(h.range);
        d.power = static_cast<float>(power[h.range]);
        d.threshold = static_cast<float>(h.threshold);
        out.push_back(d);
      }
    }
  }
  return out;
}

}  // namespace pstap::stap
