// Persistent detection-report log on the striped parallel file system.
//
// The pipeline's product is a stream of detection reports per CPI; the
// paper's "Target Display" consumes them. DetectionLogWriter appends
// length-prefixed per-CPI record blocks to a striped file;
// DetectionLogReader replays them. The format is a fixed little-endian
// binary layout (not raw struct dumps), so logs are portable across
// builds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pfs/striped_file_system.hpp"
#include "stap/cfar.hpp"

namespace pstap::stap {

/// Appends per-CPI detection blocks to a striped file.
class DetectionLogWriter {
 public:
  /// Creates (truncating) the log file `name` on `fs`.
  DetectionLogWriter(pfs::StripedFileSystem& fs, const std::string& name);

  /// Append one CPI's reports (the Detection::cpi fields are persisted
  /// as-is; an empty vector writes a valid empty block).
  void append(std::uint64_t cpi, std::span<const Detection> detections);

  /// Number of blocks appended so far.
  std::uint64_t blocks() const noexcept { return blocks_; }

 private:
  pfs::StripedFile file_;
  std::uint64_t offset_ = 0;
  std::uint64_t blocks_ = 0;
};

/// One replayed block.
struct DetectionBlock {
  std::uint64_t cpi = 0;
  std::vector<Detection> detections;
};

/// Reads every block of a detection log.
class DetectionLogReader {
 public:
  DetectionLogReader(pfs::StripedFileSystem& fs, const std::string& name);

  /// Next block, or false at end of log. Throws IoError on corruption.
  bool next(DetectionBlock& block);

  /// Convenience: read all remaining blocks.
  std::vector<DetectionBlock> read_all();

 private:
  pfs::StripedFile file_;
  std::uint64_t offset_ = 0;
  std::uint64_t size_ = 0;
};

}  // namespace pstap::stap
