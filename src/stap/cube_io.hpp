// Reading and writing CPI cubes through the striped parallel file system.
//
// Two on-disk element orders are supported:
//
//  * kRangeMajor ([range][pulse][channel]) — the layout the paper's system
//    uses: a contiguous byte region of the file is a contiguous slab of
//    range gates, so each I/O node reads its exclusive portion with a
//    single positioned read (paper §4).
//  * kPulseMajor ([pulse][channel][range]) — what a streaming radar ADC
//    naturally writes (one pulse at a time across channels): a range slab
//    becomes pulses*channels small strided segments. Reading it takes a
//    gather read, or better, the two-phase collective read in
//    pipeline/collective_read.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/retry.hpp"
#include "pfs/striped_file_system.hpp"
#include "stap/data_cube.hpp"
#include "stap/radar_params.hpp"

namespace pstap::stap {

enum class FileLayout {
  kRangeMajor,  ///< [range][pulse][channel] — slab reads are contiguous
  kPulseMajor,  ///< [pulse][channel][range] — slab reads are strided
};

/// Bytes of one CPI file for these parameters (layout independent).
std::uint64_t cpi_file_bytes(const RadarParams& params);

/// Byte offset of range gate `r0` within a range-major CPI file.
std::uint64_t cpi_file_offset(const RadarParams& params, std::size_t r0);

/// Elements in a raw range slab [r0, r1) (layout independent).
std::size_t slab_elements(const RadarParams& params, std::size_t r0, std::size_t r1);

/// Write a full cube as file `name` (the radar side).
void write_cpi(pfs::StripedFileSystem& fs, const std::string& name,
               const DataCube& cube, FileLayout layout = FileLayout::kRangeMajor);

/// Read a full cube from file `name`. `retry` governs transient I/O
/// failures and per-attempt timeouts (the default fails fast).
DataCube read_cpi(pfs::StripedFileSystem& fs, const std::string& name,
                  const RadarParams& params,
                  FileLayout layout = FileLayout::kRangeMajor,
                  const RetryPolicy& retry = {});

/// Read range gates [r0, r1) of `file` into a cube of (r1-r0) ranges —
/// the per-node exclusive-portion read. Synchronous. On pulse-major files
/// this is a strided gather read. Transient failures and timeouts are
/// retried per `retry` (whole-slab reissue: chunk buffers cannot be
/// salvaged piecemeal once any chunk fails).
DataCube read_cpi_slab(pfs::StripedFile& file, const RadarParams& params,
                       std::size_t r0, std::size_t r1,
                       FileLayout layout = FileLayout::kRangeMajor,
                       const RetryPolicy& retry = {});

/// Asynchronous slab read: starts the transfer into `raw` (slab_elements()
/// values; must outlive the request); call unpack_slab after completion.
pfs::IoRequest start_read_cpi_slab(pfs::StripedFile& file, const RadarParams& params,
                                   std::size_t r0, std::size_t r1,
                                   std::span<cfloat> raw,
                                   FileLayout layout = FileLayout::kRangeMajor);

/// Decode a completed raw slab into a cube of (r1-r0) ranges.
DataCube unpack_slab(const RadarParams& params, std::size_t r0, std::size_t r1,
                     std::span<const cfloat> raw,
                     FileLayout layout = FileLayout::kRangeMajor);

/// Decode into an existing cube, reallocating only when the shape differs —
/// the steady-state CPI loop reuses one cube allocation per rank.
void unpack_slab_into(const RadarParams& params, std::size_t r0, std::size_t r1,
                      std::span<const cfloat> raw, DataCube& cube,
                      FileLayout layout = FileLayout::kRangeMajor);

/// The paper's round-robin file naming: the radar writes 4 files cyclically
/// and the pipeline reads them in the same order.
std::string round_robin_name(std::uint64_t cpi, std::size_t files = 4);

}  // namespace pstap::stap
