#include "stap/data_cube.hpp"

namespace pstap::stap {

void DataCube::pack_file_order(std::size_t r0, std::size_t r1,
                               std::span<cfloat> out) const {
  PSTAP_REQUIRE(out.size() == slab_samples(r0, r1), "slab buffer size mismatch");
  std::size_t idx = 0;
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t p = 0; p < pulses_; ++p) {
      for (std::size_t c = 0; c < channels_; ++c) {
        out[idx++] = at(c, p, r);
      }
    }
  }
}

void DataCube::unpack_file_order(std::size_t r0, std::size_t r1,
                                 std::span<const cfloat> in) {
  PSTAP_REQUIRE(in.size() == slab_samples(r0, r1), "slab buffer size mismatch");
  std::size_t idx = 0;
  for (std::size_t r = r0; r < r1; ++r) {
    for (std::size_t p = 0; p < pulses_; ++p) {
      for (std::size_t c = 0; c < channels_; ++c) {
        at(c, p, r) = in[idx++];
      }
    }
  }
}

}  // namespace pstap::stap
