// CFAR detection (pipeline task 7).
//
// Cell-averaging CFAR along the range dimension of every (Doppler bin,
// beam): the noise level at each cell is estimated from `cfar_training`
// cells per side, separated by `cfar_guard` guard cells; the threshold
// multiplier is set from the configured false-alarm probability. The
// output detection reports are the pipeline's final product.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stap/data_cube.hpp"
#include "stap/radar_params.hpp"

namespace pstap::stap {

/// One CFAR crossing.
struct Detection {
  std::uint64_t cpi = 0;      ///< CPI index (filled by the pipeline driver)
  std::uint32_t bin = 0;      ///< absolute Doppler bin on the M-point grid
  std::uint32_t beam = 0;
  std::uint32_t range = 0;
  float power = 0.0f;         ///< |y|^2 in the cell under test
  float threshold = 0.0f;     ///< alpha * local noise estimate
};

class CfarDetector {
 public:
  explicit CfarDetector(const RadarParams& params);

  /// Threshold multiplier alpha = T (Pfa^(-1/T) - 1), T = total training cells.
  double threshold_scale() const noexcept { return alpha_; }

  /// Detect over every (bin, beam) of `beams`. `bin_ids` maps local bin
  /// index -> absolute Doppler bin for the reports (size == beams.bins()).
  std::vector<Detection> detect(const BeamArray& beams,
                                std::span<const std::size_t> bin_ids) const;

  /// Single range series variant (unit-test hook): returns detected gates.
  std::vector<std::size_t> detect_series(std::span<const cfloat> series) const;

 private:
  RadarParams params_;
  double alpha_;
};

}  // namespace pstap::stap
