// Pulse compression (pipeline task 6).
//
// Matched-filters each beamformed range series against the transmitted
// code via FFT-based circular correlation: Y = IFFT(FFT(y) .* conj(C)).
// A target whose code starts at range gate r produces a compressed peak at
// gate r with processing gain equal to the code length.
#pragma once

#include <vector>

#include "fft/fft.hpp"
#include "stap/data_cube.hpp"
#include "stap/radar_params.hpp"

namespace pstap::stap {

class PulseCompressor {
 public:
  /// `ranges` fixes the FFT length; the code comes from make_range_code
  /// (shared with SceneGenerator).
  explicit PulseCompressor(const RadarParams& params);

  /// In-place compression along the range dimension of every (bin, beam).
  /// Batched: all range series run through one fused FFT·spectrum·IFFT
  /// convolution pass. Keeps per-call scratch — share one PulseCompressor
  /// per thread.
  void compress(BeamArray& beams) const;

  /// Compress a single range series in place (unit-test hook / reference
  /// path; the batched compress() must match it exactly per series).
  void compress_series(std::span<cfloat> series) const;

  const std::vector<cfloat>& code() const noexcept { return code_; }

 private:
  RadarParams params_;
  fft::FftPlan plan_;                 // length == ranges
  std::vector<cfloat> code_;          // length pc_code_length
  std::vector<cfloat> code_spectrum_; // conj(FFT(zero-padded code))
  mutable fft::BatchScratch scratch_; // compress() workspace
};

}  // namespace pstap::stap
