// Radar and algorithm parameters for the PRI-staggered post-Doppler STAP
// pipeline (the algorithm of the paper and its IPPS'98 companion).
//
// One coherent processing interval (CPI) is a channels x pulses x ranges
// complex data cube. Doppler filtering forms two staggered sub-apertures of
// length pulses-1; Doppler bins near the clutter ridge (DC) are "hard"
// (adaptive over both staggers, 2*channels degrees of freedom), the rest
// are "easy" (single stagger, channels DOF) — the split that gives the
// pipeline its easy/hard weight-computation and beamforming task pairs.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pstap::stap {

struct RadarParams {
  std::size_t channels = 16;  ///< antenna elements J
  std::size_t pulses = 128;   ///< pulses per CPI N
  std::size_t ranges = 1024;  ///< range gates K

  /// Doppler bins with |bin - DC| <= hard_halfwidth (cyclic) are "hard".
  std::size_t hard_halfwidth = 7;

  /// Beams formed per Doppler bin.
  std::size_t beams = 4;

  /// Training range gates for covariance estimation.
  std::size_t training_ranges = 128;

  /// Diagonal loading as a fraction of the average channel power.
  double diagonal_loading = 1e-2;

  /// Pulse-compression code length (range-dimension matched filter).
  std::size_t pc_code_length = 32;

  /// CFAR: training and guard cells per side, and false-alarm probability.
  std::size_t cfar_training = 32;
  std::size_t cfar_guard = 4;
  double cfar_pfa = 1e-6;

  /// Normalized element spacing d / lambda of the uniform linear array.
  double element_spacing = 0.5;

  // ------------------------------------------------------------ derived --

  /// Staggered sub-aperture length (Doppler FFT size), M = N - 1.
  std::size_t doppler_bins() const { return pulses - 1; }

  /// Number of hard Doppler bins (cyclic interval around DC).
  std::size_t hard_bin_count() const { return 2 * hard_halfwidth + 1; }

  /// Number of easy Doppler bins.
  std::size_t easy_bin_count() const { return doppler_bins() - hard_bin_count(); }

  /// True if Doppler bin `bin` (on the M-point grid) is hard.
  bool is_hard_bin(std::size_t bin) const {
    const std::size_t m = doppler_bins();
    const std::size_t dist = std::min(bin, m - bin);
    return dist <= hard_halfwidth;
  }

  /// Ascending list of hard bins.
  std::vector<std::size_t> hard_bins() const;
  /// Ascending list of easy bins.
  std::vector<std::size_t> easy_bins() const;

  /// Adaptive degrees of freedom.
  std::size_t easy_dof() const { return channels; }
  std::size_t hard_dof() const { return 2 * channels; }

  /// Samples per CPI cube and its size in bytes on disk (one cfloat each).
  std::size_t cube_samples() const { return channels * pulses * ranges; }
  std::size_t cube_bytes() const { return cube_samples() * sizeof(cfloat); }

  /// Steering angle (radians off boresight) of beam b, spread over ±45°.
  double beam_angle(std::size_t beam) const;

  /// Validate invariants; throws PreconditionError with a diagnosis.
  void validate() const;

  /// Small configuration for unit tests (fast end-to-end runs).
  static RadarParams test_small();
};

}  // namespace pstap::stap
