// CPI data containers.
//
// DataCube   — raw radar samples [channel][pulse][range] (range contiguous).
// BinArray   — per-Doppler-bin stacked snapshots [bin][dof][range], the
//              output of Doppler filtering and input to weights/beamforming.
// BeamArray  — beamformed output [bin][beam][range].
//
// The on-disk order (what the radar writes and the I/O task reads) is
// range-major [range][pulse][channel], so that the range-partitioned I/O
// nodes read contiguous byte regions — the access pattern of the paper.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace pstap::stap {

/// Raw CPI samples: channels x pulses x ranges, range contiguous.
class DataCube {
 public:
  DataCube() = default;
  DataCube(std::size_t channels, std::size_t pulses, std::size_t ranges)
      : channels_(channels), pulses_(pulses), ranges_(ranges),
        data_(channels * pulses * ranges) {
    data_.fill_zero();
  }

  std::size_t channels() const noexcept { return channels_; }
  std::size_t pulses() const noexcept { return pulses_; }
  std::size_t ranges() const noexcept { return ranges_; }
  std::size_t samples() const noexcept { return data_.size(); }
  std::size_t bytes() const noexcept { return data_.size() * sizeof(cfloat); }

  cfloat& at(std::size_t c, std::size_t p, std::size_t r) noexcept {
    return data_[(c * pulses_ + p) * ranges_ + r];
  }
  const cfloat& at(std::size_t c, std::size_t p, std::size_t r) const noexcept {
    return data_[(c * pulses_ + p) * ranges_ + r];
  }

  /// Contiguous range series for (channel, pulse).
  std::span<cfloat> range_series(std::size_t c, std::size_t p) noexcept {
    return {&at(c, p, 0), ranges_};
  }
  std::span<const cfloat> range_series(std::size_t c, std::size_t p) const noexcept {
    return {&at(c, p, 0), ranges_};
  }

  std::span<cfloat> flat() noexcept { return data_.span(); }
  std::span<const cfloat> flat() const noexcept { return data_.span(); }

  /// Pack range gates [r0, r1) into the on-disk order [range][pulse][channel].
  /// `out` must hold (r1-r0)*pulses*channels elements.
  void pack_file_order(std::size_t r0, std::size_t r1, std::span<cfloat> out) const;

  /// Unpack an on-disk slab of range gates [r0, r1) into this cube.
  void unpack_file_order(std::size_t r0, std::size_t r1, std::span<const cfloat> in);

  /// Elements in a range slab of the on-disk representation.
  std::size_t slab_samples(std::size_t r0, std::size_t r1) const {
    PSTAP_REQUIRE(r0 <= r1 && r1 <= ranges_, "invalid range slab");
    return (r1 - r0) * pulses_ * channels_;
  }

 private:
  std::size_t channels_ = 0, pulses_ = 0, ranges_ = 0;
  AlignedBuffer<cfloat> data_;
};

/// Stacked Doppler-domain snapshots: bins x dof x ranges (range contiguous).
/// For easy bins dof = channels (stagger 0 only); for hard bins dof =
/// 2*channels (both staggers stacked).
class BinArray {
 public:
  BinArray() = default;
  BinArray(std::size_t bins, std::size_t dof, std::size_t ranges)
      : bins_(bins), dof_(dof), ranges_(ranges), data_(bins * dof * ranges) {
    data_.fill_zero();
  }

  std::size_t bins() const noexcept { return bins_; }
  std::size_t dof() const noexcept { return dof_; }
  std::size_t ranges() const noexcept { return ranges_; }
  std::size_t samples() const noexcept { return data_.size(); }

  cfloat& at(std::size_t b, std::size_t d, std::size_t r) noexcept {
    return data_[(b * dof_ + d) * ranges_ + r];
  }
  const cfloat& at(std::size_t b, std::size_t d, std::size_t r) const noexcept {
    return data_[(b * dof_ + d) * ranges_ + r];
  }

  std::span<cfloat> range_series(std::size_t b, std::size_t d) noexcept {
    return {&at(b, d, 0), ranges_};
  }
  std::span<const cfloat> range_series(std::size_t b, std::size_t d) const noexcept {
    return {&at(b, d, 0), ranges_};
  }

  /// Snapshot vector (dof elements) at (bin, range) — strided by ranges.
  void snapshot(std::size_t b, std::size_t r, std::span<cfloat> out) const {
    PSTAP_REQUIRE(out.size() == dof_, "snapshot buffer size mismatch");
    for (std::size_t d = 0; d < dof_; ++d) out[d] = at(b, d, r);
  }

  std::span<cfloat> flat() noexcept { return data_.span(); }
  std::span<const cfloat> flat() const noexcept { return data_.span(); }

 private:
  std::size_t bins_ = 0, dof_ = 0, ranges_ = 0;
  AlignedBuffer<cfloat> data_;
};

/// Beamformed output: bins x beams x ranges (range contiguous).
class BeamArray {
 public:
  BeamArray() = default;
  BeamArray(std::size_t bins, std::size_t beams, std::size_t ranges)
      : bins_(bins), beams_(beams), ranges_(ranges), data_(bins * beams * ranges) {
    data_.fill_zero();
  }

  std::size_t bins() const noexcept { return bins_; }
  std::size_t beams() const noexcept { return beams_; }
  std::size_t ranges() const noexcept { return ranges_; }
  std::size_t samples() const noexcept { return data_.size(); }

  cfloat& at(std::size_t b, std::size_t beam, std::size_t r) noexcept {
    return data_[(b * beams_ + beam) * ranges_ + r];
  }
  const cfloat& at(std::size_t b, std::size_t beam, std::size_t r) const noexcept {
    return data_[(b * beams_ + beam) * ranges_ + r];
  }

  std::span<cfloat> range_series(std::size_t b, std::size_t beam) noexcept {
    return {&at(b, beam, 0), ranges_};
  }
  std::span<const cfloat> range_series(std::size_t b, std::size_t beam) const noexcept {
    return {&at(b, beam, 0), ranges_};
  }

  std::span<cfloat> flat() noexcept { return data_.span(); }
  std::span<const cfloat> flat() const noexcept { return data_.span(); }

 private:
  std::size_t bins_ = 0, beams_ = 0, ranges_ = 0;
  AlignedBuffer<cfloat> data_;
};

}  // namespace pstap::stap
