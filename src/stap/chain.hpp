// StapChain: the complete single-node STAP processing chain with the
// pipeline's temporal-weight semantics, behind one call.
//
// Feed it CPI cubes in order; for each cube it beamforms with adaptive
// weights trained on the *previous* CPI (conventional steering weights for
// the very first one), pulse-compresses, CFAR-detects and returns the
// reports. This is the sequential reference implementation the parallel
// ThreadRunner is tested against, packaged as public API.
#pragma once

#include <optional>
#include <vector>

#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/radar_params.hpp"
#include "stap/weights.hpp"

namespace pstap::stap {

class StapChain {
 public:
  explicit StapChain(const RadarParams& params);

  const RadarParams& params() const noexcept { return params_; }

  /// Process the next CPI cube; returns its detection reports (cpi field
  /// set to the 0-based push count). Cubes must match the chain's params.
  std::vector<Detection> push(const DataCube& cube);

  /// Number of CPIs processed so far.
  std::uint64_t cpis_processed() const noexcept { return cpi_; }

  /// Discard the temporal state (next push behaves like the first).
  void reset();

 private:
  RadarParams params_;
  DopplerFilter doppler_;
  WeightComputer wc_easy_;
  WeightComputer wc_hard_;
  Beamformer beamformer_;
  PulseCompressor compressor_;
  CfarDetector cfar_;

  std::uint64_t cpi_ = 0;
  std::optional<WeightSet> weights_easy_;  // trained on the previous CPI
  std::optional<WeightSet> weights_hard_;
  WeightSet conventional_easy_;            // steering-only fallback (CPI 0)
  WeightSet conventional_hard_;
};

}  // namespace pstap::stap
