#include "stap/steering.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace pstap::stap {

std::vector<cfloat> spatial_steering(std::size_t channels, double spacing,
                                     double theta) {
  std::vector<cfloat> s(channels);
  const double k = 2.0 * std::numbers::pi * spacing * std::sin(theta);
  for (std::size_t c = 0; c < channels; ++c) {
    const double ang = k * static_cast<double>(c);
    s[c] = {static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang))};
  }
  return s;
}

std::vector<cfloat> stacked_steering(std::span<const cfloat> spatial, double psi) {
  std::vector<cfloat> s(2 * spatial.size());
  const cfloat shift{static_cast<float>(std::cos(psi)), static_cast<float>(std::sin(psi))};
  for (std::size_t c = 0; c < spatial.size(); ++c) {
    s[c] = spatial[c];
    s[spatial.size() + c] = shift * spatial[c];
  }
  return s;
}

double doppler_phase(std::size_t bin, std::size_t m) {
  PSTAP_REQUIRE(m >= 1 && bin < m, "doppler bin out of range");
  return 2.0 * std::numbers::pi * static_cast<double>(bin) / static_cast<double>(m);
}

}  // namespace pstap::stap
