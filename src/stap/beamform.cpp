#include "stap/beamform.hpp"

#include "linalg/cgemm.hpp"

namespace pstap::stap {

BeamArray Beamformer::apply(const BinArray& spectra, const WeightSet& weights) const {
  PSTAP_REQUIRE(weights.bins() == spectra.bins(), "weights/spectra bin mismatch");
  PSTAP_REQUIRE(weights.dof() == spectra.dof(), "weights/spectra dof mismatch");
  PSTAP_REQUIRE(weights.beams() == params_.beams, "weights beam count mismatch");

  const std::size_t bins = spectra.bins();
  const std::size_t dof = spectra.dof();
  const std::size_t nr = spectra.ranges();
  BeamArray out(bins, params_.beams, nr);

  // One batched GEMM per bin: Y(beams x ranges) += conj(W)(beams x dof) *
  // X(dof x ranges). The per-bin weight rows, range series, and output rows
  // are all contiguous with fixed leading dimensions, so the whole
  // (beam x dof x range) triple loop collapses into a single register-
  // blocked kernel call; the packed W tile is reused across range chunks.
  linalg::CgemmScratch scratch;
  for (std::size_t b = 0; b < bins; ++b) {
    linalg::cgemv_rows(params_.beams, dof, nr, weights.at(b, 0).data(), dof,
                       spectra.range_series(b, 0).data(), nr,
                       out.range_series(b, 0).data(), nr, scratch);
  }
  return out;
}

}  // namespace pstap::stap
