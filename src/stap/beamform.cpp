#include "stap/beamform.hpp"

#include "common/simd.hpp"

namespace pstap::stap {

BeamArray Beamformer::apply(const BinArray& spectra, const WeightSet& weights) const {
  PSTAP_REQUIRE(weights.bins() == spectra.bins(), "weights/spectra bin mismatch");
  PSTAP_REQUIRE(weights.dof() == spectra.dof(), "weights/spectra dof mismatch");
  PSTAP_REQUIRE(weights.beams() == params_.beams, "weights beam count mismatch");

  const std::size_t bins = spectra.bins();
  const std::size_t dof = spectra.dof();
  const std::size_t nr = spectra.ranges();
  BeamArray out(bins, params_.beams, nr);

  const simd::Ops& vec = simd::ops();
  for (std::size_t b = 0; b < bins; ++b) {
    for (std::size_t beam = 0; beam < params_.beams; ++beam) {
      const auto w = weights.at(b, beam);
      auto y = out.range_series(b, beam);
      // Accumulate conj(w_d) * x_d over DOF: one SIMD complex MAC along the
      // range dimension per DOF (the weight is the broadcast scalar).
      for (std::size_t d = 0; d < dof; ++d) {
        const auto x = spectra.range_series(b, d);
        vec.cmac_conj(reinterpret_cast<float*>(y.data()),
                      reinterpret_cast<const float*>(x.data()), w[d].real(),
                      w[d].imag(), nr);
      }
    }
  }
  return out;
}

}  // namespace pstap::stap
