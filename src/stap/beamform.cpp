#include "stap/beamform.hpp"

namespace pstap::stap {

BeamArray Beamformer::apply(const BinArray& spectra, const WeightSet& weights) const {
  PSTAP_REQUIRE(weights.bins() == spectra.bins(), "weights/spectra bin mismatch");
  PSTAP_REQUIRE(weights.dof() == spectra.dof(), "weights/spectra dof mismatch");
  PSTAP_REQUIRE(weights.beams() == params_.beams, "weights beam count mismatch");

  const std::size_t bins = spectra.bins();
  const std::size_t dof = spectra.dof();
  const std::size_t nr = spectra.ranges();
  BeamArray out(bins, params_.beams, nr);

  for (std::size_t b = 0; b < bins; ++b) {
    for (std::size_t beam = 0; beam < params_.beams; ++beam) {
      const auto w = weights.at(b, beam);
      auto y = out.range_series(b, beam);
      // Accumulate conj(w_d) * x_d over DOF, vectorizing along range.
      for (std::size_t d = 0; d < dof; ++d) {
        const cfloat wc = std::conj(w[d]);
        const auto x = spectra.range_series(b, d);
        for (std::size_t r = 0; r < nr; ++r) y[r] += wc * x[r];
      }
    }
  }
  return out;
}

}  // namespace pstap::stap
