#include "stap/weights.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/cmatrix.hpp"
#include "linalg/qr.hpp"
#include "stap/steering.hpp"

namespace pstap::stap {

WeightComputer::WeightComputer(const RadarParams& params,
                               std::vector<std::size_t> bin_ids, std::size_t dof,
                               WeightSolver solver)
    : params_(params), bin_ids_(std::move(bin_ids)), dof_(dof), solver_(solver) {
  params_.validate();
  PSTAP_REQUIRE(dof_ == params_.easy_dof() || dof_ == params_.hard_dof(),
                "dof must be easy_dof() or hard_dof()");
  for (const std::size_t b : bin_ids_) {
    PSTAP_REQUIRE(b < params_.doppler_bins(), "bin id outside the M-point grid");
  }
}

std::vector<cfloat> WeightComputer::steering(std::size_t bin, std::size_t beam) const {
  const auto spatial =
      spatial_steering(params_.channels, params_.element_spacing,
                       params_.beam_angle(beam));
  if (dof_ == params_.easy_dof()) return spatial;
  return stacked_steering(spatial, doppler_phase(bin, params_.doppler_bins()));
}

namespace {

/// MVDR normalization: w <- w / (s^H w), making the response toward the
/// steering vector exactly one. Falls back to unit scale for degenerate
/// denominators. Scale-invariant in w, so solver-specific scalings cancel.
void normalize_and_store(std::span<const cfloat> s, std::span<cdouble> w,
                         std::span<cfloat> out) {
  cdouble denom{};
  for (std::size_t d = 0; d < s.size(); ++d) {
    denom += std::conj(cdouble{s[d].real(), s[d].imag()}) * w[d];
  }
  const double mag = std::abs(denom);
  const cdouble scale = mag > 1e-30 ? 1.0 / denom : cdouble{1.0, 0.0};
  for (std::size_t d = 0; d < s.size(); ++d) {
    const cdouble v = w[d] * scale;
    out[d] = {static_cast<float>(v.real()), static_cast<float>(v.imag())};
  }
}

}  // namespace

WeightSet WeightComputer::compute_cholesky(const BinArray& spectra,
                                           std::size_t training) const {
  WeightSet weights(bin_ids_.size(), params_.beams, dof_);
  std::vector<cdouble> x(dof_);

  for (std::size_t bi = 0; bi < bin_ids_.size(); ++bi) {
    // Sample covariance over the training gates (double accumulation).
    linalg::CMatrix<double> r(dof_, dof_);
    for (std::size_t t = 0; t < training; ++t) {
      for (std::size_t d = 0; d < dof_; ++d) {
        const cfloat v = spectra.at(bi, d, t);
        x[d] = {v.real(), v.imag()};
      }
      r.her_update(x, 1.0 / static_cast<double>(training));
    }
    // Diagonal loading relative to the average per-DOF power.
    double trace = 0.0;
    for (std::size_t d = 0; d < dof_; ++d) trace += r(d, d).real();
    const double load =
        params_.diagonal_loading * (trace / static_cast<double>(dof_)) + 1e-12;
    for (std::size_t d = 0; d < dof_; ++d) r(d, d) += load;

    // Factor once per bin, solve per beam.
    linalg::CMatrix<double> l = r;
    const bool pd = linalg::cholesky_factor(l);

    for (std::size_t beam = 0; beam < params_.beams; ++beam) {
      const auto s = steering(bin_ids_[bi], beam);
      std::vector<cdouble> w(dof_);
      for (std::size_t d = 0; d < dof_; ++d) w[d] = {s[d].real(), s[d].imag()};
      if (pd) {
        // w = R^-1 s; on numerically singular bins fall back to the loaded
        // identity (conventional beamforming).
        linalg::cholesky_solve_inplace(l, std::span<cdouble>(w));
      }
      normalize_and_store(s, w, weights.at(bi, beam));
    }
  }
  return weights;
}

WeightSet WeightComputer::compute_qr(const BinArray& spectra,
                                     std::size_t training) const {
  WeightSet weights(bin_ids_.size(), params_.beams, dof_);
  const double t = static_cast<double>(training);

  for (std::size_t bi = 0; bi < bin_ids_.size(); ++bi) {
    // Average per-DOF training power, for the loading rows.
    double power = 0.0;
    for (std::size_t tt = 0; tt < training; ++tt) {
      for (std::size_t d = 0; d < dof_; ++d) power += std::norm(spectra.at(bi, d, tt));
    }
    const double load =
        params_.diagonal_loading * (power / (t * static_cast<double>(dof_))) + 1e-12;

    // Augmented data matrix: rows are conjugated snapshots, then
    // sqrt(T * load) * I — so A^H A = T (R_hat + load I).
    linalg::CMatrix<double> a(training + dof_, dof_);
    for (std::size_t tt = 0; tt < training; ++tt) {
      for (std::size_t d = 0; d < dof_; ++d) {
        const cfloat v = spectra.at(bi, d, tt);
        a(tt, d) = {v.real(), -v.imag()};
      }
    }
    const double sigma = std::sqrt(t * load);
    for (std::size_t d = 0; d < dof_; ++d) a(training + d, d) = {sigma, 0.0};

    linalg::QrFactorization<double> qr;
    const bool ok = qr.factor(std::move(a));

    for (std::size_t beam = 0; beam < params_.beams; ++beam) {
      const auto s = steering(bin_ids_[bi], beam);
      std::vector<cdouble> w(dof_);
      for (std::size_t d = 0; d < dof_; ++d) w[d] = {s[d].real(), s[d].imag()};
      if (ok) {
        // (R^H R) w = s through two triangular solves; the T scaling
        // cancels in the MVDR normalization.
        qr.solve_upper_herm(std::span<cdouble>(w));
        qr.solve_upper(std::span<cdouble>(w));
      }
      normalize_and_store(s, w, weights.at(bi, beam));
    }
  }
  return weights;
}

WeightSet WeightComputer::compute(const BinArray& spectra) const {
  PSTAP_REQUIRE(spectra.bins() == bin_ids_.size(),
                "spectra bin count does not match assignment");
  PSTAP_REQUIRE(spectra.dof() == dof_, "spectra dof mismatch");
  const std::size_t training = std::min<std::size_t>(params_.training_ranges,
                                                     spectra.ranges());
  PSTAP_REQUIRE(training >= dof_,
                "not enough training range gates for the requested DOF");
  return solver_ == WeightSolver::kCholeskySmi ? compute_cholesky(spectra, training)
                                               : compute_qr(spectra, training);
}

}  // namespace pstap::stap
