#include "stap/weights.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cgemm.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/cmatrix.hpp"
#include "linalg/qr.hpp"
#include "stap/steering.hpp"

namespace pstap::stap {

WeightComputer::WeightComputer(const RadarParams& params,
                               std::vector<std::size_t> bin_ids, std::size_t dof,
                               WeightSolver solver)
    : params_(params), bin_ids_(std::move(bin_ids)), dof_(dof), solver_(solver) {
  params_.validate();
  PSTAP_REQUIRE(dof_ == params_.easy_dof() || dof_ == params_.hard_dof(),
                "dof must be easy_dof() or hard_dof()");
  for (const std::size_t b : bin_ids_) {
    PSTAP_REQUIRE(b < params_.doppler_bins(), "bin id outside the M-point grid");
  }
}

std::vector<cfloat> WeightComputer::steering(std::size_t bin, std::size_t beam) const {
  const auto spatial =
      spatial_steering(params_.channels, params_.element_spacing,
                       params_.beam_angle(beam));
  if (dof_ == params_.easy_dof()) return spatial;
  return stacked_steering(spatial, doppler_phase(bin, params_.doppler_bins()));
}

namespace {

/// MVDR normalization: w <- w / (s^H w), making the response toward the
/// steering vector exactly one. Falls back to unit scale for degenerate
/// denominators. Scale-invariant in w, so solver-specific scalings cancel.
/// `sd` is the steering vector already widened to double — the widening is
/// hoisted out of the per-bin loops by the callers.
void normalize_and_store(std::span<const cdouble> sd, std::span<cdouble> w,
                         std::span<cfloat> out) {
  cdouble denom{};
  for (std::size_t d = 0; d < sd.size(); ++d) {
    denom += std::conj(sd[d]) * w[d];
  }
  const double mag = std::abs(denom);
  const cdouble scale = mag > 1e-30 ? 1.0 / denom : cdouble{1.0, 0.0};
  for (std::size_t d = 0; d < sd.size(); ++d) {
    const cdouble v = w[d] * scale;
    out[d] = {static_cast<float>(v.real()), static_cast<float>(v.imag())};
  }
}

/// Per-beam steering pieces that do not depend on the Doppler bin: the
/// spatial phase ramp and its double-precision copy. For spatial-only
/// (easy) tasks this is the whole steering vector; staggered (hard) tasks
/// still rebuild the bin-dependent temporal half per (bin, beam).
struct BeamSteering {
  std::vector<cfloat> spatial;
  std::vector<cdouble> spatial_d;
};

std::vector<BeamSteering> hoist_beam_steering(const RadarParams& params) {
  std::vector<BeamSteering> beams(params.beams);
  for (std::size_t beam = 0; beam < params.beams; ++beam) {
    beams[beam].spatial = spatial_steering(params.channels,
                                           params.element_spacing,
                                           params.beam_angle(beam));
    beams[beam].spatial_d.resize(beams[beam].spatial.size());
    for (std::size_t d = 0; d < beams[beam].spatial.size(); ++d) {
      beams[beam].spatial_d[d] = {beams[beam].spatial[d].real(),
                                  beams[beam].spatial[d].imag()};
    }
  }
  return beams;
}

/// Fill `sd` with the double-precision steering vector for (bin, beam),
/// reusing the hoisted spatial half and building only the staggered half —
/// the same single-precision product stacked_steering() computes, without
/// its allocation. `shift` is e^{i psi} for the bin (hoisted per bin so the
/// trig runs once per bin, not once per beam).
void build_steering_d(const BeamSteering& bs, bool stacked, cfloat shift,
                      std::span<cdouble> sd) {
  std::copy(bs.spatial_d.begin(), bs.spatial_d.end(), sd.begin());
  if (!stacked) return;
  const std::size_t half = bs.spatial_d.size();
  for (std::size_t d = 0; d < half; ++d) {
    const cfloat v = shift * bs.spatial[d];
    sd[half + d] = {v.real(), v.imag()};
  }
}

/// e^{i psi} exactly as stacked_steering() computes it.
cfloat stagger_shift(double psi) {
  return {static_cast<float>(std::cos(psi)), static_cast<float>(std::sin(psi))};
}

}  // namespace

WeightSet WeightComputer::compute_cholesky(const BinArray& spectra,
                                           std::size_t training) const {
  WeightSet weights(bin_ids_.size(), params_.beams, dof_);
  const bool stacked = dof_ != params_.easy_dof();
  const auto beams = hoist_beam_steering(params_);
  std::vector<cdouble> sd(dof_);
  std::vector<cdouble> w(dof_);

  for (std::size_t bi = 0; bi < bin_ids_.size(); ++bi) {
    // Sample covariance over the training gates: one Hermitian rank-k
    // update straight off the contiguous range series (double
    // accumulation, lower triangle only — the factor, solve, trace and
    // loading below read only the lower triangle and diagonal).
    linalg::CMatrix<double> r(dof_, dof_);
    linalg::cherk_lower(r, spectra.range_series(bi, 0).data(),
                        spectra.ranges(), training,
                        1.0 / static_cast<double>(training));
    // Diagonal loading relative to the average per-DOF power.
    double trace = 0.0;
    for (std::size_t d = 0; d < dof_; ++d) trace += r(d, d).real();
    const double load =
        params_.diagonal_loading * (trace / static_cast<double>(dof_)) + 1e-12;
    for (std::size_t d = 0; d < dof_; ++d) r(d, d) += load;

    // Factor once per bin (in place — the loaded covariance has no other
    // readers), solve per beam.
    const bool pd = linalg::cholesky_factor(r);

    const cfloat shift =
        stacked ? stagger_shift(doppler_phase(bin_ids_[bi], params_.doppler_bins()))
                : cfloat{1.0f, 0.0f};
    for (std::size_t beam = 0; beam < params_.beams; ++beam) {
      build_steering_d(beams[beam], stacked, shift, sd);
      std::copy(sd.begin(), sd.end(), w.begin());
      if (pd) {
        // w = R^-1 s; on numerically singular bins fall back to the loaded
        // identity (conventional beamforming).
        linalg::cholesky_solve_inplace(r, std::span<cdouble>(w));
      }
      normalize_and_store(sd, w, weights.at(bi, beam));
    }
  }
  return weights;
}

WeightSet WeightComputer::compute_qr(const BinArray& spectra,
                                     std::size_t training) const {
  WeightSet weights(bin_ids_.size(), params_.beams, dof_);
  const double t = static_cast<double>(training);
  const bool stacked = dof_ != params_.easy_dof();
  const auto beams = hoist_beam_steering(params_);
  std::vector<cdouble> sd(dof_);
  std::vector<cdouble> w(dof_);

  for (std::size_t bi = 0; bi < bin_ids_.size(); ++bi) {
    // Average per-DOF training power, for the loading rows.
    double power = 0.0;
    for (std::size_t tt = 0; tt < training; ++tt) {
      for (std::size_t d = 0; d < dof_; ++d) power += std::norm(spectra.at(bi, d, tt));
    }
    const double load =
        params_.diagonal_loading * (power / (t * static_cast<double>(dof_))) + 1e-12;

    // Augmented data matrix: rows are conjugated snapshots, then
    // sqrt(T * load) * I — so A^H A = T (R_hat + load I).
    linalg::CMatrix<double> a(training + dof_, dof_);
    for (std::size_t tt = 0; tt < training; ++tt) {
      for (std::size_t d = 0; d < dof_; ++d) {
        const cfloat v = spectra.at(bi, d, tt);
        a(tt, d) = {v.real(), -v.imag()};
      }
    }
    const double sigma = std::sqrt(t * load);
    for (std::size_t d = 0; d < dof_; ++d) a(training + d, d) = {sigma, 0.0};

    linalg::QrFactorization<double> qr;
    const bool ok = qr.factor(std::move(a));

    const cfloat shift =
        stacked ? stagger_shift(doppler_phase(bin_ids_[bi], params_.doppler_bins()))
                : cfloat{1.0f, 0.0f};
    for (std::size_t beam = 0; beam < params_.beams; ++beam) {
      build_steering_d(beams[beam], stacked, shift, sd);
      std::copy(sd.begin(), sd.end(), w.begin());
      if (ok) {
        // (R^H R) w = s through two triangular solves; the T scaling
        // cancels in the MVDR normalization.
        qr.solve_upper_herm(std::span<cdouble>(w));
        qr.solve_upper(std::span<cdouble>(w));
      }
      normalize_and_store(sd, w, weights.at(bi, beam));
    }
  }
  return weights;
}

WeightSet WeightComputer::compute(const BinArray& spectra) const {
  PSTAP_REQUIRE(spectra.bins() == bin_ids_.size(),
                "spectra bin count does not match assignment");
  PSTAP_REQUIRE(spectra.dof() == dof_, "spectra dof mismatch");
  const std::size_t training = std::min<std::size_t>(params_.training_ranges,
                                                     spectra.ranges());
  PSTAP_REQUIRE(training >= dof_,
                "not enough training range gates for the requested DOF");
  return solver_ == WeightSolver::kCholeskySmi ? compute_cholesky(spectra, training)
                                               : compute_qr(spectra, training);
}

}  // namespace pstap::stap
