// Doppler filter processing (pipeline task 1).
//
// Forms two PRI-staggered sub-apertures of length M = pulses-1, windows and
// Doppler-transforms each, then routes bins: easy bins keep the stagger-0
// spectrum only (channels DOF); hard bins stack both staggers (2*channels
// DOF) for the adaptive clutter cancellation downstream.
//
// The transform is batched: blocks of adjacent range gates are gathered
// (with the window fused in) into SoA planes — both staggers as lanes of
// one plane — and run through FftPlan::transform_soa, so the butterflies
// vectorize across range gates instead of dispatching one strided FFT per
// (channel, range).
#pragma once

#include <vector>

#include "common/aligned_buffer.hpp"
#include "fft/fft.hpp"
#include "stap/data_cube.hpp"
#include "stap/radar_params.hpp"

namespace pstap::stap {

/// Output of Doppler filtering for one CPI (or one range slab of it).
struct DopplerOutput {
  std::vector<std::size_t> easy_bin_ids;  ///< bins covered by `easy`
  std::vector<std::size_t> hard_bin_ids;  ///< bins covered by `hard`
  BinArray easy;  ///< [easy bin][channels][ranges]
  BinArray hard;  ///< [hard bin][2*channels][ranges]
};

class DopplerFilter {
 public:
  explicit DopplerFilter(const RadarParams& params);

  /// Doppler-process a cube (its range extent may be a slab of the full
  /// CPI when running data-parallel).
  DopplerOutput process(const DataCube& cube) const;

  /// Process into an existing output, reusing its arrays when the shapes
  /// already match (the steady-state CPI loop allocates nothing here).
  /// Instances keep per-call scratch: share one DopplerFilter per thread.
  void process_into(const DataCube& cube, DopplerOutput& out) const;

  /// The Hann window applied across each sub-aperture.
  const std::vector<float>& window() const noexcept { return window_; }

 private:
  RadarParams params_;
  fft::FftPlan plan_;            // length M transform
  std::vector<float> window_;    // length M

  // bin -> output slot maps (dense over the M-point grid; SIZE_MAX = not
  // in that set), precomputed once.
  std::vector<std::size_t> easy_slot_;
  std::vector<std::size_t> hard_slot_;

  // Per-instance transform workspace (grown once, then reused). Aligned so
  // the SIMD butterflies never split cache lines.
  mutable AlignedVector<float> re_, im_;  // SoA planes, M x kBatchLanes
  mutable fft::BatchScratch scratch_;
};

}  // namespace pstap::stap
