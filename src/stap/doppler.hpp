// Doppler filter processing (pipeline task 1).
//
// Forms two PRI-staggered sub-apertures of length M = pulses-1, windows and
// Doppler-transforms each, then routes bins: easy bins keep the stagger-0
// spectrum only (channels DOF); hard bins stack both staggers (2*channels
// DOF) for the adaptive clutter cancellation downstream.
#pragma once

#include <vector>

#include "fft/fft.hpp"
#include "stap/data_cube.hpp"
#include "stap/radar_params.hpp"

namespace pstap::stap {

/// Output of Doppler filtering for one CPI (or one range slab of it).
struct DopplerOutput {
  std::vector<std::size_t> easy_bin_ids;  ///< bins covered by `easy`
  std::vector<std::size_t> hard_bin_ids;  ///< bins covered by `hard`
  BinArray easy;  ///< [easy bin][channels][ranges]
  BinArray hard;  ///< [hard bin][2*channels][ranges]
};

class DopplerFilter {
 public:
  explicit DopplerFilter(const RadarParams& params);

  /// Doppler-process a cube (its range extent may be a slab of the full
  /// CPI when running data-parallel).
  DopplerOutput process(const DataCube& cube) const;

  /// The Hann window applied across each sub-aperture.
  const std::vector<float>& window() const noexcept { return window_; }

 private:
  RadarParams params_;
  fft::FftPlan plan_;            // length M transform
  std::vector<float> window_;    // length M
};

}  // namespace pstap::stap
