// Adaptive beamforming (pipeline tasks 4 and 5).
//
// Applies the per-bin adaptive weights to the Doppler-domain snapshots:
// y(bin, beam, range) = w(bin, beam)^H x(bin, :, range). The weights come
// from the *previous* CPI (temporal dependency) so beamforming never waits
// on the current CPI's weight computation — the property that keeps weight
// tasks out of the paper's latency equation.
#pragma once

#include "stap/data_cube.hpp"
#include "stap/radar_params.hpp"
#include "stap/weights.hpp"

namespace pstap::stap {

class Beamformer {
 public:
  explicit Beamformer(const RadarParams& params) : params_(params) {
    params_.validate();
  }

  /// `spectra`: [bins][dof][ranges]; `weights`: matching bins/dof.
  /// Returns [bins][beams][ranges].
  BeamArray apply(const BinArray& spectra, const WeightSet& weights) const;

 private:
  RadarParams params_;
};

}  // namespace pstap::stap
