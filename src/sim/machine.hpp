// Machine models: the simulated stand-ins for the paper's testbeds.
//
// The paper measured a ~100-node Intel Paragon (Caltech) with two PFS
// instances (small and large stripe factor, asynchronous reads) and an IBM
// SP (ANL) with PIOFS (80 striped slices, synchronous-only reads, ~4x
// faster CPUs). Neither machine exists anymore; these models capture the
// rate parameters the paper's effects depend on (see DESIGN.md for the
// substitution argument). Rates are sustained-per-node figures typical of
// the era, not peaks.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.hpp"

namespace pstap::sim {

struct MachineModel {
  std::string name;

  // --- compute ---
  double node_flops = 50e6;  ///< sustained real flops per node per second

  // --- interconnect (per node link) ---
  double network_latency = 100e-6;     ///< per-message setup, seconds
  double network_bandwidth = 40e6;     ///< bytes/s in or out of one node

  // --- parallel file system ---
  std::size_t stripe_factor = 16;      ///< I/O servers (stripe directories)
  std::size_t stripe_unit = 64 * KiB;  ///< striping granularity
  double io_server_bandwidth = 6e6;    ///< bytes/s per I/O server
  double io_chunk_latency = 1e-3;      ///< per stripe-unit request overhead
  bool async_io = true;                ///< can reads overlap compute/comm?

  /// Straggler servers: this many of the stripe directories run
  /// `straggler_slowdown`x slower (latency and bandwidth). Striping is
  /// static — a read that touches a straggler's stripe units cannot be
  /// rerouted, so one slow server gates the whole conforming read. 0
  /// stragglers or slowdown 1.0 disables the effect.
  std::size_t straggler_servers = 0;
  double straggler_slowdown = 1.0;

  // --- parallelization overhead V_i (paper eq. 6) ---
  /// V_i = overhead_per_log2 * log2(P_i + 1): synchronization and residual
  /// load imbalance grow slowly with the node count.
  double overhead_per_log2 = 0.5e-3;

  /// Amdahl serial fraction of each task's work: T_comp = W*(1-f)/(P*rate)
  /// + W*f/rate. This is the "scalability of the parallelization tends to
  /// decrease when more processors are used" effect the paper cites to
  /// explain why the task-combination gain shrinks at higher node counts.
  double serial_fraction = 3e-3;
};

/// Caltech-Paragon-like machine with a configurable PFS stripe factor
/// (the paper tests 16 and 64).
MachineModel paragon_like(std::size_t stripe_factor);

/// ANL-SP-like machine: ~4x faster nodes, faster switch, PIOFS with 80
/// slices but no asynchronous read API.
MachineModel sp_like(std::size_t stripe_factor = 80);

}  // namespace pstap::sim
