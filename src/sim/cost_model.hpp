// Per-task cost model: prices each pipeline task's receive/compute/send
// phases on a MachineModel — the paper's T_i = W_i/P_i + C_i + V_i
// (eq. 6) made concrete, including the file-system service model and the
// async-vs-sync read distinction.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "pipeline/task_spec.hpp"
#include "sim/machine.hpp"
#include "stap/workload.hpp"

namespace pstap::sim {

/// Priced phases of one task for one CPI.
struct StageCost {
  pipeline::TaskKind kind{};
  int nodes = 0;

  Seconds receive = 0;  ///< reported receive phase (includes residual I/O wait)
  Seconds compute = 0;  ///< W_i/(P_i * rate) + V_i
  Seconds send = 0;

  /// Stage busy time per CPI — what throughput sees. With asynchronous I/O
  /// the file read overlaps compute+send, so occupancy = max(io, rest);
  /// synchronous I/O serializes them.
  Seconds occupancy = 0;

  /// Raw file-read service time (zero for non-I/O tasks).
  Seconds io = 0;

  Seconds total() const { return receive + compute + send; }
};

class CostModel {
 public:
  CostModel(pipeline::PipelineSpec spec, MachineModel machine);

  const pipeline::PipelineSpec& spec() const noexcept { return spec_; }
  const MachineModel& machine() const noexcept { return machine_; }

  /// Cost of task `index` in the spec's task list.
  StageCost cost(std::size_t index) const;

  /// Costs for the whole pipeline, in task order.
  std::vector<StageCost> all() const;

  /// Service time for reading one CPI file through the parallel file
  /// system with `nodes` clients: max of the server side (per-stripe-
  /// directory queues) and the client side (per-node link injection).
  Seconds io_read_time(int nodes) const;

  /// Network transfer phase time: `bytes` split over `nodes` receivers
  /// (or senders), each touching `peers` remote endpoints.
  Seconds net_time(double bytes, int nodes, int peers) const;

 private:
  pipeline::PipelineSpec spec_;
  MachineModel machine_;
  stap::WorkloadModel work_;
};

}  // namespace pstap::sim
