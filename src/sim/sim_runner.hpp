// SimRunner: discrete-event execution of a PipelineSpec on a MachineModel.
//
// Each task is a stage server whose per-CPI busy time comes from the
// CostModel; stages are wired along the paper's spatial edges (with the
// beamforming fork/join) and the temporal weight edges (weights computed
// at CPI k are consumed at k+1). The source releases CPIs at the radar
// rate — by default the pipeline's sustainable rate, i.e. the bottleneck
// period — and the runner measures steady-state throughput (from report
// inter-departure times) and latency (entry to detection report), which in
// the deterministic setting reproduce the paper's equations (1)-(4).
#pragma once

#include <map>

#include "pipeline/metrics.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"

namespace pstap::sim {

struct SimOptions {
  int cpis = 64;    ///< CPIs pushed through the simulated pipeline
  int warmup = 16;  ///< leading CPIs excluded from steady-state statistics

  /// Source period in seconds; 0 = automatic (bottleneck occupancy, the
  /// saturating radar rate the paper assumes).
  Seconds input_period = 0;

  /// Round-robin task replication (the "Round Robin Scheduling" boxes of
  /// the paper's Figs. 3-4): a task with R replicas processes CPI k on
  /// instance k mod R, multiplying its sustainable rate by R without
  /// changing per-CPI latency. Each replica is assumed to get the task's
  /// full node assignment (extra nodes are the price of the throughput).
  /// Not allowed on tasks that read the file system (the I/O servers are
  /// shared, so replication cannot parallelize them).
  std::map<pipeline::TaskKind, int> replicas;

  /// What-if cost model for the supervision subsystem: a node of `task`
  /// crashes while serving `cpi`. The CPI's service time is extended by
  /// the failure-detection delay, the recovery (respawn or failover)
  /// delay, and any re-executed work — checkpointed replay re-reads its
  /// inputs from the ring, so a CPI-start crash loses no work
  /// (lost_work = 0) while a crash at the send phase re-runs the whole
  /// compute (lost_work = the stage occupancy). Downstream stages stall
  /// accordingly, which is exactly the availability cost the functional
  /// runner's supervisor pays.
  struct CrashEvent {
    pipeline::TaskKind task{};
    int cpi = 0;
    Seconds detection = 0;  ///< death -> monitor action (heartbeat bound)
    Seconds recovery = 0;   ///< respawn / failover latency
    Seconds lost_work = 0;  ///< re-executed service time
  };
  std::vector<CrashEvent> crashes;
};

struct SimResult {
  pipeline::PipelineMetrics metrics;  ///< per-task phases from the cost model
  std::vector<StageCost> costs;       ///< raw costs, task order

  double measured_throughput = 0;     ///< CPIs/s from report departures
  Seconds measured_latency = 0;       ///< mean entry->report, steady state
  std::vector<double> utilization;    ///< per-task busy fraction, steady state
};

class SimRunner {
 public:
  SimRunner(pipeline::PipelineSpec spec, MachineModel machine, SimOptions opt = {});

  SimResult run();

  const CostModel& cost_model() const noexcept { return model_; }

 private:
  CostModel model_;
  SimOptions opt_;
};

}  // namespace pstap::sim
