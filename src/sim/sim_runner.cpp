#include "sim/sim_runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "common/simd.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace pstap::sim {

using pipeline::TaskKind;

SimRunner::SimRunner(pipeline::PipelineSpec spec, MachineModel machine, SimOptions opt)
    : model_(std::move(spec), std::move(machine)), opt_(opt) {
  PSTAP_REQUIRE(opt_.cpis >= 2, "need at least two CPIs");
  PSTAP_REQUIRE(opt_.warmup >= 0 && opt_.warmup < opt_.cpis - 1,
                "warmup must leave at least two steady-state CPIs");
  PSTAP_REQUIRE(opt_.input_period >= 0, "input period must be non-negative");
}

namespace {

struct Stage {
  StageCost cost;
  int needed = 0;                 // inputs per CPI
  std::map<int, int> arrived;     // cpi -> inputs arrived so far
  int replicas = 1;               // round-robin instances (CPI k -> k % replicas)
  std::vector<int> next_k;        // per replica: next CPI it will process
  std::vector<bool> busy;         // per replica
  Seconds busy_time = 0;          // accumulated over the steady window, all replicas
  struct OutEdge {
    int dest;
    int delay;  // CPI offset at the consumer (1 for the temporal edges)
  };
  std::vector<OutEdge> out;
};

}  // namespace

SimResult SimRunner::run() {
  const auto& spec = model_.spec();
  const int n = static_cast<int>(spec.tasks.size());
  std::vector<Stage> stages(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Stage& s = stages[static_cast<std::size_t>(i)];
    s.cost = model_.cost(static_cast<std::size_t>(i));
    const auto rep = opt_.replicas.find(s.cost.kind);
    s.replicas = rep == opt_.replicas.end() ? 1 : rep->second;
    PSTAP_REQUIRE(s.replicas >= 1, "replica counts must be >= 1");
    const bool reads_files =
        s.cost.kind == TaskKind::kParallelRead ||
        (s.cost.kind == TaskKind::kDoppler &&
         spec.io == pipeline::IoStrategy::kEmbedded);
    PSTAP_REQUIRE(s.replicas == 1 || !reads_files,
                  "file-reading tasks cannot be replicated (shared I/O servers)");
    s.next_k.resize(static_cast<std::size_t>(s.replicas));
    s.busy.assign(static_cast<std::size_t>(s.replicas), false);
    for (int r = 0; r < s.replicas; ++r) s.next_k[static_cast<std::size_t>(r)] = r;
  }

  // Simulated-time tracing: one stream per stage, one lane per replica.
  // Timestamps are simulated seconds scaled to ns, counted from the sim's
  // own zero epoch (the exporter does not rebase them further in practice:
  // a trace holds either wall-clock or simulated events, not both).
  if (obs::trace_enabled()) {
    for (int i = 0; i < n; ++i) {
      obs::TraceRecorder::global().set_process_name(
          i, std::string("sim ") +
                 pipeline::task_name(stages[static_cast<std::size_t>(i)].cost.kind));
    }
  }

  // Crash events: (stage, cpi) -> extra service seconds.
  std::map<std::pair<int, int>, Seconds> crash_extra;
  for (const SimOptions::CrashEvent& c : opt_.crashes) {
    PSTAP_REQUIRE(c.cpi >= 0 && c.cpi < opt_.cpis, "crash cpi out of range");
    PSTAP_REQUIRE(c.detection >= 0 && c.recovery >= 0 && c.lost_work >= 0,
                  "crash delays must be non-negative");
    const int si = spec.find(c.task);
    PSTAP_REQUIRE(si >= 0, "crash event targets a task absent from the spec");
    crash_extra[{si, c.cpi}] += c.detection + c.recovery + c.lost_work;
  }
  const auto extra_of = [&](int si, int k) -> Seconds {
    const auto it = crash_extra.find({si, k});
    return it == crash_extra.end() ? 0.0 : it->second;
  };

  const auto idx = [&](TaskKind kind) { return spec.find(kind); };
  const int i_read = idx(TaskKind::kParallelRead);
  const int i_dop = idx(TaskKind::kDoppler);
  const int i_we = idx(TaskKind::kWeightsEasy);
  const int i_wh = idx(TaskKind::kWeightsHard);
  const int i_be = idx(TaskKind::kBeamformEasy);
  const int i_bh = idx(TaskKind::kBeamformHard);
  const int i_pc = spec.combined_pc_cfar ? idx(TaskKind::kPulseCompressionCfar)
                                         : idx(TaskKind::kPulseCompression);
  const int i_cfar = spec.combined_pc_cfar ? -1 : idx(TaskKind::kCfar);
  const int i_last = spec.combined_pc_cfar ? i_pc : i_cfar;

  auto connect = [&](int from, int to, int delay = 0) {
    stages[static_cast<std::size_t>(from)].out.push_back({to, delay});
    stages[static_cast<std::size_t>(to)].needed += 1;
  };
  if (i_read >= 0) connect(i_read, i_dop);
  connect(i_dop, i_we);
  connect(i_dop, i_wh);
  connect(i_dop, i_be);
  connect(i_dop, i_bh);
  connect(i_we, i_be, /*delay=*/1);  // temporal: weights(k) used at k+1
  connect(i_wh, i_bh, /*delay=*/1);
  connect(i_be, i_pc);
  connect(i_bh, i_pc);
  if (i_cfar >= 0) connect(i_pc, i_cfar);

  // Source feeds the head stage; CPI 0's weights are the precomputed
  // conventional set, available immediately on the temporal edges.
  const int head = i_read >= 0 ? i_read : i_dop;
  stages[static_cast<std::size_t>(head)].needed += 1;  // the source token
  stages[static_cast<std::size_t>(i_be)].arrived[0] += 1;
  stages[static_cast<std::size_t>(i_bh)].arrived[0] += 1;

  // Radar rate: the bottleneck period unless overridden; replication
  // multiplies a stage's sustainable rate.
  Seconds period = opt_.input_period;
  if (period <= 0) {
    for (const Stage& s : stages) {
      period = std::max(period, s.cost.occupancy / s.replicas);
    }
  }

  EventQueue queue;
  // Per-stage per-CPI service-time distributions over the timed window —
  // constants in the clean deterministic model, but crash events and
  // future stochastic service models put real tails here, and the
  // RunReport carries them out as a "service" phase histogram.
  std::vector<obs::Histogram> service_hist(static_cast<std::size_t>(n));
  std::vector<Seconds> entry(static_cast<std::size_t>(opt_.cpis), -1);
  std::vector<Seconds> exit_t(static_cast<std::size_t>(opt_.cpis), -1);
  const Seconds steady_start_guess = 0;  // refined below via warmup indices

  // Forward declaration via std::function: stages trigger each other.
  // CPI k is handled by replica k % replicas of each stage.
  std::function<void(int)> try_start = [&](int si) {
    Stage& s = stages[static_cast<std::size_t>(si)];
    for (int r = 0; r < s.replicas; ++r) {
      const std::size_t ri = static_cast<std::size_t>(r);
      if (s.busy[ri] || s.next_k[ri] >= opt_.cpis) continue;
      const int k = s.next_k[ri];
      const auto it = s.arrived.find(k);
      if (it == s.arrived.end() || it->second < s.needed) continue;
      s.busy[ri] = true;
      if (si == head) entry[static_cast<std::size_t>(k)] = queue.now();
      const bool timed = k >= opt_.warmup;
      const Seconds service = s.cost.occupancy + extra_of(si, k);
      queue.schedule_in(service, [&, si, k, ri, timed, service] {
        Stage& self = stages[static_cast<std::size_t>(si)];
        self.busy[ri] = false;
        self.next_k[ri] = k + self.replicas;
        self.arrived.erase(k);
        if (timed) {
          self.busy_time += service;
          service_hist[static_cast<std::size_t>(si)].record(service);
        }
        if (obs::trace_enabled()) {
          const std::int64_t dur_ns = std::llround(service * 1e9);
          const std::int64_t end_ns = std::llround(queue.now() * 1e9);
          obs::TraceRecorder::global().complete(
              "sim", pipeline::task_name(self.cost.kind), si, end_ns - dur_ns,
              dur_ns, k, /*detail=*/{}, /*tid=*/static_cast<std::int64_t>(ri));
        }
        if (si == i_last) exit_t[static_cast<std::size_t>(k)] = queue.now();
        for (const Stage::OutEdge& e : self.out) {
          const int dest_k = k + e.delay;
          if (dest_k < opt_.cpis) {
            stages[static_cast<std::size_t>(e.dest)].arrived[dest_k] += 1;
            try_start(e.dest);
          }
        }
        try_start(si);
      });
    }
  };

  // Source: CPI k becomes available at k * period.
  for (int k = 0; k < opt_.cpis; ++k) {
    queue.schedule_at(static_cast<Seconds>(k) * period, [&, k] {
      stages[static_cast<std::size_t>(head)].arrived[k] += 1;
      try_start(head);
    });
  }

  queue.run();
  (void)steady_start_guess;

  // --- statistics over the steady window [warmup, cpis) ---
  SimResult result;
  result.costs.reserve(stages.size());
  for (const Stage& s : stages) {
    result.costs.push_back(s.cost);
    pipeline::TaskTiming t;
    t.kind = s.cost.kind;
    t.nodes = s.cost.nodes;
    t.receive = s.cost.receive;
    t.compute = s.cost.compute;
    t.send = s.cost.send;
    result.metrics.tasks.push_back(t);
  }

  const std::size_t lo = static_cast<std::size_t>(opt_.warmup);
  const std::size_t hi = static_cast<std::size_t>(opt_.cpis);
  PSTAP_CHECK(exit_t[hi - 1] >= 0 && exit_t[lo] >= 0, "pipeline did not drain");
  result.measured_throughput =
      static_cast<double>(hi - 1 - lo) / (exit_t[hi - 1] - exit_t[lo]);
  Seconds lat = 0;
  for (std::size_t k = lo; k < hi; ++k) {
    PSTAP_CHECK(entry[k] >= 0 && exit_t[k] >= entry[k], "incomplete CPI record");
    lat += exit_t[k] - entry[k];
  }
  result.measured_latency = lat / static_cast<double>(hi - lo);

  const Seconds window = exit_t[hi - 1] - (static_cast<Seconds>(lo) * period);
  for (const Stage& s : stages) {
    result.utilization.push_back(
        window > 0 ? s.busy_time / (window * s.replicas) : 0.0);
  }

  // --- Structured RunReport: contributed to whichever ReportSession is
  // active (a bench main's, typically). Labels are derived from the
  // configuration so every run of a sweep lands under a distinct key. ---
  if (obs::report_enabled()) {
    const MachineModel& machine = model_.machine();
    const stap::RadarParams& p = spec.params;
    obs::RunReport report;
    report.kind = "sim";
    report.label =
        std::string("sim ") + machine.name + " " +
        (spec.io == pipeline::IoStrategy::kEmbedded ? "embedded" : "separate") +
        (spec.combined_pc_cfar ? " combined" : "") +
        " n=" + std::to_string(spec.total_nodes());
    if (machine.straggler_servers > 0 && machine.straggler_slowdown != 1.0) {
      char suffix[48];
      std::snprintf(suffix, sizeof suffix, " straggler=%zux%.3g",
                    machine.straggler_servers, machine.straggler_slowdown);
      report.label += suffix;
    }
    report.geometry = {p.channels, p.pulses,         p.ranges,
                       p.beams,    p.doppler_bins(), p.cube_bytes()};
    report.config.machine = machine.name;
    report.config.io_strategy =
        spec.io == pipeline::IoStrategy::kEmbedded ? "embedded" : "separate";
    report.config.combined_pc_cfar = spec.combined_pc_cfar;
    report.config.stripe_factor = machine.stripe_factor;
    report.config.simd_backend = simd::backend_name(simd::active());
    report.config.cpis = opt_.cpis;
    report.config.warmup = opt_.warmup;
    report.config.total_nodes = spec.total_nodes();
    report.config.straggler_servers =
        static_cast<int>(machine.straggler_servers);
    report.config.straggler_slowdown = machine.straggler_slowdown;
    report.totals.throughput_cpis_per_s = result.measured_throughput;
    report.totals.latency_s = result.measured_latency;
    for (std::size_t i = 0; i < stages.size(); ++i) {
      const StageCost& c = stages[i].cost;
      obs::RunReport::Task task;
      task.name = pipeline::task_name(c.kind);
      task.nodes = c.nodes;
      // Phase scalars are modeled constants (no per-CPI spread); the
      // per-CPI tail — crash events included — lives in "service".
      task.phases.push_back({"receive", c.receive, obs::Histogram{}});
      task.phases.push_back({"compute", c.compute, obs::Histogram{}});
      task.phases.push_back({"send", c.send, obs::Histogram{}});
      const obs::Histogram& sh = service_hist[i];
      task.phases.push_back({"service", sh.mean(), sh});
      report.tasks.push_back(std::move(task));
    }
    obs::ReportCollector::global().add(std::move(report));
  }
  return result;
}

}  // namespace pstap::sim
