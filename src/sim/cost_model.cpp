#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace pstap::sim {

using pipeline::TaskKind;

CostModel::CostModel(pipeline::PipelineSpec spec, MachineModel machine)
    : spec_(std::move(spec)), machine_(std::move(machine)), work_(spec_.params) {
  spec_.validate();
  PSTAP_REQUIRE(machine_.node_flops > 0 && machine_.network_bandwidth > 0 &&
                    machine_.io_server_bandwidth > 0 && machine_.stripe_factor >= 1,
                "machine model rates must be positive");
  PSTAP_REQUIRE(machine_.straggler_servers <= machine_.stripe_factor,
                "straggler_servers cannot exceed the stripe factor");
  PSTAP_REQUIRE(machine_.straggler_slowdown >= 1.0,
                "straggler_slowdown must be >= 1 (1 = no straggler)");
}

Seconds CostModel::io_read_time(int nodes) const {
  const double bytes = work_.cpi_file_bytes();
  const double servers = static_cast<double>(machine_.stripe_factor);
  const double chunks = std::ceil(bytes / static_cast<double>(machine_.stripe_unit));
  // Server side: stripe units are spread round-robin, so each stripe
  // directory services ~chunks/servers requests of ~stripe_unit bytes.
  const double per_server_chunks = std::ceil(chunks / servers);
  const double per_server_bytes = bytes / servers;
  Seconds server_side = per_server_chunks * machine_.io_chunk_latency +
                        per_server_bytes / machine_.io_server_bandwidth;
  // Stragglers: striping is static, so the chunks landing on a slow server
  // cannot be rerouted — the read completes when the slowest server does.
  // Each straggler carries the same ~chunks/servers share at slowdown x
  // the cost, so the read time is gated by that server.
  if (machine_.straggler_servers > 0 && machine_.straggler_slowdown > 1.0) {
    const Seconds straggler_side =
        machine_.straggler_slowdown *
        (per_server_chunks * machine_.io_chunk_latency +
         per_server_bytes / machine_.io_server_bandwidth);
    server_side = std::max(server_side, straggler_side);
  }
  // Client side: each of the P reading nodes pulls bytes/P over its link.
  const Seconds client_side =
      (bytes / static_cast<double>(nodes)) / machine_.network_bandwidth;
  return std::max(server_side, client_side);
}

Seconds CostModel::net_time(double bytes, int nodes, int peers) const {
  if (bytes <= 0) return 0;
  const double per_node = bytes / static_cast<double>(nodes);
  return static_cast<double>(std::max(peers, 1)) * machine_.network_latency +
         per_node / machine_.network_bandwidth;
}

namespace {
Seconds overhead(const MachineModel& m, int nodes) {
  return m.overhead_per_log2 * std::log2(static_cast<double>(nodes) + 1.0);
}
}  // namespace

StageCost CostModel::cost(std::size_t index) const {
  PSTAP_REQUIRE(index < spec_.tasks.size(), "task index out of range");
  const pipeline::TaskSpec& task = spec_.tasks[index];
  const int p = task.nodes;

  auto nodes_of = [&](TaskKind kind) {
    const int i = spec_.find(kind);
    return i < 0 ? 0 : spec_.tasks[static_cast<std::size_t>(i)].nodes;
  };
  const int n_read = nodes_of(TaskKind::kParallelRead);
  const int n_dop = nodes_of(TaskKind::kDoppler);
  const int n_we = nodes_of(TaskKind::kWeightsEasy);
  const int n_wh = nodes_of(TaskKind::kWeightsHard);
  const int n_be = nodes_of(TaskKind::kBeamformEasy);
  const int n_bh = nodes_of(TaskKind::kBeamformHard);
  const int n_pc_like = spec_.combined_pc_cfar
                            ? nodes_of(TaskKind::kPulseCompressionCfar)
                            : nodes_of(TaskKind::kPulseCompression);
  const int n_cfar = nodes_of(TaskKind::kCfar);

  StageCost c;
  c.kind = task.kind;
  c.nodes = p;

  const auto fill_compute = [&](const stap::TaskWork& w) {
    const double f = machine_.serial_fraction;
    c.compute = w.flops * (1.0 - f) / (static_cast<double>(p) * machine_.node_flops) +
                w.flops * f / machine_.node_flops + overhead(machine_, p);
  };

  switch (task.kind) {
    case TaskKind::kParallelRead: {
      const auto w = work_.parallel_read();
      c.io = io_read_time(p);
      c.compute = overhead(machine_, p);
      c.send = net_time(w.out_bytes, p, n_dop);
      if (machine_.async_io) {
        // The next CPI's read overlaps forwarding of the current one; the
        // reported receive phase is the residual wait.
        c.occupancy = std::max(c.io, c.compute + c.send);
        c.receive = std::max<Seconds>(c.io - (c.compute + c.send), 0);
      } else {
        c.occupancy = c.io + c.compute + c.send;
        c.receive = c.io;
      }
      return c;
    }
    case TaskKind::kDoppler: {
      const auto w = work_.doppler();
      fill_compute(w);
      c.send = net_time(w.out_bytes, p, n_be + n_bh + n_we + n_wh);
      if (spec_.io == pipeline::IoStrategy::kEmbedded) {
        c.io = io_read_time(p);
        if (machine_.async_io) {
          c.occupancy = std::max(c.io, c.compute + c.send);
          c.receive = std::max<Seconds>(c.io - (c.compute + c.send), 0);
        } else {
          c.occupancy = c.io + c.compute + c.send;
          c.receive = c.io;
        }
      } else {
        c.receive = net_time(w.in_bytes, p, n_read);
        c.occupancy = c.receive + c.compute + c.send;
      }
      return c;
    }
    case TaskKind::kWeightsEasy:
    case TaskKind::kWeightsHard: {
      const auto w = task.kind == TaskKind::kWeightsEasy ? work_.weights_easy()
                                                         : work_.weights_hard();
      const int n_bf = task.kind == TaskKind::kWeightsEasy ? n_be : n_bh;
      fill_compute(w);
      c.receive = net_time(w.in_bytes, p, n_dop);
      c.send = net_time(w.out_bytes, p, n_bf);
      c.occupancy = c.total();
      return c;
    }
    case TaskKind::kBeamformEasy:
    case TaskKind::kBeamformHard: {
      const bool easy = task.kind == TaskKind::kBeamformEasy;
      const auto w = easy ? work_.beamform_easy() : work_.beamform_hard();
      const int n_wc = easy ? n_we : n_wh;
      fill_compute(w);
      c.receive = net_time(w.in_bytes, p, n_dop + n_wc);
      c.send = net_time(w.out_bytes, p, n_pc_like);
      c.occupancy = c.total();
      return c;
    }
    case TaskKind::kPulseCompression: {
      const auto w = work_.pulse_compression();
      fill_compute(w);
      c.receive = net_time(w.in_bytes, p, n_be + n_bh);
      c.send = net_time(w.out_bytes, p, n_cfar);
      c.occupancy = c.total();
      return c;
    }
    case TaskKind::kCfar: {
      const auto w = work_.cfar();
      fill_compute(w);
      c.receive = net_time(w.in_bytes, p, n_pc_like);
      c.send = net_time(w.out_bytes, p, 1);  // detection reports to the sink
      c.occupancy = c.total();
      return c;
    }
    case TaskKind::kPulseCompressionCfar: {
      const auto w = work_.pulse_compression_cfar();
      fill_compute(w);
      c.receive = net_time(w.in_bytes, p, n_be + n_bh);
      c.send = net_time(w.out_bytes, p, 1);
      c.occupancy = c.total();
      return c;
    }
  }
  PSTAP_FAIL("unhandled task kind");
}

std::vector<StageCost> CostModel::all() const {
  std::vector<StageCost> costs;
  costs.reserve(spec_.tasks.size());
  for (std::size_t i = 0; i < spec_.tasks.size(); ++i) costs.push_back(cost(i));
  return costs;
}

}  // namespace pstap::sim
