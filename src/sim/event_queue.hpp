// Discrete-event simulation core: a deterministic time-ordered event queue.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace pstap::sim {

/// Deterministic event queue. Events at equal timestamps fire in insertion
/// order (a monotone sequence number breaks ties), so simulations are
/// exactly reproducible.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  Seconds now() const noexcept { return now_; }

  /// Schedule `cb` at absolute time `when` (>= now()).
  void schedule_at(Seconds when, Callback cb) {
    PSTAP_REQUIRE(when >= now_, "cannot schedule an event in the past");
    heap_.push(Event{when, seq_++, std::move(cb)});
  }

  /// Schedule `cb` `delay` seconds from now (delay >= 0).
  void schedule_in(Seconds delay, Callback cb) {
    PSTAP_REQUIRE(delay >= 0, "negative delay");
    schedule_at(now_ + delay, std::move(cb));
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Pop and execute the next event; returns false when the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // Move the event out before executing: the callback may schedule more.
    Event ev = heap_.top();
    heap_.pop();
    now_ = ev.when;
    ev.cb();
    return true;
  }

  /// Run until the queue drains or `max_events` fired.
  std::size_t run(std::size_t max_events = SIZE_MAX) {
    std::size_t fired = 0;
    while (fired < max_events && step()) ++fired;
    return fired;
  }

 private:
  struct Event {
    Seconds when;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  Seconds now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace pstap::sim
