#include "sim/machine.hpp"

namespace pstap::sim {

MachineModel paragon_like(std::size_t stripe_factor) {
  MachineModel m;
  m.name = "paragon-pfs" + std::to_string(stripe_factor);
  m.node_flops = 50e6;          // i860 sustained
  m.network_latency = 100e-6;   // NX message setup
  m.network_bandwidth = 40e6;   // sustained mesh link share per node
  m.stripe_factor = stripe_factor;
  m.stripe_unit = 64 * KiB;
  m.io_server_bandwidth = 6e6;  // RAID-backed PFS stripe directory
  m.io_chunk_latency = 1e-3;
  m.async_io = true;            // gopen + M_ASYNC, iread/ireadoff
  return m;
}

MachineModel sp_like(std::size_t stripe_factor) {
  MachineModel m;
  m.name = "sp-piofs" + std::to_string(stripe_factor);
  m.node_flops = 200e6;         // P2SC nodes, ~4x the Paragon
  m.network_latency = 40e-6;    // SP switch
  m.network_bandwidth = 35e6;
  m.stripe_factor = stripe_factor;
  m.stripe_unit = 64 * KiB;
  m.io_server_bandwidth = 6e6;
  m.io_chunk_latency = 1e-3;
  m.async_io = false;           // PIOFS has no asynchronous read API
  return m;
}

}  // namespace pstap::sim
