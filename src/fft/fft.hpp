// Complex FFT library built from scratch for the STAP kernels.
//
// Provides a planned, reusable transform:
//   * power-of-two lengths: iterative radix-2 Cooley–Tukey with precomputed
//     twiddle tables and bit-reversal permutation;
//   * arbitrary lengths: Bluestein's chirp-z algorithm layered on a
//     power-of-two plan.
//
// Batched entry points process many independent series per call by
// transposing lane blocks into structure-of-arrays (SoA) planes: element k
// of lane l lives at plane[k * lanes + l], so every butterfly's inner loop
// runs contiguously across lanes with a scalar twiddle broadcast — the
// shape the compiler auto-vectorizes. This replaces per-series dispatch
// (and per-element strided gathers) with one transpose per block.
//
// Thread safety: plans are immutable after construction. Every entry point
// taking a caller-provided scratch (BatchScratch or a scratch vector) is
// const and safe to call concurrently on a shared plan — give each thread
// its own scratch. The legacy no-scratch transform_strided overload mutates
// plan-local scratch and is NOT thread-safe; it survives for convenience
// only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/types.hpp"

namespace pstap::fft {

/// Transform direction.
enum class Direction { kForward, kInverse };

class FftPlan;

/// Reusable workspace for the batched/SoA transforms. One instance per
/// thread; it grows to fit the largest (plan length × lanes) it has seen
/// and is reused allocation-free after that. Usable with any plan.
class BatchScratch {
 public:
  BatchScratch() = default;

 private:
  friend class FftPlan;
  // 64-byte-aligned planes: the SIMD butterflies and twiddle kernels run
  // straight over these, so rows never straddle cache lines gratuitously.
  AlignedVector<float> re_, im_;    // primary SoA planes (n × lanes)
  AlignedVector<float> re2_, im2_;  // Bluestein convolution planes (m × lanes)
};

/// A planned complex-to-complex FFT of fixed length.
class FftPlan {
 public:
  /// Lane-block width of the batched transforms: series are processed in
  /// groups of up to this many, wide enough to fill SIMD registers.
  static constexpr std::size_t kBatchLanes = 16;

  /// Build a plan for length n (n >= 1). Arbitrary n supported.
  explicit FftPlan(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// In-place transform of `data` (size() elements).
  /// Inverse transforms are scaled by 1/N so that inverse(forward(x)) == x.
  /// Thread-safe on a shared plan.
  void transform(std::span<cfloat> data, Direction dir) const;

  /// Transform a strided sequence: elements data[0], data[stride], ...
  /// data[(size()-1)*stride]. Gathers into `scratch` (resized as needed),
  /// transforms and scatters back. Thread-safe on a shared plan when each
  /// caller provides its own scratch.
  void transform_strided(cfloat* data, std::size_t stride, Direction dir,
                         std::vector<cfloat>& scratch) const;

  /// Legacy convenience overload. NOT thread-safe: mutates plan-local
  /// scratch. Prefer the scratch-taking overload on shared plans.
  void transform_strided(cfloat* data, std::size_t stride, Direction dir);

  /// Transform `count` series laid out back to back in `data`
  /// (count * size() elements), lane-blocked through SoA planes.
  /// Thread-safe on a shared plan with per-caller scratch.
  void transform_batch(std::span<cfloat> data, std::size_t count, Direction dir,
                       BatchScratch& scratch) const;

  /// Convenience overload using a transient scratch (one allocation set per
  /// call, amortized over the batch). Thread-safe.
  void transform_batch(std::span<cfloat> data, std::size_t count, Direction dir) const;

  /// Batched strided transform: series b's element k lives at
  /// base[b * dist + k * stride]. Gathers lane blocks into SoA planes
  /// (one pass), transforms, scatters back. `dist` is the series-to-series
  /// distance in elements. Thread-safe with per-caller scratch.
  void transform_strided_batch(cfloat* base, std::size_t count, std::size_t dist,
                               std::size_t stride, Direction dir,
                               BatchScratch& scratch) const;

  /// Fused matched-filter convolution of `count` back-to-back series:
  /// data_b = IFFT(FFT(data_b) * spectrum), with the spectral multiply done
  /// in SoA form between the two transforms (no extra pass over memory).
  /// `spectrum` must hold size() elements. Thread-safe with per-caller
  /// scratch.
  void convolve_batch(std::span<cfloat> data, std::size_t count,
                      std::span<const cfloat> spectrum, BatchScratch& scratch) const;

  /// SoA-plane transform of `lanes` independent series: element k of lane l
  /// at re/im[k * lanes + l]; planes hold size() * lanes floats. This is
  /// the batched kernel itself — callers that already gather into SoA form
  /// (e.g. the Doppler filter) use it directly and skip the AoS transpose.
  /// Thread-safe with per-caller scratch (used only for non-pow2 lengths).
  void transform_soa(std::span<float> re, std::span<float> im, std::size_t lanes,
                     Direction dir, BatchScratch& scratch) const;

 private:
  void transform_pow2(std::span<cfloat> data, Direction dir) const;
  void transform_bluestein(std::span<cfloat> data, Direction dir) const;
  void soa_pow2(float* re, float* im, std::size_t lanes, Direction dir) const;
  void soa_bluestein(float* re, float* im, std::size_t lanes, Direction dir,
                     BatchScratch& scratch) const;

  std::size_t n_;
  bool pow2_;

  // Radix-2 machinery (for pow2_ == true, and inside Bluestein's helper plan).
  std::vector<std::uint32_t> bitrev_;
  std::vector<cfloat> twiddle_fwd_;  // per-stage packed twiddles
  std::vector<cfloat> twiddle_inv_;

  // Bluestein machinery (for pow2_ == false).
  std::size_t m_ = 0;                    // convolution length (power of two >= 2n-1)
  std::vector<cfloat> chirp_;            // a_k = exp(-i pi k^2 / n)
  std::vector<cfloat> chirp_conj_;       // conj(a_k): inverse-direction chirp
  std::vector<cfloat> chirp_fft_fwd_;    // FFT of zero-padded conjugate chirp
  std::vector<cfloat> chirp_fft_inv_;
  std::unique_ptr<FftPlan> helper_;      // pow2 plan of length m_

  std::vector<cfloat> scratch_;          // legacy transform_strided only
};

/// One-shot convenience transform (plans internally; prefer FftPlan in loops).
void transform(std::span<cfloat> data, Direction dir);

/// Element-wise spectral multiply: a[i] *= b[i]. Sizes must match.
void multiply_spectra(std::span<cfloat> a, std::span<const cfloat> b);

}  // namespace pstap::fft
