// Complex FFT library built from scratch for the STAP kernels.
//
// Provides a planned, reusable transform:
//   * power-of-two lengths: iterative radix-2 Cooley–Tukey with precomputed
//     twiddle tables and bit-reversal permutation;
//   * arbitrary lengths: Bluestein's chirp-z algorithm layered on a
//     power-of-two plan.
//
// Plans are immutable after construction and safe to share across threads
// for `transform` calls that use caller-provided scratch; the convenience
// strided/batched entry points keep per-plan scratch and are therefore not
// thread-safe — each mp rank owns its own plan in the pipeline code.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace pstap::fft {

/// Transform direction.
enum class Direction { kForward, kInverse };

/// A planned complex-to-complex FFT of fixed length.
class FftPlan {
 public:
  /// Build a plan for length n (n >= 1). Arbitrary n supported.
  explicit FftPlan(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// In-place transform of `data` (size() elements).
  /// Inverse transforms are scaled by 1/N so that inverse(forward(x)) == x.
  void transform(std::span<cfloat> data, Direction dir) const;

  /// Transform a strided sequence: elements data[0], data[stride], ...
  /// data[(size()-1)*stride]. Gathers into internal scratch, transforms and
  /// scatters back. Not thread-safe (uses plan-local scratch).
  void transform_strided(cfloat* data, std::size_t stride, Direction dir);

  /// Transform `count` contiguous transforms laid out back to back in
  /// `data` (count * size() elements).
  void transform_batch(std::span<cfloat> data, std::size_t count, Direction dir) const;

 private:
  void transform_pow2(std::span<cfloat> data, Direction dir) const;
  void transform_bluestein(std::span<cfloat> data, Direction dir) const;

  std::size_t n_;
  bool pow2_;

  // Radix-2 machinery (for pow2_ == true, and inside Bluestein's helper plan).
  std::vector<std::uint32_t> bitrev_;
  std::vector<cfloat> twiddle_fwd_;  // per-stage packed twiddles
  std::vector<cfloat> twiddle_inv_;

  // Bluestein machinery (for pow2_ == false).
  std::size_t m_ = 0;                    // convolution length (power of two >= 2n-1)
  std::vector<cfloat> chirp_;            // a_k = exp(-i pi k^2 / n)
  std::vector<cfloat> chirp_fft_fwd_;    // FFT of zero-padded conjugate chirp
  std::vector<cfloat> chirp_fft_inv_;
  std::unique_ptr<FftPlan> helper_;      // pow2 plan of length m_

  std::vector<cfloat> scratch_;          // for transform_strided
};

/// One-shot convenience transform (plans internally; prefer FftPlan in loops).
void transform(std::span<cfloat> data, Direction dir);

/// Element-wise spectral multiply: a[i] *= b[i]. Sizes must match.
void multiply_spectra(std::span<cfloat> a, std::span<const cfloat> b);

}  // namespace pstap::fft
