#include "fft/fft.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/simd.hpp"

namespace pstap::fft {

namespace {

// Twiddle layout: for each stage with half-block size h (1, 2, 4, ... n/2),
// h twiddles exp(sign * i * pi * j / h), j in [0, h). Total n-1 entries.
std::vector<cfloat> make_twiddles(std::size_t n, double sign) {
  std::vector<cfloat> tw;
  if (n < 2) return tw;
  tw.reserve(n - 1);
  for (std::size_t h = 1; h < n; h <<= 1) {
    for (std::size_t j = 0; j < h; ++j) {
      const double ang = sign * std::numbers::pi * static_cast<double>(j) /
                         static_cast<double>(h);
      tw.emplace_back(static_cast<float>(std::cos(ang)),
                      static_cast<float>(std::sin(ang)));
    }
  }
  return tw;
}

std::vector<std::uint32_t> make_bitrev(std::size_t n) {
  std::vector<std::uint32_t> rev(n, 0);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if ((i >> b) & 1u) r |= std::size_t{1} << (bits - 1 - b);
    }
    rev[i] = static_cast<std::uint32_t>(r);
  }
  return rev;
}

// AoS -> SoA: gather L series (series l's element k at base[l*dist + k*stride])
// into planes re/im[k*L + l]. std::complex<float> is layout-compatible with
// float[2], so the gather reads the raw float pairs.
void gather_soa(const cfloat* base, std::size_t n, std::size_t dist,
                std::size_t stride, std::size_t lanes, float* re, float* im) {
  const float* f = reinterpret_cast<const float*>(base);
  for (std::size_t k = 0; k < n; ++k) {
    float* rk = re + k * lanes;
    float* ik = im + k * lanes;
    const std::size_t row = 2 * k * stride;
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t idx = row + 2 * l * dist;
      rk[l] = f[idx];
      ik[l] = f[idx + 1];
    }
  }
}

// SoA -> AoS scatter, inverse of gather_soa.
void scatter_soa(cfloat* base, std::size_t n, std::size_t dist, std::size_t stride,
                 std::size_t lanes, const float* re, const float* im) {
  float* f = reinterpret_cast<float*>(base);
  for (std::size_t k = 0; k < n; ++k) {
    const float* rk = re + k * lanes;
    const float* ik = im + k * lanes;
    const std::size_t row = 2 * k * stride;
    for (std::size_t l = 0; l < lanes; ++l) {
      const std::size_t idx = row + 2 * l * dist;
      f[idx] = rk[l];
      f[idx + 1] = ik[l];
    }
  }
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  PSTAP_REQUIRE(n >= 1, "FFT length must be >= 1");
  if (pow2_) {
    bitrev_ = make_bitrev(n_);
    twiddle_fwd_ = make_twiddles(n_, -1.0);
    twiddle_inv_ = make_twiddles(n_, +1.0);
    return;
  }
  // Bluestein: x_k * a_k convolved with b_k where a_k = exp(-i pi k^2 / n),
  // b_k = conj(a_k) extended symmetrically; convolution done at length m.
  m_ = next_pow2(2 * n_ - 1);
  helper_ = std::make_unique<FftPlan>(m_);
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // k^2 mod 2n keeps the angle argument small for numerical accuracy.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double ang = std::numbers::pi * static_cast<double>(k2) /
                       static_cast<double>(n_);
    chirp_[k] = cfloat(static_cast<float>(std::cos(ang)),
                       static_cast<float>(-std::sin(ang)));
  }
  chirp_conj_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) chirp_conj_[k] = std::conj(chirp_[k]);
  auto build_kernel = [&](bool forward) {
    std::vector<cfloat> b(m_, cfloat{0.0f, 0.0f});
    for (std::size_t k = 0; k < n_; ++k) {
      const cfloat c = forward ? std::conj(chirp_[k]) : chirp_[k];
      b[k] = c;
      if (k != 0) b[m_ - k] = c;
    }
    helper_->transform(b, Direction::kForward);
    return b;
  };
  chirp_fft_fwd_ = build_kernel(true);
  chirp_fft_inv_ = build_kernel(false);
}

void FftPlan::transform_pow2(std::span<cfloat> data, Direction dir) const {
  cfloat* x = data.data();
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  const std::vector<cfloat>& tw =
      dir == Direction::kForward ? twiddle_fwd_ : twiddle_inv_;
  std::size_t tw_base = 0;
  for (std::size_t h = 1; h < n; h <<= 1) {
    for (std::size_t block = 0; block < n; block += 2 * h) {
      for (std::size_t j = 0; j < h; ++j) {
        const cfloat w = tw[tw_base + j];
        cfloat& a = x[block + j];
        cfloat& b = x[block + j + h];
        const cfloat t = w * b;
        b = a - t;
        a = a + t;
      }
    }
    tw_base += h;
  }
  if (dir == Direction::kInverse) {
    const float inv = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) x[i] *= inv;
  }
}

void FftPlan::transform_bluestein(std::span<cfloat> data, Direction dir) const {
  const bool fwd = dir == Direction::kForward;
  std::vector<cfloat> a(m_, cfloat{0.0f, 0.0f});
  for (std::size_t k = 0; k < n_; ++k) {
    const cfloat c = fwd ? chirp_[k] : std::conj(chirp_[k]);
    a[k] = data[k] * c;
  }
  helper_->transform(a, Direction::kForward);
  const std::vector<cfloat>& kernel = fwd ? chirp_fft_fwd_ : chirp_fft_inv_;
  for (std::size_t i = 0; i < m_; ++i) a[i] *= kernel[i];
  helper_->transform(a, Direction::kInverse);
  for (std::size_t k = 0; k < n_; ++k) {
    const cfloat c = fwd ? chirp_[k] : std::conj(chirp_[k]);
    data[k] = a[k] * c;
  }
  if (!fwd) {
    const float inv = 1.0f / static_cast<float>(n_);
    for (std::size_t k = 0; k < n_; ++k) data[k] *= inv;
  }
}

void FftPlan::transform(std::span<cfloat> data, Direction dir) const {
  PSTAP_REQUIRE(data.size() == n_, "FFT buffer size does not match plan length");
  if (n_ == 1) return;
  if (pow2_) {
    transform_pow2(data, dir);
  } else {
    transform_bluestein(data, dir);
  }
}

void FftPlan::transform_strided(cfloat* data, std::size_t stride, Direction dir,
                                std::vector<cfloat>& scratch) const {
  PSTAP_REQUIRE(data != nullptr, "null data");
  PSTAP_REQUIRE(stride >= 1, "stride must be >= 1");
  if (stride == 1) {
    transform({data, n_}, dir);
    return;
  }
  scratch.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) scratch[i] = data[i * stride];
  transform(std::span<cfloat>(scratch.data(), n_), dir);
  for (std::size_t i = 0; i < n_; ++i) data[i * stride] = scratch[i];
}

void FftPlan::transform_strided(cfloat* data, std::size_t stride, Direction dir) {
  transform_strided(data, stride, dir, scratch_);
}

// Lane-parallel radix-2 butterflies over SoA planes. The lane index is the
// contiguous innermost dimension, so each butterfly row is one call into
// the runtime-dispatched SIMD backend with the twiddle broadcast (see
// common/simd.hpp; the table is hoisted so dispatch is one indirect call
// per row, not per element).
void FftPlan::soa_pow2(float* re, float* im, std::size_t lanes, Direction dir) const {
  const std::size_t n = n_;
  const std::size_t L = lanes;
  const simd::Ops& vec = simd::ops();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) {
      float* ri = re + i * L;
      float* rj = re + j * L;
      float* ii = im + i * L;
      float* ij = im + j * L;
      for (std::size_t l = 0; l < L; ++l) std::swap(ri[l], rj[l]);
      for (std::size_t l = 0; l < L; ++l) std::swap(ii[l], ij[l]);
    }
  }
  const std::vector<cfloat>& tw =
      dir == Direction::kForward ? twiddle_fwd_ : twiddle_inv_;
  // Stage twiddles for half-block size h start at offset h - 1 (the stages
  // before it hold 1 + 2 + ... + h/2 = h - 1 entries), and cfloat is
  // layout-compatible with float[2] — each stage's twiddle run is already
  // the interleaved (wr, wi) array the row-batched kernels want. Stages are
  // consumed in fused pairs (h, 2h): one butterfly2_rows dispatch per group
  // of 4h rows, loading and storing each row once for both levels. An odd
  // log2(n) leaves one final single stage.
  std::size_t h = 1;
  for (; 2 * h < n; h <<= 2) {
    const float* w1 = reinterpret_cast<const float*>(tw.data() + (h - 1));
    const float* w2 = reinterpret_cast<const float*>(tw.data() + (2 * h - 1));
    for (std::size_t block = 0; block < n; block += 4 * h) {
      vec.butterfly2_rows(re + block * L, im + block * L, w1, w2, h, L);
    }
  }
  if (h < n) {
    const float* w = reinterpret_cast<const float*>(tw.data() + (h - 1));
    for (std::size_t block = 0; block < n; block += 2 * h) {
      vec.butterfly_rows(re + block * L, im + block * L, re + (block + h) * L,
                         im + (block + h) * L, w, h, L);
    }
  }
  if (dir == Direction::kInverse) {
    const float inv = 1.0f / static_cast<float>(n);
    const std::size_t total = n * L;
    vec.scale(re, inv, total);
    vec.scale(im, inv, total);
  }
}

// Bluestein over SoA planes. The per-element chirp/kernel factors are
// row-batched complex scales: cfloat arrays double as the interleaved
// (wr, wi) twiddle runs, with the direction's conjugation precomputed in
// chirp_conj_ so no sign flips appear in the lane loops.
void FftPlan::soa_bluestein(float* re, float* im, std::size_t lanes, Direction dir,
                            BatchScratch& scratch) const {
  const bool fwd = dir == Direction::kForward;
  const std::size_t L = lanes;
  const simd::Ops& vec = simd::ops();
  const float* chirp_w =
      reinterpret_cast<const float*>((fwd ? chirp_ : chirp_conj_).data());
  scratch.re2_.assign(m_ * L, 0.0f);
  scratch.im2_.assign(m_ * L, 0.0f);
  float* ar = scratch.re2_.data();
  float* ai = scratch.im2_.data();
  vec.cscale_rows_to(ar, ai, re, im, chirp_w, n_, L);
  helper_->soa_pow2(ar, ai, L, Direction::kForward);
  const std::vector<cfloat>& kernel = fwd ? chirp_fft_fwd_ : chirp_fft_inv_;
  vec.cscale_rows(ar, ai, reinterpret_cast<const float*>(kernel.data()), m_, L);
  helper_->soa_pow2(ar, ai, L, Direction::kInverse);
  vec.cscale_rows_to(re, im, ar, ai, chirp_w, n_, L);
  if (!fwd) {
    const float inv = 1.0f / static_cast<float>(n_);
    vec.scale(re, inv, n_ * L);
    vec.scale(im, inv, n_ * L);
  }
}

void FftPlan::transform_soa(std::span<float> re, std::span<float> im,
                            std::size_t lanes, Direction dir,
                            BatchScratch& scratch) const {
  PSTAP_REQUIRE(re.size() == n_ * lanes && im.size() == n_ * lanes,
                "SoA plane size does not match plan length * lanes");
  if (n_ == 1 || lanes == 0) return;
  if (pow2_) {
    soa_pow2(re.data(), im.data(), lanes, dir);
  } else {
    soa_bluestein(re.data(), im.data(), lanes, dir, scratch);
  }
}

void FftPlan::transform_batch(std::span<cfloat> data, std::size_t count,
                              Direction dir, BatchScratch& scratch) const {
  PSTAP_REQUIRE(data.size() == count * n_, "batch buffer size mismatch");
  transform_strided_batch(data.data(), count, n_, 1, dir, scratch);
}

void FftPlan::transform_batch(std::span<cfloat> data, std::size_t count,
                              Direction dir) const {
  BatchScratch scratch;
  transform_batch(data, count, dir, scratch);
}

void FftPlan::transform_strided_batch(cfloat* base, std::size_t count,
                                      std::size_t dist, std::size_t stride,
                                      Direction dir, BatchScratch& scratch) const {
  PSTAP_REQUIRE(base != nullptr || count == 0, "null data");
  if (count == 0 || n_ == 0) return;
  if (n_ == 1) return;  // length-1 transform is the identity
  scratch.re_.resize(n_ * kBatchLanes);
  scratch.im_.resize(n_ * kBatchLanes);
  PSTAP_REQUIRE(is_aligned(scratch.re_.data()) && is_aligned(scratch.im_.data()),
                "SoA scratch planes lost their SIMD alignment");
  for (std::size_t b0 = 0; b0 < count; b0 += kBatchLanes) {
    const std::size_t L = std::min(kBatchLanes, count - b0);
    cfloat* block = base + b0 * dist;
    gather_soa(block, n_, dist, stride, L, scratch.re_.data(), scratch.im_.data());
    transform_soa(std::span<float>(scratch.re_.data(), n_ * L),
                  std::span<float>(scratch.im_.data(), n_ * L), L, dir, scratch);
    scatter_soa(block, n_, dist, stride, L, scratch.re_.data(), scratch.im_.data());
  }
}

void FftPlan::convolve_batch(std::span<cfloat> data, std::size_t count,
                             std::span<const cfloat> spectrum,
                             BatchScratch& scratch) const {
  PSTAP_REQUIRE(data.size() == count * n_, "batch buffer size mismatch");
  PSTAP_REQUIRE(spectrum.size() == n_, "spectrum size does not match plan length");
  if (count == 0 || n_ == 0) return;
  scratch.re_.resize(n_ * kBatchLanes);
  scratch.im_.resize(n_ * kBatchLanes);
  PSTAP_REQUIRE(is_aligned(scratch.re_.data()) && is_aligned(scratch.im_.data()),
                "SoA scratch planes lost their SIMD alignment");
  for (std::size_t b0 = 0; b0 < count; b0 += kBatchLanes) {
    const std::size_t L = std::min(kBatchLanes, count - b0);
    cfloat* block = data.data() + b0 * n_;
    float* re = scratch.re_.data();
    float* im = scratch.im_.data();
    gather_soa(block, n_, n_, 1, L, re, im);
    transform_soa(std::span<float>(re, n_ * L), std::span<float>(im, n_ * L), L,
                  Direction::kForward, scratch);
    // Fused matched-filter multiply: one row-batched SIMD complex scale over
    // the whole spectrum (cfloat doubles as the interleaved w array).
    simd::ops().cscale_rows(re, im,
                            reinterpret_cast<const float*>(spectrum.data()),
                            n_, L);
    transform_soa(std::span<float>(re, n_ * L), std::span<float>(im, n_ * L), L,
                  Direction::kInverse, scratch);
    scatter_soa(block, n_, n_, 1, L, re, im);
  }
}

void transform(std::span<cfloat> data, Direction dir) {
  FftPlan plan(data.size());
  plan.transform(data, dir);
}

void multiply_spectra(std::span<cfloat> a, std::span<const cfloat> b) {
  PSTAP_REQUIRE(a.size() == b.size(), "spectra size mismatch");
  // std::complex<float> is layout-compatible with float[2]; the matched
  // filter's per-series multiply runs through the SIMD backend.
  simd::ops().cmul_interleaved(reinterpret_cast<float*>(a.data()),
                               reinterpret_cast<const float*>(b.data()),
                               a.size());
}

}  // namespace pstap::fft
