#include "fft/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace pstap::fft {

namespace {

// Twiddle layout: for each stage with half-block size h (1, 2, 4, ... n/2),
// h twiddles exp(sign * i * pi * j / h), j in [0, h). Total n-1 entries.
std::vector<cfloat> make_twiddles(std::size_t n, double sign) {
  std::vector<cfloat> tw;
  if (n < 2) return tw;
  tw.reserve(n - 1);
  for (std::size_t h = 1; h < n; h <<= 1) {
    for (std::size_t j = 0; j < h; ++j) {
      const double ang = sign * std::numbers::pi * static_cast<double>(j) /
                         static_cast<double>(h);
      tw.emplace_back(static_cast<float>(std::cos(ang)),
                      static_cast<float>(std::sin(ang)));
    }
  }
  return tw;
}

std::vector<std::uint32_t> make_bitrev(std::size_t n) {
  std::vector<std::uint32_t> rev(n, 0);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if ((i >> b) & 1u) r |= std::size_t{1} << (bits - 1 - b);
    }
    rev[i] = static_cast<std::uint32_t>(r);
  }
  return rev;
}

}  // namespace

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_pow2(n)) {
  PSTAP_REQUIRE(n >= 1, "FFT length must be >= 1");
  if (pow2_) {
    bitrev_ = make_bitrev(n_);
    twiddle_fwd_ = make_twiddles(n_, -1.0);
    twiddle_inv_ = make_twiddles(n_, +1.0);
    return;
  }
  // Bluestein: x_k * a_k convolved with b_k where a_k = exp(-i pi k^2 / n),
  // b_k = conj(a_k) extended symmetrically; convolution done at length m.
  m_ = next_pow2(2 * n_ - 1);
  helper_ = std::make_unique<FftPlan>(m_);
  chirp_.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    // k^2 mod 2n keeps the angle argument small for numerical accuracy.
    const std::size_t k2 = (k * k) % (2 * n_);
    const double ang = std::numbers::pi * static_cast<double>(k2) /
                       static_cast<double>(n_);
    chirp_[k] = cfloat(static_cast<float>(std::cos(ang)),
                       static_cast<float>(-std::sin(ang)));
  }
  auto build_kernel = [&](bool forward) {
    std::vector<cfloat> b(m_, cfloat{0.0f, 0.0f});
    for (std::size_t k = 0; k < n_; ++k) {
      const cfloat c = forward ? std::conj(chirp_[k]) : chirp_[k];
      b[k] = c;
      if (k != 0) b[m_ - k] = c;
    }
    helper_->transform(b, Direction::kForward);
    return b;
  };
  chirp_fft_fwd_ = build_kernel(true);
  chirp_fft_inv_ = build_kernel(false);
}

void FftPlan::transform_pow2(std::span<cfloat> data, Direction dir) const {
  cfloat* x = data.data();
  const std::size_t n = n_;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(x[i], x[j]);
  }
  const std::vector<cfloat>& tw =
      dir == Direction::kForward ? twiddle_fwd_ : twiddle_inv_;
  std::size_t tw_base = 0;
  for (std::size_t h = 1; h < n; h <<= 1) {
    for (std::size_t block = 0; block < n; block += 2 * h) {
      for (std::size_t j = 0; j < h; ++j) {
        const cfloat w = tw[tw_base + j];
        cfloat& a = x[block + j];
        cfloat& b = x[block + j + h];
        const cfloat t = w * b;
        b = a - t;
        a = a + t;
      }
    }
    tw_base += h;
  }
  if (dir == Direction::kInverse) {
    const float inv = 1.0f / static_cast<float>(n);
    for (std::size_t i = 0; i < n; ++i) x[i] *= inv;
  }
}

void FftPlan::transform_bluestein(std::span<cfloat> data, Direction dir) const {
  const bool fwd = dir == Direction::kForward;
  std::vector<cfloat> a(m_, cfloat{0.0f, 0.0f});
  for (std::size_t k = 0; k < n_; ++k) {
    const cfloat c = fwd ? chirp_[k] : std::conj(chirp_[k]);
    a[k] = data[k] * c;
  }
  helper_->transform(a, Direction::kForward);
  const std::vector<cfloat>& kernel = fwd ? chirp_fft_fwd_ : chirp_fft_inv_;
  for (std::size_t i = 0; i < m_; ++i) a[i] *= kernel[i];
  helper_->transform(a, Direction::kInverse);
  for (std::size_t k = 0; k < n_; ++k) {
    const cfloat c = fwd ? chirp_[k] : std::conj(chirp_[k]);
    data[k] = a[k] * c;
  }
  if (!fwd) {
    const float inv = 1.0f / static_cast<float>(n_);
    for (std::size_t k = 0; k < n_; ++k) data[k] *= inv;
  }
}

void FftPlan::transform(std::span<cfloat> data, Direction dir) const {
  PSTAP_REQUIRE(data.size() == n_, "FFT buffer size does not match plan length");
  if (n_ == 1) return;
  if (pow2_) {
    transform_pow2(data, dir);
  } else {
    transform_bluestein(data, dir);
  }
}

void FftPlan::transform_strided(cfloat* data, std::size_t stride, Direction dir) {
  PSTAP_REQUIRE(data != nullptr, "null data");
  PSTAP_REQUIRE(stride >= 1, "stride must be >= 1");
  if (stride == 1) {
    transform({data, n_}, dir);
    return;
  }
  scratch_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) scratch_[i] = data[i * stride];
  transform(scratch_, dir);
  for (std::size_t i = 0; i < n_; ++i) data[i * stride] = scratch_[i];
}

void FftPlan::transform_batch(std::span<cfloat> data, std::size_t count,
                              Direction dir) const {
  PSTAP_REQUIRE(data.size() == count * n_, "batch buffer size mismatch");
  for (std::size_t b = 0; b < count; ++b) {
    transform(data.subspan(b * n_, n_), dir);
  }
}

void transform(std::span<cfloat> data, Direction dir) {
  FftPlan plan(data.size());
  plan.transform(data, dir);
}

void multiply_spectra(std::span<cfloat> a, std::span<const cfloat> b) {
  PSTAP_REQUIRE(a.size() == b.size(), "spectra size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= b[i];
}

}  // namespace pstap::fft
