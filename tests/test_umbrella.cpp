// Compile-level test: the umbrella header exposes the whole public API.
#include <gtest/gtest.h>

#include "pstap.hpp"

namespace {

TEST(Umbrella, ExposesEveryModule) {
  const pstap::stap::RadarParams params = pstap::stap::RadarParams::test_small();
  pstap::stap::StapChain chain(params);
  EXPECT_EQ(chain.cpis_processed(), 0u);

  const pstap::sim::MachineModel machine = pstap::sim::paragon_like(16);
  EXPECT_TRUE(machine.async_io);

  const auto spec = pstap::pipeline::proportional_assignment(
      pstap::stap::RadarParams{}, 25, pstap::pipeline::IoStrategy::kEmbedded, false);
  EXPECT_EQ(spec.total_nodes(), 25);

  pstap::fft::FftPlan plan(8);
  EXPECT_EQ(plan.size(), 8u);

  pstap::Rng rng(1);
  EXPECT_NE(rng.next_u64(), 0u);
}

}  // namespace
