// Tests for the STAP kernels: parameter invariants, steering structure,
// cube packing, scene statistics, Doppler filtering physics (tones land in
// bins, stagger phase relation), adaptive weights (distortionless response,
// clutter suppression), pulse compression gain, CFAR behaviour, workload
// model consistency, and a full single-node processing chain that detects
// injected targets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <numbers>

#include "common/error.hpp"
#include "common/simd.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/cmatrix.hpp"
#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/cube_io.hpp"
#include "stap/data_cube.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/radar_params.hpp"
#include "stap/scene.hpp"
#include "stap/steering.hpp"
#include "stap/weights.hpp"
#include "stap/workload.hpp"

namespace pstap::stap {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ parameters --

TEST(RadarParamsTest, DefaultsValidate) {
  RadarParams p;
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.doppler_bins(), p.pulses - 1);
}

TEST(RadarParamsTest, BinPartitionIsExactAndDisjoint) {
  const RadarParams p = RadarParams::test_small();
  const auto easy = p.easy_bins();
  const auto hard = p.hard_bins();
  EXPECT_EQ(easy.size(), p.easy_bin_count());
  EXPECT_EQ(hard.size(), p.hard_bin_count());
  EXPECT_EQ(easy.size() + hard.size(), p.doppler_bins());
  for (const auto b : hard) EXPECT_TRUE(p.is_hard_bin(b));
  for (const auto b : easy) EXPECT_FALSE(p.is_hard_bin(b));
  // Hard bins form a cyclic interval around DC.
  EXPECT_TRUE(p.is_hard_bin(0));
  EXPECT_TRUE(p.is_hard_bin(p.hard_halfwidth));
  EXPECT_TRUE(p.is_hard_bin(p.doppler_bins() - p.hard_halfwidth));
  EXPECT_FALSE(p.is_hard_bin(p.hard_halfwidth + 1));
}

TEST(RadarParamsTest, DofScaling) {
  const RadarParams p = RadarParams::test_small();
  EXPECT_EQ(p.hard_dof(), 2 * p.easy_dof());
  EXPECT_EQ(p.easy_dof(), p.channels);
}

TEST(RadarParamsTest, ValidateCatchesBadConfigs) {
  RadarParams p = RadarParams::test_small();
  p.pulses = 1;
  EXPECT_THROW(p.validate(), PreconditionError);

  p = RadarParams::test_small();
  p.hard_halfwidth = p.doppler_bins();  // hard covers everything
  EXPECT_THROW(p.validate(), PreconditionError);

  p = RadarParams::test_small();
  p.training_ranges = p.hard_dof() - 1;
  EXPECT_THROW(p.validate(), PreconditionError);

  p = RadarParams::test_small();
  p.pc_code_length = p.ranges + 1;
  EXPECT_THROW(p.validate(), PreconditionError);

  p = RadarParams::test_small();
  p.cfar_pfa = 1.5;
  EXPECT_THROW(p.validate(), PreconditionError);
}

TEST(RadarParamsTest, BeamAnglesSpreadSymmetrically) {
  RadarParams p = RadarParams::test_small();
  p.beams = 5;
  EXPECT_NEAR(p.beam_angle(2), 0.0, 1e-12);
  EXPECT_NEAR(p.beam_angle(0), -p.beam_angle(4), 1e-12);
  EXPECT_THROW(p.beam_angle(5), PreconditionError);
}

// -------------------------------------------------------------- steering --

TEST(Steering, BoresightIsAllOnes) {
  const auto s = spatial_steering(8, 0.5, 0.0);
  for (const auto& v : s) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-6);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-6);
  }
}

TEST(Steering, UnitModulusAndLinearPhase) {
  const double theta = 0.3;
  const auto s = spatial_steering(8, 0.5, theta);
  const double k = 2.0 * std::numbers::pi * 0.5 * std::sin(theta);
  for (std::size_t c = 0; c < s.size(); ++c) {
    EXPECT_NEAR(std::abs(s[c]), 1.0, 1e-6);
    EXPECT_NEAR(std::arg(s[c] * std::polar(1.0f, static_cast<float>(-k * c))), 0.0,
                1e-4);
  }
}

TEST(Steering, StackedAppliesDopplerShift) {
  const auto s = spatial_steering(4, 0.5, 0.2);
  const double psi = 1.1;
  const auto st = stacked_steering(s, psi);
  ASSERT_EQ(st.size(), 8u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(std::abs(st[c] - s[c]), 0.0, 1e-6);
    const cfloat expected = std::polar(1.0f, static_cast<float>(psi)) * s[c];
    EXPECT_NEAR(std::abs(st[4 + c] - expected), 0.0, 1e-5);
  }
}

TEST(Steering, DopplerPhaseGrid) {
  EXPECT_NEAR(doppler_phase(0, 16), 0.0, 1e-12);
  EXPECT_NEAR(doppler_phase(4, 16), std::numbers::pi / 2, 1e-12);
  EXPECT_THROW(doppler_phase(16, 16), PreconditionError);
}

// ------------------------------------------------------------- data cube --

TEST(DataCubeTest, IndexingIsRangeContiguous) {
  DataCube cube(2, 3, 4);
  cube.at(1, 2, 3) = {7.0f, -1.0f};
  EXPECT_EQ(cube.range_series(1, 2)[3], (cfloat{7.0f, -1.0f}));
  EXPECT_EQ(cube.samples(), 24u);
}

TEST(DataCubeTest, FileOrderRoundTrip) {
  DataCube cube(3, 4, 5);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t p = 0; p < 4; ++p)
      for (std::size_t r = 0; r < 5; ++r)
        cube.at(c, p, r) = {float(c * 100 + p * 10 + r), 0.0f};

  std::vector<cfloat> raw(cube.slab_samples(0, 5));
  cube.pack_file_order(0, 5, raw);
  // File order is [range][pulse][channel]: element 0 is (c0,p0,r0),
  // element 1 is (c1,p0,r0).
  EXPECT_EQ(raw[0], (cfloat{0.0f, 0.0f}));
  EXPECT_EQ(raw[1], (cfloat{100.0f, 0.0f}));
  EXPECT_EQ(raw[3], (cfloat{10.0f, 0.0f}));  // (c0,p1,r0)

  DataCube back(3, 4, 5);
  back.unpack_file_order(0, 5, raw);
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t p = 0; p < 4; ++p)
      for (std::size_t r = 0; r < 5; ++r)
        EXPECT_EQ(back.at(c, p, r), cube.at(c, p, r));
}

TEST(DataCubeTest, SlabPackingMatchesSubrange) {
  DataCube cube(2, 3, 8);
  for (std::size_t i = 0; i < cube.flat().size(); ++i)
    cube.flat()[i] = {float(i), 0.0f};
  std::vector<cfloat> full(cube.slab_samples(0, 8)), slab(cube.slab_samples(2, 5));
  cube.pack_file_order(0, 8, full);
  cube.pack_file_order(2, 5, slab);
  const std::size_t per_range = 2 * 3;
  for (std::size_t i = 0; i < slab.size(); ++i) {
    EXPECT_EQ(slab[i], full[2 * per_range + i]);
  }
}

TEST(DataCubeTest, RejectsBadSlab) {
  DataCube cube(2, 3, 4);
  std::vector<cfloat> raw(6);
  EXPECT_THROW(cube.pack_file_order(3, 2, raw), PreconditionError);
  EXPECT_THROW(cube.pack_file_order(0, 5, raw), PreconditionError);
  EXPECT_THROW(cube.pack_file_order(0, 2, raw), PreconditionError);  // size
}

// ----------------------------------------------------------------- scene --

TEST(Scene, DeterministicPerSeedAndCpi) {
  const RadarParams p = RadarParams::test_small();
  SceneConfig cfg;
  cfg.targets.push_back({10, 8.0, 0.1, 15.0});
  SceneGenerator gen_a(p, cfg, 5), gen_b(p, cfg, 5), gen_c(p, cfg, 6);
  const DataCube a = gen_a.generate(3);
  const DataCube b = gen_b.generate(3);
  const DataCube c = gen_c.generate(3);
  const DataCube a4 = gen_a.generate(4);
  EXPECT_TRUE(std::equal(a.flat().begin(), a.flat().end(), b.flat().begin()));
  EXPECT_FALSE(std::equal(a.flat().begin(), a.flat().end(), c.flat().begin()));
  EXPECT_FALSE(std::equal(a.flat().begin(), a.flat().end(), a4.flat().begin()));
}

TEST(Scene, NoiseOnlyPowerMatchesConfig) {
  RadarParams p = RadarParams::test_small();
  SceneConfig cfg;
  cfg.clutter_patches = 0;
  cfg.noise_power = 2.0;
  SceneGenerator gen(p, cfg, 1);
  const DataCube cube = gen.generate(0);
  double power = 0;
  for (const auto& v : cube.flat()) power += std::norm(v);
  power /= static_cast<double>(cube.samples());
  EXPECT_NEAR(power, 2.0, 0.1);
}

TEST(Scene, TargetEnergyConfinedToCodeExtent) {
  RadarParams p = RadarParams::test_small();
  SceneConfig cfg;
  cfg.clutter_patches = 0;
  cfg.noise_power = 0.0;  // target only
  cfg.targets.push_back({20, 4.0, 0.0, 20.0});
  SceneGenerator gen(p, cfg, 1);
  const DataCube cube = gen.generate(0);
  for (std::size_t r = 0; r < p.ranges; ++r) {
    const double mag = std::abs(cube.at(0, 0, r));
    if (r >= 20 && r < 20 + p.pc_code_length) {
      EXPECT_GT(mag, 1.0) << "range " << r;
    } else {
      EXPECT_NEAR(mag, 0.0, 1e-5) << "range " << r;
    }
  }
}

TEST(Scene, RejectsTargetOutsideRangeWindow) {
  const RadarParams p = RadarParams::test_small();
  SceneConfig cfg;
  cfg.targets.push_back({p.ranges - 2, 4.0, 0.0, 20.0});  // code would overflow
  EXPECT_THROW(SceneGenerator(p, cfg, 1), PreconditionError);
}

TEST(Scene, ClutterConcentratesInHardBins) {
  RadarParams p = RadarParams::test_small();
  SceneConfig cfg;
  cfg.noise_power = 1e-6;  // essentially clutter only
  cfg.cnr_db = 60.0;
  SceneGenerator gen(p, cfg, 2);
  const DataCube cube = gen.generate(0);
  DopplerFilter filt(p);
  const DopplerOutput out = filt.process(cube);
  double hard_power = 0, easy_power = 0;
  for (const auto& v : out.hard.flat()) hard_power += std::norm(v);
  for (const auto& v : out.easy.flat()) easy_power += std::norm(v);
  // Normalize by sample counts before comparing densities.
  hard_power /= static_cast<double>(out.hard.samples());
  easy_power /= static_cast<double>(out.easy.samples());
  EXPECT_GT(hard_power, 20.0 * easy_power);
}

// --------------------------------------------------------------- doppler --

TEST(Doppler, PureToneLandsInItsBin) {
  RadarParams p = RadarParams::test_small();
  const std::size_t m = p.doppler_bins();
  const std::size_t tone_bin = 8;  // easy bin for hw=2, m=16
  ASSERT_FALSE(p.is_hard_bin(tone_bin));
  DataCube cube(p.channels, p.pulses, p.ranges);
  for (std::size_t c = 0; c < p.channels; ++c)
    for (std::size_t pp = 0; pp < p.pulses; ++pp)
      for (std::size_t r = 0; r < p.ranges; ++r)
        cube.at(c, pp, r) = std::polar(
            1.0f, static_cast<float>(2.0 * std::numbers::pi * tone_bin * pp / m));

  DopplerFilter filt(p);
  const DopplerOutput out = filt.process(cube);
  // Find the local slot of tone_bin.
  const auto it = std::find(out.easy_bin_ids.begin(), out.easy_bin_ids.end(), tone_bin);
  ASSERT_NE(it, out.easy_bin_ids.end());
  const std::size_t slot = static_cast<std::size_t>(it - out.easy_bin_ids.begin());
  // The tone bin carries (almost) all the energy: compare to total.
  double tone_power = 0, total = 0;
  for (std::size_t bi = 0; bi < out.easy.bins(); ++bi)
    for (std::size_t c = 0; c < p.channels; ++c)
      for (std::size_t r = 0; r < p.ranges; ++r) {
        const double e = std::norm(out.easy.at(bi, c, r));
        total += e;
        if (bi == slot) tone_power += e;
      }
  EXPECT_GT(tone_power, 0.5 * total);  // Hann mainlobe keeps >50% in-bin
}

TEST(Doppler, StaggerPhaseRelationForPureTone) {
  // For a pure tone at hard bin b, the stagger-1 spectrum equals the
  // stagger-0 spectrum rotated by the Doppler phase e^{i psi_b}.
  RadarParams p = RadarParams::test_small();
  const std::size_t m = p.doppler_bins();
  const std::size_t tone_bin = 1;  // hard bin
  ASSERT_TRUE(p.is_hard_bin(tone_bin));
  DataCube cube(p.channels, p.pulses, p.ranges);
  for (std::size_t c = 0; c < p.channels; ++c)
    for (std::size_t pp = 0; pp < p.pulses; ++pp)
      for (std::size_t r = 0; r < p.ranges; ++r)
        cube.at(c, pp, r) = std::polar(
            1.0f, static_cast<float>(2.0 * std::numbers::pi * tone_bin * pp / m));

  DopplerFilter filt(p);
  const DopplerOutput out = filt.process(cube);
  const auto it = std::find(out.hard_bin_ids.begin(), out.hard_bin_ids.end(), tone_bin);
  ASSERT_NE(it, out.hard_bin_ids.end());
  const std::size_t slot = static_cast<std::size_t>(it - out.hard_bin_ids.begin());
  const cfloat shift = std::polar(1.0f, static_cast<float>(doppler_phase(tone_bin, m)));
  for (std::size_t c = 0; c < p.channels; ++c) {
    const cfloat s0 = out.hard.at(slot, c, 0);
    const cfloat s1 = out.hard.at(slot, p.channels + c, 0);
    ASSERT_GT(std::abs(s0), 1.0f);
    EXPECT_NEAR(std::abs(s1 - shift * s0) / std::abs(s0), 0.0, 1e-3);
  }
}

TEST(Doppler, OutputShapesMatchParams) {
  const RadarParams p = RadarParams::test_small();
  DopplerFilter filt(p);
  DataCube cube(p.channels, p.pulses, 17);  // slab narrower than full CPI
  const DopplerOutput out = filt.process(cube);
  EXPECT_EQ(out.easy.bins(), p.easy_bin_count());
  EXPECT_EQ(out.easy.dof(), p.channels);
  EXPECT_EQ(out.easy.ranges(), 17u);
  EXPECT_EQ(out.hard.bins(), p.hard_bin_count());
  EXPECT_EQ(out.hard.dof(), 2 * p.channels);
}

TEST(Doppler, ProcessIntoReusesArraysAndMatchesProcess) {
  const RadarParams p = RadarParams::test_small();
  SceneGenerator gen(p, SceneConfig{}, 21);
  DopplerFilter filt(p);
  const DataCube cube0 = gen.generate(0);
  const DataCube cube1 = gen.generate(1);

  DopplerOutput reused = filt.process(cube0);
  const cfloat* easy_storage = reused.easy.flat().data();
  const cfloat* hard_storage = reused.hard.flat().data();

  filt.process_into(cube1, reused);  // same shapes: must not reallocate
  EXPECT_EQ(reused.easy.flat().data(), easy_storage);
  EXPECT_EQ(reused.hard.flat().data(), hard_storage);

  const DopplerOutput fresh = filt.process(cube1);
  const auto re = reused.easy.flat();
  const auto fe = fresh.easy.flat();
  ASSERT_EQ(re.size(), fe.size());
  for (std::size_t i = 0; i < re.size(); ++i) {
    EXPECT_NEAR(std::abs(re[i] - fe[i]), 0.0, 1e-5) << "easy element " << i;
  }
  const auto rh = reused.hard.flat();
  const auto fh = fresh.hard.flat();
  ASSERT_EQ(rh.size(), fh.size());
  for (std::size_t i = 0; i < rh.size(); ++i) {
    EXPECT_NEAR(std::abs(rh[i] - fh[i]), 0.0, 1e-5) << "hard element " << i;
  }
}

TEST(Doppler, RejectsMismatchedCube) {
  const RadarParams p = RadarParams::test_small();
  DopplerFilter filt(p);
  DataCube wrong(p.channels + 1, p.pulses, p.ranges);
  EXPECT_THROW(filt.process(wrong), PreconditionError);
}

TEST(Doppler, WindowIsNormalizedHann) {
  const RadarParams p = RadarParams::test_small();
  DopplerFilter filt(p);
  const auto& w = filt.window();
  ASSERT_EQ(w.size(), p.doppler_bins());
  double sum = 0;
  for (float v : w) sum += v;
  EXPECT_NEAR(sum / static_cast<double>(w.size()), 1.0, 1e-6);
  EXPECT_LT(w.front(), 0.1f);  // tapers at the edges
}

// --------------------------------------------------------------- weights --

TEST(Weights, NoiseOnlyWeightsApproachSteering) {
  // With white noise, R ~ sigma^2 I, so MVDR weights ~ s / |s|^2.
  RadarParams p = RadarParams::test_small();
  SceneConfig cfg;
  cfg.clutter_patches = 0;
  SceneGenerator gen(p, cfg, 3);
  DopplerFilter filt(p);
  const DopplerOutput out = filt.process(gen.generate(0));

  WeightComputer wc(p, out.easy_bin_ids, p.easy_dof());
  const WeightSet ws = wc.compute(out.easy);
  EXPECT_EQ(ws.bins(), out.easy.bins());
  EXPECT_EQ(ws.dof(), p.easy_dof());

  const auto s = wc.steering(out.easy_bin_ids[0], 0);
  const auto w = ws.at(0, 0);
  // Distortionless: w^H s == 1.
  cdouble gain{};
  for (std::size_t d = 0; d < s.size(); ++d)
    gain += std::conj(cdouble(w[d].real(), w[d].imag())) * cdouble(s[d].real(), s[d].imag());
  EXPECT_NEAR(std::abs(gain), 1.0, 0.05);
  // Direction: w is nearly parallel to s (cosine similarity ~ 1).
  double ws_dot = 0, wn = 0, sn = 0;
  for (std::size_t d = 0; d < s.size(); ++d) {
    ws_dot += std::abs(std::conj(cdouble(w[d].real(), w[d].imag())) *
                       cdouble(s[d].real(), s[d].imag()));
    wn += std::norm(w[d]);
    sn += std::norm(s[d]);
  }
  EXPECT_GT(ws_dot / std::sqrt(wn * sn), 0.9);
}

TEST(Weights, DistortionlessResponseOnHardBins) {
  RadarParams p = RadarParams::test_small();
  SceneConfig cfg;
  cfg.cnr_db = 40.0;
  SceneGenerator gen(p, cfg, 4);
  DopplerFilter filt(p);
  const DopplerOutput out = filt.process(gen.generate(0));

  WeightComputer wc(p, out.hard_bin_ids, p.hard_dof());
  const WeightSet ws = wc.compute(out.hard);
  for (std::size_t bi = 0; bi < ws.bins(); ++bi) {
    for (std::size_t beam = 0; beam < p.beams; ++beam) {
      const auto s = wc.steering(out.hard_bin_ids[bi], beam);
      const auto w = ws.at(bi, beam);
      cdouble gain{};
      for (std::size_t d = 0; d < s.size(); ++d)
        gain += std::conj(cdouble(w[d].real(), w[d].imag())) *
                cdouble(s[d].real(), s[d].imag());
      EXPECT_NEAR(std::abs(gain), 1.0, 0.02) << "bin " << bi << " beam " << beam;
    }
  }
}

TEST(Weights, AdaptiveBeatsConventionalAgainstClutter) {
  // SINR test: adaptive weights should suppress clutter much better than
  // conventional (steering-only) weights at a hard bin.
  RadarParams p = RadarParams::test_small();
  p.beams = 1;
  SceneConfig cfg;
  cfg.cnr_db = 50.0;
  SceneGenerator gen(p, cfg, 5);
  DopplerFilter filt(p);
  const DopplerOutput prev = filt.process(gen.generate(0));
  const DopplerOutput cur = filt.process(gen.generate(1));

  WeightComputer wc(p, prev.hard_bin_ids, p.hard_dof());
  const WeightSet adaptive = wc.compute(prev.hard);

  // Conventional: w = s / |s|^2. Evaluate at hard bin 2 (not DC): there the
  // angle-coupled ridge sits near endfire while the beam looks at
  // boresight, so clutter and look direction are separable. (At DC with a
  // boresight beam the ridge passes through the look direction — a
  // physical blind spot no filter can null.)
  const auto it2 = std::find(prev.hard_bin_ids.begin(), prev.hard_bin_ids.end(),
                             std::size_t{2});
  ASSERT_NE(it2, prev.hard_bin_ids.end());
  const std::size_t bi = static_cast<std::size_t>(it2 - prev.hard_bin_ids.begin());
  const auto s = wc.steering(prev.hard_bin_ids[bi], 0);
  double s2 = 0;
  for (const auto& v : s) s2 += std::norm(v);

  auto output_power = [&](std::span<const cfloat> w) {
    double pwr = 0;
    std::vector<cfloat> x(p.hard_dof());
    for (std::size_t r = 0; r < p.ranges; ++r) {
      cur.hard.snapshot(bi, r, x);
      cfloat y{};
      for (std::size_t d = 0; d < x.size(); ++d) y += std::conj(w[d]) * x[d];
      pwr += std::norm(y);
    }
    return pwr / static_cast<double>(p.ranges);
  };

  std::vector<cfloat> conventional(s.size());
  for (std::size_t d = 0; d < s.size(); ++d)
    conventional[d] = s[d] * static_cast<float>(1.0 / s2);

  const double adaptive_out = output_power(adaptive.at(bi, 0));
  const double conventional_out = output_power(conventional);
  // Both are distortionless toward s, so lower output power = more clutter
  // rejected. Demand at least 10 dB improvement.
  EXPECT_LT(adaptive_out * 10.0, conventional_out);
}

TEST(Weights, QrSolverMatchesCholeskySolver) {
  // Both SMI routes solve the same loaded system; the weights must agree
  // to numerical precision on both easy and hard bins.
  RadarParams p = RadarParams::test_small();
  SceneConfig cfg;
  cfg.cnr_db = 45.0;
  SceneGenerator gen(p, cfg, 6);
  DopplerFilter filt(p);
  const DopplerOutput out = filt.process(gen.generate(0));

  for (const bool hard : {false, true}) {
    const auto& ids = hard ? out.hard_bin_ids : out.easy_bin_ids;
    const auto& arr = hard ? out.hard : out.easy;
    const std::size_t dof = hard ? p.hard_dof() : p.easy_dof();
    WeightComputer chol(p, ids, dof, WeightSolver::kCholeskySmi);
    WeightComputer qr(p, ids, dof, WeightSolver::kQrSmi);
    const WeightSet a = chol.compute(arr);
    const WeightSet b = qr.compute(arr);
    double max_w = 0;
    for (const auto& v : a.flat()) max_w = std::max(max_w, double(std::abs(v)));
    for (std::size_t i = 0; i < a.flat().size(); ++i) {
      EXPECT_NEAR(std::abs(a.flat()[i] - b.flat()[i]), 0.0, 1e-3 * max_w)
          << (hard ? "hard" : "easy") << " weight " << i;
    }
  }
}

TEST(Weights, QrSolverIsDistortionless) {
  RadarParams p = RadarParams::test_small();
  SceneGenerator gen(p, SceneConfig{}, 7);
  DopplerFilter filt(p);
  const DopplerOutput out = filt.process(gen.generate(0));
  WeightComputer qr(p, out.hard_bin_ids, p.hard_dof(), WeightSolver::kQrSmi);
  const WeightSet ws = qr.compute(out.hard);
  for (std::size_t bi = 0; bi < ws.bins(); ++bi) {
    const auto s = qr.steering(out.hard_bin_ids[bi], 0);
    const auto w = ws.at(bi, 0);
    cdouble gain{};
    for (std::size_t d = 0; d < s.size(); ++d)
      gain += std::conj(cdouble(w[d].real(), w[d].imag())) *
              cdouble(s[d].real(), s[d].imag());
    EXPECT_NEAR(std::abs(gain), 1.0, 0.02) << "bin " << bi;
  }
}

TEST(Weights, RejectsMismatchedSpectra) {
  const RadarParams p = RadarParams::test_small();
  WeightComputer wc(p, p.easy_bins(), p.easy_dof());
  BinArray wrong(p.easy_bin_count() - 1, p.easy_dof(), p.ranges);
  EXPECT_THROW(wc.compute(wrong), PreconditionError);
  BinArray wrong_dof(p.easy_bin_count(), p.hard_dof(), p.ranges);
  EXPECT_THROW(wc.compute(wrong_dof), PreconditionError);
}

TEST(Weights, RejectsBadDofOrBins) {
  const RadarParams p = RadarParams::test_small();
  EXPECT_THROW(WeightComputer(p, p.easy_bins(), 3), PreconditionError);
  EXPECT_THROW(WeightComputer(p, {p.doppler_bins()}, p.easy_dof()), PreconditionError);
}

// -------------------------------------------------------------- beamform --

TEST(Beamform, HandComputedTwoChannelCase) {
  RadarParams p = RadarParams::test_small();
  Beamformer bf(p);
  BinArray spectra(1, p.channels, 3);
  WeightSet ws(1, p.beams, p.channels);
  // x = e_0 (only channel 0 nonzero), w = e_0 -> y = x_0.
  for (std::size_t r = 0; r < 3; ++r) spectra.at(0, 0, r) = {float(r + 1), 0.0f};
  for (std::size_t beam = 0; beam < p.beams; ++beam) ws.at(0, beam)[0] = {1.0f, 0.0f};
  const BeamArray y = bf.apply(spectra, ws);
  EXPECT_EQ(y.bins(), 1u);
  EXPECT_EQ(y.beams(), p.beams);
  for (std::size_t r = 0; r < 3; ++r)
    EXPECT_NEAR(std::abs(y.at(0, 0, r) - cfloat{float(r + 1), 0.0f}), 0.0, 1e-6);
}

TEST(Beamform, ConjugationConvention) {
  // y = w^H x: with w = i and x = i, y = conj(i)*i = 1.
  RadarParams p = RadarParams::test_small();
  p.beams = 1;
  Beamformer bf(p);
  BinArray spectra(1, p.channels, 1);
  WeightSet ws(1, 1, p.channels);
  spectra.at(0, 0, 0) = {0.0f, 1.0f};
  ws.at(0, 0)[0] = {0.0f, 1.0f};
  const BeamArray y = bf.apply(spectra, ws);
  EXPECT_NEAR(y.at(0, 0, 0).real(), 1.0f, 1e-6);
  EXPECT_NEAR(y.at(0, 0, 0).imag(), 0.0f, 1e-6);
}

TEST(Beamform, RejectsMismatchedWeights) {
  const RadarParams p = RadarParams::test_small();
  Beamformer bf(p);
  BinArray spectra(2, p.channels, 4);
  WeightSet ws(3, p.beams, p.channels);
  EXPECT_THROW(bf.apply(spectra, ws), PreconditionError);
}

// -------------------------------------------------------- pulse compress --

TEST(PulseCompress, CodeEchoCompressesToItsGate) {
  RadarParams p = RadarParams::test_small();
  PulseCompressor pc(p);
  const auto& code = pc.code();
  std::vector<cfloat> series(p.ranges, cfloat{});
  const std::size_t r0 = 40;
  for (std::size_t k = 0; k < code.size(); ++k) series[r0 + k] = code[k];
  pc.compress_series(series);
  // Peak at r0 with (normalized) amplitude ~1; elsewhere low sidelobes.
  EXPECT_NEAR(std::abs(series[r0]), 1.0, 1e-4);
  for (std::size_t r = 0; r < p.ranges; ++r) {
    if (r != r0) {
      EXPECT_LT(std::abs(series[r]), 0.8) << "range " << r;
    }
  }
}

TEST(PulseCompress, MatchesNaiveCircularCorrelation) {
  RadarParams p = RadarParams::test_small();
  p.ranges = 64;
  PulseCompressor pc(p);
  const auto& code = pc.code();
  Rng rng(9);
  std::vector<cfloat> series(p.ranges);
  for (auto& v : series) v = rng.complex_normal();
  const auto original = series;
  pc.compress_series(series);
  for (std::size_t r = 0; r < p.ranges; r += 7) {
    cdouble expect{};
    for (std::size_t k = 0; k < code.size(); ++k) {
      const cfloat v = original[(r + k) % p.ranges];
      expect += cdouble(v.real(), v.imag()) *
                std::conj(cdouble(code[k].real(), code[k].imag()));
    }
    expect /= static_cast<double>(code.size());
    EXPECT_NEAR(std::abs(cdouble(series[r].real(), series[r].imag()) - expect), 0.0,
                1e-3);
  }
}

TEST(PulseCompress, SnrGainOnNoisyEcho) {
  RadarParams p = RadarParams::test_small();
  PulseCompressor pc(p);
  const auto& code = pc.code();
  Rng rng(11);
  std::vector<cfloat> series(p.ranges);
  const double noise_power = 1.0;
  for (auto& v : series) v = rng.complex_normal(noise_power);
  const std::size_t r0 = 64;
  const float amp = 1.0f;  // 0 dB per-sample SNR
  for (std::size_t k = 0; k < code.size(); ++k) series[r0 + k] += amp * code[k];
  pc.compress_series(series);
  // Post-compression noise power ~ 1/L; peak ~ amp -> SNR gain ~ L (9 dB for L=8).
  double noise_est = 0;
  std::size_t count = 0;
  for (std::size_t r = 0; r < p.ranges; ++r) {
    if (r < r0 - 8 || r > r0 + 8) {
      noise_est += std::norm(series[r]);
      ++count;
    }
  }
  noise_est /= static_cast<double>(count);
  const double peak = std::norm(series[r0]);
  EXPECT_GT(peak / noise_est, from_db(6.0));  // ≥6 dB post-compression SNR
}

TEST(PulseCompress, WholeBeamArrayCompression) {
  RadarParams p = RadarParams::test_small();
  PulseCompressor pc(p);
  BeamArray beams(2, p.beams, p.ranges);
  const auto& code = pc.code();
  for (std::size_t k = 0; k < code.size(); ++k) beams.at(1, 0, 30 + k) = code[k];
  pc.compress(beams);
  EXPECT_NEAR(std::abs(beams.at(1, 0, 30)), 1.0, 1e-4);
  // Untouched (bin 0) rows stay zero.
  EXPECT_NEAR(std::abs(beams.at(0, 0, 30)), 0.0, 1e-6);
}

TEST(PulseCompress, BatchedCompressMatchesPerSeriesReference) {
  RadarParams p = RadarParams::test_small();
  PulseCompressor pc(p);
  Rng rng(77);
  BeamArray beams(p.doppler_bins(), p.beams, p.ranges);
  for (auto& v : beams.flat()) v = rng.complex_normal();

  // Reference: the scalar path, one series at a time.
  std::vector<std::vector<cfloat>> expected;
  for (std::size_t b = 0; b < beams.bins(); ++b) {
    for (std::size_t beam = 0; beam < beams.beams(); ++beam) {
      const auto row = beams.range_series(b, beam);
      std::vector<cfloat> series(row.begin(), row.end());
      pc.compress_series(series);
      expected.push_back(std::move(series));
    }
  }

  pc.compress(beams);  // batched fused path
  std::size_t idx = 0;
  for (std::size_t b = 0; b < beams.bins(); ++b) {
    for (std::size_t beam = 0; beam < beams.beams(); ++beam, ++idx) {
      const auto row = beams.range_series(b, beam);
      for (std::size_t r = 0; r < p.ranges; ++r) {
        EXPECT_NEAR(std::abs(row[r] - expected[idx][r]), 0.0, 1e-4)
            << "bin " << b << " beam " << beam << " range " << r;
      }
    }
  }
}

TEST(PulseCompress, RejectsWrongLengths) {
  const RadarParams p = RadarParams::test_small();
  PulseCompressor pc(p);
  std::vector<cfloat> wrong(p.ranges - 1);
  EXPECT_THROW(pc.compress_series(wrong), PreconditionError);
  BeamArray beams(1, 1, p.ranges + 1);
  EXPECT_THROW(pc.compress(beams), PreconditionError);
}

// ------------------------------------------------------------------ cfar --

TEST(Cfar, ThresholdScaleMatchesFormula) {
  const RadarParams p = RadarParams::test_small();
  CfarDetector cfar(p);
  const double t = 2.0 * static_cast<double>(p.cfar_training);
  EXPECT_NEAR(cfar.threshold_scale(), t * (std::pow(p.cfar_pfa, -1.0 / t) - 1.0), 1e-9);
}

TEST(Cfar, StrongSpikeIsDetected) {
  const RadarParams p = RadarParams::test_small();
  CfarDetector cfar(p);
  Rng rng(13);
  std::vector<cfloat> series(p.ranges);
  for (auto& v : series) v = rng.complex_normal();
  series[77] = {100.0f, 0.0f};
  const auto hits = cfar.detect_series(series);
  EXPECT_NE(std::find(hits.begin(), hits.end(), 77u), hits.end());
}

TEST(Cfar, FalseAlarmRateIsNearPfa) {
  RadarParams p = RadarParams::test_small();
  p.ranges = 4096;
  p.cfar_pfa = 1e-2;
  CfarDetector cfar(p);
  Rng rng(17);
  std::size_t alarms = 0, cells = 0;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<cfloat> series(p.ranges);
    for (auto& v : series) v = rng.complex_normal();
    alarms += cfar.detect_series(series).size();
    cells += p.ranges;
  }
  const double rate = static_cast<double>(alarms) / static_cast<double>(cells);
  EXPECT_GT(rate, 0.2 * p.cfar_pfa);
  EXPECT_LT(rate, 5.0 * p.cfar_pfa);
}

TEST(Cfar, GuardCellsProtectSpreadTargets) {
  // Energy adjacent to the cell under test sits in guard cells, not in the
  // noise estimate — a 2-cell-wide return must still be detected.
  const RadarParams p = RadarParams::test_small();
  CfarDetector cfar(p);
  std::vector<cfloat> series(p.ranges, cfloat{0.01f, 0.0f});
  series[50] = {10.0f, 0.0f};
  series[51] = {10.0f, 0.0f};  // within the guard window of cell 50
  const auto hits = cfar.detect_series(series);
  EXPECT_NE(std::find(hits.begin(), hits.end(), 50u), hits.end());
  EXPECT_NE(std::find(hits.begin(), hits.end(), 51u), hits.end());
}

TEST(Cfar, EdgeCellsUseOneSidedWindow) {
  const RadarParams p = RadarParams::test_small();
  CfarDetector cfar(p);
  std::vector<cfloat> series(p.ranges, cfloat{0.1f, 0.0f});
  series[0] = {50.0f, 0.0f};
  series[p.ranges - 1] = {50.0f, 0.0f};
  const auto hits = cfar.detect_series(series);
  EXPECT_NE(std::find(hits.begin(), hits.end(), 0u), hits.end());
  EXPECT_NE(std::find(hits.begin(), hits.end(), p.ranges - 1), hits.end());
}

TEST(Cfar, DetectFillsReportFields) {
  const RadarParams p = RadarParams::test_small();
  CfarDetector cfar(p);
  BeamArray beams(2, p.beams, p.ranges);
  beams.at(1, 1, 60) = {30.0f, 0.0f};
  for (std::size_t r = 0; r < p.ranges; ++r) {
    if (r != 60) beams.at(1, 1, r) = {0.05f, 0.0f};
  }
  const std::vector<std::size_t> bin_ids{3, 9};
  const auto dets = cfar.detect(beams, bin_ids);
  ASSERT_FALSE(dets.empty());
  bool found = false;
  for (const auto& d : dets) {
    if (d.range == 60 && d.bin == 9 && d.beam == 1) {
      found = true;
      EXPECT_GT(d.power, d.threshold);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Cfar, RejectsMismatchedBinIds) {
  const RadarParams p = RadarParams::test_small();
  CfarDetector cfar(p);
  BeamArray beams(2, p.beams, p.ranges);
  const std::vector<std::size_t> ids{1};
  EXPECT_THROW(cfar.detect(beams, ids), PreconditionError);
}

// -------------------------------------------------------------- workload --

TEST(Workload, HardTasksOutweighEasyPerBin) {
  const WorkloadModel wm(RadarParams::test_small());
  const RadarParams& p = wm.params();
  const double easy_per_bin =
      wm.weights_easy().flops / static_cast<double>(p.easy_bin_count());
  const double hard_per_bin =
      wm.weights_hard().flops / static_cast<double>(p.hard_bin_count());
  EXPECT_GT(hard_per_bin, 3.5 * easy_per_bin);  // ~4x from dof^2 covariance
  const double ebf = wm.beamform_easy().flops / static_cast<double>(p.easy_bin_count());
  const double hbf = wm.beamform_hard().flops / static_cast<double>(p.hard_bin_count());
  EXPECT_NEAR(hbf / ebf, 2.0, 1e-9);  // dof doubles
}

TEST(Workload, CombinedTaskSumsFlopsButDropsIntermediateBytes) {
  const WorkloadModel wm(RadarParams::test_small());
  const auto pc = wm.pulse_compression();
  const auto cf = wm.cfar();
  const auto both = wm.pulse_compression_cfar();
  EXPECT_DOUBLE_EQ(both.flops, pc.flops + cf.flops);
  EXPECT_DOUBLE_EQ(both.in_bytes, pc.in_bytes);
  EXPECT_LT(both.out_bytes, pc.out_bytes);  // no intermediate array shipped
}

TEST(Workload, VolumesAreConsistentAcrossTheChain) {
  const WorkloadModel wm(RadarParams::test_small());
  EXPECT_DOUBLE_EQ(wm.parallel_read().in_bytes, wm.cpi_file_bytes());
  EXPECT_DOUBLE_EQ(wm.parallel_read().out_bytes, wm.doppler().in_bytes);
  // PC receives what easy+hard beamforming emit.
  EXPECT_DOUBLE_EQ(wm.pulse_compression().in_bytes,
                   wm.beamform_easy().out_bytes + wm.beamform_hard().out_bytes);
  EXPECT_DOUBLE_EQ(wm.cfar().in_bytes, wm.pulse_compression().out_bytes);
}

TEST(Workload, AllPositive) {
  const WorkloadModel wm(RadarParams{});
  for (const auto& tw :
       {wm.doppler(), wm.weights_easy(), wm.weights_hard(), wm.beamform_easy(),
        wm.beamform_hard(), wm.pulse_compression(), wm.cfar(),
        wm.pulse_compression_cfar()}) {
    EXPECT_GT(tw.flops, 0.0);
    EXPECT_GT(tw.in_bytes, 0.0);
    EXPECT_GT(tw.out_bytes, 0.0);
  }
}

// ---------------------------------------------------------------- cube io --

class CubeIoTest : public ::testing::Test {
 protected:
  CubeIoTest() {
    root_ = fs::temp_directory_path() /
            ("pstap_cubeio_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~CubeIoTest() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  static std::atomic<int> counter_;
  fs::path root_;
};
std::atomic<int> CubeIoTest::counter_{0};

TEST_F(CubeIoTest, FullCubeRoundTrip) {
  const RadarParams p = RadarParams::test_small();
  pfs::StripedFileSystem pfs_fs(root_, pfs::paragon_pfs(4));
  SceneGenerator gen(p, SceneConfig{}, 7);
  const DataCube cube = gen.generate(0);
  write_cpi(pfs_fs, "cpi0", cube);
  EXPECT_EQ(pfs_fs.file_size("cpi0"), cpi_file_bytes(p));
  const DataCube back = read_cpi(pfs_fs, "cpi0", p);
  EXPECT_TRUE(std::equal(cube.flat().begin(), cube.flat().end(), back.flat().begin()));
}

TEST_F(CubeIoTest, SlabReadsMatchFullCube) {
  const RadarParams p = RadarParams::test_small();
  pfs::StripedFileSystem pfs_fs(root_, pfs::paragon_pfs(4));
  SceneGenerator gen(p, SceneConfig{}, 8);
  const DataCube cube = gen.generate(1);
  write_cpi(pfs_fs, "cpi1", cube);
  pfs::StripedFile f = pfs_fs.open("cpi1");
  const std::size_t r0 = 32, r1 = 96;
  const DataCube slab = read_cpi_slab(f, p, r0, r1);
  EXPECT_EQ(slab.ranges(), r1 - r0);
  for (std::size_t c = 0; c < p.channels; ++c)
    for (std::size_t pp = 0; pp < p.pulses; ++pp)
      for (std::size_t r = r0; r < r1; ++r)
        ASSERT_EQ(slab.at(c, pp, r - r0), cube.at(c, pp, r));
}

TEST_F(CubeIoTest, AsyncSlabReadMatchesSync) {
  const RadarParams p = RadarParams::test_small();
  pfs::StripedFileSystem pfs_fs(root_, pfs::paragon_pfs(4));
  SceneGenerator gen(p, SceneConfig{}, 9);
  write_cpi(pfs_fs, "cpi2", gen.generate(2));
  pfs::StripedFile f = pfs_fs.open("cpi2");
  const std::size_t r0 = 0, r1 = 64;
  const DataCube sync_cube = read_cpi_slab(f, p, r0, r1);
  std::vector<cfloat> raw((r1 - r0) * p.pulses * p.channels);
  pfs::IoRequest req = start_read_cpi_slab(f, p, r0, r1, raw);
  req.wait();
  const DataCube async_cube = unpack_slab(p, r0, r1, raw);
  EXPECT_TRUE(std::equal(sync_cube.flat().begin(), sync_cube.flat().end(),
                         async_cube.flat().begin()));
}

TEST(CubeIoNames, RoundRobinCyclesThroughFourFiles) {
  EXPECT_EQ(round_robin_name(0), "cpi_rr0");
  EXPECT_EQ(round_robin_name(3), "cpi_rr3");
  EXPECT_EQ(round_robin_name(4), "cpi_rr0");
  EXPECT_EQ(round_robin_name(7, 2), "cpi_rr1");
}

// ------------------------------------------------------- full chain (e2e) --

TEST(StapChain, DetectsInjectedTargetsEndToEnd) {
  RadarParams p = RadarParams::test_small();
  p.beams = 3;
  SceneConfig cfg;
  cfg.cnr_db = 40.0;
  // One easy-Doppler target at boresight, one hard-Doppler target off-axis.
  // The hard target sits at Doppler bin 1 where the clutter ridge is near
  // +30°; placing the target at -20° keeps it outside the ridge direction.
  const Target easy_target{40, 8.0, 0.0, 18.0};
  const Target hard_target{90, 1.0, -0.35, 25.0};
  cfg.targets = {easy_target, hard_target};
  SceneGenerator gen(p, cfg, 21);

  DopplerFilter filt(p);
  const DopplerOutput prev = filt.process(gen.generate(0));  // weight training
  const DopplerOutput cur = filt.process(gen.generate(1));   // detection CPI

  WeightComputer wc_easy(p, prev.easy_bin_ids, p.easy_dof());
  WeightComputer wc_hard(p, prev.hard_bin_ids, p.hard_dof());
  const WeightSet w_easy = wc_easy.compute(prev.easy);
  const WeightSet w_hard = wc_hard.compute(prev.hard);

  Beamformer bf(p);
  BeamArray y_easy = bf.apply(cur.easy, w_easy);
  BeamArray y_hard = bf.apply(cur.hard, w_hard);

  PulseCompressor pc(p);
  pc.compress(y_easy);
  pc.compress(y_hard);

  CfarDetector cfar(p);
  const auto dets_easy = cfar.detect(y_easy, cur.easy_bin_ids);
  const auto dets_hard = cfar.detect(y_hard, cur.hard_bin_ids);

  const auto has_detection = [](const std::vector<Detection>& dets,
                                const Target& t) {
    for (const auto& d : dets) {
      if (std::abs(static_cast<double>(d.range) - static_cast<double>(t.range)) <= 1 &&
          std::abs(static_cast<double>(d.bin) - t.doppler_bin) <= 1) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has_detection(dets_easy, easy_target)) << "easy target missed";
  EXPECT_TRUE(has_detection(dets_hard, hard_target)) << "hard target missed";

  // Sanity: detections are sparse (not a wall of false alarms).
  const std::size_t total_cells =
      (cur.easy_bin_ids.size() + cur.hard_bin_ids.size()) * p.beams * p.ranges;
  EXPECT_LT(dets_easy.size() + dets_hard.size(), total_cells / 100);
}

// ------------------------------------------- GEMM kernel-layer contracts --

// Restores the auto-detected SIMD backend even if a test fails mid-way.
struct SimdBackendGuard {
  ~SimdBackendGuard() { simd::force_backend(simd::detect_best()); }
};

std::vector<simd::Backend> simd_backends() {
  std::vector<simd::Backend> out{simd::Backend::kScalar};
  const simd::Backend best = simd::detect_best();
  if (static_cast<int>(best) >= static_cast<int>(simd::Backend::kSse2)) {
    out.push_back(simd::Backend::kSse2);
  }
  if (static_cast<int>(best) >= static_cast<int>(simd::Backend::kAvx2)) {
    out.push_back(simd::Backend::kAvx2);
  }
  return out;
}

TEST(Weights, CholeskyWeightsMatchPreKernelScalarReference) {
  // Under the forced scalar backend, the cherk-based covariance + hoisted
  // steering weight path must reproduce the historical per-snapshot
  // her_update / inline-conversion loop bit-for-bit — for both the
  // spatial-only (easy) and staggered (hard) DOF layouts.
  SimdBackendGuard guard;
  simd::force_backend(simd::Backend::kScalar);

  RadarParams p = RadarParams::test_small();
  p.beams = 3;
  SceneGenerator gen(p, SceneConfig{}, 33);
  DopplerFilter filt(p);
  const DopplerOutput out = filt.process(gen.generate(0));

  const auto check = [&](const BinArray& spectra,
                         const std::vector<std::size_t>& bin_ids,
                         std::size_t dof) {
    WeightComputer wc(p, bin_ids, dof);
    const WeightSet got = wc.compute(spectra);
    const std::size_t training =
        std::min<std::size_t>(p.training_ranges, spectra.ranges());
    ASSERT_GE(training, dof);

    std::vector<cdouble> snap(dof), sd(dof), w(dof);
    for (std::size_t bi = 0; bi < bin_ids.size(); ++bi) {
      // Historical covariance: gate-by-gate snapshot gather + her_update.
      linalg::CMatrix<double> r(dof, dof);
      for (std::size_t t = 0; t < training; ++t) {
        for (std::size_t d = 0; d < dof; ++d) {
          const cfloat v = spectra.at(bi, d, t);
          snap[d] = {v.real(), v.imag()};
        }
        r.her_update(snap, 1.0 / static_cast<double>(training));
      }
      double trace = 0.0;
      for (std::size_t d = 0; d < dof; ++d) trace += r(d, d).real();
      const double load =
          p.diagonal_loading * (trace / static_cast<double>(dof)) + 1e-12;
      for (std::size_t d = 0; d < dof; ++d) r(d, d) += load;

      linalg::CMatrix<double> l = r;
      const bool pd = linalg::cholesky_factor(l);
      ASSERT_TRUE(pd);

      for (std::size_t beam = 0; beam < p.beams; ++beam) {
        // Historical steering: rebuilt per (bin, beam), converted inline.
        const auto s = wc.steering(bin_ids[bi], beam);
        for (std::size_t d = 0; d < dof; ++d) {
          sd[d] = {s[d].real(), s[d].imag()};
          w[d] = sd[d];
        }
        linalg::cholesky_solve_inplace(l, std::span<cdouble>(w));
        cdouble denom{};
        for (std::size_t d = 0; d < dof; ++d) denom += std::conj(sd[d]) * w[d];
        const double mag = std::abs(denom);
        const cdouble scale = mag > 1e-30 ? 1.0 / denom : cdouble{1.0, 0.0};
        const auto got_w = got.at(bi, beam);
        for (std::size_t d = 0; d < dof; ++d) {
          const cdouble v = w[d] * scale;
          EXPECT_EQ(got_w[d].real(), static_cast<float>(v.real()))
              << "bin=" << bin_ids[bi] << " beam=" << beam << " d=" << d;
          EXPECT_EQ(got_w[d].imag(), static_cast<float>(v.imag()));
        }
      }
    }
  };

  check(out.easy, out.easy_bin_ids, p.easy_dof());
  check(out.hard, out.hard_bin_ids, p.hard_dof());
}

TEST(Weights, QrWeightsBitIdenticalAcrossSimdBackends) {
  // The QR Householder sweeps ride the FMA-free zmac pair, so the entire
  // QR-SMI weight solve is bit-invariant across SIMD backends.
  SimdBackendGuard guard;
  RadarParams p = RadarParams::test_small();
  p.beams = 3;
  SceneGenerator gen(p, SceneConfig{}, 34);
  DopplerFilter filt(p);
  const DopplerOutput out = filt.process(gen.generate(0));
  WeightComputer wc(p, out.hard_bin_ids, p.hard_dof(), WeightSolver::kQrSmi);

  simd::force_backend(simd::Backend::kScalar);
  const WeightSet ref = wc.compute(out.hard);

  for (simd::Backend b : simd_backends()) {
    simd::force_backend(b);
    const WeightSet got = wc.compute(out.hard);
    for (std::size_t bi = 0; bi < out.hard_bin_ids.size(); ++bi) {
      for (std::size_t beam = 0; beam < p.beams; ++beam) {
        const auto rw = ref.at(bi, beam);
        const auto gw = got.at(bi, beam);
        for (std::size_t d = 0; d < p.hard_dof(); ++d) {
          EXPECT_EQ(gw[d].real(), rw[d].real())
              << simd::backend_name(b) << " bin=" << bi << " beam=" << beam;
          EXPECT_EQ(gw[d].imag(), rw[d].imag());
        }
      }
    }
  }
}

TEST(StapChain, CfarDetectionsIdenticalAcrossSimdBackends) {
  // The operational contract: running the full chain — Doppler, adaptive
  // weights (cherk + Cholesky), GEMM beamform, pulse compression, CFAR —
  // under each SIMD backend yields the same detection cells. Powers differ
  // at FMA/reduction tolerance upstream, but no detection may appear or
  // vanish when the backend changes.
  SimdBackendGuard guard;
  RadarParams p = RadarParams::test_small();
  p.beams = 3;
  SceneConfig cfg;
  cfg.cnr_db = 40.0;
  const Target easy_target{40, 8.0, 0.0, 18.0};
  const Target hard_target{90, 1.0, -0.35, 25.0};
  cfg.targets = {easy_target, hard_target};

  struct Cell {
    std::size_t bin, beam, range;
    bool operator==(const Cell&) const = default;
  };
  const auto run_chain = [&]() {
    SceneGenerator gen(p, cfg, 21);
    DopplerFilter filt(p);
    const DopplerOutput prev = filt.process(gen.generate(0));
    const DopplerOutput cur = filt.process(gen.generate(1));
    WeightComputer wc_easy(p, prev.easy_bin_ids, p.easy_dof());
    WeightComputer wc_hard(p, prev.hard_bin_ids, p.hard_dof());
    Beamformer bf(p);
    BeamArray y_easy = bf.apply(cur.easy, wc_easy.compute(prev.easy));
    BeamArray y_hard = bf.apply(cur.hard, wc_hard.compute(prev.hard));
    PulseCompressor pc(p);
    pc.compress(y_easy);
    pc.compress(y_hard);
    CfarDetector cfar(p);
    std::vector<Cell> cells;
    for (const auto& d : cfar.detect(y_easy, cur.easy_bin_ids)) {
      cells.push_back({d.bin, d.beam, d.range});
    }
    for (const auto& d : cfar.detect(y_hard, cur.hard_bin_ids)) {
      cells.push_back({d.bin, d.beam, d.range});
    }
    return cells;
  };

  simd::force_backend(simd::Backend::kScalar);
  const std::vector<Cell> ref = run_chain();
  EXPECT_FALSE(ref.empty());

  for (simd::Backend b : simd_backends()) {
    simd::force_backend(b);
    const std::vector<Cell> got = run_chain();
    ASSERT_EQ(got.size(), ref.size()) << simd::backend_name(b);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].bin, ref[i].bin) << simd::backend_name(b) << " i=" << i;
      EXPECT_EQ(got[i].beam, ref[i].beam);
      EXPECT_EQ(got[i].range, ref[i].range);
    }
  }
}

}  // namespace
}  // namespace pstap::stap
