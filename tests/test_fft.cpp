// Tests for the FFT substrate: analytic spot checks, round-trip and
// Parseval properties (parameterized over lengths, incl. non-power-of-two
// Bluestein paths), linearity, shift theorem, strided/batched interfaces.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "fft/fft.hpp"

namespace pstap::fft {
namespace {

std::vector<cfloat> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> v(n);
  for (auto& x : v) x = rng.complex_normal();
  return v;
}

// O(n^2) reference DFT used as the oracle.
std::vector<cfloat> naive_dft(const std::vector<cfloat>& x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<cfloat> out(n);
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    cdouble acc{};
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = sign * 2.0 * std::numbers::pi *
                         static_cast<double>(k * t % n) / static_cast<double>(n);
      acc += cdouble(x[t].real(), x[t].imag()) * cdouble(std::cos(ang), std::sin(ang));
    }
    if (inverse) acc /= static_cast<double>(n);
    out[k] = cfloat(static_cast<float>(acc.real()), static_cast<float>(acc.imag()));
  }
  return out;
}

double max_abs_diff(const std::vector<cfloat>& a, const std::vector<cfloat>& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, double(std::abs(a[i] - b[i])));
  return m;
}

// -------------------------------------------------------- analytic cases --

TEST(Fft, LengthOneIsIdentity) {
  std::vector<cfloat> x{{3.0f, -2.0f}};
  FftPlan plan(1);
  plan.transform(x, Direction::kForward);
  EXPECT_FLOAT_EQ(x[0].real(), 3.0f);
  EXPECT_FLOAT_EQ(x[0].imag(), -2.0f);
}

TEST(Fft, DeltaTransformsToFlatSpectrum) {
  std::vector<cfloat> x(8, cfloat{});
  x[0] = {1.0f, 0.0f};
  FftPlan plan(8);
  plan.transform(x, Direction::kForward);
  for (const auto& v : x) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-6);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-6);
  }
}

TEST(Fft, ConstantTransformsToDelta) {
  std::vector<cfloat> x(16, cfloat{1.0f, 0.0f});
  FftPlan plan(16);
  plan.transform(x, Direction::kForward);
  EXPECT_NEAR(x[0].real(), 16.0f, 1e-5);
  for (std::size_t k = 1; k < 16; ++k) EXPECT_NEAR(std::abs(x[k]), 0.0f, 1e-5);
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t bin = 5;
  std::vector<cfloat> x(n);
  for (std::size_t t = 0; t < n; ++t) {
    const double ang = 2.0 * std::numbers::pi * double(bin * t) / double(n);
    x[t] = {static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang))};
  }
  FftPlan plan(n);
  plan.transform(x, Direction::kForward);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin) {
      EXPECT_NEAR(std::abs(x[k]), double(n), 1e-3);
    } else {
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-3);
    }
  }
}

TEST(Fft, MatchesNaiveDftPow2) {
  auto x = random_signal(32, 1);
  auto expected = naive_dft(x, false);
  FftPlan plan(32);
  plan.transform(x, Direction::kForward);
  EXPECT_LT(max_abs_diff(x, expected), 1e-4);
}

TEST(Fft, MatchesNaiveDftNonPow2) {
  for (std::size_t n : {3u, 5u, 6u, 7u, 12u, 15u, 21u, 100u}) {
    auto x = random_signal(n, 100 + n);
    auto expected = naive_dft(x, false);
    FftPlan plan(n);
    plan.transform(x, Direction::kForward);
    EXPECT_LT(max_abs_diff(x, expected), 2e-4) << "n=" << n;
  }
}

// ------------------------------------------------- parameterized properties --

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseUndoesForward) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 7 * n + 1);
  const auto original = x;
  FftPlan plan(n);
  plan.transform(x, Direction::kForward);
  plan.transform(x, Direction::kInverse);
  EXPECT_LT(max_abs_diff(x, original), 1e-4) << "n=" << n;
}

TEST_P(FftRoundTrip, ParsevalEnergyPreserved) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 13 * n + 5);
  double time_energy = 0;
  for (const auto& v : x) time_energy += std::norm(v);
  FftPlan plan(n);
  plan.transform(x, Direction::kForward);
  double freq_energy = 0;
  for (const auto& v : x) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / double(n), time_energy, 1e-3 * time_energy + 1e-6);
}

TEST_P(FftRoundTrip, LinearityHolds) {
  const std::size_t n = GetParam();
  auto x = random_signal(n, 17 * n);
  auto y = random_signal(n, 19 * n);
  const cfloat alpha{2.0f, -1.0f};
  std::vector<cfloat> combo(n);
  for (std::size_t i = 0; i < n; ++i) combo[i] = alpha * x[i] + y[i];
  FftPlan plan(n);
  plan.transform(x, Direction::kForward);
  plan.transform(y, Direction::kForward);
  plan.transform(combo, Direction::kForward);
  std::vector<cfloat> expected(n);
  for (std::size_t i = 0; i < n; ++i) expected[i] = alpha * x[i] + y[i];
  EXPECT_LT(max_abs_diff(combo, expected), 2e-3) << "n=" << n;
}

TEST_P(FftRoundTrip, TimeShiftBecomesPhaseRamp) {
  const std::size_t n = GetParam();
  if (n < 2) return;
  auto x = random_signal(n, 23 * n);
  std::vector<cfloat> shifted(n);
  for (std::size_t i = 0; i < n; ++i) shifted[i] = x[(i + 1) % n];  // x[t+1]
  FftPlan plan(n);
  plan.transform(x, Direction::kForward);
  plan.transform(shifted, Direction::kForward);
  double max_err = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = 2.0 * std::numbers::pi * double(k) / double(n);
    const cfloat ramp(static_cast<float>(std::cos(ang)), static_cast<float>(std::sin(ang)));
    max_err = std::max(max_err, double(std::abs(shifted[k] - ramp * x[k])));
  }
  EXPECT_LT(max_err, 2e-3) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Lengths, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 128, 256, 1024,
                                           3, 5, 10, 12, 30, 100, 127, 130, 384));

// ------------------------------------------------------------ interfaces --

TEST(Fft, StridedTransformEqualsGathered) {
  const std::size_t n = 16, stride = 5;
  auto base = random_signal(n * stride, 31);
  std::vector<cfloat> gathered(n);
  for (std::size_t i = 0; i < n; ++i) gathered[i] = base[i * stride];
  FftPlan plan(n);
  plan.transform(gathered, Direction::kForward);
  plan.transform_strided(base.data(), stride, Direction::kForward);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(base[i * stride] - gathered[i]), 0.0, 1e-5);
  }
}

TEST(Fft, StridedLeavesOtherElementsUntouched) {
  const std::size_t n = 8, stride = 3;
  auto base = random_signal(n * stride, 37);
  const auto original = base;
  FftPlan plan(n);
  plan.transform_strided(base.data(), stride, Direction::kForward);
  for (std::size_t i = 0; i < base.size(); ++i) {
    if (i % stride != 0 || i / stride >= n) {
      EXPECT_EQ(base[i], original[i]) << "index " << i;
    }
  }
}

TEST(Fft, BatchTransformsEachSegment) {
  const std::size_t n = 32, count = 4;
  auto data = random_signal(n * count, 41);
  auto copy = data;
  FftPlan plan(n);
  plan.transform_batch(data, count, Direction::kForward);
  for (std::size_t b = 0; b < count; ++b) {
    std::vector<cfloat> seg(copy.begin() + b * n, copy.begin() + (b + 1) * n);
    plan.transform(seg, Direction::kForward);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(data[b * n + i] - seg[i]), 0.0, 1e-5);
    }
  }
}

TEST(Fft, BatchMatchesSingleForBluesteinLength) {
  const std::size_t n = 17, count = 37;  // more lanes than one SoA block
  auto data = random_signal(n * count, 47);
  const auto copy = data;
  FftPlan plan(n);
  BatchScratch scratch;
  plan.transform_batch(data, count, Direction::kForward, scratch);
  for (std::size_t b = 0; b < count; ++b) {
    std::vector<cfloat> seg(copy.begin() + b * n, copy.begin() + (b + 1) * n);
    plan.transform(seg, Direction::kForward);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(data[b * n + i] - seg[i]), 0.0, 1e-4)
          << "series " << b << " element " << i;
    }
  }
}

TEST(Fft, BatchInverseUndoesBatchForward) {
  for (const std::size_t n : std::vector<std::size_t>{16, 127}) {
    const std::size_t count = 21;
    auto data = random_signal(n * count, 53);
    const auto original = data;
    FftPlan plan(n);
    BatchScratch scratch;
    plan.transform_batch(data, count, Direction::kForward, scratch);
    plan.transform_batch(data, count, Direction::kInverse, scratch);
    EXPECT_LT(max_abs_diff(data, original), 1e-4) << "length " << n;
  }
}

TEST(Fft, StridedBatchMatchesGatheredTransforms) {
  // Series l element k at base[l*dist + k*stride]: interleaved layout.
  const std::size_t n = 16, count = 5, stride = count, dist = 1;
  auto base = random_signal(n * count, 59);
  const auto copy = base;
  FftPlan plan(n);
  BatchScratch scratch;
  plan.transform_strided_batch(base.data(), count, dist, stride,
                               Direction::kForward, scratch);
  for (std::size_t l = 0; l < count; ++l) {
    std::vector<cfloat> gathered(n);
    for (std::size_t k = 0; k < n; ++k) gathered[k] = copy[l * dist + k * stride];
    plan.transform(gathered, Direction::kForward);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(std::abs(base[l * dist + k * stride] - gathered[k]), 0.0, 1e-5)
          << "series " << l << " element " << k;
    }
  }
}

TEST(Fft, ConvolveBatchMatchesTransformMultiplyInverse) {
  const std::size_t n = 32, count = 19;
  auto spectrum = random_signal(n, 61);
  auto data = random_signal(n * count, 67);
  const auto copy = data;
  FftPlan plan(n);
  BatchScratch scratch;
  plan.convolve_batch(data, count, spectrum, scratch);
  for (std::size_t b = 0; b < count; ++b) {
    std::vector<cfloat> seg(copy.begin() + b * n, copy.begin() + (b + 1) * n);
    plan.transform(seg, Direction::kForward);
    multiply_spectra(seg, spectrum);
    plan.transform(seg, Direction::kInverse);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(data[b * n + i] - seg[i]), 0.0, 1e-4)
          << "series " << b << " element " << i;
    }
  }
}

TEST(Fft, CallerScratchStridedOverloadIsConstAndMatchesLegacy) {
  const std::size_t n = 16, stride = 3;
  auto a = random_signal(n * stride, 71);
  auto b = a;
  FftPlan plan(n);
  const FftPlan& cplan = plan;  // caller-scratch overload usable via const ref
  std::vector<cfloat> scratch;
  cplan.transform_strided(a.data(), stride, Direction::kForward, scratch);
  plan.transform_strided(b.data(), stride, Direction::kForward);
  EXPECT_LT(max_abs_diff(a, b), 1e-7);
}

TEST(Fft, OneShotHelperMatchesPlan) {
  auto x = random_signal(64, 43);
  auto y = x;
  FftPlan plan(64);
  plan.transform(x, Direction::kForward);
  transform(y, Direction::kForward);
  EXPECT_LT(max_abs_diff(x, y), 1e-7);
}

TEST(Fft, MultiplySpectraIsElementwise) {
  std::vector<cfloat> a{{1, 0}, {0, 1}, {2, 2}};
  std::vector<cfloat> b{{2, 0}, {0, 1}, {1, -1}};
  multiply_spectra(a, b);
  EXPECT_EQ(a[0], (cfloat{2, 0}));
  EXPECT_EQ(a[1], (cfloat{-1, 0}));
  EXPECT_EQ(a[2], (cfloat{4, 0}));
}

// ------------------------------------------------------------ error paths --

TEST(Fft, RejectsZeroLengthPlan) {
  EXPECT_THROW(FftPlan(0), PreconditionError);
}

TEST(Fft, RejectsMismatchedBuffer) {
  FftPlan plan(8);
  std::vector<cfloat> wrong(7);
  EXPECT_THROW(plan.transform(wrong, Direction::kForward), PreconditionError);
}

TEST(Fft, RejectsBadBatchSize) {
  FftPlan plan(8);
  std::vector<cfloat> data(20);
  EXPECT_THROW(plan.transform_batch(data, 2, Direction::kForward), PreconditionError);
}

TEST(Fft, RejectsMismatchedSpectra) {
  std::vector<cfloat> a(4), b(5);
  EXPECT_THROW(multiply_spectra(a, b), PreconditionError);
}

}  // namespace
}  // namespace pstap::fft
