// Stress tests for the asynchronous I/O engine under injected delays and
// errors: many concurrent ireads funneled through few stripe directories
// must all complete (no lost wakeups), and when multiple chunks of one
// request fail, the first error propagates while every failure is counted
// in detail::RequestState — nothing is silently swallowed.
//
// Registered with the `stress` CTest label; the intended gate is a
// ThreadSanitizer build (cmake -DPSTAP_SANITIZE=thread, ctest -L stress).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "pfs/striped_file_system.hpp"

namespace pstap::pfs {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("pstap_stress_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xFF);
  return v;
}

PfsConfig small_cfg(std::size_t factor, std::size_t unit) {
  PfsConfig cfg;
  cfg.name = "stress";
  cfg.stripe_factor = factor;
  cfg.stripe_unit = unit;
  return cfg;
}

// Many reader threads x many requests each, squeezed through two stripe
// directories whose service threads are randomly delayed. Everything must
// complete and deliver the right bytes.
TEST(IoEngineStress, ConcurrentIreadsUnderInjectedDelaysAllComplete) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 1024));
  const std::size_t total = 64 * 1024;
  const auto data = pattern_bytes(total, 29);
  pfs.write_file("f", data);

  auto plan = std::make_shared<fault::FaultPlan>(43);
  plan->arm_delay("pfs.server.read", 0.3, 1e-4, 1e-3);
  fault::FaultScope scope(plan);

  constexpr int kThreads = 8;
  constexpr int kReqsPerThread = 8;
  constexpr std::size_t kLen = 4096;
  std::atomic<int> mismatches{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        StripedFile f = pfs.open("f");
        Rng rng(100 + static_cast<std::uint64_t>(t));
        for (int i = 0; i < kReqsPerThread; ++i) {
          const std::uint64_t off = rng.uniform_index(total - kLen);
          std::vector<std::byte> buf(kLen);
          IoRequest req = f.iread(off, buf);
          req.wait();
          if (!std::equal(buf.begin(), buf.end(), data.begin() + off)) {
            mismatches.fetch_add(1);
          }
        }
      });
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(plan->injected_delays(), 0u);
}

// Requests completed out of submission order while servers are delayed:
// waiting on the last request first must not lose the earlier wakeups.
TEST(IoEngineStress, OutstandingRequestsWaitedInReverseOrder) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 512));
  const std::size_t total = 32 * 1024;
  const auto data = pattern_bytes(total, 31);
  pfs.write_file("f", data);

  auto plan = std::make_shared<fault::FaultPlan>(53);
  plan->arm_delay("pfs.server.read", 0.5, 1e-4, 5e-4);
  fault::FaultScope scope(plan);

  StripedFile f = pfs.open("f");
  constexpr int kReqs = 32;
  const std::size_t share = total / kReqs;
  std::vector<std::vector<std::byte>> bufs(kReqs, std::vector<std::byte>(share));
  std::vector<IoRequest> reqs;
  reqs.reserve(kReqs);
  for (int i = 0; i < kReqs; ++i) {
    reqs.push_back(f.iread(static_cast<std::uint64_t>(i) * share, bufs[i]));
  }
  for (int i = kReqs - 1; i >= 0; --i) reqs[static_cast<std::size_t>(i)].wait();
  for (int i = 0; i < kReqs; ++i) {
    EXPECT_TRUE(std::equal(bufs[i].begin(), bufs[i].end(),
                           data.begin() + static_cast<std::ptrdiff_t>(i * share)))
        << "request " << i;
  }
}

// Every chunk of the request fails: the first error propagates from wait()
// and the rest are counted, not swallowed.
TEST(IoEngineStress, MultiChunkFailuresAreAllCounted) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 1024));
  const std::size_t total = 8 * 1024;  // 8 chunks across 2 directories
  pfs.write_file("f", pattern_bytes(total, 37));

  auto plan = std::make_shared<fault::FaultPlan>(47);
  plan->arm_transient_error("pfs.server.read", 1.0);
  fault::FaultScope scope(plan);

  StripedFile f = pfs.open("f");
  std::vector<std::byte> buf(total);
  IoRequest req = f.iread(0, buf);
  EXPECT_THROW(req.wait(), fault::InjectedError);
  EXPECT_EQ(req.failed_chunks(), 8u);
  EXPECT_NO_THROW(req.wait());  // consuming wait is idempotent
  EXPECT_EQ(req.failed_chunks(), 8u);
  EXPECT_EQ(plan->injected_errors(), 8u);
}

// Mixed delays + transient errors across many concurrent requests: every
// wait() returns (success or IoError) — no hangs, no lost completions —
// and the number of failed requests is consistent with what was injected.
TEST(IoEngineStress, MixedDelaysAndErrorsNeverLoseWakeups) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 1024));
  const std::size_t total = 64 * 1024;
  const auto data = pattern_bytes(total, 41);
  pfs.write_file("f", data);

  auto plan = std::make_shared<fault::FaultPlan>(59);
  plan->arm_delay("pfs.server.read", 0.5, 1e-4, 5e-4);
  plan->arm_transient_error("pfs.server.read", 0.3);
  fault::FaultScope scope(plan);

  constexpr int kThreads = 8;
  constexpr int kReqsPerThread = 8;
  constexpr std::size_t kLen = 4096;  // 4 chunks per request
  std::atomic<int> ok{0}, failed{0}, mismatches{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        StripedFile f = pfs.open("f");
        Rng rng(200 + static_cast<std::uint64_t>(t));
        for (int i = 0; i < kReqsPerThread; ++i) {
          const std::uint64_t off = rng.uniform_index(total - kLen);
          std::vector<std::byte> buf(kLen);
          IoRequest req = f.iread(off, buf);
          try {
            req.wait();
            ok.fetch_add(1);
            if (!std::equal(buf.begin(), buf.end(), data.begin() + off)) {
              mismatches.fetch_add(1);
            }
          } catch (const IoError&) {
            failed.fetch_add(1);
            EXPECT_GE(req.failed_chunks(), 1u);
          }
        }
      });
    }
  }
  EXPECT_EQ(ok.load() + failed.load(), kThreads * kReqsPerThread);
  EXPECT_EQ(mismatches.load(), 0);
  // The schedule is deterministic in *which chunk occurrences* fail (30% of
  // 256 chunk services), so some requests must have failed...
  EXPECT_GT(failed.load(), 0);
  EXPECT_GT(plan->injected_errors(), 0u);
  // ...and a failed request never reports success: every injected error is
  // accounted for by some request's failure.
  EXPECT_LE(static_cast<std::uint64_t>(failed.load()), plan->injected_errors());
}

// wait_for() does not consume the request: poll-until-done then wait().
TEST(IoEngineStress, WaitForPollsWithoutConsuming) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 1024));
  const std::size_t total = 16 * 1024;
  const auto data = pattern_bytes(total, 43);
  pfs.write_file("f", data);

  auto plan = std::make_shared<fault::FaultPlan>(61);
  plan->arm_delay("pfs.server.read", 1.0, 2e-3, 4e-3);
  fault::FaultScope scope(plan);

  StripedFile f = pfs.open("f");
  std::vector<std::byte> buf(total);
  IoRequest req = f.iread(0, buf);
  int polls = 0;
  while (!req.wait_for(1e-3)) {
    ASSERT_LT(++polls, 1000) << "request never completed";
  }
  EXPECT_TRUE(req.done());
  req.wait();
  EXPECT_EQ(buf, data);
}

}  // namespace
}  // namespace pstap::pfs
