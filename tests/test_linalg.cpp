// Tests for the complex linear-algebra substrate: matrix kernels, Cholesky
// factor/solve on random HPD systems, QR least squares, and cross-checks
// between the two solvers (the STAP weight path uses both).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/cmatrix.hpp"
#include "linalg/qr.hpp"

namespace pstap::linalg {
namespace {

using cd = std::complex<double>;

CMatrix<double> random_matrix(std::size_t m, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  CMatrix<double> a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = {rng.normal(), rng.normal()};
  return a;
}

// HPD matrix via A = B B^H + eps I.
CMatrix<double> random_hpd(std::size_t n, std::uint64_t seed) {
  auto b = random_matrix(n, n, seed);
  CMatrix<double> a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      cd acc{};
      for (std::size_t k = 0; k < n; ++k) acc += b(i, k) * std::conj(b(j, k));
      a(i, j) = acc;
    }
    a(i, i) += 0.1;
  }
  return a;
}

std::vector<cd> random_vector(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cd> v(n);
  for (auto& x : v) x = {rng.normal(), rng.normal()};
  return v;
}

double residual(const CMatrix<double>& a, std::span<const cd> x,
                std::span<const cd> b) {
  std::vector<cd> ax(a.rows());
  a.matvec(x, ax);
  double num = 0, den = 1e-300;
  for (std::size_t i = 0; i < ax.size(); ++i) {
    num += std::norm(ax[i] - b[i]);
    den += std::norm(b[i]);
  }
  return std::sqrt(num / den);
}

// ---------------------------------------------------------------- matrix --

TEST(CMatrixTest, ElementAccessAndRowSpans) {
  CMatrix<float> a(2, 3);
  a(1, 2) = {5.0f, -1.0f};
  EXPECT_EQ(a.row(1)[2], (std::complex<float>{5.0f, -1.0f}));
  EXPECT_EQ(a.rows(), 2u);
  EXPECT_EQ(a.cols(), 3u);
  EXPECT_EQ(a.flat().size(), 6u);
}

TEST(CMatrixTest, ScaledIdentity) {
  CMatrix<double> a(3, 3);
  a.set_scaled_identity({2.0, 0.0});
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_EQ(a(i, j), (i == j ? cd{2.0, 0.0} : cd{}));
}

TEST(CMatrixTest, ScaledIdentityRequiresSquare) {
  CMatrix<double> a(2, 3);
  EXPECT_THROW(a.set_scaled_identity({1.0, 0.0}), PreconditionError);
}

TEST(CMatrixTest, HerUpdateBuildsOuterProduct) {
  CMatrix<double> a(2, 2);
  std::vector<cd> x{{1.0, 1.0}, {2.0, 0.0}};
  a.her_update(x, 1.0);
  // x x^H = [ |x0|^2        x0*conj(x1) ; x1*conj(x0)  |x1|^2 ]
  EXPECT_NEAR(a(0, 0).real(), 2.0, 1e-12);
  EXPECT_NEAR(a(1, 1).real(), 4.0, 1e-12);
  EXPECT_NEAR(std::abs(a(0, 1) - cd(2.0, 2.0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(a(1, 0) - std::conj(a(0, 1))), 0.0, 1e-12);
}

TEST(CMatrixTest, HerUpdateAccumulatesHermitian) {
  auto a = CMatrix<double>(4, 4);
  Rng rng(5);
  for (int s = 0; s < 10; ++s) {
    std::vector<cd> x(4);
    for (auto& v : x) v = {rng.normal(), rng.normal()};
    a.her_update(x, 0.1);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(a(i, i).imag(), 0.0, 1e-12);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(std::abs(a(i, j) - std::conj(a(j, i))), 0.0, 1e-12);
    }
  }
}

TEST(CMatrixTest, MatvecAgainstHandComputed) {
  CMatrix<double> a(2, 2);
  a(0, 0) = {1, 0}; a(0, 1) = {0, 1};
  a(1, 0) = {2, 0}; a(1, 1) = {0, 0};
  std::vector<cd> x{{1, 0}, {1, 0}}, y(2);
  a.matvec(x, y);
  EXPECT_NEAR(std::abs(y[0] - cd(1, 1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(y[1] - cd(2, 0)), 0.0, 1e-12);
}

TEST(CMatrixTest, MatvecHermIsAdjoint) {
  auto a = random_matrix(3, 4, 77);
  auto x = random_vector(4, 78);
  auto y = random_vector(3, 79);
  // <y, A x> == <A^H y, x>
  std::vector<cd> ax(3), ahy(4);
  a.matvec(x, ax);
  a.matvec_herm(y, ahy);
  cd lhs{}, rhs{};
  for (std::size_t i = 0; i < 3; ++i) lhs += std::conj(y[i]) * ax[i];
  for (std::size_t j = 0; j < 4; ++j) rhs += std::conj(ahy[j]) * x[j];
  EXPECT_NEAR(std::abs(lhs - rhs), 0.0, 1e-10);
}

TEST(CMatrixTest, CdotAndNorm) {
  std::vector<cd> x{{1, 1}, {0, 2}};
  std::vector<cd> y{{2, 0}, {1, 0}};
  const cd d = cdot<double>(x, y);
  EXPECT_NEAR(std::abs(d - (std::conj(cd(1, 1)) * cd(2, 0) + std::conj(cd(0, 2)))), 0.0,
              1e-12);
  EXPECT_NEAR(norm2_sq<double>(x), 1 + 1 + 4, 1e-12);
}

// -------------------------------------------------------------- cholesky --

class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, SolveResidualIsSmall) {
  const std::size_t n = GetParam();
  auto a = random_hpd(n, 1000 + n);
  const auto a_copy = a;
  auto b = random_vector(n, 2000 + n);
  std::vector<cd> x = b;
  ASSERT_TRUE(solve_hpd(a, std::span<cd>(x)));
  EXPECT_LT(residual(a_copy, x, b), 1e-10) << "n=" << n;
}

TEST_P(CholeskySizes, FactorReconstructsMatrix) {
  const std::size_t n = GetParam();
  auto a = random_hpd(n, 3000 + n);
  const auto original = a;
  ASSERT_TRUE(cholesky_factor(a));
  // Reconstruct L L^H and compare.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      cd acc{};
      for (std::size_t k = 0; k <= j; ++k) acc += a(i, k) * std::conj(a(j, k));
      EXPECT_NEAR(std::abs(acc - original(i, j)), 0.0, 1e-8 * (1.0 + std::abs(original(i, j))))
          << "i=" << i << " j=" << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes, ::testing::Values(1, 2, 3, 4, 8, 16, 32, 64));

TEST(Cholesky, DetectsIndefiniteMatrix) {
  CMatrix<double> a(2, 2);
  a(0, 0) = {1, 0}; a(0, 1) = {0, 0};
  a(1, 0) = {0, 0}; a(1, 1) = {-1, 0};
  EXPECT_FALSE(cholesky_factor(a));
}

TEST(Cholesky, DetectsSingularMatrix) {
  CMatrix<double> a(2, 2);  // rank 1
  a(0, 0) = {1, 0}; a(0, 1) = {1, 0};
  a(1, 0) = {1, 0}; a(1, 1) = {1, 0};
  EXPECT_FALSE(cholesky_factor(a));
}

TEST(Cholesky, IdentitySolveReturnsRhs) {
  CMatrix<double> a(3, 3);
  a.set_scaled_identity({1.0, 0.0});
  std::vector<cd> b{{1, 2}, {3, 4}, {5, 6}};
  const auto expected = b;
  ASSERT_TRUE(solve_hpd(a, std::span<cd>(b)));
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(std::abs(b[i] - expected[i]), 0.0, 1e-12);
  }
}

TEST(Cholesky, RejectsNonSquare) {
  CMatrix<double> a(2, 3);
  EXPECT_THROW((void)cholesky_factor(a), PreconditionError);
}

TEST(Cholesky, FloatPrecisionVariantWorks) {
  using cf = std::complex<float>;
  CMatrix<float> a(2, 2);
  a(0, 0) = {4, 0}; a(0, 1) = {0, 1};
  a(1, 0) = {0, -1}; a(1, 1) = {3, 0};
  std::vector<cf> b{{1, 0}, {0, 1}};
  ASSERT_TRUE(solve_hpd(a, std::span<cf>(b)));
  // Verify A x = b against the original matrix by direct multiply.
  const cf ax0 = cf{4, 0} * b[0] + cf{0, 1} * b[1];
  const cf ax1 = cf{0, -1} * b[0] + cf{3, 0} * b[1];
  EXPECT_NEAR(std::abs(ax0 - cf{1, 0}), 0.0, 1e-5);
  EXPECT_NEAR(std::abs(ax1 - cf{0, 1}), 0.0, 1e-5);
}

// -------------------------------------------------------------------- qr --

class QrShapes : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QrShapes, SquareOrTallLeastSquaresResidualOrthogonal) {
  const auto [m, n] = GetParam();
  auto a = random_matrix(m, n, 100 * m + n);
  auto b = random_vector(m, 200 * m + n);
  QrFactorization<double> qr;
  ASSERT_TRUE(qr.factor(a));
  const auto x = qr.solve_ls(b);
  ASSERT_EQ(x.size(), n);
  // Normal equations: A^H (A x - b) == 0 for the least-squares minimizer.
  std::vector<cd> ax(m);
  a.matvec(x, ax);
  for (std::size_t i = 0; i < m; ++i) ax[i] -= b[i];
  std::vector<cd> ahr(n);
  a.matvec_herm(ax, ahr);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(std::abs(ahr[j]), 0.0, 1e-9) << "m=" << m << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapes,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{4, 4},
                                           std::pair<std::size_t, std::size_t>{8, 3},
                                           std::pair<std::size_t, std::size_t>{16, 16},
                                           std::pair<std::size_t, std::size_t>{40, 8},
                                           std::pair<std::size_t, std::size_t>{64, 32}));

TEST(Qr, ExactSolveMatchesCholeskyOnHpd) {
  const std::size_t n = 12;
  auto a = random_hpd(n, 555);
  auto b = random_vector(n, 556);

  auto a_chol = a;
  std::vector<cd> x_chol = b;
  ASSERT_TRUE(solve_hpd(a_chol, std::span<cd>(x_chol)));

  QrFactorization<double> qr;
  ASSERT_TRUE(qr.factor(a));
  const auto x_qr = qr.solve_ls(b);

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x_qr[i] - x_chol[i]), 0.0, 1e-8);
  }
}

TEST(Qr, DetectsRankDeficiency) {
  CMatrix<double> a(3, 2);  // second column zero
  a(0, 0) = {1, 0};
  a(1, 0) = {2, 0};
  a(2, 0) = {3, 0};
  QrFactorization<double> qr;
  EXPECT_FALSE(qr.factor(a));
}

TEST(Qr, RejectsWideMatrix) {
  CMatrix<double> a(2, 3);
  QrFactorization<double> qr;
  EXPECT_THROW((void)qr.factor(a), PreconditionError);
}

TEST(Qr, QhPreservesNorm) {
  auto a = random_matrix(10, 4, 777);
  QrFactorization<double> qr;
  ASSERT_TRUE(qr.factor(a));
  auto b = random_vector(10, 778);
  const double before = norm2_sq<double>(b);
  std::vector<cd> y = b;
  qr.apply_qh(y);
  EXPECT_NEAR(norm2_sq<double>(y), before, 1e-9 * before);
}

TEST(Qr, NormalEquationsViaTriangularSolves) {
  // (A^H A) x = b solved as R^H (R x) = b must match forming A^H A and
  // using Cholesky.
  const std::size_t m = 20, n = 6;
  auto a = random_matrix(m, n, 901);
  auto b = random_vector(n, 902);

  QrFactorization<double> qr;
  ASSERT_TRUE(qr.factor(a));
  std::vector<cd> x_qr = b;
  qr.solve_upper_herm(std::span<cd>(x_qr));
  qr.solve_upper(std::span<cd>(x_qr));

  // Reference: form A^H A explicitly.
  CMatrix<double> ata(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      cd acc{};
      for (std::size_t k = 0; k < m; ++k) acc += std::conj(a(k, i)) * a(k, j);
      ata(i, j) = acc;
    }
  std::vector<cd> x_chol = b;
  ASSERT_TRUE(solve_hpd(ata, std::span<cd>(x_chol)));

  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(std::abs(x_qr[i] - x_chol[i]), 0.0, 1e-9);
  }
}

TEST(Qr, FloatVariantSolves) {
  using cf = std::complex<float>;
  CMatrix<float> a(3, 2);
  a(0, 0) = {1, 0}; a(0, 1) = {0, 0};
  a(1, 0) = {0, 0}; a(1, 1) = {1, 0};
  a(2, 0) = {0, 0}; a(2, 1) = {0, 0};
  QrFactorization<float> qr;
  ASSERT_TRUE(qr.factor(a));
  std::vector<cf> b{{2, 0}, {3, 0}, {0, 0}};
  const auto x = qr.solve_ls(b);
  EXPECT_NEAR(std::abs(x[0] - cf{2, 0}), 0.0, 1e-5);
  EXPECT_NEAR(std::abs(x[1] - cf{3, 0}), 0.0, 1e-5);
}

}  // namespace
}  // namespace pstap::linalg
