// Chaos soak for the supervised pipeline (`stress` tier): seeded crash
// schedules across random ranks and CPIs of the separate-I/O organization.
// Every run must complete with no hang, drop no CPIs, detect every
// injected crash, and produce detections identical to a fault-free run.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/fault.hpp"
#include "common/rng.hpp"
#include "pipeline/task_spec.hpp"
#include "pipeline/thread_runner.hpp"
#include "stap/scene.hpp"

namespace pstap {
namespace {

namespace fsys = std::filesystem;

using DetKey = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, std::uint32_t>;

std::set<DetKey> keys_of(const std::vector<stap::Detection>& dets, int cpi) {
  std::set<DetKey> keys;
  for (const auto& d : dets) {
    if (d.cpi == static_cast<std::uint64_t>(cpi)) {
      keys.insert({d.cpi, d.bin, d.beam, d.range});
    }
  }
  return keys;
}

pipeline::RunOptions base_options(const fsys::path& root, const std::string& sub) {
  pipeline::RunOptions opt;
  opt.cpis = 4;
  opt.warmup = 1;
  opt.seed = 77;
  opt.fs_root = root / sub;
  opt.scene.cnr_db = 40.0;
  opt.scene.targets = {{40, 8.0, 0.0, 18.0}, {90, 1.0, -0.35, 25.0}};
  return opt;
}

// Each seed arms crashes at two distinct ranks of the 8-rank separate-I/O
// layout, at a pseudo-random CPI and crash site (CPI start or send-phase
// start). The CFAR sink (rank 7) never sends, so its schedule always uses
// the CPI-start site; whichever rules actually fire must all be detected
// and recovered from.
TEST(ChaosSoak, SeededCrashSchedulesAllRecover) {
  const fsys::path root =
      fsys::temp_directory_path() /
      ("pstap_chaos_" + std::to_string(::getpid()));
  std::error_code ec;
  fsys::remove_all(root, ec);

  const auto p = stap::RadarParams::test_small();
  const auto spec =
      pipeline::PipelineSpec::separate_io(p, {1, 1, 1, 1, 1, 1, 1, 1});
  const int total_ranks = 8;

  pipeline::ThreadRunner baseline(spec, base_options(root, "clean"));
  const auto clean = baseline.run();
  ASSERT_FALSE(keys_of(clean.detections, 1).empty());

  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 1000003);
    const int rank_a = static_cast<int>(rng.next_u64() % total_ranks);
    const int rank_b = (rank_a + 1 + static_cast<int>(rng.next_u64() % (total_ranks - 1))) %
                       total_ranks;
    auto site_of = [&](int rank) {
      std::string site = "pipeline.rank." + std::to_string(rank);
      // The CFAR sink never reaches a send phase; keep its rule firable.
      if (rank != total_ranks - 1 && rng.next_u64() % 2 == 0) site += ".send";
      return site;
    };

    auto opt = base_options(root, "chaos" + std::to_string(seed));
    opt.supervise.enabled = true;
    opt.supervise.heartbeat_interval = 2e-3;
    opt.supervise.hang_timeout = 30.0;
    opt.fault_plan = std::make_shared<fault::FaultPlan>(seed);
    opt.fault_plan->arm_crash(site_of(rank_a), rng.next_u64() % 4);
    opt.fault_plan->arm_crash(site_of(rank_b), rng.next_u64() % 4);

    pipeline::ThreadRunner runner(spec, opt);
    const auto result = runner.run();  // completing at all proves no hang

    SCOPED_TRACE("seed " + std::to_string(seed) + " ranks " +
                 std::to_string(rank_a) + "," + std::to_string(rank_b));
    EXPECT_TRUE(result.dropped_cpis.empty());
    const auto& rec = result.metrics.recovery;
    EXPECT_GT(rec.injected_crashes, 0u) << "schedule armed nothing that fired";
    EXPECT_EQ(rec.crashes_detected, rec.injected_crashes)
        << "every injected crash must be detected";
    EXPECT_EQ(rec.ranks_respawned + rec.io_failovers, rec.crashes_detected);
    for (int cpi = 0; cpi < 4; ++cpi) {
      EXPECT_EQ(keys_of(result.detections, cpi), keys_of(clean.detections, cpi))
          << "cpi " << cpi;
    }
  }
  fsys::remove_all(root, ec);
}

// Combined-fault leg: a modeled straggler I/O server AND injected delays
// AND a rank crash, with the straggler scheduler (hedged reads on) active.
// Defense layers must compose: supervision recovers the crash, the
// scheduler routes around the slow server, and the detections still match
// a fault-free run exactly — adaptive I/O must never change results.
TEST(ChaosSoak, StragglerPlusCrashWithSchedulerRecovers) {
  const fsys::path root =
      fsys::temp_directory_path() /
      ("pstap_chaos_straggler_" + std::to_string(::getpid()));
  std::error_code ec;
  fsys::remove_all(root, ec);

  const auto p = stap::RadarParams::test_small();
  const auto spec =
      pipeline::PipelineSpec::separate_io(p, {1, 1, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, base_options(root, "clean"));
  const auto clean = baseline.run();
  ASSERT_FALSE(keys_of(clean.detections, 1).empty());

  auto opt = base_options(root, "straggler_crash");
  opt.supervise.enabled = true;
  opt.supervise.heartbeat_interval = 2e-3;
  opt.supervise.hang_timeout = 30.0;
  opt.fs_config = pfs::paragon_pfs(4);
  opt.fs_config.replicas = 2;
  opt.fs_config.straggler_sched = true;
  opt.fs_config.hedged_reads = true;
  opt.fs_config.deadline_min_samples = 8;
  opt.fs_config.deadline_floor = 1e-3;
  opt.fs_config.server_latency = 2e-4;
  opt.fs_config.straggler_servers = 1;
  opt.fs_config.straggler_slowdown = 4.0;
  opt.io_retry.max_attempts = 4;
  opt.io_retry.initial_backoff = 1e-3;
  opt.fault_plan = std::make_shared<fault::FaultPlan>(4242);
  opt.fault_plan->arm_crash("pipeline.rank.2", 1);
  opt.fault_plan->arm_delay("pfs.server.read.sd000", 0.3, 1e-3, 3e-3);

  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();  // completing at all proves no hang

  EXPECT_TRUE(result.dropped_cpis.empty());
  const auto& rec = result.metrics.recovery;
  EXPECT_GT(rec.injected_crashes, 0u);
  EXPECT_EQ(rec.crashes_detected, rec.injected_crashes);
  for (int cpi = 0; cpi < 4; ++cpi) {
    EXPECT_EQ(keys_of(result.detections, cpi), keys_of(clean.detections, cpi))
        << "cpi " << cpi;
  }
  fsys::remove_all(root, ec);
}

}  // namespace
}  // namespace pstap
