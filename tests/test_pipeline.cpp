// Tests for the pipeline layer: block partitioning, spec builders and
// validation, the paper's throughput/latency equations, proportional node
// assignment, and ThreadRunner integration — all three pipeline
// organizations must produce exactly the detections of a sequential
// reference implementation.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/error.hpp"
#include "pipeline/metrics.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/task_spec.hpp"
#include "pipeline/thread_runner.hpp"
#include "stap/detection_log.hpp"
#include "stap/beamform.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/weights.hpp"

namespace pstap::pipeline {
namespace {

namespace fs = std::filesystem;

// --------------------------------------------------------- BlockPartition --

class PartitionCases
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PartitionCases, ChunksTileTheIndexSpace) {
  const auto [count, parts] = GetParam();
  const BlockPartition part(count, parts);
  std::size_t covered = 0;
  for (std::size_t pt = 0; pt < parts; ++pt) {
    EXPECT_EQ(part.begin(pt), covered);
    covered += part.size(pt);
    EXPECT_EQ(part.end(pt), covered);
  }
  EXPECT_EQ(covered, count);
}

TEST_P(PartitionCases, OwnerAgreesWithBounds) {
  const auto [count, parts] = GetParam();
  const BlockPartition part(count, parts);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t o = part.owner(i);
    EXPECT_GE(i, part.begin(o)) << "element " << i;
    EXPECT_LT(i, part.end(o)) << "element " << i;
  }
}

TEST_P(PartitionCases, SizesDifferByAtMostOne) {
  const auto [count, parts] = GetParam();
  const BlockPartition part(count, parts);
  std::size_t lo = SIZE_MAX, hi = 0;
  for (std::size_t pt = 0; pt < parts; ++pt) {
    lo = std::min(lo, part.size(pt));
    hi = std::max(hi, part.size(pt));
  }
  EXPECT_LE(hi - lo, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionCases,
    ::testing::Values(std::pair<std::size_t, std::size_t>{10, 1},
                      std::pair<std::size_t, std::size_t>{10, 3},
                      std::pair<std::size_t, std::size_t>{12, 4},
                      std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{5, 8},   // parts > count
                      std::pair<std::size_t, std::size_t>{0, 3},   // empty space
                      std::pair<std::size_t, std::size_t>{1024, 7}));

TEST(Partition, ErrorsOnBadArguments) {
  EXPECT_THROW(BlockPartition(4, 0), PreconditionError);
  const BlockPartition part(4, 2);
  EXPECT_THROW(part.begin(2), PreconditionError);
  EXPECT_THROW(part.owner(4), PreconditionError);
}

// -------------------------------------------------------------- task spec --

TEST(TaskSpecTest, NamesAndTemporality) {
  EXPECT_STREQ(task_name(TaskKind::kDoppler), "Doppler filter");
  EXPECT_STREQ(task_name(TaskKind::kPulseCompressionCfar), "PC + CFAR");
  EXPECT_TRUE(is_temporal_task(TaskKind::kWeightsEasy));
  EXPECT_TRUE(is_temporal_task(TaskKind::kWeightsHard));
  EXPECT_FALSE(is_temporal_task(TaskKind::kDoppler));
  EXPECT_FALSE(is_temporal_task(TaskKind::kCfar));
}

TEST(TaskSpecTest, EmbeddedBuilderProducesSevenTasks) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  EXPECT_EQ(spec.tasks.size(), 7u);
  EXPECT_EQ(spec.tasks.front().kind, TaskKind::kDoppler);
  EXPECT_EQ(spec.tasks.back().kind, TaskKind::kCfar);
  EXPECT_EQ(spec.total_nodes(), 8);
  EXPECT_EQ(spec.find(TaskKind::kParallelRead), -1);
}

TEST(TaskSpecTest, SeparateBuilderPrependsReadTask) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::separate_io(p, {1, 2, 1, 1, 1, 1, 1, 1});
  EXPECT_EQ(spec.tasks.size(), 8u);
  EXPECT_EQ(spec.tasks.front().kind, TaskKind::kParallelRead);
  EXPECT_EQ(spec.find(TaskKind::kParallelRead), 0);
}

TEST(TaskSpecTest, CombinedBuilderMergesTail) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::combined(p, {2, 1, 1, 1, 1, 2});
  EXPECT_EQ(spec.tasks.size(), 6u);
  EXPECT_EQ(spec.tasks.back().kind, TaskKind::kPulseCompressionCfar);
  EXPECT_EQ(spec.find(TaskKind::kPulseCompression), -1);
  EXPECT_EQ(spec.find(TaskKind::kCfar), -1);
}

TEST(TaskSpecTest, BuildersRejectWrongArity) {
  const auto p = stap::RadarParams::test_small();
  EXPECT_THROW(PipelineSpec::embedded_io(p, {1, 1, 1}), PreconditionError);
  EXPECT_THROW(PipelineSpec::separate_io(p, {1, 1, 1, 1, 1, 1, 1}), PreconditionError);
  EXPECT_THROW(PipelineSpec::combined(p, {1, 1, 1, 1, 1, 1, 1}), PreconditionError);
}

TEST(TaskSpecTest, ValidateRejectsZeroNodes) {
  const auto p = stap::RadarParams::test_small();
  EXPECT_THROW(PipelineSpec::embedded_io(p, {2, 1, 0, 1, 1, 1, 1}), PreconditionError);
}

TEST(TaskSpecTest, ProportionalAssignmentConservesNodes) {
  const auto p = stap::RadarParams();  // full-size parameters
  for (const int total : {25, 50, 100}) {
    const auto spec =
        proportional_assignment(p, total, IoStrategy::kEmbedded, false);
    EXPECT_EQ(spec.total_nodes(), total);
    for (const auto& t : spec.tasks) EXPECT_GE(t.nodes, 1);
  }
}

TEST(TaskSpecTest, ProportionalAssignmentTracksWorkload) {
  const auto p = stap::RadarParams();
  const auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  const stap::WorkloadModel wm(p);
  const int hard_wc = spec.tasks[static_cast<std::size_t>(spec.find(TaskKind::kWeightsHard))].nodes;
  const int easy_wc = spec.tasks[static_cast<std::size_t>(spec.find(TaskKind::kWeightsEasy))].nodes;
  // Hard weights cost more per the model, so they should get more nodes...
  if (wm.weights_hard().flops > 2 * wm.weights_easy().flops) {
    EXPECT_GE(hard_wc, easy_wc);
  }
}

TEST(TaskSpecTest, ProportionalSeparateIoAddsReadNodes) {
  const auto p = stap::RadarParams();
  const auto spec =
      proportional_assignment(p, 50, IoStrategy::kSeparateTask, false, 4);
  EXPECT_EQ(spec.tasks.front().kind, TaskKind::kParallelRead);
  EXPECT_EQ(spec.tasks.front().nodes, 4);
  EXPECT_EQ(spec.total_nodes(), 54);
  EXPECT_THROW(
      proportional_assignment(p, 50, IoStrategy::kSeparateTask, false, 0),
      PreconditionError);
}

TEST(TaskSpecTest, ProportionalCombinedStructure) {
  const auto p = stap::RadarParams();
  const auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, true);
  EXPECT_EQ(spec.tasks.size(), 6u);
  EXPECT_EQ(spec.total_nodes(), 50);
  EXPECT_EQ(spec.tasks.back().kind, TaskKind::kPulseCompressionCfar);
}

// ---------------------------------------------------------------- metrics --

PipelineMetrics synthetic_metrics(const std::vector<std::pair<TaskKind, Seconds>>& ts) {
  PipelineMetrics m;
  for (const auto& [kind, total] : ts) {
    TaskTiming t;
    t.kind = kind;
    t.nodes = 1;
    t.compute = total;  // put everything in compute for simplicity
    m.tasks.push_back(t);
  }
  return m;
}

TEST(Metrics, ThroughputIsInverseOfSlowestTask) {
  const auto m = synthetic_metrics({{TaskKind::kDoppler, 0.5},
                                    {TaskKind::kWeightsEasy, 0.2},
                                    {TaskKind::kCfar, 0.25}});
  EXPECT_DOUBLE_EQ(m.throughput(), 2.0);
}

TEST(Metrics, EmbeddedLatencyMatchesPaperEquationTwo) {
  // latency_7 = T0 + max(T3, T4) + T5 + T6 (weights excluded).
  const auto m = synthetic_metrics({{TaskKind::kDoppler, 1.0},
                                    {TaskKind::kWeightsEasy, 10.0},
                                    {TaskKind::kWeightsHard, 20.0},
                                    {TaskKind::kBeamformEasy, 0.5},
                                    {TaskKind::kBeamformHard, 0.8},
                                    {TaskKind::kPulseCompression, 0.3},
                                    {TaskKind::kCfar, 0.2}});
  EXPECT_DOUBLE_EQ(m.latency(), 1.0 + 0.8 + 0.3 + 0.2);
}

TEST(Metrics, SeparateIoLatencyGainsOneTerm) {
  // latency_8 = T0' + T1' + max + T6' + T7' (paper eq. 4).
  const auto m = synthetic_metrics({{TaskKind::kParallelRead, 0.4},
                                    {TaskKind::kDoppler, 1.0},
                                    {TaskKind::kWeightsEasy, 10.0},
                                    {TaskKind::kWeightsHard, 20.0},
                                    {TaskKind::kBeamformEasy, 0.5},
                                    {TaskKind::kBeamformHard, 0.8},
                                    {TaskKind::kPulseCompression, 0.3},
                                    {TaskKind::kCfar, 0.2}});
  EXPECT_DOUBLE_EQ(m.latency(), 0.4 + 1.0 + 0.8 + 0.3 + 0.2);
}

TEST(Metrics, CombinedLatencyUsesMergedTask) {
  const auto m = synthetic_metrics({{TaskKind::kDoppler, 1.0},
                                    {TaskKind::kWeightsEasy, 10.0},
                                    {TaskKind::kWeightsHard, 20.0},
                                    {TaskKind::kBeamformEasy, 0.5},
                                    {TaskKind::kBeamformHard, 0.8},
                                    {TaskKind::kPulseCompressionCfar, 0.4}});
  EXPECT_DOUBLE_EQ(m.latency(), 1.0 + 0.8 + 0.4);
}

TEST(Metrics, PhasesSumIntoTaskTotal) {
  TaskTiming t;
  t.receive = 0.1;
  t.compute = 0.2;
  t.send = 0.3;
  EXPECT_DOUBLE_EQ(t.total(), 0.6);
}

TEST(Metrics, ErrorsOnEmptyOrMissing) {
  PipelineMetrics empty;
  EXPECT_THROW(empty.throughput(), PreconditionError);
  EXPECT_THROW(empty.latency(), PreconditionError);
  const auto m = synthetic_metrics({{TaskKind::kDoppler, 1.0}});
  EXPECT_THROW(m.task_time(TaskKind::kCfar), RuntimeError);
}

// ----------------------------------------------------------- ThreadRunner --

/// Sequential reference: exactly what the parallel pipeline should compute
/// for CPI t (weights trained on the file of CPI t-1).
std::vector<stap::Detection> sequential_reference(const stap::RadarParams& p,
                                                  const stap::SceneConfig& scene,
                                                  std::uint64_t seed,
                                                  std::size_t files, int cpi) {
  stap::SceneGenerator gen(p, scene, seed);
  const stap::DataCube prev_cube = gen.generate((cpi - 1) % files);
  const stap::DataCube cur_cube = gen.generate(cpi % files);
  stap::DopplerFilter filt(p);
  const auto prev = filt.process(prev_cube);
  const auto cur = filt.process(cur_cube);

  stap::WeightComputer wce(p, prev.easy_bin_ids, p.easy_dof());
  stap::WeightComputer wch(p, prev.hard_bin_ids, p.hard_dof());
  const auto we = wce.compute(prev.easy);
  const auto wh = wch.compute(prev.hard);

  stap::Beamformer bf(p);
  auto ye = bf.apply(cur.easy, we);
  auto yh = bf.apply(cur.hard, wh);
  stap::PulseCompressor pc(p);
  pc.compress(ye);
  pc.compress(yh);
  stap::CfarDetector cfar(p);
  auto dets = cfar.detect(ye, cur.easy_bin_ids);
  const auto hard_dets = cfar.detect(yh, cur.hard_bin_ids);
  dets.insert(dets.end(), hard_dets.begin(), hard_dets.end());
  for (auto& d : dets) d.cpi = static_cast<std::uint64_t>(cpi);
  return dets;
}

using DetKey = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, std::uint32_t>;

std::set<DetKey> keys_of(const std::vector<stap::Detection>& dets, int cpi) {
  std::set<DetKey> keys;
  for (const auto& d : dets) {
    if (d.cpi == static_cast<std::uint64_t>(cpi)) {
      keys.insert({d.cpi, d.bin, d.beam, d.range});
    }
  }
  return keys;
}

class ThreadRunnerTest : public ::testing::Test {
 protected:
  ThreadRunnerTest() {
    root_ = fs::temp_directory_path() /
            ("pstap_runner_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~ThreadRunnerTest() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  RunOptions options() const {
    RunOptions opt;
    opt.cpis = 3;
    opt.warmup = 1;
    opt.seed = 77;
    opt.fs_root = root_;
    opt.scene.cnr_db = 40.0;
    opt.scene.targets = {{40, 8.0, 0.0, 18.0}, {90, 1.0, -0.35, 25.0}};
    return opt;
  }

  static std::atomic<int> counter_;
  fs::path root_;
};
std::atomic<int> ThreadRunnerTest::counter_{0};

TEST_F(ThreadRunnerTest, EmbeddedPipelineMatchesSequentialReference) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, {2, 1, 1, 2, 1, 2, 1});
  ThreadRunner runner(spec, options());
  const RunResult result = runner.run();

  ASSERT_EQ(result.metrics.tasks.size(), 7u);
  for (int cpi = 1; cpi < 3; ++cpi) {
    const auto expect = keys_of(
        sequential_reference(p, options().scene, options().seed, 4, cpi), cpi);
    const auto got = keys_of(result.detections, cpi);
    EXPECT_EQ(got, expect) << "cpi " << cpi;
    EXPECT_FALSE(expect.empty());
  }
}

TEST_F(ThreadRunnerTest, SeparateIoProducesSameDetections) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::separate_io(p, {2, 2, 1, 1, 1, 1, 1, 1});
  ThreadRunner runner(spec, options());
  const RunResult result = runner.run();
  ASSERT_EQ(result.metrics.tasks.size(), 8u);
  for (int cpi = 1; cpi < 3; ++cpi) {
    const auto expect = keys_of(
        sequential_reference(p, options().scene, options().seed, 4, cpi), cpi);
    EXPECT_EQ(keys_of(result.detections, cpi), expect) << "cpi " << cpi;
  }
}

TEST_F(ThreadRunnerTest, CombinedPipelineProducesSameDetections) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::combined(p, {2, 1, 1, 1, 1, 2});
  ThreadRunner runner(spec, options());
  const RunResult result = runner.run();
  ASSERT_EQ(result.metrics.tasks.size(), 6u);
  for (int cpi = 1; cpi < 3; ++cpi) {
    const auto expect = keys_of(
        sequential_reference(p, options().scene, options().seed, 4, cpi), cpi);
    EXPECT_EQ(keys_of(result.detections, cpi), expect) << "cpi " << cpi;
  }
}

TEST_F(ThreadRunnerTest, InjectedTargetsAreDetected) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});
  ThreadRunner runner(spec, options());
  const RunResult result = runner.run();
  bool easy_found = false, hard_found = false;
  for (const auto& d : result.detections) {
    if (d.cpi == 0) continue;  // conventional weights at CPI 0
    if (std::llabs(static_cast<long long>(d.range) - 40) <= 1 && d.bin == 8) {
      easy_found = true;
    }
    if (std::llabs(static_cast<long long>(d.range) - 90) <= 1 && d.bin == 1) {
      hard_found = true;
    }
  }
  EXPECT_TRUE(easy_found);
  EXPECT_TRUE(hard_found);
}

TEST_F(ThreadRunnerTest, MetricsArePopulated) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  ThreadRunner runner(spec, options());
  const RunResult result = runner.run();
  EXPECT_EQ(result.timed_cpis, 2);
  // Doppler must show compute time; throughput/latency must be computable.
  EXPECT_GT(result.metrics.task_time(TaskKind::kDoppler), 0.0);
  EXPECT_GT(result.metrics.throughput(), 0.0);
  EXPECT_GT(result.metrics.latency(), 0.0);
  for (const auto& t : result.metrics.tasks) {
    EXPECT_GE(t.receive, 0.0);
    EXPECT_GE(t.compute, 0.0);
    EXPECT_GE(t.send, 0.0);
  }
}

TEST_F(ThreadRunnerTest, SyncOnlyFileSystemAlsoWorks) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  RunOptions opt = options();
  opt.fs_config = pfs::piofs(4);
  ThreadRunner runner(spec, opt);
  const RunResult result = runner.run();
  for (int cpi = 1; cpi < 3; ++cpi) {
    const auto expect = keys_of(
        sequential_reference(p, opt.scene, opt.seed, 4, cpi), cpi);
    EXPECT_EQ(keys_of(result.detections, cpi), expect) << "cpi " << cpi;
  }
}

TEST_F(ThreadRunnerTest, MoreNodesThanBinsStillCorrect) {
  // hard bins = 5 with test_small; give hard WC/BF 6 nodes each so some
  // nodes own zero bins.
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, {2, 1, 6, 1, 6, 1, 1});
  ThreadRunner runner(spec, options());
  const RunResult result = runner.run();
  for (int cpi = 1; cpi < 3; ++cpi) {
    const auto expect = keys_of(
        sequential_reference(p, options().scene, options().seed, 4, cpi), cpi);
    EXPECT_EQ(keys_of(result.detections, cpi), expect) << "cpi " << cpi;
  }
}

TEST_F(ThreadRunnerTest, QrWeightSolverFindsSameTargets) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  RunOptions opt = options();
  opt.weight_solver = stap::WeightSolver::kQrSmi;
  ThreadRunner runner(spec, opt);
  const RunResult result = runner.run();
  bool easy_found = false, hard_found = false;
  for (const auto& d : result.detections) {
    if (d.cpi == 0) continue;
    if (std::llabs(static_cast<long long>(d.range) - 40) <= 1 && d.bin == 8) {
      easy_found = true;
    }
    if (std::llabs(static_cast<long long>(d.range) - 90) <= 1 && d.bin == 1) {
      hard_found = true;
    }
  }
  EXPECT_TRUE(easy_found);
  EXPECT_TRUE(hard_found);
}

TEST_F(ThreadRunnerTest, DetectionLogMatchesReturnedReports) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  RunOptions opt = options();
  opt.detection_log = "reports";
  ThreadRunner runner(spec, opt);
  const RunResult result = runner.run();

  pfs::StripedFileSystem fs(opt.fs_root, opt.fs_config);
  stap::DetectionLogReader reader(fs, "reports");
  const auto blocks = reader.read_all();
  ASSERT_EQ(blocks.size(), static_cast<std::size_t>(opt.cpis));
  std::size_t logged = 0;
  for (const auto& block : blocks) logged += block.detections.size();
  EXPECT_EQ(logged, result.detections.size());
  // Spot-check: per-CPI sets agree.
  for (int cpi = 0; cpi < opt.cpis; ++cpi) {
    EXPECT_EQ(keys_of(blocks[static_cast<std::size_t>(cpi)].detections, cpi),
              keys_of(result.detections, cpi))
        << "cpi " << cpi;
  }
}

TEST_F(ThreadRunnerTest, RejectsBadOptions) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});
  RunOptions opt = options();
  opt.cpis = 0;
  EXPECT_THROW(ThreadRunner(spec, opt), PreconditionError);
  opt = options();
  opt.warmup = opt.cpis;
  EXPECT_THROW(ThreadRunner(spec, opt), PreconditionError);
  opt = options();
  opt.fs_root.clear();
  EXPECT_THROW(ThreadRunner(spec, opt), PreconditionError);
}

// Any node assignment must leave the pipeline's output unchanged: sweep a
// family of deliberately lopsided assignments and compare against the
// sequential reference.
class AssignmentSweep : public ThreadRunnerTest,
                        public ::testing::WithParamInterface<std::vector<int>> {};

TEST_P(AssignmentSweep, DetectionsInvariantUnderAssignment) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = PipelineSpec::embedded_io(p, GetParam());
  ThreadRunner runner(spec, options());
  const RunResult result = runner.run();
  for (int cpi = 1; cpi < 3; ++cpi) {
    const auto expect = keys_of(
        sequential_reference(p, options().scene, options().seed, 4, cpi), cpi);
    EXPECT_EQ(keys_of(result.detections, cpi), expect) << "cpi " << cpi;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Assignments, AssignmentSweep,
    ::testing::Values(std::vector<int>{3, 1, 1, 1, 1, 1, 1},   // wide Doppler
                      std::vector<int>{1, 2, 2, 1, 1, 1, 1},   // wide weights
                      std::vector<int>{1, 1, 1, 3, 3, 1, 1},   // wide beamforming
                      std::vector<int>{1, 1, 1, 1, 1, 3, 3},   // wide tail
                      std::vector<int>{2, 2, 2, 2, 2, 2, 2})); // uniform 2x

}  // namespace
}  // namespace pstap::pipeline
