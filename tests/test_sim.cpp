// Tests for the discrete-event simulator: event-queue semantics, machine
// presets, the cost model's reproduction of the paper's analytic claims
// (eqs. 6-11: combined-task time, throughput invariance, I/O bottleneck vs
// stripe factor, async-vs-sync overlap), and SimRunner's steady-state
// measurements matching the closed-form equations (1)-(4).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/machine.hpp"
#include "sim/sim_runner.hpp"

namespace pstap::sim {
namespace {

using pipeline::IoStrategy;
using pipeline::PipelineSpec;
using pipeline::TaskKind;
using pipeline::proportional_assignment;

stap::RadarParams paper_params() { return stap::RadarParams{}; }

// ------------------------------------------------------------ event queue --

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule_at(1.0, [&, i] { order.push_back(i); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 10) q.schedule_in(1.0, chain);
  };
  q.schedule_in(0.0, chain);
  q.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(q.now(), 9.0);
}

TEST(EventQueue, RejectsPastEvents) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.step();
  EXPECT_THROW(q.schedule_at(4.0, [] {}), PreconditionError);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), PreconditionError);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  EXPECT_TRUE(q.empty());
}

// -------------------------------------------------------------- machines --

TEST(Machine, ParagonPresets) {
  const auto m16 = paragon_like(16);
  const auto m64 = paragon_like(64);
  EXPECT_TRUE(m16.async_io);
  EXPECT_EQ(m16.stripe_factor, 16u);
  EXPECT_EQ(m64.stripe_factor, 64u);
  EXPECT_EQ(m16.node_flops, m64.node_flops);
}

TEST(Machine, SpPresetIsFasterButSyncOnly) {
  const auto sp = sp_like();
  const auto pg = paragon_like(16);
  EXPECT_GT(sp.node_flops, 2 * pg.node_flops);
  EXPECT_FALSE(sp.async_io);
  EXPECT_EQ(sp.stripe_factor, 80u);
}

// -------------------------------------------------------------- cost model --

TEST(CostModel, ComputeTimeScalesInverselyWithNodes) {
  const auto p = paper_params();
  const auto machine = paragon_like(64);
  const auto spec1 = proportional_assignment(p, 25, IoStrategy::kEmbedded, false);
  const auto spec2 = proportional_assignment(p, 100, IoStrategy::kEmbedded, false);
  const CostModel small(spec1, machine);
  const CostModel large(spec2, machine);
  // Per-task compute shrinks when its node count grows (W/P term).
  for (std::size_t i = 0; i < spec1.tasks.size(); ++i) {
    if (spec2.tasks[i].nodes > 2 * spec1.tasks[i].nodes) {
      EXPECT_LT(large.cost(i).compute, small.cost(i).compute)
          << task_name(spec1.tasks[i].kind);
    }
  }
}

TEST(CostModel, CombinedTaskBeatsSplitTasks) {
  // Paper eq. 11: T_{5+6} < T_5 + T_6 at equal total nodes.
  const auto p = paper_params();
  const auto machine = paragon_like(64);
  const auto split = PipelineSpec::embedded_io(p, {8, 2, 6, 4, 10, 6, 4});
  const auto merged = PipelineSpec::combined(p, {8, 2, 6, 4, 10, 10});
  const CostModel cm_split(split, machine);
  const CostModel cm_merged(merged, machine);
  const Seconds t5 = cm_split.cost(5).total();
  const Seconds t6 = cm_split.cost(6).total();
  const Seconds t56 = cm_merged.cost(5).total();
  EXPECT_LT(t56, t5 + t6);
}

TEST(CostModel, IoReadTimeImprovesWithStripeFactor) {
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 100, IoStrategy::kEmbedded, false);
  const CostModel sf16(spec, paragon_like(16));
  const CostModel sf64(spec, paragon_like(64));
  EXPECT_GT(sf16.io_read_time(8), 2.0 * sf64.io_read_time(8));
}

TEST(CostModel, AsyncOverlapHidesIoWhenComputeDominates) {
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 25, IoStrategy::kEmbedded, false);
  auto machine = paragon_like(64);
  const CostModel async_model(spec, machine);
  machine.async_io = false;
  const CostModel sync_model(spec, machine);
  const std::size_t dop = static_cast<std::size_t>(spec.find(TaskKind::kDoppler));
  // Sync pays io + compute + send; async pays max of the two.
  EXPECT_LT(async_model.cost(dop).occupancy, sync_model.cost(dop).occupancy);
  EXPECT_DOUBLE_EQ(sync_model.cost(dop).receive, sync_model.cost(dop).io);
}

TEST(CostModel, EmbeddedReceivePhaseBalloonsWhenIoBound) {
  // The paper's observation: with a small stripe factor at high node
  // counts, the Doppler task's receive phase grows (I/O residual) while
  // compute/send stay the same.
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 100, IoStrategy::kEmbedded, false);
  const CostModel sf16(spec, paragon_like(16));
  const CostModel sf64(spec, paragon_like(64));
  const std::size_t dop = static_cast<std::size_t>(spec.find(TaskKind::kDoppler));
  EXPECT_GT(sf16.cost(dop).receive, sf64.cost(dop).receive);
  EXPECT_NEAR(sf16.cost(dop).compute, sf64.cost(dop).compute, 1e-12);
}

TEST(CostModel, SeparateIoReadTaskCarriesTheIo) {
  const auto p = paper_params();
  const auto spec =
      proportional_assignment(p, 100, IoStrategy::kSeparateTask, false, 8);
  const CostModel cm(spec, paragon_like(16));
  const auto read = cm.cost(0);
  EXPECT_EQ(read.kind, TaskKind::kParallelRead);
  EXPECT_GT(read.io, 0.0);
  const std::size_t dop = static_cast<std::size_t>(spec.find(TaskKind::kDoppler));
  EXPECT_DOUBLE_EQ(cm.cost(dop).io, 0.0);
  EXPECT_GT(cm.cost(dop).receive, 0.0);  // network receive from the read task
}

TEST(CostModel, AllCostsPositiveAndFinite) {
  const auto p = paper_params();
  for (const auto io : {IoStrategy::kEmbedded, IoStrategy::kSeparateTask}) {
    const auto spec = proportional_assignment(p, 50, io, false,
                                              io == IoStrategy::kSeparateTask ? 4 : 0);
    const CostModel cm(spec, sp_like());
    for (const auto& c : cm.all()) {
      EXPECT_GE(c.receive, 0.0);
      EXPECT_GT(c.compute, 0.0);
      EXPECT_GE(c.send, 0.0);
      EXPECT_GT(c.occupancy, 0.0);
      EXPECT_TRUE(std::isfinite(c.total()));
    }
  }
}

// -------------------------------------------------------------- sim runner --

TEST(SimRunnerTest, ThroughputMatchesBottleneckEquation) {
  // Paper eq. 1: throughput = 1 / max_i T_i (occupancy in our model).
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  SimRunner runner(spec, paragon_like(64));
  const SimResult result = runner.run();
  Seconds t_max = 0;
  for (const auto& c : result.costs) t_max = std::max(t_max, c.occupancy);
  EXPECT_NEAR(result.measured_throughput, 1.0 / t_max, 1e-6 / t_max);
}

TEST(SimRunnerTest, LatencyMatchesPaperEquationTwo) {
  // latency = T_doppler + max(T_bf_e, T_bf_h) + T_pc + T_cfar, using stage
  // occupancies in the deterministic steady state.
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  SimRunner runner(spec, paragon_like(64));
  const SimResult result = runner.run();
  auto occ = [&](TaskKind k) {
    for (const auto& c : result.costs) {
      if (c.kind == k) return c.occupancy;
    }
    return Seconds{0};
  };
  const Seconds expect = occ(TaskKind::kDoppler) +
                         std::max(occ(TaskKind::kBeamformEasy),
                                  occ(TaskKind::kBeamformHard)) +
                         occ(TaskKind::kPulseCompression) + occ(TaskKind::kCfar);
  EXPECT_NEAR(result.measured_latency, expect, 1e-9 + 0.05 * expect);
}

TEST(SimRunnerTest, SeparateIoHasSameThroughputWorseLatency) {
  // The paper's Table 1 vs Table 2 comparison.
  const auto p = paper_params();
  const auto machine = paragon_like(64);
  const auto embedded = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  const auto separate =
      proportional_assignment(p, 50, IoStrategy::kSeparateTask, false, 4);
  const SimResult a = SimRunner(embedded, machine).run();
  const SimResult b = SimRunner(separate, machine).run();
  EXPECT_NEAR(b.measured_throughput, a.measured_throughput,
              0.1 * a.measured_throughput);
  EXPECT_GT(b.measured_latency, a.measured_latency);
}

TEST(SimRunnerTest, SmallStripeFactorBottlenecksAtScale) {
  // Paper Table 1: sf=16 throughput stalls at 100 nodes; sf=64 keeps scaling.
  const auto p = paper_params();
  auto run = [&](int total, std::size_t sf) {
    const auto spec = proportional_assignment(p, total, IoStrategy::kEmbedded, false);
    return SimRunner(spec, paragon_like(sf)).run().measured_throughput;
  };
  const double t16_50 = run(50, 16), t16_100 = run(100, 16);
  const double t64_50 = run(50, 64), t64_100 = run(100, 64);
  // sf=64 scales close to 2x; sf=16 clearly does not.
  EXPECT_GT(t64_100 / t64_50, 1.7);
  EXPECT_LT(t16_100 / t16_50, 1.5);
  // And at 100 nodes the large stripe factor wins outright.
  EXPECT_GT(t64_100, 1.2 * t16_100);
}

TEST(SimRunnerTest, LatencyBarelyAffectedByIoBottleneck) {
  // Paper §5.1: the I/O bottleneck hurts throughput, not latency (the
  // Doppler stage's receive residual is hidden by prefetching; only the
  // occupancy grows). Latencies should stay within a modest factor.
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 100, IoStrategy::kEmbedded, false);
  const SimResult sf16 = SimRunner(spec, paragon_like(16)).run();
  const SimResult sf64 = SimRunner(spec, paragon_like(64)).run();
  const double latency_penalty = sf16.measured_latency / sf64.measured_latency;
  const double throughput_penalty =
      sf64.measured_throughput / sf16.measured_throughput;
  EXPECT_GT(throughput_penalty, 1.2);                 // throughput clearly hurt
  EXPECT_LT(latency_penalty, 2.0);                    // latency only mildly
  EXPECT_GT(throughput_penalty, 1.3 * latency_penalty);  // and much less than thr.
}

TEST(SimRunnerTest, SpScalesWorseThanParagonDespiteFasterCpus) {
  // Paper §5.1: PIOFS' missing async reads hurt scaling even though the
  // SP's CPUs are ~4x faster.
  const auto p = paper_params();
  auto scaling = [&](const MachineModel& m) {
    const auto s25 = proportional_assignment(p, 25, IoStrategy::kEmbedded, false);
    const auto s100 = proportional_assignment(p, 100, IoStrategy::kEmbedded, false);
    const double t25 = SimRunner(s25, m).run().measured_throughput;
    const double t100 = SimRunner(s100, m).run().measured_throughput;
    return t100 / t25;
  };
  EXPECT_GT(scaling(paragon_like(64)), 1.2 * scaling(sp_like()));
}

TEST(SimRunnerTest, CombiningTasksImprovesLatencyNotThroughput) {
  // Paper Table 3/4 and §6: merge PC+CFAR at equal total nodes.
  const auto p = paper_params();
  const auto machine = paragon_like(64);
  const auto split = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  // Same totals: give the merged task the sum of the split tasks' nodes.
  std::vector<int> merged_nodes;
  for (std::size_t i = 0; i + 2 < split.tasks.size(); ++i) {
    merged_nodes.push_back(split.tasks[i].nodes);
  }
  merged_nodes.push_back(split.tasks[split.tasks.size() - 2].nodes +
                         split.tasks.back().nodes);
  const auto merged = PipelineSpec::combined(p, merged_nodes);
  ASSERT_EQ(merged.total_nodes(), split.total_nodes());

  const SimResult a = SimRunner(split, machine).run();
  const SimResult b = SimRunner(merged, machine).run();
  EXPECT_LT(b.measured_latency, a.measured_latency);
  EXPECT_GE(b.measured_throughput, 0.99 * a.measured_throughput);
}

TEST(SimRunnerTest, LatencyImprovementShrinksWithNodeCount) {
  // Paper Table 4: the combination gain decreases as nodes increase.
  const auto p = paper_params();
  const auto machine = paragon_like(16);
  auto improvement = [&](int total) {
    const auto split = proportional_assignment(p, total, IoStrategy::kEmbedded, false);
    std::vector<int> merged_nodes;
    for (std::size_t i = 0; i + 2 < split.tasks.size(); ++i)
      merged_nodes.push_back(split.tasks[i].nodes);
    merged_nodes.push_back(split.tasks[split.tasks.size() - 2].nodes +
                           split.tasks.back().nodes);
    const auto merged = PipelineSpec::combined(p, merged_nodes);
    const double lat_split = SimRunner(split, machine).run().measured_latency;
    const double lat_merged = SimRunner(merged, machine).run().measured_latency;
    return (lat_split - lat_merged) / lat_split;
  };
  const double i25 = improvement(25);
  const double i100 = improvement(100);
  EXPECT_GT(i25, 0.0);
  EXPECT_GT(i100, 0.0);
  EXPECT_GT(i25, i100);
}

TEST(SimRunnerTest, CombiningTheBottleneckImprovesBothMetrics) {
  // Paper §6.2: when one of the combined tasks determines the throughput,
  // merging improves throughput AND latency simultaneously. Starve the
  // tail tasks to make pulse compression the bottleneck.
  const auto p = paper_params();
  const auto machine = paragon_like(64);
  const auto balanced = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  std::vector<int> split_nodes, merged_nodes;
  for (std::size_t i = 0; i + 2 < balanced.tasks.size(); ++i) {
    split_nodes.push_back(balanced.tasks[i].nodes);
    merged_nodes.push_back(balanced.tasks[i].nodes);
  }
  split_nodes.push_back(2);  // PC starved -> bottleneck
  split_nodes.push_back(2);  // CFAR
  merged_nodes.push_back(4);

  const auto split = PipelineSpec::embedded_io(p, split_nodes);
  const auto merged = PipelineSpec::combined(p, merged_nodes);
  const SimResult a = SimRunner(split, machine).run();
  const SimResult b = SimRunner(merged, machine).run();

  // Verify the premise: PC (or CFAR) really is the bottleneck in the split.
  Seconds t_max = 0, t_tail = 0;
  for (const auto& c : a.costs) {
    t_max = std::max(t_max, c.occupancy);
    if (c.kind == TaskKind::kPulseCompression || c.kind == TaskKind::kCfar) {
      t_tail = std::max(t_tail, c.occupancy);
    }
  }
  ASSERT_DOUBLE_EQ(t_max, t_tail);

  EXPECT_GT(b.measured_throughput, 1.05 * a.measured_throughput);
  EXPECT_LT(b.measured_latency, a.measured_latency);
}

TEST(SimRunnerTest, UtilizationBoundedAndBottleneckSaturated) {
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  const SimResult r = SimRunner(spec, paragon_like(64)).run();
  ASSERT_EQ(r.utilization.size(), spec.tasks.size());
  double max_util = 0;
  for (const double u : r.utilization) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0 + 1e-6);
    max_util = std::max(max_util, u);
  }
  EXPECT_GT(max_util, 0.9);  // someone is the bottleneck
}

TEST(SimRunnerTest, SlowerInputPeriodLowersThroughputNotLatency) {
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  SimOptions slow;
  slow.input_period = 2.0;  // radar slower than the pipeline
  const SimResult fast = SimRunner(spec, paragon_like(64)).run();
  const SimResult idle = SimRunner(spec, paragon_like(64), slow).run();
  EXPECT_NEAR(idle.measured_throughput, 0.5, 0.01);
  EXPECT_NEAR(idle.measured_latency, fast.measured_latency,
              0.05 * fast.measured_latency);
}

TEST(SimRunnerTest, ReplicatingTheBottleneckScalesThroughput) {
  // Round-robin task replication (the paper's Figs. 3-4 scheduling boxes):
  // two instances of the bottleneck task double its sustainable rate
  // without changing per-CPI latency.
  const auto p = paper_params();
  const auto machine = paragon_like(64);
  // Starve hard beamforming so it is the clear bottleneck.
  auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  spec.tasks[static_cast<std::size_t>(spec.find(TaskKind::kBeamformHard))].nodes = 1;

  const SimResult base = SimRunner(spec, machine).run();
  Seconds t_max = 0, t_bh = 0;
  for (const auto& c : base.costs) {
    t_max = std::max(t_max, c.occupancy);
    if (c.kind == TaskKind::kBeamformHard) t_bh = c.occupancy;
  }
  ASSERT_DOUBLE_EQ(t_max, t_bh);  // premise: hard BF is the bottleneck

  SimOptions opt;
  opt.replicas[TaskKind::kBeamformHard] = 2;
  const SimResult replicated = SimRunner(spec, machine, opt).run();
  EXPECT_GT(replicated.measured_throughput, 1.3 * base.measured_throughput);
  EXPECT_NEAR(replicated.measured_latency, base.measured_latency,
              0.05 * base.measured_latency);
}

TEST(SimRunnerTest, ReplicationOfIoTasksIsRejected) {
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  SimOptions opt;
  opt.replicas[TaskKind::kDoppler] = 2;  // embedded I/O: reads files
  EXPECT_THROW(SimRunner(spec, paragon_like(64), opt).run(), PreconditionError);

  // With a separate read task, the Doppler task no longer reads files and
  // may be replicated; the read task itself may not.
  const auto sep = proportional_assignment(p, 50, IoStrategy::kSeparateTask, false, 6);
  EXPECT_NO_THROW(SimRunner(sep, paragon_like(64), opt).run());
  SimOptions opt2;
  opt2.replicas[TaskKind::kParallelRead] = 2;
  EXPECT_THROW(SimRunner(sep, paragon_like(64), opt2).run(), PreconditionError);
}

TEST(SimRunnerTest, RejectsBadOptions) {
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 25, IoStrategy::kEmbedded, false);
  SimOptions opt;
  opt.cpis = 1;
  EXPECT_THROW(SimRunner(spec, paragon_like(16), opt), PreconditionError);
  opt = SimOptions{};
  opt.warmup = opt.cpis;
  EXPECT_THROW(SimRunner(spec, paragon_like(16), opt), PreconditionError);
  opt = SimOptions{};
  opt.input_period = -1;
  EXPECT_THROW(SimRunner(spec, paragon_like(16), opt), PreconditionError);
}

TEST(SimRunnerTest, CrashEventStretchesLatencyByItsStall) {
  // A crash at a latency-path stage (PC, steady-state CPI): the CPI's
  // service stretches by detection + recovery + lost_work.
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  SimOptions opt;
  opt.cpis = 16;
  opt.warmup = 4;
  const SimResult clean = SimRunner(spec, paragon_like(64), opt).run();

  SimOptions::CrashEvent crash;
  crash.task = TaskKind::kPulseCompression;
  crash.cpi = 8;
  crash.detection = 0.010;
  crash.recovery = 0.050;
  crash.lost_work = 0.025;
  const Seconds stall = crash.detection + crash.recovery + crash.lost_work;

  // Saturated source, crash at the bottleneck stage (zero slack, so the
  // stall pushes every later exit back): the measured
  // (availability-degraded) throughput must drop and latency must grow.
  {
    auto copt = opt;
    SimOptions::CrashEvent bneck = crash;
    Seconds occ_max = 0;
    for (const auto& c : clean.costs) {
      if (c.occupancy > occ_max) {
        occ_max = c.occupancy;
        bneck.task = c.kind;
      }
    }
    copt.crashes.push_back(bneck);
    const SimResult crashed = SimRunner(spec, paragon_like(64), copt).run();
    EXPECT_LT(crashed.measured_throughput, clean.measured_throughput);
    EXPECT_GT(crashed.measured_latency, clean.measured_latency);
  }

  // Unsaturated source (period > occupancy + stall, so CPIs never queue
  // behind the stall): only the crashed CPI's latency grows, by exactly
  // the stall, so the mean grows by stall / steady-window size.
  Seconds t_max = 0;
  for (const auto& c : clean.costs) t_max = std::max(t_max, c.occupancy);
  opt.input_period = 10 * t_max + stall;

  const SimResult slack = SimRunner(spec, paragon_like(64), opt).run();
  opt.crashes.push_back(crash);
  const SimResult crashed = SimRunner(spec, paragon_like(64), opt).run();

  const Seconds expect = slack.measured_latency +
                         stall / static_cast<double>(opt.cpis - opt.warmup);
  EXPECT_NEAR(crashed.measured_latency, expect, 1e-9 + 1e-6 * expect);
}

TEST(SimRunnerTest, CrashEventValidation) {
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 25, IoStrategy::kEmbedded, false);
  SimOptions opt;
  opt.crashes.push_back({TaskKind::kPulseCompression, /*cpi=*/-1, 0, 0, 0});
  EXPECT_THROW(SimRunner(spec, paragon_like(16), opt).run(), PreconditionError);
  opt.crashes = {{TaskKind::kParallelRead, /*cpi=*/0, 0, 0, 0}};  // embedded: absent
  EXPECT_THROW(SimRunner(spec, paragon_like(16), opt).run(), PreconditionError);
  opt.crashes = {{TaskKind::kDoppler, /*cpi=*/0, -1.0, 0, 0}};
  EXPECT_THROW(SimRunner(spec, paragon_like(16), opt).run(), PreconditionError);
}

TEST(SimRunnerTest, DeterministicAcrossRuns) {
  const auto p = paper_params();
  const auto spec = proportional_assignment(p, 50, IoStrategy::kEmbedded, false);
  const SimResult a = SimRunner(spec, paragon_like(16)).run();
  const SimResult b = SimRunner(spec, paragon_like(16)).run();
  EXPECT_DOUBLE_EQ(a.measured_throughput, b.measured_throughput);
  EXPECT_DOUBLE_EQ(a.measured_latency, b.measured_latency);
}

}  // namespace
}  // namespace pstap::sim
