// Tests for the striped parallel file system: layout round-trips across
// stripe factors/units (parameterized), async vs sync read semantics,
// concurrent readers, persistence across mounts, throttling, error paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <thread>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/wall_clock.hpp"
#include "pfs/striped_file_system.hpp"

namespace pstap::pfs {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("pstap_pfs_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xFF);
  return v;
}

PfsConfig small_cfg(std::size_t factor, std::size_t unit) {
  PfsConfig cfg;
  cfg.name = "test";
  cfg.stripe_factor = factor;
  cfg.stripe_unit = unit;
  return cfg;
}

// ----------------------------------------------------------------- setup --

TEST(Pfs, MountCreatesStripeDirectories) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(4, 256));
  EXPECT_TRUE(fs::is_directory(tmp.path() / "sd000"));
  EXPECT_TRUE(fs::is_directory(tmp.path() / "sd003"));
  EXPECT_FALSE(fs::exists(tmp.path() / "sd004"));
}

TEST(Pfs, PresetsMatchPaperSystems) {
  const auto paragon = paragon_pfs(64);
  EXPECT_EQ(paragon.stripe_factor, 64u);
  EXPECT_EQ(paragon.stripe_unit, 64 * KiB);
  EXPECT_TRUE(paragon.supports_async);

  const auto sp = piofs();
  EXPECT_FALSE(sp.supports_async);
  EXPECT_EQ(sp.stripe_unit, 64 * KiB);
}

TEST(Pfs, RejectsDegenerateConfig) {
  TempDir tmp;
  EXPECT_THROW(StripedFileSystem(tmp.path(), small_cfg(0, 64)), PreconditionError);
  EXPECT_THROW(StripedFileSystem(tmp.path(), small_cfg(4, 0)), PreconditionError);
}

// ------------------------------------------------------------ round trip --

struct LayoutParam {
  std::size_t factor;
  std::size_t unit;
  std::size_t file_size;
};

class PfsLayout : public ::testing::TestWithParam<LayoutParam> {};

TEST_P(PfsLayout, WholeFileRoundTrip) {
  const auto p = GetParam();
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(p.factor, p.unit));
  const auto data = pattern_bytes(p.file_size, p.factor * 1000 + p.unit);
  pfs.write_file("cube", data);
  EXPECT_EQ(pfs.file_size("cube"), p.file_size);
  EXPECT_EQ(pfs.read_file("cube"), data);
}

TEST_P(PfsLayout, RandomOffsetReadsMatch) {
  const auto p = GetParam();
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(p.factor, p.unit));
  const auto data = pattern_bytes(p.file_size, 42);
  pfs.write_file("cube", data);
  StripedFile f = pfs.open("cube");
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t off = rng.uniform_index(p.file_size);
    const std::size_t len =
        1 + static_cast<std::size_t>(rng.uniform_index(p.file_size - off));
    std::vector<std::byte> out(len);
    f.read(off, out);
    EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + off))
        << "offset " << off << " len " << len;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, PfsLayout,
    ::testing::Values(LayoutParam{1, 64, 1000},       // single directory
                      LayoutParam{2, 64, 64},          // exactly one unit
                      LayoutParam{4, 64, 63},          // less than a unit
                      LayoutParam{4, 64, 4 * 64},      // one unit per directory
                      LayoutParam{4, 64, 1037},        // odd size
                      LayoutParam{8, 128, 128 * 33},   // many rounds
                      LayoutParam{16, 4096, 70000},    // bigger units
                      LayoutParam{3, 100, 10240}));    // non-pow2 everything

// -------------------------------------------------------------- striping --

TEST(Pfs, SegmentsReceiveRoundRobinUnits) {
  TempDir tmp;
  const std::size_t unit = 100, factor = 4;
  StripedFileSystem pfs(tmp.path(), small_cfg(factor, unit));
  // 10 full units + 30 bytes tail -> units 0..10 land on dirs 0,1,2,3,0,...
  const std::size_t total = 10 * unit + 30;
  pfs.write_file("f", pattern_bytes(total, 1));
  // dirs 0,1,2 hold 3 units each? units per dir: dir d gets units {d, d+4, d+8}
  // unit 10 (tail, 30 bytes) -> dir 2. Expected segment sizes:
  //   dir0: units 0,4,8          -> 300
  //   dir1: units 1,5,9          -> 300
  //   dir2: units 2,6 + tail(10) -> 200 + 30 = 230
  //   dir3: units 3,7            -> 200
  EXPECT_EQ(fs::file_size(tmp.path() / "sd000" / "f.seg"), 300u);
  EXPECT_EQ(fs::file_size(tmp.path() / "sd001" / "f.seg"), 300u);
  EXPECT_EQ(fs::file_size(tmp.path() / "sd002" / "f.seg"), 230u);
  EXPECT_EQ(fs::file_size(tmp.path() / "sd003" / "f.seg"), 200u);
}

TEST(Pfs, BytesServicedCountsTraffic) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 64));
  pfs.write_file("f", pattern_bytes(1000, 3));
  const auto after_write = pfs.bytes_serviced();
  EXPECT_GE(after_write, 1000u);
  (void)pfs.read_file("f");
  EXPECT_GE(pfs.bytes_serviced(), after_write + 1000u);
}

// ------------------------------------------------------------- lifecycle --

TEST(Pfs, ExistsListRemove) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 64));
  EXPECT_FALSE(pfs.exists("a"));
  pfs.write_file("a", pattern_bytes(10, 1));
  pfs.write_file("b", pattern_bytes(20, 2));
  EXPECT_TRUE(pfs.exists("a"));
  EXPECT_EQ(pfs.list_files(), (std::vector<std::string>{"a", "b"}));
  pfs.remove("a");
  EXPECT_FALSE(pfs.exists("a"));
  EXPECT_EQ(pfs.list_files(), (std::vector<std::string>{"b"}));
  EXPECT_THROW(pfs.remove("a"), PreconditionError);
}

TEST(Pfs, CreateTruncatesExisting) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 64));
  pfs.write_file("f", pattern_bytes(500, 1));
  StripedFile f = pfs.create("f");
  EXPECT_EQ(f.size(), 0u);
  const auto fresh = pattern_bytes(100, 2);
  f.write(0, fresh);
  EXPECT_EQ(pfs.read_file("f"), fresh);
}

TEST(Pfs, MetadataPersistsAcrossRemounts) {
  TempDir tmp;
  const auto data = pattern_bytes(777, 9);
  {
    StripedFileSystem pfs(tmp.path(), small_cfg(4, 64));
    pfs.write_file("persist", data);
  }
  StripedFileSystem pfs(tmp.path(), small_cfg(4, 64));
  EXPECT_TRUE(pfs.exists("persist"));
  EXPECT_EQ(pfs.file_size("persist"), 777u);
  EXPECT_EQ(pfs.read_file("persist"), data);
}

TEST(Pfs, RemountWithDifferentLayoutThrows) {
  TempDir tmp;
  { StripedFileSystem pfs(tmp.path(), small_cfg(4, 64)); }
  EXPECT_THROW(StripedFileSystem(tmp.path(), small_cfg(8, 64)), PreconditionError);
  EXPECT_THROW(StripedFileSystem(tmp.path(), small_cfg(4, 128)), PreconditionError);
  // Same layout with different service parameters is fine.
  auto cfg = small_cfg(4, 64);
  cfg.supports_async = false;
  cfg.server_bandwidth = 1e6;
  EXPECT_NO_THROW(StripedFileSystem(tmp.path(), cfg));
}

TEST(Pfs, CorruptSuperblockIsRejected) {
  TempDir tmp;
  { StripedFileSystem pfs(tmp.path(), small_cfg(2, 64)); }
  {
    std::ofstream out(tmp.path() / ".pfs_superblock", std::ios::trunc);
    out << "not numbers";
  }
  EXPECT_THROW(StripedFileSystem(tmp.path(), small_cfg(2, 64)), IoError);
}

TEST(Pfs, OpenMissingFileThrows) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 64));
  EXPECT_THROW(pfs.open("nope"), PreconditionError);
  EXPECT_THROW(pfs.file_size("nope"), PreconditionError);
}

TEST(Pfs, RejectsPathyNames) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 64));
  EXPECT_THROW(pfs.open("a/b"), PreconditionError);
  EXPECT_THROW(pfs.open(""), PreconditionError);
  EXPECT_THROW(pfs.open("../escape"), PreconditionError);
}

TEST(Pfs, ReadPastEofThrows) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 64));
  pfs.write_file("f", pattern_bytes(100, 1));
  StripedFile f = pfs.open("f");
  std::vector<std::byte> buf(50);
  EXPECT_THROW(f.read(60, buf), PreconditionError);
  EXPECT_THROW((void)f.iread(101, std::span<std::byte>(buf).first(1)), PreconditionError);
  EXPECT_NO_THROW(f.read(50, buf));
}

// -------------------------------------------------------- sparse / writes --

TEST(Pfs, WriteAtOffsetExtendsLogicalSize) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(4, 64));
  StripedFile f = pfs.create("f");
  const auto chunk = pattern_bytes(64, 5);
  f.write(256, chunk);
  EXPECT_EQ(f.size(), 320u);
  std::vector<std::byte> out(64);
  f.read(256, out);
  EXPECT_EQ(out, chunk);
}

TEST(Pfs, InterleavedWritersAtExclusiveOffsets) {
  // The paper's radar writes 4 files round-robin while readers consume
  // exclusive portions — model concurrent exclusive-region writers.
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(4, 64));
  StripedFile f = pfs.create("f");
  const std::size_t region = 1000;
  const int writers = 4;
  std::vector<std::vector<std::byte>> payloads;
  for (int w = 0; w < writers; ++w) payloads.push_back(pattern_bytes(region, 100 + w));
  {
    std::vector<std::jthread> threads;
    for (int w = 0; w < writers; ++w) {
      threads.emplace_back([&, w] { f.write(w * region, payloads[w]); });
    }
  }
  for (int w = 0; w < writers; ++w) {
    std::vector<std::byte> out(region);
    f.read(w * region, out);
    EXPECT_EQ(out, payloads[w]) << "writer " << w;
  }
}

// ------------------------------------------------------------ async reads --

TEST(Pfs, IreadDeliversSameBytesAsRead) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(4, 64));
  const auto data = pattern_bytes(5000, 11);
  pfs.write_file("f", data);
  StripedFile f = pfs.open("f");
  std::vector<std::byte> sync_buf(3000), async_buf(3000);
  f.read(1000, sync_buf);
  IoRequest req = f.iread(1000, async_buf);
  req.wait();
  EXPECT_EQ(sync_buf, async_buf);
}

TEST(Pfs, IreadOnSyncOnlyFsIsAlreadyDone) {
  TempDir tmp;
  auto cfg = small_cfg(4, 64);
  cfg.supports_async = false;  // PIOFS semantics
  StripedFileSystem pfs(tmp.path(), cfg);
  pfs.write_file("f", pattern_bytes(2000, 12));
  StripedFile f = pfs.open("f");
  std::vector<std::byte> buf(2000);
  IoRequest req = f.iread(0, buf);
  EXPECT_TRUE(req.done());  // no overlap possible: completed synchronously
  req.wait();
}

TEST(Pfs, ManyOutstandingIreads) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(4, 64));
  const auto data = pattern_bytes(8192, 13);
  pfs.write_file("f", data);
  StripedFile f = pfs.open("f");
  constexpr int kReqs = 16;
  std::vector<std::vector<std::byte>> bufs(kReqs, std::vector<std::byte>(512));
  std::vector<IoRequest> reqs;
  reqs.reserve(kReqs);
  for (int i = 0; i < kReqs; ++i) {
    reqs.push_back(f.iread(static_cast<std::uint64_t>(i) * 512, bufs[i]));
  }
  for (auto& r : reqs) r.wait();
  for (int i = 0; i < kReqs; ++i) {
    EXPECT_TRUE(std::equal(bufs[i].begin(), bufs[i].end(), data.begin() + i * 512));
  }
}

// IoRequest lifecycle regressions: wait() must be safe to call twice, on a
// moved-from handle, and on a default-constructed one (it releases the
// shared state on first return and becomes a no-op).
TEST(Pfs, IoRequestWaitIsIdempotent) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(4, 64));
  const auto data = pattern_bytes(2048, 14);
  pfs.write_file("f", data);
  StripedFile f = pfs.open("f");
  std::vector<std::byte> buf(2048);
  IoRequest req = f.iread(0, buf);
  req.wait();
  EXPECT_NO_THROW(req.wait());  // second consuming wait is a no-op
  EXPECT_TRUE(req.done());
  EXPECT_EQ(req.failed_chunks(), 0u);
  EXPECT_EQ(buf, data);
}

TEST(Pfs, IoRequestWaitAfterMoveIsSafe) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(4, 64));
  const auto data = pattern_bytes(1024, 15);
  pfs.write_file("f", data);
  StripedFile f = pfs.open("f");
  std::vector<std::byte> buf(1024);
  IoRequest req = f.iread(0, buf);
  IoRequest moved = std::move(req);
  EXPECT_NO_THROW(req.wait());  // moved-from: empty handle, no-op
  EXPECT_TRUE(req.done());
  moved.wait();
  EXPECT_NO_THROW(moved.wait());
  EXPECT_EQ(buf, data);
}

TEST(Pfs, DefaultConstructedIoRequestIsDone) {
  IoRequest req;
  EXPECT_TRUE(req.done());
  EXPECT_TRUE(req.wait_for(0.0));
  EXPECT_NO_THROW(req.wait());
  EXPECT_EQ(req.failed_chunks(), 0u);
}

TEST(Pfs, WaitWithTimeoutZeroMeansUnbounded) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(4, 64));
  const auto data = pattern_bytes(4096, 16);
  pfs.write_file("f", data);
  StripedFile f = pfs.open("f");
  std::vector<std::byte> buf(4096);
  IoRequest req = f.iread(0, buf);
  EXPECT_NO_THROW(wait_with_timeout(req, 0.0, "read"));
  EXPECT_EQ(buf, data);
  // Generous (non-firing) timeout on an already-consumed request: no-op.
  EXPECT_NO_THROW(wait_with_timeout(req, 10.0, "read"));
}

TEST(Pfs, EmptyReadIsNoop) {
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(2, 64));
  pfs.write_file("f", pattern_bytes(10, 1));
  StripedFile f = pfs.open("f");
  std::vector<std::byte> empty;
  EXPECT_NO_THROW(f.read(5, empty));
  IoRequest req = f.iread(5, empty);
  EXPECT_TRUE(req.done());
}

TEST(Pfs, ConcurrentExclusiveReaders) {
  // Every node of the first pipeline task reads its exclusive file portion
  // concurrently — the paper's access pattern.
  TempDir tmp;
  StripedFileSystem pfs(tmp.path(), small_cfg(8, 64));
  const std::size_t total = 64 * KiB;
  const auto data = pattern_bytes(total, 17);
  pfs.write_file("cpi", data);
  const int readers = 8;
  const std::size_t share = total / readers;
  std::vector<int> failures(readers, 0);
  {
    std::vector<std::jthread> threads;
    for (int r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        StripedFile f = pfs.open("cpi");
        std::vector<std::byte> buf(share);
        f.read(r * share, buf);
        failures[r] = std::equal(buf.begin(), buf.end(), data.begin() + r * share) ? 0 : 1;
      });
    }
  }
  for (int r = 0; r < readers; ++r) EXPECT_EQ(failures[r], 0) << "reader " << r;
}

// ------------------------------------------------------------- throttling --

TEST(Pfs, ThrottleEnforcesBandwidthFloor) {
  TempDir tmp;
  auto cfg = small_cfg(2, 1024);
  cfg.server_bandwidth = 1.0 * MiB;  // per server
  StripedFileSystem pfs(tmp.path(), cfg);
  const std::size_t n = 256 * KiB;  // 128 KiB per server at 1 MiB/s each
  pfs.write_file("f", pattern_bytes(n, 19));
  StripedFile f = pfs.open("f");
  std::vector<std::byte> buf(n);
  Timer t;
  f.read(0, buf);
  // Ideal: 0.125 s; allow generous scheduling slack but require a clear floor.
  EXPECT_GE(t.elapsed(), 0.08);
}

TEST(Pfs, LargerStripeFactorServicesFaster) {
  // The paper's core I/O mechanism: the same read spread over more stripe
  // directories completes sooner when each server has finite bandwidth.
  const std::size_t n = 512 * KiB;
  const auto data = pattern_bytes(n, 23);
  auto timed_read = [&](std::size_t factor) {
    TempDir tmp;
    auto cfg = small_cfg(factor, 64 * KiB);
    cfg.server_bandwidth = 4.0 * MiB;
    StripedFileSystem pfs(tmp.path(), cfg);
    pfs.write_file("f", data);
    StripedFile f = pfs.open("f");
    std::vector<std::byte> buf(n);
    Timer t;
    f.read(0, buf);
    return t.elapsed();
  };
  const double slow = timed_read(1);
  const double fast = timed_read(8);
  EXPECT_LT(fast * 2.0, slow);  // at least 2x speedup from 8x striping
}

}  // namespace
}  // namespace pstap::pfs
