// Tests for the strided-I/O extensions: gather reads on the striped file
// system, pulse-major CPI file layout, the two-phase collective read, and
// the ThreadRunner paths that use them — all must agree bit-for-bit with
// the range-major direct path.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mp/world.hpp"
#include "pipeline/collective_read.hpp"
#include "pipeline/partition.hpp"
#include "pipeline/thread_runner.hpp"
#include "stap/cube_io.hpp"
#include "stap/scene.hpp"

namespace pstap {
namespace {

namespace fsys = std::filesystem;

class TempRoot {
 public:
  TempRoot() {
    static std::atomic<int> counter{0};
    path_ = fsys::temp_directory_path() /
            ("pstap_cio_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
  }
  ~TempRoot() {
    std::error_code ec;
    fsys::remove_all(path_, ec);
  }
  const fsys::path& path() const { return path_; }

 private:
  fsys::path path_;
};

// ------------------------------------------------------------ gather read --

TEST(GatherRead, SegmentsDeliverSameBytesAsSeparateReads) {
  TempRoot tmp;
  pfs::StripedFileSystem fs(tmp.path(), pfs::paragon_pfs(4));
  Rng rng(1);
  std::vector<std::byte> data(10000);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64());
  fs.write_file("f", data);
  pfs::StripedFile f = fs.open("f");

  std::vector<std::byte> g1(100), g2(333), g3(1);
  std::vector<pfs::StripedFile::IoSegment> segs{
      {5000, g1}, {123, g2}, {9999, g3}};
  pfs::IoRequest req = f.iread_gather(segs);
  req.wait();
  EXPECT_TRUE(std::equal(g1.begin(), g1.end(), data.begin() + 5000));
  EXPECT_TRUE(std::equal(g2.begin(), g2.end(), data.begin() + 123));
  EXPECT_EQ(g3[0], data[9999]);
}

TEST(GatherRead, RejectsSegmentPastEof) {
  TempRoot tmp;
  pfs::StripedFileSystem fs(tmp.path(), pfs::paragon_pfs(2));
  fs.write_file("f", std::vector<std::byte>(100));
  pfs::StripedFile f = fs.open("f");
  std::vector<std::byte> buf(10);
  std::vector<pfs::StripedFile::IoSegment> segs{{95, buf}};
  EXPECT_THROW((void)f.iread_gather(segs), PreconditionError);
}

TEST(GatherRead, EmptySegmentListIsDone) {
  TempRoot tmp;
  pfs::StripedFileSystem fs(tmp.path(), pfs::paragon_pfs(2));
  fs.write_file("f", std::vector<std::byte>(16));
  pfs::StripedFile f = fs.open("f");
  pfs::IoRequest req = f.iread_gather({});
  EXPECT_TRUE(req.done());
}

TEST(GatherRead, SyncOnlyFsCompletesInline) {
  TempRoot tmp;
  pfs::StripedFileSystem fs(tmp.path(), pfs::piofs(2));
  std::vector<std::byte> data(4096);
  fs.write_file("f", data);
  pfs::StripedFile f = fs.open("f");
  std::vector<std::byte> buf(512);
  std::vector<pfs::StripedFile::IoSegment> segs{{0, buf}};
  pfs::IoRequest req = f.iread_gather(segs);
  EXPECT_TRUE(req.done());
}

// ------------------------------------------------------ pulse-major layout --

class LayoutTest : public ::testing::Test {
 protected:
  const stap::RadarParams params = stap::RadarParams::test_small();
  TempRoot tmp;
};

TEST_F(LayoutTest, PulseMajorWholeFileRoundTrip) {
  pfs::StripedFileSystem fs(tmp.path(), pfs::paragon_pfs(4));
  stap::SceneGenerator gen(params, stap::SceneConfig{}, 11);
  const stap::DataCube cube = gen.generate(0);
  stap::write_cpi(fs, "pm", cube, stap::FileLayout::kPulseMajor);
  const stap::DataCube back =
      stap::read_cpi(fs, "pm", params, stap::FileLayout::kPulseMajor);
  EXPECT_TRUE(std::equal(cube.flat().begin(), cube.flat().end(), back.flat().begin()));
}

TEST_F(LayoutTest, PulseMajorSlabEqualsRangeMajorSlab) {
  pfs::StripedFileSystem fs(tmp.path(), pfs::paragon_pfs(4));
  stap::SceneGenerator gen(params, stap::SceneConfig{}, 12);
  const stap::DataCube cube = gen.generate(0);
  stap::write_cpi(fs, "rm", cube, stap::FileLayout::kRangeMajor);
  stap::write_cpi(fs, "pm", cube, stap::FileLayout::kPulseMajor);
  pfs::StripedFile frm = fs.open("rm");
  pfs::StripedFile fpm = fs.open("pm");
  const std::size_t r0 = 17, r1 = 93;
  const auto a = stap::read_cpi_slab(frm, params, r0, r1);
  const auto b =
      stap::read_cpi_slab(fpm, params, r0, r1, stap::FileLayout::kPulseMajor);
  EXPECT_TRUE(std::equal(a.flat().begin(), a.flat().end(), b.flat().begin()));
}

TEST_F(LayoutTest, BothLayoutsHaveSameFileSize) {
  pfs::StripedFileSystem fs(tmp.path(), pfs::paragon_pfs(4));
  stap::SceneGenerator gen(params, stap::SceneConfig{}, 13);
  const stap::DataCube cube = gen.generate(0);
  stap::write_cpi(fs, "rm", cube, stap::FileLayout::kRangeMajor);
  stap::write_cpi(fs, "pm", cube, stap::FileLayout::kPulseMajor);
  EXPECT_EQ(fs.file_size("rm"), fs.file_size("pm"));
  EXPECT_EQ(fs.file_size("rm"), stap::cpi_file_bytes(params));
}

// -------------------------------------------------------- collective read --

class CollectiveReadTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveReadTest, MatchesDirectStridedRead) {
  const int nranks = GetParam();
  const auto params = stap::RadarParams::test_small();
  TempRoot tmp;
  pfs::StripedFileSystem fs(tmp.path(), pfs::paragon_pfs(4));
  stap::SceneGenerator gen(params, stap::SceneConfig{}, 31);
  const stap::DataCube cube = gen.generate(0);
  stap::write_cpi(fs, "pm", cube, stap::FileLayout::kPulseMajor);

  std::vector<int> failures(static_cast<std::size_t>(nranks), -1);
  mp::World world(nranks);
  world.run([&](mp::Comm& comm) {
    pfs::StripedFile file = fs.open("pm");
    const stap::DataCube mine =
        pipeline::collective_read_slab(comm, file, params);
    const pipeline::BlockPartition part(params.ranges,
                                        static_cast<std::size_t>(comm.size()));
    const std::size_t r0 = part.begin(static_cast<std::size_t>(comm.rank()));
    const std::size_t r1 = part.end(static_cast<std::size_t>(comm.rank()));
    int bad = 0;
    for (std::size_t c = 0; c < params.channels; ++c)
      for (std::size_t p = 0; p < params.pulses; ++p)
        for (std::size_t r = r0; r < r1; ++r)
          bad += mine.at(c, p, r - r0) != cube.at(c, p, r);
    failures[static_cast<std::size_t>(comm.rank())] = bad;
  });
  for (int r = 0; r < nranks; ++r) {
    EXPECT_EQ(failures[static_cast<std::size_t>(r)], 0) << "rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollectiveReadTest, ::testing::Values(1, 2, 3, 4, 7));

// --------------------------------------------------- pipeline integration --

class PipelineLayoutTest : public ::testing::Test {
 protected:
  pipeline::RunOptions options(const fsys::path& root) const {
    pipeline::RunOptions opt;
    opt.cpis = 3;
    opt.warmup = 1;
    opt.seed = 77;
    opt.fs_root = root;
    opt.scene.cnr_db = 40.0;
    opt.scene.targets = {{40, 8.0, 0.0, 18.0}, {90, 1.0, -0.35, 25.0}};
    return opt;
  }
  using DetKey = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, std::uint32_t>;
  static std::set<DetKey> keys(const std::vector<stap::Detection>& dets) {
    std::set<DetKey> out;
    for (const auto& d : dets) out.insert({d.cpi, d.bin, d.beam, d.range});
    return out;
  }
  TempRoot tmp_a, tmp_b, tmp_c;
};

TEST_F(PipelineLayoutTest, PulseMajorDirectAndCollectiveMatchRangeMajor) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, options(tmp_a.path()));
  const auto base = baseline.run();

  auto opt_pm = options(tmp_b.path());
  opt_pm.file_layout = stap::FileLayout::kPulseMajor;
  pipeline::ThreadRunner direct(spec, opt_pm);
  const auto strided = direct.run();

  auto opt_cio = options(tmp_c.path());
  opt_cio.file_layout = stap::FileLayout::kPulseMajor;
  opt_cio.collective_io = true;
  pipeline::ThreadRunner collective(spec, opt_cio);
  const auto twophase = collective.run();

  EXPECT_EQ(keys(base.detections), keys(strided.detections));
  EXPECT_EQ(keys(base.detections), keys(twophase.detections));
  EXPECT_FALSE(base.detections.empty());
}

TEST_F(PipelineLayoutTest, RejectsUnsupportedCombinations) {
  const auto p = stap::RadarParams::test_small();
  auto opt = options(tmp_a.path());
  opt.file_layout = stap::FileLayout::kPulseMajor;
  const auto separate = pipeline::PipelineSpec::separate_io(p, {1, 2, 1, 1, 1, 1, 1, 1});
  EXPECT_THROW(pipeline::ThreadRunner(separate, opt), PreconditionError);

  auto opt2 = options(tmp_b.path());
  opt2.collective_io = true;  // without pulse-major layout
  const auto embedded = pipeline::PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  EXPECT_THROW(pipeline::ThreadRunner(embedded, opt2), PreconditionError);
}

}  // namespace
}  // namespace pstap
