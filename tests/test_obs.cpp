// Tests for the observability layer: histogram bucket/percentile/merge
// math and JSON round-trips, Chrome trace JSON export (well-formedness and
// span nesting under concurrent emitters), the one-load disabled fast path
// (no allocations), the always-on flight ring (wraparound, crash-dump on
// supervisor abort), RunReport export (schema round-trip, Table-3 ordering
// from report data alone, report_diff.py attribution), IoEngine
// queue-depth distributions, and the functional runner's PSTAP_TRACE
// acceptance: spans for every task phase of every CPI plus an instant
// event for every injected fault.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "pfs/striped_file_system.hpp"
#include "pipeline/task_spec.hpp"
#include "pipeline/thread_runner.hpp"
#include "sim/machine.hpp"
#include "sim/sim_runner.hpp"

// ------------------------------------------------- allocation counting --
// Global operator new instrumented with a thread-local counter so the
// disabled-tracing fast path can be proven allocation-free. This test
// binary only; counts this thread's allocations, so other threads (none
// during that test) cannot perturb it.

namespace {
thread_local std::int64_t t_alloc_count = 0;
}  // namespace

// GCC pairs call sites against the replacement operators and warns that
// malloc-backed new is freed with free(); the pairing here is exactly
// new->malloc / delete->free, so the warning is a false positive.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// Nothrow variants must be replaced too: stable_sort's temporary buffer
// allocates nothrow, and mixing the runtime's nothrow new with the
// malloc-backed delete below trips ASan's alloc-dealloc-mismatch check.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++t_alloc_count;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pstap {
namespace {

namespace fsys = std::filesystem;

// ------------------------------------------------------ mini JSON parser --
// Small recursive-descent parser: enough JSON to load a Chrome trace and
// fail loudly on malformed output. Throws std::runtime_error on any error.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.contains(key); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + what);
  }
  void ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (consume("true")) {
      Json v;
      v.type = Json::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume("false")) {
      Json v;
      v.type = Json::Type::kBool;
      return v;
    }
    if (consume("null")) return {};
    return number();
  }

  Json object() {
    Json v;
    v.type = Json::Type::kObject;
    expect('{');
    ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      ws();
      Json key = string();
      ws();
      expect(':');
      v.object.emplace(std::move(key.str), value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.type = Json::Type::kArray;
    expect('[');
    ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string() {
    Json v;
    v.type = Json::Type::kString;
    expect('"');
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.str.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'n': v.str.push_back('\n'); break;
        case 't': v.str.push_back('\t'); break;
        case 'r': v.str.push_back('\r'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16));
          pos_ += 4;
          // Control characters only in our exporter; keep the low byte.
          v.str.push_back(static_cast<char>(code & 0x7f));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.type = Json::Type::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json parse_trace_file(const fsys::path& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return JsonParser(buf.str()).parse();
}

// ---------------------------------------------------------- Histogram --

TEST(Histogram, BucketIndexMatchesBounds) {
  for (const std::size_t i : {0u, 1u, 5u, 17u, 63u, 126u}) {
    const double lo = obs::Histogram::bucket_lower_bound(i);
    const double hi = obs::Histogram::bucket_lower_bound(i + 1);
    EXPECT_LT(lo, hi);
    // A value strictly inside the bucket maps back to the bucket.
    EXPECT_EQ(obs::Histogram::bucket_index(std::sqrt(lo * hi)), i) << i;
  }
  // Values at/below the floor clamp into bucket 0; huge values into the top.
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1e300), obs::Histogram::kBuckets - 1);
}

TEST(Histogram, CountSumExtremaAndQuantiles) {
  obs::Histogram h;
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    h.record(i * 1e-3);  // 1ms .. 1000ms
    sum += i * 1e-3;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), sum, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  // Bucket resolution is sqrt(2): estimates within that factor of truth.
  const double kRatio = std::sqrt(2.0);
  EXPECT_GE(h.p50(), 0.5 / kRatio);
  EXPECT_LE(h.p50(), 0.5 * kRatio);
  EXPECT_GE(h.p95(), 0.95 / kRatio);
  EXPECT_LE(h.p95(), 0.95 * kRatio);
  EXPECT_GE(h.p99(), 0.99 / kRatio);
  EXPECT_LE(h.p99(), 1.0);  // clamped to the observed max
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
}

TEST(Histogram, MergeIsLossless) {
  obs::Histogram a, b, all;
  for (int i = 1; i <= 500; ++i) {
    a.record(i * 1e-6);
    all.record(i * 1e-6);
  }
  for (int i = 1; i <= 300; ++i) {
    b.record(i * 1e-2);
    all.record(i * 1e-2);
  }
  obs::Histogram merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.sum(), all.sum(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(merged.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(merged.p95(), all.p95());
  // Copy construction snapshots.
  const obs::Histogram copy = merged;
  EXPECT_EQ(copy.count(), merged.count());
  EXPECT_DOUBLE_EQ(copy.p50(), merged.p50());
}

TEST(Histogram, EmptyIsAllZero) {
  const obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(Registry, ReferencesAreStableAndReportRenders) {
  auto& c = obs::Registry::global().counter("test.registry.counter");
  auto& c2 = obs::Registry::global().counter("test.registry.counter");
  EXPECT_EQ(&c, &c2);
  c.add(3);
  auto& g = obs::Registry::global().gauge("test.registry.gauge");
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 5);
  obs::Registry::global().histogram("test.registry.hist").record(1.0);
  const std::string report = obs::Registry::global().report();
  EXPECT_NE(report.find("test.registry.counter"), std::string::npos);
  EXPECT_NE(report.find("test.registry.hist"), std::string::npos);
}

// -------------------------------------------------------------- tracing --

TEST(Trace, ChromeJsonWellFormedAndSpansNestUnderConcurrency) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();
  constexpr int kThreads = 4;
  constexpr int kOuter = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kOuter; ++i) {
        obs::ScopedSpan outer("test", "outer", /*pid=*/t, nullptr, i);
        {
          obs::ScopedSpan inner("test", "inner", t, nullptr, i);
          obs::TraceRecorder::global().instant("test", "mark", t, i);
        }
        obs::ScopedSpan inner2("test", "inner2", t, nullptr, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  rec.disable();

  std::ostringstream out;
  rec.write_chrome_json(out);
  const Json doc = JsonParser(out.str()).parse();  // throws if malformed
  const auto& events = doc.at("traceEvents").array;
  EXPECT_GE(events.size(), static_cast<std::size_t>(kThreads * kOuter * 3));

  // Spans grouped per (pid, tid) must nest: sorted by ts, each span either
  // starts after the previous ends or closes before it does.
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>> spans;
  int outers = 0;
  for (const Json& e : events) {
    const std::string ph = e.at("ph").str;
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C" || ph == "M") << ph;
    if (ph != "X") continue;
    const double ts = e.at("ts").number;
    const double dur = e.at("dur").number;
    EXPECT_GE(dur, 0.0);
    spans[{static_cast<int>(e.at("pid").number),
           static_cast<int>(e.at("tid").number)}]
        .emplace_back(ts, ts + dur);
    if (e.at("name").str == "outer") ++outers;
  }
  EXPECT_EQ(outers, kThreads * kOuter);
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads));
  const double kEps = 0.002;  // exporter rounds to 1/1000 us
  for (const auto& [key, list] : spans) {
    auto sorted = list;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::pair<double, double>> stack;
    for (const auto& [lo, hi] : sorted) {
      while (!stack.empty() && stack.back().second <= lo + kEps) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(hi, stack.back().second + kEps)
            << "span [" << lo << "," << hi << ") straddles its parent";
      }
      stack.emplace_back(lo, hi);
    }
  }
}

TEST(Trace, DisabledEmitPathDoesNotAllocate) {
  ASSERT_FALSE(obs::trace_enabled());
  auto& rec = obs::TraceRecorder::global();
  // Warm up any lazily-created state, then measure.
  rec.instant("test", "warm", 1);
  const std::int64_t before = t_alloc_count;
  for (int i = 0; i < 256; ++i) {
    rec.instant("test", "x", 1);
    rec.counter("test", "c", 1, 2.0);
    rec.complete("test", "s", 1, 0, 10);
    obs::ScopedSpan span("test", "s", 1);
  }
  EXPECT_EQ(t_alloc_count, before) << "disabled tracing must not allocate";
}

TEST(Trace, SessionHonorsEnvAndNestedSessionsArePassive) {
  const fsys::path path =
      fsys::temp_directory_path() /
      ("pstap_obs_env_" + std::to_string(::getpid()) + ".trace.json");
  ::setenv("PSTAP_TRACE", path.string().c_str(), 1);
  {
    obs::TraceSession session;  // picks the path up from the environment
    EXPECT_TRUE(session.active());
    EXPECT_TRUE(obs::trace_enabled());
    {
      obs::TraceSession nested;  // an active outer session owns the trace
      EXPECT_FALSE(nested.active());
    }
    EXPECT_TRUE(obs::trace_enabled()) << "nested session must not disable";
    obs::TraceRecorder::global().instant("test", "env", 1);
  }
  ::unsetenv("PSTAP_TRACE");
  EXPECT_FALSE(obs::trace_enabled());
  const Json doc = parse_trace_file(path);
  bool found = false;
  for (const Json& e : doc.at("traceEvents").array) {
    found |= e.at("name").str == "env";
  }
  EXPECT_TRUE(found);
  fsys::remove(path);
}

TEST(Trace, SessionWithoutPathOrEnvIsPassive) {
  ::unsetenv("PSTAP_TRACE");
  obs::TraceSession session;
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(obs::trace_enabled());
}

// ----------------------------------------------------- IoEngine metrics --

struct DepthProbe {
  double p95 = 0;
  double max = 0;
  std::uint64_t samples = 0;
};

DepthProbe probe_queue_depth(std::size_t stripe_factor) {
  const fsys::path root =
      fsys::temp_directory_path() /
      ("pstap_obs_depth_" + std::to_string(::getpid()) + "_sf" +
       std::to_string(stripe_factor));
  fsys::remove_all(root);
  pfs::PfsConfig cfg = pfs::paragon_pfs(stripe_factor);
  cfg.server_latency = 200e-6;  // finite service so submits pile up
  DepthProbe probe;
  {
    pfs::StripedFileSystem fs(root, cfg);
    constexpr std::size_t kChunks = 64;
    std::vector<std::byte> data(kChunks * cfg.stripe_unit);
    fs.write_file("depth", data);
    pfs::StripedFile file = fs.open("depth");
    for (int rep = 0; rep < 2; ++rep) file.read(0, data);
    probe.p95 = fs.engine().queue_depth().quantile(0.95);
    probe.max = fs.engine().queue_depth().max();
    probe.samples = fs.engine().queue_depth().count();
    EXPECT_GT(fs.engine().service_time().count(), 0u);
    EXPECT_GT(fs.engine().submit_latency().count(), 0u);
  }
  fsys::remove_all(root);
  return probe;
}

TEST(IoEngineObs, SmallStripeFactorDeepensQueues) {
  // The same 64-chunk logical reads against 4 vs 16 stripe directories:
  // fewer queues must mean deeper queues — the paper's funnel, observed in
  // the engine's own distribution rather than inferred from throughput.
  const DepthProbe sf4 = probe_queue_depth(4);
  const DepthProbe sf16 = probe_queue_depth(16);
  EXPECT_EQ(sf4.samples, sf16.samples) << "identical submit pattern expected";
  EXPECT_GT(sf4.max, sf16.max);
  EXPECT_GT(sf4.p95, sf16.p95);
}

// --------------------------------------- functional runner acceptance --

TEST(ThreadRunnerTrace, SpansForEveryPhaseAndInstantsForEveryFault) {
  const fsys::path root =
      fsys::temp_directory_path() /
      ("pstap_obs_runner_" + std::to_string(::getpid()));
  const fsys::path trace_path = root / "pipeline.trace.json";
  fsys::remove_all(root);
  fsys::create_directories(root);

  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  pipeline::RunOptions opt;
  opt.cpis = 3;
  opt.warmup = 1;
  opt.seed = 11;
  opt.fs_root = root / "fs";
  opt.io_retry.max_attempts = 10;
  opt.io_retry.initial_backoff = 1e-4;

  // Arm faults on the stage boundaries and the server read path; every
  // decision that fires must surface as an instant event in the trace.
  auto plan = std::make_shared<fault::FaultPlan>(5);
  plan->arm_delay("pipeline.stage", 0.3, 1e-4, 3e-4);
  plan->arm_transient_error("pfs.server.read", 0.05);
  opt.fault_plan = plan;

  // Exercise the environment-variable path the acceptance criteria name.
  ::setenv("PSTAP_TRACE", trace_path.string().c_str(), 1);
  pipeline::ThreadRunner runner(spec, opt);
  const pipeline::RunResult result = runner.run();
  ::unsetenv("PSTAP_TRACE");

  EXPECT_EQ(result.metrics.dropped_cpis, 0);
  const Json doc = parse_trace_file(trace_path);  // throws if malformed

  // (rank, cpi) -> set of phase names seen; plus fault instant count.
  std::map<std::pair<int, int>, std::set<std::string>> phases;
  std::uint64_t fault_instants = 0;
  for (const Json& e : doc.at("traceEvents").array) {
    const std::string ph = e.at("ph").str;
    if (ph == "i" && e.at("cat").str == "fault") ++fault_instants;
    if (ph != "X" || e.at("cat").str != "pipeline") continue;
    const std::string& name = e.at("name").str;
    if (name != "receive" && name != "compute" && name != "send") continue;
    ASSERT_TRUE(e.at("args").has("cpi")) << name;
    phases[{static_cast<int>(e.at("pid").number),
            static_cast<int>(e.at("args").at("cpi").number)}]
        .insert(name);
  }

  const int total = spec.total_nodes();
  for (int rank = 0; rank < total; ++rank) {
    for (int cpi = 0; cpi < opt.cpis; ++cpi) {
      const auto it = phases.find({rank, cpi});
      ASSERT_NE(it, phases.end()) << "rank " << rank << " cpi " << cpi;
      EXPECT_EQ(it->second.size(), 3u)
          << "rank " << rank << " cpi " << cpi << " missing a phase span";
    }
  }

  const std::uint64_t injected = plan->injected_delays() +
                                 plan->injected_errors() +
                                 plan->injected_partials();
  EXPECT_GT(injected, 0u) << "fault plan never fired; weaken probabilities?";
  EXPECT_EQ(fault_instants, injected);

  // Phase histograms surfaced per task and the run's I/O stats block.
  for (const auto& t : result.metrics.tasks) {
    const auto timed =
        static_cast<std::uint64_t>((opt.cpis - opt.warmup) * t.nodes);
    EXPECT_EQ(t.receive_hist.count(), timed) << pipeline::task_name(t.kind);
    EXPECT_EQ(t.compute_hist.count(), timed) << pipeline::task_name(t.kind);
    EXPECT_EQ(t.send_hist.count(), timed) << pipeline::task_name(t.kind);
  }
  EXPECT_GT(result.metrics.io.queue_depth.count(), 0u);
  EXPECT_GT(result.metrics.io.service_time.count(), 0u);
  EXPECT_GT(result.metrics.io.bytes_serviced, 0u);
  EXPECT_EQ(result.metrics.io.injected_delays, plan->injected_delays());
  EXPECT_EQ(result.metrics.io.injected_errors, plan->injected_errors());

  fsys::remove_all(root);
}

// --------------------------------------------------------- flight ring --

TEST(FlightRing, WraparoundKeepsNewestEventsAndTruncatesNames) {
  auto& fr = obs::FlightRecorder::global();
  fr.clear();
  constexpr std::int64_t kTotal =
      static_cast<std::int64_t>(obs::FlightRecorder::kRingEvents) + 500;
  const std::string long_name(obs::FlightRecorder::kNameLen + 16, 'n');
  for (std::int64_t i = 0; i < kTotal; ++i) {
    fr.record_instant("frw", long_name, /*pid=*/7, /*ts_ns=*/i, /*cpi=*/i);
  }
  std::int64_t min_cpi = kTotal, max_cpi = -1;
  std::size_t ours = 0;
  for (const auto& e : fr.global().snapshot()) {
    if (e.cat != "frw") continue;  // other tests' threads may have rings
    ++ours;
    EXPECT_EQ(e.kind, obs::FlightRecorder::Kind::kInstant);
    EXPECT_EQ(e.pid, 7);
    EXPECT_EQ(e.name.size(), obs::FlightRecorder::kNameLen - 1)
        << "names must truncate into the fixed slot";
    min_cpi = std::min(min_cpi, e.cpi);
    max_cpi = std::max(max_cpi, e.cpi);
  }
  // Exactly one ring's worth survives: the newest kRingEvents, oldest
  // evicted in place.
  EXPECT_EQ(ours, obs::FlightRecorder::kRingEvents);
  EXPECT_EQ(max_cpi, kTotal - 1);
  EXPECT_EQ(min_cpi, kTotal - static_cast<std::int64_t>(ours));

  // The ring dump is valid JSON with the reason and schema marker.
  std::ostringstream out;
  fr.write_ring_json(out, "unit \"test\" reason");
  const Json doc = JsonParser(out.str()).parse();
  EXPECT_EQ(doc.at("schema_version").number, 1.0);
  EXPECT_EQ(doc.at("kind").str, "flight_ring");
  EXPECT_EQ(doc.at("reason").str, "unit \"test\" reason");
  EXPECT_GE(doc.at("events").array.size(), ours);
  fr.clear();
}

TEST(FlightRing, SupervisorAbortDumpsRingAndTraceStaysValid) {
  const fsys::path root =
      fsys::temp_directory_path() /
      ("pstap_obs_crash_" + std::to_string(::getpid()));
  const fsys::path trace_path = root / "aborted.trace.json";
  fsys::remove_all(root);
  fsys::create_directories(root);

  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});
  pipeline::RunOptions opt;
  opt.cpis = 4;
  opt.warmup = 1;
  opt.seed = 77;
  opt.fs_root = root / "fs";
  opt.trace_path = trace_path;
  opt.supervise.enabled = true;
  opt.supervise.heartbeat_interval = 2e-3;
  opt.supervise.max_respawns = 0;  // first crash exhausts the budget -> abort
  opt.fault_plan = std::make_shared<fault::FaultPlan>(41);
  opt.fault_plan->arm_crash("pipeline.rank.3", /*at_index=*/2);

  pipeline::ThreadRunner runner(spec, opt);
  EXPECT_THROW(runner.run(), RuntimeError);

  // The acceptance criterion: an aborted run still leaves a valid Chrome
  // trace at the session path plus a last-N-events ring dump next to it.
  const Json trace = parse_trace_file(trace_path);  // throws if malformed
  EXPECT_FALSE(trace.at("traceEvents").array.empty());

  const Json ring = parse_trace_file(fsys::path(trace_path) += ".crash");
  EXPECT_EQ(ring.at("schema_version").number, 1.0);
  EXPECT_EQ(ring.at("kind").str, "flight_ring");
  EXPECT_NE(ring.at("reason").str.find("abort"), std::string::npos)
      << ring.at("reason").str;
  EXPECT_FALSE(ring.at("events").array.empty());
  // The ring's breadcrumbs include the supervisor's own abort marker even
  // though tracing routed spans through the trace buffers.
  bool saw_abort_event = false;
  for (const Json& e : ring.at("events").array) {
    saw_abort_event |= e.at("name").str == "supervisor.abort";
  }
  EXPECT_TRUE(saw_abort_event);

  fsys::remove_all(root);
}

// ------------------------------------------------------ histogram JSON --

TEST(HistogramJson, RoundTripIsLossless) {
  obs::Histogram h;
  for (int i = 1; i <= 400; ++i) h.record(i * 3.7e-5);
  h.record(12.5);
  const obs::Histogram back = obs::Histogram::from_json(h.to_json());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_DOUBLE_EQ(back.sum(), h.sum());
  EXPECT_DOUBLE_EQ(back.min(), h.min());
  EXPECT_DOUBLE_EQ(back.max(), h.max());
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(back.bucket_count(i), h.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(back.p50(), h.p50());
  EXPECT_DOUBLE_EQ(back.p95(), h.p95());
  EXPECT_DOUBLE_EQ(back.p99(), h.p99());

  const obs::Histogram empty_back = obs::Histogram::from_json(
      obs::Histogram{}.to_json());
  EXPECT_EQ(empty_back.count(), 0u);

  // Inconsistent documents are rejected, not silently absorbed.
  EXPECT_THROW(obs::Histogram::from_json("{\"count\":3,\"sum\":1.0,"
                                         "\"min\":0.1,\"max\":0.5,"
                                         "\"buckets\":[[4,1]]}"),
               std::runtime_error);
  EXPECT_THROW(obs::Histogram::from_json("not json"), std::runtime_error);
}

TEST(RegistrySnapshotTest, HistogramsConsistentUnderConcurrentRecord) {
  auto& h = obs::Registry::global().histogram("test.snapshot.race");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&h, &stop, t] {
      double v = 1e-6 * (t + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(v);
        v = v * 1.37 + 1e-7;
        if (v > 1.0) v = 1e-6 * (t + 1);
      }
    });
  }
  for (int iter = 0; iter < 200; ++iter) {
    const obs::RegistrySnapshot snap = obs::Registry::global().snapshot();
    for (const auto& [name, hist] : snap.histograms) {
      std::uint64_t bucket_total = 0;
      for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
        bucket_total += hist.bucket_count(i);
      }
      ASSERT_EQ(hist.count(), bucket_total)
          << name << ": torn snapshot at iteration " << iter;
      if (hist.count() > 0) {
        ASSERT_LE(hist.min(), hist.max()) << name;
        ASSERT_LE(hist.p50(), hist.p99()) << name;
      }
    }
  }
  stop = true;
  for (auto& w : writers) w.join();
}

// ------------------------------------------------------------ RunReport --

TEST(RunReportTest, SchemaRoundTripAndTable3OrderingFromReportData) {
  const fsys::path path =
      fsys::temp_directory_path() /
      ("pstap_obs_report_" + std::to_string(::getpid()) + ".json");
  fsys::remove(path);
  {
    obs::ReportSession session(path);
    ASSERT_TRUE(session.active());
    const stap::RadarParams p;  // paper-scale cube; sim costs are analytic
    const auto machine = sim::paragon_like(16);
    const auto split =
        pipeline::PipelineSpec::embedded_io(p, {8, 2, 6, 4, 10, 6, 4});
    const auto merged = pipeline::PipelineSpec::combined(p, {8, 2, 6, 4, 10, 10});
    (void)sim::SimRunner(split, machine).run();
    (void)sim::SimRunner(merged, machine).run();
  }
  ASSERT_FALSE(obs::report_enabled());

  const Json doc = parse_trace_file(path);  // throws if malformed
  EXPECT_EQ(doc.at("schema_version").number, obs::kReportSchemaVersion);
  EXPECT_EQ(doc.at("generator").str, "pstap");
  const auto& reports = doc.at("reports").array;
  ASSERT_EQ(reports.size(), 2u);

  double split_latency = 0, combined_latency = 0;
  std::set<std::string> labels;
  for (const Json& r : reports) {
    labels.insert(r.at("label").str);
    EXPECT_EQ(r.at("kind").str, "sim");
    EXPECT_EQ(r.at("config").at("machine").str, "paragon-pfs16");
    EXPECT_EQ(r.at("geometry").at("channels").number,
              static_cast<double>(stap::RadarParams{}.channels));
    ASSERT_FALSE(r.at("tasks").array.empty());
    for (const Json& t : r.at("tasks").array) {
      for (const Json& ph : t.at("phases").array) {
        // Every phase histogram is schema-complete, bucket dump included.
        const Json& hist = ph.at("hist");
        EXPECT_TRUE(hist.has("count") && hist.has("buckets") &&
                    hist.has("p95"))
            << t.at("name").str << "/" << ph.at("name").str;
      }
    }
    const double latency = r.at("totals").at("latency_s").number;
    EXPECT_GT(latency, 0.0);
    if (r.at("config").at("combined_pc_cfar").boolean) {
      combined_latency = latency;
    } else {
      split_latency = latency;
    }
  }
  EXPECT_EQ(labels.size(), 2u) << "diff keys must be unique";
  // Table 3's headline, reproduced from the report document alone:
  // combining PC and CFAR (same total nodes) cuts pipeline latency.
  EXPECT_GT(split_latency, 0.0);
  EXPECT_GT(combined_latency, 0.0);
  EXPECT_LT(combined_latency, split_latency);
  fsys::remove(path);
}

// ------------------------------------------------------- report_diff.py --

obs::RunReport synthetic_report(double compute_scale) {
  obs::RunReport r;
  r.label = "synthetic pipeline";
  r.kind = "sim";
  r.config.io_strategy = "embedded";
  r.config.total_nodes = 2;
  r.totals.throughput_cpis_per_s = 10.0 / compute_scale;
  r.totals.latency_s = 0.5 + 0.5 * compute_scale;
  obs::RunReport::Task fast;
  fast.name = "stage_fast";
  fast.nodes = 1;
  obs::RunReport::Task slow;
  slow.name = "stage_slow";
  slow.nodes = 1;
  for (const char* phase : {"receive", "compute", "send"}) {
    obs::RunReport::Phase pf;
    pf.name = phase;
    pf.mean_s = 0.1;
    for (int i = 0; i < 32; ++i) pf.hist.record(0.1);
    fast.phases.push_back(pf);
    obs::RunReport::Phase ps = pf;
    if (ps.name == "compute") {
      ps.mean_s = 0.1 * compute_scale;
      ps.hist = obs::Histogram{};
      for (int i = 0; i < 32; ++i) ps.hist.record(0.1 * compute_scale);
    }
    slow.phases.push_back(ps);
  }
  r.tasks = {fast, slow};
  return r;
}

TEST(ReportDiff, AttributesSyntheticSlowdownToTheSlowedStage) {
  if (std::system("python3 -c pass >/dev/null 2>&1") != 0) {
    GTEST_SKIP() << "python3 unavailable";
  }
  const fsys::path dir =
      fsys::temp_directory_path() /
      ("pstap_obs_diff_" + std::to_string(::getpid()));
  fsys::remove_all(dir);
  fsys::create_directories(dir);
  const fsys::path base_path = dir / "base.json";
  const fsys::path cur_path = dir / "cur.json";
  const fsys::path out_path = dir / "out.txt";

  const std::vector<obs::RunReport> base{synthetic_report(1.0)};
  const std::vector<obs::RunReport> cur{synthetic_report(2.0)};  // 2x compute
  obs::write_report_document(base_path, base);
  obs::write_report_document(cur_path, cur);

  const std::string script =
      (fsys::path(PSTAP_SCRIPTS_DIR) / "report_diff.py").string();
  const std::string validate_cmd = "python3 '" + script + "' --validate '" +
                                   base_path.string() + "' '" +
                                   cur_path.string() + "' >/dev/null 2>&1";
  EXPECT_EQ(WEXITSTATUS(std::system(validate_cmd.c_str())), 0)
      << "synthetic reports must satisfy the published schema";

  const std::string diff_cmd = "python3 '" + script + "' '" +
                               base_path.string() + "' '" + cur_path.string() +
                               "' >'" + out_path.string() + "' 2>&1";
  const int rc = WEXITSTATUS(std::system(diff_cmd.c_str()));
  std::ifstream in(out_path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string out = buf.str();

  EXPECT_EQ(rc, 1) << out;  // regression above threshold -> exit 1
  EXPECT_NE(out.find("REGRESSION"), std::string::npos) << out;
  const auto slow_at = out.find("stage_slow");
  const auto fast_at = out.find("stage_fast");
  ASSERT_NE(slow_at, std::string::npos) << out;
  // Attribution ranks by |delta|: the slowed stage leads any mention of
  // the unchanged one, and its compute tail is called out.
  if (fast_at != std::string::npos) {
    EXPECT_LT(slow_at, fast_at) << out;
  }
  EXPECT_NE(out.find("compute p95"), std::string::npos) << out;

  fsys::remove_all(dir);
}

}  // namespace
}  // namespace pstap
