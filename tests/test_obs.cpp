// Tests for the observability layer: histogram bucket/percentile/merge
// math, Chrome trace JSON export (well-formedness and span nesting under
// concurrent emitters), the one-load disabled fast path (no allocations),
// IoEngine queue-depth distributions, and the functional runner's
// PSTAP_TRACE acceptance: spans for every task phase of every CPI plus an
// instant event for every injected fault.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pfs/striped_file_system.hpp"
#include "pipeline/task_spec.hpp"
#include "pipeline/thread_runner.hpp"

// ------------------------------------------------- allocation counting --
// Global operator new instrumented with a thread-local counter so the
// disabled-tracing fast path can be proven allocation-free. This test
// binary only; counts this thread's allocations, so other threads (none
// during that test) cannot perturb it.

namespace {
thread_local std::int64_t t_alloc_count = 0;
}  // namespace

// GCC pairs call sites against the replacement operators and warns that
// malloc-backed new is freed with free(); the pairing here is exactly
// new->malloc / delete->free, so the warning is a false positive.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pstap {
namespace {

namespace fsys = std::filesystem;

// ------------------------------------------------------ mini JSON parser --
// Small recursive-descent parser: enough JSON to load a Chrome trace and
// fail loudly on malformed output. Throws std::runtime_error on any error.

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  const Json& at(const std::string& key) const {
    const auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.contains(key); }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse() {
    Json v = value();
    ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("JSON error at byte " + std::to_string(pos_) +
                             ": " + what);
  }
  void ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Json value() {
    ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (consume("true")) {
      Json v;
      v.type = Json::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consume("false")) {
      Json v;
      v.type = Json::Type::kBool;
      return v;
    }
    if (consume("null")) return {};
    return number();
  }

  Json object() {
    Json v;
    v.type = Json::Type::kObject;
    expect('{');
    ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      ws();
      Json key = string();
      ws();
      expect(':');
      v.object.emplace(std::move(key.str), value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json array() {
    Json v;
    v.type = Json::Type::kArray;
    expect('[');
    ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  Json string() {
    Json v;
    v.type = Json::Type::kString;
    expect('"');
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.str.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'n': v.str.push_back('\n'); break;
        case 't': v.str.push_back('\t'); break;
        case 'r': v.str.push_back('\r'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          const unsigned code = static_cast<unsigned>(
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16));
          pos_ += 4;
          // Control characters only in our exporter; keep the low byte.
          v.str.push_back(static_cast<char>(code & 0x7f));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    Json v;
    v.type = Json::Type::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json parse_trace_file(const fsys::path& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return JsonParser(buf.str()).parse();
}

// ---------------------------------------------------------- Histogram --

TEST(Histogram, BucketIndexMatchesBounds) {
  for (const std::size_t i : {0u, 1u, 5u, 17u, 63u, 126u}) {
    const double lo = obs::Histogram::bucket_lower_bound(i);
    const double hi = obs::Histogram::bucket_lower_bound(i + 1);
    EXPECT_LT(lo, hi);
    // A value strictly inside the bucket maps back to the bucket.
    EXPECT_EQ(obs::Histogram::bucket_index(std::sqrt(lo * hi)), i) << i;
  }
  // Values at/below the floor clamp into bucket 0; huge values into the top.
  EXPECT_EQ(obs::Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(-3.0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1e300), obs::Histogram::kBuckets - 1);
}

TEST(Histogram, CountSumExtremaAndQuantiles) {
  obs::Histogram h;
  double sum = 0;
  for (int i = 1; i <= 1000; ++i) {
    h.record(i * 1e-3);  // 1ms .. 1000ms
    sum += i * 1e-3;
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.sum(), sum, 1e-9);
  EXPECT_DOUBLE_EQ(h.min(), 1e-3);
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
  // Bucket resolution is sqrt(2): estimates within that factor of truth.
  const double kRatio = std::sqrt(2.0);
  EXPECT_GE(h.p50(), 0.5 / kRatio);
  EXPECT_LE(h.p50(), 0.5 * kRatio);
  EXPECT_GE(h.p95(), 0.95 / kRatio);
  EXPECT_LE(h.p95(), 0.95 * kRatio);
  EXPECT_GE(h.p99(), 0.99 / kRatio);
  EXPECT_LE(h.p99(), 1.0);  // clamped to the observed max
  EXPECT_GE(h.quantile(1.0), h.quantile(0.0));
}

TEST(Histogram, MergeIsLossless) {
  obs::Histogram a, b, all;
  for (int i = 1; i <= 500; ++i) {
    a.record(i * 1e-6);
    all.record(i * 1e-6);
  }
  for (int i = 1; i <= 300; ++i) {
    b.record(i * 1e-2);
    all.record(i * 1e-2);
  }
  obs::Histogram merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.sum(), all.sum(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    EXPECT_EQ(merged.bucket_count(i), all.bucket_count(i)) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(merged.p95(), all.p95());
  // Copy construction snapshots.
  const obs::Histogram copy = merged;
  EXPECT_EQ(copy.count(), merged.count());
  EXPECT_DOUBLE_EQ(copy.p50(), merged.p50());
}

TEST(Histogram, EmptyIsAllZero) {
  const obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(Registry, ReferencesAreStableAndReportRenders) {
  auto& c = obs::Registry::global().counter("test.registry.counter");
  auto& c2 = obs::Registry::global().counter("test.registry.counter");
  EXPECT_EQ(&c, &c2);
  c.add(3);
  auto& g = obs::Registry::global().gauge("test.registry.gauge");
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.peak(), 5);
  obs::Registry::global().histogram("test.registry.hist").record(1.0);
  const std::string report = obs::Registry::global().report();
  EXPECT_NE(report.find("test.registry.counter"), std::string::npos);
  EXPECT_NE(report.find("test.registry.hist"), std::string::npos);
}

// -------------------------------------------------------------- tracing --

TEST(Trace, ChromeJsonWellFormedAndSpansNestUnderConcurrency) {
  auto& rec = obs::TraceRecorder::global();
  rec.clear();
  rec.enable();
  constexpr int kThreads = 4;
  constexpr int kOuter = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kOuter; ++i) {
        obs::ScopedSpan outer("test", "outer", /*pid=*/t, nullptr, i);
        {
          obs::ScopedSpan inner("test", "inner", t, nullptr, i);
          obs::TraceRecorder::global().instant("test", "mark", t, i);
        }
        obs::ScopedSpan inner2("test", "inner2", t, nullptr, i);
      }
    });
  }
  for (auto& th : threads) th.join();
  rec.disable();

  std::ostringstream out;
  rec.write_chrome_json(out);
  const Json doc = JsonParser(out.str()).parse();  // throws if malformed
  const auto& events = doc.at("traceEvents").array;
  EXPECT_GE(events.size(), static_cast<std::size_t>(kThreads * kOuter * 3));

  // Spans grouped per (pid, tid) must nest: sorted by ts, each span either
  // starts after the previous ends or closes before it does.
  std::map<std::pair<int, int>, std::vector<std::pair<double, double>>> spans;
  int outers = 0;
  for (const Json& e : events) {
    const std::string ph = e.at("ph").str;
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C" || ph == "M") << ph;
    if (ph != "X") continue;
    const double ts = e.at("ts").number;
    const double dur = e.at("dur").number;
    EXPECT_GE(dur, 0.0);
    spans[{static_cast<int>(e.at("pid").number),
           static_cast<int>(e.at("tid").number)}]
        .emplace_back(ts, ts + dur);
    if (e.at("name").str == "outer") ++outers;
  }
  EXPECT_EQ(outers, kThreads * kOuter);
  EXPECT_EQ(spans.size(), static_cast<std::size_t>(kThreads));
  const double kEps = 0.002;  // exporter rounds to 1/1000 us
  for (const auto& [key, list] : spans) {
    auto sorted = list;
    std::sort(sorted.begin(), sorted.end());
    std::vector<std::pair<double, double>> stack;
    for (const auto& [lo, hi] : sorted) {
      while (!stack.empty() && stack.back().second <= lo + kEps) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(hi, stack.back().second + kEps)
            << "span [" << lo << "," << hi << ") straddles its parent";
      }
      stack.emplace_back(lo, hi);
    }
  }
}

TEST(Trace, DisabledEmitPathDoesNotAllocate) {
  ASSERT_FALSE(obs::trace_enabled());
  auto& rec = obs::TraceRecorder::global();
  // Warm up any lazily-created state, then measure.
  rec.instant("test", "warm", 1);
  const std::int64_t before = t_alloc_count;
  for (int i = 0; i < 256; ++i) {
    rec.instant("test", "x", 1);
    rec.counter("test", "c", 1, 2.0);
    rec.complete("test", "s", 1, 0, 10);
    obs::ScopedSpan span("test", "s", 1);
  }
  EXPECT_EQ(t_alloc_count, before) << "disabled tracing must not allocate";
}

TEST(Trace, SessionHonorsEnvAndNestedSessionsArePassive) {
  const fsys::path path =
      fsys::temp_directory_path() /
      ("pstap_obs_env_" + std::to_string(::getpid()) + ".trace.json");
  ::setenv("PSTAP_TRACE", path.string().c_str(), 1);
  {
    obs::TraceSession session;  // picks the path up from the environment
    EXPECT_TRUE(session.active());
    EXPECT_TRUE(obs::trace_enabled());
    {
      obs::TraceSession nested;  // an active outer session owns the trace
      EXPECT_FALSE(nested.active());
    }
    EXPECT_TRUE(obs::trace_enabled()) << "nested session must not disable";
    obs::TraceRecorder::global().instant("test", "env", 1);
  }
  ::unsetenv("PSTAP_TRACE");
  EXPECT_FALSE(obs::trace_enabled());
  const Json doc = parse_trace_file(path);
  bool found = false;
  for (const Json& e : doc.at("traceEvents").array) {
    found |= e.at("name").str == "env";
  }
  EXPECT_TRUE(found);
  fsys::remove(path);
}

TEST(Trace, SessionWithoutPathOrEnvIsPassive) {
  ::unsetenv("PSTAP_TRACE");
  obs::TraceSession session;
  EXPECT_FALSE(session.active());
  EXPECT_FALSE(obs::trace_enabled());
}

// ----------------------------------------------------- IoEngine metrics --

struct DepthProbe {
  double p95 = 0;
  double max = 0;
  std::uint64_t samples = 0;
};

DepthProbe probe_queue_depth(std::size_t stripe_factor) {
  const fsys::path root =
      fsys::temp_directory_path() /
      ("pstap_obs_depth_" + std::to_string(::getpid()) + "_sf" +
       std::to_string(stripe_factor));
  fsys::remove_all(root);
  pfs::PfsConfig cfg = pfs::paragon_pfs(stripe_factor);
  cfg.server_latency = 200e-6;  // finite service so submits pile up
  DepthProbe probe;
  {
    pfs::StripedFileSystem fs(root, cfg);
    constexpr std::size_t kChunks = 64;
    std::vector<std::byte> data(kChunks * cfg.stripe_unit);
    fs.write_file("depth", data);
    pfs::StripedFile file = fs.open("depth");
    for (int rep = 0; rep < 2; ++rep) file.read(0, data);
    probe.p95 = fs.engine().queue_depth().quantile(0.95);
    probe.max = fs.engine().queue_depth().max();
    probe.samples = fs.engine().queue_depth().count();
    EXPECT_GT(fs.engine().service_time().count(), 0u);
    EXPECT_GT(fs.engine().submit_latency().count(), 0u);
  }
  fsys::remove_all(root);
  return probe;
}

TEST(IoEngineObs, SmallStripeFactorDeepensQueues) {
  // The same 64-chunk logical reads against 4 vs 16 stripe directories:
  // fewer queues must mean deeper queues — the paper's funnel, observed in
  // the engine's own distribution rather than inferred from throughput.
  const DepthProbe sf4 = probe_queue_depth(4);
  const DepthProbe sf16 = probe_queue_depth(16);
  EXPECT_EQ(sf4.samples, sf16.samples) << "identical submit pattern expected";
  EXPECT_GT(sf4.max, sf16.max);
  EXPECT_GT(sf4.p95, sf16.p95);
}

// --------------------------------------- functional runner acceptance --

TEST(ThreadRunnerTrace, SpansForEveryPhaseAndInstantsForEveryFault) {
  const fsys::path root =
      fsys::temp_directory_path() /
      ("pstap_obs_runner_" + std::to_string(::getpid()));
  const fsys::path trace_path = root / "pipeline.trace.json";
  fsys::remove_all(root);
  fsys::create_directories(root);

  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});
  pipeline::RunOptions opt;
  opt.cpis = 3;
  opt.warmup = 1;
  opt.seed = 11;
  opt.fs_root = root / "fs";
  opt.io_retry.max_attempts = 10;
  opt.io_retry.initial_backoff = 1e-4;

  // Arm faults on the stage boundaries and the server read path; every
  // decision that fires must surface as an instant event in the trace.
  auto plan = std::make_shared<fault::FaultPlan>(5);
  plan->arm_delay("pipeline.stage", 0.3, 1e-4, 3e-4);
  plan->arm_transient_error("pfs.server.read", 0.05);
  opt.fault_plan = plan;

  // Exercise the environment-variable path the acceptance criteria name.
  ::setenv("PSTAP_TRACE", trace_path.string().c_str(), 1);
  pipeline::ThreadRunner runner(spec, opt);
  const pipeline::RunResult result = runner.run();
  ::unsetenv("PSTAP_TRACE");

  EXPECT_EQ(result.metrics.dropped_cpis, 0);
  const Json doc = parse_trace_file(trace_path);  // throws if malformed

  // (rank, cpi) -> set of phase names seen; plus fault instant count.
  std::map<std::pair<int, int>, std::set<std::string>> phases;
  std::uint64_t fault_instants = 0;
  for (const Json& e : doc.at("traceEvents").array) {
    const std::string ph = e.at("ph").str;
    if (ph == "i" && e.at("cat").str == "fault") ++fault_instants;
    if (ph != "X" || e.at("cat").str != "pipeline") continue;
    const std::string& name = e.at("name").str;
    if (name != "receive" && name != "compute" && name != "send") continue;
    ASSERT_TRUE(e.at("args").has("cpi")) << name;
    phases[{static_cast<int>(e.at("pid").number),
            static_cast<int>(e.at("args").at("cpi").number)}]
        .insert(name);
  }

  const int total = spec.total_nodes();
  for (int rank = 0; rank < total; ++rank) {
    for (int cpi = 0; cpi < opt.cpis; ++cpi) {
      const auto it = phases.find({rank, cpi});
      ASSERT_NE(it, phases.end()) << "rank " << rank << " cpi " << cpi;
      EXPECT_EQ(it->second.size(), 3u)
          << "rank " << rank << " cpi " << cpi << " missing a phase span";
    }
  }

  const std::uint64_t injected = plan->injected_delays() +
                                 plan->injected_errors() +
                                 plan->injected_partials();
  EXPECT_GT(injected, 0u) << "fault plan never fired; weaken probabilities?";
  EXPECT_EQ(fault_instants, injected);

  // Phase histograms surfaced per task and the run's I/O stats block.
  for (const auto& t : result.metrics.tasks) {
    const auto timed =
        static_cast<std::uint64_t>((opt.cpis - opt.warmup) * t.nodes);
    EXPECT_EQ(t.receive_hist.count(), timed) << pipeline::task_name(t.kind);
    EXPECT_EQ(t.compute_hist.count(), timed) << pipeline::task_name(t.kind);
    EXPECT_EQ(t.send_hist.count(), timed) << pipeline::task_name(t.kind);
  }
  EXPECT_GT(result.metrics.io.queue_depth.count(), 0u);
  EXPECT_GT(result.metrics.io.service_time.count(), 0u);
  EXPECT_GT(result.metrics.io.bytes_serviced, 0u);
  EXPECT_EQ(result.metrics.io.injected_delays, plan->injected_delays());
  EXPECT_EQ(result.metrics.io.injected_errors, plan->injected_errors());

  fsys::remove_all(root);
}

}  // namespace
}  // namespace pstap
