// Tests for the striped-file detection log: round trips, empty blocks,
// persistence across remounts, corruption detection.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"
#include "stap/detection_log.hpp"

namespace pstap::stap {
namespace {

namespace fsys = std::filesystem;

class DetectionLogTest : public ::testing::Test {
 protected:
  DetectionLogTest() {
    static std::atomic<int> counter{0};
    root_ = fsys::temp_directory_path() /
            ("pstap_detlog_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs_ = std::make_unique<pfs::StripedFileSystem>(root_, pfs::paragon_pfs(4));
  }
  ~DetectionLogTest() override {
    fs_.reset();
    std::error_code ec;
    fsys::remove_all(root_, ec);
  }

  static Detection make(std::uint64_t cpi, std::uint32_t bin, std::uint32_t beam,
                        std::uint32_t range, float power) {
    Detection d;
    d.cpi = cpi;
    d.bin = bin;
    d.beam = beam;
    d.range = range;
    d.power = power;
    d.threshold = power / 2;
    return d;
  }

  fsys::path root_;
  std::unique_ptr<pfs::StripedFileSystem> fs_;
};

TEST_F(DetectionLogTest, RoundTripMultipleBlocks) {
  {
    DetectionLogWriter writer(*fs_, "log");
    writer.append(0, std::vector<Detection>{make(0, 1, 0, 40, 10.f),
                                            make(0, 2, 1, 90, 20.f)});
    writer.append(1, std::vector<Detection>{make(1, 3, 0, 44, 30.f)});
    EXPECT_EQ(writer.blocks(), 2u);
  }
  DetectionLogReader reader(*fs_, "log");
  const auto blocks = reader.read_all();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].cpi, 0u);
  ASSERT_EQ(blocks[0].detections.size(), 2u);
  EXPECT_EQ(blocks[0].detections[1].range, 90u);
  EXPECT_FLOAT_EQ(blocks[0].detections[1].power, 20.f);
  EXPECT_EQ(blocks[1].cpi, 1u);
  ASSERT_EQ(blocks[1].detections.size(), 1u);
  EXPECT_EQ(blocks[1].detections[0].bin, 3u);
}

TEST_F(DetectionLogTest, EmptyBlocksAreValid) {
  {
    DetectionLogWriter writer(*fs_, "log");
    writer.append(7, {});
    writer.append(8, std::vector<Detection>{make(8, 1, 0, 10, 5.f)});
  }
  DetectionLogReader reader(*fs_, "log");
  const auto blocks = reader.read_all();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0].cpi, 7u);
  EXPECT_TRUE(blocks[0].detections.empty());
  EXPECT_EQ(blocks[1].detections.size(), 1u);
}

TEST_F(DetectionLogTest, EmptyLogReadsNothing) {
  { DetectionLogWriter writer(*fs_, "log"); }
  DetectionLogReader reader(*fs_, "log");
  DetectionBlock block;
  EXPECT_FALSE(reader.next(block));
}

TEST_F(DetectionLogTest, SurvivesRemount) {
  {
    DetectionLogWriter writer(*fs_, "log");
    writer.append(3, std::vector<Detection>{make(3, 5, 1, 77, 9.f)});
  }
  fs_.reset();
  fs_ = std::make_unique<pfs::StripedFileSystem>(root_, pfs::paragon_pfs(4));
  DetectionLogReader reader(*fs_, "log");
  const auto blocks = reader.read_all();
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].detections[0].range, 77u);
}

TEST_F(DetectionLogTest, CorruptMagicIsRejected) {
  {
    DetectionLogWriter writer(*fs_, "log");
    writer.append(0, std::vector<Detection>{make(0, 1, 0, 40, 10.f)});
  }
  // Stomp the magic.
  pfs::StripedFile f = fs_->open("log");
  const std::vector<std::byte> junk(8, std::byte{0xAA});
  f.write(0, junk);
  DetectionLogReader reader(*fs_, "log");
  DetectionBlock block;
  EXPECT_THROW(reader.next(block), IoError);
}

TEST_F(DetectionLogTest, TruncatedBlockIsRejected) {
  {
    DetectionLogWriter writer(*fs_, "log");
    writer.append(0, std::vector<Detection>{make(0, 1, 0, 40, 10.f)});
  }
  // Rewrite the count to claim more records than the file holds.
  pfs::StripedFile f = fs_->open("log");
  const std::uint64_t huge = 1000;
  f.write(16, std::as_bytes(std::span<const std::uint64_t>(&huge, 1)));
  DetectionLogReader reader(*fs_, "log");
  DetectionBlock block;
  EXPECT_THROW(reader.next(block), IoError);
}

}  // namespace
}  // namespace pstap::stap
