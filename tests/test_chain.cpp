// Tests for stap::StapChain: equivalence with the hand-wired kernel
// sequence, temporal-weight semantics, reset, and detection quality.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/error.hpp"
#include "stap/chain.hpp"
#include "stap/scene.hpp"

namespace pstap::stap {
namespace {

using DetKey = std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>;

std::set<DetKey> keys(const std::vector<Detection>& dets) {
  std::set<DetKey> out;
  for (const auto& d : dets) out.insert({d.bin, d.beam, d.range});
  return out;
}

SceneConfig two_target_scene() {
  SceneConfig scene;
  scene.cnr_db = 40.0;
  scene.targets = {{40, 8.0, 0.0, 18.0}, {90, 1.0, -0.35, 25.0}};
  return scene;
}

TEST(StapChainTest, SecondPushMatchesManualKernelSequence) {
  const RadarParams p = RadarParams::test_small();
  SceneGenerator gen(p, two_target_scene(), 21);
  const DataCube cube0 = gen.generate(0);
  const DataCube cube1 = gen.generate(1);

  StapChain chain(p);
  (void)chain.push(cube0);
  const auto chained = chain.push(cube1);

  // Manual: weights from cube0, detect on cube1.
  DopplerFilter filt(p);
  const auto prev = filt.process(cube0);
  const auto cur = filt.process(cube1);
  WeightComputer wce(p, prev.easy_bin_ids, p.easy_dof());
  WeightComputer wch(p, prev.hard_bin_ids, p.hard_dof());
  Beamformer bf(p);
  auto ye = bf.apply(cur.easy, wce.compute(prev.easy));
  auto yh = bf.apply(cur.hard, wch.compute(prev.hard));
  PulseCompressor pc(p);
  pc.compress(ye);
  pc.compress(yh);
  CfarDetector cfar(p);
  auto manual = cfar.detect(ye, cur.easy_bin_ids);
  const auto hard = cfar.detect(yh, cur.hard_bin_ids);
  manual.insert(manual.end(), hard.begin(), hard.end());

  EXPECT_EQ(keys(chained), keys(manual));
  EXPECT_FALSE(chained.empty());
}

TEST(StapChainTest, CpiCounterAndFieldAdvance) {
  const RadarParams p = RadarParams::test_small();
  SceneGenerator gen(p, two_target_scene(), 3);
  StapChain chain(p);
  EXPECT_EQ(chain.cpis_processed(), 0u);
  const auto d0 = chain.push(gen.generate(0));
  const auto d1 = chain.push(gen.generate(1));
  EXPECT_EQ(chain.cpis_processed(), 2u);
  for (const auto& d : d0) EXPECT_EQ(d.cpi, 0u);
  for (const auto& d : d1) EXPECT_EQ(d.cpi, 1u);
}

TEST(StapChainTest, ResetRestoresConventionalWeights) {
  const RadarParams p = RadarParams::test_small();
  SceneGenerator gen(p, two_target_scene(), 5);
  const DataCube cube = gen.generate(0);

  StapChain chain(p);
  const auto first = chain.push(cube);
  (void)chain.push(gen.generate(1));
  chain.reset();
  EXPECT_EQ(chain.cpis_processed(), 0u);
  const auto after_reset = chain.push(cube);
  EXPECT_EQ(keys(first), keys(after_reset));
}

TEST(StapChainTest, AdaptiveCpiFindsBothTargets) {
  const RadarParams p = RadarParams::test_small();
  SceneGenerator gen(p, two_target_scene(), 21);
  StapChain chain(p);
  (void)chain.push(gen.generate(0));
  const auto dets = chain.push(gen.generate(1));
  bool easy = false, hard = false;
  for (const auto& d : dets) {
    if (d.bin == 8 && std::abs(int(d.range) - 40) <= 1) easy = true;
    if (d.bin == 1 && std::abs(int(d.range) - 90) <= 1) hard = true;
  }
  EXPECT_TRUE(easy);
  EXPECT_TRUE(hard);
}

TEST(StapChainTest, RejectsMismatchedCube) {
  const RadarParams p = RadarParams::test_small();
  StapChain chain(p);
  DataCube wrong(p.channels + 1, p.pulses, p.ranges);
  EXPECT_THROW(chain.push(wrong), PreconditionError);
}

TEST(StapChainTest, MovingTargetTracksAcrossCpis) {
  const RadarParams p = RadarParams::test_small();
  SceneConfig scene = two_target_scene();
  scene.targets[0].range_rate = 4.0;  // easy target drifts 4 gates/CPI
  SceneGenerator gen(p, scene, 9);
  StapChain chain(p);
  (void)chain.push(gen.generate(0));
  for (std::uint64_t cpi = 1; cpi < 4; ++cpi) {
    const auto dets = chain.push(gen.generate(cpi));
    const std::size_t expect_range = gen.target_range_at(0, cpi);
    bool tracked = false;
    for (const auto& d : dets) {
      if (d.bin == 8 &&
          std::abs(int(d.range) - int(expect_range)) <= 1) {
        tracked = true;
      }
    }
    EXPECT_TRUE(tracked) << "cpi " << cpi << " expected range " << expect_range;
  }
}

}  // namespace
}  // namespace pstap::stap
