// Regression tests for the paper's qualitative claims, via SimRunner at the
// evaluation's node cases (25/50/100). These mirror the shape checks the
// bench executables print, but as hard assertions so `ctest` catches a
// model change that silently breaks the reproduced effects:
//
//  * a small stripe factor (PFS sf=16) stops scaling by 100 nodes, while
//    sf=64 keeps scaling and clearly wins at 100 nodes (paper Table 1/2);
//  * the separate-I/O organization (strategy B) adds a forwarding hop, so
//    its latency exceeds embedded I/O's (strategy A) at every case;
//  * combining PC+CFAR into one task removes an inter-task transfer, so
//    the combined pipeline's latency beats the split one's (paper §5.3).
//
// The helpers replicate bench/experiment_config.hpp (tests do not include
// bench/ headers).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pipeline/task_spec.hpp"
#include "sim/machine.hpp"
#include "sim/sim_runner.hpp"
#include "stap/radar_params.hpp"

namespace pstap {
namespace {

stap::RadarParams paper_params() { return stap::RadarParams{}; }

const std::vector<int>& node_cases() {
  static const std::vector<int> cases{25, 50, 100};
  return cases;
}

int io_nodes_for_case(int total) { return std::max(4, total / 6); }

pipeline::PipelineSpec embedded_spec(int total) {
  return pipeline::proportional_assignment(paper_params(), total,
                                           pipeline::IoStrategy::kEmbedded, false);
}

pipeline::PipelineSpec separate_spec(int total) {
  return pipeline::proportional_assignment(paper_params(), total,
                                           pipeline::IoStrategy::kSeparateTask, false,
                                           io_nodes_for_case(total));
}

pipeline::PipelineSpec combined_spec(int total) {
  const auto split = embedded_spec(total);
  std::vector<int> nodes;
  for (std::size_t i = 0; i + 2 < split.tasks.size(); ++i) {
    nodes.push_back(split.tasks[i].nodes);
  }
  nodes.push_back(split.tasks[split.tasks.size() - 2].nodes +
                  split.tasks.back().nodes);
  return pipeline::PipelineSpec::combined(paper_params(), nodes);
}

sim::SimResult simulate(const pipeline::PipelineSpec& spec,
                        const sim::MachineModel& machine) {
  return sim::SimRunner(spec, machine).run();
}

TEST(PaperShapes, SmallStripeFactorStopsScalingAtHundredNodes) {
  std::vector<double> t16, t64;
  for (const int nodes : node_cases()) {
    t16.push_back(simulate(embedded_spec(nodes), sim::paragon_like(16)).measured_throughput);
    t64.push_back(simulate(embedded_spec(nodes), sim::paragon_like(64)).measured_throughput);
  }
  // sf=16: healthy 25->50 scaling, then the 16 I/O servers saturate — the
  // 50->100 doubling buys little.
  EXPECT_GT(t16[1], 1.6 * t16[0]);
  EXPECT_LT(t16[2], 1.5 * t16[1]);
  // sf=64: both doublings keep scaling.
  EXPECT_GT(t64[1], 1.7 * t64[0]);
  EXPECT_GT(t64[2], 1.7 * t64[1]);
  // At 100 nodes the larger stripe factor clearly wins.
  EXPECT_GT(t64[2], 1.2 * t16[2]);
}

TEST(PaperShapes, SeparateIoLatencyExceedsEmbedded) {
  for (const int nodes : node_cases()) {
    const auto embedded = simulate(embedded_spec(nodes), sim::paragon_like(64));
    const auto separate = simulate(separate_spec(nodes), sim::paragon_like(64));
    EXPECT_GT(separate.measured_latency, embedded.measured_latency)
        << nodes << " nodes";
  }
}

TEST(PaperShapes, CombinedTaskLatencyBeatsSplit) {
  for (const int nodes : node_cases()) {
    const auto split = simulate(embedded_spec(nodes), sim::paragon_like(64));
    const auto combined = simulate(combined_spec(nodes), sim::paragon_like(64));
    EXPECT_LT(combined.measured_latency, split.measured_latency)
        << nodes << " nodes";
  }
}

TEST(PaperShapes, SynchronousPiofsReadsHurtThroughput) {
  // The SP's PIOFS has no asynchronous read API: the same spec on an
  // otherwise identical machine with async_io disabled cannot overlap the
  // read with compute/communication, so throughput drops.
  for (const int nodes : node_cases()) {
    auto machine = sim::sp_like(80);
    machine.async_io = true;
    const auto overlapped = simulate(embedded_spec(nodes), machine);
    machine.async_io = false;
    const auto synchronous = simulate(embedded_spec(nodes), machine);
    EXPECT_LT(synchronous.measured_throughput, overlapped.measured_throughput)
        << nodes << " nodes";
  }
}

TEST(PaperShapes, StragglerServerGatesSmallStripeReads) {
  // One 4x-slow stripe directory: with 16 servers the straggler's share is
  // 1/16 of the chunks but the read completes when *it* does, so the
  // throughput at 100 nodes (I/O bound for sf=16) drops noticeably. The
  // same straggler in a 64-server system carries 4x less data, so the hit
  // is milder in absolute terms.
  auto straggler16 = sim::paragon_like(16);
  straggler16.straggler_servers = 1;
  straggler16.straggler_slowdown = 4.0;
  const auto clean16 = simulate(embedded_spec(100), sim::paragon_like(16));
  const auto slow16 = simulate(embedded_spec(100), straggler16);
  EXPECT_LT(slow16.measured_throughput, clean16.measured_throughput);

  auto straggler64 = sim::paragon_like(64);
  straggler64.straggler_servers = 1;
  straggler64.straggler_slowdown = 4.0;
  const auto clean64 = simulate(embedded_spec(100), sim::paragon_like(64));
  const auto slow64 = simulate(embedded_spec(100), straggler64);
  EXPECT_LE(slow64.measured_throughput, clean64.measured_throughput);

  // Relative degradation: the small-stripe system loses at least as much.
  const double deg16 = slow16.measured_throughput / clean16.measured_throughput;
  const double deg64 = slow64.measured_throughput / clean64.measured_throughput;
  EXPECT_LE(deg16, deg64 + 1e-9);
}

}  // namespace
}  // namespace pstap
