// Tests for the deterministic fault-injection layer and the robustness it
// drives: FaultPlan scheduling, retry-with-backoff, per-request timeouts,
// and the ThreadRunner's graceful degradation (a permanently failed read
// drops the CPI instead of wedging the pipeline).
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/retry.hpp"
#include "mp/world.hpp"
#include "pfs/striped_file_system.hpp"
#include "pipeline/task_spec.hpp"
#include "pipeline/thread_runner.hpp"
#include "stap/cube_io.hpp"
#include "stap/scene.hpp"

namespace pstap {
namespace {

namespace fsys = std::filesystem;

// -------------------------------------------------------------- FaultPlan --

std::vector<fault::Decision> draw(fault::FaultPlan& plan, const std::string& site,
                                  int n) {
  std::vector<fault::Decision> out;
  for (int i = 0; i < n; ++i) out.push_back(plan.next(site));
  return out;
}

TEST(FaultPlan, SameSeedSameSchedule) {
  fault::FaultPlan a(42), b(42);
  for (auto* plan : {&a, &b}) {
    plan->arm_delay("io.read", 0.5, 1e-3, 5e-3);
    plan->arm_transient_error("io.read", 0.25);
  }
  const auto da = draw(a, "io.read.sd000", 200);
  const auto db = draw(b, "io.read.sd000", 200);
  int faulted = 0;
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(da[i].fail, db[i].fail) << "occurrence " << i;
    EXPECT_DOUBLE_EQ(da[i].delay, db[i].delay) << "occurrence " << i;
    faulted += da[i].faulted() ? 1 : 0;
  }
  EXPECT_GT(faulted, 0);
  EXPECT_LT(faulted, 200);
}

TEST(FaultPlan, DifferentSeedGivesDifferentSchedule) {
  fault::FaultPlan a(1), b(2);
  for (auto* plan : {&a, &b}) plan->arm_transient_error("io", 0.5);
  const auto da = draw(a, "io", 128);
  const auto db = draw(b, "io", 128);
  bool any_diff = false;
  for (int i = 0; i < 128; ++i) any_diff |= da[i].fail != db[i].fail;
  EXPECT_TRUE(any_diff);
}

TEST(FaultPlan, PrefixMatchesOnDotBoundariesOnly) {
  fault::FaultPlan plan(7);
  plan.arm_transient_error("a.b", 1.0);
  EXPECT_TRUE(plan.next("a.b").fail);
  EXPECT_TRUE(plan.next("a.b.c").fail);
  EXPECT_FALSE(plan.next("a.bc").fail);
  EXPECT_FALSE(plan.next("a").fail);
}

TEST(FaultPlan, TransientErrorsRespectMaxHits) {
  fault::FaultPlan plan(7);
  plan.arm_transient_error("io", 1.0, /*max_hits=*/2);
  EXPECT_TRUE(plan.next("io").fail);
  EXPECT_TRUE(plan.next("io").fail);
  EXPECT_FALSE(plan.next("io").fail);
  EXPECT_EQ(plan.injected_errors(), 2u);
}

TEST(FaultPlan, PermanentErrorFiresFromFirstOccurrence) {
  fault::FaultPlan plan(7);
  plan.arm_permanent_error("io", /*first_occurrence=*/2);
  EXPECT_FALSE(plan.next("io").fail);
  EXPECT_FALSE(plan.next("io").fail);
  for (int i = 0; i < 4; ++i) {
    const auto d = plan.next("io");
    EXPECT_TRUE(d.fail);
    EXPECT_TRUE(d.permanent);
  }
}

TEST(FaultPlan, CountsOccurrencesPerExactSite) {
  fault::FaultPlan plan(7);
  (void)plan.next("x.y");
  (void)plan.next("x.y");
  (void)plan.next("x.z");
  EXPECT_EQ(plan.occurrences("x.y"), 2u);
  EXPECT_EQ(plan.occurrences("x.z"), 1u);
  EXPECT_EQ(plan.occurrences("x"), 0u);  // exact string, not prefix
}

TEST(FaultPlan, ArmingValidatesArguments) {
  fault::FaultPlan plan(7);
  EXPECT_THROW(plan.arm_delay("s", 2.0, 0, 1e-3), PreconditionError);
  EXPECT_THROW(plan.arm_delay("s", 0.5, 1e-3, 0.0), PreconditionError);
  EXPECT_THROW(plan.arm_transient_error("s", -0.1), PreconditionError);
  EXPECT_THROW(plan.arm_partial_read("s", 0.5, 1.0), PreconditionError);
  EXPECT_THROW(plan.arm_partial_read("s", 0.5, 0.0), PreconditionError);
}

TEST(FaultScope, InstallsAndRestoresThePlan) {
  EXPECT_EQ(fault::current_plan(), nullptr);
  auto outer = std::make_shared<fault::FaultPlan>(1);
  {
    fault::FaultScope a(outer);
    EXPECT_EQ(fault::current_plan(), outer);
    auto inner = std::make_shared<fault::FaultPlan>(2);
    {
      fault::FaultScope b(inner);
      EXPECT_EQ(fault::current_plan(), inner);
    }
    EXPECT_EQ(fault::current_plan(), outer);
  }
  EXPECT_EQ(fault::current_plan(), nullptr);
}

TEST(Inject, NoPlanIsANoop) {
  EXPECT_EQ(fault::current_plan(), nullptr);
  const auto d = fault::inject("anything.at.all");
  EXPECT_FALSE(d.faulted());
  fault::inject_delay_only("anything.at.all");
}

TEST(Inject, ThrowsInjectedErrorAtArmedSite) {
  auto plan = std::make_shared<fault::FaultPlan>(9);
  plan->arm_permanent_error("dead");
  fault::FaultScope scope(plan);
  try {
    fault::inject("dead");
    FAIL() << "expected InjectedError";
  } catch (const fault::InjectedError& e) {
    EXPECT_TRUE(e.permanent());
  }
  fault::inject_delay_only("dead");  // delay-only variant swallows failures
}

// ------------------------------------------------------------- with_retry --

TEST(Retry, RetriesTransientFaultsUntilSuccess) {
  auto plan = std::make_shared<fault::FaultPlan>(3);
  plan->arm_transient_error("op.flaky", 1.0, /*max_hits=*/2);
  fault::FaultScope scope(plan);
  RetryPolicy pol;
  pol.max_attempts = 5;
  pol.initial_backoff = 1e-4;
  int calls = 0;
  with_retry(pol, "flaky op", [&] {
    ++calls;
    fault::inject("op.flaky");
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(plan->injected_errors(), 2u);
}

TEST(Retry, PermanentErrorShortCircuits) {
  auto plan = std::make_shared<fault::FaultPlan>(3);
  plan->arm_permanent_error("op.dead");
  fault::FaultScope scope(plan);
  RetryPolicy pol;
  pol.max_attempts = 5;
  pol.initial_backoff = 1e-4;
  int calls = 0;
  EXPECT_THROW(with_retry(pol, "dead op",
                          [&] {
                            ++calls;
                            fault::inject("op.dead");
                          }),
               fault::InjectedError);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, ExhaustedAttemptsRethrowTheLastError) {
  auto plan = std::make_shared<fault::FaultPlan>(3);
  plan->arm_transient_error("op.flaky", 1.0);
  fault::FaultScope scope(plan);
  RetryPolicy pol;
  pol.max_attempts = 3;
  pol.initial_backoff = 1e-4;
  int calls = 0;
  EXPECT_THROW(with_retry(pol, "flaky op",
                          [&] {
                            ++calls;
                            fault::inject("op.flaky");
                          }),
               fault::InjectedError);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, NonIoErrorsPropagateImmediately) {
  RetryPolicy pol;
  pol.max_attempts = 5;
  int calls = 0;
  EXPECT_THROW(with_retry(pol, "logic",
                          [&]() -> void {
                            ++calls;
                            PSTAP_REQUIRE(false, "not an I/O problem");
                          }),
               PreconditionError);
  EXPECT_EQ(calls, 1);
}

// ----------------------------------------------- faults through the stack --

class IoFaultTest : public ::testing::Test {
 protected:
  IoFaultTest() {
    root_ = fsys::temp_directory_path() /
            ("pstap_fault_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~IoFaultTest() override {
    std::error_code ec;
    fsys::remove_all(root_, ec);
  }

  static std::atomic<int> counter_;
  fsys::path root_;
};
std::atomic<int> IoFaultTest::counter_{0};

TEST_F(IoFaultTest, TimeoutFiresOnDelayedServers) {
  pfs::StripedFileSystem sfs(root_, pfs::paragon_pfs(2));
  std::vector<std::byte> data(256 * KiB, std::byte{0x5a});
  sfs.write_file("blob", data);

  auto plan = std::make_shared<fault::FaultPlan>(11);
  plan->arm_delay("pfs.server.read", 1.0, 0.1, 0.1);
  fault::FaultScope scope(plan);

  pfs::StripedFile f = sfs.open("blob");
  std::vector<std::byte> out(data.size());
  pfs::IoRequest req = f.iread(0, out);
  EXPECT_THROW(pfs::wait_with_timeout(req, 0.01, "blob read"), TimeoutError);
  req.wait();  // drained by the timeout path; idempotent afterwards
  EXPECT_GT(plan->injected_delays(), 0u);
}

TEST_F(IoFaultTest, ReadCpiSlabRetriesTransientFaults) {
  const auto p = stap::RadarParams::test_small();
  pfs::StripedFileSystem sfs(root_, pfs::paragon_pfs(4));
  stap::SceneGenerator gen(p, {}, 5);
  const stap::DataCube cube = gen.generate(0);
  stap::write_cpi(sfs, "cpi", cube);

  auto plan = std::make_shared<fault::FaultPlan>(13);
  plan->arm_transient_error("pfs.file.read.cpi", 1.0, /*max_hits=*/2);
  fault::FaultScope scope(plan);

  pfs::StripedFile f = sfs.open("cpi");
  RetryPolicy pol;
  pol.max_attempts = 4;
  pol.initial_backoff = 1e-4;
  const stap::DataCube got =
      stap::read_cpi_slab(f, p, 0, p.ranges, stap::FileLayout::kRangeMajor, pol);
  EXPECT_EQ(plan->injected_errors(), 2u);
  for (std::size_t c = 0; c < p.channels; ++c) {
    const auto want = cube.range_series(c, 0);
    const auto have = got.range_series(c, 0);
    ASSERT_EQ(want.size(), have.size());
    for (std::size_t r = 0; r < want.size(); ++r) {
      EXPECT_EQ(want[r], have[r]) << "channel " << c << " range " << r;
    }
  }
}

TEST_F(IoFaultTest, PartialReadSurfacesAsRetryableError) {
  pfs::StripedFileSystem sfs(root_, pfs::paragon_pfs(1));
  std::vector<std::byte> data(4 * KiB, std::byte{0x7e});
  sfs.write_file("blob", data);

  auto plan = std::make_shared<fault::FaultPlan>(17);
  plan->arm_partial_read("pfs.server.read", 1.0, 0.5, /*max_hits=*/1);
  fault::FaultScope scope(plan);

  pfs::StripedFile f = sfs.open("blob");
  std::vector<std::byte> out(data.size());
  RetryPolicy pol;
  pol.max_attempts = 2;
  pol.initial_backoff = 1e-4;
  with_retry(pol, "blob", [&] { f.read(0, out); });
  EXPECT_EQ(plan->injected_partials(), 1u);
  EXPECT_EQ(out, data);
}

// ------------------------------------------------------- mp runtime faults --

TEST(MpFaults, SendFaultIsCatchableAndResendable) {
  auto plan = std::make_shared<fault::FaultPlan>(19);
  plan->arm_transient_error("mp.send", 1.0, /*max_hits=*/1);
  fault::FaultScope scope(plan);
  mp::World world(2);
  world.run([](mp::Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<int> v{42};
      try {
        comm.send<int>(1, 5, v);
      } catch (const fault::InjectedError&) {
        comm.send<int>(1, 5, v);  // nothing was buffered; plain resend
      }
    } else {
      const auto got = comm.recv_vector<int>(0, 5);
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0], 42);
    }
  });
  EXPECT_EQ(plan->injected_errors(), 1u);
}

// ------------------------------------- pipeline degradation (acceptance) --

using DetKey = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, std::uint32_t>;

std::set<DetKey> keys_of(const std::vector<stap::Detection>& dets, int cpi) {
  std::set<DetKey> keys;
  for (const auto& d : dets) {
    if (d.cpi == static_cast<std::uint64_t>(cpi)) {
      keys.insert({d.cpi, d.bin, d.beam, d.range});
    }
  }
  return keys;
}

class PipelineFaultTest : public ::testing::Test {
 protected:
  PipelineFaultTest() {
    root_ = fsys::temp_directory_path() /
            ("pstap_plfault_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~PipelineFaultTest() override {
    std::error_code ec;
    fsys::remove_all(root_, ec);
  }

  pipeline::RunOptions options(const char* sub) const {
    pipeline::RunOptions opt;
    opt.cpis = 4;
    opt.warmup = 1;
    opt.seed = 77;
    opt.fs_root = root_ / sub;
    opt.scene.cnr_db = 40.0;
    opt.scene.targets = {{40, 8.0, 0.0, 18.0}, {90, 1.0, -0.35, 25.0}};
    return opt;
  }

  static std::atomic<int> counter_;
  fsys::path root_;
};
std::atomic<int> PipelineFaultTest::counter_{0};

// The acceptance scenario: a permanently failed read path. With one
// Doppler node the logical reads are strictly CPI-ordered, so arming the
// permanent failure from occurrence 2 kills the reads of CPIs 2 and 3 (of
// 4): the run must complete, report exactly those CPIs dropped, and leave
// the surviving CPIs' detections identical to a fault-free run.
TEST_F(PipelineFaultTest, PermanentReadFailureDropsCpisAndPreservesTheRest) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, options("baseline"));
  const auto clean = baseline.run();
  EXPECT_EQ(clean.metrics.dropped_cpis, 0);
  EXPECT_TRUE(clean.dropped_cpis.empty());

  auto opt = options("faulted");
  opt.fault_plan = std::make_shared<fault::FaultPlan>(23);
  opt.fault_plan->arm_permanent_error("pfs.file.read", /*first_occurrence=*/2);
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();

  EXPECT_EQ(result.dropped_cpis, (std::vector<int>{2, 3}));
  EXPECT_EQ(result.metrics.dropped_cpis, 2);
  for (const int cpi : {0, 1}) {
    EXPECT_EQ(keys_of(result.detections, cpi), keys_of(clean.detections, cpi))
        << "surviving cpi " << cpi;
  }
  EXPECT_FALSE(keys_of(clean.detections, 1).empty());
  for (const int cpi : {2, 3}) {
    EXPECT_TRUE(keys_of(result.detections, cpi).empty()) << "dropped cpi " << cpi;
  }
}

TEST_F(PipelineFaultTest, SeparateIoReadNodeDegradesTheSameWay) {
  const auto p = stap::RadarParams::test_small();
  const auto spec =
      pipeline::PipelineSpec::separate_io(p, {1, 1, 1, 1, 1, 1, 1, 1});

  auto opt = options("sep");
  opt.fault_plan = std::make_shared<fault::FaultPlan>(29);
  opt.fault_plan->arm_permanent_error("pfs.file.read", /*first_occurrence=*/2);
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();
  EXPECT_EQ(result.dropped_cpis, (std::vector<int>{2, 3}));
  EXPECT_EQ(result.metrics.dropped_cpis, 2);
}

TEST_F(PipelineFaultTest, CollectiveReadDegradesCollectively) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {2, 1, 1, 1, 1, 1, 1});

  auto opt = options("coll");
  opt.file_layout = stap::FileLayout::kPulseMajor;
  opt.collective_io = true;
  opt.fault_plan = std::make_shared<fault::FaultPlan>(31);
  // Both Doppler ranks read each CPI's file (2 logical reads per CPI, in
  // unspecified order); killing the site from occurrence 4 fails both
  // phase-1 reads of CPIs 2 and 3. The degraded flag is allreduced, so
  // every rank agrees and the whole CPI is dropped.
  opt.fault_plan->arm_permanent_error("pfs.file.read", /*first_occurrence=*/4);
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();
  EXPECT_EQ(result.dropped_cpis, (std::vector<int>{2, 3}));
  EXPECT_EQ(result.metrics.dropped_cpis, 2);
}

TEST_F(PipelineFaultTest, TransientFaultsAreRetriedToAFaultFreeResult) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, options("tbase"));
  const auto clean = baseline.run();

  auto opt = options("tflaky");
  opt.fault_plan = std::make_shared<fault::FaultPlan>(37);
  opt.fault_plan->arm_transient_error("pfs.file.read", 1.0, /*max_hits=*/3);
  opt.io_retry.max_attempts = 4;
  opt.io_retry.initial_backoff = 1e-4;
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();

  EXPECT_EQ(opt.fault_plan->injected_errors(), 3u);
  EXPECT_TRUE(result.dropped_cpis.empty());
  EXPECT_EQ(result.metrics.dropped_cpis, 0);
  for (int cpi = 0; cpi < 4; ++cpi) {
    EXPECT_EQ(keys_of(result.detections, cpi), keys_of(clean.detections, cpi))
        << "cpi " << cpi;
  }
}

TEST_F(PipelineFaultTest, StageBoundaryDelaysAreAppliedWithoutHarm) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});

  auto opt = options("stage");
  opt.fault_plan = std::make_shared<fault::FaultPlan>(41);
  opt.fault_plan->arm_delay("pipeline.stage.Doppler filter", 1.0, 1e-3, 2e-3);
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();

  EXPECT_EQ(opt.fault_plan->occurrences("pipeline.stage.Doppler filter"),
            static_cast<std::uint64_t>(opt.cpis));
  EXPECT_GT(opt.fault_plan->injected_delays(), 0u);
  EXPECT_TRUE(result.dropped_cpis.empty());
  EXPECT_FALSE(keys_of(result.detections, 1).empty());
}

}  // namespace
}  // namespace pstap
