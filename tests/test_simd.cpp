// Backend-equivalence tests for the runtime-dispatched SIMD kernels.
//
// Every vector backend must reproduce the scalar reference: bit-exactly for
// the FMA-free primitives (scale, deinterleave_scale, interleave,
// norm_interleaved) and within tolerance for the FMA-contracted ones
// (butterfly*, cscale*, cmul_interleaved, cmac_conj, cdot). On top of the
// primitives, the whole STAP chain is checked end to end: FFT batch paths
// (including Bluestein sizes and odd lane counts) and — the contract that
// matters operationally — CFAR detections identical across backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "fft/fft.hpp"
#include "obs/metrics.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/scene.hpp"

namespace pstap {
namespace {

using simd::Backend;

std::vector<Backend> supported_backends() {
  std::vector<Backend> out{Backend::kScalar};
  const Backend best = simd::detect_best();
  if (static_cast<int>(best) >= static_cast<int>(Backend::kSse2)) {
    out.push_back(Backend::kSse2);
  }
  if (static_cast<int>(best) >= static_cast<int>(Backend::kAvx2)) {
    out.push_back(Backend::kAvx2);
  }
  return out;
}

// Restores the default backend even if a test fails mid-way.
struct BackendGuard {
  ~BackendGuard() { simd::force_backend(simd::detect_best()); }
};

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

stap::BeamArray clone(const stap::BeamArray& src) {
  stap::BeamArray out(src.bins(), src.beams(), src.ranges());
  std::copy(src.flat().begin(), src.flat().end(), out.flat().begin());
  return out;
}

// ------------------------------------------------------------ plumbing --

TEST(SimdDispatch, BackendNamesAndDetection) {
  EXPECT_STREQ(simd::backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::backend_name(Backend::kSse2), "sse2");
  EXPECT_STREQ(simd::backend_name(Backend::kAvx2), "avx2");
#if defined(__x86_64__)
  // x86-64 baseline guarantees SSE2.
  EXPECT_GE(static_cast<int>(simd::detect_best()),
            static_cast<int>(Backend::kSse2));
#endif
}

TEST(SimdDispatch, ActiveBackendIsRecordedInGauge) {
  const Backend b = simd::active();
  EXPECT_EQ(obs::Registry::global().gauge("simd.backend").value(),
            static_cast<std::int64_t>(b));
}

TEST(SimdDispatch, ForceBackendClampsToSupported) {
  BackendGuard guard;
  const Backend applied = simd::force_backend(Backend::kAvx2);
  EXPECT_LE(static_cast<int>(applied), static_cast<int>(simd::detect_best()));
  EXPECT_EQ(simd::force_backend(Backend::kScalar), Backend::kScalar);
}

TEST(SimdDispatch, OpsByBackendReturnsDistinctTablesWhenSupported) {
  const simd::Ops& scalar = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    if (b == Backend::kScalar) continue;
    EXPECT_NE(&simd::ops(b), &scalar) << simd::backend_name(b);
  }
}

// ---------------------------------------------------------- primitives --

// Sizes straddling every vector width and tail combination.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 100};

TEST(SimdPrimitives, ButterflyMatchesScalar) {
  const simd::Ops& ref = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t n : kSizes) {
      auto ar0 = random_floats(n, 1), ai0 = random_floats(n, 2);
      auto br0 = random_floats(n, 3), bi0 = random_floats(n, 4);
      auto ar1 = ar0, ai1 = ai0, br1 = br0, bi1 = bi0;
      const float wr = 0.6f, wi = -0.8f;
      ref.butterfly(ar0.data(), ai0.data(), br0.data(), bi0.data(), wr, wi, n);
      vec.butterfly(ar1.data(), ai1.data(), br1.data(), bi1.data(), wr, wi, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(ar0[i], ar1[i], 1e-5f) << simd::backend_name(b) << " n=" << n;
        EXPECT_NEAR(ai0[i], ai1[i], 1e-5f);
        EXPECT_NEAR(br0[i], br1[i], 1e-5f);
        EXPECT_NEAR(bi0[i], bi1[i], 1e-5f);
      }
    }
  }
}

TEST(SimdPrimitives, ButterflyRowsMatchesPerRowButterfly) {
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t lanes : {std::size_t{3}, std::size_t{8}, std::size_t{16},
                              std::size_t{21}, std::size_t{64}}) {
      const std::size_t rows = 5;
      auto ar0 = random_floats(rows * lanes, 11);
      auto ai0 = random_floats(rows * lanes, 12);
      auto br0 = random_floats(rows * lanes, 13);
      auto bi0 = random_floats(rows * lanes, 14);
      auto w = random_floats(2 * rows, 15);
      auto ar1 = ar0, ai1 = ai0, br1 = br0, bi1 = bi0;
      for (std::size_t j = 0; j < rows; ++j) {
        vec.butterfly(ar0.data() + j * lanes, ai0.data() + j * lanes,
                      br0.data() + j * lanes, bi0.data() + j * lanes, w[2 * j],
                      w[2 * j + 1], lanes);
      }
      vec.butterfly_rows(ar1.data(), ai1.data(), br1.data(), bi1.data(),
                         w.data(), rows, lanes);
      // Same backend, same expression trees: bit-identical.
      EXPECT_EQ(ar0, ar1) << simd::backend_name(b) << " lanes=" << lanes;
      EXPECT_EQ(ai0, ai1);
      EXPECT_EQ(br0, br1);
      EXPECT_EQ(bi0, bi1);
    }
  }
}

TEST(SimdPrimitives, Butterfly2RowsMatchesTwoStagePasses) {
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t lanes : {std::size_t{4}, std::size_t{8}, std::size_t{16},
                              std::size_t{19}, std::size_t{64}}) {
      for (std::size_t h : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        const std::size_t rows = 4 * h;
        auto re0 = random_floats(rows * lanes, 21);
        auto im0 = random_floats(rows * lanes, 22);
        auto w1 = random_floats(2 * h, 23);
        auto w2 = random_floats(2 * 2 * h, 24);
        auto re1 = re0, im1 = im0;
        // Reference: stage h then stage 2h as separate butterfly_rows
        // passes over the same block of 4h rows.
        for (std::size_t block = 0; block < rows; block += 2 * h) {
          vec.butterfly_rows(re0.data() + block * lanes,
                             im0.data() + block * lanes,
                             re0.data() + (block + h) * lanes,
                             im0.data() + (block + h) * lanes, w1.data(), h,
                             lanes);
        }
        vec.butterfly_rows(re0.data(), im0.data(), re0.data() + 2 * h * lanes,
                           im0.data() + 2 * h * lanes, w2.data(), 2 * h, lanes);
        vec.butterfly2_rows(re1.data(), im1.data(), w1.data(), w2.data(), h,
                            lanes);
        EXPECT_EQ(re0, re1) << simd::backend_name(b) << " lanes=" << lanes
                            << " h=" << h;
        EXPECT_EQ(im0, im1);
      }
    }
  }
}

TEST(SimdPrimitives, CscaleFamilyMatchesScalar) {
  const simd::Ops& ref = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t n : kSizes) {
      const float wr = -0.3f, wi = 0.9f;
      auto re0 = random_floats(n, 5), im0 = random_floats(n, 6);
      auto re1 = re0, im1 = im0;
      ref.cscale(re0.data(), im0.data(), wr, wi, n);
      vec.cscale(re1.data(), im1.data(), wr, wi, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(re0[i], re1[i], 1e-5f) << simd::backend_name(b);
        EXPECT_NEAR(im0[i], im1[i], 1e-5f);
      }

      auto xr = random_floats(n, 7), xi = random_floats(n, 8);
      std::vector<float> yr0(n), yi0(n), yr1(n), yi1(n);
      ref.cscale_to(yr0.data(), yi0.data(), xr.data(), xi.data(), wr, wi, n);
      vec.cscale_to(yr1.data(), yi1.data(), xr.data(), xi.data(), wr, wi, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(yr0[i], yr1[i], 1e-5f);
        EXPECT_NEAR(yi0[i], yi1[i], 1e-5f);
      }
    }
  }
}

TEST(SimdPrimitives, CscaleRowsMatchesPerRow) {
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t lanes : {std::size_t{5}, std::size_t{16}, std::size_t{24}}) {
      const std::size_t rows = 7;
      auto re0 = random_floats(rows * lanes, 31);
      auto im0 = random_floats(rows * lanes, 32);
      auto w = random_floats(2 * rows, 33);
      auto re1 = re0, im1 = im0;
      for (std::size_t j = 0; j < rows; ++j) {
        vec.cscale(re0.data() + j * lanes, im0.data() + j * lanes, w[2 * j],
                   w[2 * j + 1], lanes);
      }
      vec.cscale_rows(re1.data(), im1.data(), w.data(), rows, lanes);
      EXPECT_EQ(re0, re1) << simd::backend_name(b) << " lanes=" << lanes;
      EXPECT_EQ(im0, im1);

      auto xr = random_floats(rows * lanes, 34);
      auto xi = random_floats(rows * lanes, 35);
      std::vector<float> yr0(rows * lanes), yi0(rows * lanes);
      std::vector<float> yr1(rows * lanes), yi1(rows * lanes);
      for (std::size_t j = 0; j < rows; ++j) {
        vec.cscale_to(yr0.data() + j * lanes, yi0.data() + j * lanes,
                      xr.data() + j * lanes, xi.data() + j * lanes, w[2 * j],
                      w[2 * j + 1], lanes);
      }
      vec.cscale_rows_to(yr1.data(), yi1.data(), xr.data(), xi.data(), w.data(),
                         rows, lanes);
      EXPECT_EQ(yr0, yr1);
      EXPECT_EQ(yi0, yi1);
    }
  }
}

TEST(SimdPrimitives, InterleavedOpsMatchScalar) {
  const simd::Ops& ref = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t n : kSizes) {
      // cmul_interleaved (tolerance: FMA allowed).
      auto a0 = random_floats(2 * n, 41);
      auto bb = random_floats(2 * n, 42);
      auto a1 = a0;
      ref.cmul_interleaved(a0.data(), bb.data(), n);
      vec.cmul_interleaved(a1.data(), bb.data(), n);
      for (std::size_t i = 0; i < 2 * n; ++i) {
        EXPECT_NEAR(a0[i], a1[i], 1e-5f) << simd::backend_name(b) << " n=" << n;
      }

      // cmac_conj (tolerance).
      auto y0 = random_floats(2 * n, 43);
      auto x = random_floats(2 * n, 44);
      auto y1 = y0;
      ref.cmac_conj(y0.data(), x.data(), 0.7f, -0.2f, n);
      vec.cmac_conj(y1.data(), x.data(), 0.7f, -0.2f, n);
      for (std::size_t i = 0; i < 2 * n; ++i) {
        EXPECT_NEAR(y0[i], y1[i], 1e-5f);
      }

      // scale / deinterleave_scale / interleave / norm_interleaved are
      // FMA-free: bit-exact across backends.
      auto s0 = random_floats(n, 45);
      auto s1 = s0;
      ref.scale(s0.data(), 1.25f, n);
      vec.scale(s1.data(), 1.25f, n);
      EXPECT_EQ(s0, s1);

      auto src = random_floats(2 * n, 46);
      std::vector<float> dr0(n), di0(n), dr1(n), di1(n);
      ref.deinterleave_scale(dr0.data(), di0.data(), src.data(), 0.33f, n);
      vec.deinterleave_scale(dr1.data(), di1.data(), src.data(), 0.33f, n);
      EXPECT_EQ(dr0, dr1);
      EXPECT_EQ(di0, di1);

      std::vector<float> il0(2 * n), il1(2 * n);
      ref.interleave(il0.data(), dr0.data(), di0.data(), n);
      vec.interleave(il1.data(), dr0.data(), di0.data(), n);
      EXPECT_EQ(il0, il1);

      std::vector<double> p0(n), p1(n);
      ref.norm_interleaved(p0.data(), src.data(), n);
      vec.norm_interleaved(p1.data(), src.data(), n);
      EXPECT_EQ(p0, p1);
    }
  }
}

TEST(SimdPrimitives, CdotMatchesScalarWithinTolerance) {
  const simd::Ops& ref = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t n : kSizes) {
      auto x = random_floats(2 * n, 51);
      auto y = random_floats(2 * n, 52);
      float rr = 0, ri = 0, vr = 0, vi = 0;
      ref.cdot(x.data(), y.data(), n, &rr, &ri);
      vec.cdot(x.data(), y.data(), n, &vr, &vi);
      const float tol = 1e-4f * static_cast<float>(n + 1);
      EXPECT_NEAR(rr, vr, tol) << simd::backend_name(b) << " n=" << n;
      EXPECT_NEAR(ri, vi, tol);
    }
  }
}

// --------------------------------------------------------- FFT kernels --

TEST(SimdKernels, BatchFftMatchesReferenceAcrossBackends) {
  BackendGuard guard;
  // Pow2, Bluestein (127 prime, 96 even composite), and sizes around the
  // lane width; batch counts hitting full and partial lane blocks.
  for (std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{127},
                        std::size_t{96}}) {
    for (std::size_t count : {std::size_t{1}, std::size_t{5}, std::size_t{16},
                              std::size_t{33}}) {
      Rng rng(n * 100 + count);
      std::vector<cfloat> input(n * count);
      for (auto& v : input) v = rng.complex_normal();

      // Reference: per-series AoS transform (scalar expression trees).
      simd::force_backend(Backend::kScalar);
      std::vector<cfloat> ref = input;
      fft::FftPlan plan(n);
      for (std::size_t c = 0; c < count; ++c) {
        plan.transform(std::span<cfloat>(ref.data() + c * n, n),
                       fft::Direction::kForward);
      }

      for (Backend b : supported_backends()) {
        simd::force_backend(b);
        std::vector<cfloat> got = input;
        fft::BatchScratch scratch;
        plan.transform_batch(got, count, fft::Direction::kForward, scratch);
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_NEAR(got[i].real(), ref[i].real(), 2e-3f)
              << simd::backend_name(b) << " n=" << n << " count=" << count;
          EXPECT_NEAR(got[i].imag(), ref[i].imag(), 2e-3f);
        }
        // Round-trip through the inverse lands back on the input.
        plan.transform_batch(got, count, fft::Direction::kInverse, scratch);
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_NEAR(got[i].real(), input[i].real(), 2e-3f);
          EXPECT_NEAR(got[i].imag(), input[i].imag(), 2e-3f);
        }
      }
    }
  }
}

TEST(SimdKernels, ScratchPlanesAreSimdAligned) {
  // The batch paths PSTAP_REQUIRE 64-byte alignment of their SoA planes
  // after every resize — reaching the end of a transform proves the
  // AlignedVector storage held its alignment through reallocation.
  fft::BatchScratch scratch;
  for (std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{127}}) {
    fft::FftPlan plan(n);
    std::vector<cfloat> data(n * 3);
    EXPECT_NO_THROW(
        plan.transform_batch(data, 3, fft::Direction::kForward, scratch));
  }
}

// ------------------------------------------------- STAP chain contract --

TEST(SimdKernels, DopplerOutputEquivalentAcrossBackends) {
  BackendGuard guard;
  stap::RadarParams p = stap::RadarParams::test_small();
  stap::SceneGenerator gen(p, stap::SceneConfig{}, 7);
  const stap::DataCube cube = gen.generate(0);
  stap::DopplerFilter filter(p);

  simd::force_backend(Backend::kScalar);
  const stap::DopplerOutput ref = filter.process(cube);

  for (Backend b : supported_backends()) {
    simd::force_backend(b);
    const stap::DopplerOutput got = filter.process(cube);
    ASSERT_EQ(got.easy.flat().size(), ref.easy.flat().size());
    for (std::size_t i = 0; i < ref.easy.flat().size(); ++i) {
      EXPECT_NEAR(got.easy.flat()[i].real(), ref.easy.flat()[i].real(), 1e-3f)
          << simd::backend_name(b);
      EXPECT_NEAR(got.easy.flat()[i].imag(), ref.easy.flat()[i].imag(), 1e-3f);
    }
    for (std::size_t i = 0; i < ref.hard.flat().size(); ++i) {
      EXPECT_NEAR(got.hard.flat()[i].real(), ref.hard.flat()[i].real(), 1e-3f);
      EXPECT_NEAR(got.hard.flat()[i].imag(), ref.hard.flat()[i].imag(), 1e-3f);
    }
  }
}

TEST(SimdKernels, CfarDetectionsIdenticalAcrossBackends) {
  BackendGuard guard;
  stap::RadarParams p = stap::RadarParams::test_small();
  Rng rng(99);
  stap::BeamArray beams(p.doppler_bins(), p.beams, p.ranges);
  for (auto& v : beams.flat()) v = rng.complex_normal();
  // Plant a few strong targets so the detector has work to do.
  beams.range_series(3, 0)[40] = cfloat(30.0f, 0.0f);
  beams.range_series(7, 1)[90] = cfloat(25.0f, -10.0f);
  std::vector<std::size_t> ids(beams.bins());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;

  stap::CfarDetector cfar(p);
  simd::force_backend(Backend::kScalar);
  const auto ref = cfar.detect(beams, ids);
  EXPECT_FALSE(ref.empty());

  for (Backend b : supported_backends()) {
    simd::force_backend(b);
    const auto got = cfar.detect(beams, ids);
    // norm_interleaved is FMA-free on every backend, so the detection sets
    // — indices AND power/threshold values — must be bit-identical.
    ASSERT_EQ(got.size(), ref.size()) << simd::backend_name(b);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].bin, ref[i].bin);
      EXPECT_EQ(got[i].beam, ref[i].beam);
      EXPECT_EQ(got[i].range, ref[i].range);
      EXPECT_EQ(got[i].power, ref[i].power);
      EXPECT_EQ(got[i].threshold, ref[i].threshold);
    }
  }
}

TEST(SimdKernels, PulseCompressionEquivalentAcrossBackends) {
  BackendGuard guard;
  stap::RadarParams p = stap::RadarParams::test_small();
  Rng rng(5);
  stap::BeamArray input(p.doppler_bins(), p.beams, p.ranges);
  for (auto& v : input.flat()) v = rng.complex_normal();
  stap::PulseCompressor pc(p);

  simd::force_backend(Backend::kScalar);
  stap::BeamArray ref = clone(input);
  pc.compress(ref);

  for (Backend b : supported_backends()) {
    simd::force_backend(b);
    stap::BeamArray got = clone(input);
    pc.compress(got);
    for (std::size_t i = 0; i < ref.flat().size(); ++i) {
      EXPECT_NEAR(got.flat()[i].real(), ref.flat()[i].real(), 1e-3f)
          << simd::backend_name(b);
      EXPECT_NEAR(got.flat()[i].imag(), ref.flat()[i].imag(), 1e-3f);
    }
  }
}

// ------------------------------------------------------------- aligned --

TEST(AlignedVector, AllocatesToDefaultAlignment) {
  AlignedVector<float> v(1000);
  EXPECT_TRUE(is_aligned(v.data()));
  v.resize(4096);
  EXPECT_TRUE(is_aligned(v.data()));
  AlignedVector<float> w = v;
  EXPECT_TRUE(is_aligned(w.data()));
}

TEST(AlignedVector, IsAlignedChecksArbitraryBoundaries) {
  alignas(64) float buf[32];
  EXPECT_TRUE(is_aligned(buf));
  EXPECT_TRUE(is_aligned(buf, 32));
  EXPECT_FALSE(is_aligned(buf + 1, 64));
  EXPECT_TRUE(is_aligned(buf + 16, 64));
}

}  // namespace
}  // namespace pstap
