// Backend-equivalence tests for the runtime-dispatched SIMD kernels.
//
// Every vector backend must reproduce the scalar reference: bit-exactly for
// the FMA-free primitives (scale, deinterleave_scale, interleave,
// norm_interleaved) and within tolerance for the FMA-contracted ones
// (butterfly*, cscale*, cmul_interleaved, cmac_conj, cdot). On top of the
// primitives, the whole STAP chain is checked end to end: FFT batch paths
// (including Bluestein sizes and odd lane counts) and — the contract that
// matters operationally — CFAR detections identical across backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "fft/fft.hpp"
#include "linalg/cgemm.hpp"
#include "linalg/cmatrix.hpp"
#include "obs/metrics.hpp"
#include "stap/cfar.hpp"
#include "stap/doppler.hpp"
#include "stap/pulse_compress.hpp"
#include "stap/scene.hpp"

namespace pstap {
namespace {

using simd::Backend;

std::vector<Backend> supported_backends() {
  std::vector<Backend> out{Backend::kScalar};
  const Backend best = simd::detect_best();
  if (static_cast<int>(best) >= static_cast<int>(Backend::kSse2)) {
    out.push_back(Backend::kSse2);
  }
  if (static_cast<int>(best) >= static_cast<int>(Backend::kAvx2)) {
    out.push_back(Backend::kAvx2);
  }
  return out;
}

// Restores the default backend even if a test fails mid-way.
struct BackendGuard {
  ~BackendGuard() { simd::force_backend(simd::detect_best()); }
};

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

stap::BeamArray clone(const stap::BeamArray& src) {
  stap::BeamArray out(src.bins(), src.beams(), src.ranges());
  std::copy(src.flat().begin(), src.flat().end(), out.flat().begin());
  return out;
}

// ------------------------------------------------------------ plumbing --

TEST(SimdDispatch, BackendNamesAndDetection) {
  EXPECT_STREQ(simd::backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(simd::backend_name(Backend::kSse2), "sse2");
  EXPECT_STREQ(simd::backend_name(Backend::kAvx2), "avx2");
#if defined(__x86_64__)
  // x86-64 baseline guarantees SSE2.
  EXPECT_GE(static_cast<int>(simd::detect_best()),
            static_cast<int>(Backend::kSse2));
#endif
}

TEST(SimdDispatch, ActiveBackendIsRecordedInGauge) {
  const Backend b = simd::active();
  EXPECT_EQ(obs::Registry::global().gauge("simd.backend").value(),
            static_cast<std::int64_t>(b));
}

TEST(SimdDispatch, ForceBackendClampsToSupported) {
  BackendGuard guard;
  const Backend applied = simd::force_backend(Backend::kAvx2);
  EXPECT_LE(static_cast<int>(applied), static_cast<int>(simd::detect_best()));
  EXPECT_EQ(simd::force_backend(Backend::kScalar), Backend::kScalar);
}

TEST(SimdDispatch, OpsByBackendReturnsDistinctTablesWhenSupported) {
  const simd::Ops& scalar = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    if (b == Backend::kScalar) continue;
    EXPECT_NE(&simd::ops(b), &scalar) << simd::backend_name(b);
  }
}

// ---------------------------------------------------------- primitives --

// Sizes straddling every vector width and tail combination.
const std::size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 100};

TEST(SimdPrimitives, ButterflyMatchesScalar) {
  const simd::Ops& ref = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t n : kSizes) {
      auto ar0 = random_floats(n, 1), ai0 = random_floats(n, 2);
      auto br0 = random_floats(n, 3), bi0 = random_floats(n, 4);
      auto ar1 = ar0, ai1 = ai0, br1 = br0, bi1 = bi0;
      const float wr = 0.6f, wi = -0.8f;
      ref.butterfly(ar0.data(), ai0.data(), br0.data(), bi0.data(), wr, wi, n);
      vec.butterfly(ar1.data(), ai1.data(), br1.data(), bi1.data(), wr, wi, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(ar0[i], ar1[i], 1e-5f) << simd::backend_name(b) << " n=" << n;
        EXPECT_NEAR(ai0[i], ai1[i], 1e-5f);
        EXPECT_NEAR(br0[i], br1[i], 1e-5f);
        EXPECT_NEAR(bi0[i], bi1[i], 1e-5f);
      }
    }
  }
}

TEST(SimdPrimitives, ButterflyRowsMatchesPerRowButterfly) {
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t lanes : {std::size_t{3}, std::size_t{8}, std::size_t{16},
                              std::size_t{21}, std::size_t{64}}) {
      const std::size_t rows = 5;
      auto ar0 = random_floats(rows * lanes, 11);
      auto ai0 = random_floats(rows * lanes, 12);
      auto br0 = random_floats(rows * lanes, 13);
      auto bi0 = random_floats(rows * lanes, 14);
      auto w = random_floats(2 * rows, 15);
      auto ar1 = ar0, ai1 = ai0, br1 = br0, bi1 = bi0;
      for (std::size_t j = 0; j < rows; ++j) {
        vec.butterfly(ar0.data() + j * lanes, ai0.data() + j * lanes,
                      br0.data() + j * lanes, bi0.data() + j * lanes, w[2 * j],
                      w[2 * j + 1], lanes);
      }
      vec.butterfly_rows(ar1.data(), ai1.data(), br1.data(), bi1.data(),
                         w.data(), rows, lanes);
      // Same backend, same expression trees: bit-identical.
      EXPECT_EQ(ar0, ar1) << simd::backend_name(b) << " lanes=" << lanes;
      EXPECT_EQ(ai0, ai1);
      EXPECT_EQ(br0, br1);
      EXPECT_EQ(bi0, bi1);
    }
  }
}

TEST(SimdPrimitives, Butterfly2RowsMatchesTwoStagePasses) {
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t lanes : {std::size_t{4}, std::size_t{8}, std::size_t{16},
                              std::size_t{19}, std::size_t{64}}) {
      for (std::size_t h : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
        const std::size_t rows = 4 * h;
        auto re0 = random_floats(rows * lanes, 21);
        auto im0 = random_floats(rows * lanes, 22);
        auto w1 = random_floats(2 * h, 23);
        auto w2 = random_floats(2 * 2 * h, 24);
        auto re1 = re0, im1 = im0;
        // Reference: stage h then stage 2h as separate butterfly_rows
        // passes over the same block of 4h rows.
        for (std::size_t block = 0; block < rows; block += 2 * h) {
          vec.butterfly_rows(re0.data() + block * lanes,
                             im0.data() + block * lanes,
                             re0.data() + (block + h) * lanes,
                             im0.data() + (block + h) * lanes, w1.data(), h,
                             lanes);
        }
        vec.butterfly_rows(re0.data(), im0.data(), re0.data() + 2 * h * lanes,
                           im0.data() + 2 * h * lanes, w2.data(), 2 * h, lanes);
        vec.butterfly2_rows(re1.data(), im1.data(), w1.data(), w2.data(), h,
                            lanes);
        EXPECT_EQ(re0, re1) << simd::backend_name(b) << " lanes=" << lanes
                            << " h=" << h;
        EXPECT_EQ(im0, im1);
      }
    }
  }
}

TEST(SimdPrimitives, CscaleFamilyMatchesScalar) {
  const simd::Ops& ref = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t n : kSizes) {
      const float wr = -0.3f, wi = 0.9f;
      auto re0 = random_floats(n, 5), im0 = random_floats(n, 6);
      auto re1 = re0, im1 = im0;
      ref.cscale(re0.data(), im0.data(), wr, wi, n);
      vec.cscale(re1.data(), im1.data(), wr, wi, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(re0[i], re1[i], 1e-5f) << simd::backend_name(b);
        EXPECT_NEAR(im0[i], im1[i], 1e-5f);
      }

      auto xr = random_floats(n, 7), xi = random_floats(n, 8);
      std::vector<float> yr0(n), yi0(n), yr1(n), yi1(n);
      ref.cscale_to(yr0.data(), yi0.data(), xr.data(), xi.data(), wr, wi, n);
      vec.cscale_to(yr1.data(), yi1.data(), xr.data(), xi.data(), wr, wi, n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(yr0[i], yr1[i], 1e-5f);
        EXPECT_NEAR(yi0[i], yi1[i], 1e-5f);
      }
    }
  }
}

TEST(SimdPrimitives, CscaleRowsMatchesPerRow) {
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t lanes : {std::size_t{5}, std::size_t{16}, std::size_t{24}}) {
      const std::size_t rows = 7;
      auto re0 = random_floats(rows * lanes, 31);
      auto im0 = random_floats(rows * lanes, 32);
      auto w = random_floats(2 * rows, 33);
      auto re1 = re0, im1 = im0;
      for (std::size_t j = 0; j < rows; ++j) {
        vec.cscale(re0.data() + j * lanes, im0.data() + j * lanes, w[2 * j],
                   w[2 * j + 1], lanes);
      }
      vec.cscale_rows(re1.data(), im1.data(), w.data(), rows, lanes);
      EXPECT_EQ(re0, re1) << simd::backend_name(b) << " lanes=" << lanes;
      EXPECT_EQ(im0, im1);

      auto xr = random_floats(rows * lanes, 34);
      auto xi = random_floats(rows * lanes, 35);
      std::vector<float> yr0(rows * lanes), yi0(rows * lanes);
      std::vector<float> yr1(rows * lanes), yi1(rows * lanes);
      for (std::size_t j = 0; j < rows; ++j) {
        vec.cscale_to(yr0.data() + j * lanes, yi0.data() + j * lanes,
                      xr.data() + j * lanes, xi.data() + j * lanes, w[2 * j],
                      w[2 * j + 1], lanes);
      }
      vec.cscale_rows_to(yr1.data(), yi1.data(), xr.data(), xi.data(), w.data(),
                         rows, lanes);
      EXPECT_EQ(yr0, yr1);
      EXPECT_EQ(yi0, yi1);
    }
  }
}

TEST(SimdPrimitives, InterleavedOpsMatchScalar) {
  const simd::Ops& ref = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t n : kSizes) {
      // cmul_interleaved (tolerance: FMA allowed).
      auto a0 = random_floats(2 * n, 41);
      auto bb = random_floats(2 * n, 42);
      auto a1 = a0;
      ref.cmul_interleaved(a0.data(), bb.data(), n);
      vec.cmul_interleaved(a1.data(), bb.data(), n);
      for (std::size_t i = 0; i < 2 * n; ++i) {
        EXPECT_NEAR(a0[i], a1[i], 1e-5f) << simd::backend_name(b) << " n=" << n;
      }

      // cmac_conj (tolerance).
      auto y0 = random_floats(2 * n, 43);
      auto x = random_floats(2 * n, 44);
      auto y1 = y0;
      ref.cmac_conj(y0.data(), x.data(), 0.7f, -0.2f, n);
      vec.cmac_conj(y1.data(), x.data(), 0.7f, -0.2f, n);
      for (std::size_t i = 0; i < 2 * n; ++i) {
        EXPECT_NEAR(y0[i], y1[i], 1e-5f);
      }

      // scale / deinterleave_scale / interleave / norm_interleaved are
      // FMA-free: bit-exact across backends.
      auto s0 = random_floats(n, 45);
      auto s1 = s0;
      ref.scale(s0.data(), 1.25f, n);
      vec.scale(s1.data(), 1.25f, n);
      EXPECT_EQ(s0, s1);

      auto src = random_floats(2 * n, 46);
      std::vector<float> dr0(n), di0(n), dr1(n), di1(n);
      ref.deinterleave_scale(dr0.data(), di0.data(), src.data(), 0.33f, n);
      vec.deinterleave_scale(dr1.data(), di1.data(), src.data(), 0.33f, n);
      EXPECT_EQ(dr0, dr1);
      EXPECT_EQ(di0, di1);

      std::vector<float> il0(2 * n), il1(2 * n);
      ref.interleave(il0.data(), dr0.data(), di0.data(), n);
      vec.interleave(il1.data(), dr0.data(), di0.data(), n);
      EXPECT_EQ(il0, il1);

      std::vector<double> p0(n), p1(n);
      ref.norm_interleaved(p0.data(), src.data(), n);
      vec.norm_interleaved(p1.data(), src.data(), n);
      EXPECT_EQ(p0, p1);
    }
  }
}

TEST(SimdPrimitives, CdotMatchesScalarWithinTolerance) {
  const simd::Ops& ref = simd::ops(Backend::kScalar);
  for (Backend b : supported_backends()) {
    const simd::Ops& vec = simd::ops(b);
    for (std::size_t n : kSizes) {
      auto x = random_floats(2 * n, 51);
      auto y = random_floats(2 * n, 52);
      float rr = 0, ri = 0, vr = 0, vi = 0;
      ref.cdot(x.data(), y.data(), n, &rr, &ri);
      vec.cdot(x.data(), y.data(), n, &vr, &vi);
      const float tol = 1e-4f * static_cast<float>(n + 1);
      EXPECT_NEAR(rr, vr, tol) << simd::backend_name(b) << " n=" << n;
      EXPECT_NEAR(ri, vi, tol);
    }
  }
}

// --------------------------------------------------------- FFT kernels --

TEST(SimdKernels, BatchFftMatchesReferenceAcrossBackends) {
  BackendGuard guard;
  // Pow2, Bluestein (127 prime, 96 even composite), and sizes around the
  // lane width; batch counts hitting full and partial lane blocks.
  for (std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{127},
                        std::size_t{96}}) {
    for (std::size_t count : {std::size_t{1}, std::size_t{5}, std::size_t{16},
                              std::size_t{33}}) {
      Rng rng(n * 100 + count);
      std::vector<cfloat> input(n * count);
      for (auto& v : input) v = rng.complex_normal();

      // Reference: per-series AoS transform (scalar expression trees).
      simd::force_backend(Backend::kScalar);
      std::vector<cfloat> ref = input;
      fft::FftPlan plan(n);
      for (std::size_t c = 0; c < count; ++c) {
        plan.transform(std::span<cfloat>(ref.data() + c * n, n),
                       fft::Direction::kForward);
      }

      for (Backend b : supported_backends()) {
        simd::force_backend(b);
        std::vector<cfloat> got = input;
        fft::BatchScratch scratch;
        plan.transform_batch(got, count, fft::Direction::kForward, scratch);
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_NEAR(got[i].real(), ref[i].real(), 2e-3f)
              << simd::backend_name(b) << " n=" << n << " count=" << count;
          EXPECT_NEAR(got[i].imag(), ref[i].imag(), 2e-3f);
        }
        // Round-trip through the inverse lands back on the input.
        plan.transform_batch(got, count, fft::Direction::kInverse, scratch);
        for (std::size_t i = 0; i < got.size(); ++i) {
          EXPECT_NEAR(got[i].real(), input[i].real(), 2e-3f);
          EXPECT_NEAR(got[i].imag(), input[i].imag(), 2e-3f);
        }
      }
    }
  }
}

TEST(SimdKernels, ScratchPlanesAreSimdAligned) {
  // The batch paths PSTAP_REQUIRE 64-byte alignment of their SoA planes
  // after every resize — reaching the end of a transform proves the
  // AlignedVector storage held its alignment through reallocation.
  fft::BatchScratch scratch;
  for (std::size_t n : {std::size_t{8}, std::size_t{64}, std::size_t{127}}) {
    fft::FftPlan plan(n);
    std::vector<cfloat> data(n * 3);
    EXPECT_NO_THROW(
        plan.transform_batch(data, 3, fft::Direction::kForward, scratch));
  }
}

// ------------------------------------------------- STAP chain contract --

TEST(SimdKernels, DopplerOutputEquivalentAcrossBackends) {
  BackendGuard guard;
  stap::RadarParams p = stap::RadarParams::test_small();
  stap::SceneGenerator gen(p, stap::SceneConfig{}, 7);
  const stap::DataCube cube = gen.generate(0);
  stap::DopplerFilter filter(p);

  simd::force_backend(Backend::kScalar);
  const stap::DopplerOutput ref = filter.process(cube);

  for (Backend b : supported_backends()) {
    simd::force_backend(b);
    const stap::DopplerOutput got = filter.process(cube);
    ASSERT_EQ(got.easy.flat().size(), ref.easy.flat().size());
    for (std::size_t i = 0; i < ref.easy.flat().size(); ++i) {
      EXPECT_NEAR(got.easy.flat()[i].real(), ref.easy.flat()[i].real(), 1e-3f)
          << simd::backend_name(b);
      EXPECT_NEAR(got.easy.flat()[i].imag(), ref.easy.flat()[i].imag(), 1e-3f);
    }
    for (std::size_t i = 0; i < ref.hard.flat().size(); ++i) {
      EXPECT_NEAR(got.hard.flat()[i].real(), ref.hard.flat()[i].real(), 1e-3f);
      EXPECT_NEAR(got.hard.flat()[i].imag(), ref.hard.flat()[i].imag(), 1e-3f);
    }
  }
}

TEST(SimdKernels, CfarDetectionsIdenticalAcrossBackends) {
  BackendGuard guard;
  stap::RadarParams p = stap::RadarParams::test_small();
  Rng rng(99);
  stap::BeamArray beams(p.doppler_bins(), p.beams, p.ranges);
  for (auto& v : beams.flat()) v = rng.complex_normal();
  // Plant a few strong targets so the detector has work to do.
  beams.range_series(3, 0)[40] = cfloat(30.0f, 0.0f);
  beams.range_series(7, 1)[90] = cfloat(25.0f, -10.0f);
  std::vector<std::size_t> ids(beams.bins());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;

  stap::CfarDetector cfar(p);
  simd::force_backend(Backend::kScalar);
  const auto ref = cfar.detect(beams, ids);
  EXPECT_FALSE(ref.empty());

  for (Backend b : supported_backends()) {
    simd::force_backend(b);
    const auto got = cfar.detect(beams, ids);
    // norm_interleaved is FMA-free on every backend, so the detection sets
    // — indices AND power/threshold values — must be bit-identical.
    ASSERT_EQ(got.size(), ref.size()) << simd::backend_name(b);
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].bin, ref[i].bin);
      EXPECT_EQ(got[i].beam, ref[i].beam);
      EXPECT_EQ(got[i].range, ref[i].range);
      EXPECT_EQ(got[i].power, ref[i].power);
      EXPECT_EQ(got[i].threshold, ref[i].threshold);
    }
  }
}

TEST(SimdKernels, PulseCompressionEquivalentAcrossBackends) {
  BackendGuard guard;
  stap::RadarParams p = stap::RadarParams::test_small();
  Rng rng(5);
  stap::BeamArray input(p.doppler_bins(), p.beams, p.ranges);
  for (auto& v : input.flat()) v = rng.complex_normal();
  stap::PulseCompressor pc(p);

  simd::force_backend(Backend::kScalar);
  stap::BeamArray ref = clone(input);
  pc.compress(ref);

  for (Backend b : supported_backends()) {
    simd::force_backend(b);
    stap::BeamArray got = clone(input);
    pc.compress(got);
    for (std::size_t i = 0; i < ref.flat().size(); ++i) {
      EXPECT_NEAR(got.flat()[i].real(), ref.flat()[i].real(), 1e-3f)
          << simd::backend_name(b);
      EXPECT_NEAR(got.flat()[i].imag(), ref.flat()[i].imag(), 1e-3f);
    }
  }
}

// ------------------------------------------------- complex GEMM kernels --

// Shapes straddling the 4-row x 4-complex AVX2 register block in every
// direction: single rows/columns, tails on m, k and n, a k (= DOF) that is
// not a multiple of the tile width, and one block-aligned shape.
struct GemmShape {
  std::size_t m, k, n;
};
const GemmShape kGemmShapes[] = {
    {1, 1, 1},   {1, 7, 5},   {3, 16, 17}, {4, 31, 8},
    {5, 3, 100}, {4, 32, 64}, {2, 5, 33},  {7, 12, 4},
};

std::vector<cfloat> random_cfloats(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<cfloat> v(n);
  for (auto& x : v) x = rng.complex_normal();
  return v;
}

// The historical beamform expression trees: per output row, walk the DOFs
// in order and stream the contiguous B row with one complex MAC per
// element. The scalar cgemm backend must reproduce this bit-for-bit.
std::vector<cfloat> cgemm_reference(bool conj_a, const GemmShape& s,
                                    const std::vector<cfloat>& a,
                                    const std::vector<cfloat>& b) {
  std::vector<cfloat> c(s.m * s.n, cfloat{});
  for (std::size_t i = 0; i < s.m; ++i) {
    for (std::size_t p = 0; p < s.k; ++p) {
      const cfloat w = conj_a ? std::conj(a[i * s.k + p]) : a[i * s.k + p];
      for (std::size_t l = 0; l < s.n; ++l) {
        c[i * s.n + l] += w * b[p * s.n + l];
      }
    }
  }
  return c;
}

TEST(GemmEquivalence, ScalarCgemmBitExactAgainstComplexReference) {
  BackendGuard guard;
  simd::force_backend(Backend::kScalar);
  linalg::CgemmScratch scratch;
  for (const GemmShape& s : kGemmShapes) {
    const auto a = random_cfloats(s.m * s.k, 1000 + s.m);
    const auto b = random_cfloats(s.k * s.n, 2000 + s.n);
    for (bool conj_a : {false, true}) {
      const auto ref = cgemm_reference(conj_a, s, a, b);
      std::vector<cfloat> c(s.m * s.n, cfloat{});
      linalg::cgemm(conj_a, s.m, s.k, s.n, a.data(), s.k, b.data(), s.n,
                    c.data(), s.n, scratch);
      for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(c[i].real(), ref[i].real())
            << "m=" << s.m << " k=" << s.k << " n=" << s.n
            << " conj=" << conj_a << " i=" << i;
        EXPECT_EQ(c[i].imag(), ref[i].imag());
      }
    }
  }
}

TEST(GemmEquivalence, CgemmBackendsMatchScalarWithinTolerance) {
  BackendGuard guard;
  linalg::CgemmScratch scratch;
  for (const GemmShape& s : kGemmShapes) {
    const auto a = random_cfloats(s.m * s.k, 3000 + s.m);
    const auto b = random_cfloats(s.k * s.n, 4000 + s.n);
    simd::force_backend(Backend::kScalar);
    std::vector<cfloat> ref(s.m * s.n, cfloat{});
    linalg::cgemm(true, s.m, s.k, s.n, a.data(), s.k, b.data(), s.n,
                  ref.data(), s.n, scratch);
    for (Backend bk : supported_backends()) {
      simd::force_backend(bk);
      std::vector<cfloat> c(s.m * s.n, cfloat{});
      linalg::cgemm(true, s.m, s.k, s.n, a.data(), s.k, b.data(), s.n,
                    c.data(), s.n, scratch);
      const float tol = 1e-4f * static_cast<float>(s.k + 1);
      for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_NEAR(c[i].real(), ref[i].real(), tol)
            << simd::backend_name(bk) << " m=" << s.m << " k=" << s.k
            << " n=" << s.n;
        EXPECT_NEAR(c[i].imag(), ref[i].imag(), tol);
      }
    }
  }
}

TEST(GemmEquivalence, CgemmAccumulatesIntoExistingOutput) {
  // C += A*B semantics: a pre-filled C must keep its prior contents as the
  // accumulation base on every backend.
  BackendGuard guard;
  linalg::CgemmScratch scratch;
  const GemmShape s{3, 5, 9};
  const auto a = random_cfloats(s.m * s.k, 71);
  const auto b = random_cfloats(s.k * s.n, 72);
  const auto base = random_cfloats(s.m * s.n, 73);
  for (Backend bk : supported_backends()) {
    simd::force_backend(bk);
    std::vector<cfloat> once(base);
    linalg::cgemm(false, s.m, s.k, s.n, a.data(), s.k, b.data(), s.n,
                  once.data(), s.n, scratch);
    std::vector<cfloat> zero(s.m * s.n, cfloat{});
    linalg::cgemm(false, s.m, s.k, s.n, a.data(), s.k, b.data(), s.n,
                  zero.data(), s.n, scratch);
    for (std::size_t i = 0; i < once.size(); ++i) {
      EXPECT_NEAR(once[i].real(), base[i].real() + zero[i].real(), 1e-4f)
          << simd::backend_name(bk);
      EXPECT_NEAR(once[i].imag(), base[i].imag() + zero[i].imag(), 1e-4f);
    }
  }
}

TEST(GemmEquivalence, CgemvRowsIsConjugateGemm) {
  BackendGuard guard;
  linalg::CgemmScratch scratch;
  const GemmShape s{4, 10, 33};
  const auto w = random_cfloats(s.m * s.k, 81);
  const auto x = random_cfloats(s.k * s.n, 82);
  for (Backend bk : supported_backends()) {
    simd::force_backend(bk);
    std::vector<cfloat> y1(s.m * s.n, cfloat{}), y2(s.m * s.n, cfloat{});
    linalg::cgemv_rows(s.m, s.k, s.n, w.data(), s.k, x.data(), s.n, y1.data(),
                       s.n, scratch);
    linalg::cgemm(true, s.m, s.k, s.n, w.data(), s.k, x.data(), s.n, y2.data(),
                  s.n, scratch);
    for (std::size_t i = 0; i < y1.size(); ++i) {
      EXPECT_EQ(y1[i].real(), y2[i].real()) << simd::backend_name(bk);
      EXPECT_EQ(y1[i].imag(), y2[i].imag());
    }
  }
}

TEST(GemmEquivalence, ScalarCherkBitExactAgainstHerUpdateReference) {
  // The scalar rank-k kernel must reproduce the historical covariance path:
  // per-gate snapshot gather into cdouble followed by CMatrix::her_update,
  // accumulated in gate order. lds > t exercises a stride wider than the
  // training window, as in the real BinArray layout.
  BackendGuard guard;
  simd::force_backend(Backend::kScalar);
  for (std::size_t dof : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                          std::size_t{13}}) {
    for (std::size_t t : {std::size_t{1}, std::size_t{5}, std::size_t{32},
                          std::size_t{57}}) {
      const std::size_t lds = t + 3;
      const auto s = random_cfloats(dof * lds, 5000 + dof * 100 + t);
      const double alpha = 1.0 / static_cast<double>(t);

      linalg::CMatrix<double> ref(dof, dof);
      std::vector<cdouble> snap(dof);
      for (std::size_t g = 0; g < t; ++g) {
        for (std::size_t d = 0; d < dof; ++d) {
          const cfloat v = s[d * lds + g];
          snap[d] = {v.real(), v.imag()};
        }
        ref.her_update(snap, alpha);
      }

      linalg::CMatrix<double> got(dof, dof);
      linalg::cherk_lower(got, s.data(), lds, t, alpha);
      for (std::size_t i = 0; i < dof; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
          EXPECT_EQ(got(i, j).real(), ref(i, j).real())
              << "dof=" << dof << " t=" << t << " (" << i << "," << j << ")";
          EXPECT_EQ(got(i, j).imag(), ref(i, j).imag());
        }
        // Strictly-upper entries are never written.
        for (std::size_t j = i + 1; j < dof; ++j) {
          EXPECT_EQ(got(i, j).real(), 0.0);
          EXPECT_EQ(got(i, j).imag(), 0.0);
        }
      }
    }
  }
}

TEST(GemmEquivalence, CherkBackendsMatchScalarWithinTolerance) {
  BackendGuard guard;
  for (std::size_t dof : {std::size_t{2}, std::size_t{7}, std::size_t{16}}) {
    for (std::size_t t : {std::size_t{9}, std::size_t{64}}) {
      const std::size_t lds = t;
      const auto s = random_cfloats(dof * lds, 6000 + dof * 100 + t);
      const double alpha = 1.0 / static_cast<double>(t);

      simd::force_backend(Backend::kScalar);
      linalg::CMatrix<double> ref(dof, dof);
      linalg::cherk_lower(ref, s.data(), lds, t, alpha);

      for (Backend bk : supported_backends()) {
        simd::force_backend(bk);
        linalg::CMatrix<double> got(dof, dof);
        linalg::cherk_lower(got, s.data(), lds, t, alpha);
        for (std::size_t i = 0; i < dof; ++i) {
          for (std::size_t j = 0; j <= i; ++j) {
            EXPECT_NEAR(got(i, j).real(), ref(i, j).real(), 1e-12 * t)
                << simd::backend_name(bk) << " dof=" << dof << " t=" << t;
            EXPECT_NEAR(got(i, j).imag(), ref(i, j).imag(), 1e-12 * t);
          }
        }
      }
    }
  }
}

TEST(GemmEquivalence, CdotuMatchesComplexReferenceAndBackendsAgree) {
  const simd::Ops& ref_ops = simd::ops(Backend::kScalar);
  for (std::size_t n : kSizes) {
    const auto x = random_cfloats(n, 61);
    const auto y = random_cfloats(n, 62);
    // Scalar backend vs the std::complex expression trees: bit-exact.
    cfloat expect{};
    for (std::size_t i = 0; i < n; ++i) expect += x[i] * y[i];
    float rr = 0, ri = 0;
    ref_ops.cdotu(reinterpret_cast<const float*>(x.data()),
                  reinterpret_cast<const float*>(y.data()), n, &rr, &ri);
    EXPECT_EQ(rr, expect.real()) << "n=" << n;
    EXPECT_EQ(ri, expect.imag());
    // Vector backends: lane partial sums, tolerance.
    for (Backend b : supported_backends()) {
      float vr = 0, vi = 0;
      simd::ops(b).cdotu(reinterpret_cast<const float*>(x.data()),
                         reinterpret_cast<const float*>(y.data()), n, &vr, &vi);
      const float tol = 1e-4f * static_cast<float>(n + 1);
      EXPECT_NEAR(vr, rr, tol) << simd::backend_name(b) << " n=" << n;
      EXPECT_NEAR(vi, ri, tol);
    }
  }
}

TEST(GemmEquivalence, CmacConjArrMatchesComplexReferenceAndBackendsAgree) {
  const simd::Ops& ref_ops = simd::ops(Backend::kScalar);
  for (std::size_t n : kSizes) {
    const auto a = random_cfloats(n, 63);
    const cfloat xc{0.7f, -1.3f};
    std::vector<cfloat> expect(n, cfloat{});
    for (std::size_t i = 0; i < n; ++i) expect[i] += std::conj(a[i]) * xc;
    std::vector<cfloat> got(n, cfloat{});
    ref_ops.cmac_conj_arr(reinterpret_cast<float*>(got.data()),
                          reinterpret_cast<const float*>(a.data()), xc.real(),
                          xc.imag(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(got[i].real(), expect[i].real()) << "n=" << n << " i=" << i;
      EXPECT_EQ(got[i].imag(), expect[i].imag());
    }
    for (Backend b : supported_backends()) {
      std::vector<cfloat> v(n, cfloat{});
      simd::ops(b).cmac_conj_arr(reinterpret_cast<float*>(v.data()),
                                 reinterpret_cast<const float*>(a.data()),
                                 xc.real(), xc.imag(), n);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(v[i].real(), got[i].real(), 1e-5f)
            << simd::backend_name(b) << " n=" << n;
        EXPECT_NEAR(v[i].imag(), got[i].imag(), 1e-5f);
      }
    }
  }
}

TEST(GemmEquivalence, ZmacPairBitExactAcrossBackends) {
  // zmac / zmac_conj are the QR Householder row sweeps: FMA-free on every
  // backend by contract, so the results must be bit-identical — this is
  // what keeps the QR weight solve backend-invariant.
  const simd::Ops& ref_ops = simd::ops(Backend::kScalar);
  for (std::size_t n : kSizes) {
    std::vector<double> x(2 * n), y0(2 * n);
    Rng rng(70 + n);
    for (auto& v : x) v = rng.normal();
    for (auto& v : y0) v = rng.normal();
    const double cr = 0.37, ci = -1.19;
    for (const bool conj : {false, true}) {
      std::vector<double> ref = y0;
      if (conj) {
        ref_ops.zmac_conj(ref.data(), x.data(), cr, ci, n);
      } else {
        ref_ops.zmac(ref.data(), x.data(), cr, ci, n);
      }
      // The scalar kernel itself must match the std::complex MAC trees.
      std::vector<cdouble> expect(n);
      for (std::size_t i = 0; i < n; ++i) {
        expect[i] = {y0[2 * i], y0[2 * i + 1]};
        const cdouble xi{x[2 * i], x[2 * i + 1]};
        const cdouble c = conj ? cdouble{cr, -ci} : cdouble{cr, ci};
        expect[i] += c * xi;
      }
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ref[2 * i], expect[i].real()) << "conj=" << conj;
        EXPECT_EQ(ref[2 * i + 1], expect[i].imag());
      }
      for (Backend b : supported_backends()) {
        std::vector<double> got = y0;
        if (conj) {
          simd::ops(b).zmac_conj(got.data(), x.data(), cr, ci, n);
        } else {
          simd::ops(b).zmac(got.data(), x.data(), cr, ci, n);
        }
        EXPECT_EQ(got, ref)
            << simd::backend_name(b) << " n=" << n << " conj=" << conj;
      }
    }
  }
}

TEST(GemmEquivalence, MatvecPathsMatchScalarTemplatesWithinTolerance) {
  // CMatrix<float>::matvec / matvec_herm now route through cdotu /
  // cmac_conj_arr; the double instantiation keeps the original templates.
  // Cross-check float against a double-widened reference.
  BackendGuard guard;
  const std::size_t rows = 7, cols = 13;
  linalg::CMatrix<float> a(rows, cols);
  const auto vals = random_cfloats(rows * cols, 91);
  std::copy(vals.begin(), vals.end(), a.flat().begin());
  const auto x = random_cfloats(cols, 92);
  const auto xr = random_cfloats(rows, 93);

  for (Backend b : supported_backends()) {
    simd::force_backend(b);
    std::vector<cfloat> y(rows);
    a.matvec(x, y);
    for (std::size_t i = 0; i < rows; ++i) {
      cdouble acc{};
      for (std::size_t j = 0; j < cols; ++j) {
        acc += cdouble(a(i, j)) * cdouble(x[j]);
      }
      EXPECT_NEAR(y[i].real(), acc.real(), 1e-4) << simd::backend_name(b);
      EXPECT_NEAR(y[i].imag(), acc.imag(), 1e-4);
    }
    std::vector<cfloat> yh(cols);
    a.matvec_herm(xr, yh);
    for (std::size_t j = 0; j < cols; ++j) {
      cdouble acc{};
      for (std::size_t i = 0; i < rows; ++i) {
        acc += std::conj(cdouble(a(i, j))) * cdouble(xr[i]);
      }
      EXPECT_NEAR(yh[j].real(), acc.real(), 1e-4) << simd::backend_name(b);
      EXPECT_NEAR(yh[j].imag(), acc.imag(), 1e-4);
    }
  }
}

// ------------------------------------------------------------- aligned --

TEST(AlignedVector, AllocatesToDefaultAlignment) {
  AlignedVector<float> v(1000);
  EXPECT_TRUE(is_aligned(v.data()));
  v.resize(4096);
  EXPECT_TRUE(is_aligned(v.data()));
  AlignedVector<float> w = v;
  EXPECT_TRUE(is_aligned(w.data()));
}

TEST(AlignedVector, IsAlignedChecksArbitraryBoundaries) {
  alignas(64) float buf[32];
  EXPECT_TRUE(is_aligned(buf));
  EXPECT_TRUE(is_aligned(buf, 32));
  EXPECT_FALSE(is_aligned(buf + 1, 64));
  EXPECT_TRUE(is_aligned(buf + 16, 64));
}

}  // namespace
}  // namespace pstap
