// Tests for the supervision-and-recovery subsystem: CheckpointRing
// record/replay/eviction, heartbeat-bounded crash detection with respawn
// and checkpointed CPI replay, I/O-task failover to promoted Doppler
// reads, end-to-end checksum verification of corrupted chunks, and the
// circuit-breaker replica redirect.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <set>
#include <tuple>
#include <vector>

#include "common/checkpoint.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "pfs/striped_file_system.hpp"
#include "pipeline/task_spec.hpp"
#include "pipeline/thread_runner.hpp"
#include "stap/scene.hpp"

namespace pstap {
namespace {

namespace fsys = std::filesystem;

// --------------------------------------------------------- CheckpointRing --

std::vector<std::byte> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(CheckpointRing, RecordReplayCompleteEvict) {
  ckpt::CheckpointRing ring(4);
  EXPECT_EQ(ring.watermark(), -1);

  ring.record_message(0, /*stream=*/1, /*source=*/2, bytes_of({1, 2, 3}));
  ring.record_message(1, 1, 2, bytes_of({4, 5}));

  std::vector<std::byte> out;
  EXPECT_TRUE(ring.replay_message(0, 1, 2, out));
  EXPECT_EQ(out, bytes_of({1, 2, 3}));
  EXPECT_FALSE(ring.replay_message(0, 1, 3, out));  // wrong source
  EXPECT_FALSE(ring.replay_message(0, 2, 2, out));  // wrong stream

  ring.complete(0);
  EXPECT_EQ(ring.watermark(), 0);
  EXPECT_FALSE(ring.replay_message(0, 1, 2, out)) << "evicted by complete()";
  EXPECT_TRUE(ring.replay_message(1, 1, 2, out));
  EXPECT_EQ(out, bytes_of({4, 5}));

  EXPECT_EQ(ring.messages_recorded(), 2u);
  EXPECT_EQ(ring.messages_replayed(), 2u);
  EXPECT_EQ(ring.bytes_held(), 2u);
  EXPECT_EQ(ring.peak_bytes(), 5u);
}

TEST(CheckpointRing, FirstRecordWins) {
  ckpt::CheckpointRing ring(2);
  ring.record_message(3, 7, 0, bytes_of({9}));
  ring.record_message(3, 7, 0, bytes_of({8, 8}));  // replayed re-record
  std::vector<std::byte> out;
  ASSERT_TRUE(ring.replay_message(3, 7, 0, out));
  EXPECT_EQ(out, bytes_of({9}));
  EXPECT_EQ(ring.messages_recorded(), 1u);
}

TEST(CheckpointRing, DepthGuardFailsLoudly) {
  ckpt::CheckpointRing ring(2);
  ring.record_message(0, 1, 0, bytes_of({1}));
  ring.record_message(1, 1, 0, bytes_of({1}));
  EXPECT_THROW(ring.record_message(2, 1, 0, bytes_of({1})), RuntimeError);
  ring.complete(0);
  ring.record_message(2, 1, 0, bytes_of({1}));  // room again after eviction
}

TEST(CheckpointRing, StateSnapshotKeepsLatest) {
  ckpt::CheckpointRing ring(2);
  EXPECT_EQ(ring.state_cpi(), -1);
  ring.save_state(0, bytes_of({1}));
  ring.save_state(1, bytes_of({2, 3}));
  EXPECT_EQ(ring.state_cpi(), 1);
  EXPECT_EQ(ring.state(), bytes_of({2, 3}));
}

// ----------------------------------------------- supervised pipeline runs --

using DetKey = std::tuple<std::uint64_t, std::uint32_t, std::uint32_t, std::uint32_t>;

std::set<DetKey> keys_of(const std::vector<stap::Detection>& dets, int cpi) {
  std::set<DetKey> keys;
  for (const auto& d : dets) {
    if (d.cpi == static_cast<std::uint64_t>(cpi)) {
      keys.insert({d.cpi, d.bin, d.beam, d.range});
    }
  }
  return keys;
}

class SupervisorPipelineTest : public ::testing::Test {
 protected:
  SupervisorPipelineTest() {
    root_ = fsys::temp_directory_path() /
            ("pstap_sup_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~SupervisorPipelineTest() override {
    std::error_code ec;
    fsys::remove_all(root_, ec);
  }

  pipeline::RunOptions options(const char* sub) const {
    pipeline::RunOptions opt;
    opt.cpis = 4;
    opt.warmup = 1;
    opt.seed = 77;
    opt.fs_root = root_ / sub;
    opt.scene.cnr_db = 40.0;
    opt.scene.targets = {{40, 8.0, 0.0, 18.0}, {90, 1.0, -0.35, 25.0}};
    return opt;
  }

  pipeline::RunOptions supervised(const char* sub) const {
    auto opt = options(sub);
    opt.supervise.enabled = true;
    opt.supervise.heartbeat_interval = 2e-3;
    opt.supervise.hang_timeout = 30.0;
    return opt;
  }

  static void expect_same_detections(const pipeline::RunResult& got,
                                     const pipeline::RunResult& want) {
    for (int cpi = 0; cpi < 4; ++cpi) {
      EXPECT_EQ(keys_of(got.detections, cpi), keys_of(want.detections, cpi))
          << "cpi " << cpi;
    }
    EXPECT_FALSE(keys_of(want.detections, 1).empty())
        << "baseline produced no detections; the comparison proves nothing";
  }

  static std::atomic<int> counter_;
  fsys::path root_;
};
std::atomic<int> SupervisorPipelineTest::counter_{0};

TEST_F(SupervisorPipelineTest, FaultFreeSupervisedRunMatchesUnsupervised) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, options("base"));
  const auto clean = baseline.run();

  pipeline::ThreadRunner runner(spec, supervised("sup"));
  const auto result = runner.run();

  expect_same_detections(result, clean);
  EXPECT_TRUE(result.dropped_cpis.empty());
  const auto& rec = result.metrics.recovery;
  EXPECT_EQ(rec.crashes_detected, 0u);
  EXPECT_EQ(rec.ranks_respawned, 0u);
  EXPECT_EQ(rec.io_failovers, 0u);
  EXPECT_EQ(rec.replayed_messages, 0u);
  EXPECT_GT(rec.checkpoint_peak_bytes, 0u)
      << "boundary messages should have been logged";
}

// A compute rank (easy beamform, rank 3 of the embedded layout) dies at
// the start of CPI 2 — before consuming any of that CPI's messages. The
// monitor must detect the death within the heartbeat bound and respawn
// the rank; the replacement re-receives CPI 2's inputs from the mailbox
// (which persists across rank death) to a byte-identical detection set.
TEST_F(SupervisorPipelineTest, CrashedComputeRankIsRespawnedAndReplays) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, options("cbase"));
  const auto clean = baseline.run();

  auto opt = supervised("crash");
  opt.fault_plan = std::make_shared<fault::FaultPlan>(41);
  opt.fault_plan->arm_crash("pipeline.rank.3", /*at_index=*/2);
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();

  expect_same_detections(result, clean);
  EXPECT_TRUE(result.dropped_cpis.empty());
  const auto& rec = result.metrics.recovery;
  EXPECT_EQ(rec.injected_crashes, 1u);
  EXPECT_EQ(rec.crashes_detected, 1u);
  EXPECT_EQ(rec.ranks_respawned, 1u);
  EXPECT_EQ(rec.io_failovers, 0u);
  // Dying at CPI start means nothing of CPI 2 was consumed yet: the ring
  // has nothing to replay and recovery comes entirely from the persistent
  // mailbox. The send-site test below exercises the ring-replay path.
  EXPECT_EQ(rec.replayed_messages, 0u);
  EXPECT_GE(rec.max_detection_delay, 0.0);
  // The monitor is woken by the death report itself, so detection is
  // typically sub-millisecond; 1 s absorbs any CI scheduling hiccup while
  // still proving the detection is bounded, not best-effort.
  EXPECT_LE(rec.max_detection_delay, 1.0);
}

// Same rank, but the crash fires at the send-phase start: the rank has
// consumed (and logged) all of CPI 1's inputs and sent nothing. Replay
// must rebuild the CPI entirely from the ring and send exactly once.
TEST_F(SupervisorPipelineTest, CrashAtSendPhaseReplaysFromTheRing) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, options("sbase"));
  const auto clean = baseline.run();

  auto opt = supervised("scrash");
  opt.fault_plan = std::make_shared<fault::FaultPlan>(43);
  opt.fault_plan->arm_crash("pipeline.rank.5.send", /*at_index=*/1);
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();

  expect_same_detections(result, clean);
  EXPECT_TRUE(result.dropped_cpis.empty());
  const auto& rec = result.metrics.recovery;
  EXPECT_EQ(rec.crashes_detected, 1u);
  EXPECT_EQ(rec.ranks_respawned, 1u);
  EXPECT_GT(rec.replayed_messages, 0u);
}

// The separate I/O task (rank 0 of the separate layout) dies at CPI 1.
// Instead of a respawn, the rank is abandoned and the Doppler rank
// promotes to embedded reads: it self-reads its row range for CPIs 1-3
// straight from the striped files, and the results stay identical.
TEST_F(SupervisorPipelineTest, IoTaskFailoverPromotesDopplerReads) {
  const auto p = stap::RadarParams::test_small();
  const auto spec =
      pipeline::PipelineSpec::separate_io(p, {1, 1, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, options("fbase"));
  const auto clean = baseline.run();

  auto opt = supervised("fail");
  opt.fault_plan = std::make_shared<fault::FaultPlan>(47);
  opt.fault_plan->arm_crash("pipeline.rank.0", /*at_index=*/1);
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();

  expect_same_detections(result, clean);
  EXPECT_TRUE(result.dropped_cpis.empty());
  const auto& rec = result.metrics.recovery;
  EXPECT_EQ(rec.crashes_detected, 1u);
  EXPECT_EQ(rec.io_failovers, 1u);
  EXPECT_EQ(rec.ranks_respawned, 0u);
  EXPECT_EQ(rec.promoted_reads, 3u) << "one self-read per remaining CPI";
}

// As above, but the I/O rank dies at its send phase: it has read CPI 1
// from disk and sent none of it. The Doppler rank's probe-after-failed
// protocol must conclude nothing is coming and self-read CPI 1 too.
TEST_F(SupervisorPipelineTest, IoTaskDeathAfterReadBeforeSendFailsOverCleanly) {
  const auto p = stap::RadarParams::test_small();
  const auto spec =
      pipeline::PipelineSpec::separate_io(p, {1, 1, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, options("gbase"));
  const auto clean = baseline.run();

  auto opt = supervised("gsend");
  opt.fault_plan = std::make_shared<fault::FaultPlan>(53);
  opt.fault_plan->arm_crash("pipeline.rank.0.send", /*at_index=*/1);
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();

  expect_same_detections(result, clean);
  EXPECT_TRUE(result.dropped_cpis.empty());
  const auto& rec = result.metrics.recovery;
  EXPECT_EQ(rec.io_failovers, 1u);
  EXPECT_EQ(rec.promoted_reads, 3u);
}

// -------------------------------------------------------- data integrity --

// Every injected read-side corruption must be caught by the CRC32C
// verification (never reaching CFAR output) and healed by a retried read.
TEST_F(SupervisorPipelineTest, ChecksumCatchesEveryInjectedCorruption) {
  const auto p = stap::RadarParams::test_small();
  const auto spec = pipeline::PipelineSpec::embedded_io(p, {1, 1, 1, 1, 1, 1, 1});

  pipeline::ThreadRunner baseline(spec, options("xbase"));
  const auto clean = baseline.run();

  auto opt = options("xcorrupt");
  opt.fault_plan = std::make_shared<fault::FaultPlan>(59);
  opt.fault_plan->arm_corruption("pfs.server.read", 1.0, /*max_hits=*/5);
  opt.io_retry.max_attempts = 8;
  opt.io_retry.initial_backoff = 1e-4;
  pipeline::ThreadRunner runner(spec, opt);
  const auto result = runner.run();

  EXPECT_EQ(opt.fault_plan->injected_corruptions(), 5u);
  EXPECT_EQ(result.metrics.io.injected_corruptions, 5u);
  EXPECT_EQ(result.metrics.io.corrupt_chunks, 5u)
      << "every corruption must be caught, none may pass silently";
  EXPECT_TRUE(result.dropped_cpis.empty());
  expect_same_detections(result, clean);
}

// A stripe directory that fails persistently trips the circuit breaker
// after `quarantine_threshold` consecutive chunk failures; with replicas
// configured, subsequent read attempts redirect its units to the replica
// copies in the neighbouring directory and succeed.
TEST(PfsQuarantine, BreakerRedirectsReadsToReplica) {
  const fsys::path root =
      fsys::temp_directory_path() /
      ("pstap_quar_" + std::to_string(::getpid()));
  std::error_code ec;
  fsys::remove_all(root, ec);

  pfs::PfsConfig cfg;
  cfg.name = "quar";
  cfg.stripe_factor = 2;
  cfg.stripe_unit = 256;
  cfg.replicas = 2;
  cfg.quarantine_threshold = 2;

  Rng rng(7);
  std::vector<std::byte> data(1500);
  for (auto& b : data) b = static_cast<std::byte>(rng.next_u64() & 0xFF);

  auto plan = std::make_shared<fault::FaultPlan>(61);
  {
    pfs::StripedFileSystem fs(root, cfg);
    fs.write_file("f", data);

    plan->arm_transient_error("pfs.server.read.sd000", 1.0);
    fault::FaultScope scope(plan);

    RetryPolicy policy;
    policy.max_attempts = 6;
    policy.initial_backoff = 1e-4;
    const auto got = with_retry(policy, "quarantined read",
                                [&] { return fs.read_file("f"); });
    EXPECT_EQ(got, data);
    EXPECT_TRUE(fs.engine().quarantined(0));
    EXPECT_FALSE(fs.engine().quarantined(1));
    EXPECT_EQ(fs.engine().quarantined_servers(), 1u);
  }
  EXPECT_GT(plan->injected_errors(), 0u);
  fsys::remove_all(root, ec);
}

}  // namespace
}  // namespace pstap
