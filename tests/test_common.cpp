// Unit tests for src/common: error machinery, aligned buffers, RNG
// statistics and determinism, table rendering, numeric helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/types.hpp"
#include "common/wall_clock.hpp"

namespace pstap {
namespace {

// ---------------------------------------------------------------- errors --

TEST(Error, RequireThrowsPreconditionWithContext) {
  try {
    PSTAP_REQUIRE(1 == 2, "one is not two");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, CheckThrowsRuntime) {
  EXPECT_THROW(PSTAP_CHECK(false, "broken invariant"), RuntimeError);
}

TEST(Error, FailThrowsRuntime) {
  EXPECT_THROW(PSTAP_FAIL("unconditional"), RuntimeError);
}

TEST(Error, IoFailIncludesErrno) {
  try {
    PSTAP_IO_FAIL("open failed", 2 /* ENOENT */);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("errno 2"), std::string::npos);
  }
}

TEST(Error, PassingRequireDoesNotThrow) {
  EXPECT_NO_THROW(PSTAP_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(PSTAP_CHECK(true, "fine"));
}

// ----------------------------------------------------------------- types --

TEST(Types, CeilDivAndRoundUp) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 64), 1);
  EXPECT_EQ(round_up(10, 8), 16);
  EXPECT_EQ(round_up(16, 8), 16);
}

TEST(Types, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(1024));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(Types, DbConversionsRoundTrip) {
  for (double db : {-30.0, 0.0, 3.0, 10.0, 60.0}) {
    EXPECT_NEAR(to_db(from_db(db)), db, 1e-12);
  }
}

// -------------------------------------------------------- aligned buffer --

TEST(AlignedBuffer, AllocatesAligned) {
  AlignedBuffer<cfloat> buf(1000);
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kDefaultAlignment, 0u);
}

TEST(AlignedBuffer, CustomAlignment) {
  AlignedBuffer<float> buf(16, 4096);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096, 0u);
}

TEST(AlignedBuffer, RejectsBadAlignment) {
  EXPECT_THROW(AlignedBuffer<float>(4, 48), PreconditionError);   // not pow2
  EXPECT_THROW(AlignedBuffer<double>(4, 4), PreconditionError);   // < alignof
}

TEST(AlignedBuffer, EmptyIsValid) {
  AlignedBuffer<float> buf;
  EXPECT_TRUE(buf.empty());
  AlignedBuffer<float> zero(0);
  EXPECT_TRUE(zero.empty());
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(8);
  a[0] = 42;
  int* p = a.data();
  AlignedBuffer<int> b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(b.size(), 8u);
}

TEST(AlignedBuffer, FillZeroAndIteration) {
  AlignedBuffer<float> buf(64);
  buf.fill_zero();
  for (float v : buf) EXPECT_EQ(v, 0.0f);
  EXPECT_EQ(buf.span().size(), 64u);
}

// ------------------------------------------------------------------- rng --

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng r(9);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) counts[r.uniform_index(10)]++;
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 10 - 600);
    EXPECT_LT(c, kDraws / 10 + 600);
  }
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng r(10);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, ComplexNormalPowerMatchesRequest) {
  Rng r(11);
  const int n = 100000;
  double p = 0;
  for (int i = 0; i < n; ++i) p += std::norm(r.complex_normal(4.0));
  EXPECT_NEAR(p / n, 4.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(42);
  Rng child = parent.split();
  // The child stream should not replay the parent's outputs.
  Rng parent2(42);
  (void)parent2.next_u64();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child.next_u64() == parent2.next_u64());
  EXPECT_LT(same, 2);
}

// ----------------------------------------------------------------- table --

TEST(Table, RendersHeaderAndRows) {
  TablePrinter t("demo");
  t.set_header({"task", "time", "nodes"});
  t.add_row({"doppler", TableCell(1.2345, 3), 16});
  t.add_row({"cfar", TableCell(0.5, 3), 4});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("doppler"), std::string::npos);
  EXPECT_NE(s.find("1.234"), std::string::npos);  // precision 3 -> 1.234 or 1.235
  EXPECT_NE(s.find("16"), std::string::npos);
}

TEST(Table, SeparatorAddsRule) {
  TablePrinter t;
  t.set_header({"a"});
  t.add_row({"x"});
  t.add_separator();
  t.add_row({"y"});
  const std::string s = t.to_string();
  // rules: top, under header, separator, bottom = 4 lines starting with '+'
  int rules = 0;
  std::istringstream is(s);
  std::string line;
  while (std::getline(is, line)) rules += (!line.empty() && line[0] == '+');
  EXPECT_EQ(rules, 4);
}

TEST(Table, RaggedRowsPadToWidestRow) {
  TablePrinter t;
  t.set_header({"c1", "c2"});
  t.add_row({"only-one"});
  t.add_row({"a", "b", "c"});  // wider than the header
  EXPECT_NO_THROW(t.to_string());
  EXPECT_NE(t.to_string().find('c'), std::string::npos);
}

TEST(Table, IntegerCellsRenderWithoutDecimals) {
  TableCell c(42);
  EXPECT_EQ(c.render(), "42");
}

// ----------------------------------------------------------------- clock --

TEST(WallClock, MonotonicNonDecreasing) {
  const Seconds a = monotonic_now();
  const Seconds b = monotonic_now();
  EXPECT_GE(b, a);
}

TEST(WallClock, StopWatchAccumulates) {
  Seconds total = 0;
  {
    StopWatch sw(total);
    volatile double x = 0;
    for (int i = 0; i < 100000; ++i) x = x + 1.0;
  }
  EXPECT_GT(total, 0.0);
}

TEST(WallClock, TimerResets) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  const Seconds before = t.elapsed();
  t.reset();
  EXPECT_LE(t.elapsed(), before + 1.0);
}

}  // namespace
}  // namespace pstap
