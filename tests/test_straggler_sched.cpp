// Straggler-aware adaptive I/O scheduling (DESIGN.md §12): hedged-read
// races, claim/cancel idempotence, list-I/O coalescing equivalence, queue
// stealing, and the circuit breaker's half-open probe. Runs under the
// `stress` label (TSan in CI): the hedge claim protocol is exactly the
// kind of two-writer race a sanitizer must see clean.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/retry.hpp"
#include "common/rng.hpp"
#include "pfs/straggler_scheduler.hpp"
#include "pfs/striped_file_system.hpp"

namespace pstap::pfs {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    static std::atomic<int> counter{0};
    path_ = fs::temp_directory_path() /
            ("pstap_straggler_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::vector<std::byte> pattern_bytes(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xFF);
  return v;
}

/// Scheduler-enabled replicated config tuned so tests exercise hedging
/// quickly: tiny tick/window, a low warm-up bar, and a short floor.
PfsConfig sched_cfg(std::size_t factor, std::size_t unit) {
  PfsConfig cfg;
  cfg.name = "sched-test";
  cfg.stripe_factor = factor;
  cfg.stripe_unit = unit;
  cfg.replicas = 2;
  cfg.straggler_sched = true;
  cfg.hedged_reads = true;
  cfg.deadline_min_samples = 8;
  cfg.deadline_floor = 1e-3;
  cfg.sched_tick = 2e-4;
  cfg.sched_window = 50e-3;
  return cfg;
}

/// Feed the scheduler's per-server quantile windows: read single healthy
/// stripe units (skipping `straggler_servers`, which would never qualify
/// anyway) until every healthy server has well over `deadline_min_samples`
/// service-time samples. Done back-to-back so the samples land inside one
/// sched_window and the hedge budget warms up.
void warm_quantiles(StripedFileSystem& pfs, StripedFile& f, std::size_t unit,
                    std::size_t units, std::size_t straggler_servers) {
  const std::size_t factor = pfs.config().stripe_factor;
  std::vector<std::byte> buf(unit);
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t u = 0; u < units; ++u) {
      if (u % factor < straggler_servers) continue;  // healthy units only
      f.read(static_cast<std::uint64_t>(u) * unit, buf);
    }
  }
}

// ------------------------------------------------------------ list I/O --

// With the scheduler ON, reads and writes must stay bit-exact vs. the
// plain per-chunk path — coalescing only changes the request shape.
TEST(StragglerSched, CoalescedRoundTripMatchesPerChunk) {
  TempDir tmp;
  const auto data = pattern_bytes(64 * 1024 + 123, 101);
  {
    auto cfg = sched_cfg(4, 512);
    StripedFileSystem pfs(tmp.path() / "on", cfg);
    pfs.write_file("f", data);
    EXPECT_EQ(pfs.read_file("f"), data);
  }
  {
    auto cfg = sched_cfg(4, 512);
    cfg.straggler_sched = false;
    StripedFileSystem pfs(tmp.path() / "off", cfg);
    pfs.write_file("f", data);
    EXPECT_EQ(pfs.read_file("f"), data);
  }
}

// A strided gather over many stripe units collapses into at most one job
// per (server, fd): the submit-sampled queue-depth histogram must gain
// exactly stripe_factor samples even though the gather covers 64 chunks.
TEST(StragglerSched, GatherCoalescesToOneJobPerServer) {
  TempDir tmp;
  auto cfg = sched_cfg(4, 256);
  StripedFileSystem pfs(tmp.path(), cfg);
  const auto data = pattern_bytes(256 * 64, 102);  // 64 chunks over 4 dirs
  pfs.write_file("f", data);

  const std::uint64_t writes_sampled = pfs.engine().queue_depth().count();
  StripedFile f = pfs.open("f");
  std::vector<std::byte> buf(data.size());
  std::vector<StripedFile::IoSegment> segs;
  for (std::size_t i = 0; i < 64; ++i) {  // one segment per chunk
    segs.push_back({static_cast<std::uint64_t>(i) * 256,
                    std::span<std::byte>(buf).subspan(i * 256, 256)});
  }
  IoRequest req = f.iread_gather(segs);
  req.wait();
  EXPECT_EQ(buf, data);
  // 64 chunks, 4 servers -> exactly 4 submits (one list job per server).
  EXPECT_EQ(pfs.engine().queue_depth().count() - writes_sampled, 4u);
}

// Per-chunk mode must preserve the old accounting: one job per chunk.
TEST(StragglerSched, SchedulerOffKeepsPerChunkJobs) {
  TempDir tmp;
  auto cfg = sched_cfg(4, 256);
  cfg.straggler_sched = false;
  StripedFileSystem pfs(tmp.path(), cfg);
  const auto data = pattern_bytes(256 * 16, 103);
  pfs.write_file("f", data);
  const std::uint64_t before = pfs.engine().queue_depth().count();
  EXPECT_EQ(pfs.read_file("f"), data);
  EXPECT_EQ(pfs.engine().queue_depth().count() - before, 16u);
}

// The PSTAP_STRAGGLER_SCHED environment variable overrides the config
// flag in both directions at mount time.
TEST(StragglerSched, EnvOverrideControlsScheduler) {
  PfsConfig cfg;
  cfg.straggler_sched = false;
  ::setenv("PSTAP_STRAGGLER_SCHED", "1", 1);
  apply_env_overrides(cfg);
  EXPECT_TRUE(cfg.straggler_sched);
  ::setenv("PSTAP_STRAGGLER_SCHED", "0", 1);
  apply_env_overrides(cfg);
  EXPECT_FALSE(cfg.straggler_sched);
  cfg.straggler_sched = true;
  ::setenv("PSTAP_STRAGGLER_SCHED", "off", 1);
  apply_env_overrides(cfg);
  EXPECT_FALSE(cfg.straggler_sched);
  ::unsetenv("PSTAP_STRAGGLER_SCHED");
  cfg.straggler_sched = true;
  apply_env_overrides(cfg);  // unset -> leaves the config flag alone
  EXPECT_TRUE(cfg.straggler_sched);
}

// --------------------------------------------------------- hedged reads --

// Drive a straggler (server 0 modeled 20x slower) hard enough that the
// warmed scheduler hedges: reads must complete correctly, the winner must
// be unique per chunk, and losers must not double-count serviced bytes.
TEST(StragglerSched, HedgedReadsRecoverFromStragglerAndCountOnce) {
  TempDir tmp;
  auto cfg = sched_cfg(4, 1024);
  cfg.server_bandwidth = 4.0 * MiB;
  cfg.server_latency = 200e-6;
  cfg.straggler_servers = 1;
  cfg.straggler_slowdown = 20.0;
  StripedFileSystem pfs(tmp.path(), cfg);
  const auto data = pattern_bytes(1024 * 64, 104);
  pfs.write_file("f", data);

  StripedFile f = pfs.open("f");
  const std::uint64_t bytes_before = pfs.engine().bytes_serviced();
  std::uint64_t logical = 0;
  // Warm-up reads are serviced exactly once each too, so they simply add
  // to the expected byte total: 3 passes over the 48 healthy units.
  warm_quantiles(pfs, f, 1024, 64, /*straggler_servers=*/1);
  logical += 3 * 48 * 1024;
  for (int round = 0; round < 8; ++round) {
    std::vector<std::byte> buf(data.size());
    f.read(0, buf);
    ASSERT_EQ(buf, data) << "round " << round;
    logical += buf.size();
  }
  // Exactly-once accounting: serviced bytes grow by the logical bytes
  // read — hedge losers must not add theirs, and none may be lost.
  EXPECT_EQ(pfs.engine().bytes_serviced() - bytes_before, logical);
  EXPECT_GT(pfs.engine().hedges_launched(), 0u)
      << "a 20x straggler must blow through the quantile deadline";
  EXPECT_GT(pfs.engine().hedge_wins(), 0u)
      << "the replica read must beat a 20x-slowed original";
  EXPECT_GE(pfs.engine().deadline_expired(), pfs.engine().hedges_launched());
  EXPECT_EQ(pfs.engine().corrupt_chunks(), 0u);
}

// wait() stays idempotent when hedges are in flight: double wait and
// polling after completion, with late losers still draining.
TEST(StragglerSched, WaitIsIdempotentWithHedgesInFlight) {
  TempDir tmp;
  auto cfg = sched_cfg(2, 512);
  cfg.server_bandwidth = 2.0 * MiB;
  cfg.server_latency = 100e-6;
  cfg.straggler_servers = 1;
  cfg.straggler_slowdown = 16.0;
  StripedFileSystem pfs(tmp.path(), cfg);
  const auto data = pattern_bytes(512 * 32, 105);
  pfs.write_file("f", data);
  StripedFile f = pfs.open("f");
  warm_quantiles(pfs, f, 512, 32, /*straggler_servers=*/1);
  for (int round = 0; round < 6; ++round) {
    std::vector<std::byte> buf(data.size());
    IoRequest req = f.iread(0, buf);
    req.wait();
    EXPECT_NO_THROW(req.wait());
    EXPECT_TRUE(req.done());
    EXPECT_EQ(req.failed_chunks(), 0u);
    EXPECT_EQ(buf, data);
  }
}

// Concurrent readers racing hedged chunks: every reader sees its own
// correct bytes (the claim protocol means a loser can never scribble into
// anyone's user buffer). The heavy sample traffic also warms the budget
// without an explicit warm-up.
TEST(StragglerSched, ConcurrentHedgedReadersSeeCorrectBytes) {
  TempDir tmp;
  auto cfg = sched_cfg(4, 512);
  cfg.server_bandwidth = 8.0 * MiB;
  cfg.server_latency = 100e-6;
  cfg.straggler_servers = 1;
  cfg.straggler_slowdown = 12.0;
  StripedFileSystem pfs(tmp.path(), cfg);
  const auto data = pattern_bytes(512 * 48, 106);
  pfs.write_file("f", data);

  constexpr int kThreads = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kThreads; ++t) {
    readers.emplace_back([&] {
      StripedFile f = pfs.open("f");
      for (int round = 0; round < 6; ++round) {
        std::vector<std::byte> buf(data.size());
        f.read(0, buf);
        if (buf != data) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : readers) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(pfs.engine().corrupt_chunks(), 0u);
}

// Fault-injected delay on one server (instead of modeled slowdown):
// whatever the scheduler does — hedge, steal, or nothing while still
// cold — the data must stay clean while a delayed twin eventually
// services into scratch.
TEST(StragglerSched, HedgeRacesInjectedDelayWinnerTakesChunk) {
  TempDir tmp;
  auto cfg = sched_cfg(2, 512);
  cfg.server_bandwidth = 8.0 * MiB;
  cfg.server_latency = 100e-6;
  StripedFileSystem pfs(tmp.path(), cfg);
  const auto data = pattern_bytes(512 * 16, 107);
  pfs.write_file("f", data);

  auto plan = std::make_shared<fault::FaultPlan>(71);
  plan->arm_delay("pfs.server.read.sd000", 0.5, 5e-3, 10e-3);
  fault::FaultScope scope(plan);

  StripedFile f = pfs.open("f");
  warm_quantiles(pfs, f, 512, 16, /*straggler_servers=*/1);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::byte> buf(data.size());
    f.read(0, buf);
    ASSERT_EQ(buf, data) << "round " << round;
  }
  EXPECT_EQ(pfs.engine().corrupt_chunks(), 0u);
}

// ------------------------------------------------------ queue stealing --

// A quarantined server's queued (unserviced) read jobs are eligible for
// stealing to the replica server instead of waiting behind the breaker.
// Steals are timing-dependent (a job must be caught while queued), so the
// test asserts correctness under the combination, not a steal minimum.
TEST(StragglerSched, QuarantinedServerReadsStayCorrect) {
  TempDir tmp;
  auto cfg = sched_cfg(2, 512);
  cfg.quarantine_threshold = 2;
  cfg.server_bandwidth = 2.0 * MiB;  // slow service: jobs linger queued
  cfg.server_latency = 500e-6;
  StripedFileSystem pfs(tmp.path(), cfg);
  const auto data = pattern_bytes(512 * 24, 108);
  pfs.write_file("f", data);

  auto plan = std::make_shared<fault::FaultPlan>(73);
  plan->arm_transient_error("pfs.server.read.sd000", 1.0, /*max_hits=*/4);
  fault::FaultScope scope(plan);

  StripedFile f = pfs.open("f");
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = 1e-4;
  for (int round = 0; round < 6; ++round) {
    std::vector<std::byte> buf(data.size());
    with_retry(policy, "straggler read", [&] { f.read(0, buf); });
    ASSERT_EQ(buf, data);
  }
  EXPECT_GT(pfs.engine().quarantined_servers(), 0u);
}

// ------------------------------------------------- breaker half-open --

// With a probe interval, a quarantined server that recovered rejoins: the
// first read after the interval probes it, closes the breaker, and bumps
// breaker_reopened.
TEST(StragglerBreaker, HalfOpenProbeReadmitsRecoveredServer) {
  TempDir tmp;
  PfsConfig cfg;
  cfg.name = "probe";
  cfg.stripe_factor = 2;
  cfg.stripe_unit = 256;
  cfg.replicas = 2;
  cfg.quarantine_threshold = 2;
  cfg.breaker_probe_interval = 100e-3;
  StripedFileSystem pfs(tmp.path(), cfg);
  const auto data = pattern_bytes(1500, 109);
  pfs.write_file("f", data);

  auto plan = std::make_shared<fault::FaultPlan>(79);
  // sd000 serves 3 of the 6 chunks; all 3 fail once, then the "server"
  // is healthy again (hit budget exhausted).
  plan->arm_transient_error("pfs.server.read.sd000", 1.0, /*max_hits=*/3);
  fault::FaultScope scope(plan);

  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = 1e-4;
  EXPECT_EQ(with_retry(policy, "read", [&] { return pfs.read_file("f"); }),
            data);
  EXPECT_TRUE(pfs.engine().quarantined(0));
  EXPECT_EQ(pfs.engine().breaker_reopened(), 0u);

  // Probe interval elapses -> quarantined() decays to half-open and admits
  // the next read as the probe; the fault budget is spent, so the probe
  // succeeds and the breaker closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(pfs.engine().quarantined(0)) << "probe window must admit traffic";
  EXPECT_EQ(pfs.read_file("f"), data);
  EXPECT_EQ(pfs.engine().breaker_reopened(), 1u);
  EXPECT_FALSE(pfs.engine().quarantined(0));
}

TEST(StragglerBreaker, FailedProbeReopensBreaker) {
  TempDir tmp;
  PfsConfig cfg;
  cfg.name = "probe-fail";
  cfg.stripe_factor = 2;
  cfg.stripe_unit = 256;
  cfg.replicas = 2;
  cfg.quarantine_threshold = 2;
  cfg.breaker_probe_interval = 60e-3;
  StripedFileSystem pfs(tmp.path(), cfg);
  const auto data = pattern_bytes(1200, 110);
  pfs.write_file("f", data);

  auto plan = std::make_shared<fault::FaultPlan>(83);
  plan->arm_transient_error("pfs.server.read.sd000", 1.0);  // never recovers
  fault::FaultScope scope(plan);

  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = 1e-4;
  EXPECT_EQ(with_retry(policy, "read", [&] { return pfs.read_file("f"); }),
            data);
  EXPECT_TRUE(pfs.engine().quarantined(0));

  std::this_thread::sleep_for(std::chrono::milliseconds(70));
  EXPECT_FALSE(pfs.engine().quarantined(0));  // half-open: probe admitted
  // The probe read fails (fault still armed) and re-opens the breaker; the
  // retry path then redirects to the replica as before.
  EXPECT_EQ(with_retry(policy, "probe read",
                       [&] { return pfs.read_file("f"); }),
            data);
  EXPECT_EQ(pfs.engine().breaker_reopened(), 0u);
  EXPECT_TRUE(pfs.engine().quarantined(0));
}

// --------------------------------------------- deadline-aware timeouts --

TEST(DeadlineRetry, EffectiveTimeoutAdaptsToQuantiles) {
  RetryPolicy policy;
  policy.attempt_timeout = 5.0;
  policy.deadline_multiplier = 3.0;
  policy.deadline_quantile = 0.99;
  policy.deadline_floor = 10e-3;
  policy.deadline_min_samples = 4;

  obs::Histogram h;
  // Cold: falls back to the fixed timeout.
  EXPECT_DOUBLE_EQ(effective_attempt_timeout(policy, &h), 5.0);
  EXPECT_DOUBLE_EQ(effective_attempt_timeout(policy, nullptr), 5.0);

  for (int i = 0; i < 100; ++i) h.record(1e-3);
  const Seconds t = effective_attempt_timeout(policy, &h);
  EXPECT_GE(t, policy.deadline_floor);  // floored
  EXPECT_LT(t, 5.0);                    // tightened well below the fixed bound

  // The adaptive bound never loosens an explicit tight timeout.
  policy.attempt_timeout = 1e-3;
  EXPECT_DOUBLE_EQ(effective_attempt_timeout(policy, &h), 1e-3);

  // Opt-out: multiplier 0 keeps the fixed semantics exactly.
  policy.deadline_multiplier = 0;
  policy.attempt_timeout = 0;
  EXPECT_DOUBLE_EQ(effective_attempt_timeout(policy, &h), 0.0);
}

}  // namespace
}  // namespace pstap::pfs
