// Tests for the mp message-passing runtime: point-to-point semantics
// (ordering, tag/source matching, wildcards), nonblocking requests,
// collectives, communicator splitting/subgrouping, and stress patterns
// mirroring the pipeline's communication (pairwise exchange, fan-in/out).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mp/comm.hpp"
#include "mp/world.hpp"
#include "obs/metrics.hpp"

namespace pstap::mp {
namespace {

// ------------------------------------------------------------------ p2p --

TEST(Mp, SingleRankWorldRuns) {
  World world(1);
  std::atomic<int> ran{0};
  world.run([&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ran++;
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(Mp, PingPongValue) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 7, 42);
      EXPECT_EQ(comm.recv_value<int>(1, 8), 43);
    } else {
      const int v = comm.recv_value<int>(0, 7);
      comm.send_value(0, 8, v + 1);
    }
  });
}

TEST(Mp, SendToSelfIsBuffered) {
  World world(1);
  world.run([](Comm& comm) {
    comm.send_value(0, 3, 99.5);
    EXPECT_DOUBLE_EQ(comm.recv_value<double>(0, 3), 99.5);
  });
}

TEST(Mp, VectorPayloadRoundTrip) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<float> data(1000);
      std::iota(data.begin(), data.end(), 0.0f);
      comm.send<float>(1, 0, data);
    } else {
      const auto got = comm.recv_vector<float>(0, 0);
      ASSERT_EQ(got.size(), 1000u);
      EXPECT_FLOAT_EQ(got[999], 999.0f);
    }
  });
}

TEST(Mp, PerSourceTagOrderIsFifo) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 100; ++i) comm.send_value(1, 5, i);
    } else {
      for (int i = 0; i < 100; ++i) EXPECT_EQ(comm.recv_value<int>(0, 5), i);
    }
  });
}

TEST(Mp, TagMatchingSelectsOutOfOrder) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, /*tag=*/1, 100);
      comm.send_value(1, /*tag=*/2, 200);
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 200);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 100);
    }
  });
}

TEST(Mp, AnySourceReportsActualSource) {
  World world(3);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      int seen_mask = 0;
      for (int i = 0; i < 2; ++i) {
        RecvInfo info;
        const int v = comm.recv_value<int>(kAnySource, 9, &info);
        EXPECT_EQ(v, info.source * 10);
        seen_mask |= 1 << info.source;
      }
      EXPECT_EQ(seen_mask, 0b110);
    } else {
      comm.send_value(0, 9, comm.rank() * 10);
    }
  });
}

TEST(Mp, AnyTagReceivesBoth) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 11, 1);
      comm.send_value(1, 22, 2);
    } else {
      RecvInfo a, b;
      (void)comm.recv_value<int>(0, kAnyTag, &a);
      (void)comm.recv_value<int>(0, kAnyTag, &b);
      EXPECT_EQ(a.tag + b.tag, 33);
    }
  });
}

TEST(Mp, RecvInfoReportsByteCount) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> d(17);
      comm.send<double>(1, 0, d);
    } else {
      RecvInfo info;
      (void)comm.recv_vector<double>(0, 0, &info);
      EXPECT_EQ(info.bytes, 17 * sizeof(double));
    }
  });
}

TEST(Mp, EmptyMessageIsDeliverable) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send<int>(1, 0, std::span<const int>{});
    } else {
      const auto got = comm.recv_vector<int>(0, 0);
      EXPECT_TRUE(got.empty());
    }
  });
}

// ----------------------------------------------------------- error paths --

TEST(Mp, RejectsNegativeUserTag) {
  World world(1);
  world.run([](Comm& comm) {
    EXPECT_THROW(comm.send_value(0, -5, 1), PreconditionError);
  });
}

TEST(Mp, RejectsOutOfRangeDest) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.send_value(2, 0, 1), PreconditionError);
      EXPECT_THROW(comm.send_value(-1, 0, 1), PreconditionError);
    }
  });
}

TEST(Mp, RecvSizeMismatchThrows) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> three(3);
      comm.send<int>(1, 0, three);
    } else {
      std::vector<int> two(2);
      EXPECT_THROW(comm.recv<int>(0, 0, two), PreconditionError);
    }
  });
}

TEST(Mp, WorldRejectsZeroSize) { EXPECT_THROW(World(0), PreconditionError); }

TEST(Mp, RankExceptionPropagatesFromRun) {
  World world(1);
  EXPECT_THROW(world.run([](Comm&) { PSTAP_FAIL("rank blew up"); }), RuntimeError);
}

// ------------------------------------------------------------ nonblocking --

TEST(Mp, IsendCompletesImmediately) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data{1, 2, 3};
      Request req = comm.isend<int>(1, 0, data);
      EXPECT_TRUE(req.test());
      req.wait();
    } else {
      EXPECT_EQ(comm.recv_vector<int>(0, 0).size(), 3u);
    }
  });
}

TEST(Mp, IrecvWaitDeliversPayload) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> data{5, 6};
      comm.send<int>(1, 4, data);
    } else {
      std::vector<int> out;
      Request req = comm.irecv<int>(0, 4, &out);
      req.wait();
      ASSERT_EQ(out.size(), 2u);
      EXPECT_EQ(out[1], 6);
    }
  });
}

TEST(Mp, IrecvTestPollsWithoutBlocking) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier();  // ensure rank 1 polled at least once before send
      comm.send_value(1, 4, 7);
    } else {
      std::vector<int> out;
      Request req = comm.irecv<int>(0, 4, &out);
      EXPECT_FALSE(req.test());  // nothing sent yet
      comm.barrier();
      req.wait();
      ASSERT_EQ(out.size(), 1u);
      EXPECT_EQ(out[0], 7);
      EXPECT_TRUE(req.test());
    }
  });
}

TEST(Mp, ProbeSeesPendingMessage) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<char> payload(123);
      comm.send<char>(1, 6, payload);
      comm.barrier();
    } else {
      comm.barrier();
      const auto n = comm.probe(0, 6);
      ASSERT_TRUE(n.has_value());
      EXPECT_EQ(*n, 123u);
      // Probe does not consume.
      EXPECT_EQ(comm.recv_vector<char>(0, 6).size(), 123u);
    }
  });
}

TEST(Mp, ProbeWaitBlocksUntilArrival) {
  World world(2);
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<char> payload(55);
      comm.send<char>(1, 6, payload);
    } else {
      EXPECT_EQ(comm.probe_wait(0, 6), 55u);
      (void)comm.recv_vector<char>(0, 6);
    }
  });
}

TEST(Mp, ProbeReturnsNulloptWhenEmpty) {
  World world(1);
  world.run([](Comm& comm) { EXPECT_FALSE(comm.probe(0, 0).has_value()); });
}

// ------------------------------------------------------------ collectives --

class MpCollectives : public ::testing::TestWithParam<int> {};

TEST_P(MpCollectives, BarrierCompletes) {
  World world(GetParam());
  world.run([](Comm& comm) {
    for (int i = 0; i < 5; ++i) comm.barrier();
  });
}

TEST_P(MpCollectives, BcastFromEachRoot) {
  const int n = GetParam();
  World world(n);
  world.run([n](Comm& comm) {
    for (int root = 0; root < n; ++root) {
      std::vector<int> data(4, comm.rank() == root ? root * 100 : -1);
      comm.bcast(std::span<int>(data), root);
      for (int v : data) EXPECT_EQ(v, root * 100);
    }
  });
}

TEST_P(MpCollectives, ReduceSumMatchesClosedForm) {
  const int n = GetParam();
  World world(n);
  world.run([n](Comm& comm) {
    std::vector<double> in{double(comm.rank()), 1.0};
    std::vector<double> out(2, 0.0);
    comm.reduce_sum<double>(in, out, 0);
    if (comm.rank() == 0) {
      EXPECT_DOUBLE_EQ(out[0], n * (n - 1) / 2.0);
      EXPECT_DOUBLE_EQ(out[1], double(n));
    }
  });
}

TEST_P(MpCollectives, AllreduceDeliversEverywhere) {
  const int n = GetParam();
  World world(n);
  world.run([n](Comm& comm) {
    const double in = double(comm.rank() + 1);
    double out = 0;
    comm.allreduce_sum<double>({&in, 1}, {&out, 1});
    EXPECT_DOUBLE_EQ(out, n * (n + 1) / 2.0);
  });
}

TEST_P(MpCollectives, GatherConcatenatesInRankOrder) {
  const int n = GetParam();
  World world(n);
  world.run([n](Comm& comm) {
    // Rank r contributes r+1 copies of r — exercises ragged gathers.
    std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1), comm.rank());
    const auto all = comm.gather<int>(mine, n - 1);
    if (comm.rank() == n - 1) {
      std::vector<int> expect;
      for (int r = 0; r < n; ++r)
        for (int k = 0; k <= r; ++k) expect.push_back(r);
      EXPECT_EQ(all, expect);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(MpCollectives, AllgatherSameEverywhere) {
  const int n = GetParam();
  World world(n);
  world.run([n](Comm& comm) {
    const int mine = comm.rank() * comm.rank();
    const auto all = comm.allgather<int>({&mine, 1});
    ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * r);
  });
}

TEST_P(MpCollectives, ScatterDistributesChunks) {
  const int n = GetParam();
  World world(n);
  world.run([n](Comm& comm) {
    std::vector<int> in;
    if (comm.rank() == 0) {
      in.resize(static_cast<std::size_t>(3 * n));
      std::iota(in.begin(), in.end(), 0);
    }
    std::vector<int> out(3);
    comm.scatter<int>(in, out, 0);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], comm.rank() * 3 + i);
  });
}

TEST_P(MpCollectives, BackToBackCollectivesDoNotCrosstalk) {
  const int n = GetParam();
  World world(n);
  world.run([](Comm& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      double v = 1.0, out = 0.0;
      comm.allreduce_sum<double>({&v, 1}, {&out, 1});
      EXPECT_DOUBLE_EQ(out, double(comm.size()));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, MpCollectives, ::testing::Values(1, 2, 3, 4, 7, 8));

// ------------------------------------------------------- split / subgroup --

TEST(Mp, SplitByParityFormsTwoComms) {
  World world(6);
  world.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 2, comm.rank());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), comm.rank() / 2);
    // Sum of world ranks within the sub-communicator.
    const double mine = comm.rank();
    double sum = 0;
    sub.allreduce_sum<double>({&mine, 1}, {&sum, 1});
    EXPECT_DOUBLE_EQ(sum, comm.rank() % 2 == 0 ? 0 + 2 + 4 : 1 + 3 + 5);
  });
}

TEST(Mp, SplitKeyControlsOrdering) {
  World world(4);
  world.run([](Comm& comm) {
    // Reverse ordering via descending keys.
    Comm sub = comm.split(0, -comm.rank());
    EXPECT_EQ(sub.rank(), comm.size() - 1 - comm.rank());
  });
}

TEST(Mp, SplitIsolatesMessageContexts) {
  World world(4);
  world.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() / 2, comm.rank());
    // Same (source-in-sub, tag) in both subgroups; no cross delivery.
    if (sub.rank() == 0) {
      sub.send_value(1, 0, comm.rank());
    } else {
      const int v = sub.recv_value<int>(0, 0);
      EXPECT_EQ(v, comm.rank() - 1);  // partner is world rank - 1
    }
  });
}

TEST(Mp, NestedSplitWorks) {
  World world(8);
  world.run([](Comm& comm) {
    Comm half = comm.split(comm.rank() / 4, comm.rank());
    Comm quarter = half.split(half.rank() / 2, half.rank());
    EXPECT_EQ(quarter.size(), 2);
    double one = 1.0, sum = 0.0;
    quarter.allreduce_sum<double>({&one, 1}, {&sum, 1});
    EXPECT_DOUBLE_EQ(sum, 2.0);
  });
}

TEST(Mp, SubgroupSelectsListedRanks) {
  World world(5);
  world.run([](Comm& comm) {
    const std::vector<int> picks{4, 1, 3};
    Comm sub = comm.subgroup(picks);
    const bool member = comm.rank() == 4 || comm.rank() == 1 || comm.rank() == 3;
    EXPECT_EQ(sub.is_member(), member);
    if (member) {
      EXPECT_EQ(sub.size(), 3);
      // Rank order follows the list: 4 -> 0, 1 -> 1, 3 -> 2.
      const int expected = comm.rank() == 4 ? 0 : comm.rank() == 1 ? 1 : 2;
      EXPECT_EQ(sub.rank(), expected);
      double one = 1.0, sum = 0.0;
      sub.allreduce_sum<double>({&one, 1}, {&sum, 1});
      EXPECT_DOUBLE_EQ(sum, 3.0);
    }
  });
}

TEST(Mp, NonMemberHandleRejectsTraffic) {
  World world(3);
  world.run([](Comm& comm) {
    const std::vector<int> picks{0};
    Comm sub = comm.subgroup(picks);
    if (comm.rank() != 0) {
      EXPECT_THROW(sub.send_value(0, 0, 1), PreconditionError);
    }
  });
}

TEST(Mp, DisjointSubgroupsExchangeIndependently) {
  World world(4);
  world.run([](Comm& comm) {
    const std::vector<int> a{0, 1}, b{2, 3};
    Comm ca = comm.subgroup(a);
    Comm cb = comm.subgroup(b);
    Comm& mine = comm.rank() < 2 ? ca : cb;
    if (mine.rank() == 0) {
      mine.send_value(1, 0, comm.rank());
    } else {
      EXPECT_EQ(mine.recv_value<int>(0, 0), comm.rank() - 1);
    }
  });
}

// ---------------------------------------------------------------- stress --

TEST(Mp, ManyToOneFanInUnderLoad) {
  const int n = 8;
  World world(n);
  world.run([n](Comm& comm) {
    const int kMsgs = 50;
    if (comm.rank() == 0) {
      long total = 0;
      for (int i = 0; i < (n - 1) * kMsgs; ++i) {
        total += comm.recv_value<int>(kAnySource, 0);
      }
      long expect = 0;
      for (int r = 1; r < n; ++r) expect += long(r) * kMsgs;
      EXPECT_EQ(total, expect);
    } else {
      for (int i = 0; i < kMsgs; ++i) comm.send_value(0, 0, comm.rank());
    }
  });
}

TEST(Mp, PairwiseExchangeMatchesPipelinePattern) {
  // The redistribution pattern between pipeline stages: every rank of group
  // A sends a slice to every rank of group B.
  const int n = 6;  // 3 senders, 3 receivers
  World world(n);
  world.run([](Comm& comm) {
    const int half = comm.size() / 2;
    if (comm.rank() < half) {
      for (int d = 0; d < half; ++d) {
        std::vector<int> slice{comm.rank(), d};
        comm.send<int>(half + d, comm.rank(), slice);
      }
    } else {
      for (int s = 0; s < half; ++s) {
        const auto slice = comm.recv_vector<int>(s, s);
        ASSERT_EQ(slice.size(), 2u);
        EXPECT_EQ(slice[0], s);
        EXPECT_EQ(slice[1], comm.rank() - half);
      }
    }
  });
}

TEST(Mp, RandomizedMessageSizesFuzz) {
  // Deterministic fuzz: every rank sends randomly sized tagged messages to
  // random peers; every byte must arrive intact. Senders and receivers
  // derive the same schedule from the same seeds.
  const int n = 5;
  const int kRounds = 40;
  World world(n);
  world.run([n](Comm& comm) {
    // Phase 1: everyone computes the full traffic matrix deterministically.
    struct Msg {
      int src, dest, tag;
      std::size_t len;
      std::uint64_t seed;
    };
    std::vector<Msg> all;
    Rng rng(0xF00D);
    for (int round = 0; round < kRounds; ++round) {
      for (int src = 0; src < n; ++src) {
        Msg m;
        m.src = src;
        m.dest = static_cast<int>(rng.uniform_index(static_cast<std::uint64_t>(n)));
        m.tag = static_cast<int>(rng.uniform_index(7));
        m.len = static_cast<std::size_t>(rng.uniform_index(2000));
        m.seed = rng.next_u64();
        all.push_back(m);
      }
    }
    auto payload_of = [](const Msg& m) {
      Rng r(m.seed);
      std::vector<std::uint8_t> v(m.len);
      for (auto& b : v) b = static_cast<std::uint8_t>(r.next_u64());
      return v;
    };
    // Phase 2: send mine.
    for (const Msg& m : all) {
      if (m.src == comm.rank()) comm.send<std::uint8_t>(m.dest, m.tag, payload_of(m));
    }
    // Phase 3: receive everything destined to me, in per-(src,tag) order.
    for (const Msg& m : all) {
      if (m.dest != comm.rank()) continue;
      const auto got = comm.recv_vector<std::uint8_t>(m.src, m.tag);
      const auto expect = payload_of(m);
      ASSERT_EQ(got, expect) << "src " << m.src << " tag " << m.tag;
    }
  });
}

TEST(Mp, CollectivesInterleavedWithP2P) {
  const int n = 6;
  World world(n);
  world.run([n](Comm& comm) {
    for (int iter = 0; iter < 10; ++iter) {
      // p2p ring traffic...
      const int next = (comm.rank() + 1) % n;
      const int prev = (comm.rank() + n - 1) % n;
      comm.send_value(next, 3, comm.rank() * 1000 + iter);
      // ...interleaved with collectives on the same communicator.
      double one = 1.0, sum = 0.0;
      comm.allreduce_sum<double>({&one, 1}, {&sum, 1});
      EXPECT_DOUBLE_EQ(sum, double(n));
      EXPECT_EQ(comm.recv_value<int>(prev, 3), prev * 1000 + iter);
      comm.barrier();
    }
  });
}

TEST(Mp, SplitCommsRunConcurrentCollectives) {
  const int n = 8;
  World world(n);
  world.run([](Comm& comm) {
    Comm sub = comm.split(comm.rank() % 4, comm.rank());  // 4 comms of 2
    for (int iter = 0; iter < 20; ++iter) {
      const double mine = comm.rank();
      double sum = 0;
      sub.allreduce_sum<double>({&mine, 1}, {&sum, 1});
      EXPECT_DOUBLE_EQ(sum, double(comm.rank() % 4) * 2 + 4);  // r + (r+4)
    }
  });
}

TEST(Mp, LargePayloadSurvives) {
  World world(2);
  world.run([](Comm& comm) {
    const std::size_t n = 1 << 21;  // 2M floats = 8 MB
    if (comm.rank() == 0) {
      std::vector<float> big(n);
      for (std::size_t i = 0; i < n; ++i) big[i] = static_cast<float>(i % 997);
      comm.send<float>(1, 0, big);
    } else {
      const auto got = comm.recv_vector<float>(0, 0);
      ASSERT_EQ(got.size(), n);
      EXPECT_FLOAT_EQ(got[12345], static_cast<float>(12345 % 997));
      EXPECT_FLOAT_EQ(got[n - 1], static_cast<float>((n - 1) % 997));
    }
  });
}

TEST(Mp, MailboxDepthDrainsToZero) {
  World world(2);
  world.run([&world](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 32; ++i) comm.send_value(1, 0, i);
    } else {
      for (int i = 0; i < 32; ++i) (void)comm.recv_value<int>(0, 0);
      EXPECT_EQ(world.mailbox(1).depth(), 0u);
    }
  });
}

TEST(Mp, RepeatedRunsOnSameWorld) {
  World world(3);
  for (int iter = 0; iter < 3; ++iter) {
    world.run([](Comm& comm) {
      double one = 1.0, sum = 0.0;
      comm.allreduce_sum<double>({&one, 1}, {&sum, 1});
      EXPECT_DOUBLE_EQ(sum, 3.0);
    });
  }
}

// ---------------------------------------------------------- close/reopen --

// Closing the mailboxes must wake every blocked receiver with
// MailboxClosed (the supervisor's abort path relies on this to unwind a
// wedged world instead of hanging), while envelopes queued before the
// close still drain normally.
TEST(Mp, CloseWakesAllBlockedReceivers) {
  World world(4);
  std::atomic<int> woken{0};
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      // Nobody ever sends tag 9: ranks 1-3 block until the close.
      comm.send_value(1, 7, 42);  // queued pre-close; must still drain
      world.close_all_mailboxes();
      return;
    }
    if (comm.rank() == 1) {
      EXPECT_EQ(comm.recv_value<int>(0, 7), 42) << "queued envelope lost";
    }
    EXPECT_THROW((void)comm.recv_value<int>(0, /*tag=*/9), MailboxClosed);
    woken++;
  });
  EXPECT_EQ(woken.load(), 3);
  world.reopen_all_mailboxes();
}

TEST(Mp, ReopenRestoresBlockingReceives) {
  World world(2);
  world.run([&world](Comm& comm) {
    if (comm.rank() == 0) world.close_all_mailboxes();
  });
  world.reopen_all_mailboxes();
  world.run([](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 3, 5);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 3), 5);
    }
  });
}

// -------------------------------------------------------------- pinned --

#if defined(__linux__)
TEST(MpPinned, RanksRunOnTheirAssignedCpus) {
  WorldOptions opts;
  opts.pin_threads = true;
  World world(2, opts);
  std::vector<int> observed(2, -1);
  world.run([&](Comm& comm) {
    observed[static_cast<std::size_t>(comm.rank())] = sched_getcpu();
    // Ranks still communicate normally while pinned.
    if (comm.rank() == 0) {
      comm.send_value(1, 1, 11);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 1), 11);
    }
  });
  const unsigned hc = std::thread::hardware_concurrency();
  EXPECT_EQ(world.pinned_ranks(), 2);
  EXPECT_EQ(obs::Registry::global().gauge("mp.pinned_ranks").value(), 2);
  for (int r = 0; r < 2; ++r) {
    ASSERT_GE(observed[static_cast<std::size_t>(r)], 0);
    // Rank r is pinned to cpu r % hc (default cpu_set is all cpus).
    EXPECT_EQ(observed[static_cast<std::size_t>(r)],
              static_cast<int>(static_cast<unsigned>(r) % hc));
  }
}

TEST(MpPinned, ExplicitCpuSetWrapsRoundRobin) {
  WorldOptions opts;
  opts.pin_threads = true;
  opts.cpu_set = {0};
  World world(3, opts);  // oversubscribed on purpose: 3 ranks, 1 cpu
  std::vector<int> observed(3, -1);
  world.run([&](Comm& comm) {
    observed[static_cast<std::size_t>(comm.rank())] = sched_getcpu();
  });
  EXPECT_EQ(world.pinned_ranks(), 3);
  for (int c : observed) EXPECT_EQ(c, 0);
}

TEST(MpPinned, InvalidCpuDegradesToUnpinnedRun) {
  WorldOptions opts;
  opts.pin_threads = true;
  opts.cpu_set = {9999999};  // beyond any real machine (and CPU_SETSIZE)
  World world(2, opts);
  std::atomic<int> ran{0};
  // The run must complete normally; the bad cpu only costs the pinning.
  world.run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 2, 7);
    } else {
      EXPECT_EQ(comm.recv_value<int>(0, 2), 7);
    }
    ran++;
  });
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(world.pinned_ranks(), 0);
  EXPECT_EQ(obs::Registry::global().gauge("mp.pinned_ranks").value(), 0);
}
#endif  // __linux__

TEST(MpPinned, UnpinnedWorldReportsZeroPinnedRanks) {
  World world(2);
  world.run([](Comm&) {});
  EXPECT_EQ(world.pinned_ranks(), 0);
  EXPECT_FALSE(world.options().pin_threads);
}

}  // namespace
}  // namespace pstap::mp
