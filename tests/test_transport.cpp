// Zero-copy transport tests: Buffer/BufferPool semantics, the
// send_buffer/recv_buffer/recv_into hot path, and the allocation-freedom
// the pooled path promises in steady state.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/buffer.hpp"
#include "common/checkpoint.hpp"
#include "common/types.hpp"
#include "mp/world.hpp"

// ------------------------------------------------- allocation counting --
// Global operator new instrumented with a thread-local counter (same
// pattern as test_obs) so the steady-state send/recv path can be proven
// allocation-free. This test binary only.

namespace {
thread_local std::int64_t t_alloc_count = 0;
}  // namespace

// GCC pairs call sites against the replacement operators and warns that
// malloc-backed new is freed with free(); the pairing here is exactly
// new->malloc / delete->free, so the warning is a false positive.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  ++t_alloc_count;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pstap {
namespace {

std::vector<cfloat> test_payload(std::size_t n, float seed) {
  std::vector<cfloat> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = cfloat(seed + static_cast<float>(i), -static_cast<float>(i));
  }
  return v;
}

// ------------------------------------------------------------- Buffer --

TEST(Buffer, CopySharesBytesAndMoveSteals) {
  BufferPool pool;
  Buffer a = pool.acquire_elems<cfloat>(8);
  auto span = a.as_span<cfloat>();
  for (std::size_t i = 0; i < span.size(); ++i) span[i] = cfloat(float(i), 0);

  Buffer b = a;  // copy: same storage
  EXPECT_EQ(b.data(), a.data());
  EXPECT_EQ(b.size(), a.size());

  const std::byte* raw = a.data();
  Buffer c = std::move(a);  // move: steals the handle
  EXPECT_EQ(c.data(), raw);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)

  // Storage survives until the last handle drops, then returns to the pool.
  b.reset();
  EXPECT_EQ(pool.free_count(), 0u);
  c.reset();
  EXPECT_EQ(pool.free_count(), 1u);
}

TEST(Buffer, AdoptWrapsVectorWithoutCopy) {
  std::vector<std::byte> bytes(64);
  const std::byte* raw = bytes.data();
  Buffer buf = Buffer::adopt(std::move(bytes));
  EXPECT_EQ(buf.data(), raw);
  EXPECT_EQ(buf.size(), 64u);

  // to_vector on a uniquely held adopted buffer moves the storage back out.
  std::vector<std::byte> out = std::move(buf).to_vector();
  EXPECT_EQ(out.data(), raw);
}

TEST(Buffer, ToVectorCopiesWhenShared) {
  Buffer a = Buffer::adopt(std::vector<std::byte>(32, std::byte{7}));
  Buffer b = a;
  std::vector<std::byte> out = std::move(a).to_vector();
  EXPECT_EQ(out.size(), 32u);
  EXPECT_EQ(out[0], std::byte{7});
  EXPECT_EQ(b.size(), 32u);  // the other handle still sees the payload
}

// --------------------------------------------------------- BufferPool --

TEST(BufferPool, PooledBuffersAreCacheLineAligned) {
  BufferPool pool;
  for (const std::size_t n : std::vector<std::size_t>{1, 7, 64, 1000, 4096}) {
    Buffer buf = pool.acquire(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kDefaultAlignment, 0u)
        << "size " << n;
  }
}

TEST(BufferPool, AllocationsPlateauUnderSteadyReacquire) {
  BufferPool pool;
  { Buffer warm = pool.acquire(1024); }
  EXPECT_EQ(pool.allocations(), 1u);
  for (int i = 0; i < 100; ++i) {
    Buffer buf = pool.acquire(1024);
    EXPECT_EQ(buf.size(), 1024u);
  }
  EXPECT_EQ(pool.allocations(), 1u) << "re-acquiring a warm shape must not allocate";
  EXPECT_EQ(pool.reuses(), 100u);
  EXPECT_EQ(pool.outstanding(), 1u);
}

TEST(BufferPool, FirstFitServesSmallerRequestFromLargerFreeBuffer) {
  BufferPool pool;
  { Buffer warm = pool.acquire(4096); }
  Buffer small = pool.acquire(100);
  EXPECT_EQ(small.size(), 100u);
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
}

// ---------------------------------------------------------- transport --

TEST(Transport, BufferRoundtripMatchesPackUnpack) {
  mp::World world(1);
  mp::Comm comm = world.make_comm(0);
  BufferPool pool;
  const auto values = test_payload(256, 3.0f);

  // Reference path: pack into a vector, send_bytes, recv_bytes, unpack.
  comm.send(0, 1, std::span<const cfloat>(values));
  const auto via_pack = comm.recv_vector<cfloat>(0, 1);

  // Zero-copy path: pooled payload, send_buffer, recv_buffer, typed view.
  mp::Buffer payload = pool.acquire_elems<cfloat>(values.size());
  std::copy(values.begin(), values.end(), payload.as_span<cfloat>().begin());
  comm.send_buffer(0, 1, std::move(payload));
  const mp::Buffer got = comm.recv_buffer(0, 1);
  const auto view = got.as_span<const cfloat>();

  ASSERT_EQ(view.size(), via_pack.size());
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view[i], via_pack[i]) << "element " << i;
    EXPECT_EQ(view[i], values[i]) << "element " << i;
  }
}

TEST(Transport, RecvIntoLandsBytesInCallerSlab) {
  mp::World world(1);
  mp::Comm comm = world.make_comm(0);
  BufferPool pool;
  const auto values = test_payload(64, 9.0f);

  mp::Buffer payload = pool.acquire_elems<cfloat>(values.size());
  std::copy(values.begin(), values.end(), payload.as_span<cfloat>().begin());
  comm.send_buffer(0, 5, std::move(payload));

  std::vector<cfloat> slab(values.size());
  mp::RecvInfo info;
  comm.recv_into<cfloat>(0, 5, slab, &info);
  EXPECT_EQ(info.bytes, values.size() * sizeof(cfloat));
  EXPECT_EQ(slab, values);
}

TEST(Transport, SteadyStateSendRecvIsAllocationFree) {
  mp::World world(1);
  mp::Comm comm = world.make_comm(0);
  BufferPool pool;
  constexpr std::size_t kElems = 512;
  std::vector<cfloat> slab(kElems);

  auto one_cpi = [&](float seed) {
    mp::Buffer payload = pool.acquire_elems<cfloat>(kElems);
    auto out = payload.as_span<cfloat>();
    for (std::size_t i = 0; i < kElems; ++i) out[i] = cfloat(seed, float(i));
    comm.send_buffer(0, 7, std::move(payload));
    comm.recv_into<cfloat>(0, 7, slab);
  };

  for (int i = 0; i < 4; ++i) one_cpi(float(i));  // warm the free list

  const std::uint64_t allocs_before = pool.allocations();
  const std::int64_t news_before = t_alloc_count;
  for (int i = 0; i < 64; ++i) one_cpi(float(100 + i));
  EXPECT_EQ(pool.allocations(), allocs_before)
      << "steady-state traffic must be served from the pool free list";
  EXPECT_EQ(t_alloc_count, news_before)
      << "steady-state send/recv must perform zero heap allocations";
  EXPECT_EQ(slab[0], cfloat(163.0f, 0.0f));  // last CPI actually arrived
}

TEST(Transport, CloseSemanticsUnchangedForMovedPayloads) {
  mp::World world(1);
  mp::Comm comm = world.make_comm(0);
  BufferPool pool;

  mp::Buffer payload = pool.acquire_elems<cfloat>(16);
  auto out = payload.as_span<cfloat>();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = cfloat(1.0f, 2.0f);
  comm.send_buffer(0, 3, std::move(payload));

  // Queued envelopes still drain after close; then receives unblock with
  // MailboxClosed — exactly the vector-payload contract.
  world.close_all_mailboxes();
  const mp::Buffer got = comm.recv_buffer(0, 3);
  EXPECT_EQ(got.as_span<const cfloat>()[0], cfloat(1.0f, 2.0f));
  EXPECT_THROW(comm.recv_buffer(0, 3), mp::MailboxClosed);
  world.reopen_all_mailboxes();
}

// -------------------------------------------------------- checkpointing --

TEST(Checkpoint, RingLogsSharedViewNotCopy) {
  BufferPool pool;
  ckpt::CheckpointRing ring;
  Buffer payload = pool.acquire_elems<cfloat>(32);
  const std::byte* raw = payload.data();
  ring.record_message(0, 1, 2, payload);  // shares the handle

  Buffer replayed;
  ASSERT_TRUE(ring.replay_message(0, 1, 2, replayed));
  EXPECT_EQ(replayed.data(), raw) << "replay must share storage, not copy bytes";

  // Eviction drops the ring's handle; once the caller's handles die too the
  // storage returns to the pool.
  ring.complete(0);
  payload.reset();
  replayed.reset();
  EXPECT_EQ(pool.free_count(), 1u);
}

}  // namespace
}  // namespace pstap
